//===- bench/bench_coverage.cpp - SMC vs randomized testing (§8) ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the paper's §8 comparison with MonkeyDB-style randomized
/// testing: systematic explore-ce(CC) enumerates each history exactly
/// once, while random sampling of executions re-draws duplicates and
/// covers hist_CC(P) only asymptotically. For each benchmark client we
/// report the exhaustive count and the distinct histories found by
/// growing random-walk budgets — the coverage gap is the argument for
/// systematic exploration.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/RandomWalk.h"

#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

int main() {
  int64_t Budget = benchBudgetMs();
  std::cout << "Coverage: explore-ce(CC) vs random-walk sampling "
            << "(MonkeyDB-style baseline, §8); budget " << Budget
            << " ms/run\n\n";

  TablePrinter T({"benchmark", "exhaustive", "walks=32", "walks=128",
                  "walks=512", "walks=2048", "coverage@2048"});

  for (AppKind App : AllApps) {
    ClientSpec Spec;
    Spec.Sessions = 3;
    Spec.TxnsPerSession = 3;
    Spec.Seed = 1;
    Program P = makeClientProgram(App, Spec);

    ExplorerConfig Config =
        ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
    Config.TimeBudget = Deadline::afterMillis(Budget);
    ExplorerStats Exhaustive = exploreProgram(P, Config);

    std::vector<std::string> Row{clientName(App, 0),
                                 std::to_string(Exhaustive.Outputs)};
    uint64_t LastDistinct = 0;
    for (uint64_t Walks : {32u, 128u, 512u, 2048u}) {
      RandomWalkConfig WalkConfig;
      WalkConfig.Level = IsolationLevel::CausalConsistency;
      WalkConfig.NumWalks = Walks;
      WalkConfig.Seed = 7;
      WalkConfig.TimeBudget = Deadline::afterMillis(Budget);
      RandomWalkStats Stats = randomWalkProgram(P, WalkConfig);
      Row.push_back(std::to_string(Stats.DistinctHistories));
      LastDistinct = Stats.DistinctHistories;
    }
    double Coverage =
        Exhaustive.Outputs
            ? 100.0 * double(LastDistinct) / double(Exhaustive.Outputs)
            : 100.0;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.1f%%", Coverage);
    Row.push_back(Buf);
    T.addRow(std::move(Row));
  }
  T.print(std::cout);
  std::cout << "\nNote: random walks may cover small programs fully but "
               "give no termination or optimality guarantee;\nexplore-ce "
               "visits each class exactly once and certifies exhaustion "
               "(Theorem 5.1).\n";
  return 0;
}
