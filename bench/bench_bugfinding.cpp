//===- bench/bench_bugfinding.cpp - Assertion checking throughput ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end use case (§8: "check for user-defined assertions"):
/// for each application, a natural invariant and its isolation-level
/// boundary. We measure (a) time and explored histories until the first
/// violation under the weakest level exhibiting the bug, and (b) time to
/// *prove* the invariant (full enumeration) under the weakest level where
/// it holds — the verification/falsification costs the paper's tool
/// targets.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/Courseware.h"
#include "apps/ShoppingCart.h"
#include "apps/Tpcc.h"
#include "apps/Twitter.h"
#include "apps/Wikipedia.h"

#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

namespace {

struct BugCase {
  std::string Name;
  Program Prog;
  AssertionFn Invariant;
  IsolationLevel BuggyLevel; ///< Violation expected here...
  IsolationLevel SafeLevel;  ///< ... and absence expected here.
};

std::vector<BugCase> makeBugCases() {
  std::vector<BugCase> Cases;
  {
    ProgramBuilder B;
    CoursewareApp App(B, 2, 1, /*Capacity=*/1);
    App.openCourse(0, 0);
    App.enroll(0, 0, 0);
    App.enroll(1, 1, 0);
    Cases.push_back({"courseware-capacity", B.build(),
                     [](const FinalStates &S) {
                       return S.local(0, 1, "did") + S.local(1, 0, "did") <=
                              1;
                     },
                     IsolationLevel::CausalConsistency,
                     IsolationLevel::SnapshotIsolation});
  }
  {
    ProgramBuilder B;
    TpccApp App(B, 1, 1);
    App.newOrder(0, 0);
    App.newOrder(1, 0);
    Cases.push_back({"tpcc-order-ids", B.build(),
                     [](const FinalStates &S) {
                       return S.local(0, 0, "o") != S.local(1, 0, "o");
                     },
                     IsolationLevel::CausalConsistency,
                     IsolationLevel::SnapshotIsolation});
  }
  {
    // Write skew on two stock rows guarded by a total-stock check.
    ProgramBuilder B;
    VarId S0 = B.var("stock0");
    VarId S1 = B.var("stock1");
    B.beginTxn(0).write(S0, 1);
    auto W1 = B.beginTxn(1, "take0");
    W1.read("a", S0);
    W1.read("b", S1);
    W1.write(S0, W1.local("a") - 1, ge(W1.local("a") + W1.local("b"), 1));
    auto W2 = B.beginTxn(2, "take1");
    W2.read("a", S0);
    W2.read("b", S1);
    W2.write(S1, W2.local("b") - 1, ge(W2.local("a") + W2.local("b"), 1));
    Cases.push_back({"stock-write-skew", B.build(),
                     [](const FinalStates &S) {
                       bool T1 = S.local(1, 0, "a") + S.local(1, 0, "b") >= 1;
                       bool T2 = S.local(2, 0, "a") + S.local(2, 0, "b") >= 1;
                       return !(T1 && T2);
                     },
                     IsolationLevel::SnapshotIsolation,
                     IsolationLevel::Serializability});
  }
  return Cases;
}

ExplorerConfig configFor(IsolationLevel Level, int64_t BudgetMs) {
  ExplorerConfig Config;
  if (isPrefixClosedCausallyExtensible(Level)) {
    Config = ExplorerConfig::exploreCE(Level);
  } else {
    Config = ExplorerConfig::exploreCEStar(
        IsolationLevel::CausalConsistency, Level);
  }
  Config.TimeBudget = Deadline::afterMillis(BudgetMs);
  return Config;
}

} // namespace

int main() {
  int64_t Budget = benchBudgetMs();
  std::cout << "Bug finding and proving via SMC (budget " << Budget
            << " ms/run)\n\n";

  TablePrinter T({"case", "buggy-level", "found?", "histories-to-bug",
                  "find-ms", "safe-level", "proved?", "histories-proved",
                  "prove-ms"});
  for (BugCase &Case : makeBugCases()) {
    AssertionResult Find = checkAssertion(
        Case.Prog, configFor(Case.BuggyLevel, Budget), Case.Invariant);
    AssertionResult Prove = checkAssertion(
        Case.Prog, configFor(Case.SafeLevel, Budget), Case.Invariant);
    T.addRow({Case.Name, isolationLevelName(Case.BuggyLevel),
              Find.ViolationFound ? "bug" : "MISSED",
              std::to_string(Find.Checked),
              TablePrinter::formatMillis(Find.Stats.ElapsedMillis,
                                         Find.Stats.TimedOut),
              isolationLevelName(Case.SafeLevel),
              Prove.ViolationFound ? "BROKEN" : "safe",
              std::to_string(Prove.Checked),
              TablePrinter::formatMillis(Prove.Stats.ElapsedMillis,
                                         Prove.Stats.TimedOut)});
  }
  T.print(std::cout);
  std::cout << "\nEach case is falsified at its buggy level and *proved* "
               "at the weakest safe level —\nthe exhaustive guarantee "
               "randomized testing cannot give (§8).\n";
  return 0;
}
