//===- bench/bench_streaming.cpp - Streaming trace-checker throughput -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events-per-second and memory behaviour of the windowed streaming
/// checker over a budget sweep: the same generated reads-latest trace is
/// streamed at several window budgets (plus unbounded as the baseline),
/// recording throughput, the peak live window, eviction counts and peak
/// RSS. Tracking this across PRs keeps the eviction fixpoint honest —
/// a GC regression shows up as a peak window detaching from its budget
/// or a throughput collapse, long before a production trace would hit
/// either.
///
/// Dumps the series as BENCH_streaming.json (TXDPOR_BENCH_JSON
/// overrides) next to the human-readable table. Honors
/// TXDPOR_BENCH_BUDGET_MS per budget cell, default 800 ms.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "consistency/StreamingChecker.h"
#include "support/Deadline.h"
#include "support/Json.h"
#include "support/MemoryProbe.h"
#include "trace_io/TraceGen.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

namespace {

struct Cell {
  unsigned WindowBudget = 0;
  uint64_t Txns = 0;
  uint64_t Events = 0;
  uint64_t Evicted = 0;
  uint64_t GcPasses = 0;
  unsigned PeakWindow = 0;
  double Millis = 0;
  uint64_t PeakRssKb = 0;

  double eventsPerSec() const {
    return Millis > 0 ? Events * 1000.0 / Millis : 0;
  }
};

/// Streams one generated trace at \p WindowBudget until the time budget
/// expires (regenerating with fresh seeds as needed, so small windows
/// are not starved of input).
Cell runBudget(unsigned WindowBudget, int64_t BudgetMs) {
  Cell C;
  C.WindowBudget = WindowBudget;
  Deadline Budget = Deadline::afterMillis(BudgetMs);
  Stopwatch Timer;
  for (uint64_t Round = 0; !Budget.expired(); ++Round) {
    trace_io::GenConfig Gen;
    Gen.Seed = 1 + Round;
    Gen.Sessions = 4;
    Gen.Vars = 8;
    Gen.Events = 200000;
    StreamingOptions Opts;
    Opts.Levels = LevelAssignment::uniform(IsolationLevel::CausalConsistency);
    Opts.NumVars = Gen.Vars;
    Opts.NumSessions = Gen.Sessions;
    Opts.WindowBudget = WindowBudget;
    StreamingChecker Checker(Opts);
    trace_io::generateTrace(Gen, [&](const TransactionLog &Log) {
      if (Checker.status() == StreamStatus::Ok && !Budget.expired())
        Checker.append(Log);
    });
    const StreamingStats &Stats = Checker.stats();
    C.Txns += Stats.Txns;
    C.Events += Stats.Events;
    C.Evicted += Stats.Evicted;
    C.GcPasses += Stats.GcPasses;
    C.PeakWindow = std::max(C.PeakWindow, Stats.PeakWindow);
  }
  C.Millis = Timer.elapsedMillis();
  C.PeakRssKb = peakRssKb();
  return C;
}

} // namespace

int main() {
  int64_t BudgetMs = benchBudgetMs();
  const unsigned Budgets[] = {0, 16, 64, 256, 1024};
  std::vector<Cell> Cells;
  for (unsigned WindowBudget : Budgets)
    Cells.push_back(runBudget(WindowBudget, BudgetMs));

  TablePrinter Table({"window", "txns", "events", "evicted", "gc", "peak",
                      "ms", "events/s", "rss KB"});
  for (const Cell &C : Cells) {
    char Rate[32], Ms[32];
    std::snprintf(Rate, sizeof(Rate), "%.0f", C.eventsPerSec());
    std::snprintf(Ms, sizeof(Ms), "%.1f", C.Millis);
    Table.addRow({C.WindowBudget ? std::to_string(C.WindowBudget)
                                 : std::string("unbounded"),
                  formatCount(C.Txns), formatCount(C.Events),
                  formatCount(C.Evicted), formatCount(C.GcPasses),
                  std::to_string(C.PeakWindow), Ms, Rate,
                  std::to_string(C.PeakRssKb)});
  }
  std::cout << "Streaming checker budget sweep (budget " << BudgetMs
            << " ms per cell)\n\n";
  Table.print(std::cout);

  const char *JsonPath = std::getenv("TXDPOR_BENCH_JSON");
  std::string Path = JsonPath ? JsonPath : "BENCH_streaming.json";
  std::ofstream OS(Path);
  JsonWriter J(OS);
  J.beginObject();
  J.key("bench").value("streaming");
  J.key("budget_ms").value(static_cast<int64_t>(BudgetMs));
  writeHostMetadata(J);
  J.key("cells").beginArray();
  for (const Cell &C : Cells) {
    J.beginObject();
    J.key("window_budget").value(C.WindowBudget);
    J.key("txns").value(C.Txns);
    J.key("events").value(C.Events);
    J.key("evictions").value(C.Evicted);
    J.key("gc_passes").value(C.GcPasses);
    J.key("peak_window").value(C.PeakWindow);
    J.key("ms").value(C.Millis);
    J.key("events_per_sec").value(C.eventsPerSec());
    J.key("peak_rss_kb").value(C.PeakRssKb);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  OS << '\n';
  std::cout << "\nwrote " << Path << '\n';
  return 0;
}
