//===- bench/bench_f1_table.cpp - Appendix F.1 table reproduction ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Appendix F.1 per-benchmark table: for every benchmark
/// program and every algorithm, the number of output histories, end
/// states, running time and peak memory ("TL" marks a timeout, like the
/// paper). Expected invariants visible in the rows:
///   * CC / CC+SI / CC+SER share identical End-states columns;
///   * Histories ≤ End states, with equality exactly for explore-ce;
///   * weaker bases (RA+CC, RC+CC, true+CC) blow up End states.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

int main() {
  int64_t Budget = benchBudgetMs();
  std::vector<NamedProgram> Programs =
      makeBenchmarkPrograms(/*Sessions=*/3, /*Txns=*/3);
  std::vector<AlgorithmSpec> Algorithms = fig14Algorithms();

  std::cout << "Appendix F.1: per-benchmark results (budget " << Budget
            << " ms/run; TL = timeout)\n\n";

  for (const AlgorithmSpec &Algo : Algorithms) {
    std::cout << "== " << Algo.Name << " ==\n";
    TablePrinter T({"benchmark", "histories", "end-states", "time", "mem-kb"});
    for (const NamedProgram &NP : Programs) {
      RunResult R = runAlgorithm(NP.Prog, Algo, Budget);
      T.addRow({NP.Name, formatCount(R.histories()), formatCount(R.endStates()),
                TablePrinter::formatMillis(R.millis(), R.timedOut()),
                formatCount(R.memKb())});
    }
    T.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
