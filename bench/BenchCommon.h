//===- bench/BenchCommon.h - Shared harness for table benches -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure harnesses: the algorithm roster
/// of the paper's evaluation (§7.3), per-run budgets (the paper's 30-min
/// timeout scaled to a CI-friendly default, overridable via environment),
/// and result formatting.
///
/// Environment knobs:
///   TXDPOR_BENCH_BUDGET_MS — per-run wall-clock budget (default 800).
///   TXDPOR_BENCH_CLIENTS   — clients per application (default 5).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_BENCH_BENCHCOMMON_H
#define TXDPOR_BENCH_BENCHCOMMON_H

#include "apps/Applications.h"
#include "core/Enumerate.h"
#include "support/TablePrinter.h"

#include <string>
#include <vector>

namespace txdpor {

class JsonWriter;

namespace bench {

/// One of the evaluation's algorithms: an explorer configuration or the
/// DFS baseline.
struct AlgorithmSpec {
  std::string Name;
  bool IsBaselineDfs = false;
  IsolationLevel BaseLevel = IsolationLevel::CausalConsistency;
  std::optional<IsolationLevel> FilterLevel;
  /// Worker threads; > 1 routes through the parallel explorer.
  unsigned Threads = 1;

  static AlgorithmSpec exploreCE(IsolationLevel Base);
  static AlgorithmSpec exploreCEStar(IsolationLevel Base,
                                     IsolationLevel Filter);
  static AlgorithmSpec baselineDfs(IsolationLevel Level);
  static AlgorithmSpec exploreCEParallel(IsolationLevel Base,
                                         unsigned Threads);
};

/// The Fig. 14 roster: CC, CC+SI, CC+SER, RA+CC, RC+CC, true+CC, DFS(CC).
std::vector<AlgorithmSpec> fig14Algorithms();

/// Result of one (program, algorithm) run: the run's full statistics plus
/// named accessors for the columns every table reports.
struct RunResult {
  ExplorerStats Stats;

  uint64_t histories() const { return Stats.Outputs; }
  uint64_t endStates() const { return Stats.EndStates; }
  double millis() const { return Stats.ElapsedMillis; }
  bool timedOut() const { return Stats.TimedOut; }
  uint64_t memKb() const { return Stats.PeakRssKb; }
};

/// Runs \p Algo on \p Prog with a \p BudgetMs wall-clock budget.
RunResult runAlgorithm(const Program &Prog, const AlgorithmSpec &Algo,
                       int64_t BudgetMs);

/// Accumulates RunResults across a series of runs. Counter aggregation
/// goes through ExplorerStats::merge — the same routine the parallel
/// explorer uses to fold per-worker statistics — plus run bookkeeping the
/// merged flags cannot express (how many runs, how many timed out).
struct Aggregate {
  ExplorerStats Stats; ///< merge() of every run; ElapsedMillis is the sum.
  unsigned Runs = 0;
  unsigned Timeouts = 0;

  void add(const RunResult &R) {
    Stats.merge(R.Stats);
    ++Runs;
    if (R.timedOut())
      ++Timeouts;
  }
  double avgMillis() const {
    return Runs ? Stats.ElapsedMillis / Runs : 0;
  }
};

/// Per-run budget from TXDPOR_BENCH_BUDGET_MS (default 800 ms).
int64_t benchBudgetMs();

/// Clients per application from TXDPOR_BENCH_CLIENTS (default 5, like the
/// paper's 5 client programs per application).
unsigned benchClients();

/// The paper's 25-program benchmark: benchClients() clients per
/// application, \p Sessions sessions × \p Txns transactions.
struct NamedProgram {
  std::string Name;
  Program Prog;
};
std::vector<NamedProgram> makeBenchmarkPrograms(unsigned Sessions,
                                                unsigned Txns);

/// Formats a count, or "-" for zero-when-timed-out placeholders.
std::string formatCount(uint64_t N);

/// Emits a "host" object member into the JSON object currently open on
/// \p J: hardware_concurrency, compiler, build type and a UTC timestamp —
/// the provenance block every BENCH_*.json carries so numbers from
/// different machines/builds are never compared blind.
void writeHostMetadata(JsonWriter &J);

} // namespace bench
} // namespace txdpor

#endif // TXDPOR_BENCH_BENCHCOMMON_H
