//===- bench/BenchCommon.h - Shared harness for table benches -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure harnesses: the algorithm roster
/// of the paper's evaluation (§7.3), per-run budgets (the paper's 30-min
/// timeout scaled to a CI-friendly default, overridable via environment),
/// and result formatting.
///
/// Environment knobs:
///   TXDPOR_BENCH_BUDGET_MS — per-run wall-clock budget (default 800).
///   TXDPOR_BENCH_CLIENTS   — clients per application (default 5).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_BENCH_BENCHCOMMON_H
#define TXDPOR_BENCH_BENCHCOMMON_H

#include "apps/Applications.h"
#include "core/Enumerate.h"
#include "support/TablePrinter.h"

#include <string>
#include <vector>

namespace txdpor {
namespace bench {

/// One of the evaluation's algorithms: an explorer configuration or the
/// DFS baseline.
struct AlgorithmSpec {
  std::string Name;
  bool IsBaselineDfs = false;
  IsolationLevel BaseLevel = IsolationLevel::CausalConsistency;
  std::optional<IsolationLevel> FilterLevel;

  static AlgorithmSpec exploreCE(IsolationLevel Base);
  static AlgorithmSpec exploreCEStar(IsolationLevel Base,
                                     IsolationLevel Filter);
  static AlgorithmSpec baselineDfs(IsolationLevel Level);
};

/// The Fig. 14 roster: CC, CC+SI, CC+SER, RA+CC, RC+CC, true+CC, DFS(CC).
std::vector<AlgorithmSpec> fig14Algorithms();

/// Result of one (program, algorithm) run.
struct RunResult {
  uint64_t Histories = 0; ///< Outputs after the Valid filter.
  uint64_t EndStates = 0; ///< Complete executions before the filter.
  double Millis = 0;
  bool TimedOut = false;
  uint64_t MemKb = 0;
};

/// Runs \p Algo on \p Prog with a \p BudgetMs wall-clock budget.
RunResult runAlgorithm(const Program &Prog, const AlgorithmSpec &Algo,
                       int64_t BudgetMs);

/// Per-run budget from TXDPOR_BENCH_BUDGET_MS (default 800 ms).
int64_t benchBudgetMs();

/// Clients per application from TXDPOR_BENCH_CLIENTS (default 5, like the
/// paper's 5 client programs per application).
unsigned benchClients();

/// The paper's 25-program benchmark: benchClients() clients per
/// application, \p Sessions sessions × \p Txns transactions.
struct NamedProgram {
  std::string Name;
  Program Prog;
};
std::vector<NamedProgram> makeBenchmarkPrograms(unsigned Sessions,
                                                unsigned Txns);

/// Formats a count, or "-" for zero-when-timed-out placeholders.
std::string formatCount(uint64_t N);

} // namespace bench
} // namespace txdpor

#endif // TXDPOR_BENCH_BENCHCOMMON_H
