//===- bench/bench_ablation.cpp - §5.3 optimality-mechanism ablation ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies what each §5.3 Optimality restriction buys, on the paper's
/// own counterexample shapes (Fig. 12: readLatest; Fig. 13: swapped) and
/// on small application clients. Four configurations of explore-ce(CC):
/// full, no-swapped-check, no-readLatest-check, neither. Completeness is
/// unaffected (distinct histories identical); the ablated runs show
/// duplicated end states — the redundancy the restrictions eliminate.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>
#include <set>

using namespace txdpor;
using namespace txdpor::bench;

namespace {

Program makeFig12Program() {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).read("a", X);
  B.beginTxn(2).read("b", X);
  B.beginTxn(3).write(X, 4);
  return B.build();
}

Program makeFig13Program() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  B.beginTxn(0).read("a", X);
  B.beginTxn(1).read("b", Y);
  B.beginTxn(2).write(Y, 3);
  B.beginTxn(3).write(X, 4);
  return B.build();
}

} // namespace

int main() {
  int64_t Budget = benchBudgetMs();
  std::cout << "Ablation of the Optimality restrictions (§5.3) on "
            << "explore-ce(CC); budget " << Budget << " ms/run\n\n";

  std::vector<NamedProgram> Programs;
  Programs.push_back({"fig12", makeFig12Program()});
  Programs.push_back({"fig13", makeFig13Program()});
  for (AppKind App : {AppKind::Courseware, AppKind::Tpcc}) {
    ClientSpec Spec;
    Spec.Sessions = 2;
    Spec.TxnsPerSession = 2;
    Spec.Seed = 1;
    Programs.push_back(
        {std::string(appName(App)) + "-2x2", makeClientProgram(App, Spec)});
  }

  struct Variant {
    const char *Name;
    bool CheckSwapped, CheckReadLatest;
  };
  const Variant Variants[] = {
      {"full-optimality", true, true},
      {"no-swapped-check", false, true},
      {"no-readLatest-check", true, false},
      {"no-checks", false, false},
  };

  for (const NamedProgram &NP : Programs) {
    std::cout << "== " << NP.Name << " ==\n";
    TablePrinter T({"variant", "distinct", "end-states", "duplicates",
                    "swaps-applied", "time"});
    for (const Variant &V : Variants) {
      ExplorerConfig Config =
          ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
      Config.CheckSwapped = V.CheckSwapped;
      Config.CheckReadLatest = V.CheckReadLatest;
      Config.TimeBudget = Deadline::afterMillis(Budget);
      Config.MaxEndStates = 2000000;
      std::set<std::string> Distinct;
      ExplorerStats Stats = exploreProgram(NP.Prog, Config,
                                           [&](const History &H) {
                                             Distinct.insert(
                                                 H.canonicalKey());
                                           });
      uint64_t Duplicates = Stats.Outputs - Distinct.size();
      T.addRow({V.Name, std::to_string(Distinct.size()),
                std::to_string(Stats.EndStates), std::to_string(Duplicates),
                std::to_string(Stats.SwapsApplied),
                TablePrinter::formatMillis(Stats.ElapsedMillis,
                                           Stats.TimedOut)});
    }
    T.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
