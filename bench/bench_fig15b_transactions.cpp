//===- bench/bench_fig15b_transactions.cpp - Fig. 15b / Appendix F.3 ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transaction scalability of explore-ce(CC) (Fig. 15b, data in Appendix
/// F.3): TPC-C and Wikipedia clients with 3 sessions and 1..5
/// transactions per session. Expected shape mirrors Fig. 15a: steep time
/// growth, flat memory.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

int main() {
  int64_t Budget = benchBudgetMs();
  unsigned Clients = benchClients();
  AlgorithmSpec Algo =
      AlgorithmSpec::exploreCE(IsolationLevel::CausalConsistency);

  std::cout << "Fig. 15b / Appendix F.3: transactions-per-session "
            << "scalability of explore-ce(CC), 3 sessions (budget " << Budget
            << " ms/run)\n\n";

  TablePrinter T({"benchmark", "txns/session", "histories", "time", "mem-kb"});
  std::vector<Aggregate> Averages(6);

  for (unsigned Txns = 1; Txns <= 5; ++Txns) {
    for (AppKind App : {AppKind::Tpcc, AppKind::Wikipedia}) {
      for (unsigned Client = 0; Client != Clients; ++Client) {
        ClientSpec Spec;
        Spec.Sessions = 3;
        Spec.TxnsPerSession = Txns;
        Spec.Seed = Client + 1;
        Program P = makeClientProgram(App, Spec);
        RunResult R = runAlgorithm(P, Algo, Budget);
        T.addRow({clientName(App, Client), std::to_string(Txns),
                  formatCount(R.histories()),
                  TablePrinter::formatMillis(R.millis(), R.timedOut()),
                  formatCount(R.memKb())});
        Averages[Txns].add(R);
      }
    }
  }
  T.print(std::cout);

  std::cout << "\n== Averages per transactions-per-session ==\n";
  TablePrinter S({"txns/session", "avg-time-ms", "peak-mem-kb", "timeouts"});
  for (unsigned Txns = 1; Txns <= 5; ++Txns) {
    const Aggregate &A = Averages[Txns];
    S.addRow({std::to_string(Txns),
              std::to_string(static_cast<long long>(A.avgMillis())),
              formatCount(A.Stats.PeakRssKb),
              std::to_string(A.Timeouts)});
  }
  S.print(std::cout);
  return 0;
}
