//===- bench/bench_fig15a_sessions.cpp - Fig. 15a / Appendix F.2 ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Session scalability of explore-ce(CC) (Fig. 15a, data in Appendix
/// F.2): TPC-C and Wikipedia clients with 1..5 sessions of 3 transactions
/// each. Prints the per-size per-client table and the averaged series.
/// Expected shape: running time (and history counts) grow steeply with
/// sessions, memory stays flat (polynomial space).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

int main() {
  int64_t Budget = benchBudgetMs();
  unsigned Clients = benchClients();
  AlgorithmSpec Algo =
      AlgorithmSpec::exploreCE(IsolationLevel::CausalConsistency);

  std::cout << "Fig. 15a / Appendix F.2: session scalability of "
            << "explore-ce(CC), 3 txns/session (budget " << Budget
            << " ms/run)\n\n";

  TablePrinter T({"benchmark", "sessions", "histories", "time", "mem-kb"});
  std::vector<Aggregate> Averages(6);

  for (unsigned Sessions = 1; Sessions <= 5; ++Sessions) {
    for (AppKind App : {AppKind::Tpcc, AppKind::Wikipedia}) {
      for (unsigned Client = 0; Client != Clients; ++Client) {
        ClientSpec Spec;
        Spec.Sessions = Sessions;
        Spec.TxnsPerSession = 3;
        Spec.Seed = Client + 1;
        Program P = makeClientProgram(App, Spec);
        RunResult R = runAlgorithm(P, Algo, Budget);
        T.addRow({clientName(App, Client), std::to_string(Sessions),
                  formatCount(R.histories()),
                  TablePrinter::formatMillis(R.millis(), R.timedOut()),
                  formatCount(R.memKb())});
        Averages[Sessions].add(R);
      }
    }
  }
  T.print(std::cout);

  std::cout << "\n== Averages per session count (timeouts included at "
               "budget, like the paper) ==\n";
  TablePrinter S({"sessions", "avg-time-ms", "peak-mem-kb", "timeouts"});
  for (unsigned Sessions = 1; Sessions <= 5; ++Sessions) {
    const Aggregate &A = Averages[Sessions];
    S.addRow({std::to_string(Sessions),
              std::to_string(static_cast<long long>(A.avgMillis())),
              formatCount(A.Stats.PeakRssKb),
              std::to_string(A.Timeouts)});
  }
  S.print(std::cout);
  return 0;
}
