//===- bench/BenchCommon.cpp - Shared harness for table benches -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "parallel/ParallelExplorer.h"
#include "support/Json.h"

#include <cstdlib>
#include <ctime>
#include <thread>

using namespace txdpor;
using namespace txdpor::bench;

AlgorithmSpec AlgorithmSpec::exploreCE(IsolationLevel Base) {
  AlgorithmSpec Spec;
  Spec.Name = isolationLevelName(Base);
  Spec.BaseLevel = Base;
  return Spec;
}

AlgorithmSpec AlgorithmSpec::exploreCEStar(IsolationLevel Base,
                                           IsolationLevel Filter) {
  AlgorithmSpec Spec;
  Spec.Name =
      std::string(isolationLevelName(Base)) + "+" + isolationLevelName(Filter);
  Spec.BaseLevel = Base;
  Spec.FilterLevel = Filter;
  return Spec;
}

AlgorithmSpec AlgorithmSpec::baselineDfs(IsolationLevel Level) {
  AlgorithmSpec Spec;
  Spec.Name = std::string("DFS(") + isolationLevelName(Level) + ")";
  Spec.IsBaselineDfs = true;
  Spec.BaseLevel = Level;
  return Spec;
}

AlgorithmSpec AlgorithmSpec::exploreCEParallel(IsolationLevel Base,
                                               unsigned Threads) {
  AlgorithmSpec Spec = exploreCE(Base);
  Spec.Name += "/t" + std::to_string(Threads);
  Spec.Threads = Threads;
  return Spec;
}

std::vector<AlgorithmSpec> txdpor::bench::fig14Algorithms() {
  using IL = IsolationLevel;
  return {
      AlgorithmSpec::exploreCE(IL::CausalConsistency),
      AlgorithmSpec::exploreCEStar(IL::CausalConsistency,
                                   IL::SnapshotIsolation),
      AlgorithmSpec::exploreCEStar(IL::CausalConsistency,
                                   IL::Serializability),
      AlgorithmSpec::exploreCEStar(IL::ReadAtomic, IL::CausalConsistency),
      AlgorithmSpec::exploreCEStar(IL::ReadCommitted, IL::CausalConsistency),
      AlgorithmSpec::exploreCEStar(IL::Trivial, IL::CausalConsistency),
      AlgorithmSpec::baselineDfs(IL::CausalConsistency),
  };
}

RunResult txdpor::bench::runAlgorithm(const Program &Prog,
                                      const AlgorithmSpec &Algo,
                                      int64_t BudgetMs) {
  RunResult Result;
  ExplorerStats Stats;
  if (Algo.IsBaselineDfs) {
    NaiveDfsConfig Config;
    Config.Level = Algo.BaseLevel;
    Config.TimeBudget = Deadline::afterMillis(BudgetMs);
    Stats = naiveDfsProgram(Prog, Config);
  } else {
    ExplorerConfig Config;
    Config.BaseLevel = Algo.BaseLevel;
    Config.FilterLevel = Algo.FilterLevel;
    Config.TimeBudget = Deadline::afterMillis(BudgetMs);
    Config.Threads = Algo.Threads;
    Stats = Algo.Threads > 1 ? exploreProgramParallel(Prog, Config)
                             : exploreProgram(Prog, Config);
  }
  Result.Stats = Stats;
  return Result;
}

static int64_t envInt(const char *Name, int64_t Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw || !*Raw)
    return Default;
  return std::atoll(Raw);
}

int64_t txdpor::bench::benchBudgetMs() {
  return envInt("TXDPOR_BENCH_BUDGET_MS", 800);
}

unsigned txdpor::bench::benchClients() {
  return static_cast<unsigned>(envInt("TXDPOR_BENCH_CLIENTS", 5));
}

std::vector<NamedProgram>
txdpor::bench::makeBenchmarkPrograms(unsigned Sessions, unsigned Txns) {
  std::vector<NamedProgram> Programs;
  unsigned Clients = benchClients();
  for (AppKind App : PaperApps) {
    for (unsigned Client = 0; Client != Clients; ++Client) {
      ClientSpec Spec;
      Spec.Sessions = Sessions;
      Spec.TxnsPerSession = Txns;
      Spec.Seed = Client + 1;
      Programs.push_back(
          {clientName(App, Client), makeClientProgram(App, Spec)});
    }
  }
  return Programs;
}

std::string txdpor::bench::formatCount(uint64_t N) {
  return std::to_string(N);
}

void txdpor::bench::writeHostMetadata(JsonWriter &J) {
  J.key("host").beginObject();
  J.key("hardware_concurrency")
      .value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
#if defined(__VERSION__) && defined(__clang__)
  J.key("compiler").value(std::string("clang ") + __VERSION__);
#elif defined(__VERSION__)
  J.key("compiler").value(std::string("gcc ") + __VERSION__);
#else
  J.key("compiler").value("unknown");
#endif
#ifdef TXDPOR_BUILD_TYPE
  J.key("build_type").value(TXDPOR_BUILD_TYPE);
#else
  J.key("build_type").value("unknown");
#endif
#ifdef NDEBUG
  J.key("assertions").value(false);
#else
  J.key("assertions").value(true);
#endif
  std::time_t Now = std::time(nullptr);
  char Stamp[32] = "unknown";
  if (std::tm *Utc = std::gmtime(&Now))
    std::strftime(Stamp, sizeof(Stamp), "%Y-%m-%dT%H:%M:%SZ", Utc);
  J.key("timestamp_utc").value(Stamp);
  J.endObject();
}
