//===- bench/bench_consistency_micro.cpp - Checker microbenchmarks --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of the consistency checkers: the
/// polynomial RC/RA/CC saturation checkers versus the search-based SI/SER
/// checkers, over random histories of growing size. This substantiates
/// the paper's §9 observation that checking is polynomial for RC/RA/CC
/// and NP-complete (search) for SI/SER — visible as the growth-rate gap.
///
//===----------------------------------------------------------------------===//

#include "consistency/ConsistencyChecker.h"
#include "history/History.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace txdpor;

namespace {

/// Deterministic random history with Txns transactions over 3 sessions.
History makeHistory(unsigned Txns, uint64_t Seed) {
  Rng R(Seed);
  unsigned NumVars = 3;
  History H = History::makeInitial(NumVars);
  std::vector<uint32_t> NextIndex(3, 0);
  Value Next = 1;
  for (unsigned T = 0; T != Txns; ++T) {
    uint32_t S = static_cast<uint32_t>(R.nextBelow(3));
    unsigned Idx = H.beginTxn({S, NextIndex[S]++});
    for (unsigned Op = 0, E = 1 + R.nextBelow(2) ; Op != E; ++Op) {
      VarId X = static_cast<VarId>(R.nextBelow(NumVars));
      if (R.chance(1, 2)) {
        H.appendEvent(Idx, Event::makeWrite(X, Next++));
        continue;
      }
      H.appendEvent(Idx, Event::makeRead(X));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (!H.txn(Idx).isExternalRead(Pos))
        continue;
      std::vector<unsigned> Writers;
      for (unsigned W = 0; W != Idx; ++W)
        if (H.txn(W).isCommitted() && H.txn(W).writesVar(X))
          Writers.push_back(W);
      H.setWriter(Idx, Pos, H.txn(Writers[R.nextBelow(Writers.size())]).uid());
    }
    H.appendEvent(Idx, Event::makeCommit());
  }
  return H;
}

void checkerBenchmark(benchmark::State &State, IsolationLevel Level) {
  unsigned Txns = static_cast<unsigned>(State.range(0));
  std::vector<History> Histories;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    Histories.push_back(makeHistory(Txns, Seed));
  const ConsistencyChecker &Checker = checkerFor(Level);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Checker.isConsistent(Histories[I++ % Histories.size()]));
  }
  State.SetLabel(isolationLevelName(Level));
}

} // namespace

#define TXDPOR_CHECKER_BENCH(NAME, LEVEL)                                     \
  static void NAME(benchmark::State &State) {                                 \
    checkerBenchmark(State, IsolationLevel::LEVEL);                           \
  }                                                                           \
  BENCHMARK(NAME)->Arg(4)->Arg(8)->Arg(12)->Arg(16)

TXDPOR_CHECKER_BENCH(BM_CheckReadCommitted, ReadCommitted);
TXDPOR_CHECKER_BENCH(BM_CheckReadAtomic, ReadAtomic);
TXDPOR_CHECKER_BENCH(BM_CheckCausalConsistency, CausalConsistency);
TXDPOR_CHECKER_BENCH(BM_CheckSnapshotIsolation, SnapshotIsolation);
TXDPOR_CHECKER_BENCH(BM_CheckSerializability, Serializability);
