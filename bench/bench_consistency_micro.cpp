//===- bench/bench_consistency_micro.cpp - Checker microbenchmarks --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of the consistency checkers: the
/// polynomial RC/RA/CC saturation checkers versus the search-based SI/SER
/// checkers, over random histories of growing size. This substantiates
/// the paper's §9 observation that checking is polynomial for RC/RA/CC
/// and NP-complete (search) for SI/SER — visible as the growth-rate gap.
///
/// Since the incremental commit-test engine landed, the file also
/// benchmarks ConstraintState against the scratch checkers: bulk verdicts
/// (BM_Incremental*) and the ValidWrites probe loop (BM_ValidWrites*),
/// the DPOR's innermost loop. A custom main() additionally runs a fixed
/// incremental-vs-scratch checks/sec comparison and dumps it as
/// BENCH_consistency.json (support/Json), the per-PR trajectory record —
/// see docs/BENCHMARKS.md.
///
//===----------------------------------------------------------------------===//

#include "consistency/ConsistencyChecker.h"
#include "consistency/IncrementalChecker.h"
#include "BenchCommon.h"

#include "consistency/SaturationChecker.h"
#include "history/History.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "trace/Counters.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace txdpor;

namespace {

constexpr unsigned kNumVars = 3;

/// Deterministic random history with Txns transactions over 3 sessions.
/// Engine-shaped: one transaction at a time, readers after writers — the
/// discipline both checker families accept.
History makeHistory(unsigned Txns, uint64_t Seed) {
  Rng R(Seed);
  History H = History::makeInitial(kNumVars);
  std::vector<uint32_t> NextIndex(3, 0);
  Value Next = 1;
  for (unsigned T = 0; T != Txns; ++T) {
    uint32_t S = static_cast<uint32_t>(R.nextBelow(3));
    unsigned Idx = H.beginTxn({S, NextIndex[S]++});
    for (unsigned Op = 0, E = 1 + R.nextBelow(2) ; Op != E; ++Op) {
      VarId X = static_cast<VarId>(R.nextBelow(kNumVars));
      if (R.chance(1, 2)) {
        H.appendEvent(Idx, Event::makeWrite(X, Next++));
        continue;
      }
      H.appendEvent(Idx, Event::makeRead(X));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (!H.txn(Idx).isExternalRead(Pos))
        continue;
      std::vector<unsigned> Writers;
      for (unsigned W = 0; W != Idx; ++W)
        if (H.txn(W).isCommitted() && H.txn(W).writesVar(X))
          Writers.push_back(W);
      H.setWriter(Idx, Pos, H.txn(Writers[R.nextBelow(Writers.size())]).uid());
    }
    H.appendEvent(Idx, Event::makeCommit());
  }
  return H;
}

std::vector<History> makeHistories(unsigned Txns) {
  std::vector<History> Histories;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    Histories.push_back(makeHistory(Txns, Seed));
  return Histories;
}

void checkerBenchmark(benchmark::State &State, IsolationLevel Level) {
  std::vector<History> Histories =
      makeHistories(static_cast<unsigned>(State.range(0)));
  const ConsistencyChecker &Checker = checkerFor(Level);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Checker.isConsistent(Histories[I++ % Histories.size()]));
  }
  State.SetLabel(isolationLevelName(Level));
}

/// The same verdicts through the incremental core's bulk replay — what a
/// swap child pays to rebuild its carried state.
void incrementalBenchmark(benchmark::State &State, IsolationLevel Level) {
  std::vector<History> Histories =
      makeHistories(static_cast<unsigned>(State.range(0)));
  LevelAssignment Levels = LevelAssignment::uniform(Level);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        ConstraintState(Histories[I++ % Histories.size()], Levels)
            .consistent());
  }
  State.SetLabel(std::string(isolationLevelName(Level)) + "-incremental");
}

/// One ValidWrites step: a pending reader probes every committed writer
/// of a variable. The scratch variant re-points the wr dependency and
/// rebuilds the constraint graph per candidate (the engine's pre-
/// incremental inner loop); the probe variant queries the carried state.
struct ValidWritesFixture {
  History H;            ///< With the reader's read appended (scratch side).
  History Prefix;       ///< Without the read (state side).
  unsigned ReaderIdx;
  uint32_t ReadPos;
  VarId Var = 0;
  std::vector<unsigned> Candidates;

  explicit ValidWritesFixture(unsigned Txns) {
    Prefix = makeHistory(Txns, /*Seed=*/3);
    ReaderIdx = Prefix.beginTxn({3, 0});
    H = Prefix;
    H.appendEvent(ReaderIdx, Event::makeRead(Var));
    ReadPos = static_cast<uint32_t>(H.txn(ReaderIdx).size()) - 1;
    Candidates = H.committedWriters(Var);
  }
};

void validWritesScratch(benchmark::State &State) {
  ValidWritesFixture F(static_cast<unsigned>(State.range(0)));
  const ConsistencyChecker &Checker =
      checkerFor(IsolationLevel::CausalConsistency);
  for (auto _ : State) {
    unsigned Admitted = 0;
    for (unsigned W : F.Candidates) {
      F.H.setWriter(F.ReaderIdx, F.ReadPos, F.H.txn(W).uid());
      Admitted += Checker.isConsistent(F.H);
    }
    benchmark::DoNotOptimize(Admitted);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(F.Candidates.size()));
  State.SetLabel("scratch");
}

void validWritesIncremental(benchmark::State &State) {
  ValidWritesFixture F(static_cast<unsigned>(State.range(0)));
  ConstraintState St(F.Prefix,
                     LevelAssignment::uniform(
                         IsolationLevel::CausalConsistency));
  for (auto _ : State) {
    unsigned Admitted = 0;
    for (unsigned W : F.Candidates)
      Admitted += St.readAdmits(W, F.Var);
    benchmark::DoNotOptimize(Admitted);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(F.Candidates.size()));
  State.SetLabel("incremental");
}

} // namespace

#define TXDPOR_CHECKER_BENCH(NAME, LEVEL)                                     \
  static void NAME(benchmark::State &State) {                                 \
    checkerBenchmark(State, IsolationLevel::LEVEL);                           \
  }                                                                           \
  BENCHMARK(NAME)->Arg(4)->Arg(8)->Arg(12)->Arg(16)

#define TXDPOR_INCREMENTAL_BENCH(NAME, LEVEL)                                 \
  static void NAME(benchmark::State &State) {                                 \
    incrementalBenchmark(State, IsolationLevel::LEVEL);                       \
  }                                                                           \
  BENCHMARK(NAME)->Arg(4)->Arg(8)->Arg(12)->Arg(16)

TXDPOR_CHECKER_BENCH(BM_CheckReadCommitted, ReadCommitted);
TXDPOR_CHECKER_BENCH(BM_CheckReadAtomic, ReadAtomic);
TXDPOR_CHECKER_BENCH(BM_CheckCausalConsistency, CausalConsistency);
TXDPOR_CHECKER_BENCH(BM_CheckSnapshotIsolation, SnapshotIsolation);
TXDPOR_CHECKER_BENCH(BM_CheckSerializability, Serializability);

TXDPOR_INCREMENTAL_BENCH(BM_IncrementalReadCommitted, ReadCommitted);
TXDPOR_INCREMENTAL_BENCH(BM_IncrementalReadAtomic, ReadAtomic);
TXDPOR_INCREMENTAL_BENCH(BM_IncrementalCausalConsistency, CausalConsistency);

BENCHMARK(validWritesScratch)->Name("BM_ValidWritesScratch")->Arg(8)->Arg(16);
BENCHMARK(validWritesIncremental)
    ->Name("BM_ValidWritesIncremental")
    ->Arg(8)
    ->Arg(16);

namespace {

/// Fixed-budget checks/sec of one ValidWrites configuration, measured
/// with plain chrono so the JSON dump works without the google-benchmark
/// console reporter.
double checksPerSecond(unsigned Txns, bool Incremental) {
  ValidWritesFixture F(Txns);
  const ConsistencyChecker &Checker =
      checkerFor(IsolationLevel::CausalConsistency);
  ConstraintState St(F.Prefix,
                     LevelAssignment::uniform(
                         IsolationLevel::CausalConsistency));
  using Clock = std::chrono::steady_clock;
  const auto Budget = std::chrono::milliseconds(200);
  auto Start = Clock::now();
  uint64_t Checks = 0;
  unsigned Sink = 0;
  while (Clock::now() - Start < Budget) {
    for (unsigned Rep = 0; Rep != 16; ++Rep) {
      for (unsigned W : F.Candidates) {
        if (Incremental) {
          Sink += St.readAdmits(W, F.Var);
        } else {
          F.H.setWriter(F.ReaderIdx, F.ReadPos, F.H.txn(W).uid());
          Sink += Checker.isConsistent(F.H);
        }
        ++Checks;
      }
    }
  }
  benchmark::DoNotOptimize(Sink);
  double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return static_cast<double>(Checks) / Seconds;
}

/// Dumps BENCH_consistency.json: incremental-vs-scratch commit-test rates
/// per history size, the trajectory record for this optimization.
void dumpConsistencyJson() {
  const char *Path = std::getenv("TXDPOR_BENCH_JSON_CONSISTENCY");
  if (!Path || !*Path)
    Path = "BENCH_consistency.json";
  std::ofstream OS(Path);
  if (!OS) {
    std::cerr << "error: cannot open '" << Path << "' for writing\n";
    return;
  }
  JsonWriter J(OS);
  J.beginObject();
  J.key("bench").value("consistency_micro");
  J.key("metric").value("CC ValidWrites commit tests per second");
  bench::writeHostMetadata(J);
  J.key("runs").beginArray();
  for (unsigned Txns : {8u, 16u}) {
    double Scratch = checksPerSecond(Txns, /*Incremental=*/false);
    double Incremental = checksPerSecond(Txns, /*Incremental=*/true);
    J.beginObject();
    J.key("txns").value(Txns);
    J.key("scratch_checks_per_sec").value(Scratch);
    J.key("incremental_checks_per_sec").value(Incremental);
    J.key("speedup").value(Incremental / Scratch);
    J.endObject();
    std::cout << "ValidWrites(" << Txns << " txns): scratch "
              << static_cast<uint64_t>(Scratch) << "/s, incremental "
              << static_cast<uint64_t>(Incremental) << "/s ("
              << Incremental / Scratch << "x)\n";
  }
  J.endArray();
  // Process-lifetime trace counters: bulk_rebuilds counts the scratch
  // ConstraintState constructions the incremental path avoids.
  J.key("counters").beginObject();
  trace::writeCounters(J);
  J.endObject();
  J.endObject();
  OS << '\n';
  std::cout << "wrote " << Path << '\n';
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  dumpConsistencyJson();
  return 0;
}
