//===- bench/bench_fig14_cactus.cpp - Fig. 14 a/b/c reproduction ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the cactus plots of Fig. 14: for each algorithm (CC, CC+SI,
/// CC+SER, RA+CC, RC+CC, true+CC, DFS(CC)) over the 25 benchmark client
/// programs (5 apps × 5 clients, 3 sessions × 3 transactions), print the
/// sorted per-benchmark series of (a) running time, (b) peak memory and
/// (c) end states — the exact series behind the paper's plots. Timed-out
/// runs are excluded from the series and reported, matching the paper's
/// "these plots exclude benchmarks that timeout" note.
///
/// Expected shape (paper): CC ≈ CC+SI ≈ CC+SER below RA+CC below RC+CC,
/// with true+CC and DFS(CC) worst and timing out most; memory flat.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

int main() {
  int64_t Budget = benchBudgetMs();
  std::vector<NamedProgram> Programs =
      makeBenchmarkPrograms(/*Sessions=*/3, /*Txns=*/3);

  std::cout << "Fig. 14 cactus series: " << Programs.size()
            << " benchmark programs, budget " << Budget << " ms/run\n\n";

  struct Series {
    std::string Name;
    std::vector<double> Millis;
    std::vector<uint64_t> MemKb;
    std::vector<uint64_t> EndStates;
    unsigned Timeouts = 0;
  };
  std::vector<Series> AllSeries;

  for (const AlgorithmSpec &Algo : fig14Algorithms()) {
    Series S;
    S.Name = Algo.Name;
    for (const NamedProgram &NP : Programs) {
      RunResult R = runAlgorithm(NP.Prog, Algo, Budget);
      if (R.timedOut()) {
        ++S.Timeouts;
        continue;
      }
      S.Millis.push_back(R.millis());
      S.MemKb.push_back(R.memKb());
      S.EndStates.push_back(R.endStates());
    }
    std::sort(S.Millis.begin(), S.Millis.end());
    std::sort(S.MemKb.begin(), S.MemKb.end());
    std::sort(S.EndStates.begin(), S.EndStates.end());
    AllSeries.push_back(std::move(S));
  }

  auto PrintSeries = [&](const char *Title, auto Getter) {
    std::cout << "== Fig. 14" << Title << " ==\n";
    for (const Series &S : AllSeries) {
      std::cout << S.Name << " (timeouts: " << S.Timeouts << "):";
      for (size_t I = 0; I != S.Millis.size(); ++I)
        std::cout << ' ' << Getter(S, I);
      std::cout << '\n';
    }
    std::cout << '\n';
  };

  PrintSeries("a: cumulative solved vs time (ms, sorted per benchmark)",
              [](const Series &S, size_t I) { return S.Millis[I]; });
  PrintSeries("b: memory (peak RSS kb, sorted)",
              [](const Series &S, size_t I) { return double(S.MemKb[I]); });
  PrintSeries("c: end states (sorted)", [](const Series &S, size_t I) {
    return double(S.EndStates[I]);
  });

  // Shape summary, mirroring the paper's reading of the figure.
  std::cout << "== Shape summary ==\n";
  TablePrinter T({"algorithm", "solved", "timeouts", "total-time-ms",
                  "max-end-states"});
  for (const Series &S : AllSeries) {
    double Total = 0;
    for (double M : S.Millis)
      Total += M;
    uint64_t MaxEnd = S.EndStates.empty() ? 0 : S.EndStates.back();
    T.addRow({S.Name, std::to_string(S.Millis.size()),
              std::to_string(S.Timeouts),
              std::to_string(static_cast<long long>(Total)),
              std::to_string(MaxEnd)});
  }
  T.print(std::cout);
  return 0;
}
