//===- bench/bench_fuzz_throughput.cpp - Differential-fuzz throughput -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cases-per-second of the differential fuzzing subsystem, per shape
/// preset and per pipeline stage: generation alone (how fast the corpus
/// can be produced) and the full oracle loop (generation + explorer diff
/// + checker cross-checks — the number that bounds nightly coverage).
/// Tracking this across PRs keeps the fuzz budget honest: an explorer or
/// checker slowdown shows up here as fewer cases per nightly run.
///
/// Dumps the series as BENCH_fuzz.json (TXDPOR_BENCH_JSON overrides)
/// next to the human-readable table. Honors TXDPOR_BENCH_BUDGET_MS per
/// (shape, stage) cell, default 800 ms.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fuzz/Fuzzer.h"
#include "support/Deadline.h"
#include "support/Json.h"
#include "trace/Counters.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;
using namespace txdpor::fuzz;

namespace {

struct Cell {
  std::string Shape;
  std::string Stage;
  uint64_t Cases = 0;
  double Millis = 0;

  double casesPerSec() const {
    return Millis > 0 ? Cases * 1000.0 / Millis : 0;
  }
};

/// Generation alone: programs and histories, no checking.
Cell runGeneration(const std::string &ShapeName, int64_t BudgetMs) {
  Cell C{ShapeName, "generate", 0, 0};
  std::optional<ProgramShape> Shape = programShapeByName(ShapeName);
  HistoryShape HShape = historyShapeFor(*Shape);
  Deadline Budget = Deadline::afterMillis(BudgetMs);
  Stopwatch Timer;
  for (uint64_t Case = 0; !Budget.expired(); ++Case) {
    Rng R(Rng::deriveSeed(1, Case));
    if (R.chance(50, 100))
      generateHistory(R, HShape);
    else
      generateCase(R, *Shape);
    ++C.Cases;
  }
  C.Millis = Timer.elapsedMillis();
  return C;
}

/// The full differential loop, as `txdpor-cli fuzz` runs it.
Cell runOracle(const std::string &ShapeName, int64_t BudgetMs) {
  Cell C{ShapeName, "oracle", 0, 0};
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Iterations = ~0ULL >> 1;
  Options.TimeBudgetMs = BudgetMs;
  Options.ShapeName = ShapeName;
  Stopwatch Timer;
  FuzzReport Report = runFuzz(Options);
  C.Cases = Report.Cases;
  C.Millis = Timer.elapsedMillis();
  return C;
}

} // namespace

int main() {
  int64_t BudgetMs = benchBudgetMs();
  std::vector<Cell> Cells;
  for (const std::string &Shape : programShapeNames()) {
    Cells.push_back(runGeneration(Shape, BudgetMs));
    Cells.push_back(runOracle(Shape, BudgetMs));
  }

  TablePrinter Table({"shape", "stage", "cases", "ms", "cases/s"});
  for (const Cell &C : Cells) {
    char Rate[32];
    std::snprintf(Rate, sizeof(Rate), "%.0f", C.casesPerSec());
    char Ms[32];
    std::snprintf(Ms, sizeof(Ms), "%.1f", C.Millis);
    Table.addRow({C.Shape, C.Stage, formatCount(C.Cases), Ms, Rate});
  }
  std::cout << "Differential-fuzz throughput (budget " << BudgetMs
            << " ms per cell)\n\n";
  Table.print(std::cout);

  const char *JsonPath = std::getenv("TXDPOR_BENCH_JSON");
  std::string Path = JsonPath ? JsonPath : "BENCH_fuzz.json";
  std::ofstream OS(Path);
  JsonWriter J(OS);
  J.beginObject();
  J.key("bench").value("fuzz_throughput");
  J.key("budget_ms").value(static_cast<int64_t>(BudgetMs));
  writeHostMetadata(J);
  J.key("cells").beginArray();
  for (const Cell &C : Cells) {
    J.beginObject();
    J.key("shape").value(C.Shape);
    J.key("stage").value(C.Stage);
    J.key("cases").value(C.Cases);
    J.key("ms").value(C.Millis);
    J.key("cases_per_sec").value(C.casesPerSec());
    J.endObject();
  }
  J.endArray();
  // Process-lifetime trace counters: fuzz_cases cross-checks the summed
  // cells; the rest records how much explorer work the oracle legs did.
  J.key("counters").beginObject();
  trace::writeCounters(J);
  J.endObject();
  J.endObject();
  OS << '\n';
  std::cout << "\nwrote " << Path << '\n';
  return 0;
}
