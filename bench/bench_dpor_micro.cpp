//===- bench/bench_dpor_micro.cpp - Explorer microbenchmarks --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of full explorations on fixed small
/// programs, per base isolation level — the kernel cost behind every
/// table row. Useful for tracking performance regressions of the swap /
/// ValidWrites machinery.
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "core/Enumerate.h"

#include <benchmark/benchmark.h>

using namespace txdpor;

namespace {

Program makeFig10() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.read("b", Y);
  auto T1 = B.beginTxn(1);
  T1.write(X, 2);
  T1.write(Y, 2);
  return B.build();
}

Program makeClient(AppKind App) {
  ClientSpec Spec;
  Spec.Sessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.Seed = 1;
  return makeClientProgram(App, Spec);
}

void exploreBenchmark(benchmark::State &State, const Program &P,
                      IsolationLevel Base) {
  for (auto _ : State) {
    ExplorerStats Stats = exploreProgram(P, ExplorerConfig::exploreCE(Base));
    benchmark::DoNotOptimize(Stats.Outputs);
  }
  State.SetLabel(isolationLevelName(Base));
}

void BM_ExploreFig10_CC(benchmark::State &State) {
  Program P = makeFig10();
  exploreBenchmark(State, P, IsolationLevel::CausalConsistency);
}
void BM_ExploreFig10_RC(benchmark::State &State) {
  Program P = makeFig10();
  exploreBenchmark(State, P, IsolationLevel::ReadCommitted);
}
void BM_ExploreFig10_True(benchmark::State &State) {
  Program P = makeFig10();
  exploreBenchmark(State, P, IsolationLevel::Trivial);
}
void BM_ExploreCourseware2x2_CC(benchmark::State &State) {
  Program P = makeClient(AppKind::Courseware);
  exploreBenchmark(State, P, IsolationLevel::CausalConsistency);
}
void BM_ExploreTpcc2x2_CC(benchmark::State &State) {
  Program P = makeClient(AppKind::Tpcc);
  exploreBenchmark(State, P, IsolationLevel::CausalConsistency);
}
void BM_ExploreTwitter2x2_CC(benchmark::State &State) {
  Program P = makeClient(AppKind::Twitter);
  exploreBenchmark(State, P, IsolationLevel::CausalConsistency);
}

void BM_ExploreTpcc2x2_CCplusSER(benchmark::State &State) {
  Program P = makeClient(AppKind::Tpcc);
  for (auto _ : State) {
    ExplorerStats Stats = exploreProgram(
        P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                         IsolationLevel::Serializability));
    benchmark::DoNotOptimize(Stats.Outputs);
  }
}

} // namespace

BENCHMARK(BM_ExploreFig10_CC);
BENCHMARK(BM_ExploreFig10_RC);
BENCHMARK(BM_ExploreFig10_True);
BENCHMARK(BM_ExploreCourseware2x2_CC);
BENCHMARK(BM_ExploreTpcc2x2_CC);
BENCHMARK(BM_ExploreTwitter2x2_CC);
BENCHMARK(BM_ExploreTpcc2x2_CCplusSER);
