//===- bench/bench_parallel_scaling.cpp - Parallel explorer speedups ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-scaling curves for the parallel exploration engine: TPC-C,
/// Courseware and Twitter clients explored with 1/2/4/8 worker threads
/// under explore-ce(CC). Reports per-configuration wall time and the
/// speedup over the 1-thread run, and verifies on the fly that every
/// thread count produced the same history and end-state counts (the
/// engine's determinism guarantee).
///
/// Besides the human-readable table, dumps the whole series as JSON (by
/// default BENCH_parallel.json, overridable via TXDPOR_BENCH_JSON) so
/// future PRs can track the scaling trajectory mechanically.
///
/// Environment knobs (see BenchCommon.h): TXDPOR_BENCH_BUDGET_MS scales
/// the per-run budget (default 800 ms — raise it on real hardware to let
/// the larger configurations finish and show their full speedup).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Json.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

using namespace txdpor;
using namespace txdpor::bench;

namespace {

struct ScalingRun {
  std::string App;
  unsigned Sessions = 0;
  unsigned Txns = 0;
  unsigned Threads = 0;
  RunResult Result;
  double Speedup = 0; ///< t(1 thread) / t(this run); 0 when unknown.
};

std::string formatSpeedup(const ScalingRun &Run) {
  if (Run.Threads == 1)
    return Run.Result.timedOut() ? "-" : "1.00x";
  if (Run.Speedup <= 0 || Run.Result.timedOut())
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fx", Run.Speedup);
  return Buf;
}

} // namespace

int main() {
  int64_t Budget = benchBudgetMs();
  const unsigned ThreadCounts[] = {1, 2, 4, 8};

  std::cout << "Parallel scaling of explore-ce(CC): frontier split + "
               "work-stealing workers (budget "
            << Budget << " ms/run, "
            << std::thread::hardware_concurrency() << " hardware threads)\n\n";

  struct Shape {
    AppKind App;
    unsigned Sessions, Txns;
  };
  std::vector<Shape> Shapes = {
      {AppKind::Tpcc, 3, 3},       {AppKind::Tpcc, 4, 3},
      {AppKind::Courseware, 3, 3}, {AppKind::Courseware, 4, 3},
      {AppKind::Twitter, 4, 3},
  };
  // Opt-in shapes that take tens of seconds sequentially — the regime
  // where near-linear speedups show; raise TXDPOR_BENCH_BUDGET_MS too.
  const char *Large = std::getenv("TXDPOR_BENCH_LARGE");
  if (Large && *Large && *Large != '0') {
    Shapes.push_back({AppKind::Tpcc, 5, 4});
    Shapes.push_back({AppKind::Courseware, 5, 3});
  }

  TablePrinter T({"benchmark", "sessions", "txns", "threads", "histories",
                  "end-states", "time", "speedup", "mem-kb"});
  std::vector<ScalingRun> Runs;
  bool Deterministic = true;

  for (const Shape &Sh : Shapes) {
    ClientSpec Spec;
    Spec.Sessions = Sh.Sessions;
    Spec.TxnsPerSession = Sh.Txns;
    Spec.Seed = 1;
    Program P = makeClientProgram(Sh.App, Spec);

    double BaselineMillis = 0;
    uint64_t BaselineHistories = 0;
    bool BaselineTimedOut = false;
    for (unsigned Threads : ThreadCounts) {
      AlgorithmSpec Algo = AlgorithmSpec::exploreCEParallel(
          IsolationLevel::CausalConsistency, Threads);
      ScalingRun Run;
      Run.App = appName(Sh.App);
      Run.Sessions = Sh.Sessions;
      Run.Txns = Sh.Txns;
      Run.Threads = Threads;
      Run.Result = runAlgorithm(P, Algo, Budget);
      if (Threads == 1) {
        BaselineMillis = Run.Result.millis();
        BaselineHistories = Run.Result.histories();
        BaselineTimedOut = Run.Result.timedOut();
      } else {
        // A speedup is only meaningful between two *completed* runs; a
        // timed-out baseline would inflate every ratio computed from it.
        if (!BaselineTimedOut && !Run.Result.timedOut() &&
            Run.Result.millis() > 0)
          Run.Speedup = BaselineMillis / Run.Result.millis();
        // The determinism guarantee only binds complete runs.
        if (!BaselineTimedOut && !Run.Result.timedOut() &&
            Run.Result.histories() != BaselineHistories) {
          Deterministic = false;
          std::cerr << "DETERMINISM VIOLATION: " << Run.App << " "
                    << Sh.Sessions << "x" << Sh.Txns << " @ " << Threads
                    << " threads: " << Run.Result.histories()
                    << " histories vs " << BaselineHistories << "\n";
        }
      }
      T.addRow({Run.App, std::to_string(Sh.Sessions),
                std::to_string(Sh.Txns), std::to_string(Threads),
                formatCount(Run.Result.histories()),
                formatCount(Run.Result.endStates()),
                TablePrinter::formatMillis(Run.Result.millis(),
                                           Run.Result.timedOut()),
                formatSpeedup(Run), formatCount(Run.Result.memKb())});
      Runs.push_back(std::move(Run));
    }
  }
  T.print(std::cout);

  const char *JsonPath = std::getenv("TXDPOR_BENCH_JSON");
  if (!JsonPath || !*JsonPath)
    JsonPath = "BENCH_parallel.json";
  std::ofstream OS(JsonPath);
  if (!OS) {
    std::cerr << "error: cannot open '" << JsonPath << "' for writing\n";
    return 1;
  }
  JsonWriter J(OS);
  J.beginObject();
  J.key("bench").value("parallel_scaling");
  J.key("algorithm").value("explore-ce(CC)");
  J.key("budget_ms").value(static_cast<int64_t>(Budget));
  J.key("hardware_threads").value(std::thread::hardware_concurrency());
  writeHostMetadata(J);
  J.key("runs").beginArray();
  for (const ScalingRun &Run : Runs) {
    J.beginObject();
    J.key("app").value(Run.App);
    J.key("sessions").value(Run.Sessions);
    J.key("txns_per_session").value(Run.Txns);
    J.key("threads").value(Run.Threads);
    J.key("histories").value(Run.Result.histories());
    J.key("end_states").value(Run.Result.endStates());
    J.key("millis").value(Run.Result.millis());
    J.key("speedup").value(Run.Speedup);
    J.key("timed_out").value(Run.Result.timedOut());
    J.key("mem_kb").value(Run.Result.memKb());
    J.key("explore_calls").value(Run.Result.Stats.ExploreCalls);
    J.key("swaps_applied").value(Run.Result.Stats.SwapsApplied);
    J.key("frontier_items").value(Run.Result.Stats.FrontierItems);
    J.key("steal_successes").value(Run.Result.Stats.StealSuccesses);
    J.key("steal_failures").value(Run.Result.Stats.StealFailures);
    J.key("idle_parks").value(Run.Result.Stats.IdleParks);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  OS << '\n';
  std::cout << "\nwrote " << JsonPath << '\n';

  return Deterministic ? 0 : 1;
}
