//===- bench/bench_dedup.cpp - Subtree dedup & symmetry reduction ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Effect of the canonical-fingerprint subtree dedup (core/Dedup.h) on
/// exploration size and wall clock: a grid of workloads × shapes is run
/// with --dedup off / exact / symmetry, recording histories, explore
/// calls, dedup probes/skips and time. Two asymmetric applications
/// (courseware, tpcc — structurally distinct sessions, so symmetry should
/// be a no-op) bracket the identical-sessions stress shape, where the
/// tree is dominated by renaming-isomorphic subtrees and symmetry must
/// show a strict histories-explored decrease. Tracking the series across
/// PRs keeps both directions honest: a reduction appearing on the
/// asymmetric apps would be a soundness alarm, a reduction vanishing on
/// identical would be an effectiveness regression.
///
/// Dumps the grid as BENCH_dedup.json (TXDPOR_BENCH_JSON overrides) next
/// to the human-readable table. Honors TXDPOR_BENCH_BUDGET_MS per cell,
/// default 800 ms.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Json.h"
#include "support/MemoryProbe.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace txdpor;
using namespace txdpor::bench;

namespace {

struct Cell {
  std::string Workload;
  const char *Mode = "off";
  unsigned Sessions = 0;
  unsigned Txns = 0;
  ExplorerStats Stats;
};

const char *dedupModeName(DedupMode M) {
  switch (M) {
  case DedupMode::Off:
    return "off";
  case DedupMode::Exact:
    return "exact";
  case DedupMode::Symmetry:
    return "symmetry";
  }
  return "?";
}

Cell runCell(AppKind App, unsigned Sessions, unsigned Txns, DedupMode Mode,
             int64_t BudgetMs) {
  ClientSpec Spec;
  Spec.Sessions = Sessions;
  Spec.TxnsPerSession = Txns;
  Spec.Seed = 1;
  Program P = makeClientProgram(App, Spec);

  ExplorerConfig Config =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  Config.Dedup = Mode;
  Config.TimeBudget = Deadline::afterMillis(BudgetMs);

  Cell C;
  C.Workload = appName(App);
  C.Mode = dedupModeName(Mode);
  C.Sessions = Sessions;
  C.Txns = Txns;
  // Min of 3: the counts are deterministic, so repeats only de-noise the
  // wall clock (single-shot cells were noisy enough to invert sub-20%
  // deltas on this grid). A cell that exhausts its budget is reported
  // from the first run — tripling the timeout tail buys nothing.
  C.Stats = exploreProgram(P, Config);
  for (int Rep = 1; Rep < 3 && !C.Stats.TimedOut; ++Rep) {
    Config.TimeBudget = Deadline::afterMillis(BudgetMs);
    ExplorerStats S = exploreProgram(P, Config);
    if (!S.TimedOut && S.ElapsedMillis < C.Stats.ElapsedMillis)
      C.Stats = S;
  }
  return C;
}

} // namespace

int main() {
  int64_t BudgetMs = benchBudgetMs();
  const AppKind Apps[] = {AppKind::Courseware, AppKind::Tpcc,
                          AppKind::IdenticalSessions};
  const std::pair<unsigned, unsigned> Shapes[] = {
      {3, 2}, {3, 3}, {4, 2}, {4, 3}};
  const DedupMode Modes[] = {DedupMode::Off, DedupMode::Exact,
                             DedupMode::Symmetry};

  std::vector<Cell> Cells;
  for (AppKind App : Apps)
    for (auto [Sessions, Txns] : Shapes)
      for (DedupMode Mode : Modes)
        Cells.push_back(runCell(App, Sessions, Txns, Mode, BudgetMs));

  TablePrinter Table({"workload", "shape", "mode", "histories", "explore",
                      "checks", "skips", "ms", "timeout"});
  for (const Cell &C : Cells) {
    char Ms[32];
    std::snprintf(Ms, sizeof(Ms), "%.1f", C.Stats.ElapsedMillis);
    Table.addRow({C.Workload,
                  std::to_string(C.Sessions) + "x" + std::to_string(C.Txns),
                  C.Mode, formatCount(C.Stats.Outputs),
                  formatCount(C.Stats.ExploreCalls),
                  formatCount(C.Stats.DedupChecks),
                  formatCount(C.Stats.DedupSkips), Ms,
                  C.Stats.TimedOut ? "yes" : "no"});
  }
  std::cout << "Subtree dedup grid (budget " << BudgetMs
            << " ms per cell)\n\n";
  Table.print(std::cout);

  const char *JsonPath = std::getenv("TXDPOR_BENCH_JSON");
  std::string Path = JsonPath ? JsonPath : "BENCH_dedup.json";
  std::ofstream OS(Path);
  JsonWriter J(OS);
  J.beginObject();
  J.key("bench").value("dedup");
  J.key("budget_ms").value(static_cast<int64_t>(BudgetMs));
  writeHostMetadata(J);
  J.key("cells").beginArray();
  for (const Cell &C : Cells) {
    J.beginObject();
    J.key("workload").value(C.Workload);
    J.key("sessions").value(C.Sessions);
    J.key("txns_per_session").value(C.Txns);
    J.key("mode").value(C.Mode);
    J.key("histories").value(C.Stats.Outputs);
    J.key("end_states").value(C.Stats.EndStates);
    J.key("explore_calls").value(C.Stats.ExploreCalls);
    J.key("dedup_checks").value(C.Stats.DedupChecks);
    J.key("dedup_skips").value(C.Stats.DedupSkips);
    J.key("ms").value(C.Stats.ElapsedMillis);
    J.key("timed_out").value(C.Stats.TimedOut);
    J.endObject();
  }
  J.endArray();
  J.endObject();
  OS << '\n';
  std::cout << "\nwrote " << Path << '\n';
  return 0;
}
