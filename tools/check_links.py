#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Scans README.md and docs/*.md for markdown [text](target) links and fails
if a relative target does not exist on disk; also flags unbalanced ```
code fences (usually a mangled mermaid block). External links
(http/https/mailto) and #anchors are skipped — CI must stay hermetic.
Run from anywhere; paths resolve against the repository root:

    python3 tools/check_links.py
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def check_file(path: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(2)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path}:{line}: broken link -> {target}")
    # Unbalanced code fences usually mean a mangled mermaid/code block.
    if text.count("```") % 2 != 0:
        errors.append(f"{path}: unbalanced ``` code fences")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    errors = []
    for f in files:
        if f.exists():
            errors.extend(check_file(f))
        else:
            errors.append(f"{f}: file missing")
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {len(files)} files, {len(errors)} errors")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
