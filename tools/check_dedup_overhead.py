#!/usr/bin/env python3
"""Regression gate on the dedup fingerprint overhead in BENCH_dedup.json.

The honest cost of `--dedup` on workloads where it never skips anything
(courseware, tpcc: every session is its own structural class) is pure
fingerprint overhead: the exact/off wall-clock ratio of a cell measures
how expensive `itemFingerprint` is per expansion. PR 8 computed every
fingerprint from scratch (full canonicalization per probe), which put
that ratio well above 2x on the larger grids; the carried O(delta)
fingerprint must keep it strictly below the PR-8 baseline. Cells are
noisy at sub-millisecond scale, so only cells whose dedup-off wall time
clears --min-off-ms qualify, and the gate is on the *median* qualifying
ratio (a single descheduled run cannot fail CI; a real regression moves
every cell).

Exit status: 0 = gate passed, 1 = bad input, 2 = gate failed.
"""

import argparse
import json
import statistics
import sys


def qualifying_ratios(doc, mode, min_off_ms):
    """Yields (cell_name, ratio) for every grid point with an off cell and
    a `mode` cell, neither timed out and the off cell above the noise
    floor."""
    by_point = {}
    for cell in doc.get("cells", []):
        point = (cell["workload"], cell["sessions"], cell["txns_per_session"])
        by_point.setdefault(point, {})[cell["mode"]] = cell
    for point in sorted(by_point):
        cells = by_point[point]
        off, probed = cells.get("off"), cells.get(mode)
        if off is None or probed is None:
            continue
        if off.get("timed_out") or probed.get("timed_out"):
            continue
        if off["ms"] < min_off_ms:
            continue
        name = "%s %dx%d" % point
        yield name, probed["ms"] / off["ms"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="BENCH_dedup.json to gate")
    parser.add_argument(
        "--mode",
        default="exact",
        choices=["exact", "symmetry"],
        help="dedup mode whose overhead vs off is gated (default exact: "
        "zero skips on the asymmetric workloads, so the ratio is pure "
        "fingerprint cost)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when the median mode/off wall-clock ratio over "
        "qualifying cells exceeds this (default 2.0, the PR-8 "
        "from-scratch-fingerprint baseline)",
    )
    parser.add_argument(
        "--min-off-ms",
        type=float,
        default=20.0,
        help="ignore cells whose dedup-off wall time is below this noise "
        "floor in ms (default 20)",
    )
    args = parser.parse_args()

    try:
        with open(args.bench_json) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("error: cannot read %s: %s" % (args.bench_json, e),
              file=sys.stderr)
        return 1
    if doc.get("bench") != "dedup":
        print("error: %s is not a BENCH_dedup.json dump" % args.bench_json,
              file=sys.stderr)
        return 1

    ratios = list(qualifying_ratios(doc, args.mode, args.min_off_ms))
    if not ratios:
        # A very tight bench budget can leave every big cell timed out;
        # report rather than vacuously pass.
        print("warning: no qualifying cells (raise TXDPOR_BENCH_BUDGET_MS "
              "or lower --min-off-ms); gate skipped")
        return 0

    for name, ratio in ratios:
        print("%-20s %s/off ratio %.2f" % (name, args.mode, ratio))
    median = statistics.median(r for _, r in ratios)
    verdict = "within" if median <= args.max_ratio else "EXCEEDS"
    print("median ratio %.2f %s the %.2f gate (%d cells)"
          % (median, verdict, args.max_ratio, len(ratios)))
    return 0 if median <= args.max_ratio else 2


if __name__ == "__main__":
    sys.exit(main())
