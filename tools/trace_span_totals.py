#!/usr/bin/env python3
"""Sum span durations per (category, name) in a txdpor Chrome trace dump.

Usage: tools/trace_span_totals.py FILE [FILE ...] [--names a,b] [--markdown]

The before/after evidence for hot-path work: given one or more --trace
dumps, prints per-span-name totals (count, total wall time, mean) so a
claim like "bulk_rebuild time dropped" is a table diff rather than a
flamechart eyeball. With two or more files the table gets one column
group per file plus a delta column against the first (the baseline).

Only complete events (ph == "X") participate; instants and counter
samples carry no duration. Durations are the self-reported `dur` of each
span — nested spans are NOT subtracted from their parents, exactly as
chrome://tracing's "Wall Duration" column reports them.

Exit status: 0 = ok, 2 = usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_totals(path):
    """Returns {(cat, name): [count, total_us]} for ph=="X" events."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_span_totals: cannot load {path}: {e}", file=sys.stderr)
        return None
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        print(f"trace_span_totals: {path}: no traceEvents array",
              file=sys.stderr)
        return None
    totals = defaultdict(lambda: [0, 0.0])
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        key = (ev.get("cat", "?"), ev.get("name", "?"))
        dur = ev.get("dur", 0)
        if not isinstance(dur, (int, float)) or dur < 0:
            continue
        totals[key][0] += 1
        totals[key][1] += dur
    return totals


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.1f}ms"
    return f"{us:.0f}us"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+",
                        help="Chrome trace-event JSON file(s); the first "
                        "is the baseline for delta columns")
    parser.add_argument("--names",
                        help="comma-separated span names to restrict to "
                        "(default: all)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavored markdown table")
    args = parser.parse_args()

    wanted = set(args.names.split(",")) if args.names else None
    per_file = []
    for path in args.traces:
        totals = load_totals(path)
        if totals is None:
            return 2
        per_file.append(totals)

    keys = sorted({k for t in per_file for k in t
                   if wanted is None or k[1] in wanted})
    if not keys:
        print("trace_span_totals: no matching spans", file=sys.stderr)
        return 0

    header = ["category", "span"]
    for path in args.traces:
        stem = path.rsplit("/", 1)[-1]
        header += [f"count({stem})", f"total({stem})"]
    if len(per_file) > 1:
        header.append("Δtotal vs first")

    rows = []
    for key in keys:
        row = [key[0], key[1]]
        for totals in per_file:
            count, us = totals.get(key, [0, 0.0])
            row += [str(count), fmt_us(us)]
        if len(per_file) > 1:
            base = per_file[0].get(key, [0, 0.0])[1]
            last = per_file[-1].get(key, [0, 0.0])[1]
            if base > 0:
                row.append(f"{(last - base) / base * 100:+.1f}%")
            else:
                row.append("new" if last > 0 else "-")
        rows.append(row)

    if args.markdown:
        print("| " + " | ".join(header) + " |")
        print("|" + "|".join("---" for _ in header) + "|")
        for row in rows:
            print("| " + " | ".join(row) + " |")
    else:
        widths = [max(len(header[i]), max(len(r[i]) for r in rows))
                  for i in range(len(header))]
        print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        for row in rows:
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
