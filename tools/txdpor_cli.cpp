//===- tools/txdpor_cli.cpp - Command-line front end ----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end over the library: generate a benchmark client
/// program, explore it with any of the paper's algorithms (or the DFS /
/// random-walk baselines), print statistics, optionally dump histories,
/// classify outputs against a stronger level with violation explanations,
/// and export witnesses as Graphviz.
///
/// Examples:
///   txdpor-cli --app tpcc --sessions 3 --txns 3 --base CC
///   txdpor-cli --app courseware --base CC --classify SER --print-witness
///   txdpor-cli --app twitter --walks 500
///   txdpor-cli --app wikipedia --base RC --filter CC --budget-ms 5000
///   txdpor-cli --app tpcc --sessions 4 --txns 3 --threads 8
///
/// The `fuzz` verb runs the differential fuzzer (src/fuzz/): seeded
/// random programs/histories through redundant explorers and checkers,
/// disagreements delta-debugged to litmus repro files:
///   txdpor-cli fuzz --seed 7 --iters 5000 --shape sql --out repros/
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "consistency/Explain.h"
#include "consistency/LevelParse.h"
#include "consistency/StreamingChecker.h"
#include "core/Enumerate.h"
#include "core/RandomWalk.h"
#include "fuzz/Fuzzer.h"
#include "history/Dot.h"
#include "history/Serialize.h"
#include "parallel/ParallelExplorer.h"
#include "support/Json.h"
#include "support/MemoryProbe.h"
#include "support/Parse.h"
#include "support/TablePrinter.h"
#include "trace/ChromeTrace.h"
#include "trace/Counters.h"
#include "trace_io/TraceGen.h"
#include "trace_io/TraceReader.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace txdpor;

namespace {

struct CliOptions {
  AppKind App = AppKind::Tpcc;
  unsigned Sessions = 3;
  unsigned Txns = 3;
  uint64_t Seed = 1;
  IsolationLevel Base = IsolationLevel::CausalConsistency;
  /// Per-session base levels from --levels; empty = uniform Base.
  std::vector<std::pair<unsigned, IsolationLevel>> Levels;
  bool MixedWorkload = false;
  std::optional<IsolationLevel> Filter;
  std::optional<IsolationLevel> Classify;
  bool UseDfs = false;
  std::optional<uint64_t> Walks;
  DedupMode Dedup = DedupMode::Off;
  /// --dedup-max-entries: memo-table bound (0 = unbounded, the default).
  uint64_t DedupMaxEntries = 0;
  int64_t BudgetMs = 30000;
  unsigned Threads = 1;
  unsigned SplitFactor = 4;
  unsigned SplitDepth = 0;
  bool PrintProgram = false;
  bool PrintHistories = false;
  bool PrintWitness = false;
  bool Minimize = false;
  std::string DotFile;
  std::string SaveFile;
  std::string TraceFile;
  std::string TraceCategories;
};

/// RAII tracing session shared by both verbs: `--trace FILE` opens FILE
/// up front (a bad path is a diagnostic before any exploration runs),
/// enables the selected categories, and dumps Chrome trace-event JSON on
/// every exit path — including the --walks/--dfs early returns and runs
/// whose category mask recorded nothing (still a valid, empty trace).
class TraceSession {
public:
  TraceSession() = default;
  TraceSession(const TraceSession &) = delete;
  TraceSession &operator=(const TraceSession &) = delete;

  /// Validates and arms the session; false with a diagnostic on a bad
  /// path or an unknown category. With an empty \p File only the stray
  /// --trace-categories check fires.
  bool init(const std::string &File, const std::string &CategoriesSpec,
            std::vector<std::pair<std::string, std::string>> Metadata) {
    if (File.empty()) {
      if (!CategoriesSpec.empty()) {
        std::cerr << "error: --trace-categories requires --trace\n";
        return false;
      }
      return true;
    }
    uint32_t Mask = trace::AllCategories;
    if (!CategoriesSpec.empty()) {
      std::string Bad;
      std::optional<uint32_t> Parsed =
          trace::parseCategories(CategoriesSpec, &Bad);
      if (!Parsed) {
        std::cerr << "error: unknown trace category '" << Bad
                  << "' (expected a comma-separated list of explore, swap, "
                     "check, replay, parallel, fuzz, or all)\n";
        return false;
      }
      Mask = *Parsed;
    }
    Out.open(File);
    if (!Out) {
      std::cerr << "error: cannot open '" << File << "' for writing\n";
      return false;
    }
    this->File = File;
    Meta = std::move(Metadata);
    trace::setThreadName("main");
    trace::start(Mask);
    Active = true;
    return true;
  }

  ~TraceSession() {
    if (!Active)
      return;
    trace::stop();
    trace::Snapshot Snap = trace::snapshot();
    trace::ChromeTraceOptions Opts;
    Opts.Counters = trace::counterSnapshot();
    Opts.Metadata = std::move(Meta);
    trace::writeChromeTrace(Out, Snap, Opts);
    std::cout << "wrote " << File << " (" << Snap.totalRecords()
              << " trace records";
    if (Snap.totalDropped())
      std::cout << ", " << Snap.totalDropped() << " dropped";
    std::cout << ")\n";
  }

private:
  std::ofstream Out;
  std::string File;
  std::vector<std::pair<std::string, std::string>> Meta;
  bool Active = false;
};

/// The original invocation, re-quoted into one string for the trace's
/// otherData metadata.
std::string joinCommandLine(int Argc, char **Argv) {
  std::ostringstream OS;
  for (int I = 0; I != Argc; ++I)
    OS << (I ? " " : "") << Argv[I];
  return OS.str();
}

void printUsage() {
  std::cout <<
      "txdpor-cli: stateless model checking for transactional programs\n"
      "\n"
      "  fuzz [...]          run the differential fuzzer; see\n"
      "                      txdpor-cli fuzz --help\n"
      "  check-trace [...]   check a trace of committed transactions online;\n"
      "                      see txdpor-cli check-trace --help\n"
      "  gen-trace [...]     generate a synthetic trace; see\n"
      "                      txdpor-cli gen-trace --help\n"
      "  --app NAME          shoppingCart|twitter|courseware|wikipedia|\n"
      "                      tpcc|identical (identical = every session\n"
      "                      runs the same transaction sequence)\n"
      "  --sessions N        sessions in the client program (default 3)\n"
      "  --txns N            transactions per session (default 3)\n"
      "  --seed N            client-generation seed (default 1)\n"
      "  --base LEVEL        explore-ce base: true|RC|RA|CC (default CC)\n"
      "  --levels SPEC       per-session base levels (mixed isolation),\n"
      "                      e.g. S0=CC,S1=RC or positional CC,RC,CC;\n"
      "                      unnamed sessions run at --base\n"
      "  --mixed-workload    tag the client's read-only sessions RC and\n"
      "                      its writers CC (per-session semantics)\n"
      "  --filter LEVEL      explore-ce* filter: RC|RA|CC|SI|SER\n"
      "  --classify LEVEL    classify outputs against LEVEL, explain the\n"
      "                      first violation\n"
      "  --dfs               run the no-POR DFS baseline instead\n"
      "  --walks N           run N random-walk samples instead\n"
      "  --dedup[=MODE]      subtree dedup: off|exact|symmetry (default\n"
      "                      off; bare --dedup means symmetry). exact\n"
      "                      skips repeated WorkItems, symmetry also\n"
      "                      collapses session-renaming-isomorphic ones\n"
      "  --dedup-max-entries N\n"
      "                      cap the dedup memo table at ~N fingerprints\n"
      "                      with CLOCK eviction (default 0 = unbounded;\n"
      "                      eviction re-explores, never wrongly skips)\n"
      "  --budget-ms N       wall-clock budget (default 30000)\n"
      "  --threads N         worker threads for the exploration (default 1\n"
      "                      = sequential; the output history set is\n"
      "                      identical for every N)\n"
      "  --split-factor K    parallel frontier target of K*threads subtrees\n"
      "                      before workers start (default 4)\n"
      "  --split-depth D     never split below depth D (default 0 =\n"
      "                      unbounded)\n"
      "  --print-program     dump the generated program\n"
      "  --print-histories   dump every output history\n"
      "  --print-witness     dump the first classified violation\n"
      "  --minimize          shrink the violation witness to its core\n"
      "  --dot FILE          write the first history (or witness) as dot\n"
      "  --save FILE         archive all output histories (text format)\n"
      "  --trace FILE        record a Chrome trace-event JSON of the run\n"
      "                      (open in chrome://tracing or Perfetto)\n"
      "  --trace-categories LIST\n"
      "                      comma-separated subset of explore,swap,check,\n"
      "                      replay,parallel,fuzz (default all)\n";
}

std::optional<IsolationLevel> parseLevel(const std::string &Name) {
  return isolationLevelByName(Name);
}

std::optional<AppKind> parseApp(const std::string &Name) {
  for (AppKind App : AllApps)
    if (Name == appName(App))
      return App;
  return std::nullopt;
}

/// Pulls "--opt value" and "--opt=value" options off argv. Every numeric
/// option goes through the checked support/Parse.h parsers: the previous
/// std::atoi/atoll handling silently turned "--sessions abc" into 0 and
/// wrapped "--sessions -1" to ~4×10⁹ through static_cast<unsigned>.
class OptionReader {
public:
  OptionReader(int Argc, char **Argv) : Argc(Argc), Argv(Argv) {}

  /// True while arguments remain; loads the next option into option().
  bool next() {
    if (++I >= Argc)
      return false;
    Opt = Argv[I];
    Inline.reset();
    size_t Eq = Opt.find('=');
    if (Opt.size() > 2 && Opt[0] == '-' && Opt[1] == '-' &&
        Eq != std::string::npos) {
      Inline = Opt.substr(Eq + 1);
      Opt = Opt.substr(0, Eq);
    }
    return true;
  }
  const std::string &option() const { return Opt; }
  bool is(const char *Name) const { return Opt == Name; }

  /// The "--opt=value" inline value, if one was given. For options whose
  /// value is *optional*: unlike value(), never consumes the next argv
  /// token, so "--dedup --threads 2" parses as a bare --dedup.
  const std::optional<std::string> &inlineValue() const { return Inline; }

  /// For boolean flags: rejects a stray inline value so "--minimize=off"
  /// is a diagnostic, not a silently-enabled flag.
  bool flag() {
    if (!Inline)
      return true;
    std::cerr << "error: " << Opt << " does not take a value (got '"
              << *Inline << "')\n";
    return false;
  }

  /// The option's value ("--opt value" or "--opt=value"); false with a
  /// diagnostic when absent.
  bool value(std::string &Out) {
    if (Inline) {
      Out = *Inline;
      return true;
    }
    if (I + 1 >= Argc) {
      std::cerr << "error: " << Opt << " needs a value\n";
      return false;
    }
    Out = Argv[++I];
    return true;
  }

  /// A value that must parse as a bounded non-negative integer.
  bool unsignedValue(unsigned &Out, uint64_t Max = 0xffffffffu) {
    std::string V;
    if (!value(V))
      return false;
    std::optional<unsigned> Parsed = parseBoundedUInt(V, Max);
    if (!Parsed) {
      std::cerr << "error: " << Opt << " expects a non-negative integer"
                << (Max != 0xffffffffu ? " up to " + std::to_string(Max)
                                       : std::string())
                << ", got '" << V << "'\n";
      return false;
    }
    Out = *Parsed;
    return true;
  }

  /// A value that must parse as a non-negative 64-bit integer.
  bool uint64Value(uint64_t &Out) {
    std::string V;
    if (!value(V))
      return false;
    std::optional<uint64_t> Parsed = parseUInt(V);
    if (!Parsed) {
      std::cerr << "error: " << Opt
                << " expects a non-negative integer, got '" << V << "'\n";
      return false;
    }
    Out = *Parsed;
    return true;
  }

  /// A millisecond budget: a signed parse so "-5" is diagnosed as a
  /// negative budget (not as malformed), then rejected — a negative
  /// value used to flow into Deadline unchecked.
  bool budgetValue(int64_t &Out) {
    std::string V;
    if (!value(V))
      return false;
    std::optional<int64_t> Parsed = parseInt(V);
    if (!Parsed) {
      std::cerr << "error: " << Opt << " expects an integer, got '" << V
                << "'\n";
      return false;
    }
    if (*Parsed < 0) {
      std::cerr << "error: " << Opt << " must be non-negative, got " << V
                << '\n';
      return false;
    }
    Out = *Parsed;
    return true;
  }

  /// An isolation-level value.
  bool levelValue(IsolationLevel &Out) {
    std::string V;
    if (!value(V))
      return false;
    std::optional<IsolationLevel> Level = parseLevel(V);
    if (!Level) {
      std::cerr << "error: unknown isolation level '" << V << "'\n";
      return false;
    }
    Out = *Level;
    return true;
  }

private:
  int Argc;
  char **Argv;
  int I = 0;
  std::string Opt;
  std::optional<std::string> Inline;
};

/// Parses a --levels spec: comma-separated entries, each "S<N>=<LEVEL>"
/// or a bare "<LEVEL>" assigned to the next positional session
/// ("S0=CC,S1=RC" and "CC,RC" are equivalent).
bool parseLevelsSpec(const std::string &Spec,
                     std::vector<std::pair<unsigned, IsolationLevel>> &Out) {
  auto Fail = [&](const std::string &Msg) {
    std::cerr << "error: bad --levels entry: " << Msg << '\n';
    return false;
  };
  unsigned NextPositional = 0;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Tok = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    if (Tok.empty())
      return Fail("empty entry");
    std::optional<std::pair<unsigned, IsolationLevel>> Entry;
    if (Tok.find('=') != std::string::npos) {
      // "S<N>=<LEVEL>" — the same entry grammar the litmus level line
      // uses (consistency/IsolationLevel.h).
      Entry = parseSessionLevel(Tok);
      if (!Entry)
        return Fail("'" + Tok + "' (expected S<N>=<LEVEL>)");
    } else {
      std::optional<IsolationLevel> Level = parseLevel(Tok);
      if (!Level)
        return Fail("unknown isolation level '" + Tok + "'");
      Entry = std::make_pair(NextPositional, *Level);
    }
    Out.push_back(*Entry);
    NextPositional = Entry->first + 1;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  OptionReader R(Argc, Argv);
  while (R.next()) {
    if (R.is("--help") || R.is("-h")) {
      printUsage();
      std::exit(0);
    }
    if (R.is("--app")) {
      std::string Value;
      if (!R.value(Value))
        return false;
      std::optional<AppKind> App = parseApp(Value);
      if (!App) {
        std::cerr << "error: unknown application '" << Value << "'\n";
        return false;
      }
      Options.App = *App;
    } else if (R.is("--sessions")) {
      if (!R.unsignedValue(Options.Sessions, /*Max=*/64))
        return false;
    } else if (R.is("--txns")) {
      if (!R.unsignedValue(Options.Txns, /*Max=*/64))
        return false;
    } else if (R.is("--seed")) {
      if (!R.uint64Value(Options.Seed))
        return false;
    } else if (R.is("--base")) {
      if (!R.levelValue(Options.Base))
        return false;
    } else if (R.is("--filter")) {
      IsolationLevel L;
      if (!R.levelValue(L))
        return false;
      Options.Filter = L;
    } else if (R.is("--classify")) {
      IsolationLevel L;
      if (!R.levelValue(L))
        return false;
      Options.Classify = L;
    } else if (R.is("--levels")) {
      std::string Value;
      if (!R.value(Value) || !parseLevelsSpec(Value, Options.Levels))
        return false;
    } else if (R.is("--mixed-workload")) {
      if (!R.flag())
        return false;
      Options.MixedWorkload = true;
    } else if (R.is("--dfs")) {
      if (!R.flag())
        return false;
      Options.UseDfs = true;
    } else if (R.is("--walks")) {
      uint64_t W;
      if (!R.uint64Value(W))
        return false;
      Options.Walks = W;
    } else if (R.is("--dedup")) {
      if (!R.inlineValue()) {
        Options.Dedup = DedupMode::Symmetry;
      } else if (*R.inlineValue() == "off") {
        Options.Dedup = DedupMode::Off;
      } else if (*R.inlineValue() == "exact") {
        Options.Dedup = DedupMode::Exact;
      } else if (*R.inlineValue() == "symmetry") {
        Options.Dedup = DedupMode::Symmetry;
      } else {
        std::cerr << "error: --dedup must be one of off, exact, symmetry "
                     "(got '"
                  << *R.inlineValue() << "')\n";
        return false;
      }
    } else if (R.is("--dedup-max-entries")) {
      if (!R.uint64Value(Options.DedupMaxEntries))
        return false;
    } else if (R.is("--budget-ms")) {
      if (!R.budgetValue(Options.BudgetMs))
        return false;
    } else if (R.is("--threads")) {
      if (!R.unsignedValue(Options.Threads, /*Max=*/1024))
        return false;
    } else if (R.is("--split-factor")) {
      if (!R.unsignedValue(Options.SplitFactor, /*Max=*/4096))
        return false;
    } else if (R.is("--split-depth")) {
      if (!R.unsignedValue(Options.SplitDepth))
        return false;
    } else if (R.is("--print-program")) {
      if (!R.flag())
        return false;
      Options.PrintProgram = true;
    } else if (R.is("--print-histories")) {
      if (!R.flag())
        return false;
      Options.PrintHistories = true;
    } else if (R.is("--print-witness")) {
      if (!R.flag())
        return false;
      Options.PrintWitness = true;
    } else if (R.is("--minimize")) {
      if (!R.flag())
        return false;
      Options.Minimize = true;
    } else if (R.is("--dot")) {
      if (!R.value(Options.DotFile))
        return false;
    } else if (R.is("--save")) {
      if (!R.value(Options.SaveFile))
        return false;
    } else if (R.is("--trace")) {
      if (!R.value(Options.TraceFile))
        return false;
    } else if (R.is("--trace-categories")) {
      if (!R.value(Options.TraceCategories))
        return false;
    } else {
      std::cerr << "error: unknown option '" << R.option() << "'\n";
      printUsage();
      return false;
    }
  }
  if (Options.Base != IsolationLevel::Trivial &&
      !isPrefixClosedCausallyExtensible(Options.Base)) {
    std::cerr << "error: --base must be one of true, RC, RA, CC (§5)\n";
    return false;
  }
  for (const auto &[Session, Level] : Options.Levels) {
    if (!isPrefixClosedCausallyExtensible(Level)) {
      std::cerr << "error: --levels S" << Session
                << " must be one of true, RC, RA, CC (§5; mixes of such "
                   "levels stay causally extensible)\n";
      return false;
    }
    if (Options.Filter && !isWeakerOrEqual(Level, *Options.Filter)) {
      std::cerr << "error: --levels S" << Session
                << " must be weaker than --filter (Cor. 6.2)\n";
      return false;
    }
  }
  if (Options.Filter && !isWeakerOrEqual(Options.Base, *Options.Filter)) {
    std::cerr << "error: --base must be weaker than --filter (Cor. 6.2)\n";
    return false;
  }
  return true;
}

/// False (after a diagnostic) when \p File cannot be written — callers
/// exit non-zero, per the checked-parse convention: an invocation that
/// did not do what was asked never exits 0.
bool writeDot(const std::string &File, const History &H,
              const VarNameFn &Names) {
  DotOptions DotOpts;
  DotOpts.VarNames = &Names;
  std::ofstream OS(File);
  if (!OS) {
    std::cerr << "error: cannot open '" << File << "' for writing\n";
    return false;
  }
  OS << renderDot(H, DotOpts);
  std::cout << "wrote " << File << '\n';
  return true;
}

//===----------------------------------------------------------------------===//
// The fuzz verb
//===----------------------------------------------------------------------===//

void printFuzzUsage() {
  std::cout <<
      "txdpor-cli fuzz: differential fuzzing of explorers and checkers\n"
      "\n"
      "  --seed N            base seed (default 1); every case K runs on\n"
      "                      its own substream derived from (seed, K)\n"
      "  --iters N           cases to run (default 1000)\n"
      "  --time-budget MS    wall-clock cutoff in ms (default 0 = none)\n"
      "  --shape NAME        tiny|default|wide|deep|sql|mixed\n"
      "  --levels SPEC       pin every program case to this per-session\n"
      "                      level mix (e.g. S0=CC,S1=RC): the oracle\n"
      "                      runs its mixed-semantics legs against it\n"
      "  --history-percent P share of raw-history cases (default 50)\n"
      "  --no-minimize       report disagreements without delta debugging\n"
      "  --out DIR           write minimized repros as litmus files here\n"
      "  --max-findings N    stop after N disagreeing cases (default 16)\n"
      "  --mutate NAME       TEST ONLY: weaken a checker axiom\n"
      "                      (weak-cc|weak-ra) to validate the fuzzer\n"
      "                      catches injected bugs\n"
      "  --trace FILE        record a Chrome trace-event JSON of the run\n"
      "  --trace-categories LIST\n"
      "                      comma-separated category subset (default all)\n"
      "\n"
      "exit status: 0 = no disagreements, 2 = disagreements found\n";
}

int fuzzMain(int Argc, char **Argv) {
  fuzz::FuzzOptions Options;
  Options.Log = &std::cout;
  std::string LevelsSpec;
  std::string TraceFile, TraceCategories;
  OptionReader R(Argc, Argv);
  while (R.next()) {
    if (R.is("--help") || R.is("-h")) {
      printFuzzUsage();
      return 0;
    } else if (R.is("--seed")) {
      if (!R.uint64Value(Options.Seed))
        return 1;
    } else if (R.is("--iters")) {
      if (!R.uint64Value(Options.Iterations))
        return 1;
    } else if (R.is("--time-budget")) {
      if (!R.budgetValue(Options.TimeBudgetMs))
        return 1;
    } else if (R.is("--shape")) {
      std::string Value;
      if (!R.value(Value))
        return 1;
      if (!fuzz::programShapeByName(Value)) {
        std::cerr << "error: unknown shape '" << Value << "'; one of:";
        for (const std::string &Name : fuzz::programShapeNames())
          std::cerr << ' ' << Name;
        std::cerr << '\n';
        return 1;
      }
      Options.ShapeName = Value;
    } else if (R.is("--levels")) {
      std::vector<std::pair<unsigned, IsolationLevel>> Entries;
      if (!R.value(LevelsSpec) || !parseLevelsSpec(LevelsSpec, Entries))
        return 1;
      // The fuzzer's mix is dense (one level per session); gaps in a
      // sparse spec run at CC, the oracle's default base. Like the
      // explore verb, pins must stay in the causally-extensible chain —
      // the mixed-semantics legs would otherwise silently clamp an
      // SI/SER pin to CC, soaking a deployment the user never asked for.
      for (const auto &[Session, Level] : Entries) {
        if (!isPrefixClosedCausallyExtensible(Level)) {
          std::cerr << "error: --levels S" << Session
                    << " must be one of true, RC, RA, CC (§5)\n";
          return 1;
        }
        if (Options.ForcedSessionLevels.size() <= Session)
          Options.ForcedSessionLevels.resize(
              Session + 1, IsolationLevel::CausalConsistency);
        Options.ForcedSessionLevels[Session] = Level;
      }
    } else if (R.is("--history-percent")) {
      unsigned P;
      if (!R.unsignedValue(P, /*Max=*/100))
        return 1;
      Options.HistoryCasePercent = P;
    } else if (R.is("--no-minimize")) {
      if (!R.flag())
        return 1;
      Options.Minimize = false;
    } else if (R.is("--out")) {
      if (!R.value(Options.OutDir))
        return 1;
    } else if (R.is("--max-findings")) {
      if (!R.uint64Value(Options.MaxDisagreements))
        return 1;
    } else if (R.is("--mutate")) {
      std::string Value;
      if (!R.value(Value))
        return 1;
      std::optional<fuzz::CheckerMutation> M =
          fuzz::checkerMutationByName(Value);
      if (!M) {
        std::cerr << "error: unknown mutation '" << Value
                  << "' (none|weak-cc|weak-ra)\n";
        return 1;
      }
      Options.Mutation = *M;
    } else if (R.is("--trace")) {
      if (!R.value(TraceFile))
        return 1;
    } else if (R.is("--trace-categories")) {
      if (!R.value(TraceCategories))
        return 1;
    } else {
      std::cerr << "error: unknown fuzz option '" << R.option() << "'\n";
      printFuzzUsage();
      return 1;
    }
  }

  TraceSession Trace;
  if (!Trace.init(TraceFile, TraceCategories,
                  {{"command", joinCommandLine(Argc, Argv)}}))
    return 1;

  std::cout << "fuzz: seed " << Options.Seed << ", " << Options.Iterations
            << " iterations, shape " << Options.ShapeName;
  if (Options.Mutation != fuzz::CheckerMutation::None)
    std::cout << ", MUTATION " << fuzz::checkerMutationName(Options.Mutation);
  std::cout << '\n';

  fuzz::FuzzReport Report = fuzz::runFuzz(Options);

  std::cout << "fuzz: " << Report.Cases << " cases ("
            << Report.ProgramCases << " programs, " << Report.HistoryCases
            << " histories), " << Report.DisagreeingCases
            << " disagreements, " << Report.ElapsedMillis << " ms"
            << (Report.TimedOut ? " (timed out)" : "") << '\n';
  for (const std::string &File : Report.ReproFiles)
    std::cout << "repro: " << File << '\n';
  if (Report.DisagreeingCases != 0) {
    // Echo every reproduction-relevant flag: the printed command must
    // replay the run verbatim, not a default-shaped approximation of it.
    std::cout << "reproduce with: txdpor-cli fuzz --seed " << Options.Seed
              << " --iters " << Options.Iterations << " --shape "
              << Options.ShapeName << " --history-percent "
              << Options.HistoryCasePercent << " --max-findings "
              << Options.MaxDisagreements;
    if (!LevelsSpec.empty())
      std::cout << " --levels " << LevelsSpec;
    if (!Options.Minimize)
      std::cout << " --no-minimize";
    if (Options.Mutation != fuzz::CheckerMutation::None)
      std::cout << " --mutate " << fuzz::checkerMutationName(Options.Mutation);
    std::cout << '\n';
    return 2;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// The check-trace verb
//===----------------------------------------------------------------------===//

void printCheckTraceUsage() {
  std::cout <<
      "txdpor-cli check-trace FILE: online isolation checking of a trace\n"
      "of committed transactions (litmus or JSONL, auto-detected; '-' or\n"
      "no FILE reads stdin)\n"
      "\n"
      "  --window N          window budget in transactions: the decided\n"
      "                      prefix is garbage-collected to keep the live\n"
      "                      window near N (default 0 = never evict)\n"
      "  --base LEVEL        check at this level: true|RC|RA|CC\n"
      "  --levels SPEC       per-session levels, e.g. S0=CC,S1=RC\n"
      "                      (--base/--levels override the trace header;\n"
      "                      with neither, the header's assignment or CC)\n"
      "  --report FILE       write a JSON run report (verdict, counters,\n"
      "                      peak window, peak RSS)\n"
      "  --repro FILE        on a violation, write the offending window as\n"
      "                      a standalone litmus trace\n"
      "\n"
      "exit status: 0 = consistent, 1 = malformed trace or usage error,\n"
      "             2 = isolation violation, 3 = undecided (a read's\n"
      "             writer left the window; raise --window)\n";
}

/// One verdict word for the report JSON and the summary line.
const char *streamStatusName(StreamStatus S) {
  switch (S) {
  case StreamStatus::Ok:
    return "consistent";
  case StreamStatus::Anomaly:
    return "anomaly";
  case StreamStatus::StaleRead:
    return "undecided";
  case StreamStatus::Malformed:
    return "malformed";
  }
  return "?";
}

int checkTraceMain(int Argc, char **Argv) {
  std::string InputFile, ReportFile, ReproFile;
  unsigned Window = 0;
  std::optional<IsolationLevel> Base;
  std::vector<std::pair<unsigned, IsolationLevel>> LevelPins;
  OptionReader R(Argc, Argv);
  while (R.next()) {
    if (R.is("--help") || R.is("-h")) {
      printCheckTraceUsage();
      return 0;
    } else if (R.is("--window")) {
      if (!R.unsignedValue(Window, /*Max=*/1u << 26))
        return 1;
    } else if (R.is("--base")) {
      IsolationLevel L;
      if (!R.levelValue(L))
        return 1;
      Base = L;
    } else if (R.is("--levels")) {
      std::string Value;
      if (!R.value(Value) || !parseLevelsSpec(Value, LevelPins))
        return 1;
    } else if (R.is("--report")) {
      if (!R.value(ReportFile))
        return 1;
    } else if (R.is("--repro")) {
      if (!R.value(ReproFile))
        return 1;
    } else if (!R.option().empty() &&
               (R.option() == "-" || R.option()[0] != '-')) {
      if (!InputFile.empty()) {
        std::cerr << "error: more than one input file ('" << InputFile
                  << "' and '" << R.option() << "')\n";
        return 1;
      }
      InputFile = R.option();
    } else {
      std::cerr << "error: unknown check-trace option '" << R.option()
                << "'\n";
      printCheckTraceUsage();
      return 1;
    }
  }

  std::ifstream FileIn;
  if (!InputFile.empty() && InputFile != "-") {
    FileIn.open(InputFile);
    if (!FileIn) {
      std::cerr << "error: cannot open '" << InputFile << "' for reading\n";
      return 1;
    }
  }
  std::istream &In = FileIn.is_open() ? FileIn : std::cin;

  trace_io::TraceReader Reader(In);
  if (!Reader.valid()) {
    std::cerr << "error: " << Reader.error() << '\n';
    return 1;
  }

  // Assignment precedence: explicit flags beat the trace header beats the
  // repo-wide CC default.
  LevelAssignment Levels;
  if (Base || !LevelPins.empty()) {
    Levels = LevelAssignment::uniform(
        Base.value_or(IsolationLevel::CausalConsistency));
    for (const auto &[Session, Level] : LevelPins)
      Levels.set(Session, Level);
  } else if (Reader.header().Levels) {
    Levels = *Reader.header().Levels;
  } else {
    Levels = LevelAssignment::uniform(IsolationLevel::CausalConsistency);
  }
  if (!Levels.allPrefixClosedCausallyExtensible()) {
    std::cerr << "error: streaming checks need a prefix-closed causally-"
                 "extensible assignment (true, RC, RA, CC); got "
              << Levels.str() << '\n';
    return 1;
  }
  if (Reader.header().NumSessions)
    Levels = Levels.resolved(*Reader.header().NumSessions);

  StreamingOptions Opts;
  Opts.Levels = Levels;
  Opts.NumVars = Reader.header().NumVars;
  Opts.NumSessions = Reader.header().NumSessions;
  Opts.WindowBudget = Window;
  StreamingChecker Checker(Opts);

  std::cout << "check-trace: "
            << (InputFile.empty() || InputFile == "-" ? "<stdin>"
                                                      : InputFile)
            << " (" << (Reader.format() == trace_io::TraceFormat::Jsonl
                            ? "jsonl"
                            : "litmus")
            << "), " << Reader.header().NumVars << " vars, assignment "
            << Levels.str() << ", window budget "
            << (Window ? std::to_string(Window) : std::string("unbounded"))
            << '\n';

  auto Start = std::chrono::steady_clock::now();
  std::string Diag;
  TransactionLog Log{TxnUid::init()};
  bool ReaderFailed = false;
  for (;;) {
    trace_io::TraceReader::Next N = Reader.next(Log);
    if (N == trace_io::TraceReader::Next::End)
      break;
    if (N == trace_io::TraceReader::Next::Error) {
      Diag = Reader.error();
      ReaderFailed = true;
      break;
    }
    if (Checker.append(Log, &Diag) != StreamStatus::Ok) {
      Diag += " (record ending at line " + std::to_string(Reader.lineNo()) +
              ")";
      break;
    }
  }
  uint64_t ElapsedMs =
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - Start)
                                .count());

  StreamStatus Status =
      ReaderFailed ? StreamStatus::Malformed : Checker.status();
  const StreamingStats &Stats = Checker.stats();

  if (!ReportFile.empty()) {
    std::ofstream Report(ReportFile);
    if (!Report) {
      std::cerr << "error: cannot open '" << ReportFile << "' for writing\n";
      return 1;
    }
    JsonWriter J(Report);
    J.beginObject();
    J.key("report").value("check-trace");
    J.key("status").value(streamStatusName(Status));
    J.key("assignment").value(Levels.str());
    J.key("window_budget").value(Window);
    J.key("txns").value(Stats.Txns);
    J.key("events").value(Stats.Events);
    J.key("external_reads").value(Stats.ExternalReads);
    J.key("evictions").value(Stats.Evicted);
    J.key("gc_passes").value(Stats.GcPasses);
    J.key("reads_forgotten").value(Stats.ReadsForgotten);
    J.key("peak_window").value(Stats.PeakWindow);
    J.key("peak_window_counter")
        .value(trace::counterValue(trace::Counter::StreamPeakWindow));
    J.key("elapsed_ms").value(ElapsedMs);
    J.key("events_per_sec")
        .value(ElapsedMs ? Stats.Events * 1000 / ElapsedMs : 0);
    J.key("peak_rss_kb").value(peakRssKb());
    if (!Diag.empty())
      J.key("diagnostic").value(Diag);
    J.endObject();
    std::cout << "wrote " << ReportFile << '\n';
  }

  std::cout << "check-trace: " << streamStatusName(Status) << " — "
            << Stats.Txns << " txns (" << Stats.Events << " events), peak "
            << "window " << Stats.PeakWindow << ", " << Stats.Evicted
            << " evicted in " << Stats.GcPasses << " GC passes, "
            << ElapsedMs << " ms";
  if (ElapsedMs)
    std::cout << " (" << Stats.Events * 1000 / ElapsedMs << " events/s)";
  std::cout << '\n';

  switch (Status) {
  case StreamStatus::Ok:
    return 0;
  case StreamStatus::Malformed:
    std::cerr << "error: " << Diag << '\n';
    return 1;
  case StreamStatus::StaleRead:
    std::cerr << "undecided: " << Diag << '\n';
    return 3;
  case StreamStatus::Anomaly:
    break;
  }

  std::cout << Diag << '\n';
  // The window is a standalone witness; Explain re-derives the cycle with
  // per-edge provenance for uniform assignments. The one case it cannot
  // reproduce is a cycle threading constraints inherited from the evicted
  // prefix — then the streaming diagnosis above stands alone.
  if (!Levels.hasExplicit()) {
    ViolationExplanation Explanation =
        explainViolation(Checker.window(), Levels.defaultLevel());
    if (!Explanation.Consistent)
      std::cout << Explanation.Text;
    else
      std::cout << "(the commit-order cycle threads constraints of the "
                   "evicted prefix; no standalone witness)\n";
  }
  if (!ReproFile.empty()) {
    trace_io::TraceHeader ReproHeader;
    std::vector<TransactionLog> ReproTxns;
    std::string Error;
    if (!trace_io::traceFromHistory(Checker.window(), Levels, ReproHeader,
                                    ReproTxns, &Error)) {
      std::cerr << "error: cannot build repro: " << Error << '\n';
      return 1;
    }
    std::ofstream Repro(ReproFile);
    if (!Repro) {
      std::cerr << "error: cannot open '" << ReproFile << "' for writing\n";
      return 1;
    }
    Repro << "# txdpor check-trace repro: violation at "
          << Checker.anomalyTxn().str() << "\n";
    trace_io::writeTrace(Repro, ReproHeader, ReproTxns,
                         trace_io::TraceFormat::Litmus);
    std::cout << "wrote " << ReproFile << '\n';
  }
  return 2;
}

//===----------------------------------------------------------------------===//
// The gen-trace verb
//===----------------------------------------------------------------------===//

void printGenTraceUsage() {
  std::cout <<
      "txdpor-cli gen-trace: deterministic synthetic trace generation\n"
      "\n"
      "  --sessions N        concurrent sessions (default 4)\n"
      "  --vars N            variable universe (default 8)\n"
      "  --seed N            generation seed (default 1)\n"
      "  --events N          target event count (default 10000)\n"
      "  --reads N           reads per transaction (default 2)\n"
      "  --writes N          writes per transaction (default 2)\n"
      "  --abort-percent P   share of aborting transactions (default 5)\n"
      "  --anomaly-at K      inject a read-skew anomaly as transactions\n"
      "                      K through K+2 (default 0 = clean trace)\n"
      "  --base LEVEL        assignment to declare in the header\n"
      "  --levels SPEC       per-session levels for the header\n"
      "  --format FMT        jsonl|litmus (default jsonl)\n"
      "  --out FILE          output file (default stdout)\n";
}

int genTraceMain(int Argc, char **Argv) {
  trace_io::GenConfig Config;
  std::string OutFile;
  trace_io::TraceFormat Format = trace_io::TraceFormat::Jsonl;
  std::optional<IsolationLevel> Base;
  std::vector<std::pair<unsigned, IsolationLevel>> LevelPins;
  OptionReader R(Argc, Argv);
  while (R.next()) {
    if (R.is("--help") || R.is("-h")) {
      printGenTraceUsage();
      return 0;
    } else if (R.is("--sessions")) {
      if (!R.unsignedValue(Config.Sessions, /*Max=*/1u << 20))
        return 1;
    } else if (R.is("--vars")) {
      if (!R.unsignedValue(Config.Vars, /*Max=*/1u << 20))
        return 1;
    } else if (R.is("--seed")) {
      if (!R.uint64Value(Config.Seed))
        return 1;
    } else if (R.is("--events")) {
      if (!R.uint64Value(Config.Events))
        return 1;
    } else if (R.is("--reads")) {
      if (!R.unsignedValue(Config.ReadsPerTxn, /*Max=*/1024))
        return 1;
    } else if (R.is("--writes")) {
      if (!R.unsignedValue(Config.WritesPerTxn, /*Max=*/1024))
        return 1;
    } else if (R.is("--abort-percent")) {
      if (!R.unsignedValue(Config.AbortPercent, /*Max=*/100))
        return 1;
    } else if (R.is("--anomaly-at")) {
      if (!R.uint64Value(Config.AnomalyAtTxn))
        return 1;
    } else if (R.is("--base")) {
      IsolationLevel L;
      if (!R.levelValue(L))
        return 1;
      Base = L;
    } else if (R.is("--levels")) {
      std::string Value;
      if (!R.value(Value) || !parseLevelsSpec(Value, LevelPins))
        return 1;
    } else if (R.is("--format")) {
      std::string Value;
      if (!R.value(Value))
        return 1;
      if (Value == "jsonl")
        Format = trace_io::TraceFormat::Jsonl;
      else if (Value == "litmus")
        Format = trace_io::TraceFormat::Litmus;
      else {
        std::cerr << "error: unknown format '" << Value
                  << "' (jsonl|litmus)\n";
        return 1;
      }
    } else if (R.is("--out")) {
      if (!R.value(OutFile))
        return 1;
    } else {
      std::cerr << "error: unknown gen-trace option '" << R.option()
                << "'\n";
      printGenTraceUsage();
      return 1;
    }
  }
  if (Config.Sessions == 0 || Config.Vars == 0) {
    std::cerr << "error: --sessions and --vars must be positive\n";
    return 1;
  }

  std::ofstream FileOut;
  if (!OutFile.empty()) {
    FileOut.open(OutFile);
    if (!FileOut) {
      std::cerr << "error: cannot open '" << OutFile << "' for writing\n";
      return 1;
    }
  }
  std::ostream &Out = FileOut.is_open() ? FileOut : std::cout;

  trace_io::TraceHeader Header;
  Header.NumVars = Config.Vars;
  Header.NumSessions = Config.Sessions;
  if (Base || !LevelPins.empty()) {
    LevelAssignment Levels = LevelAssignment::uniform(
        Base.value_or(IsolationLevel::CausalConsistency));
    for (const auto &[Session, Level] : LevelPins)
      Levels.set(Session, Level);
    Header.Levels = Levels;
  }
  Out << trace_io::writeTraceHeader(Header, Format);
  uint64_t Txns = 0;
  trace_io::generateTrace(Config, [&](const TransactionLog &Log) {
    ++Txns;
    Out << trace_io::writeTraceTxn(Log, Format);
  });
  Out.flush();
  if (!Out) {
    std::cerr << "error: write failure"
              << (OutFile.empty() ? "" : " on '" + OutFile + "'") << '\n';
    return 1;
  }
  if (!OutFile.empty())
    std::cerr << "gen-trace: wrote " << Txns << " txns to " << OutFile
              << '\n';
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // Verb dispatch: a first argument that is not an option selects a
  // sub-command; an unrecognized one is a usage error (exit 1, like every
  // other rejected invocation — it used to fall through to the option
  // parser and report a misleading "unknown option").
  if (Argc > 1 && Argv[1][0] != '-') {
    if (std::strcmp(Argv[1], "fuzz") == 0)
      return fuzzMain(Argc - 1, Argv + 1);
    if (std::strcmp(Argv[1], "check-trace") == 0)
      return checkTraceMain(Argc - 1, Argv + 1);
    if (std::strcmp(Argv[1], "gen-trace") == 0)
      return genTraceMain(Argc - 1, Argv + 1);
    std::cerr << "error: unknown verb '" << Argv[1]
              << "' (expected fuzz, check-trace or gen-trace)\n";
    return 1;
  }

  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 1;

  for (const auto &[Session, Level] : Options.Levels) {
    (void)Level;
    if (Session >= Options.Sessions) {
      std::cerr << "error: --levels names session S" << Session
                << " but the client has " << Options.Sessions
                << " sessions\n";
      return 1;
    }
  }
  if ((!Options.Levels.empty() || Options.MixedWorkload) &&
      (Options.UseDfs || Options.Walks)) {
    std::cerr << "error: per-session levels need the swapping explorer "
                 "(drop --dfs/--walks)\n";
    return 1;
  }
  if (Options.Dedup != DedupMode::Off &&
      (Options.UseDfs || Options.Walks)) {
    std::cerr << "error: --dedup needs the swapping explorer "
                 "(drop --dfs/--walks)\n";
    return 1;
  }
  if (Options.DedupMaxEntries != 0 && Options.Dedup == DedupMode::Off) {
    std::cerr << "error: --dedup-max-entries requires --dedup\n";
    return 1;
  }

  // Armed before any exploration; its destructor writes the trace on
  // every exit path below (including --walks/--dfs early returns).
  TraceSession Trace;
  if (!Trace.init(Options.TraceFile, Options.TraceCategories,
                  {{"command", joinCommandLine(Argc, Argv)}}))
    return 1;

  ClientSpec Spec;
  Spec.Sessions = Options.Sessions;
  Spec.TxnsPerSession = Options.Txns;
  Spec.Seed = Options.Seed;
  Spec.MixedLevels = Options.MixedWorkload;
  Spec.MixedBase = Options.Base;
  Program P = makeClientProgram(Options.App, Spec);
  VarNameFn Names = P.varNameFn();

  std::cout << "client: " << appName(Options.App) << " seed " << Options.Seed
            << ", " << Options.Sessions << " sessions x " << Options.Txns
            << " txns";
  if (P.levels().hasExplicit())
    std::cout << " [" << P.levels().str() << ']';
  std::cout << '\n';
  if (Options.PrintProgram)
    std::cout << '\n' << P.str() << '\n';

  if (Options.Walks) {
    RandomWalkConfig Config;
    Config.Level = Options.Base;
    Config.NumWalks = *Options.Walks;
    Config.Seed = Options.Seed;
    Config.TimeBudget = Deadline::afterMillis(Options.BudgetMs);
    RandomWalkStats Stats = randomWalkProgram(P, Config);
    std::cout << "random-walk(" << isolationLevelName(Options.Base)
              << "): " << Stats.Walks << " walks, "
              << Stats.DistinctHistories << " distinct histories, "
              << Stats.ElapsedMillis << " ms"
              << (Stats.TimedOut ? " (timed out)" : "") << '\n';
    return 0;
  }

  if (Options.UseDfs) {
    NaiveDfsConfig Config;
    Config.Level = Options.Base;
    Config.TimeBudget = Deadline::afterMillis(Options.BudgetMs);
    ExplorerStats Stats = naiveDfsProgram(P, Config);
    std::cout << "DFS(" << isolationLevelName(Options.Base)
              << "): " << Stats.EndStates << " end states, "
              << Stats.ElapsedMillis << " ms"
              << (Stats.TimedOut ? " (timed out)" : "") << '\n';
    return 0;
  }

  ExplorerConfig Config;
  Config.BaseLevel = Options.Base;
  if (!Options.Levels.empty()) {
    Config.BaseLevels.setDefault(Options.Base);
    for (const auto &[Session, Level] : Options.Levels)
      Config.BaseLevels.set(Session, Level);
  } else if (P.levels().hasExplicit()) {
    // Surface a program-declared assignment (e.g. --mixed-workload) in
    // the config so algorithmName() reports the real base; the engine
    // would resolve to the same assignment either way.
    Config.BaseLevels = P.levels();
  }
  // Normalize against the actual session count so an all-agreeing
  // --levels spec *is* the uniform algorithm, in the report and in the
  // engine ("--base RC --levels CC,CC" runs — and prints — CC). When an
  // all-agreeing spec collapses over a program that *declares* levels
  // (--mixed-workload --levels CC,...), the pins are kept explicit so
  // the user's override still beats the declaration in the engine.
  if (Config.BaseLevels.hasExplicit()) {
    LevelAssignment Resolved = Config.BaseLevels.resolved(P.numSessions());
    Config.BaseLevel = Resolved.defaultLevel();
    if (!Resolved.hasExplicit() && P.levels().hasExplicit())
      for (unsigned S = 0; S != P.numSessions(); ++S)
        Resolved.set(S, Resolved.defaultLevel());
    Config.BaseLevels = std::move(Resolved);
  }
  if (Options.Filter && Config.BaseLevels.hasExplicit() &&
      !Config.BaseLevels.allWeakerOrEqual(*Options.Filter)) {
    std::cerr << "error: every session's base level must be weaker than "
                 "--filter (Cor. 6.2)\n";
    return 1;
  }
  Config.FilterLevel = Options.Filter;
  Config.TimeBudget = Deadline::afterMillis(Options.BudgetMs);
  Config.Threads = Options.Threads;
  Config.SplitFactor = Options.SplitFactor;
  Config.SplitDepth = Options.SplitDepth;
  Config.Dedup = Options.Dedup;
  Config.DedupMaxEntries = Options.DedupMaxEntries;

  std::vector<History> Violations;
  uint64_t Outputs = 0;
  std::optional<History> First;
  std::ofstream Archive;
  if (!Options.SaveFile.empty()) {
    Archive.open(Options.SaveFile);
    if (!Archive) {
      std::cerr << "error: cannot open '" << Options.SaveFile << "'\n";
      return 1;
    }
  }
  // The parallel driver serializes visitor calls internally, so the
  // capture below is safe for any thread count; only the order in which
  // histories stream out depends on the schedule.
  auto RunExploration = [&](const HistoryVisitor &Visit) {
    if (Options.Threads > 1) {
      ParallelExplorer E(P, Config);
      return E.run(Visit);
    }
    Explorer E(P, Config);
    return E.run(Visit);
  };
  ExplorerStats Stats = RunExploration([&](const History &H) {
    ++Outputs;
    if (!First)
      First = H;
    if (Options.PrintHistories)
      std::cout << "--- history " << Outputs << " ---\n" << H.str(&Names);
    if (Archive.is_open())
      Archive << writeHistory(H) << '\n';
    if (Options.Classify && !isConsistent(H, *Options.Classify))
      Violations.push_back(H);
  });
  if (Archive.is_open())
    std::cout << "archived " << Outputs << " histories to "
              << Options.SaveFile << '\n';

  std::cout << Config.algorithmName();
  if (Options.Threads > 1)
    std::cout << " [" << Options.Threads << " threads]";
  std::cout << ": " << Stats.Outputs
            << " histories, " << Stats.EndStates << " end states, "
            << Stats.ExploreCalls << " explore calls, "
            << Stats.SwapsApplied << " swaps, " << Stats.ElapsedMillis
            << " ms" << (Stats.TimedOut ? " (timed out)" : "") << '\n';
  // The commit-test rate: the counter the incremental ConstraintState
  // optimizes, and the per-PR trajectory metric in docs/BENCHMARKS.md.
  if (Stats.ElapsedMillis > 0) {
    double ChecksPerSec =
        static_cast<double>(Stats.ConsistencyChecks) * 1000.0 /
        Stats.ElapsedMillis;
    std::cout << "consistency checks: " << Stats.ConsistencyChecks << " ("
              << static_cast<uint64_t>(ChecksPerSec) << "/s)\n";
  }
  if (Options.Threads > 1)
    std::cout << "parallel: " << Stats.FrontierItems << " frontier items, "
              << Stats.StealSuccesses << " steals ("
              << Stats.StealFailures << " failed sweeps), "
              << Stats.IdleParks << " idle parks\n";
  if (Options.Dedup != DedupMode::Off) {
    std::cout << "dedup ("
              << (Options.Dedup == DedupMode::Exact ? "exact" : "symmetry")
              << "): " << Stats.DedupSkips << " subtrees skipped of "
              << Stats.DedupChecks << " checked";
    if (Options.DedupMaxEntries != 0)
      std::cout << ", " << Stats.DedupEvictions << " evictions (cap "
                << Options.DedupMaxEntries << ")";
    std::cout << "\n";
  }

  if (Options.Classify) {
    std::cout << "classification against "
              << isolationLevelName(*Options.Classify) << ": "
              << Violations.size() << " of " << Stats.Outputs
              << " histories violate it\n";
    if (!Violations.empty()) {
      History Witness = Options.Minimize
                            ? minimizeViolation(Violations.front(),
                                                *Options.Classify)
                            : Violations.front();
      ViolationExplanation Explanation =
          explainViolation(Witness, *Options.Classify, &Names);
      std::cout << Explanation.Text;
      if (Options.PrintWitness)
        std::cout << "witness"
                  << (Options.Minimize ? " (minimized)" : "") << ":\n"
                  << Witness.str(&Names);
      if (!Options.DotFile.empty() &&
          !writeDot(Options.DotFile, Witness, Names))
        return 1;
      return 0;
    }
  }
  if (!Options.DotFile.empty() && First &&
      !writeDot(Options.DotFile, *First, Names))
    return 1;
  return 0;
}
