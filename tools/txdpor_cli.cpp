//===- tools/txdpor_cli.cpp - Command-line front end ----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end over the library: generate a benchmark client
/// program, explore it with any of the paper's algorithms (or the DFS /
/// random-walk baselines), print statistics, optionally dump histories,
/// classify outputs against a stronger level with violation explanations,
/// and export witnesses as Graphviz.
///
/// Examples:
///   txdpor-cli --app tpcc --sessions 3 --txns 3 --base CC
///   txdpor-cli --app courseware --base CC --classify SER --print-witness
///   txdpor-cli --app twitter --walks 500
///   txdpor-cli --app wikipedia --base RC --filter CC --budget-ms 5000
///   txdpor-cli --app tpcc --sessions 4 --txns 3 --threads 8
///
/// The `fuzz` verb runs the differential fuzzer (src/fuzz/): seeded
/// random programs/histories through redundant explorers and checkers,
/// disagreements delta-debugged to litmus repro files:
///   txdpor-cli fuzz --seed 7 --iters 5000 --shape sql --out repros/
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "consistency/Explain.h"
#include "core/Enumerate.h"
#include "core/RandomWalk.h"
#include "fuzz/Fuzzer.h"
#include "history/Dot.h"
#include "history/Serialize.h"
#include "parallel/ParallelExplorer.h"
#include "support/TablePrinter.h"

#include <cstring>
#include <fstream>
#include <iostream>

using namespace txdpor;

namespace {

struct CliOptions {
  AppKind App = AppKind::Tpcc;
  unsigned Sessions = 3;
  unsigned Txns = 3;
  uint64_t Seed = 1;
  IsolationLevel Base = IsolationLevel::CausalConsistency;
  std::optional<IsolationLevel> Filter;
  std::optional<IsolationLevel> Classify;
  bool UseDfs = false;
  std::optional<uint64_t> Walks;
  int64_t BudgetMs = 30000;
  unsigned Threads = 1;
  unsigned SplitFactor = 4;
  unsigned SplitDepth = 0;
  bool PrintProgram = false;
  bool PrintHistories = false;
  bool PrintWitness = false;
  bool Minimize = false;
  std::string DotFile;
  std::string SaveFile;
};

void printUsage() {
  std::cout <<
      "txdpor-cli: stateless model checking for transactional programs\n"
      "\n"
      "  fuzz [...]          run the differential fuzzer; see\n"
      "                      txdpor-cli fuzz --help\n"
      "  --app NAME          shoppingCart|twitter|courseware|wikipedia|tpcc\n"
      "  --sessions N        sessions in the client program (default 3)\n"
      "  --txns N            transactions per session (default 3)\n"
      "  --seed N            client-generation seed (default 1)\n"
      "  --base LEVEL        explore-ce base: true|RC|RA|CC (default CC)\n"
      "  --filter LEVEL      explore-ce* filter: RC|RA|CC|SI|SER\n"
      "  --classify LEVEL    classify outputs against LEVEL, explain the\n"
      "                      first violation\n"
      "  --dfs               run the no-POR DFS baseline instead\n"
      "  --walks N           run N random-walk samples instead\n"
      "  --budget-ms N       wall-clock budget (default 30000)\n"
      "  --threads N         worker threads for the exploration (default 1\n"
      "                      = sequential; the output history set is\n"
      "                      identical for every N)\n"
      "  --split-factor K    parallel frontier target of K*threads subtrees\n"
      "                      before workers start (default 4)\n"
      "  --split-depth D     never split below depth D (default 0 =\n"
      "                      unbounded)\n"
      "  --print-program     dump the generated program\n"
      "  --print-histories   dump every output history\n"
      "  --print-witness     dump the first classified violation\n"
      "  --minimize          shrink the violation witness to its core\n"
      "  --dot FILE          write the first history (or witness) as dot\n"
      "  --save FILE         archive all output histories (text format)\n";
}

std::optional<IsolationLevel> parseLevel(const std::string &Name) {
  for (IsolationLevel Level : AllIsolationLevels)
    if (Name == isolationLevelName(Level))
      return Level;
  return std::nullopt;
}

std::optional<AppKind> parseApp(const std::string &Name) {
  for (AppKind App : AllApps)
    if (Name == appName(App))
      return App;
  return std::nullopt;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  auto NeedValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::cerr << "error: " << Argv[I] << " needs a value\n";
      return nullptr;
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    }
    const char *Value = nullptr;
    if (Arg == "--app") {
      if (!(Value = NeedValue(I)))
        return false;
      std::optional<AppKind> App = parseApp(Value);
      if (!App) {
        std::cerr << "error: unknown application '" << Value << "'\n";
        return false;
      }
      Options.App = *App;
    } else if (Arg == "--sessions") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.Sessions = static_cast<unsigned>(std::atoi(Value));
    } else if (Arg == "--txns") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.Txns = static_cast<unsigned>(std::atoi(Value));
    } else if (Arg == "--seed") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.Seed = static_cast<uint64_t>(std::atoll(Value));
    } else if (Arg == "--base" || Arg == "--filter" || Arg == "--classify") {
      if (!(Value = NeedValue(I)))
        return false;
      std::optional<IsolationLevel> Level = parseLevel(Value);
      if (!Level) {
        std::cerr << "error: unknown isolation level '" << Value << "'\n";
        return false;
      }
      if (Arg == "--base")
        Options.Base = *Level;
      else if (Arg == "--filter")
        Options.Filter = *Level;
      else
        Options.Classify = *Level;
    } else if (Arg == "--dfs") {
      Options.UseDfs = true;
    } else if (Arg == "--walks") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.Walks = static_cast<uint64_t>(std::atoll(Value));
    } else if (Arg == "--budget-ms") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.BudgetMs = std::atoll(Value);
    } else if (Arg == "--threads" || Arg == "--split-factor" ||
               Arg == "--split-depth") {
      if (!(Value = NeedValue(I)))
        return false;
      int Parsed = std::atoi(Value);
      if (Parsed < 0) {
        std::cerr << "error: " << Arg << " must be non-negative\n";
        return false;
      }
      if (Arg == "--threads")
        Options.Threads = static_cast<unsigned>(Parsed);
      else if (Arg == "--split-factor")
        Options.SplitFactor = static_cast<unsigned>(Parsed);
      else
        Options.SplitDepth = static_cast<unsigned>(Parsed);
    } else if (Arg == "--print-program") {
      Options.PrintProgram = true;
    } else if (Arg == "--print-histories") {
      Options.PrintHistories = true;
    } else if (Arg == "--print-witness") {
      Options.PrintWitness = true;
    } else if (Arg == "--minimize") {
      Options.Minimize = true;
    } else if (Arg == "--dot") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.DotFile = Value;
    } else if (Arg == "--save") {
      if (!(Value = NeedValue(I)))
        return false;
      Options.SaveFile = Value;
    } else {
      std::cerr << "error: unknown option '" << Arg << "'\n";
      printUsage();
      return false;
    }
  }
  if (Options.Base != IsolationLevel::Trivial &&
      !isPrefixClosedCausallyExtensible(Options.Base)) {
    std::cerr << "error: --base must be one of true, RC, RA, CC (§5)\n";
    return false;
  }
  if (Options.Filter && !isWeakerOrEqual(Options.Base, *Options.Filter)) {
    std::cerr << "error: --base must be weaker than --filter (Cor. 6.2)\n";
    return false;
  }
  return true;
}

void writeDot(const std::string &File, const History &H,
              const VarNameFn &Names) {
  DotOptions DotOpts;
  DotOpts.VarNames = &Names;
  std::ofstream OS(File);
  if (!OS) {
    std::cerr << "error: cannot open '" << File << "' for writing\n";
    return;
  }
  OS << renderDot(H, DotOpts);
  std::cout << "wrote " << File << '\n';
}

//===----------------------------------------------------------------------===//
// The fuzz verb
//===----------------------------------------------------------------------===//

void printFuzzUsage() {
  std::cout <<
      "txdpor-cli fuzz: differential fuzzing of explorers and checkers\n"
      "\n"
      "  --seed N            base seed (default 1); every case K runs on\n"
      "                      its own substream derived from (seed, K)\n"
      "  --iters N           cases to run (default 1000)\n"
      "  --time-budget MS    wall-clock cutoff in ms (default 0 = none)\n"
      "  --shape NAME        tiny|default|wide|deep|sql|mixed\n"
      "  --history-percent P share of raw-history cases (default 50)\n"
      "  --no-minimize       report disagreements without delta debugging\n"
      "  --out DIR           write minimized repros as litmus files here\n"
      "  --max-findings N    stop after N disagreeing cases (default 16)\n"
      "  --mutate NAME       TEST ONLY: weaken a checker axiom\n"
      "                      (weak-cc|weak-ra) to validate the fuzzer\n"
      "                      catches injected bugs\n"
      "\n"
      "exit status: 0 = no disagreements, 2 = disagreements found\n";
}

int fuzzMain(int Argc, char **Argv) {
  fuzz::FuzzOptions Options;
  Options.Log = &std::cout;
  auto NeedValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::cerr << "error: " << Argv[I] << " needs a value\n";
      return nullptr;
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Value = nullptr;
    if (Arg == "--help" || Arg == "-h") {
      printFuzzUsage();
      return 0;
    } else if (Arg == "--seed") {
      if (!(Value = NeedValue(I)))
        return 1;
      Options.Seed = static_cast<uint64_t>(std::atoll(Value));
    } else if (Arg == "--iters") {
      if (!(Value = NeedValue(I)))
        return 1;
      Options.Iterations = static_cast<uint64_t>(std::atoll(Value));
    } else if (Arg == "--time-budget") {
      if (!(Value = NeedValue(I)))
        return 1;
      Options.TimeBudgetMs = std::atoll(Value);
    } else if (Arg == "--shape") {
      if (!(Value = NeedValue(I)))
        return 1;
      if (!fuzz::programShapeByName(Value)) {
        std::cerr << "error: unknown shape '" << Value << "'; one of:";
        for (const std::string &Name : fuzz::programShapeNames())
          std::cerr << ' ' << Name;
        std::cerr << '\n';
        return 1;
      }
      Options.ShapeName = Value;
    } else if (Arg == "--history-percent") {
      if (!(Value = NeedValue(I)))
        return 1;
      Options.HistoryCasePercent = static_cast<unsigned>(std::atoi(Value));
    } else if (Arg == "--no-minimize") {
      Options.Minimize = false;
    } else if (Arg == "--out") {
      if (!(Value = NeedValue(I)))
        return 1;
      Options.OutDir = Value;
    } else if (Arg == "--max-findings") {
      if (!(Value = NeedValue(I)))
        return 1;
      Options.MaxDisagreements = static_cast<uint64_t>(std::atoll(Value));
    } else if (Arg == "--mutate") {
      if (!(Value = NeedValue(I)))
        return 1;
      std::optional<fuzz::CheckerMutation> M =
          fuzz::checkerMutationByName(Value);
      if (!M) {
        std::cerr << "error: unknown mutation '" << Value
                  << "' (none|weak-cc|weak-ra)\n";
        return 1;
      }
      Options.Mutation = *M;
    } else {
      std::cerr << "error: unknown fuzz option '" << Arg << "'\n";
      printFuzzUsage();
      return 1;
    }
  }

  std::cout << "fuzz: seed " << Options.Seed << ", " << Options.Iterations
            << " iterations, shape " << Options.ShapeName;
  if (Options.Mutation != fuzz::CheckerMutation::None)
    std::cout << ", MUTATION " << fuzz::checkerMutationName(Options.Mutation);
  std::cout << '\n';

  fuzz::FuzzReport Report = fuzz::runFuzz(Options);

  std::cout << "fuzz: " << Report.Cases << " cases ("
            << Report.ProgramCases << " programs, " << Report.HistoryCases
            << " histories), " << Report.DisagreeingCases
            << " disagreements, " << Report.ElapsedMillis << " ms"
            << (Report.TimedOut ? " (timed out)" : "") << '\n';
  for (const std::string &File : Report.ReproFiles)
    std::cout << "repro: " << File << '\n';
  if (Report.DisagreeingCases != 0) {
    // Echo every reproduction-relevant flag: the printed command must
    // replay the run verbatim, not a default-shaped approximation of it.
    std::cout << "reproduce with: txdpor-cli fuzz --seed " << Options.Seed
              << " --iters " << Options.Iterations << " --shape "
              << Options.ShapeName << " --history-percent "
              << Options.HistoryCasePercent << " --max-findings "
              << Options.MaxDisagreements;
    if (!Options.Minimize)
      std::cout << " --no-minimize";
    if (Options.Mutation != fuzz::CheckerMutation::None)
      std::cout << " --mutate " << fuzz::checkerMutationName(Options.Mutation);
    std::cout << '\n';
    return 2;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1 && std::strcmp(Argv[1], "fuzz") == 0)
    return fuzzMain(Argc - 1, Argv + 1);

  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options))
    return 1;

  ClientSpec Spec;
  Spec.Sessions = Options.Sessions;
  Spec.TxnsPerSession = Options.Txns;
  Spec.Seed = Options.Seed;
  Program P = makeClientProgram(Options.App, Spec);
  VarNameFn Names = P.varNameFn();

  std::cout << "client: " << appName(Options.App) << " seed " << Options.Seed
            << ", " << Options.Sessions << " sessions x " << Options.Txns
            << " txns\n";
  if (Options.PrintProgram)
    std::cout << '\n' << P.str() << '\n';

  if (Options.Walks) {
    RandomWalkConfig Config;
    Config.Level = Options.Base;
    Config.NumWalks = *Options.Walks;
    Config.Seed = Options.Seed;
    Config.TimeBudget = Deadline::afterMillis(Options.BudgetMs);
    RandomWalkStats Stats = randomWalkProgram(P, Config);
    std::cout << "random-walk(" << isolationLevelName(Options.Base)
              << "): " << Stats.Walks << " walks, "
              << Stats.DistinctHistories << " distinct histories, "
              << Stats.ElapsedMillis << " ms"
              << (Stats.TimedOut ? " (timed out)" : "") << '\n';
    return 0;
  }

  if (Options.UseDfs) {
    NaiveDfsConfig Config;
    Config.Level = Options.Base;
    Config.TimeBudget = Deadline::afterMillis(Options.BudgetMs);
    ExplorerStats Stats = naiveDfsProgram(P, Config);
    std::cout << "DFS(" << isolationLevelName(Options.Base)
              << "): " << Stats.EndStates << " end states, "
              << Stats.ElapsedMillis << " ms"
              << (Stats.TimedOut ? " (timed out)" : "") << '\n';
    return 0;
  }

  ExplorerConfig Config;
  Config.BaseLevel = Options.Base;
  Config.FilterLevel = Options.Filter;
  Config.TimeBudget = Deadline::afterMillis(Options.BudgetMs);
  Config.Threads = Options.Threads;
  Config.SplitFactor = Options.SplitFactor;
  Config.SplitDepth = Options.SplitDepth;

  std::vector<History> Violations;
  uint64_t Outputs = 0;
  std::optional<History> First;
  std::ofstream Archive;
  if (!Options.SaveFile.empty()) {
    Archive.open(Options.SaveFile);
    if (!Archive) {
      std::cerr << "error: cannot open '" << Options.SaveFile << "'\n";
      return 1;
    }
  }
  // The parallel driver serializes visitor calls internally, so the
  // capture below is safe for any thread count; only the order in which
  // histories stream out depends on the schedule.
  auto RunExploration = [&](const HistoryVisitor &Visit) {
    if (Options.Threads > 1) {
      ParallelExplorer E(P, Config);
      return E.run(Visit);
    }
    Explorer E(P, Config);
    return E.run(Visit);
  };
  ExplorerStats Stats = RunExploration([&](const History &H) {
    ++Outputs;
    if (!First)
      First = H;
    if (Options.PrintHistories)
      std::cout << "--- history " << Outputs << " ---\n" << H.str(&Names);
    if (Archive.is_open())
      Archive << writeHistory(H) << '\n';
    if (Options.Classify && !isConsistent(H, *Options.Classify))
      Violations.push_back(H);
  });
  if (Archive.is_open())
    std::cout << "archived " << Outputs << " histories to "
              << Options.SaveFile << '\n';

  std::cout << Config.algorithmName();
  if (Options.Threads > 1)
    std::cout << " [" << Options.Threads << " threads]";
  std::cout << ": " << Stats.Outputs
            << " histories, " << Stats.EndStates << " end states, "
            << Stats.ExploreCalls << " explore calls, "
            << Stats.SwapsApplied << " swaps, " << Stats.ElapsedMillis
            << " ms" << (Stats.TimedOut ? " (timed out)" : "") << '\n';

  if (Options.Classify) {
    std::cout << "classification against "
              << isolationLevelName(*Options.Classify) << ": "
              << Violations.size() << " of " << Stats.Outputs
              << " histories violate it\n";
    if (!Violations.empty()) {
      History Witness = Options.Minimize
                            ? minimizeViolation(Violations.front(),
                                                *Options.Classify)
                            : Violations.front();
      ViolationExplanation Explanation =
          explainViolation(Witness, *Options.Classify, &Names);
      std::cout << Explanation.Text;
      if (Options.PrintWitness)
        std::cout << "witness"
                  << (Options.Minimize ? " (minimized)" : "") << ":\n"
                  << Witness.str(&Names);
      if (!Options.DotFile.empty())
        writeDot(Options.DotFile, Witness, Names);
      return 0;
    }
  }
  if (!Options.DotFile.empty() && First)
    writeDot(Options.DotFile, *First, Names);
  return 0;
}
