#!/usr/bin/env python3
"""Validate a txdpor Chrome trace-event dump (tools/check_trace.py FILE).

CI runs this against the trace of a parallel tpcc exploration; it checks
what a human would eyeball in chrome://tracing before trusting the file:

  * the document is the JSON Object Format: {"traceEvents": [...], ...};
  * every event carries the fields its phase requires, with sane types;
  * complete events have non-negative ts/dur;
  * thread_name metadata covers every tid that emitted spans;
  * (with --expect-parallel) spans came from >= MIN_CATEGORIES categories
    and >= 2 distinct worker threads, so a regression that silently stops
    recording a subsystem fails the job rather than shipping empty lanes.

Exit status: 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""

import argparse
import json
import sys

KNOWN_CATEGORIES = {"explore", "swap", "check", "replay", "parallel", "fuzz"}
MIN_CATEGORIES = 4


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--expect-parallel",
        action="store_true",
        help=f"require spans from >= {MIN_CATEGORIES} categories and "
        ">= 2 worker threads",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot load {args.trace}: {e}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict):
        return fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("traceEvents missing or not an array")

    span_categories = set()
    span_tids = set()
    named_tids = {}
    worker_tids = set()

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "C", "M"):
            return fail(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("tid"), int):
            return fail(f"{where}: missing integer tid")
        if ev.get("pid") != 1:
            return fail(f"{where}: expected pid 1")
        if ph == "M":
            if ev.get("name") != "thread_name":
                return fail(f"{where}: unexpected metadata {ev.get('name')!r}")
            name = ev.get("args", {}).get("name")
            if not name:
                return fail(f"{where}: thread_name without a name")
            named_tids[ev["tid"]] = name
            if name.startswith("worker-"):
                worker_tids.add(ev["tid"])
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            return fail(f"{where}: missing event name")
        cat = ev.get("cat")
        if cat not in KNOWN_CATEGORIES:
            return fail(f"{where}: unknown category {cat!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: bad dur {dur!r}")
            span_categories.add(cat)
            span_tids.add(ev["tid"])
        elif ph == "i":
            if ev.get("s") != "t":
                return fail(f"{where}: instant without thread scope")
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                return fail(f"{where}: counter without numeric value")

    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("tool") != "txdpor":
        return fail("otherData.tool != 'txdpor'")
    if not isinstance(other.get("dropped_records"), int):
        return fail("otherData.dropped_records missing")

    if args.expect_parallel:
        if len(span_categories) < MIN_CATEGORIES:
            return fail(
                f"spans from only {sorted(span_categories)} "
                f"(need >= {MIN_CATEGORIES} categories)"
            )
        active_workers = span_tids & worker_tids
        if len(active_workers) < 2:
            return fail(
                f"spans from {len(active_workers)} worker threads (need >= 2)"
            )

    n_spans = sum(1 for e in events if e.get("ph") == "X")
    print(
        f"check_trace: OK: {len(events)} events ({n_spans} spans, "
        f"{len(span_categories)} categories, "
        f"{len(named_tids)} named threads, "
        f"{other['dropped_records']} dropped)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
