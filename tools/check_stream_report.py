#!/usr/bin/env python3
"""Validate a `txdpor-cli check-trace --report` JSON run report.

CI runs this after every check-trace smoke invocation; it checks what a
human would eyeball in the report before trusting a green run:

  * the document is a check-trace report with a known status;
  * the counters are present, integral and mutually consistent
    (evictions never exceed ingested transactions, a bounded run that
    evicted something ran GC passes, the mirrored peak-window counter
    agrees with the report field);
  * (with --expect-status) the run ended in the expected verdict;
  * (with --max-peak) the peak live window stayed within the given
    bound — the memory-boundedness acceptance criterion: a GC
    regression fails the job instead of shipping an unbounded checker.

Exit status: 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""

import argparse
import json
import sys

KNOWN_STATUSES = {"consistent", "anomaly", "stale-read", "malformed"}

COUNTER_FIELDS = [
    "window_budget",
    "txns",
    "events",
    "external_reads",
    "evictions",
    "gc_passes",
    "reads_forgotten",
    "peak_window",
    "peak_window_counter",
]


def fail(msg):
    print(f"check_stream_report: FAIL: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="check-trace --report JSON file")
    parser.add_argument(
        "--expect-status",
        choices=sorted(KNOWN_STATUSES),
        help="require this run verdict",
    )
    parser.add_argument(
        "--max-peak",
        type=int,
        help="require peak_window <= N (memory-boundedness gate)",
    )
    parser.add_argument(
        "--min-evictions",
        type=int,
        help="require at least N evictions (the GC actually ran)",
    )
    args = parser.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(
            f"check_stream_report: cannot load {args.report}: {e}",
            file=sys.stderr,
        )
        return 2

    if not isinstance(doc, dict):
        return fail("top level is not an object")
    if doc.get("report") != "check-trace":
        return fail(f"not a check-trace report: {doc.get('report')!r}")

    status = doc.get("status")
    if status not in KNOWN_STATUSES:
        return fail(f"unknown status {status!r}")

    for field in COUNTER_FIELDS:
        value = doc.get(field)
        if not isinstance(value, int) or value < 0:
            return fail(f"{field} missing or not a non-negative integer: "
                        f"{value!r}")

    txns = doc["txns"]
    evictions = doc["evictions"]
    if evictions > txns:
        return fail(f"evicted {evictions} of only {txns} transactions")
    if evictions > 0 and doc["gc_passes"] == 0:
        return fail("evictions without a recorded GC pass")
    if doc["peak_window"] != doc["peak_window_counter"]:
        return fail(
            f"report peak_window {doc['peak_window']} disagrees with the "
            f"process counter {doc['peak_window_counter']}"
        )
    if doc["events"] < txns:
        return fail(f"{doc['events']} events for {txns} transactions")
    if status != "consistent" and "diagnostic" not in doc:
        return fail(f"status {status} without a diagnostic")

    if args.expect_status and status != args.expect_status:
        return fail(f"status is {status}, expected {args.expect_status}")
    if args.max_peak is not None and doc["peak_window"] > args.max_peak:
        return fail(
            f"peak window {doc['peak_window']} exceeds bound {args.max_peak} "
            f"(budget {doc['window_budget']})"
        )
    if args.min_evictions is not None and evictions < args.min_evictions:
        return fail(f"only {evictions} evictions, expected >= "
                    f"{args.min_evictions}")

    print(
        f"check_stream_report: OK: {status}, {txns} txns, "
        f"peak window {doc['peak_window']} (budget {doc['window_budget']}), "
        f"{evictions} evicted"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
