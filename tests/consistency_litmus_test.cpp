//===- tests/consistency_litmus_test.cpp - Anomaly classification ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies the classic weak-isolation anomalies and the paper's figure
/// histories against all five levels, using both the production checkers
/// and the brute-force Def. 2.2 oracle. Expected classifications follow
/// the textbook hierarchy RC ⊃ RA ⊃ CC ⊃ SI ⊃ SER.
///
//===----------------------------------------------------------------------===//

#include "consistency/BruteForceChecker.h"
#include "consistency/ConsistencyChecker.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

constexpr VarId X = 0;
constexpr VarId Y = 1;
constexpr VarId Z = 2;

struct Litmus {
  const char *Name;
  History H;
  bool Rc, Ra, Cc, Si, Ser;
};

std::vector<Litmus> makeLitmusSuite() {
  std::vector<Litmus> Suite;

  // Serial chain: consistent everywhere.
  Suite.push_back({"serial-chain",
                   LitmusBuilder(1)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit()
                       .txn(2, 0).r(X, uid(1, 0)).commit()
                       .build(),
                   true, true, true, true, true});

  // Non-repeatable read: RC allows, RA forbids.
  Suite.push_back({"non-repeatable-read",
                   LitmusBuilder(1)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(1, 0).w(X, 2).commit()
                       .txn(2, 0).r(X, uid(0, 0)).r(X, uid(1, 0)).commit()
                       .build(),
                   true, false, false, false, false});

  // Reading x from t after already observing (po-earlier) a newer write
  // of x: violates even RC's wr ∘ po monotonicity.
  Suite.push_back({"non-monotonic-read",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).w(Y, 1).commit()
                       .txn(1, 0).r(X, uid(0, 0)).r(Y, TxnUid::init())
                       .commit()
                       .build(),
                   false, false, false, false, false});

  // Fractured read in the RC-tolerated direction: read y (stale) before
  // observing t0.0 at all.
  Suite.push_back({"fractured-read",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).w(Y, 1).commit()
                       .txn(1, 0).r(Y, TxnUid::init()).r(X, uid(0, 0))
                       .commit()
                       .build(),
                   true, false, false, false, false});

  // Fig. 3 of the paper: causality violation. t1 writes x=1; t2 reads x
  // and overwrites x=2; t4 reads x from t2 and writes y; t3 reads y from
  // t4 but the *old* x from t1.
  Suite.push_back({"fig3-causality-violation",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).commit()                // t1
                       .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit() // t2
                       .txn(3, 0).r(X, uid(1, 0)).w(Y, 1).commit() // t4
                       .txn(2, 0).r(X, uid(0, 0)).r(Y, uid(3, 0))
                       .commit()                                  // t3
                       .build(),
                   true, true, false, false, false});

  // Long fork: two observers disagree on the order of independent writes.
  Suite.push_back({"long-fork",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(1, 0).w(Y, 1).commit()
                       .txn(2, 0).r(X, uid(0, 0)).r(Y, TxnUid::init())
                       .commit()
                       .txn(3, 0).r(Y, uid(1, 0)).r(X, TxnUid::init())
                       .commit()
                       .build(),
                   true, true, true, false, false});

  // Lost update: two read-modify-writes of x both from init. The Conflict
  // axiom (first-committer-wins) rejects it under SI; CC tolerates it.
  Suite.push_back({"lost-update",
                   LitmusBuilder(1)
                       .txn(0, 0).r(X, TxnUid::init()).w(X, 1).commit()
                       .txn(1, 0).r(X, TxnUid::init()).w(X, 2).commit()
                       .build(),
                   true, true, true, false, false});

  // Write skew: disjoint writes from a common snapshot. SI allows it;
  // SER does not.
  Suite.push_back({"write-skew",
                   LitmusBuilder(2)
                       .txn(0, 0).r(X, TxnUid::init()).w(Y, 1).commit()
                       .txn(1, 0).r(Y, TxnUid::init()).w(X, 1).commit()
                       .build(),
                   true, true, true, true, false});

  // Fekete et al.'s read-only transaction anomaly: t1 and t2 run from
  // the initial snapshot (no write-write conflict: t1 writes y, t2
  // writes x); the read-only t3 sees t2's deposit but not t1's
  // withdrawal. SI admits it, SER does not: t1 < t2 (t1 missed x),
  // t2 < t3 (t3 saw x), t3 < t1 (t3 missed y) is a cycle.
  Suite.push_back({"read-only-txn-anomaly",
                   LitmusBuilder(2)
                       .txn(0, 0).r(X, TxnUid::init()).r(Y, TxnUid::init())
                       .w(Y, -11).commit()
                       .txn(1, 0).r(X, TxnUid::init()).w(X, 20).commit()
                       .txn(2, 0).r(X, uid(1, 0)).r(Y, TxnUid::init())
                       .commit()
                       .build(),
                   true, true, true, true, false});

  // Fig. 6 of the paper (with the blue write(x,2) present): write skew on
  // x/y plus a write-write conflict on z. Still CC; neither SI nor SER.
  Suite.push_back({"fig6-si-counterexample",
                   LitmusBuilder(3)
                       .txn(0, 0).w(Z, 1).r(X, TxnUid::init()).w(Y, 1)
                       .commit()
                       .txn(1, 0).w(Z, 2).r(Y, TxnUid::init()).w(X, 2)
                       .commit()
                       .build(),
                   true, true, true, false, false});

  // Fig. 6 without the last write: one side no longer writes x, so this
  // is only a z-conflict with one-directional visibility; SI and SER hold.
  Suite.push_back({"fig6-prefix-consistent",
                   LitmusBuilder(3)
                       .txn(0, 0).w(Z, 1).r(X, TxnUid::init()).w(Y, 1)
                       .commit()
                       .txn(1, 0).w(Z, 2).r(Y, TxnUid::init()).commit()
                       .build(),
                   true, true, true, true, true});

  // Aborted transactions are invisible: reading init past an aborted
  // overwrite is consistent everywhere.
  Suite.push_back({"aborted-writer-invisible",
                   LitmusBuilder(1)
                       .txn(0, 0).w(X, 9).abort()
                       .txn(1, 0).r(X, TxnUid::init()).commit()
                       .build(),
                   true, true, true, true, true});

  // Session-order flavored stale read: a session overwrites x then its
  // *own* later transaction reads the initial value. RC's axiom only has
  // the wr ∘ po premise — no session guarantees — so RC tolerates it;
  // RA's so ∪ wr premise rejects it.
  Suite.push_back({"session-stale-read",
                   LitmusBuilder(1)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(0, 1).r(X, TxnUid::init()).commit()
                       .build(),
                   true, false, false, false, false});

  // Monotonic-writes violation: a session writes x then y; an observer
  // sees the later write but misses the earlier one. The causal
  // composition so;wr separates CC from RA.
  Suite.push_back({"monotonic-writes-violation",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(0, 1).w(Y, 1).commit()
                       .txn(1, 0).r(Y, uid(0, 1)).r(X, TxnUid::init())
                       .commit()
                       .build(),
                   true, true, false, false, false});

  // Monotonic-reads violation: a session observes x = 1 and later its
  // own next transaction observes the initial value again. The writer is
  // related to the second reader only through wr ; so — a *composed*
  // path — so even RA tolerates it; CC does not.
  Suite.push_back({"monotonic-reads-violation",
                   LitmusBuilder(1)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(1, 0).r(X, uid(0, 0)).commit()
                       .txn(1, 1).r(X, TxnUid::init()).commit()
                       .build(),
                   true, true, false, false, false});

  // Writes-follow-reads violation: t observes x = 1 and writes y; an
  // observer sees y but reads the initial x.
  Suite.push_back({"writes-follow-reads-violation",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(1, 0).r(X, uid(0, 0)).w(Y, 1).commit()
                       .txn(2, 0).r(Y, uid(1, 0)).r(X, TxnUid::init())
                       .commit()
                       .build(),
                   true, true, false, false, false});

  // Two aborted transactions racing a committed one: aborted writes are
  // invisible, so any read of theirs is impossible and the rest is
  // serial.
  Suite.push_back({"aborted-race",
                   LitmusBuilder(2)
                       .txn(0, 0).r(X, TxnUid::init()).w(X, 1).abort()
                       .txn(1, 0).r(X, TxnUid::init()).w(X, 2).abort()
                       .txn(2, 0).r(X, TxnUid::init()).w(Y, 1).commit()
                       .build(),
                   true, true, true, true, true});

  // Causal chain respected: reading through a wr-so chain is fine at CC
  // but the middle write is skipped — still fine because the newest write
  // is what is read.
  Suite.push_back({"causal-chain-ok",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(0, 1).w(X, 2).commit()
                       .txn(1, 0).r(X, uid(0, 1)).commit()
                       .build(),
                   true, true, true, true, true});

  // Reading the older write of a session whose newer write is causally
  // known: CC violation (so-ordering of the writes).
  Suite.push_back({"causal-stale-read",
                   LitmusBuilder(2)
                       .txn(0, 0).w(X, 1).commit()
                       .txn(0, 1).w(X, 2).w(Y, 1).commit()
                       .txn(1, 0).r(Y, uid(0, 1)).r(X, uid(0, 0)).commit()
                       .build(),
                   false, false, false, false, false});
  return Suite;
}

class LitmusTest : public ::testing::TestWithParam<IsolationLevel> {};

} // namespace

TEST_P(LitmusTest, ProductionCheckerMatchesExpectation) {
  IsolationLevel Level = GetParam();
  for (const Litmus &L : makeLitmusSuite()) {
    bool Expected = true;
    switch (Level) {
    case IsolationLevel::Trivial:
      Expected = true;
      break;
    case IsolationLevel::ReadCommitted:
      Expected = L.Rc;
      break;
    case IsolationLevel::ReadAtomic:
      Expected = L.Ra;
      break;
    case IsolationLevel::CausalConsistency:
      Expected = L.Cc;
      break;
    case IsolationLevel::SnapshotIsolation:
      Expected = L.Si;
      break;
    case IsolationLevel::Serializability:
      Expected = L.Ser;
      break;
    }
    EXPECT_EQ(isConsistent(L.H, Level), Expected)
        << L.Name << " under " << isolationLevelName(Level) << "\n"
        << L.H.str();
  }
}

TEST_P(LitmusTest, BruteForceOracleAgrees) {
  IsolationLevel Level = GetParam();
  BruteForceChecker Oracle(Level);
  for (const Litmus &L : makeLitmusSuite())
    EXPECT_EQ(Oracle.isConsistent(L.H), isConsistent(L.H, Level))
        << L.Name << " under " << isolationLevelName(Level);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, LitmusTest,
                         ::testing::ValuesIn(AllIsolationLevels.begin(),
                                             AllIsolationLevels.end()),
                         [](const auto &Info) {
                           return std::string(
                               isolationLevelName(Info.param));
                         });

TEST(LitmusHierarchyTest, LevelChainIsMonotone) {
  // Every litmus expectation must respect the strength chain: if a level
  // accepts, all weaker levels accept.
  for (const Litmus &L : makeLitmusSuite()) {
    bool Flags[5] = {L.Rc, L.Ra, L.Cc, L.Si, L.Ser};
    for (int I = 4; I > 0; --I)
      EXPECT_LE(Flags[I], Flags[I - 1])
          << L.Name << ": expectation table itself violates the hierarchy";
  }
}

TEST(LitmusHierarchyTest, CheckersAreMonotoneOnLitmusSuite) {
  // If a stronger level accepts a history, every weaker level must too
  // (Def. 2.2 hierarchy). Iterate strongest-first and compare neighbors.
  for (const Litmus &L : makeLitmusSuite()) {
    bool StrongerAccepted = false;
    for (auto It = AllIsolationLevels.rbegin();
         It != AllIsolationLevels.rend(); ++It) {
      bool Cur = isConsistent(L.H, *It);
      if (StrongerAccepted) {
        EXPECT_TRUE(Cur) << L.Name << " at " << isolationLevelName(*It);
      }
      StrongerAccepted = Cur;
    }
  }
}
