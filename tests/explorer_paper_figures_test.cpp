//===- tests/explorer_paper_figures_test.cpp - Paper example programs -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end explorations of the example programs in the paper's figures
/// (Fig. 8, 9, 11, 12, 13 and the Theorem 6.1 program of Appendix D),
/// checking the behaviors each figure illustrates.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include "consistency/ConsistencyChecker.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;

namespace {

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

TEST(PaperFigureTest, Fig8GuardedWriteDependsOnRead) {
  // Fig. 8a: s0 = [a := read(x); if (a == 3) write(y,1)] ; [b := read(x);
  // c := read(y)], s1 = [d := read(x); write(x,3)].
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Y, 1, eq(T0.local("a"), 3));
  auto T1 = B.beginTxn(0);
  T1.read("b", X);
  T1.read("c", Y);
  auto T2 = B.beginTxn(1);
  T2.read("d", X);
  T2.write(X, 3);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_GT(R.Histories.size(), 0u);
  // In some history, t0.0 read x = 3 (from s1) and wrote y.
  bool SawGuardedWrite = false, SawSkippedWrite = false;
  for (const History &H : R.Histories) {
    unsigned T = *H.indexOf({0, 0});
    if (H.txn(T).writesVar(Y))
      SawGuardedWrite = true;
    else
      SawSkippedWrite = true;
  }
  EXPECT_TRUE(SawGuardedWrite)
      << "the swap must re-execute t0.0 with a = 3 (Fig. 8c)";
  EXPECT_TRUE(SawSkippedWrite);
}

TEST(PaperFigureTest, Fig9ValidWritesPrunesInconsistentChoice) {
  // Fig. 9a: s0 = [write(x,1); write(y,1)] ; [a := read(y)],
  // s1 = [b := read(x)]. The extension of Fig. 9d (a reads y from init
  // after x was read from the session successor...) — concretely: under
  // CC a read of y from init is inconsistent once the reader's session
  // saw the writer; here the reader t0.1 must read y = 1 from t0.0.
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.write(X, 1);
  T0.write(Y, 1);
  B.beginTxn(0).read("a", Y);
  B.beginTxn(1).read("b", X);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  for (const History &H : R.Histories) {
    unsigned T = *H.indexOf({0, 1});
    EXPECT_EQ(H.readValue(T, 1), 1)
        << "session-later read must observe the session's write under CC";
  }
  // b is free: init or t0.0 — exactly 2 histories.
  EXPECT_EQ(R.Histories.size(), 2u);
}

TEST(PaperFigureTest, Fig11AbortedReaderReexecutesAfterSwap) {
  // Fig. 11a: s0 = [a := read(x); if (a==0) abort; write(y,1)] ;
  //                [b := read(x)],
  //           s1 = [write(y,3)] ; [write(x,4)].
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.abort(eq(T0.local("a"), 0));
  T0.write(Y, 1);
  B.beginTxn(0).read("b", X);
  B.beginTxn(1).write(Y, 3);
  B.beginTxn(1).write(X, 4);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  auto Reference = enumerateReference(P, IsolationLevel::CausalConsistency);
  EXPECT_EQ(keySet(R.Histories), keySet(Reference.Histories));

  // The swap of Fig. 11d turns the aborted t0.0 into a committed one that
  // writes y = 1 (it read x = 4).
  bool SawCommittedT0 = false;
  for (const History &H : R.Histories) {
    unsigned T = *H.indexOf({0, 0});
    if (H.txn(T).isCommitted() && H.txn(T).writesVar(Y))
      SawCommittedT0 = true;
  }
  EXPECT_TRUE(SawCommittedT0);
  EXPECT_GT(R.Stats.SwapsApplied, 0u);
}

TEST(PaperFigureTest, Fig12FourSessionsOptimal) {
  // Fig. 12a: [write(x,2)] || [a := read(x)] || [b := read(x)] ||
  // [write(x,4)], each in its own session.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).read("a", X);
  B.beginTxn(2).read("b", X);
  B.beginTxn(3).write(X, 4);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // Each read independently observes one of {init, t0, t3}: 9 histories.
  EXPECT_EQ(R.Histories.size(), 9u);
  EXPECT_EQ(keySet(R.Histories).size(), 9u) << "Fig. 12 duplication bug";
  auto Reference = enumerateReference(P, IsolationLevel::CausalConsistency);
  EXPECT_EQ(keySet(R.Histories), keySet(Reference.Histories));
}

TEST(PaperFigureTest, Fig13FourSessionsOptimal) {
  // Fig. 13a: [a := read(x)] || [b := read(y)] || [write(y,3)] ||
  // [write(x,4)].
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  B.beginTxn(0).read("a", X);
  B.beginTxn(1).read("b", Y);
  B.beginTxn(2).write(Y, 3);
  B.beginTxn(3).write(X, 4);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // x-read ∈ {init, t3}, y-read ∈ {init, t2}: 4 histories, each once.
  EXPECT_EQ(R.Histories.size(), 4u);
  EXPECT_EQ(keySet(R.Histories).size(), 4u) << "Fig. 13 re-swap bug";
}

TEST(PaperFigureTest, Theorem61ProgramUnderStarAlgorithms) {
  // The Theorem 6.1 / Fig. D.1 program: two transactions whose first
  // three instructions are read + two writes crosswise.
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  VarId Z = B.var("z");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Z, 1);
  T0.write(Y, 1);
  auto T1 = B.beginTxn(1);
  T1.read("b", Y);
  T1.write(Z, 2);
  T1.write(X, 2);
  Program P = B.build();

  // explore-ce(CC) reaches the history h of Fig. D.1b (both reads stale,
  // both writes committed) — it is CC-consistent but neither SI nor SER;
  // the star algorithms must explore it and filter it out.
  auto CC = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  bool SawForbidden = false;
  for (const History &H : CC.Histories) {
    unsigned A = *H.indexOf({0, 0});
    unsigned Bdx = *H.indexOf({1, 0});
    if (H.txn(A).writerOf(1) == std::optional<TxnUid>(TxnUid::init()) &&
        H.txn(Bdx).writerOf(1) == std::optional<TxnUid>(TxnUid::init()) &&
        H.txn(A).isCommitted() && H.txn(Bdx).isCommitted()) {
      SawForbidden = true;
      EXPECT_FALSE(isConsistent(H, IsolationLevel::SnapshotIsolation));
      EXPECT_FALSE(isConsistent(H, IsolationLevel::Serializability));
    }
  }
  EXPECT_TRUE(SawForbidden)
      << "the blocked history of Theorem 6.1 must be visited by the base";

  auto SI = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::SnapshotIsolation));
  auto SER = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::Serializability));
  EXPECT_EQ(SI.Stats.EndStates, CC.Stats.EndStates);
  EXPECT_EQ(SER.Stats.EndStates, CC.Stats.EndStates);
  EXPECT_LT(SI.Histories.size(), CC.Histories.size());
  EXPECT_EQ(keySet(SI.Histories),
            keySet(enumerateReference(P, IsolationLevel::SnapshotIsolation)
                       .Histories));
  EXPECT_EQ(keySet(SER.Histories),
            keySet(enumerateReference(P, IsolationLevel::Serializability)
                       .Histories));
}
