//===- tests/mixed_levels_test.cpp - Per-session isolation levels ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mixed-isolation-level semantics (arXiv 2505.18409, PAPERS.md):
/// LevelAssignment plumbing, the MixedSaturationChecker against the
/// per-transaction brute-force reference, and the explorer with a mixed
/// base assignment — litmus programs where an anomaly appears exactly when
/// one session's level is weakened (and disappears when it is
/// strengthened), set equality with the filtered explore-ce(true)
/// reference, thread-count invariance, and the no-drift guarantee for
/// uniform assignments.
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "consistency/Axioms.h"
#include "consistency/BruteForceChecker.h"
#include "consistency/LevelParse.h"
#include "consistency/SaturationChecker.h"
#include "core/Enumerate.h"
#include "fuzz/DifferentialOracle.h"
#include "fuzz/Repro.h"
#include "parallel/ParallelExplorer.h"
#include "support/Parse.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

#include <algorithm>

using namespace txdpor;
using namespace txdpor::test;

namespace {

constexpr VarId X = 0;
constexpr VarId Y = 1;

LevelAssignment mix(IsolationLevel Default,
                    std::initializer_list<IsolationLevel> Sessions) {
  LevelAssignment A(Default);
  unsigned S = 0;
  for (IsolationLevel L : Sessions)
    A.set(S++, L);
  return A;
}

} // namespace

//===----------------------------------------------------------------------===//
// LevelAssignment
//===----------------------------------------------------------------------===//

TEST(LevelAssignmentTest, DefaultsAndExplicitEntries) {
  LevelAssignment A;
  EXPECT_EQ(A.defaultLevel(), IsolationLevel::CausalConsistency);
  EXPECT_FALSE(A.hasExplicit());
  EXPECT_FALSE(A.isMixed());
  EXPECT_EQ(A.levelFor(0), IsolationLevel::CausalConsistency);
  EXPECT_EQ(A.levelFor(TxnUid::InitSession),
            IsolationLevel::CausalConsistency);

  A.set(1, IsolationLevel::ReadCommitted);
  EXPECT_TRUE(A.hasExplicit());
  EXPECT_TRUE(A.isMixed());
  EXPECT_EQ(A.levelFor(0), IsolationLevel::CausalConsistency);
  EXPECT_EQ(A.levelFor(1), IsolationLevel::ReadCommitted);
  EXPECT_EQ(A.levelFor(7), IsolationLevel::CausalConsistency);
  EXPECT_EQ(A.str(), "CC S1=RC");
  EXPECT_EQ(A.strongest(), IsolationLevel::CausalConsistency);
  EXPECT_TRUE(A.allPrefixClosedCausallyExtensible());
  EXPECT_TRUE(A.allWeakerOrEqual(IsolationLevel::CausalConsistency));
  EXPECT_FALSE(A.allWeakerOrEqual(IsolationLevel::ReadAtomic));
}

TEST(LevelAssignmentTest, ResolvedCollapsesUniformAssignments) {
  // Explicit entries that all agree collapse to the uniform level — the
  // engine's guarantee that "--levels S0=RC,S1=RC" takes the classic
  // single-level code path.
  LevelAssignment A(IsolationLevel::CausalConsistency);
  A.set(0, IsolationLevel::ReadCommitted);
  A.set(1, IsolationLevel::ReadCommitted);
  LevelAssignment R = A.resolved(2);
  EXPECT_FALSE(R.hasExplicit());
  EXPECT_FALSE(R.isMixed());
  EXPECT_EQ(R.defaultLevel(), IsolationLevel::ReadCommitted);

  // A third session would inherit the CC default: genuinely mixed.
  LevelAssignment R3 = A.resolved(3);
  EXPECT_TRUE(R3.isMixed());
  EXPECT_EQ(R3.levelFor(2), IsolationLevel::CausalConsistency);

  // Entries beyond the session count are dropped.
  LevelAssignment B(IsolationLevel::CausalConsistency);
  B.set(5, IsolationLevel::ReadCommitted);
  EXPECT_FALSE(B.resolved(2).isMixed());
}

TEST(LevelAssignmentTest, EqualityIsSemantic) {
  LevelAssignment A(IsolationLevel::CausalConsistency);
  LevelAssignment B(IsolationLevel::CausalConsistency);
  B.set(0, IsolationLevel::CausalConsistency); // Explicit but equal.
  EXPECT_EQ(A, B);
  B.set(0, IsolationLevel::ReadCommitted);
  EXPECT_NE(A, B);
  EXPECT_FALSE(
      mix(IsolationLevel::SnapshotIsolation, {})
          .allPrefixClosedCausallyExtensible());
}

//===----------------------------------------------------------------------===//
// Mixed checkers on litmus histories
//===----------------------------------------------------------------------===//

// The causality-violation litmus (paper Fig. 3 shape, two-session form):
// session 0 writes x then y (so-ordered); session 1 reads the new y but
// the initial x. CC forbids it (t0.0 is causally before the reader via
// so ∘ wr and writes x), RC and RA allow it (their premises do not chain
// through so ∘ wr).
static History causalityLitmus() {
  return LitmusBuilder(2)
      .txn(0, 0).w(X, 1).commit()
      .txn(0, 1).w(Y, 1).commit()
      .txn(1, 0).r(Y, uid(0, 1)).rInit(X).commit()
      .build();
}

TEST(MixedCheckerTest, CausalityLitmusFollowsTheReaderSessionLevel) {
  History H = causalityLitmus();

  // Uniform sanity: inconsistent at CC, consistent at RC/RA.
  EXPECT_FALSE(isConsistent(H, IsolationLevel::CausalConsistency));
  EXPECT_TRUE(isConsistent(H, IsolationLevel::ReadAtomic));
  EXPECT_TRUE(isConsistent(H, IsolationLevel::ReadCommitted));

  // All reads live in session 1, so the verdict follows *its* level:
  // relaxing the reader to RC admits the history even though the writer
  // session stays CC...
  LevelAssignment ReaderRc = mix(IsolationLevel::CausalConsistency,
                                 {IsolationLevel::CausalConsistency,
                                  IsolationLevel::ReadCommitted});
  EXPECT_TRUE(MixedSaturationChecker(ReaderRc).isConsistent(H));
  EXPECT_TRUE(BruteForceChecker(ReaderRc).isConsistent(H));

  // ...and, vice versa, upgrading only the reader back to CC in an
  // otherwise-RC deployment re-establishes the violation.
  LevelAssignment ReaderCc = mix(IsolationLevel::ReadCommitted,
                                 {IsolationLevel::ReadCommitted,
                                  IsolationLevel::CausalConsistency});
  EXPECT_FALSE(MixedSaturationChecker(ReaderCc).isConsistent(H));
  EXPECT_FALSE(BruteForceChecker(ReaderCc).isConsistent(H));
}

TEST(MixedCheckerTest, FracturedReadFollowsTheReaderSessionLevel) {
  // Fractured read: session 1 reads y before t0.0's write of y but x
  // from t0.0 — RA forbids (read atomicity), RC allows.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).w(Y, 1).commit()
                  .txn(1, 0).rInit(Y).r(X, uid(0, 0)).commit()
                  .build();
  LevelAssignment ReaderRc = mix(IsolationLevel::ReadAtomic,
                                 {IsolationLevel::ReadAtomic,
                                  IsolationLevel::ReadCommitted});
  LevelAssignment ReaderRa = mix(IsolationLevel::ReadCommitted,
                                 {IsolationLevel::ReadCommitted,
                                  IsolationLevel::ReadAtomic});
  EXPECT_TRUE(MixedSaturationChecker(ReaderRc).isConsistent(H));
  EXPECT_TRUE(BruteForceChecker(ReaderRc).isConsistent(H));
  EXPECT_FALSE(MixedSaturationChecker(ReaderRa).isConsistent(H));
  EXPECT_FALSE(BruteForceChecker(ReaderRa).isConsistent(H));
}

TEST(MixedCheckerTest, UniformAssignmentMatchesClassicCheckers) {
  Rng R(41);
  RandomHistorySpec Spec;
  for (unsigned Case = 0; Case != 60; ++Case) {
    History H = makeRandomHistory(R, Spec);
    for (IsolationLevel L :
         {IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
          IsolationLevel::CausalConsistency}) {
      LevelAssignment Uniform = LevelAssignment::uniform(L);
      // Force the mixed code path for a semantically uniform assignment.
      LevelAssignment Pinned(L == IsolationLevel::CausalConsistency
                                 ? IsolationLevel::ReadCommitted
                                 : IsolationLevel::CausalConsistency);
      for (unsigned S = 0; S != Spec.NumSessions; ++S)
        Pinned.set(S, L);
      bool Classic = isConsistent(H, L);
      EXPECT_EQ(Classic, isConsistent(H, Uniform));
      EXPECT_EQ(Classic, MixedSaturationChecker(Pinned).isConsistent(H))
          << H.str();
      EXPECT_EQ(Classic, BruteForceChecker(Pinned).isConsistent(H))
          << H.str();
    }
  }
}

TEST(MixedCheckerTest, RandomMixedAgreesWithBruteForce) {
  // The production mixed saturation checker against the literal
  // per-transaction Def. 2.2 enumeration, over random histories and
  // random causally-extensible mixes.
  const IsolationLevel Saturable[] = {
      IsolationLevel::Trivial, IsolationLevel::ReadCommitted,
      IsolationLevel::ReadAtomic, IsolationLevel::CausalConsistency};
  Rng R(1337);
  RandomHistorySpec Spec;
  Spec.NumSessions = 3;
  Spec.TxnsPerSession = 2;
  for (unsigned Case = 0; Case != 150; ++Case) {
    History H = makeRandomHistory(R, Spec);
    LevelAssignment Mix(Saturable[R.nextBelow(4)]);
    for (unsigned S = 0; S != Spec.NumSessions; ++S)
      Mix.set(S, Saturable[R.nextBelow(4)]);
    MixedSaturationChecker Production(Mix);
    BruteForceChecker Reference(Mix);
    EXPECT_EQ(Production.isConsistent(H), Reference.isConsistent(H))
        << "mix " << Mix.str() << "\n" << H.str();
  }
}

TEST(MixedCheckerTest, MixedAxiomsMatchPerLevelAxiomsOnSplitHistories) {
  // For a mix, axiomsHold(H, Co, mix) must equal the conjunction of each
  // uniform level's axioms restricted to that level's reads. With all
  // reads in one session (litmus shape), that is just the reader level's
  // uniform axioms — checked against every topological order.
  History H = causalityLitmus();
  unsigned N = H.numTxns();
  Relation SoWr = H.soWrRelation();
  // One concrete order: block order 0..N-1 (it extends so ∪ wr here).
  Relation Co(N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = I + 1; J != N; ++J)
      Co.set(I, J);
  LevelAssignment ReaderRc = mix(IsolationLevel::CausalConsistency,
                                 {IsolationLevel::CausalConsistency,
                                  IsolationLevel::ReadCommitted});
  EXPECT_EQ(axiomsHold(H, Co, ReaderRc),
            readCommittedAxiom(H, Co));
  LevelAssignment ReaderCc = mix(IsolationLevel::ReadCommitted,
                                 {IsolationLevel::ReadCommitted,
                                  IsolationLevel::CausalConsistency});
  EXPECT_EQ(axiomsHold(H, Co, ReaderCc),
            causalConsistencyAxiom(H, Co));
}

//===----------------------------------------------------------------------===//
// The explorer under a mixed base assignment
//===----------------------------------------------------------------------===//

namespace {

/// The litmus *program* behind causalityLitmus(): two so-ordered writers
/// in session 0, one two-read transaction in session 1.
Program causalityProgram() {
  ProgramBuilder B;
  VarId Vx = B.var("x"), Vy = B.var("y");
  B.beginTxn(0, "wx").write(Vx, ExprRef(1));
  B.beginTxn(0, "wy").write(Vy, ExprRef(1));
  auto T = B.beginTxn(1, "reader");
  T.read("a", Vy);
  T.read("b", Vx);
  return B.build();
}

/// True if some output history has the reader observing the *new* y but
/// the *initial* x — the causality-violating read pattern.
bool hasStaleReadPattern(const std::vector<History> &Histories) {
  for (const History &H : Histories) {
    std::optional<unsigned> Reader = H.indexOf(uid(1, 0));
    if (!Reader)
      continue;
    const TransactionLog &Log = H.txn(*Reader);
    std::optional<TxnUid> Wy, Wx;
    for (uint32_t Pos = 0; Pos != Log.size(); ++Pos) {
      if (!Log.event(Pos).isRead())
        continue;
      if (Log.event(Pos).Var == 1)
        Wy = Log.writerOf(Pos);
      else
        Wx = Log.writerOf(Pos);
    }
    if (Wy && Wx && *Wy == uid(0, 1) && Wx->isInit())
      return true;
  }
  return false;
}

std::vector<History> explore(const Program &P, ExplorerConfig Config) {
  return enumerateHistories(P, std::move(Config)).Histories;
}

} // namespace

TEST(MixedExplorerTest, AnomalyAppearsExactlyWhenTheReaderIsWeakened) {
  Program P = causalityProgram();

  // Uniform CC forbids the stale-read interleaving; uniform RC allows it.
  EXPECT_FALSE(hasStaleReadPattern(
      explore(P, ExplorerConfig::exploreCE(
                     IsolationLevel::CausalConsistency))));
  EXPECT_TRUE(hasStaleReadPattern(
      explore(P, ExplorerConfig::exploreCE(IsolationLevel::ReadCommitted))));

  // Mixed: one RC reader session in a CC deployment admits it...
  LevelAssignment ReaderRc = mix(IsolationLevel::CausalConsistency,
                                 {IsolationLevel::CausalConsistency,
                                  IsolationLevel::ReadCommitted});
  std::vector<History> Mixed =
      explore(P, ExplorerConfig::exploreCEMixed(ReaderRc));
  EXPECT_TRUE(hasStaleReadPattern(Mixed));

  // ...and upgrading only the reader in an RC deployment removes it.
  LevelAssignment ReaderCc = mix(IsolationLevel::ReadCommitted,
                                 {IsolationLevel::ReadCommitted,
                                  IsolationLevel::CausalConsistency});
  EXPECT_FALSE(hasStaleReadPattern(
      explore(P, ExplorerConfig::exploreCEMixed(ReaderCc))));

  // Every mixed output satisfies the assignment, per both the production
  // mixed checker and the per-transaction brute-force reference.
  MixedSaturationChecker Production(ReaderRc);
  BruteForceChecker Reference(ReaderRc);
  for (const History &H : Mixed) {
    EXPECT_TRUE(Production.isConsistent(H)) << H.str();
    EXPECT_TRUE(Reference.isConsistent(H)) << H.str();
  }
}

TEST(MixedExplorerTest, OutputSetMatchesBruteForceFilteredUniverse) {
  // Soundness + completeness of explore-ce under a mixed base: its output
  // set must equal explore-ce(true) — every wr choice — re-filtered by
  // the brute-force reference with per-transaction commit tests, and be
  // duplicate-free (strong optimality).
  Program P = causalityProgram();
  LevelAssignment Mix = mix(IsolationLevel::CausalConsistency,
                            {IsolationLevel::CausalConsistency,
                             IsolationLevel::ReadCommitted});
  auto MixedKeys = countByCanonicalKey(
      explore(P, ExplorerConfig::exploreCEMixed(Mix)));
  BruteForceChecker Reference(Mix);
  std::vector<History> Expected;
  for (const History &H :
       explore(P, ExplorerConfig::exploreCE(IsolationLevel::Trivial)))
    if (Reference.isConsistent(H))
      Expected.push_back(H);
  EXPECT_EQ(MixedKeys, countByCanonicalKey(Expected));
  for (const auto &[Key, Count] : MixedKeys)
    EXPECT_EQ(Count, 1u) << "duplicate output " << Key;
}

TEST(MixedExplorerTest, RandomProgramsMatchBruteForceFilteredUniverse) {
  Rng R(2025);
  RandomProgramSpec Spec;
  Spec.WithAborts = false;
  const IsolationLevel Saturable[] = {
      IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
      IsolationLevel::CausalConsistency};
  for (unsigned Case = 0; Case != 12; ++Case) {
    Program P = makeRandomProgram(R, Spec);
    LevelAssignment Mix(Saturable[R.nextBelow(3)]);
    for (unsigned S = 0; S != Spec.NumSessions; ++S)
      Mix.set(S, Saturable[R.nextBelow(3)]);
    auto MixedKeys = countByCanonicalKey(
        explore(P, ExplorerConfig::exploreCEMixed(Mix)));
    BruteForceChecker Reference(Mix.resolved(P.numSessions()));
    std::vector<History> Expected;
    for (const History &H :
         explore(P, ExplorerConfig::exploreCE(IsolationLevel::Trivial)))
      if (Reference.isConsistent(H))
        Expected.push_back(H);
    EXPECT_EQ(MixedKeys, countByCanonicalKey(Expected))
        << "case " << Case << " mix " << Mix.str() << "\n" << P.str();
  }
}

TEST(MixedExplorerTest, ThreadCountInvariantUnderMixedBase) {
  Program P = causalityProgram();
  LevelAssignment Mix = mix(IsolationLevel::CausalConsistency,
                            {IsolationLevel::CausalConsistency,
                             IsolationLevel::ReadCommitted});
  ExplorerConfig Base = ExplorerConfig::exploreCEMixed(Mix);
  auto Reference = countByCanonicalKey(explore(P, Base));

  ExplorerConfig Iterative = Base;
  Iterative.Iterative = true;
  EXPECT_EQ(Reference, countByCanonicalKey(explore(P, Iterative)));

  for (unsigned Threads : {1u, 2u, 4u}) {
    ExplorerConfig Par = Base;
    Par.Threads = Threads;
    std::vector<History> Out;
    ParallelExplorer E(P, Par);
    E.run([&](const History &H) { Out.push_back(H); });
    EXPECT_EQ(Reference, countByCanonicalKey(Out)) << Threads << " threads";
  }
}

TEST(MixedExplorerTest, UniformAssignmentsDoNotDrift) {
  // A pinned-but-uniform assignment must reproduce the classic run
  // exactly: same outputs *and* same statistics (the engine collapses it
  // to the single-level code path — no mixed-checker indirection).
  Program P = makeClientProgram(AppKind::Tpcc, ClientSpec());
  ExplorerConfig Plain = ExplorerConfig::exploreCE(
      IsolationLevel::CausalConsistency);
  LevelAssignment Pinned(IsolationLevel::ReadCommitted);
  for (unsigned S = 0; S != P.numSessions(); ++S)
    Pinned.set(S, IsolationLevel::CausalConsistency);
  ExplorerConfig Via = ExplorerConfig::exploreCEMixed(Pinned);

  EnumerationResult A = enumerateHistories(P, Plain);
  EnumerationResult B = enumerateHistories(P, Via);
  EXPECT_EQ(countByCanonicalKey(A.Histories),
            countByCanonicalKey(B.Histories));
  EXPECT_EQ(A.Stats.ExploreCalls, B.Stats.ExploreCalls);
  EXPECT_EQ(A.Stats.EndStates, B.Stats.EndStates);
  EXPECT_EQ(A.Stats.ConsistencyChecks, B.Stats.ConsistencyChecks);
  EXPECT_EQ(A.Stats.SwapsApplied, B.Stats.SwapsApplied);
}

TEST(MixedExplorerTest, ProgramDeclaredLevelsDriveTheEngine) {
  // A program-declared assignment (Program::levels) is honored when the
  // config has none, and an explicit config assignment overrides it.
  Program P = causalityProgram();
  LevelAssignment Declared = mix(IsolationLevel::CausalConsistency,
                                 {IsolationLevel::CausalConsistency,
                                  IsolationLevel::ReadCommitted});
  P.setLevels(Declared);

  ExplorerConfig Plain; // No explicit config assignment: program wins.
  EXPECT_TRUE(hasStaleReadPattern(explore(P, Plain)));

  ExplorerConfig Override; // Config pins everything to CC: config wins.
  for (unsigned S = 0; S != P.numSessions(); ++S)
    Override.BaseLevels.set(S, IsolationLevel::CausalConsistency);
  EXPECT_FALSE(hasStaleReadPattern(explore(P, Override)));
}

//===----------------------------------------------------------------------===//
// Apps' mixed workload variants, oracle legs, litmus grammar
//===----------------------------------------------------------------------===//

TEST(MixedWorkloadTest, AppsTagReadOnlySessionsReadCommitted) {
  for (AppKind App : {AppKind::Tpcc, AppKind::Twitter}) {
    ClientSpec Uniform;
    Uniform.Sessions = 3;
    Uniform.TxnsPerSession = 2;
    ClientSpec Mixed = Uniform;
    Mixed.MixedLevels = true;
    Program U = makeClientProgram(App, Uniform);
    Program M = makeClientProgram(App, Mixed);

    ASSERT_TRUE(M.levels().hasExplicit()) << appName(App);
    EXPECT_FALSE(U.levels().hasExplicit());
    // Same instruction stream: stripping the tags gives the uniform
    // client back verbatim.
    Program Stripped = M;
    Stripped.setLevels(LevelAssignment());
    EXPECT_EQ(U.str(), Stripped.str()) << appName(App);
    // Tagging follows "RC readers, CC writers".
    for (unsigned S = 0; S != M.numSessions(); ++S) {
      bool Writes = false;
      for (unsigned T = 0; T != M.numTxns(S) && !Writes; ++T)
        for (const Instr &I : M.txn({S, T}).body())
          if (I.Kind == InstrKind::Write)
            Writes = true;
      EXPECT_EQ(M.levels().levelFor(S),
                Writes ? IsolationLevel::CausalConsistency
                       : IsolationLevel::ReadCommitted)
          << appName(App) << " session " << S;
    }
  }
}

TEST(MixedWorkloadTest, MixedTpccExploresCleanly) {
  // The tpcc mixed variant (RC audit readers, CC order entry) explores
  // with per-session semantics and matches the brute-force reference.
  ClientSpec Spec;
  Spec.Sessions = 3;
  Spec.TxnsPerSession = 2;
  Spec.MixedLevels = true;
  Program P = makeClientProgram(AppKind::Tpcc, Spec);
  ASSERT_TRUE(P.levels().resolved(P.numSessions()).isMixed());

  EnumerationResult Mixed = enumerateHistories(P, ExplorerConfig());
  // Pin every session to CC explicitly so the config overrides the
  // program-declared mix (a default-only assignment would not).
  LevelAssignment AllCc;
  for (unsigned S = 0; S != P.numSessions(); ++S)
    AllCc.set(S, IsolationLevel::CausalConsistency);
  EnumerationResult Uniform =
      enumerateHistories(P, ExplorerConfig::exploreCEMixed(AllCc));
  // Weakening the reader sessions can only add histories.
  EXPECT_GE(Mixed.Histories.size(), Uniform.Histories.size());
  BruteForceChecker Reference(P.levels().resolved(P.numSessions()));
  for (const History &H : Mixed.Histories)
    EXPECT_TRUE(Reference.isConsistent(H));
}

TEST(MixedOracleTest, MixedSemanticsSweepIsClean) {
  // The differential oracle's mixed legs (driver diffs, brute-force set
  // equality, verdict cross-checks) on a litmus program and a couple of
  // generated ones — the same sweep fuzz_smoke_mixed runs through the
  // CLI.
  fuzz::OracleConfig Cfg;
  fuzz::DifferentialOracle Oracle(Cfg);
  std::vector<IsolationLevel> Mix = {IsolationLevel::CausalConsistency,
                                     IsolationLevel::ReadCommitted};
  for (const fuzz::Disagreement &D :
       Oracle.checkProgram(causalityProgram(), Mix))
    ADD_FAILURE() << D.Detail;

  Rng R(99);
  fuzz::ProgramShape Shape;
  Shape.LevelMixPercent = 100;
  for (unsigned Case = 0; Case != 5; ++Case) {
    fuzz::GeneratedCase C = fuzz::generateCase(R, Shape);
    for (const fuzz::Disagreement &D :
         Oracle.checkProgram(C.Prog, C.SessionLevels))
      ADD_FAILURE() << "case " << Case << ": " << D.Detail;
  }
}

TEST(MixedReproTest, LevelLineRoundTripsSessionAssignments) {
  fuzz::Repro R;
  R.Seed = 7;
  R.CaseIndex = 3;
  R.Kind = fuzz::Disagreement::Kind::CheckerVerdictMismatch;
  R.Level = IsolationLevel::CausalConsistency;
  R.SessionLevels = {IsolationLevel::CausalConsistency,
                     IsolationLevel::ReadCommitted};
  R.Detail = "mixed litmus";
  R.Prog = causalityProgram();

  std::string Text = fuzz::writeRepro(R);
  EXPECT_NE(Text.find("level CC S0=CC S1=RC"), std::string::npos) << Text;
  std::string Error;
  std::optional<fuzz::Repro> Parsed = fuzz::parseRepro(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->Level, R.Level);
  EXPECT_EQ(Parsed->SessionLevels, R.SessionLevels);

  // The legacy standalone "mix" line still parses.
  std::optional<fuzz::Repro> Legacy = fuzz::parseRepro(
      "kind checker-verdict-mismatch\nlevel CC\nmix CC RC\n", &Error);
  ASSERT_TRUE(Legacy.has_value()) << Error;
  EXPECT_EQ(Legacy->SessionLevels, R.SessionLevels);
}

TEST(LevelParseTest, CheckedParsersRejectSneakyForms) {
  // strtoull/strtoll whitespace-skip and '+' forms must not sneak
  // through the checked parsers (the silent-wrap class the CLI fix
  // bans): first character must be a digit (or '-' for parseInt).
  EXPECT_FALSE(parseUInt(" -1").has_value());
  EXPECT_FALSE(parseUInt("+5").has_value());
  EXPECT_FALSE(parseUInt(" 5").has_value());
  EXPECT_FALSE(parseInt(" 5").has_value());
  EXPECT_FALSE(parseInt("+5").has_value());
  EXPECT_EQ(parseInt("-5"), -5);
  EXPECT_EQ(parseUInt("5"), 5u);

  EXPECT_EQ(parseSessionLevel("S1=RC"),
            std::make_pair(1u, IsolationLevel::ReadCommitted));
  EXPECT_FALSE(parseSessionLevel("S1=XX").has_value());
  EXPECT_FALSE(parseSessionLevel("1=RC").has_value());
  EXPECT_FALSE(parseSessionLevel("S99999=RC").has_value());
  EXPECT_EQ(isolationLevelByName("SER"), IsolationLevel::Serializability);
  EXPECT_FALSE(isolationLevelByName("ser").has_value());
}

TEST(MixedCheckerTest, NonSaturableMixFallsBackToBruteForce) {
  // makeChecker on a mix naming SI must not decide the SI session with
  // CC premises — it falls back to the per-transaction brute force.
  LevelAssignment Mix(IsolationLevel::CausalConsistency);
  Mix.set(0, IsolationLevel::SnapshotIsolation);
  Mix.set(1, IsolationLevel::ReadCommitted);
  Rng R(7);
  RandomHistorySpec Spec;
  for (unsigned Case = 0; Case != 20; ++Case) {
    History H = makeRandomHistory(R, Spec);
    EXPECT_EQ(makeChecker(Mix)->isConsistent(H),
              BruteForceChecker(Mix).isConsistent(H));
  }
}

TEST(MixedReproTest, ProgramTextRejectsNonBaseSessionLevels) {
  // "@SI"/"@SER" session tags would feed the explorer a non-causally-
  // extensible base; the grammar rejects them with a diagnostic.
  std::string Error;
  EXPECT_FALSE(fuzz::parseProgramText(
                   "vars x\nsession 0 @SI\ntxn\n  read a x\n", &Error)
                   .has_value());
  EXPECT_NE(Error.find("true, RC, RA, CC"), std::string::npos) << Error;
  EXPECT_TRUE(fuzz::parseProgramText(
                  "vars x\nsession 0 @RC\ntxn\n  read a x\n", &Error)
                  .has_value())
      << Error;
}

TEST(MixedReproTest, ProgramTextRoundTripsSessionLevels) {
  Program P = causalityProgram();
  LevelAssignment Declared = mix(IsolationLevel::CausalConsistency,
                                 {IsolationLevel::CausalConsistency,
                                  IsolationLevel::ReadCommitted});
  P.setLevels(Declared);
  std::string Text = fuzz::writeProgramText(P);
  EXPECT_NE(Text.find("session 1 @RC"), std::string::npos) << Text;
  std::string Error;
  std::optional<Program> Parsed = fuzz::parseProgramText(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_TRUE(Parsed->levels().hasExplicit());
  EXPECT_EQ(Parsed->levels().levelFor(0), IsolationLevel::CausalConsistency);
  EXPECT_EQ(Parsed->levels().levelFor(1), IsolationLevel::ReadCommitted);
  EXPECT_EQ(fuzz::writeProgramText(*Parsed), Text);

  // Level-free programs keep the legacy spelling.
  EXPECT_EQ(fuzz::writeProgramText(causalityProgram())
                .find("session 0 @"),
            std::string::npos);
}
