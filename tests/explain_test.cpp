//===- tests/explain_test.cpp - Violation explanation tests ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/Explain.h"

#include "history/Prefix.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;
} // namespace

TEST(FindCycleTest, AcyclicReturnsEmpty) {
  Relation G(4);
  G.set(0, 1);
  G.set(1, 2);
  EXPECT_TRUE(findCycle(G).empty());
}

TEST(FindCycleTest, FindsSimpleCycle) {
  Relation G(4);
  G.set(0, 1);
  G.set(1, 2);
  G.set(2, 1);
  std::vector<unsigned> Cycle = findCycle(G);
  ASSERT_EQ(Cycle.size(), 2u);
  // The cycle must actually be a cycle in G.
  for (size_t I = 0; I != Cycle.size(); ++I)
    EXPECT_TRUE(G.get(Cycle[I], Cycle[(I + 1) % Cycle.size()]));
}

TEST(FindCycleTest, FindsSelfLoop) {
  Relation G(3);
  G.set(2, 2);
  std::vector<unsigned> Cycle = findCycle(G);
  ASSERT_EQ(Cycle.size(), 1u);
  EXPECT_EQ(Cycle[0], 2u);
}

TEST(ExplainTest, ConsistentHistoryHasNoCycle) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  ViolationExplanation E =
      explainViolation(H, IsolationLevel::CausalConsistency);
  EXPECT_TRUE(E.Consistent);
  EXPECT_TRUE(E.Cycle.empty());
  EXPECT_NE(E.Text.find("satisfies"), std::string::npos);
}

TEST(ExplainTest, Fig3CausalityViolationCycle) {
  // Fig. 3: the CC cycle runs through the axiom edge (t2 before t1) and
  // the wr edge (t1 before t2).
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit()
                  .txn(3, 0).r(X, uid(1, 0)).w(Y, 1).commit()
                  .txn(2, 0).r(X, uid(0, 0)).r(Y, uid(3, 0)).commit()
                  .build();
  ViolationExplanation E =
      explainViolation(H, IsolationLevel::CausalConsistency);
  ASSERT_FALSE(E.Consistent);
  ASSERT_GE(E.Cycle.size(), 2u);
  // Validate that the cycle edges are real constraint-graph edges and at
  // least one of them is an axiom instance over x.
  bool SawAxiomEdge = false;
  for (const ConstraintEdge &Edge : E.Cycle)
    if (Edge.EdgeKind == ConstraintEdge::Kind::Axiom) {
      SawAxiomEdge = true;
      EXPECT_EQ(Edge.Var, X);
    }
  EXPECT_TRUE(SawAxiomEdge);
  EXPECT_NE(E.Text.find("violates CC"), std::string::npos);
}

TEST(ExplainTest, SessionStaleReadUnderRa) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(0, 1).r(X, TxnUid::init()).commit()
                  .build();
  ViolationExplanation E = explainViolation(H, IsolationLevel::ReadAtomic);
  ASSERT_FALSE(E.Consistent);
  // Cycle: init -> t0.0 (so), t0.0 -> init (axiom: reader sees init while
  // t0.0 writes x and directly precedes the reader).
  EXPECT_EQ(E.Cycle.size(), 2u);
}

TEST(ExplainTest, SerViolationFallsBackToSearchReport) {
  // Write skew is consistent at CC (no saturation cycle), so the SER
  // explanation reports the exhausted search.
  History H = LitmusBuilder(2)
                  .txn(0, 0).r(X, TxnUid::init()).w(Y, 1).commit()
                  .txn(1, 0).r(Y, TxnUid::init()).w(X, 1).commit()
                  .build();
  ViolationExplanation E =
      explainViolation(H, IsolationLevel::Serializability);
  ASSERT_FALSE(E.Consistent);
  EXPECT_TRUE(E.Cycle.empty());
  EXPECT_NE(E.Text.find("search exhausted"), std::string::npos);
}

TEST(ExplainTest, SerViolationReusesWeakerCycle) {
  // Fig. 3 also violates CC, so the SER explanation can reuse its cycle.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit()
                  .txn(3, 0).r(X, uid(1, 0)).w(Y, 1).commit()
                  .txn(2, 0).r(X, uid(0, 0)).r(Y, uid(3, 0)).commit()
                  .build();
  ViolationExplanation E =
      explainViolation(H, IsolationLevel::Serializability);
  ASSERT_FALSE(E.Consistent);
  EXPECT_FALSE(E.Cycle.empty());
  EXPECT_NE(E.Text.find("already at"), std::string::npos);
}

TEST(ExplainTest, ExplanationAgreesWithCheckerOnRandomHistories) {
  Rng R(2024);
  RandomHistorySpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  for (unsigned Iter = 0; Iter != 50; ++Iter) {
    History H = makeRandomHistory(R, Spec);
    for (IsolationLevel Level :
         {IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
          IsolationLevel::CausalConsistency}) {
      ViolationExplanation E = explainViolation(H, Level);
      EXPECT_EQ(E.Consistent, isConsistent(H, Level))
          << isolationLevelName(Level) << "\n"
          << H.str();
      if (!E.Consistent) {
        ASSERT_FALSE(E.Cycle.empty());
        // Each consecutive pair of cycle edges must chain.
        for (size_t I = 0; I != E.Cycle.size(); ++I)
          EXPECT_EQ(E.Cycle[I].To,
                    E.Cycle[(I + 1) % E.Cycle.size()].From);
      }
    }
  }
}

TEST(MinimizeTest, KeepsOnlyTheAnomalyCore) {
  // Fig. 3 violation plus two irrelevant bystander transactions on z.
  constexpr VarId Z = 2;
  History H = LitmusBuilder(3)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit()
                  .txn(4, 0).w(Z, 7).commit()                 // bystander
                  .txn(3, 0).r(X, uid(1, 0)).w(Y, 1).commit()
                  .txn(5, 0).r(Z, uid(4, 0)).commit()         // bystander
                  .txn(2, 0).r(X, uid(0, 0)).r(Y, uid(3, 0)).commit()
                  .build();
  ASSERT_FALSE(isConsistent(H, IsolationLevel::CausalConsistency));
  History Core = minimizeViolation(H, IsolationLevel::CausalConsistency);
  EXPECT_FALSE(isConsistent(Core, IsolationLevel::CausalConsistency));
  EXPECT_FALSE(Core.contains(uid(4, 0))) << "bystander writer kept";
  EXPECT_FALSE(Core.contains(uid(5, 0))) << "bystander reader kept";
  // The four Fig. 3 transactions are all necessary.
  EXPECT_EQ(Core.numTxns(), 5u) << Core.str();
  Core.checkWellFormed();
}

TEST(MinimizeTest, MinimalCoreIsLocallyMinimal) {
  // Removing any further transaction from the core must restore
  // consistency.
  History H = LitmusBuilder(1)
                  .txn(0, 0).r(X, TxnUid::init()).w(X, 1).commit()
                  .txn(1, 0).r(X, TxnUid::init()).w(X, 2).commit()
                  .build();
  ASSERT_FALSE(isConsistent(H, IsolationLevel::SnapshotIsolation));
  History Core = minimizeViolation(H, IsolationLevel::SnapshotIsolation);
  EXPECT_EQ(Core.numTxns(), 3u) << "both RMWs are needed for lost update";
  for (unsigned I = 1; I != Core.numTxns(); ++I) {
    PrefixCut Cut;
    for (unsigned J = 0; J != Core.numTxns(); ++J)
      Cut.push_back(static_cast<uint32_t>(Core.txn(J).size()));
    Cut[I] = 0;
    closeDownward(Core, Cut);
    EXPECT_TRUE(isConsistent(takePrefix(Core, Cut),
                             IsolationLevel::SnapshotIsolation));
  }
}

TEST(ExplainTest, DescribeRendersProse) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(0, 1).r(X, TxnUid::init()).commit()
                  .build();
  std::vector<ConstraintEdge> Edges;
  constraintGraphWithReasons(H, IsolationLevel::ReadAtomic, Edges);
  bool SawSo = false, SawAxiom = false;
  for (const ConstraintEdge &E : Edges) {
    std::string Text = E.describe(H, nullptr);
    EXPECT_FALSE(Text.empty());
    SawSo |= E.EdgeKind == ConstraintEdge::Kind::SessionOrder;
    SawAxiom |= E.EdgeKind == ConstraintEdge::Kind::Axiom;
  }
  EXPECT_TRUE(SawSo);
  EXPECT_TRUE(SawAxiom);
}
