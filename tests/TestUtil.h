//===- tests/TestUtil.h - Shared helpers for the test suite ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-only helpers: a fluent builder for hand-written litmus histories,
/// plus thin wrappers translating the legacy RandomHistorySpec /
/// RandomProgramSpec structs onto the shared generator of the fuzz
/// subsystem (src/fuzz/ProgramGenerator.h). The wrappers are
/// draw-compatible: a seed produces the same history/program it did when
/// the generators lived here.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TESTS_TESTUTIL_H
#define TXDPOR_TESTS_TESTUTIL_H

#include "fuzz/ProgramGenerator.h"
#include "history/History.h"
#include "program/Program.h"
#include "support/Rng.h"

#include <vector>

namespace txdpor {
namespace test {

inline TxnUid uid(uint32_t Session, uint32_t Index) {
  return {Session, Index};
}

/// Fluent builder for litmus histories. Transactions are appended in the
/// intended block (<) order; reads name their writer directly.
/// \code
///   History H = LitmusBuilder(2)
///                   .txn(0, 0).w(X, 1).commit()
///                   .txn(1, 0).r(X, uid(0, 0)).commit()
///                   .build();
/// \endcode
class LitmusBuilder {
public:
  explicit LitmusBuilder(unsigned NumVars)
      : H(History::makeInitial(NumVars)) {}

  LitmusBuilder &txn(uint32_t Session, uint32_t Index) {
    Current = H.beginTxn(uid(Session, Index));
    return *this;
  }
  LitmusBuilder &w(VarId X, Value V) {
    H.appendEvent(Current, Event::makeWrite(X, V));
    return *this;
  }
  /// External read of \p X from transaction \p From.
  LitmusBuilder &r(VarId X, TxnUid From) {
    H.appendEvent(Current, Event::makeRead(X));
    H.setWriter(Current, static_cast<uint32_t>(H.txn(Current).size()) - 1,
                From);
    return *this;
  }
  LitmusBuilder &rInit(VarId X) { return r(X, TxnUid::init()); }
  /// Read without a wr dependency yet (internal read, or to be assigned).
  LitmusBuilder &rPlain(VarId X) {
    H.appendEvent(Current, Event::makeRead(X));
    return *this;
  }
  LitmusBuilder &commit() {
    H.appendEvent(Current, Event::makeCommit());
    return *this;
  }
  LitmusBuilder &abort() {
    H.appendEvent(Current, Event::makeAbort());
    return *this;
  }

  History build() const {
    H.checkWellFormed();
    return H;
  }

private:
  History H;
  unsigned Current = 0;
};

/// Shape of the random histories used to cross-validate checkers.
struct RandomHistorySpec {
  unsigned NumVars = 2;
  unsigned NumSessions = 2;
  unsigned TxnsPerSession = 2;
  unsigned MaxOpsPerTxn = 3;
  unsigned AbortPercent = 10;
};

/// Generates a structurally valid (Def. 2.1) complete history: reads pick
/// a writer among the initial transaction and earlier-created writers of
/// the variable, which keeps so ∪ wr acyclic by construction. Consistency
/// against any given level is *not* guaranteed — that is the point.
/// Thin wrapper over fuzz::generateHistory.
History makeRandomHistory(Rng &R, const RandomHistorySpec &Spec);

/// Shape of random programs for explorer property tests.
struct RandomProgramSpec {
  unsigned NumVars = 2;
  unsigned NumSessions = 2;
  unsigned TxnsPerSession = 2;
  unsigned MaxOpsPerTxn = 2;
  bool WithGuards = true;
  bool WithAborts = true;
};

/// Generates a small random transactional program. Thin wrapper over
/// fuzz::generateProgram.
Program makeRandomProgram(Rng &R, const RandomProgramSpec &Spec);

} // namespace test
} // namespace txdpor

#endif // TXDPOR_TESTS_TESTUTIL_H
