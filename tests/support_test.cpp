//===- tests/support_test.cpp - Relation / RNG / table utilities ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"
#include "support/Json.h"
#include "support/Relation.h"
#include "support/Rng.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

using namespace txdpor;

TEST(RelationTest, SetGetClear) {
  Relation R(5);
  EXPECT_FALSE(R.get(1, 2));
  R.set(1, 2);
  EXPECT_TRUE(R.get(1, 2));
  EXPECT_FALSE(R.get(2, 1));
  R.clear(1, 2);
  EXPECT_FALSE(R.get(1, 2));
}

TEST(RelationTest, UnionAndEquality) {
  Relation A(4), B(4);
  A.set(0, 1);
  B.set(2, 3);
  Relation U = Relation::unionOf(A, B);
  EXPECT_TRUE(U.get(0, 1));
  EXPECT_TRUE(U.get(2, 3));
  EXPECT_EQ(U.countPairs(), 2u);
  EXPECT_NE(A, B);
  A.unionWith(B);
  EXPECT_EQ(A, U);
}

TEST(RelationTest, TransitiveClosureChain) {
  Relation R(4);
  R.set(0, 1);
  R.set(1, 2);
  R.set(2, 3);
  Relation C = R.transitiveClosure();
  EXPECT_TRUE(C.get(0, 3));
  EXPECT_TRUE(C.get(1, 3));
  EXPECT_FALSE(C.get(3, 0));
  EXPECT_FALSE(C.get(0, 0)) << "closure of an acyclic chain is irreflexive";
}

TEST(RelationTest, TransitiveClosureCycleIsReflexiveOnCycle) {
  Relation R(3);
  R.set(0, 1);
  R.set(1, 0);
  Relation C = R.transitiveClosure();
  EXPECT_TRUE(C.get(0, 0));
  EXPECT_TRUE(C.get(1, 1));
  EXPECT_FALSE(C.get(2, 2));
}

TEST(RelationTest, Composition) {
  Relation A(4), B(4);
  A.set(0, 1);
  A.set(2, 3);
  B.set(1, 2);
  Relation AB = A.composeWith(B);
  EXPECT_TRUE(AB.get(0, 2));
  EXPECT_EQ(AB.countPairs(), 1u);
}

TEST(RelationTest, Acyclicity) {
  Relation R(4);
  R.set(0, 1);
  R.set(1, 2);
  EXPECT_TRUE(R.isAcyclic());
  R.set(2, 0);
  EXPECT_FALSE(R.isAcyclic());
}

TEST(RelationTest, SelfLoopIsCycle) {
  Relation R(2);
  R.set(1, 1);
  EXPECT_FALSE(R.isAcyclic());
}

TEST(RelationTest, TopologicalOrderRespectsEdges) {
  Relation R(5);
  R.set(3, 1);
  R.set(1, 0);
  R.set(4, 2);
  std::vector<unsigned> Order;
  ASSERT_TRUE(R.topologicalOrder(Order));
  ASSERT_EQ(Order.size(), 5u);
  std::vector<unsigned> Pos(5);
  for (unsigned I = 0; I != 5; ++I)
    Pos[Order[I]] = I;
  EXPECT_LT(Pos[3], Pos[1]);
  EXPECT_LT(Pos[1], Pos[0]);
  EXPECT_LT(Pos[4], Pos[2]);
}

TEST(RelationTest, SuccessorsEnumeration) {
  Relation R(70); // Force multiple 64-bit words per row.
  R.set(1, 0);
  R.set(1, 63);
  R.set(1, 64);
  R.set(1, 69);
  EXPECT_EQ(R.successors(1), (std::vector<unsigned>{0, 63, 64, 69}));
}

TEST(RelationTest, TotalOrderCandidate) {
  Relation R(3);
  R.set(0, 1);
  R.set(1, 2);
  R.set(0, 2);
  EXPECT_TRUE(R.isTotalOrderCandidate());
  R.clear(0, 2);
  EXPECT_FALSE(R.isTotalOrderCandidate());
}

namespace {

/// Deterministic random relation over \p N nodes with edge probability
/// Percent/100.
txdpor::Relation randomRelation(unsigned N, unsigned Percent,
                                uint64_t Seed) {
  txdpor::Rng R(Seed);
  txdpor::Relation Rel(N);
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B)
      if (A != B && R.chance(Percent, 100))
        Rel.set(A, B);
  return Rel;
}

} // namespace

class RelationPropertyTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(RelationPropertyTest, ClosureIsIdempotentAndExtensive) {
  auto [N, Percent] = GetParam();
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Relation R = randomRelation(N, Percent, Seed);
    Relation C = R.transitiveClosure();
    // Extensive: closure contains the base relation.
    for (unsigned A = 0; A != N; ++A)
      for (unsigned B = 0; B != N; ++B)
        if (R.get(A, B))
          EXPECT_TRUE(C.get(A, B));
    // Idempotent.
    EXPECT_EQ(C.transitiveClosure(), C);
    // Transitive: C ∘ C ⊆ C.
    Relation CC = C.composeWith(C);
    for (unsigned A = 0; A != N; ++A)
      for (unsigned B = 0; B != N; ++B)
        if (CC.get(A, B))
          EXPECT_TRUE(C.get(A, B));
  }
}

TEST_P(RelationPropertyTest, ClosureViaCompositionFixpoint) {
  auto [N, Percent] = GetParam();
  for (uint64_t Seed = 20; Seed <= 25; ++Seed) {
    Relation R = randomRelation(N, Percent, Seed);
    // Naive fixpoint: repeatedly union R ∘ C into C.
    Relation Expected = R;
    for (;;) {
      Relation Next = Relation::unionOf(Expected,
                                        Expected.composeWith(R));
      if (Next == Expected)
        break;
      Expected = Next;
    }
    EXPECT_EQ(R.transitiveClosure(), Expected);
  }
}

TEST_P(RelationPropertyTest, TopologicalOrderIffAcyclic) {
  auto [N, Percent] = GetParam();
  for (uint64_t Seed = 40; Seed <= 50; ++Seed) {
    Relation R = randomRelation(N, Percent, Seed);
    std::vector<unsigned> Order;
    bool HasOrder = R.topologicalOrder(Order);
    EXPECT_EQ(HasOrder, R.isAcyclic());
    if (HasOrder) {
      ASSERT_EQ(Order.size(), N);
      std::vector<unsigned> Pos(N);
      for (unsigned I = 0; I != N; ++I)
        Pos[Order[I]] = I;
      for (unsigned A = 0; A != N; ++A)
        for (unsigned B = 0; B != N; ++B)
          if (R.get(A, B))
            EXPECT_LT(Pos[A], Pos[B]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RelationPropertyTest,
    ::testing::Values(std::make_pair(3u, 30u), std::make_pair(8u, 15u),
                      std::make_pair(8u, 40u), std::make_pair(20u, 8u),
                      std::make_pair(70u, 3u)),
    [](const auto &Info) {
      return "n" + std::to_string(Info.param.first) + "p" +
             std::to_string(Info.param.second);
    });

TEST(RngTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= (A.next() != B.next());
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, GoldenSequence) {
  // Platform-determinism pin (see the Rng.h header comment): these exact
  // values must come out on every platform and standard library, or every
  // recorded fuzz seed stops reproducing. If this test fails, the Rng (or
  // its bounded sampling) changed — revert, or accept that all published
  // seeds and the seeded test-shape expectations are invalidated.
  Rng Raw(1);
  EXPECT_EQ(Raw.next(), 10451216379200822465ULL);
  EXPECT_EQ(Raw.next(), 13757245211066428519ULL);
  EXPECT_EQ(Raw.next(), 17911839290282890590ULL);
  EXPECT_EQ(Raw.next(), 8196980753821780235ULL);

  Rng Bounded(42);
  EXPECT_EQ(Bounded.nextBelow(100), 13u);
  EXPECT_EQ(Bounded.nextBelow(100), 91u);
  EXPECT_EQ(Bounded.nextBelow(100), 58u);
  EXPECT_EQ(Bounded.nextBelow(100), 64u);

  Rng Ranged(7);
  EXPECT_EQ(Ranged.nextInRange(-5, 5), -3);
  EXPECT_EQ(Ranged.nextInRange(-5, 5), -5);
  EXPECT_EQ(Ranged.nextInRange(-5, 5), -5);
  EXPECT_EQ(Ranged.nextInRange(-5, 5), -5);

  Rng Coin(9);
  const bool Expected[8] = {false, false, true, true,
                            false, true,  true, false};
  for (bool Want : Expected)
    EXPECT_EQ(Coin.chance(1, 3), Want);

  // Substream derivation is part of the contract too: (seed, case) pairs
  // printed by the fuzzer must replay anywhere.
  EXPECT_EQ(Rng::deriveSeed(1, 40), 15897925802583272582ULL);
}

TEST(DeadlineTest, NeverExpires) {
  Deadline D = Deadline::never();
  for (int I = 0; I != 1000; ++I)
    EXPECT_FALSE(D.expired());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  Deadline D = Deadline::afterMillis(1);
  // Burn well past 1ms; the poll is sampled so loop enough times.
  Stopwatch Timer;
  while (Timer.elapsedMillis() < 20)
    ;
  bool Expired = false;
  for (int I = 0; I != 200; ++I)
    Expired |= D.expired();
  EXPECT_TRUE(Expired);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "23"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FormatMillis) {
  EXPECT_EQ(TablePrinter::formatMillis(0, false), "00:00.000");
  EXPECT_EQ(TablePrinter::formatMillis(61234, false), "01:01.234");
  EXPECT_EQ(TablePrinter::formatMillis(1, true), "TL");
}

TEST(JsonWriterTest, NestedStructure) {
  std::ostringstream OS;
  JsonWriter J(OS);
  J.beginObject();
  J.key("name").value("tpcc");
  J.key("threads").value(4u);
  J.key("millis").value(12.5);
  J.key("timed_out").value(false);
  J.key("runs").beginArray();
  J.value(uint64_t(1)).value(uint64_t(2));
  J.beginObject().key("k").value("v").endObject();
  J.endArray();
  J.key("empty").beginArray().endArray();
  J.endObject();

  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"name\": \"tpcc\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"threads\": 4"), std::string::npos) << Out;
  EXPECT_NE(Out.find("12.5"), std::string::npos) << Out;
  EXPECT_NE(Out.find("false"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"empty\": []"), std::string::npos) << Out;
  // Balanced brackets, comma-separated array elements.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '{'),
            std::count(Out.begin(), Out.end(), '}'));
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '['),
            std::count(Out.begin(), Out.end(), ']'));
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, ValueFixedKeepsFractionDigits) {
  std::ostringstream OS;
  JsonWriter J(OS);
  // %.6g would render 10000000.125 as 1e+07; the trace exporter needs
  // the microsecond timestamp exact.
  J.beginArray().valueFixed(10000000.125, 3).valueFixed(0.5, 3).endArray();
  EXPECT_NE(OS.str().find("10000000.125"), std::string::npos) << OS.str();
  EXPECT_NE(OS.str().find("0.500"), std::string::npos) << OS.str();
  EXPECT_EQ(OS.str().find("e+"), std::string::npos) << OS.str();
}

TEST(JsonParseTest, Scalars) {
  EXPECT_EQ(parseJson("null")->kind(), JsonValue::Kind::Null);
  EXPECT_TRUE(parseJson("true")->asBool());
  EXPECT_FALSE(parseJson("false")->asBool());
  EXPECT_DOUBLE_EQ(parseJson("-12.5e2")->asNumber(), -1250.0);
  EXPECT_EQ(parseJson("\"hi\"")->asString(), "hi");
}

TEST(JsonParseTest, NestedContainersAndLookup) {
  std::unique_ptr<JsonValue> Doc =
      parseJson("{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"}");
  ASSERT_TRUE(Doc);
  const JsonValue *A = Doc->find("a");
  ASSERT_TRUE(A && A->kind() == JsonValue::Kind::Array);
  ASSERT_EQ(A->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(A->elements()[1].asNumber(), 2.0);
  EXPECT_TRUE(A->elements()[2].find("b")->asBool());
  EXPECT_EQ(Doc->find("c")->asString(), "x");
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(parseJson("\"a\\\"b\\\\c\\nd\"")->asString(), "a\"b\\c\nd");
  // \u00e9 is é (U+00E9) in UTF-8.
  EXPECT_EQ(parseJson("\"\\u00e9\"")->asString(), "\xc3\xa9");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  std::ostringstream OS;
  JsonWriter J(OS);
  J.beginObject()
      .key("n")
      .value(uint64_t(123))
      .key("s")
      .value("a\"b")
      .key("xs")
      .beginArray()
      .value(true)
      .value(int64_t(-4))
      .endArray()
      .endObject();
  std::string Error;
  std::unique_ptr<JsonValue> Doc = parseJson(OS.str(), &Error);
  ASSERT_TRUE(Doc) << Error;
  EXPECT_DOUBLE_EQ(Doc->find("n")->asNumber(), 123.0);
  EXPECT_EQ(Doc->find("s")->asString(), "a\"b");
  EXPECT_DOUBLE_EQ(Doc->find("xs")->elements()[1].asNumber(), -4.0);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(parseJson("", &Error));
  EXPECT_FALSE(parseJson("{", &Error));
  EXPECT_FALSE(parseJson("[1,]", &Error));
  EXPECT_FALSE(parseJson("{\"a\" 1}", &Error));
  EXPECT_FALSE(parseJson("tru", &Error));
  EXPECT_FALSE(parseJson("1 2", &Error)); // Trailing garbage.
  EXPECT_FALSE(Error.empty());
}

TEST(JsonParseTest, DepthBounded) {
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  std::string Error;
  EXPECT_FALSE(parseJson(Deep, &Error));
  EXPECT_NE(Error.find("deep"), std::string::npos);
}
