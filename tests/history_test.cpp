//===- tests/history_test.cpp - History data-model tests ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/History.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;
} // namespace

TEST(EventTest, Factories) {
  Event W = Event::makeWrite(X, 7);
  EXPECT_EQ(W.Kind, EventKind::Write);
  EXPECT_EQ(W.Var, X);
  EXPECT_EQ(W.Val, 7);
  EXPECT_TRUE(W.isWrite());
  EXPECT_FALSE(W.isRead());
  EXPECT_EQ(Event::makeRead(Y).Var, Y);
  EXPECT_EQ(Event::makeBegin().Kind, EventKind::Begin);
}

TEST(TxnUidTest, PackingAndInit) {
  TxnUid U = uid(3, 5);
  EXPECT_FALSE(U.isInit());
  EXPECT_TRUE(TxnUid::init().isInit());
  EXPECT_EQ(U.str(), "t3.5");
  EXPECT_EQ(TxnUid::init().str(), "init");
  EXPECT_NE(uid(1, 2).packed(), uid(2, 1).packed());
}

TEST(TransactionLogTest, StatusTransitions) {
  TransactionLog Log(uid(0, 0));
  Log.append(Event::makeBegin());
  EXPECT_TRUE(Log.isPending());
  Log.append(Event::makeWrite(X, 1));
  EXPECT_TRUE(Log.isPending());
  Log.append(Event::makeCommit());
  EXPECT_TRUE(Log.isCommitted());
  EXPECT_FALSE(Log.isAborted());
}

TEST(TransactionLogTest, AbortHidesWrites) {
  TransactionLog Log(uid(0, 0));
  Log.append(Event::makeBegin());
  Log.append(Event::makeWrite(X, 1));
  Log.append(Event::makeAbort());
  EXPECT_TRUE(Log.isAborted());
  EXPECT_FALSE(Log.writesVar(X)) << "writes(t) is empty for aborted logs";
  EXPECT_TRUE(Log.writtenVars().empty());
  // But the raw last-write value is still visible for read-local replay.
  EXPECT_EQ(Log.lastWriteValue(X), std::optional<Value>(1));
}

TEST(TransactionLogTest, ExternalReads) {
  TransactionLog Log(uid(0, 0));
  Log.append(Event::makeBegin());
  Log.append(Event::makeRead(X));     // pos 1: external.
  Log.append(Event::makeWrite(X, 5)); // pos 2.
  Log.append(Event::makeRead(X));     // pos 3: internal (po-preceded write).
  Log.append(Event::makeRead(Y));     // pos 4: external.
  EXPECT_TRUE(Log.isExternalRead(1));
  EXPECT_FALSE(Log.isExternalRead(3));
  EXPECT_TRUE(Log.isExternalRead(4));
  EXPECT_EQ(Log.externalReads(), (std::vector<uint32_t>{1, 4}));
}

TEST(TransactionLogTest, LastWriteBeforeAndTruncate) {
  TransactionLog Log(uid(0, 0));
  Log.append(Event::makeBegin());
  Log.append(Event::makeWrite(X, 1));
  Log.append(Event::makeWrite(X, 2));
  Log.append(Event::makeWrite(Y, 3));
  EXPECT_EQ(Log.lastWriteBefore(X, 3), std::optional<uint32_t>(2));
  EXPECT_EQ(Log.lastWriteBefore(X, 2), std::optional<uint32_t>(1));
  EXPECT_EQ(Log.lastWriteBefore(Y, 3), std::nullopt);
  TransactionLog Short = Log.truncated(2);
  EXPECT_EQ(Short.size(), 2u);
  EXPECT_EQ(Short.lastWriteValue(X), std::optional<Value>(1));
}

TEST(HistoryTest, InitialHistory) {
  History H = History::makeInitial(3);
  EXPECT_EQ(H.numTxns(), 1u);
  EXPECT_TRUE(H.txn(0).isInit());
  EXPECT_TRUE(H.txn(0).isCommitted());
  for (VarId V = 0; V != 3; ++V) {
    EXPECT_TRUE(H.txn(0).writesVar(V));
    EXPECT_EQ(H.txn(0).lastWriteValue(V), std::optional<Value>(0));
  }
  EXPECT_FALSE(H.pendingTxn().has_value());
  H.checkWellFormed();
}

TEST(HistoryTest, SessionOrder) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).w(X, 2).commit()
                  .txn(0, 1).rInit(X).commit()
                  .build();
  unsigned Init = 0, T00 = 1, T10 = 2, T01 = 3;
  EXPECT_TRUE(H.soLess(Init, T00));
  EXPECT_TRUE(H.soLess(Init, T10));
  EXPECT_TRUE(H.soLess(T00, T01));
  EXPECT_FALSE(H.soLess(T00, T10)) << "different sessions are unordered";
  EXPECT_FALSE(H.soLess(T01, T00));
  EXPECT_FALSE(H.soLess(T00, Init));
}

TEST(HistoryTest, WrAndCausalRelations) {
  // t0.0 writes x; t1.0 reads x from t0.0 then writes y;
  // t2.0 reads y from t1.0.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(Y, 2).commit()
                  .txn(2, 0).r(Y, uid(1, 0)).commit()
                  .build();
  Relation Wr = H.wrRelation();
  EXPECT_TRUE(Wr.get(1, 2));
  EXPECT_TRUE(Wr.get(2, 3));
  EXPECT_FALSE(Wr.get(1, 3));
  Relation Causal = H.causalRelation();
  EXPECT_TRUE(Causal.get(1, 3)) << "wr composes transitively";
  EXPECT_TRUE(Causal.get(0, 3)) << "init precedes everything via so";
  EXPECT_FALSE(Causal.get(3, 1));
}

TEST(HistoryTest, ReadValueExternalAndLocal) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 41).commit()
                  .txn(1, 0)
                  .r(X, uid(0, 0)) // external: reads 41.
                  .w(X, 7)
                  .rPlain(X) // internal: reads own 7.
                  .commit()
                  .build();
  EXPECT_EQ(H.readValue(2, 1), 41);
  EXPECT_EQ(H.readValue(2, 3), 7);
}

TEST(HistoryTest, CommittedWriters) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).w(X, 2).abort()
                  .txn(2, 0).w(X, 3).commit()
                  .build();
  // init, t0.0 and t2.0 qualify; the aborted t1.0 does not.
  EXPECT_EQ(H.committedWriters(X), (std::vector<unsigned>{0, 1, 3}));
}

TEST(HistoryTest, PendingTxnDetection) {
  History H = History::makeInitial(1);
  unsigned Idx = H.beginTxn(uid(0, 0));
  ASSERT_TRUE(H.pendingTxn().has_value());
  EXPECT_EQ(*H.pendingTxn(), Idx);
  H.appendEvent(Idx, Event::makeCommit());
  EXPECT_FALSE(H.pendingTxn().has_value());
}

TEST(HistoryTest, EqualityIgnoresBlockOrder) {
  // Same logs in different block order.
  History A = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).w(Y, 2).commit()
                  .build();
  History B = LitmusBuilder(2)
                  .txn(1, 0).w(Y, 2).commit()
                  .txn(0, 0).w(X, 1).commit()
                  .build();
  EXPECT_TRUE(A.sameHistory(B));
  EXPECT_TRUE(B.sameHistory(A));
  EXPECT_EQ(A.hashIgnoringOrder(), B.hashIgnoringOrder());
  EXPECT_EQ(A.canonicalKey(), B.canonicalKey());
}

TEST(HistoryTest, InequalityOnDifferentWr) {
  History A = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  History B = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).rInit(X).commit()
                  .build();
  EXPECT_FALSE(A.sameHistory(B));
  EXPECT_NE(A.canonicalKey(), B.canonicalKey());
}

TEST(HistoryTest, InequalityOnDifferentEvents) {
  History A = LitmusBuilder(1).txn(0, 0).w(X, 1).commit().build();
  History B = LitmusBuilder(1).txn(0, 0).w(X, 2).commit().build();
  History C = LitmusBuilder(1).txn(0, 0).w(X, 1).abort().build();
  EXPECT_FALSE(A.sameHistory(B));
  EXPECT_FALSE(A.sameHistory(C));
}

TEST(HistoryTest, StrRendersReadably) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  std::string S = H.str();
  EXPECT_NE(S.find("write(x0,1)"), std::string::npos);
  EXPECT_NE(S.find("read(x0)<-t0.0"), std::string::npos);
}

TEST(HistoryTest, OrderConsistencyCheck) {
  // Well-ordered history: readers after writers; passes the check.
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  H.checkOrderConsistent();
}

TEST(HistoryTest, CopyAndShareKeepHistoryEquality) {
  // sameHistory/hash/canonicalKey are oblivious to copy-on-write sharing:
  // a copy compares equal both while it aliases the original's storage and
  // after a same-content mutation forces a clone.
  History A = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  History B = A;
  EXPECT_TRUE(A.sameHistory(B));
  EXPECT_EQ(A.hashIgnoringOrder(), B.hashIgnoringOrder());
  EXPECT_EQ(A.canonicalKey(), B.canonicalKey());

  unsigned R = *B.indexOf(uid(1, 0));
  B.setWriter(R, 1, uid(0, 0)); // Same writer: clones storage, same content.
  EXPECT_NE(B.logIdentity(R), A.logIdentity(R));
  EXPECT_TRUE(A.sameHistory(B));
  EXPECT_EQ(A.hashIgnoringOrder(), B.hashIgnoringOrder());
  EXPECT_EQ(A.canonicalKey(), B.canonicalKey());
}

TEST(HistoryTest, AppendLogSharedIndexesByUid) {
  History A = LitmusBuilder(1).txn(0, 0).w(X, 1).commit().build();
  History B;
  unsigned I0 = B.appendLogShared(A, 0);
  unsigned I1 = B.appendLogShared(A, 1);
  EXPECT_EQ(I0, 0u);
  EXPECT_EQ(I1, 1u);
  EXPECT_EQ(*B.indexOf(uid(0, 0)), 1u);
  EXPECT_TRUE(B.sameHistory(A));
  B.checkWellFormed();
}
