//===- tests/swap_test.cpp - ComputeReorderings / Swap / Optimality -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the §5.2/§5.3 machinery on the paper's own examples:
/// Fig. 11 (re-ordering deletes dependents; aborted readers re-execute),
/// Fig. 12 (readLatest restricts which branch may swap) and Fig. 13 (the
/// swapped predicate prevents re-swapping).
///
//===----------------------------------------------------------------------===//

#include "core/Swap.h"

#include "consistency/ConsistencyChecker.h"
#include "semantics/Executor.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;

LevelAssignment cc() {
  return LevelAssignment::uniform(IsolationLevel::CausalConsistency);
}
} // namespace

TEST(OracleOrderTest, InitFirstThenLexicographic) {
  EXPECT_TRUE(oracleLess(TxnUid::init(), uid(0, 0)));
  EXPECT_FALSE(oracleLess(uid(0, 0), TxnUid::init()));
  EXPECT_TRUE(oracleLess(uid(0, 1), uid(1, 0)));
  EXPECT_TRUE(oracleLess(uid(1, 0), uid(1, 1)));
  EXPECT_FALSE(oracleLess(uid(1, 0), uid(1, 0)));
}

TEST(ComputeReorderingsTest, EmptyUnlessLastIsCommit) {
  // Last block pending: no candidates.
  History Pending = LitmusBuilder(1)
                        .txn(0, 0).rInit(X).commit()
                        .txn(1, 0).w(X, 4)
                        .build();
  EXPECT_TRUE(computeReorderings(Pending).empty());

  // Last block aborted: no candidates (footnote 5).
  History Aborted = LitmusBuilder(1)
                        .txn(0, 0).rInit(X).commit()
                        .txn(1, 0).w(X, 4).abort()
                        .build();
  EXPECT_TRUE(computeReorderings(Aborted).empty());
}

TEST(ComputeReorderingsTest, FindsCausallyUnrelatedReads) {
  // Fig. 11b shape: two readers of x, then a committed writer of x.
  History H = LitmusBuilder(2)
                  .txn(0, 0).rInit(X).abort()          // t1 (aborts on 0).
                  .txn(0, 1).rInit(X).commit()         // t2.
                  .txn(1, 0).w(Y, 3).commit()          // t3 writes y only.
                  .txn(1, 1).w(X, 4).commit()          // t4 writes x.
                  .build();
  std::vector<Reordering> Rs = computeReorderings(H);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_EQ(Rs[0].ReaderTxn, 1u); // t1's read.
  EXPECT_EQ(Rs[1].ReaderTxn, 2u); // t2's read.
}

TEST(ComputeReorderingsTest, SkipsCausallyRelatedReaders) {
  // The reader reads *from* the last transaction's session predecessor —
  // wait, simpler: reader reads from t itself ⇒ causally related ⇒ no
  // candidate.
  History H = LitmusBuilder(1)
                  .txn(1, 0).w(X, 4).commit()
                  .txn(0, 0).r(X, uid(1, 0)).commit()
                  .build();
  // Only candidate pair would be (read of t0.0, t0.0's own txn)? No: the
  // last block is t0.0 which writes nothing. No candidates.
  EXPECT_TRUE(computeReorderings(H).empty());

  // so-related: the reader is the last transaction's session predecessor.
  History H2 = LitmusBuilder(1)
                   .txn(0, 0).rInit(X).commit()
                   .txn(0, 1).w(X, 4).commit()
                   .build();
  EXPECT_TRUE(computeReorderings(H2).empty());
}

TEST(ApplySwapTest, Fig11DeletesDependentsAndTruncatesReader) {
  // Fig. 11b: t1 = [read(x) <- init, abort]  (session 0, txn 0)
  //           t2 = [read(x) <- init]         (session 0, txn 1)
  //           t3 = [write(y,3)]              (session 1, txn 0)
  //           t4 = [write(x,4)]              (session 1, txn 1)
  History H = LitmusBuilder(2)
                  .txn(0, 0).rInit(X).abort()
                  .txn(0, 1).rInit(X).commit()
                  .txn(1, 0).w(Y, 3).commit()
                  .txn(1, 1).w(X, 4).commit()
                  .build();

  // Swap t4 with t1's read (Fig. 11d): everything po/so-after the read in
  // session 0 is deleted (t1's abort, all of t2); t3 stays (so-pred of
  // t4); the reader ends last, pending, reading from t4.
  History Swapped = applySwap(H, {1, 1});
  EXPECT_FALSE(Swapped.contains(uid(0, 1))) << "t2 must be deleted";
  ASSERT_TRUE(Swapped.contains(uid(0, 0)));
  ASSERT_TRUE(Swapped.contains(uid(1, 0))) << "t3 is kept (so-pred of t4)";
  ASSERT_TRUE(Swapped.contains(uid(1, 1)));
  unsigned Reader = *Swapped.indexOf(uid(0, 0));
  EXPECT_EQ(Reader, Swapped.numTxns() - 1) << "reader moves to the end";
  EXPECT_TRUE(Swapped.txn(Reader).isPending()) << "abort was truncated away";
  EXPECT_EQ(Swapped.txn(Reader).writerOf(1), std::optional<TxnUid>(uid(1, 1)));
  EXPECT_EQ(Swapped.readValue(Reader, 1), 4);
  Swapped.checkOrderConsistent();

  // Swap t4 with t2's read (Fig. 11c): only t2's commit is deleted; t1
  // stays whole (it precedes the read in <).
  History Swapped2 = applySwap(H, {2, 1});
  EXPECT_TRUE(Swapped2.contains(uid(0, 0)));
  unsigned Reader2 = *Swapped2.indexOf(uid(0, 1));
  EXPECT_EQ(Reader2, Swapped2.numTxns() - 1);
  EXPECT_TRUE(Swapped2.txn(Reader2).isPending());
  EXPECT_EQ(Swapped2.txn(Reader2).size(), 2u) << "begin + read remain";
}

TEST(ApplySwapTest, ResultMinusReadIsPrefix) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).rInit(X).rInit(Y).commit()
                  .txn(1, 0).w(X, 4).w(Y, 5).commit()
                  .build();
  History Swapped = applySwap(H, {1, 1});
  // Swap spec condition (2): dropping the re-pointed read (and the events
  // after it) from the result yields a prefix of the input.
  unsigned Reader = *Swapped.indexOf(uid(0, 0));
  EXPECT_EQ(Reader, Swapped.numTxns() - 1);
  EXPECT_EQ(Swapped.txn(Reader).size(), 2u);
  EXPECT_EQ(Swapped.readValue(Reader, 1), 4);
}

TEST(SwappedReadTest, ReadFromOracleSuccessorCountsAsSwapped) {
  // The state right after a swap: reader (t0.0) last, reading from the
  // oracle-later t1.0 which < places before it.
  History H = LitmusBuilder(1)
                  .txn(1, 0).w(X, 4).commit()
                  .txn(0, 0).r(X, uid(1, 0)).commit()
                  .build();
  EXPECT_TRUE(isSwappedRead(H, 2, 1));
}

TEST(SwappedReadTest, ReadFromOraclePredecessorIsNotSwapped) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 4).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  EXPECT_FALSE(isSwappedRead(H, 2, 1));
}

TEST(SwappedReadTest, Condition2ExcludesCausallyCoveredReads) {
  // t2.0 reads from t1.0 (oracle-later than... no: t1.0 <or t2.0). Make a
  // read from an oracle-successor whose causal successor precedes the
  // reader in both orders: condition (2) then rejects.
  //   t1.0 writes x (oracle-after t0.x, placed first in <),
  //   t0.0 reads x from t1.0 (genuinely swapped at some point),
  //   t0.1 reads x from t1.0 again.
  History H = LitmusBuilder(1)
                  .txn(1, 0).w(X, 4).commit()
                  .txn(0, 0).r(X, uid(1, 0)).commit()
                  .txn(0, 1).r(X, uid(1, 0)).commit()
                  .build();
  EXPECT_TRUE(isSwappedRead(H, 2, 1)) << "the original swapped read";
  // For t0.1's read: t' = t0.0 is <or-before t0.1, <-before it, and is a
  // causal successor of the writer t1.0 ⇒ not swapped.
  EXPECT_FALSE(isSwappedRead(H, 3, 1));
}

TEST(SwappedReadTest, Condition3FirstReaderOnly) {
  // Two reads of different variables from the same writer inside one
  // transaction: only the po-first counts as swapped.
  History H = LitmusBuilder(2)
                  .txn(1, 0).w(X, 4).w(Y, 5).commit()
                  .txn(0, 0).r(X, uid(1, 0)).r(Y, uid(1, 0)).commit()
                  .build();
  EXPECT_TRUE(isSwappedRead(H, 2, 1));
  EXPECT_FALSE(isSwappedRead(H, 2, 2));
}

TEST(ReadsLatestTest, Fig12OnlyInitBranchMaySwap) {
  // Fig. 12: t1 = w(x,2) [s0], t2 = r(x) [s1], t3 = r(x) [s2],
  // t4 = w(x,4) [s3]. Swap target: t4 (last). The deleted read of t3 (and
  // the swapped read of t2) must read from the causally-latest consistent
  // writer — init, since t1 is not in their causal past.
  auto MakeHistory = [](bool R2FromInit, bool R3FromInit) {
    LitmusBuilder B(1);
    B.txn(0, 0).w(X, 2).commit();
    B.txn(1, 0);
    R2FromInit ? B.rInit(X) : B.r(X, uid(0, 0));
    B.commit();
    B.txn(2, 0);
    R3FromInit ? B.rInit(X) : B.r(X, uid(0, 0));
    B.commit();
    B.txn(3, 0).w(X, 4).commit();
    return B.build();
  };

  // t2's read is txn index 2 pos 1; t3's read is txn index 3 pos 1;
  // target t4 is txn index 4.
  History II = MakeHistory(true, true);
  EXPECT_TRUE(readsLatest(II, 2, 1, 4, cc()));
  EXPECT_TRUE(readsLatest(II, 3, 1, 4, cc()));

  History TI = MakeHistory(false, true);
  EXPECT_FALSE(readsLatest(TI, 2, 1, 4, cc()))
      << "t2 reads t1 which is outside its causal past";
  EXPECT_TRUE(readsLatest(TI, 3, 1, 4, cc()));

  History IT = MakeHistory(true, false);
  EXPECT_FALSE(readsLatest(IT, 3, 1, 4, cc()));

  // Optimality for the (r2, t4) swap holds only in the init/init branch.
  EXPECT_TRUE(optimalityHolds(II, {2, 1}, cc()));
  EXPECT_FALSE(optimalityHolds(TI, {2, 1}, cc()));
  EXPECT_FALSE(optimalityHolds(IT, {2, 1}, cc()))
      << "t3's deleted read does not read causally-latest";
}

TEST(ReadsLatestTest, CausalPastWritersQualify) {
  // Reader's session previously wrote x: that session predecessor is in
  // the causal past and is <-later than init, so reading from it is
  // "latest".
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(0, 1).r(X, uid(0, 0)).commit()
                  .txn(1, 0).w(X, 4).commit()
                  .build();
  EXPECT_TRUE(readsLatest(H, 2, 1, 3, cc()));

  // Reading init instead of the causally-newer session write: under CC
  // this is inconsistent anyway, but readLatest specifically rejects
  // because init is not the <-latest consistent causal writer.
  History H2 = LitmusBuilder(1)
                   .txn(0, 0).w(X, 1).commit()
                   .txn(0, 1).rInit(X).commit()
                   .txn(1, 0).w(X, 4).commit()
                   .build();
  EXPECT_FALSE(readsLatest(H2, 2, 1, 3, cc()));
}

TEST(OptimalityTest, Fig13NoReswapAfterSwap) {
  // Fig. 13: t1 = r(x) [s0], t2 = r(y) [s1], t3 = w(y,3) [s2],
  // t4 = w(x,4) [s3].
  //
  // h1 (Fig. 13c): t2's read was already swapped to read from t3. When t4
  // commits, swapping (t1's read, t4) would delete t2's swapped read —
  // Optimality must reject it.
  History H1 = LitmusBuilder(2)
                   .txn(0, 0).rInit(X).commit()  // t1.
                   .txn(2, 0).w(Y, 3).commit()   // t3 (placed before t2).
                   .txn(1, 0).r(Y, uid(2, 0)).commit() // t2: swapped read.
                   .txn(3, 0).w(X, 4).commit()   // t4.
                   .build();
  ASSERT_TRUE(isSwappedRead(H1, 3, 1));
  EXPECT_FALSE(optimalityHolds(H1, {1, 1}, cc()))
      << "re-swapping would delete the swapped read of t2 (Fig. 13)";

  // h (Fig. 13b): nothing swapped yet; the same re-ordering is allowed.
  History H0 = LitmusBuilder(2)
                   .txn(0, 0).rInit(X).commit()
                   .txn(1, 0).rInit(Y).commit()
                   .txn(2, 0).w(Y, 3).commit()
                   .txn(3, 0).w(X, 4).commit()
                   .build();
  EXPECT_TRUE(optimalityHolds(H0, {1, 1}, cc()));
}

TEST(OptimalityTest, RejectsInconsistentSwapResult) {
  // Swapping so the reader would read stale data its causal past forbids:
  // under CC, t0.1 reading x from init after t0.0 wrote x is inconsistent;
  // but here we check the swap-result consistency gate with a simpler
  // case: the result is checked against the base level.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(0, 1).r(X, uid(0, 0)).commit()
                  .txn(1, 0).w(X, 4).commit()
                  .build();
  // Swap (read of t0.1, t1.0): result keeps t0.0 whole (before the read),
  // reader reads x from t1.0 — consistent under CC; optimality holds.
  EXPECT_TRUE(optimalityHolds(H, {2, 1}, cc()));
  History Swapped = applySwap(H, {2, 1});
  EXPECT_TRUE(isConsistent(Swapped, IsolationLevel::CausalConsistency));
}

TEST(OptimalityTest, AblationFlagsDisableChecks) {
  History H1 = LitmusBuilder(2)
                   .txn(0, 0).rInit(X).commit()
                   .txn(2, 0).w(Y, 3).commit()
                   .txn(1, 0).r(Y, uid(2, 0)).commit()
                   .txn(3, 0).w(X, 4).commit()
                   .build();
  EXPECT_FALSE(optimalityHolds(H1, {1, 1}, cc(), true, true));
  // With the swapped-check disabled, only readLatest can reject; t2's read
  // from t3 *is* causally latest... it reads from t3 which is not in its
  // causal past — readLatest rejects too.
  EXPECT_FALSE(optimalityHolds(H1, {1, 1}, cc(), false, true));
  // Both checks off: only the consistency of the swap result gates.
  EXPECT_TRUE(optimalityHolds(H1, {1, 1}, cc(), false, false));
}

TEST(ApplySwapTest, ReportsFirstChangedBlock) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).rInit(X).rInit(Y).commit()
                  .txn(1, 0).w(X, 4).w(Y, 5).commit()
                  .build();
  unsigned FirstChanged = 99;
  History Swapped = applySwap(H, {1, 1}, &FirstChanged);
  // The truncated reader is re-appended last; everything before it is the
  // unchanged (storage-shared) causal past of the target.
  EXPECT_EQ(FirstChanged, Swapped.numTxns() - 1);
  for (unsigned I = 0; I != FirstChanged; ++I) {
    std::optional<unsigned> Orig = H.indexOf(Swapped.txn(I).uid());
    ASSERT_TRUE(Orig.has_value());
    EXPECT_EQ(Swapped.logIdentity(I), H.logIdentity(*Orig))
        << "kept block " << I << " must share storage with the input";
  }
}

TEST(ApplySwapTest, IncrementalReplayAfterSwapMatchesFull) {
  // Program shaped like the Fig. 11 litmus: two reader sessions and a
  // writer session; swap re-executes only the truncated reader.
  ProgramBuilder B;
  VarId PX = B.var("x");
  VarId PY = B.var("y");
  B.beginTxn(0).read("a", PX);
  B.beginTxn(0).read("b", PX);
  auto W1 = B.beginTxn(1);
  W1.write(PY, 3);
  auto W2 = B.beginTxn(1);
  W2.write(PX, 4);
  Program P = B.build();

  History H = LitmusBuilder(2)
                  .txn(0, 0).rInit(X).commit()
                  .txn(0, 1).rInit(X).commit()
                  .txn(1, 0).w(Y, 3).commit()
                  .txn(1, 1).w(X, 4).commit()
                  .build();
  CursorMap Snapshot = replayAllCursors(P, H);

  unsigned FirstChanged = 0;
  History Swapped = applySwap(H, {1, 1}, &FirstChanged);
  CursorMap Incremental =
      replayCursorsFrom(P, Swapped, Snapshot, FirstChanged);
  CursorMap Full = replayAllCursors(P, Swapped);
  ASSERT_EQ(Incremental.size(), Full.size());
  for (const auto &KV : Full) {
    auto It = Incremental.find(KV.first);
    ASSERT_NE(It, Incremental.end());
    EXPECT_TRUE(It->second == KV.second);
  }
}
