//===- tests/fuzz_explain_roundtrip_test.cpp - Explain on fuzz repros -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop between the fuzzer and the user-facing diagnosis
/// machinery: every minimized counterexample the fuzzer emits is
/// round-tripped through its litmus text, explained by
/// consistency/Explain.h, and certified (or refuted) by
/// consistency/Witness.h — and the cited axiom violation must match the
/// oracle's recorded disagreement. A repro that the explainer calls
/// consistent, or whose witness search disagrees with the recorded
/// verdicts, would mean the fuzzer reports bugs its own tooling cannot
/// substantiate.
///
//===----------------------------------------------------------------------===//

#include "consistency/Explain.h"
#include "consistency/Witness.h"
#include "fuzz/Fuzzer.h"
#include "history/Prefix.h"

#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::fuzz;

namespace {

/// Minimized repros of the weak-cc mutation run shared by the tests
/// below (the run is deterministic, so computing it once is sound).
const FuzzReport &mutationReport() {
  static const FuzzReport Report = [] {
    FuzzOptions Options;
    Options.Seed = 1;
    Options.Iterations = 2000;
    Options.MaxDisagreements = 6;
    Options.Mutation = CheckerMutation::WeakCausalPremise;
    return runFuzz(Options);
  }();
  return Report;
}

} // namespace

TEST(FuzzExplainRoundTripTest, ReprosSurviveSerialization) {
  const FuzzReport &Report = mutationReport();
  ASSERT_GT(Report.Repros.size(), 0u);
  for (const Repro &R : Report.Repros) {
    std::string Text = writeRepro(R);
    std::string Error;
    std::optional<Repro> Parsed = parseRepro(Text, &Error);
    ASSERT_TRUE(Parsed.has_value()) << Error << '\n' << Text;
    ASSERT_TRUE(Parsed->Hist.has_value()) << Text;
    EXPECT_TRUE(Parsed->Hist->sameHistory(*R.Hist));
    EXPECT_EQ(Parsed->Level, R.Level);
    EXPECT_EQ(Parsed->Kind, R.Kind);
  }
}

TEST(FuzzExplainRoundTripTest, ExplainCitesTheDisagreedAxiom) {
  const FuzzReport &Report = mutationReport();
  ASSERT_GT(Report.Repros.size(), 0u);
  for (const Repro &R : Report.Repros) {
    // Re-load from text: the explanation must work on what a bug report
    // would actually contain, not on in-memory state.
    std::optional<Repro> Parsed = parseRepro(writeRepro(R));
    ASSERT_TRUE(Parsed && Parsed->Hist);
    const History &H = *Parsed->Hist;

    // The oracle recorded: mutated production accepts, reference
    // rejects. The real explainer must agree with the reference side and
    // cite a violation at exactly the disagreement's level.
    ASSERT_EQ(Parsed->Level, IsolationLevel::CausalConsistency);
    EXPECT_TRUE(Parsed->ProductionVerdict);
    EXPECT_FALSE(Parsed->ReferenceVerdict);

    ViolationExplanation E = explainViolation(H, Parsed->Level);
    EXPECT_FALSE(E.Consistent);
    EXPECT_EQ(E.Level, Parsed->Level);
    ASSERT_FALSE(E.Cycle.empty())
        << "saturation levels must yield a cycle witness\n" << H.str();
    // The cycle must chain and contain at least one axiom-forced edge —
    // the weakened premise is exactly what fails to force it.
    bool SawAxiomEdge = false;
    for (size_t I = 0; I != E.Cycle.size(); ++I) {
      EXPECT_EQ(E.Cycle[I].To, E.Cycle[(I + 1) % E.Cycle.size()].From);
      SawAxiomEdge |=
          E.Cycle[I].EdgeKind == ConstraintEdge::Kind::Axiom;
    }
    EXPECT_TRUE(SawAxiomEdge) << E.Text;
    EXPECT_NE(E.Text.find("violates"), std::string::npos);
  }
}

TEST(FuzzExplainRoundTripTest, WitnessSearchMatchesVerdicts) {
  const FuzzReport &Report = mutationReport();
  ASSERT_GT(Report.Repros.size(), 0u);
  for (const Repro &R : Report.Repros) {
    const History &H = *R.Hist;
    // Inconsistent at the disagreement level: no commit order may exist.
    EXPECT_FALSE(findCommitOrder(H, R.Level).has_value()) << H.str();
    // The mutation decided CC with RA's premise and accepted — so the
    // repro must genuinely be RA-consistent, and that "yes" must come
    // with a valid certificate.
    std::optional<std::vector<unsigned>> Order =
        findCommitOrder(H, IsolationLevel::ReadAtomic);
    ASSERT_TRUE(Order.has_value()) << H.str();
    EXPECT_TRUE(
        validateCommitOrder(H, IsolationLevel::ReadAtomic, *Order));
  }
}

TEST(FuzzExplainRoundTripTest, MinimizedReprosAreLocallyMinimal) {
  // Dropping any further transaction from a minimized repro must erase
  // the disagreement: the shrunk candidate is no longer both accepted by
  // the mutated checker and rejected by the reference.
  const FuzzReport &Report = mutationReport();
  ASSERT_GT(Report.Repros.size(), 0u);
  auto Disagrees = [](const History &C) {
    return mutatedIsConsistent(C, IsolationLevel::CausalConsistency,
                               CheckerMutation::WeakCausalPremise) &&
           !isConsistent(C, IsolationLevel::CausalConsistency);
  };
  for (const Repro &R : Report.Repros) {
    const History &H = *R.Hist;
    ASSERT_TRUE(Disagrees(H));
    for (unsigned I = 1; I != H.numTxns(); ++I) {
      PrefixCut Cut;
      for (unsigned J = 0; J != H.numTxns(); ++J)
        Cut.push_back(static_cast<uint32_t>(H.txn(J).size()));
      Cut[I] = 0;
      closeDownward(H, Cut);
      History Candidate = takePrefix(H, Cut);
      if (Candidate.numTxns() == H.numTxns())
        continue;
      EXPECT_FALSE(Disagrees(Candidate))
          << "dropping txn " << H.txn(I).uid().str()
          << " kept the disagreement alive:\n" << H.str();
    }
  }
}
