//===- tests/trace_io_test.cpp - Trace grammar round-trips and rejection --===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace grammar of src/trace_io/: JSONL and litmus round-trip
/// properties over generated traces (write -> re-read -> identical
/// records), a rejection table for malformed JSONL records, and the
/// semantic-rejection corpus in tests/traces/malformed/ — every file
/// must be refused with a line-anchored diagnostic, mirroring the CLI's
/// exit-1 contract.
///
//===----------------------------------------------------------------------===//

#include "trace_io/TraceFormat.h"

#include "consistency/StreamingChecker.h"
#include "trace_io/TraceGen.h"
#include "trace_io/TraceReader.h"
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace txdpor;
using namespace txdpor::trace_io;

namespace {

std::string malformedPath(const std::string &Name) {
  return std::string(TXDPOR_SOURCE_DIR) + "/tests/traces/malformed/" + Name;
}

/// Structural equality of two completed transaction records.
void expectSameLog(const TransactionLog &A, const TransactionLog &B,
                   const std::string &Context) {
  ASSERT_EQ(A.uid(), B.uid()) << Context;
  ASSERT_EQ(A.size(), B.size()) << Context;
  for (uint32_t P = 0, E = static_cast<uint32_t>(A.size()); P != E; ++P) {
    EXPECT_EQ(A.event(P), B.event(P)) << Context << " at position " << P;
    EXPECT_EQ(A.writerOf(P), B.writerOf(P)) << Context << " at position " << P;
  }
}

/// Writes \p Txns in \p F and reads the stream back, comparing records
/// and header fields.
void roundTrip(const TraceHeader &Header,
               const std::vector<TransactionLog> &Txns, TraceFormat F,
               const std::string &Context) {
  std::stringstream SS;
  writeTrace(SS, Header, Txns, F);
  TraceReader Reader(SS);
  ASSERT_TRUE(Reader.valid()) << Context << ": " << Reader.error();
  EXPECT_EQ(Reader.format(), F) << Context;
  EXPECT_EQ(Reader.header().NumVars, Header.NumVars) << Context;
  EXPECT_EQ(Reader.header().NumSessions, Header.NumSessions) << Context;
  if (Header.Levels) {
    // The writer serializes the assignment resolved over the declared
    // sessions, so compare resolved-to-resolved.
    unsigned Sessions = Header.NumSessions.value_or(0);
    ASSERT_TRUE(Reader.header().Levels.has_value()) << Context;
    EXPECT_EQ(Reader.header().Levels->resolved(Sessions).str(),
              Header.Levels->resolved(Sessions).str())
        << Context;
  }

  TransactionLog Log{TxnUid::init()};
  size_t N = 0;
  for (;;) {
    TraceReader::Next Next = Reader.next(Log);
    if (Next == TraceReader::Next::End)
      break;
    ASSERT_EQ(Next, TraceReader::Next::Txn)
        << Context << ": " << Reader.error();
    ASSERT_LT(N, Txns.size()) << Context << ": reader yielded extra records";
    expectSameLog(Txns[N], Log, Context + " record " + std::to_string(N));
    ++N;
  }
  EXPECT_EQ(N, Txns.size()) << Context << ": reader dropped records";
}

} // namespace

TEST(TraceRoundTripTest, GeneratedTracesSurviveBothFormats) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    GenConfig C;
    C.Seed = Seed;
    C.Sessions = 1 + Seed % 4;
    C.Vars = 2 + Seed % 5;
    C.Events = 300;
    C.AbortPercent = 15;
    if (Seed % 2 == 0)
      C.AnomalyAtTxn = 10;
    std::vector<TransactionLog> Txns;
    TraceHeader Header = generateTrace(
        C, [&](const TransactionLog &Log) { Txns.push_back(Log); });
    std::string Context = "seed " + std::to_string(Seed);
    roundTrip(Header, Txns, TraceFormat::Jsonl, Context + " jsonl");
    roundTrip(Header, Txns, TraceFormat::Litmus, Context + " litmus");
  }
}

TEST(TraceRoundTripTest, HeaderCarriesAssignment) {
  GenConfig C;
  C.Seed = 4;
  C.Sessions = 3;
  C.Events = 120;
  std::vector<TransactionLog> Txns;
  TraceHeader Header = generateTrace(
      C, [&](const TransactionLog &Log) { Txns.push_back(Log); });
  LevelAssignment Mix = LevelAssignment::uniform(IsolationLevel::ReadCommitted);
  Mix.set(1, IsolationLevel::CausalConsistency);
  Header.Levels = Mix;
  roundTrip(Header, Txns, TraceFormat::Jsonl, "mixed header jsonl");
  roundTrip(Header, Txns, TraceFormat::Litmus, "mixed header litmus");
}

TEST(TraceRejectionTest, MalformedJsonlRecords) {
  // Syntactic rejection: every record is refused by the record parser
  // with a non-empty diagnostic.
  const char *Records[] = {
      // Truncated JSON.
      "{\"s\":0,\"i\":0,\"ops\":[[\"w\",0,",
      // Not an object.
      "[1,2,3]",
      // Missing session.
      "{\"i\":0,\"ops\":[[\"w\",0,1]],\"st\":\"c\"}",
      // Unknown op code.
      "{\"s\":0,\"i\":0,\"ops\":[[\"x\",0,1]],\"st\":\"c\"}",
      // Read with a malformed writer uid.
      "{\"s\":0,\"i\":0,\"ops\":[[\"r\",0,\"nonsense\"]],\"st\":\"c\"}",
      // Unknown completion status.
      "{\"s\":0,\"i\":0,\"ops\":[[\"w\",0,1]],\"st\":\"q\"}",
      // Wrong type for a variable id.
      "{\"s\":0,\"i\":0,\"ops\":[[\"w\",\"zero\",1]],\"st\":\"c\"}",
  };
  for (const char *Record : Records) {
    std::string Error;
    EXPECT_FALSE(parseJsonlTxn(Record, &Error).has_value()) << Record;
    EXPECT_FALSE(Error.empty()) << Record;
  }
}

TEST(TraceRejectionTest, MalformedCorpusIsRefusedWithDiagnostics) {
  // Semantic rejection through the same reader + checker pipeline the
  // CLI drives; every corpus file must end Malformed, never Ok or a
  // crash, with a diagnostic naming the problem.
  const char *Files[] = {
      "truncated.jsonl",     "unknown_session.jsonl", "unknown_writer.jsonl",
      "duplicate_commit.jsonl", "out_of_order.jsonl",
  };
  for (const char *Name : Files) {
    std::ifstream In(malformedPath(Name));
    ASSERT_TRUE(In.is_open()) << "missing corpus file " << Name;
    TraceReader Reader(In);
    ASSERT_TRUE(Reader.valid()) << Name << ": " << Reader.error();

    StreamingOptions Opts;
    Opts.Levels = LevelAssignment::uniform(IsolationLevel::CausalConsistency);
    Opts.NumVars = Reader.header().NumVars;
    Opts.NumSessions = Reader.header().NumSessions;
    StreamingChecker Checker(Opts);

    bool Refused = false;
    std::string Diag;
    TransactionLog Log{TxnUid::init()};
    for (;;) {
      TraceReader::Next N = Reader.next(Log);
      if (N == TraceReader::Next::End)
        break;
      if (N == TraceReader::Next::Error) {
        Refused = true;
        Diag = Reader.error();
        break;
      }
      StreamStatus S = Checker.append(Log, &Diag);
      if (S != StreamStatus::Ok) {
        EXPECT_EQ(S, StreamStatus::Malformed) << Name << ": " << Diag;
        Refused = true;
        break;
      }
    }
    EXPECT_TRUE(Refused) << Name << " was accepted";
    EXPECT_FALSE(Diag.empty()) << Name;
  }
}

TEST(TraceRejectionTest, CrlfTraceParsesLikeLf) {
  // tests/traces/clean_tiny_crlf.litmus is the golden clean_tiny trace
  // with Windows line endings. nextLine used to leave the trailing '\r'
  // on every line, so the first record failed to tokenize; now both
  // variants must yield identical headers and records.
  std::string Dir = std::string(TXDPOR_SOURCE_DIR) + "/tests/traces/";
  std::ifstream LfIn(Dir + "clean_tiny.litmus");
  std::ifstream CrlfIn(Dir + "clean_tiny_crlf.litmus");
  ASSERT_TRUE(LfIn.is_open() && CrlfIn.is_open());

  TraceReader Lf(LfIn), Crlf(CrlfIn);
  ASSERT_TRUE(Lf.valid()) << Lf.error();
  ASSERT_TRUE(Crlf.valid()) << "CRLF golden rejected: " << Crlf.error();
  EXPECT_EQ(Crlf.header().NumVars, Lf.header().NumVars);
  EXPECT_EQ(Crlf.header().NumSessions, Lf.header().NumSessions);

  TransactionLog A{TxnUid::init()}, B{TxnUid::init()};
  unsigned Records = 0;
  for (;;) {
    TraceReader::Next NA = Lf.next(A);
    TraceReader::Next NB = Crlf.next(B);
    ASSERT_EQ(NA, NB) << "readers diverged after " << Records << " records ("
                      << Lf.error() << " / " << Crlf.error() << ")";
    if (NA != TraceReader::Next::Txn)
      break;
    ++Records;
    expectSameLog(A, B, "CRLF record " + std::to_string(Records));
  }
  EXPECT_GT(Records, 0u) << "golden trace parsed as empty";
}
