//===- tests/apps_test.cpp - Benchmark application tests ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"

#include "apps/Courseware.h"
#include "apps/ShoppingCart.h"
#include "apps/Tpcc.h"
#include "apps/Twitter.h"
#include "apps/Wikipedia.h"
#include "core/Enumerate.h"
#include "semantics/Executor.h"
#include <gtest/gtest.h>

using namespace txdpor;

TEST(AppsTest, ClientGenerationDeterministic) {
  for (AppKind App : AllApps) {
    ClientSpec Spec;
    Spec.Sessions = 3;
    Spec.TxnsPerSession = 3;
    Spec.Seed = 7;
    Program A = makeClientProgram(App, Spec);
    Program B = makeClientProgram(App, Spec);
    EXPECT_EQ(A.str(), B.str()) << appName(App);
    EXPECT_EQ(A.numSessions(), 3u);
    EXPECT_EQ(A.totalTxns(), 9u);
  }
}

TEST(AppsTest, DifferentSeedsDiffer) {
  unsigned Different = 0;
  for (AppKind App : AllApps) {
    ClientSpec S1{3, 3, 1}, S2{3, 3, 2};
    if (makeClientProgram(App, S1).str() != makeClientProgram(App, S2).str())
      ++Different;
  }
  EXPECT_GE(Different, 4u) << "seeds should vary the workloads";
}

TEST(AppsTest, ClientNames) {
  EXPECT_EQ(clientName(AppKind::Tpcc, 0), "tpcc-1");
  EXPECT_EQ(clientName(AppKind::ShoppingCart, 4), "shoppingCart-5");
}

TEST(AppsTest, SmallClientsExploreUnderCC) {
  for (AppKind App : AllApps) {
    ClientSpec Spec;
    Spec.Sessions = 2;
    Spec.TxnsPerSession = 2;
    Spec.Seed = 3;
    Program P = makeClientProgram(App, Spec);
    ExplorerConfig C =
        ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
    C.MaxEndStates = 50000;
    auto R = enumerateHistories(P, C);
    EXPECT_FALSE(R.Stats.HitEndStateCap) << appName(App);
    EXPECT_GT(R.Histories.size(), 0u) << appName(App);
    EXPECT_EQ(R.Stats.BlockedReads, 0u) << appName(App);
    auto Counts = countByCanonicalKey(R.Histories);
    EXPECT_EQ(Counts.size(), R.Histories.size())
        << appName(App) << ": duplicate histories";
  }
}

TEST(AppsTest, ShoppingCartSemantics) {
  ProgramBuilder B;
  ShoppingCartApp App(B, /*NumUsers=*/1, /*NumItems=*/2);
  App.addItem(0, 0, 0, 3);
  App.getCart(1, 0);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // getCart sees the cart set either before or after the insert; when it
  // sees the insert it also reads the quantity row.
  bool SawItem = false, SawEmpty = false;
  for (const History &H : R.Histories) {
    FinalStates States = computeFinalStates(P, H);
    Value Cart = States.local(1, 0, "c");
    if (Cart & 1)
      SawItem = true;
    else
      SawEmpty = true;
  }
  EXPECT_TRUE(SawItem);
  EXPECT_TRUE(SawEmpty);
}

TEST(AppsTest, CoursewareEnrollRespectsGuardLocally) {
  ProgramBuilder B;
  CoursewareApp App(B, /*NumStudents=*/1, /*NumCourses=*/1, /*Capacity=*/1);
  App.openCourse(0, 0);
  App.enroll(0, 0, 0);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // Single session: open then enroll; the enrollment must succeed.
  for (const History &H : R.Histories) {
    FinalStates States = computeFinalStates(P, H);
    EXPECT_EQ(States.local(0, 1, "did"), 1);
  }
  EXPECT_EQ(R.Histories.size(), 1u);
}

TEST(AppsTest, TwitterFollowThenTimeline) {
  ProgramBuilder B;
  TwitterApp App(B, /*NumUsers=*/2);
  App.follow(0, 0, 1);   // user 0 follows user 1.
  App.tweet(1, 1);       // user 1 tweets.
  App.getTimeline(2, 0); // user 0 reads its timeline.
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_GT(R.Histories.size(), 1u);
  // In some execution the timeline observes both the follow and the tweet.
  bool SawTweet = false;
  for (const History &H : R.Histories) {
    FinalStates States = computeFinalStates(P, H);
    if (States.local(2, 0, "f") == 0b10 && States.local(2, 0, "t1") == 1)
      SawTweet = true;
  }
  EXPECT_TRUE(SawTweet);
}

TEST(AppsTest, TpccNewOrderAllocatesIds) {
  ProgramBuilder B;
  TpccApp App(B, /*NumItems=*/1, /*NumCustomers=*/1);
  App.newOrder(0, 0);
  App.newOrder(1, 0);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // Under CC the two counter RMWs can collide (lost update) or chain.
  bool SawCollision = false, SawChain = false;
  for (const History &H : R.Histories) {
    FinalStates States = computeFinalStates(P, H);
    Value A = States.local(0, 0, "o"), Bv = States.local(1, 0, "o");
    (A == Bv ? SawCollision : SawChain) = true;
  }
  EXPECT_TRUE(SawCollision) << "lost update possible under CC";
  EXPECT_TRUE(SawChain);

  // Under SER the ids must be distinct.
  auto Ser = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::Serializability));
  for (const History &H : Ser.Histories) {
    FinalStates States = computeFinalStates(P, H);
    EXPECT_NE(States.local(0, 0, "o"), States.local(1, 0, "o"));
  }
}

TEST(AppsTest, WikipediaWatchlistRoundTrip) {
  ProgramBuilder B;
  WikipediaApp App(B, /*NumUsers=*/1, /*NumPages=*/2);
  App.addWatch(0, 0, 1);
  App.removeWatch(0, 0, 1);
  App.getPageAuthenticated(1, 0, 1);
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // The session-local add+remove nets out; the reader sees 0 or the
  // intermediate bit depending on which write it reads.
  bool SawSet = false, SawClear = false;
  for (const History &H : R.Histories) {
    FinalStates States = computeFinalStates(P, H);
    (States.local(1, 0, "w") & 0b10 ? SawSet : SawClear) = true;
  }
  EXPECT_TRUE(SawSet);
  EXPECT_TRUE(SawClear);
}

TEST(AppsTest, ScalingShapesAreExplorable) {
  // The Fig. 15 sweeps use 1..4 sessions/txns; ensure the smaller shapes
  // stay within a practical budget here.
  ClientSpec Spec;
  Spec.Sessions = 1;
  Spec.TxnsPerSession = 3;
  Spec.Seed = 11;
  for (AppKind App : {AppKind::Tpcc, AppKind::Wikipedia}) {
    Program P = makeClientProgram(App, Spec);
    auto R = enumerateHistories(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
    EXPECT_EQ(R.Histories.size(), 1u)
        << appName(App) << ": single session is deterministic";
  }
}
