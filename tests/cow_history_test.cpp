//===- tests/cow_history_test.cpp - Copy-on-write history tests -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aliasing edge cases of the copy-on-write History representation:
/// copies share log storage, mutation-after-share clones exactly the
/// touched log, Swap shares the kept causal past, and incremental cursor
/// replay (replayCursorsFrom) is observationally equivalent to a full
/// replay of the swapped history.
///
//===----------------------------------------------------------------------===//

#include "core/Swap.h"
#include "semantics/Executor.h"

#include "TestUtil.h"
#include <algorithm>
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;

/// Two-transaction program matching the litmus histories below:
///   t0.0: a := read(x); commit      t1.0: write(x, 7); commit
Program makeReadWriteProgram() {
  ProgramBuilder B;
  VarId PX = B.var("x");
  B.beginTxn(0).read("a", PX);
  B.beginTxn(1).write(PX, 7);
  return B.build();
}

History makeReadWriteHistory() {
  return LitmusBuilder(1)
      .txn(0, 0).rInit(X).commit()
      .txn(1, 0).w(X, 7).commit()
      .build();
}

/// All logs of \p A and \p B with matching indices share storage.
unsigned countSharedLogs(const History &A, const History &B) {
  unsigned Shared = 0;
  for (unsigned I = 0, E = std::min(A.numTxns(), B.numTxns()); I != E; ++I)
    if (A.logIdentity(I) == B.logIdentity(I))
      ++Shared;
  return Shared;
}

} // namespace

//===----------------------------------------------------------------------===//
// Sharing and mutation-after-share
//===----------------------------------------------------------------------===//

TEST(CowHistoryTest, CopySharesEveryLog) {
  History H = makeReadWriteHistory();
  History Copy = H;
  ASSERT_EQ(Copy.numTxns(), H.numTxns());
  EXPECT_EQ(countSharedLogs(H, Copy), H.numTxns())
      << "a history copy must not duplicate any event storage";
  EXPECT_TRUE(H.sameHistory(Copy));
}

TEST(CowHistoryTest, MutationAfterShareClonesOnlyTouchedLog) {
  History H = History::makeInitial(2);
  unsigned Idx = H.beginTxn(uid(0, 0));
  H.appendEvent(Idx, Event::makeWrite(X, 1));

  History Copy = H;
  Copy.appendEvent(Idx, Event::makeWrite(Y, 2)); // Mutation after share.

  // The copy cloned the pending log; the init log stays shared.
  EXPECT_NE(Copy.logIdentity(Idx), H.logIdentity(Idx));
  EXPECT_EQ(Copy.logIdentity(0), H.logIdentity(0));

  // The original is unperturbed.
  EXPECT_EQ(H.txn(Idx).size(), 2u);
  EXPECT_EQ(Copy.txn(Idx).size(), 3u);
  EXPECT_FALSE(H.sameHistory(Copy));
  H.checkWellFormed();
  Copy.checkWellFormed();
}

TEST(CowHistoryTest, SetWriterAfterShareLeavesOriginal) {
  History H = History::makeInitial(1);
  unsigned W = H.beginTxn(uid(1, 0));
  H.appendEvent(W, Event::makeWrite(X, 5));
  H.appendEvent(W, Event::makeCommit());
  unsigned R = H.beginTxn(uid(0, 0));
  H.appendEvent(R, Event::makeRead(X));
  H.setWriter(R, 1, TxnUid::init());

  History Copy = H;
  Copy.setWriter(R, 1, uid(1, 0)); // Re-point the read in the copy only.

  EXPECT_EQ(*H.txn(R).writerOf(1), TxnUid::init());
  EXPECT_EQ(*Copy.txn(R).writerOf(1), uid(1, 0));
  EXPECT_EQ(H.readValue(R, 1), 0);
  EXPECT_EQ(Copy.readValue(R, 1), 5);
  EXPECT_NE(Copy.logIdentity(R), H.logIdentity(R));
  EXPECT_EQ(countSharedLogs(H, Copy), H.numTxns() - 1)
      << "only the re-pointed reader log may be cloned";
}

TEST(CowHistoryTest, UniquelyOwnedLogMutatesInPlace) {
  History H = History::makeInitial(1);
  unsigned Idx = H.beginTxn(uid(0, 0));
  {
    History Copy = H;
    (void)Copy;
  } // Copy destroyed: H is sole owner again.
  const TransactionLog *Before = H.logIdentity(Idx);
  H.appendEvent(Idx, Event::makeWrite(X, 1));
  EXPECT_EQ(H.logIdentity(Idx), Before)
      << "a uniquely owned log must not be re-cloned on mutation";
}

TEST(CowHistoryTest, AppendLogSharedAliasesUntilMutation) {
  History H = makeReadWriteHistory();
  History Sub;
  Sub.appendLogShared(H, 0); // init
  unsigned SubR = Sub.appendLogShared(H, 1); // the reader, committed
  EXPECT_EQ(Sub.logIdentity(0), H.logIdentity(0));
  EXPECT_EQ(Sub.logIdentity(SubR), H.logIdentity(1));

  // Mutating through H's third log never touches Sub; mutating a shared
  // log through either history clones it for the mutator only.
  History Copy = Sub;
  EXPECT_EQ(Copy.logIdentity(SubR), Sub.logIdentity(SubR));
  Copy.setWriter(SubR, 1, TxnUid::init()); // Same value; still a mutation.
  EXPECT_NE(Copy.logIdentity(SubR), Sub.logIdentity(SubR));
  EXPECT_EQ(Sub.logIdentity(SubR), H.logIdentity(1))
      << "the non-mutating sharers keep the original storage";
}

//===----------------------------------------------------------------------===//
// Swap on shared structure
//===----------------------------------------------------------------------===//

TEST(CowHistoryTest, SwapSharesKeptCausalPast) {
  // Fig. 11b shape: an aborted reader, a second reader (deleted by the
  // swap), an so-predecessor of the target (kept whole), and the target.
  History H = LitmusBuilder(2)
                  .txn(0, 0).rInit(X).abort()
                  .txn(0, 1).rInit(X).commit()
                  .txn(1, 0).w(Y, 3).commit()
                  .txn(1, 1).w(X, 4).commit()
                  .build();
  unsigned FirstChanged = 0;
  History Swapped = applySwap(H, {1, 1}, &FirstChanged);

  EXPECT_EQ(FirstChanged, Swapped.numTxns() - 1)
      << "only the truncated reader block changes";
  // Kept-whole blocks share storage with H: init, t3, t4.
  EXPECT_EQ(Swapped.logIdentity(0), H.logIdentity(0));
  EXPECT_EQ(Swapped.logIdentity(*Swapped.indexOf(uid(1, 0))),
            H.logIdentity(*H.indexOf(uid(1, 0))));
  EXPECT_EQ(Swapped.logIdentity(*Swapped.indexOf(uid(1, 1))),
            H.logIdentity(*H.indexOf(uid(1, 1))));
  // The truncated reader is fresh storage.
  EXPECT_NE(Swapped.logIdentity(FirstChanged), H.logIdentity(1));
}

TEST(CowHistoryTest, SwapOnSharedPrefixLeavesAllSharersIntact) {
  History H = makeReadWriteHistory();
  History Alias = H; // Every log shared three ways after the swap.
  unsigned FirstChanged = 0;
  History Swapped = applySwap(H, {1, 1}, &FirstChanged);

  // Extending the swapped reader (as the explorer does next) must not
  // perturb H or its alias, even though they share the kept prefix.
  unsigned Reader = Swapped.numTxns() - 1;
  ASSERT_TRUE(Swapped.txn(Reader).isPending());
  Swapped.appendEvent(Reader, Event::makeCommit());
  Swapped.checkOrderConsistent();

  EXPECT_TRUE(H.sameHistory(Alias));
  EXPECT_EQ(H.txn(1).size(), 3u) << "original reader keeps its commit";
  EXPECT_EQ(*H.txn(1).writerOf(1), TxnUid::init())
      << "original read still reads from init";
  H.checkOrderConsistent();
  Alias.checkOrderConsistent();
}

//===----------------------------------------------------------------------===//
// Cursor snapshot vs. full replay
//===----------------------------------------------------------------------===//

TEST(CowHistoryTest, IncrementalSwapReplayMatchesFullReplay) {
  Program P = makeReadWriteProgram();
  History H = makeReadWriteHistory();
  CursorMap Snapshot = replayAllCursors(P, H);

  unsigned FirstChanged = 0;
  History Swapped = applySwap(H, {1, 1}, &FirstChanged);
  CursorMap Incremental = replayCursorsFrom(P, Swapped, Snapshot, FirstChanged);
  CursorMap Full = replayAllCursors(P, Swapped);

  ASSERT_EQ(Incremental.size(), Full.size());
  for (const auto &[Key, Cur] : Full) {
    auto It = Incremental.find(Key);
    ASSERT_NE(It, Incremental.end());
    EXPECT_TRUE(It->second == Cur)
        << "incremental cursor diverges from full replay";
  }
  // The swapped reader really re-executed: it now reads 7 and is pending.
  unsigned Reader = Swapped.numTxns() - 1;
  EXPECT_EQ(Swapped.readValue(Reader, 1), 7);
  EXPECT_FALSE(Incremental.at(uid(0, 0).packed()).Finished);
}

TEST(CowHistoryTest, ZeroDirtyIndexDegeneratesToFullReplay) {
  Program P = makeReadWriteProgram();
  History H = makeReadWriteHistory();
  CursorMap Fresh = replayCursorsFrom(P, H, CursorMap(), 0);
  CursorMap Full = replayAllCursors(P, H);
  ASSERT_EQ(Fresh.size(), Full.size());
  for (const auto &[Key, Cur] : Full)
    EXPECT_TRUE(Fresh.at(Key) == Cur);
}
