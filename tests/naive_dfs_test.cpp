//===- tests/naive_dfs_test.cpp - Baseline DFS tests ----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/NaiveDfs.h"

#include "consistency/ConsistencyChecker.h"
#include "core/Enumerate.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;
using namespace txdpor::test;

namespace {

Program makeFig10() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.read("b", Y);
  auto T1 = B.beginTxn(1);
  T1.write(X, 2);
  T1.write(Y, 2);
  return B.build();
}

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

TEST(NaiveDfsTest, ExploresDuplicates) {
  Program P = makeFig10();
  NaiveDfsConfig C;
  C.Level = IsolationLevel::CausalConsistency;
  ExplorerStats Stats = naiveDfsProgram(P, C);
  // Two transaction orders × read choices; CC admits 2 distinct histories
  // but the DFS revisits them across interleavings.
  EXPECT_GT(Stats.EndStates, 2u) << "no POR: duplicates expected";
}

TEST(NaiveDfsTest, DeduplicationMatchesExplorer) {
  Program P = makeFig10();
  auto Reference = enumerateReference(P, IsolationLevel::CausalConsistency);
  EXPECT_EQ(Reference.Histories.size(), 2u);
  EXPECT_EQ(Reference.Stats.Outputs, 2u);
  EXPECT_GE(Reference.Stats.EndStates, Reference.Stats.Outputs);
}

TEST(NaiveDfsTest, SoundnessOfOutputs) {
  Program P = makeFig10();
  NaiveDfsConfig C;
  C.Level = IsolationLevel::ReadCommitted;
  NaiveDfs Dfs(P, C);
  Dfs.run([&](const History &H) {
    EXPECT_TRUE(isConsistent(H, IsolationLevel::ReadCommitted)) << H.str();
    EXPECT_FALSE(H.pendingTxn().has_value());
  });
}

TEST(NaiveDfsTest, UnrestrictedMatchesRestrictedHistorySet) {
  // The one-pending restriction does not lose histories (prefix-closed
  // levels): the deduplicated sets agree, while the unrestricted mode
  // visits at least as many executions.
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 1;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Rng R(31337);
  for (unsigned Iter = 0; Iter != 5; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    for (IsolationLevel Level :
         {IsolationLevel::ReadCommitted, IsolationLevel::CausalConsistency,
          IsolationLevel::Serializability}) {
      auto Restricted = enumerateReference(P, Level, /*Unrestricted=*/false);
      auto Unrestricted = enumerateReference(P, Level, /*Unrestricted=*/true);
      EXPECT_EQ(keySet(Restricted.Histories), keySet(Unrestricted.Histories))
          << isolationLevelName(Level) << "\n"
          << P.str();
      EXPECT_GE(Unrestricted.Stats.EndStates, Restricted.Stats.EndStates);
    }
  }
}

TEST(NaiveDfsTest, EndStateCapAndDeadline) {
  Program P = makeFig10();
  NaiveDfsConfig C;
  C.Level = IsolationLevel::CausalConsistency;
  C.MaxEndStates = 1;
  ExplorerStats Stats = naiveDfsProgram(P, C);
  EXPECT_EQ(Stats.EndStates, 1u);
  EXPECT_TRUE(Stats.HitEndStateCap);

  NaiveDfsConfig C2;
  C2.Level = IsolationLevel::CausalConsistency;
  C2.TimeBudget = Deadline::afterMillis(0);
  ExplorerStats Stats2 = naiveDfsProgram(P, C2);
  EXPECT_TRUE(Stats2.TimedOut || Stats2.EndStates > 0);
}

TEST(NaiveDfsTest, SingleSessionHasOneExecution) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  auto T = B.beginTxn(0);
  T.read("a", X);
  Program P = B.build();
  NaiveDfsConfig C;
  C.Level = IsolationLevel::CausalConsistency;
  ExplorerStats Stats = naiveDfsProgram(P, C);
  EXPECT_EQ(Stats.EndStates, 1u) << "no interleaving freedom";
}
