//===- tests/fuzz_test.cpp - The differential fuzzing subsystem -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for src/fuzz/: generator determinism and wrapper equivalence,
/// litmus program/repro round-tripping, the delta-debugging minimizer,
/// oracle cleanliness on the unmodified checkers, and the mutation-smoke
/// property — with a deliberately weakened saturation axiom the fuzzer
/// must find a disagreement and shrink it to a tiny repro within a
/// bounded seed budget.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "consistency/ConsistencyChecker.h"
#include "core/Enumerate.h"
#include "fuzz/Minimizer.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;
using namespace txdpor::fuzz;

namespace {

/// Reads and writes across all transactions (the "operations" of a
/// repro-size bound; begin/commit/abort markers do not count).
unsigned countOps(const History &H) {
  unsigned Ops = 0;
  for (unsigned I = 1; I != H.numTxns(); ++I) {
    const TransactionLog &Log = H.txn(I);
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P)
      if (Log.event(P).isRead() || Log.event(P).isWrite())
        ++Ops;
  }
  return Ops;
}

unsigned countSessions(const History &H) {
  std::set<uint32_t> Sessions;
  for (unsigned I = 1; I != H.numTxns(); ++I)
    Sessions.insert(H.txn(I).uid().Session);
  return static_cast<unsigned>(Sessions.size());
}

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGeneratorTest, DeterministicAcrossRuns) {
  ProgramShape Shape;
  Rng A(99), B(99);
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_EQ(generateProgram(A, Shape).str(),
              generateProgram(B, Shape).str());
}

TEST(FuzzGeneratorTest, LegacyWrappersAreDrawCompatible) {
  // tests/TestUtil.h forwards to the fuzz generator; a seed must produce
  // the identical program/history through either entry point, so seeded
  // tests written against the old test-local generators keep their
  // shapes.
  test::RandomProgramSpec Spec;
  ProgramShape Shape; // Field-for-field the same defaults.
  Rng A(7), B(7);
  for (unsigned I = 0; I != 8; ++I)
    EXPECT_EQ(test::makeRandomProgram(A, Spec).str(),
              generateProgram(B, Shape).str());

  test::RandomHistorySpec HSpec;
  HistoryShape HShape;
  Rng C(7), D(7);
  for (unsigned I = 0; I != 8; ++I)
    EXPECT_EQ(test::makeRandomHistory(C, HSpec).canonicalKey(),
              generateHistory(D, HShape).canonicalKey());
}

TEST(FuzzGeneratorTest, DisabledKnobsDrawNoRandomness) {
  // The new shape knobs must consume randomness only when enabled, or
  // every pre-existing seed expectation silently changes.
  ProgramShape Plain;
  ProgramShape WithDisabledKnobs;
  WithDisabledKnobs.SqlTxnPercent = 0;
  WithDisabledKnobs.LevelMixPercent = 0;
  Rng A(31), B(31);
  for (unsigned I = 0; I != 8; ++I) {
    EXPECT_EQ(generateProgram(A, Plain).str(),
              generateCase(B, WithDisabledKnobs).Prog.str());
  }
  // And the streams are still aligned afterwards.
  EXPECT_EQ(A.next(), B.next());
}

TEST(FuzzGeneratorTest, SqlShapeEmitsTableAccesses) {
  std::optional<ProgramShape> Shape = programShapeByName("sql");
  ASSERT_TRUE(Shape.has_value());
  Rng R(5);
  Program P = generateProgram(R, *Shape);
  // The table declares its presence-set variable up front...
  ASSERT_TRUE(P.findVar("t.set").has_value());
  // ...and some generated transaction must actually access it.
  bool SawAccess = false;
  for (unsigned I = 0; I != 10 && !SawAccess; ++I) {
    Program Q = generateProgram(R, *Shape);
    for (unsigned S = 0; S != Q.numSessions() && !SawAccess; ++S)
      for (unsigned T = 0; T != Q.numTxns(S) && !SawAccess; ++T)
        for (const Instr &In : Q.txn({S, T}).body())
          if ((In.Kind == InstrKind::Read || In.Kind == InstrKind::Write) &&
              In.Var == *Q.findVar("t.set")) {
            SawAccess = true;
            break;
          }
  }
  EXPECT_TRUE(SawAccess) << "sql shape never touched the table";
}

TEST(FuzzGeneratorTest, MixedShapeSamplesSessionLevels) {
  std::optional<ProgramShape> Shape = programShapeByName("mixed");
  ASSERT_TRUE(Shape.has_value());
  Rng R(5);
  GeneratedCase Case = generateCase(R, *Shape);
  EXPECT_EQ(Case.SessionLevels.size(), Shape->NumSessions);
}

TEST(FuzzGeneratorTest, AllShapePresetsResolve) {
  for (const std::string &Name : programShapeNames())
    EXPECT_TRUE(programShapeByName(Name).has_value()) << Name;
  EXPECT_FALSE(programShapeByName("no-such-shape").has_value());
}

//===----------------------------------------------------------------------===//
// Litmus program / repro round trips
//===----------------------------------------------------------------------===//

TEST(FuzzReproTest, ProgramTextRoundTripsSemantically) {
  // write → parse → write must reach a fixpoint, and the parsed program
  // must have the same exploration behaviour (canonical CC output set).
  for (const char *ShapeName : {"default", "deep", "sql"}) {
    std::optional<ProgramShape> Shape = programShapeByName(ShapeName);
    ASSERT_TRUE(Shape.has_value());
    Rng R(11);
    for (unsigned I = 0; I != 5; ++I) {
      Program P = generateProgram(R, *Shape);
      std::string Text = writeProgramText(P);
      std::string Error;
      std::optional<Program> Parsed = parseProgramText(Text, &Error);
      ASSERT_TRUE(Parsed.has_value()) << Error << '\n' << Text;
      EXPECT_EQ(writeProgramText(*Parsed), Text);

      auto Cfg =
          ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
      EXPECT_EQ(keySet(enumerateHistories(P, Cfg).Histories),
                keySet(enumerateHistories(*Parsed, Cfg).Histories))
          << "parsed program explores differently\n" << Text;
    }
  }
}

TEST(FuzzReproTest, ParseRejectsMalformedPrograms) {
  std::string Error;
  EXPECT_FALSE(parseProgramText("txn\n  read a x0\n", &Error));
  EXPECT_FALSE(parseProgramText("vars x0\nsession 0\n  read a x0\n"));
  EXPECT_FALSE(
      parseProgramText("vars x0\nsession 0\ntxn\n  read a nosuch\n"));
  EXPECT_FALSE(parseProgramText(
      "vars x0\nsession 0\ntxn\n  write x0 (bogus 1)\n"));
  // Malformed numbers must produce a diagnostic, not an exception
  // (repros are hand-edited in bug reports).
  EXPECT_FALSE(parseProgramText(
      "vars x0\nsession 0\ntxn\n  write x0 (const abc)\n", &Error));
  EXPECT_NE(Error.find("const"), std::string::npos);
  EXPECT_FALSE(parseProgramText("vars x0\nsession x\ntxn\n"));
  EXPECT_FALSE(parseRepro("kind duplicate-output\nseed zzz\n"));
  EXPECT_FALSE(
      parseRepro("kind duplicate-output\nseed 99999999999999999999999\n"));
}

TEST(FuzzReproTest, ReproRoundTrips) {
  Rng R(3);
  GeneratedCase Case = generateCase(R, ProgramShape());
  HistoryShape HShape;
  History H = generateHistory(R, HShape);

  Repro Out;
  Out.Seed = 77;
  Out.CaseIndex = 12;
  Out.Kind = Disagreement::Kind::CheckerVerdictMismatch;
  Out.Level = IsolationLevel::SnapshotIsolation;
  Out.ProductionVerdict = true;
  Out.ReferenceVerdict = false;
  Out.Detail = "production says consistent, reference says inconsistent";
  Out.SessionLevels = {IsolationLevel::CausalConsistency,
                       IsolationLevel::Serializability};
  Out.Prog = Case.Prog;
  Out.Hist = H;

  std::string Text = writeRepro(Out);
  std::string Error;
  std::optional<Repro> In = parseRepro(Text, &Error);
  ASSERT_TRUE(In.has_value()) << Error << '\n' << Text;
  EXPECT_EQ(In->Seed, Out.Seed);
  EXPECT_EQ(In->CaseIndex, Out.CaseIndex);
  EXPECT_EQ(In->Kind, Out.Kind);
  EXPECT_EQ(In->Level, Out.Level);
  EXPECT_EQ(In->ProductionVerdict, Out.ProductionVerdict);
  EXPECT_EQ(In->ReferenceVerdict, Out.ReferenceVerdict);
  EXPECT_EQ(In->Detail, Out.Detail);
  EXPECT_EQ(In->SessionLevels, Out.SessionLevels);
  ASSERT_TRUE(In->Prog.has_value());
  EXPECT_EQ(writeProgramText(*In->Prog), writeProgramText(*Out.Prog));
  ASSERT_TRUE(In->Hist.has_value());
  EXPECT_TRUE(In->Hist->sameHistory(H));
  // Full-file fixpoint.
  EXPECT_EQ(writeRepro(*In), Text);
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(FuzzMinimizerTest, ProgramShrinksToPredicateCore) {
  // Three sessions; the predicate only needs one write to x1. The
  // minimizer must drop the other sessions, the irrelevant instructions
  // and the guard, and collapse the value expression.
  ProgramBuilder B;
  VarId X0 = B.var("x0");
  VarId X1 = B.var("x1");
  auto T0 = B.beginTxn(0);
  T0.read("a", X0);
  T0.write(X1, T0.local("a") + 3, eq(T0.local("a"), 0));
  T0.write(X0, 7);
  auto T1 = B.beginTxn(1);
  T1.write(X0, 1);
  auto T2 = B.beginTxn(2);
  T2.read("b", X1);
  Program P = B.build();

  auto WritesX1 = [X1](const Program &C) {
    for (unsigned S = 0; S != C.numSessions(); ++S)
      for (unsigned T = 0; T != C.numTxns(S); ++T)
        for (const Instr &I : C.txn({S, T}).body())
          if (I.Kind == InstrKind::Write && I.Var == X1)
            return true;
    return false;
  };
  ASSERT_TRUE(WritesX1(P));
  Program Core = minimizeProgram(P, WritesX1);
  EXPECT_EQ(Core.numSessions(), 1u);
  EXPECT_EQ(Core.numTxns(0), 1u);
  const Transaction &Txn = Core.txn({0, 0});
  ASSERT_EQ(Txn.body().size(), 1u);
  const Instr &I = Txn.body().front();
  EXPECT_EQ(I.Kind, InstrKind::Write);
  EXPECT_EQ(I.Var, X1);
  EXPECT_FALSE(I.Guard.valid()) << "guard should have been stripped";
  EXPECT_EQ(I.Rhs.Node->kind(), ExprKind::Const)
      << "read-dependent value should have collapsed to a constant";
}

TEST(FuzzMinimizerTest, HistoryShrinkDropsBystanders) {
  HistoryShape Shape;
  Shape.NumSessions = 3;
  Shape.TxnsPerSession = 2;
  Rng R(17);
  History H = generateHistory(R, Shape);
  unsigned Target = H.numTxns() > 2 ? 2u : 1u;
  TxnUid Keep = H.txn(Target).uid();
  History Core = minimizeHistory(
      H, [&](const History &C) { return C.contains(Keep); });
  EXPECT_TRUE(Core.contains(Keep));
  EXPECT_LT(Core.numTxns(), H.numTxns());
  Core.checkWellFormed();
}

//===----------------------------------------------------------------------===//
// Oracle + fuzz loop
//===----------------------------------------------------------------------===//

TEST(FuzzOracleTest, CleanOnUnmodifiedCheckers) {
  // A quick in-suite slice of the 100k clean run the CI nightly repeats
  // at scale: no disagreement between any explorer pair or checker pair.
  FuzzOptions Options;
  Options.Seed = 20260726;
  Options.Iterations = 120;
  FuzzReport Report = runFuzz(Options);
  EXPECT_EQ(Report.Cases, 120u);
  EXPECT_EQ(Report.DisagreeingCases, 0u);
  EXPECT_TRUE(Report.Repros.empty());
}

TEST(FuzzOracleTest, SqlAndMixedShapesStayClean) {
  for (const char *Shape : {"sql", "mixed"}) {
    FuzzOptions Options;
    Options.Seed = 4;
    Options.Iterations = 40;
    Options.ShapeName = Shape;
    Options.HistoryCasePercent = 25;
    FuzzReport Report = runFuzz(Options);
    EXPECT_EQ(Report.DisagreeingCases, 0u) << Shape;
  }
}

TEST(FuzzOracleTest, DeterministicReports) {
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Iterations = 300;
  Options.Mutation = CheckerMutation::WeakCausalPremise;
  FuzzReport A = runFuzz(Options);
  FuzzReport B = runFuzz(Options);
  EXPECT_GT(A.DisagreeingCases, 0u);
  EXPECT_EQ(A.DisagreeingCases, B.DisagreeingCases);
  ASSERT_EQ(A.Repros.size(), B.Repros.size());
  for (size_t I = 0; I != A.Repros.size(); ++I)
    EXPECT_EQ(writeRepro(A.Repros[I]), writeRepro(B.Repros[I]));
}

TEST(FuzzMutationSmokeTest, WeakenedCausalAxiomIsCaughtAndShrunk) {
  // The acceptance property: with the CC saturation axiom weakened to
  // RA's premise, a fixed-seed run finds the injected bug and emits a
  // minimized repro of at most 3 sessions / 6 operations — well inside
  // the 10k-iteration budget.
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Iterations = 10000;
  Options.MaxDisagreements = 12;
  Options.Mutation = CheckerMutation::WeakCausalPremise;
  FuzzReport Report = runFuzz(Options);
  ASSERT_GT(Report.DisagreeingCases, 0u)
      << "the fuzzer missed the injected CC weakening";

  bool SawTinyRepro = false;
  for (const Repro &R : Report.Repros) {
    ASSERT_TRUE(R.Hist.has_value());
    EXPECT_EQ(R.Kind, Disagreement::Kind::CheckerVerdictMismatch);
    EXPECT_EQ(R.Level, IsolationLevel::CausalConsistency);
    // Every reported disagreement must be real: the mutated side accepts
    // the history, the reference rejects it.
    EXPECT_TRUE(mutatedIsConsistent(*R.Hist, R.Level,
                                    CheckerMutation::WeakCausalPremise));
    EXPECT_FALSE(isConsistent(*R.Hist, R.Level));
    if (countSessions(*R.Hist) <= 3 && countOps(*R.Hist) <= 6)
      SawTinyRepro = true;
  }
  EXPECT_TRUE(SawTinyRepro)
      << "no repro shrank to <= 3 sessions / <= 6 operations";
}

TEST(FuzzStreamingSmokeTest, WeakenedCausalAxiomIsCaughtThroughStreamingLeg) {
  // The streaming leg alone must have teeth: with every other
  // mutation-sensitive (and expensive) oracle leg switched off, the
  // windowed StreamingChecker — fed each history serialized to a trace
  // and re-parsed — is the only implementation left that can notice the
  // weakened CC axiom, and the finding must still shrink to a litmus
  // repro through the streaming-only predicate.
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Iterations = 10000;
  Options.MaxDisagreements = 4;
  Options.Mutation = CheckerMutation::WeakCausalPremise;
  Options.Oracle.CrossCheckVerdicts = false;
  Options.Oracle.ValidateWitnesses = false;
  Options.Oracle.DiffStarFilters = false;
  Options.Oracle.DiffExplorers = false;
  Options.Oracle.DiffMixedSemantics = false;
  Options.Oracle.CrossCheckIncremental = false;
  FuzzReport Report = runFuzz(Options);
  ASSERT_GT(Report.DisagreeingCases, 0u)
      << "the streaming leg missed the injected CC weakening";

  bool SawTinyRepro = false;
  for (const Repro &R : Report.Repros) {
    EXPECT_EQ(R.Kind, Disagreement::Kind::StreamingVerdictMismatch);
    EXPECT_EQ(R.Level, IsolationLevel::CausalConsistency);
    ASSERT_TRUE(R.Hist.has_value());
    // Real disagreement: the mutated full-history side accepts, the
    // exact streaming side (= the true verdict) rejects.
    EXPECT_TRUE(mutatedIsConsistent(*R.Hist, R.Level,
                                    CheckerMutation::WeakCausalPremise));
    EXPECT_FALSE(isConsistent(*R.Hist, R.Level));
    if (countSessions(*R.Hist) <= 3 && countOps(*R.Hist) <= 8)
      SawTinyRepro = true;
  }
  EXPECT_TRUE(SawTinyRepro)
      << "no streaming repro shrank to <= 3 sessions / <= 8 operations";
}

TEST(FuzzMutationSmokeTest, WeakenedAtomicVisibilityIsCaught) {
  FuzzOptions Options;
  Options.Seed = 2;
  Options.Iterations = 10000;
  Options.MaxDisagreements = 3;
  Options.Mutation = CheckerMutation::WeakAtomicVisibility;
  FuzzReport Report = runFuzz(Options);
  ASSERT_GT(Report.DisagreeingCases, 0u)
      << "the fuzzer missed the injected RA weakening";
  for (const Repro &R : Report.Repros) {
    ASSERT_TRUE(R.Hist.has_value());
    EXPECT_EQ(R.Level, IsolationLevel::ReadAtomic);
    EXPECT_FALSE(isConsistent(*R.Hist, R.Level));
  }
}
