//===- tests/serialize_test.cpp - History round-trip tests ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Serialize.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;
} // namespace

TEST(SerializeTest, WriteShape) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(Y, -3).abort()
                  .build();
  std::string Text = writeHistory(H);
  EXPECT_NE(Text.find("txn init begin write x0 = 0 write x1 = 0 commit"),
            std::string::npos);
  EXPECT_NE(Text.find("txn t0.0 begin write x0 = 1 commit"),
            std::string::npos);
  EXPECT_NE(Text.find("txn t1.0 begin read x0 <- t0.0 write x1 = -3 abort"),
            std::string::npos);
}

TEST(SerializeTest, RoundTripLitmus) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).w(Y, 2).commit()
                  .txn(1, 0).r(X, uid(0, 0)).rPlain(Y).commit()
                  .txn(0, 1).r(Y, TxnUid::init()).abort()
                  .build();
  std::optional<History> Parsed = parseHistory(writeHistory(H));
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_TRUE(Parsed->sameHistory(H));
  // Block order preserved too.
  for (unsigned I = 0; I != H.numTxns(); ++I)
    EXPECT_EQ(Parsed->txn(I).uid(), H.txn(I).uid());
}

TEST(SerializeTest, RoundTripRandomHistories) {
  Rng R(808);
  RandomHistorySpec Spec;
  Spec.NumSessions = 3;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 3;
  for (unsigned Iter = 0; Iter != 30; ++Iter) {
    History H = makeRandomHistory(R, Spec);
    std::string Text = writeHistory(H);
    std::optional<History> Parsed = parseHistory(Text);
    ASSERT_TRUE(Parsed.has_value()) << Text;
    EXPECT_TRUE(Parsed->sameHistory(H)) << Text;
    EXPECT_EQ(writeHistory(*Parsed), Text) << "serialization not canonical";
  }
}

TEST(SerializeTest, ParseDiagnostics) {
  std::string Error;
  EXPECT_FALSE(parseHistory("nonsense", &Error).has_value());
  EXPECT_NE(Error.find("expected 'txn'"), std::string::npos);

  EXPECT_FALSE(parseHistory("txn init begin commit\ntxn 0.0 frobnicate",
                            &Error)
                   .has_value());
  EXPECT_NE(Error.find("unknown event"), std::string::npos);

  EXPECT_FALSE(
      parseHistory("txn 0.0 begin commit", &Error).has_value())
      << "missing init transaction";
  EXPECT_NE(Error.find("init"), std::string::npos);

  EXPECT_FALSE(parseHistory("txn init begin write x0 = 0 commit\n"
                            "txn 0.0 begin read x0 <- 9.9 commit",
                            &Error)
                   .has_value());
  EXPECT_NE(Error.find("unknown transaction"), std::string::npos);

  EXPECT_FALSE(parseHistory("txn init begin write x0 = 0 commit\n"
                            "txn 0.0 begin write x1 = 1 commit\n"
                            "txn 1.0 begin read x0 <- 0.0 commit",
                            &Error)
                   .has_value())
      << "writer does not write the variable";
  EXPECT_NE(Error.find("invalid wr dependency"), std::string::npos);
}

TEST(SerializeTest, ForwardWrReferencesAllowed) {
  // The format permits readers serialized before their writers (not a
  // block order the explorer would produce, but legal for archives of
  // arbitrary histories).
  std::optional<History> Parsed =
      parseHistory("txn init begin write x0 = 0 commit\n"
                   "txn 0.0 begin read x0 <- 1.0 commit\n"
                   "txn 1.0 begin write x0 = 5 commit");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->readValue(*Parsed->indexOf({0, 0}), 1), 5);
}

TEST(SerializeTest, BlankLinesIgnored) {
  std::optional<History> Parsed =
      parseHistory("\ntxn init begin write x0 = 0 commit\n\n");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->numTxns(), 1u);
}
