#!/usr/bin/env bash
#===- tests/dedup_smoke.sh - Subtree-dedup acceptance smoke --------------===#
#
# Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
# Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
#
# The acceptance gate of the session-symmetry reduction (core/Dedup.h):
# on the identical-sessions workload --dedup=symmetry must explore
# strictly fewer histories than --dedup=off while agreeing on the
# violation verdict, and on a structurally asymmetric workload it must
# change nothing at all. Registered with ctest as dedup_smoke; run
# manually as: tests/dedup_smoke.sh path/to/txdpor-cli
#
#===----------------------------------------------------------------------===#

set -u

CLI="${1:?usage: dedup_smoke.sh path/to/txdpor-cli}"
failures=0

# run <args...> — runs the CLI, captures stdout into $out and the exit
# code into $rc; any non-zero exit is itself a failure.
run() {
  out="$("$CLI" "$@" 2>&1)"
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAIL: '$CLI $*' exited $rc: $out" >&2
    failures=$((failures + 1))
  fi
}

# histories <output> — the explored-history count of the summary line
# ("CC: 91 histories, ...").
histories() {
  printf '%s\n' "$1" | sed -n 's/^.*: \([0-9][0-9]*\) histories,.*$/\1/p' |
    head -n 1
}

# violations <output> — the violation count of the classification line
# ("classification against SER: 48 of 91 histories violate it").
violations() {
  printf '%s\n' "$1" |
    sed -n 's/^classification against .*: \([0-9][0-9]*\) of .*$/\1/p' |
    head -n 1
}

workload=(--app identical --sessions 3 --txns 2 --seed 1 --classify SER)

run "${workload[@]}"
off_out="$out"
off_hist="$(histories "$off_out")"
off_viol="$(violations "$off_out")"

run "${workload[@]}" --dedup=symmetry
sym_out="$out"
sym_hist="$(histories "$sym_out")"
sym_viol="$(violations "$sym_out")"

if [ -z "$off_hist" ] || [ -z "$sym_hist" ]; then
  echo "FAIL: could not parse history counts (off='$off_hist'," \
    "symmetry='$sym_hist')" >&2
  failures=$((failures + 1))
else
  # The reduction must bite: strictly fewer explored histories.
  if [ "$sym_hist" -ge "$off_hist" ]; then
    echo "FAIL: symmetry explored $sym_hist histories, expected strictly" \
      "fewer than the $off_hist of dedup=off" >&2
    failures=$((failures + 1))
  fi
  # ... and stay sound: identical violation verdict (both runs find a
  # violation, or neither does).
  off_has=$([ "${off_viol:-0}" -gt 0 ] && echo yes || echo no)
  sym_has=$([ "${sym_viol:-0}" -gt 0 ] && echo yes || echo no)
  if [ "$off_has" != "$sym_has" ]; then
    echo "FAIL: verdicts diverge: dedup=off violation=$off_has" \
      "($off_viol), symmetry violation=$sym_has ($sym_viol)" >&2
    failures=$((failures + 1))
  fi
  if ! printf '%s' "$sym_out" | grep -q "dedup (symmetry):"; then
    echo "FAIL: symmetry run did not report its dedup statistics" >&2
    failures=$((failures + 1))
  fi
fi

# Exact mode must reproduce the dedup=off exploration verbatim — the
# strongly-optimal explorer never revisits an item, so exact has nothing
# to skip and the counts must match exactly.
run "${workload[@]}" --dedup=exact
exact_hist="$(histories "$out")"
exact_viol="$(violations "$out")"
if [ "$exact_hist" != "$off_hist" ] || [ "$exact_viol" != "$off_viol" ]; then
  echo "FAIL: dedup=exact ($exact_hist histories, $exact_viol violations)" \
    "differs from dedup=off ($off_hist, $off_viol)" >&2
  failures=$((failures + 1))
fi

# On a structurally asymmetric workload (every tpcc session draws its
# own transaction mix) each session is its own symmetry class, so
# symmetry must be a no-op.
asym=(--app tpcc --sessions 3 --txns 2 --seed 1 --classify SER)
run "${asym[@]}"
asym_off_hist="$(histories "$out")"
asym_off_viol="$(violations "$out")"
run "${asym[@]}" --dedup=symmetry
asym_sym_hist="$(histories "$out")"
asym_sym_viol="$(violations "$out")"
if [ "$asym_sym_hist" != "$asym_off_hist" ] ||
  [ "$asym_sym_viol" != "$asym_off_viol" ]; then
  echo "FAIL: symmetry perturbed the asymmetric workload:" \
    "off=($asym_off_hist, $asym_off_viol)" \
    "symmetry=($asym_sym_hist, $asym_sym_viol)" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "dedup_smoke: $failures assertion(s) failed" >&2
  exit 1
fi
echo "dedup_smoke: all assertions passed (identical: $off_hist -> $sym_hist)"
