//===- tests/random_walk_test.cpp - Randomized baseline tests -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/RandomWalk.h"

#include "consistency/ConsistencyChecker.h"
#include "core/Enumerate.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;
using namespace txdpor::test;

namespace {

Program makeFig10() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.read("b", Y);
  auto T1 = B.beginTxn(1);
  T1.write(X, 2);
  T1.write(Y, 2);
  return B.build();
}

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

TEST(RandomWalkTest, OutputsAreSoundAndComplete) {
  Program P = makeFig10();
  std::vector<History> Sampled;
  RandomWalkConfig Config;
  Config.Level = IsolationLevel::CausalConsistency;
  Config.NumWalks = 200;
  Config.Seed = 5;
  RandomWalkStats Stats = randomWalkProgram(P, Config, [&](const History &H) {
    EXPECT_TRUE(isConsistent(H, IsolationLevel::CausalConsistency))
        << H.str();
    Sampled.push_back(H);
  });
  EXPECT_EQ(Stats.Walks, 200u);
  EXPECT_EQ(Stats.DistinctHistories, Sampled.size());

  // Every sampled history is a real history of the program; with 200
  // walks this tiny program is covered completely.
  auto Reference = enumerateReference(P, IsolationLevel::CausalConsistency);
  std::set<std::string> RefKeys = keySet(Reference.Histories);
  for (const History &H : Sampled)
    EXPECT_TRUE(RefKeys.count(H.canonicalKey())) << H.str();
  EXPECT_EQ(keySet(Sampled), RefKeys) << "200 walks should cover 2 classes";
}

TEST(RandomWalkTest, Deterministic) {
  Program P = makeFig10();
  RandomWalkConfig Config;
  Config.NumWalks = 50;
  Config.Seed = 77;
  std::vector<std::string> First, Second;
  randomWalkProgram(P, Config, [&](const History &H) {
    First.push_back(H.canonicalKey());
  });
  randomWalkProgram(P, Config, [&](const History &H) {
    Second.push_back(H.canonicalKey());
  });
  EXPECT_EQ(First, Second);
}

TEST(RandomWalkTest, CoverageGrowsWithWalks) {
  // A program with more behaviors: coverage at 4 walks is at most the
  // coverage at 64 walks.
  RandomProgramSpec Spec;
  Spec.NumSessions = 3;
  Spec.TxnsPerSession = 1;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Rng R(99);
  Program P = makeRandomProgram(R, Spec);

  auto DistinctAfter = [&](uint64_t Walks) {
    RandomWalkConfig Config;
    Config.NumWalks = Walks;
    Config.Seed = 3;
    return randomWalkProgram(P, Config).DistinctHistories;
  };
  uint64_t AtFew = DistinctAfter(4);
  uint64_t AtMany = DistinctAfter(64);
  EXPECT_LE(AtFew, AtMany);

  auto Exhaustive = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_LE(AtMany, Exhaustive.Histories.size())
      << "sampling can never exceed the exhaustive count";
}

TEST(RandomWalkTest, RespectsDeadline) {
  Program P = makeFig10();
  RandomWalkConfig Config;
  Config.NumWalks = 1000000;
  Config.TimeBudget = Deadline::afterMillis(5);
  RandomWalkStats Stats = randomWalkProgram(P, Config);
  EXPECT_TRUE(Stats.TimedOut);
  EXPECT_LT(Stats.Walks, 1000000u);
}

TEST(RandomWalkTest, HandlesAbortsAndGuards) {
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.WithGuards = true;
  Spec.WithAborts = true;
  Rng R(4321);
  for (unsigned Iter = 0; Iter != 3; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    RandomWalkConfig Config;
    Config.NumWalks = 30;
    Config.Seed = Iter;
    RandomWalkStats Stats =
        randomWalkProgram(P, Config, [&](const History &H) {
          H.checkWellFormed();
          EXPECT_FALSE(H.pendingTxn().has_value());
        });
    EXPECT_EQ(Stats.Walks, 30u);
  }
}
