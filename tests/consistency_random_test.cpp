//===- tests/consistency_random_test.cpp - Checker cross-validation -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over random histories:
///  * every production checker agrees with the brute-force Def. 2.2
///    oracle (axioms evaluated over enumerated commit orders);
///  * consistency is monotone along the level chain;
///  * all five levels are prefix-closed (Theorem 3.2) — every downward
///    closed cut of a consistent history stays consistent;
///  * RC / RA / CC are causally extensible (Theorem 3.4) on histories
///    with one pending (so ∪ wr)+-maximal transaction.
///
//===----------------------------------------------------------------------===//

#include "consistency/BruteForceChecker.h"
#include "consistency/ConsistencyChecker.h"
#include "history/Prefix.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

struct SweepParams {
  unsigned Sessions;
  unsigned TxnsPerSession;
  unsigned Vars;
  friend std::ostream &operator<<(std::ostream &OS, const SweepParams &P) {
    return OS << P.Sessions << "s" << P.TxnsPerSession << "t" << P.Vars
              << "v";
  }
};

class RandomHistoryTest : public ::testing::TestWithParam<SweepParams> {
protected:
  RandomHistorySpec spec() const {
    RandomHistorySpec S;
    S.NumSessions = GetParam().Sessions;
    S.TxnsPerSession = GetParam().TxnsPerSession;
    S.NumVars = GetParam().Vars;
    return S;
  }
};

} // namespace

TEST_P(RandomHistoryTest, ProductionMatchesBruteForce) {
  Rng R(GetParam().Sessions * 1000 + GetParam().TxnsPerSession * 10 +
        GetParam().Vars);
  RandomHistorySpec Spec = spec();
  for (unsigned Iter = 0; Iter != 60; ++Iter) {
    History H = makeRandomHistory(R, Spec);
    for (IsolationLevel Level : AllIsolationLevels) {
      BruteForceChecker Oracle(Level);
      EXPECT_EQ(isConsistent(H, Level), Oracle.isConsistent(H))
          << "level " << isolationLevelName(Level) << " on\n"
          << H.str();
    }
  }
}

TEST_P(RandomHistoryTest, ConsistencyMonotoneAlongChain) {
  Rng R(77 + GetParam().Sessions + GetParam().Vars * 13);
  RandomHistorySpec Spec = spec();
  for (unsigned Iter = 0; Iter != 80; ++Iter) {
    History H = makeRandomHistory(R, Spec);
    bool StrongerAccepted = false;
    for (auto It = AllIsolationLevels.rbegin();
         It != AllIsolationLevels.rend(); ++It) {
      bool Cur = isConsistent(H, *It);
      if (StrongerAccepted) {
        EXPECT_TRUE(Cur) << isolationLevelName(*It) << " rejected while a "
                         << "stronger level accepted:\n"
                         << H.str();
      }
      StrongerAccepted = Cur;
    }
  }
}

TEST_P(RandomHistoryTest, PrefixClosure) {
  // Theorem 3.2: all five levels are prefix-closed.
  Rng R(4242 + GetParam().TxnsPerSession);
  RandomHistorySpec Spec = spec();
  for (unsigned Iter = 0; Iter != 40; ++Iter) {
    History H = makeRandomHistory(R, Spec);
    // Random downward-closed cut.
    PrefixCut Cut;
    for (unsigned I = 0; I != H.numTxns(); ++I)
      Cut.push_back(static_cast<uint32_t>(R.nextBelow(H.txn(I).size() + 1)));
    Cut[0] = static_cast<uint32_t>(H.txn(0).size()); // Keep init whole.
    closeDownward(H, Cut);
    History P = takePrefix(H, Cut);
    P.checkWellFormed();
    for (IsolationLevel Level : AllIsolationLevels) {
      if (!isConsistent(H, Level))
        continue;
      EXPECT_TRUE(isConsistent(P, Level))
          << "prefix broke " << isolationLevelName(Level) << "\nfull:\n"
          << H.str() << "prefix:\n"
          << P.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomHistoryTest,
    ::testing::Values(SweepParams{1, 3, 2}, SweepParams{2, 2, 2},
                      SweepParams{3, 1, 2}, SweepParams{2, 2, 3},
                      SweepParams{3, 2, 2}, SweepParams{2, 3, 1},
                      SweepParams{4, 1, 2}, SweepParams{2, 4, 2}),
    [](const auto &Info) {
      return std::to_string(Info.param.Sessions) + "s" +
             std::to_string(Info.param.TxnsPerSession) + "t" +
             std::to_string(Info.param.Vars) + "v";
    });

namespace {

/// Builds a random consistent history with one pending transaction that is
/// (so ∪ wr)+-maximal, by chopping the last block of a consistent history.
std::optional<History> makeMaximalPendingHistory(Rng &R,
                                                 const RandomHistorySpec &Spec,
                                                 IsolationLevel Level) {
  for (unsigned Attempt = 0; Attempt != 50; ++Attempt) {
    History H = makeRandomHistory(R, Spec);
    if (!isConsistent(H, Level))
      continue;
    unsigned Last = H.numTxns() - 1;
    if (H.txn(Last).size() < 2)
      continue;
    // Drop the commit/abort (and possibly more) from the last block; the
    // last block is trivially (so ∪ wr)+-maximal.
    PrefixCut Cut;
    for (unsigned I = 0; I != H.numTxns(); ++I)
      Cut.push_back(static_cast<uint32_t>(H.txn(I).size()));
    Cut[Last] =
        1 + static_cast<uint32_t>(R.nextBelow(H.txn(Last).size() - 1));
    if (!isDownwardClosed(H, Cut))
      continue;
    History P = takePrefix(H, Cut);
    if (!isConsistent(P, Level)) // Prefix closure should make this rare.
      continue;
    return P;
  }
  return std::nullopt;
}

} // namespace

TEST(CausalExtensibilityTest, WeakLevelsAlwaysExtend) {
  // Theorem 3.4: for RC / RA / CC, a (so ∪ wr)+-maximal pending
  // transaction extends with *any* event while preserving consistency —
  // for reads, from some causal predecessor (init qualifies).
  const IsolationLevel Weak[] = {IsolationLevel::ReadCommitted,
                                 IsolationLevel::ReadAtomic,
                                 IsolationLevel::CausalConsistency};
  Rng R(90210);
  RandomHistorySpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  for (IsolationLevel Level : Weak) {
    unsigned Tested = 0;
    for (unsigned Iter = 0; Iter != 25; ++Iter) {
      std::optional<History> P = makeMaximalPendingHistory(R, Spec, Level);
      if (!P)
        continue;
      ++Tested;
      std::optional<unsigned> Pending = P->pendingTxn();
      ASSERT_TRUE(Pending.has_value());

      // Extension with a write is unique and must stay consistent.
      {
        History Ext = *P;
        Ext.appendEvent(*Pending, Event::makeWrite(0, 99));
        EXPECT_TRUE(isConsistent(Ext, Level))
            << "write extension broke " << isolationLevelName(Level) << "\n"
            << P->str();
      }
      // Extension with a read: some causal predecessor must work.
      {
        History Ext = *P;
        Ext.appendEvent(*Pending, Event::makeRead(0));
        uint32_t Pos = static_cast<uint32_t>(Ext.txn(*Pending).size()) - 1;
        if (Ext.txn(*Pending).isExternalRead(Pos)) {
          Relation Causal = Ext.causalRelation();
          bool AnyConsistent = false;
          for (unsigned W = 0; W != Ext.numTxns() && !AnyConsistent; ++W) {
            if (W == *Pending || !Ext.txn(W).writesVar(0))
              continue;
            if (!Causal.get(W, *Pending))
              continue;
            Ext.setWriter(*Pending, Pos, Ext.txn(W).uid());
            AnyConsistent = isConsistent(Ext, Level);
          }
          EXPECT_TRUE(AnyConsistent)
              << "no causal read extension under "
              << isolationLevelName(Level) << "\n"
              << P->str();
        }
      }
    }
    EXPECT_GT(Tested, 5u) << "generator failed to produce test cases";
  }
}

TEST(CausalExtensibilityTest, Fig6ShowsSiSerNotExtensible) {
  // The paper's Fig. 6: h (without write(x,2)) is SI- and SER-consistent,
  // but its unique causal extension with write(x,2) is not — witnessing
  // Theorem 3.4's negative half.
  constexpr VarId X = 0, Y = 1, Z = 2;
  History H = LitmusBuilder(3)
                  .txn(0, 0).w(Z, 1).r(X, TxnUid::init()).w(Y, 1).commit()
                  .txn(1, 0).w(Z, 2).r(Y, TxnUid::init()).build();
  EXPECT_TRUE(isConsistent(H, IsolationLevel::SnapshotIsolation));
  EXPECT_TRUE(isConsistent(H, IsolationLevel::Serializability));

  std::optional<unsigned> Pending = H.pendingTxn();
  ASSERT_TRUE(Pending.has_value());
  History Ext = H;
  Ext.appendEvent(*Pending, Event::makeWrite(X, 2));
  EXPECT_FALSE(isConsistent(Ext, IsolationLevel::SnapshotIsolation));
  EXPECT_FALSE(isConsistent(Ext, IsolationLevel::Serializability));
  EXPECT_TRUE(isConsistent(Ext, IsolationLevel::CausalConsistency));
}
