//===- tests/program_test.cpp - Language / AST / builder tests ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"

#include <gtest/gtest.h>

using namespace txdpor;

namespace {
std::vector<Value> locals(std::initializer_list<Value> Vs) { return Vs; }
} // namespace

TEST(ExprTest, Constants) {
  ExprRef E = 42;
  EXPECT_EQ(E.evaluate(locals({})), 42);
}

TEST(ExprTest, LocalReference) {
  ExprRef E = Expr::makeLocal(1);
  EXPECT_EQ(E.evaluate(locals({10, 20})), 20);
}

TEST(ExprTest, Arithmetic) {
  ExprRef A = Expr::makeLocal(0);
  EXPECT_EQ((A + 5).evaluate(locals({2})), 7);
  EXPECT_EQ((A - 5).evaluate(locals({2})), -3);
  EXPECT_EQ((A * 3).evaluate(locals({2})), 6);
  EXPECT_EQ((-A).evaluate(locals({2})), -2);
}

TEST(ExprTest, Comparisons) {
  ExprRef A = Expr::makeLocal(0);
  EXPECT_EQ(eq(A, 2).evaluate(locals({2})), 1);
  EXPECT_EQ(eq(A, 3).evaluate(locals({2})), 0);
  EXPECT_EQ(ne(A, 3).evaluate(locals({2})), 1);
  EXPECT_EQ(lt(A, 3).evaluate(locals({2})), 1);
  EXPECT_EQ(le(A, 2).evaluate(locals({2})), 1);
  EXPECT_EQ(gt(A, 2).evaluate(locals({2})), 0);
  EXPECT_EQ(ge(A, 2).evaluate(locals({2})), 1);
}

TEST(ExprTest, BooleanConnectives) {
  ExprRef A = Expr::makeLocal(0), B = Expr::makeLocal(1);
  EXPECT_EQ(land(A, B).evaluate(locals({1, 0})), 0);
  EXPECT_EQ(land(A, B).evaluate(locals({2, 3})), 1);
  EXPECT_EQ(lor(A, B).evaluate(locals({0, 0})), 0);
  EXPECT_EQ(lor(A, B).evaluate(locals({0, 5})), 1);
  EXPECT_EQ(lnot(A).evaluate(locals({0})), 1);
  EXPECT_EQ(lnot(A).evaluate(locals({7})), 0);
}

TEST(ExprTest, BitOps) {
  ExprRef A = Expr::makeLocal(0);
  EXPECT_EQ(bitOr(A, 0b100).evaluate(locals({0b001})), 0b101);
  EXPECT_EQ(bitAnd(A, 0b110).evaluate(locals({0b011})), 0b010);
}

TEST(ExprTest, MaxLocalAndStr) {
  ExprRef E = land(eq(Expr::makeLocal(2), 1), Expr::makeLocal(0));
  EXPECT_EQ(E.Node->maxLocal(), 2);
  EXPECT_FALSE(E.Node->str().empty());
}

TEST(ProgramBuilderTest, VarInterning) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId X2 = B.var("x");
  VarId Y = B.var("y");
  EXPECT_EQ(X, X2);
  EXPECT_NE(X, Y);
  Program P = B.build();
  EXPECT_EQ(P.numVars(), 2u);
  EXPECT_EQ(P.varName(X), "x");
  EXPECT_EQ(P.findVar("y"), std::optional<VarId>(Y));
  EXPECT_EQ(P.findVar("z"), std::nullopt);
}

TEST(ProgramBuilderTest, SessionsAndTransactions) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0, "first").write(X, 1);
  B.beginTxn(0, "second").read("a", X);
  B.beginTxn(2, "third").write(X, 2);
  Program P = B.build();
  EXPECT_EQ(P.numSessions(), 3u);
  EXPECT_EQ(P.numTxns(0), 2u);
  EXPECT_EQ(P.numTxns(1), 0u);
  EXPECT_EQ(P.numTxns(2), 1u);
  EXPECT_EQ(P.totalTxns(), 3u);
  EXPECT_EQ(P.txn({0, 0}).name(), "first");
  EXPECT_EQ(P.txn({0, 1}).name(), "second");
}

TEST(ProgramBuilderTest, LocalInterningPerTransaction) {
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T0 = B.beginTxn(0);
  T0.read("a", X).read("b", X);
  auto T1 = B.beginTxn(1);
  T1.read("a", X);
  Program P = B.build();
  EXPECT_EQ(P.txn({0, 0}).numLocals(), 2u);
  EXPECT_EQ(P.txn({1, 0}).numLocals(), 1u);
  EXPECT_EQ(P.txn({0, 0}).findLocal("a"), std::optional<LocalId>(0));
  EXPECT_EQ(P.txn({0, 0}).findLocal("b"), std::optional<LocalId>(1));
  EXPECT_EQ(P.txn({1, 0}).findLocal("b"), std::nullopt);
}

TEST(ProgramBuilderTest, HandlesStayValidAcrossGrowth) {
  // TxnHandle must survive later beginTxn calls on the same session.
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T0 = B.beginTxn(0);
  auto T1 = B.beginTxn(0);
  T0.write(X, 1); // Touch the earlier handle after the vector grew.
  T1.write(X, 2);
  Program P = B.build();
  EXPECT_EQ(P.txn({0, 0}).body().size(), 1u);
  EXPECT_EQ(P.txn({0, 1}).body().size(), 1u);
}

TEST(ProgramBuilderTest, GuardedInstructions) {
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T = B.beginTxn(0);
  T.read("a", X);
  T.write(X, 1, eq(T.local("a"), 0));
  T.abort(ne(T.local("a"), 0));
  Program P = B.build();
  const std::vector<Instr> &Body = P.txn({0, 0}).body();
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_FALSE(Body[0].Guard.valid());
  EXPECT_TRUE(Body[1].Guard.valid());
  EXPECT_EQ(Body[2].Kind, InstrKind::Abort);
}

TEST(ProgramTest, OracleOrder) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).write(X, 3);
  Program P = B.build();
  std::vector<TxnUid> Order = P.oracleOrder();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], (TxnUid{0, 0}));
  EXPECT_EQ(Order[1], (TxnUid{0, 1}));
  EXPECT_EQ(Order[2], (TxnUid{1, 0}));
}

TEST(ProgramTest, StrRendersSourceLike) {
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T = B.beginTxn(0, "demo");
  T.read("a", X);
  T.write(X, T.local("a") + 1);
  Program P = B.build();
  std::string S = P.str();
  EXPECT_NE(S.find("a := read(x)"), std::string::npos);
  EXPECT_NE(S.find("write(x, (a + 1))"), std::string::npos);
  EXPECT_NE(S.find("commit"), std::string::npos);
}
