//===- tests/dedup_test.cpp - Subtree dedup & hashing regression tests ----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the canonical-fingerprint subtree dedup
/// (core/Dedup.h) — session-renaming invariance, agreement with
/// History::canonicalKey, and verdict equivalence of dedup-on vs
/// dedup-off exploration — plus regression tests for the two weak-hash
/// bugs this PR fixed: the commutative per-log sum of
/// History::hashIgnoringOrder and the 32-bit multiplier of
/// std::hash<EventRef>.
///
//===----------------------------------------------------------------------===//

#include "core/Dedup.h"

#include "apps/Applications.h"
#include "consistency/ConsistencyChecker.h"
#include "core/Enumerate.h"
#include "parallel/ParallelExplorer.h"
#include "semantics/Executor.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace txdpor;
using namespace txdpor::test;

namespace {

constexpr VarId X = 0;

/// A pending log whose last event is a write of \p V — the shape that
/// makes hashTransactionLog affine in the written value (the value is
/// the final hashCombine input, so hash(V) = H_prev ^ (V + K)).
TransactionLog writeLog(TxnUid U, Value V) {
  TransactionLog Log(U);
  Log.append(Event::makeBegin());
  Log.append(Event::makeWrite(X, V));
  return Log;
}

/// The block-order-insensitive per-session renaming \p Pi applied to \p H
/// (init maps to itself). Pi must be a permutation of the session ids and
/// must only identify sessions whose program code is identical, so the
/// renamed history is an execution of the same program.
History renameSessions(const History &H,
                       const std::vector<uint32_t> &Pi) {
  auto Renamed = [&](TxnUid U) {
    return U.isInit() ? U : TxnUid{Pi[U.Session], U.Index};
  };
  // Rebuilt from scratch (replaceLog must preserve transaction identity,
  // so it cannot install a renamed log): every block is re-appended in
  // block order under its new uid, keeping the uid index coherent for
  // the cursor replay below.
  History R;
  for (unsigned I = 0; I != H.numTxns(); ++I) {
    const TransactionLog &Log = H.txn(I);
    TransactionLog New(Renamed(Log.uid()));
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      New.append(Log.event(P));
      if (std::optional<TxnUid> W = Log.writerOf(P))
        New.setWriter(P, Renamed(*W));
    }
    R.appendLog(std::move(New));
  }
  return R;
}

Program identicalProgram(unsigned Sessions, unsigned Txns, uint64_t Seed) {
  ClientSpec Spec;
  Spec.Sessions = Sessions;
  Spec.TxnsPerSession = Txns;
  Spec.Seed = Seed;
  return makeClientProgram(AppKind::IdenticalSessions, Spec);
}

} // namespace

//===----------------------------------------------------------------------===//
// Satellite regressions: the weak hashes.
//===----------------------------------------------------------------------===//

// hashIgnoringOrder used to sum `hashLog(L) * C` over the logs, so any
// two histories whose per-log hashes had equal *sums* collided. For a log
// ending in a write, hashTransactionLog is affine in the written value
// (H_prev ^ (Val + K)), so bumping the value by one shifts the hash by
// exactly +-1 depending on the low bit — which lets us build two distinct
// two-log histories with provably equal per-log sums. The mixed combine
// must now tell them apart.
TEST(HashIgnoringOrderTest, MixesPerLogHashesBeforeSumming) {
  TxnUid U0 = uid(0, 0), U1 = uid(1, 0);
  // Find Va, Vb where bumping the written value by one shifts each log's
  // hash by exactly +-1 (true for every other value; the sign per uid is
  // fixed by the pre-value hash state's low bit).
  auto Delta = [](TxnUid U, Value V) -> int64_t {
    return static_cast<int64_t>(hashTransactionLog(writeLog(U, V + 1)) -
                                hashTransactionLog(writeLog(U, V)));
  };
  std::optional<Value> Va, Vb;
  for (Value V = 0; V != 64 && (!Va || !Vb); ++V) {
    if (!Va && (Delta(U0, V) == 1 || Delta(U0, V) == -1))
      Va = V;
    if (!Vb && (Delta(U1, V) == 1 || Delta(U1, V) == -1))
      Vb = V;
  }
  ASSERT_TRUE(Va && Vb) << "no +-1 pair in range; hashLog changed shape?";

  // Bump on opposite sides when the deltas agree (+d then -(+d) cancels
  // across the sum), on the same side when they cancel each other.
  bool SameSign = Delta(U0, *Va) == Delta(U1, *Vb);
  History H1 = History::makeInitial(1);
  H1.appendLog(writeLog(U0, *Va + 1));
  H1.appendLog(writeLog(U1, SameSign ? *Vb : *Vb + 1));
  History H2 = History::makeInitial(1);
  H2.appendLog(writeLog(U0, *Va));
  H2.appendLog(writeLog(U1, SameSign ? *Vb + 1 : *Vb));

  // The premise of the regression: distinct histories, equal per-log
  // hash sums — the exact collision class of the old scheme.
  ASSERT_NE(H1.canonicalKey(), H2.canonicalKey());
  ASSERT_EQ(hashTransactionLog(H1.txn(1)) + hashTransactionLog(H1.txn(2)),
            hashTransactionLog(H2.txn(1)) + hashTransactionLog(H2.txn(2)));
  EXPECT_NE(H1.hashIgnoringOrder(), H2.hashIgnoringOrder());

  // The property the hash exists for survives the fix: block order is
  // still ignored.
  History H1Swapped = History::makeInitial(1);
  H1Swapped.appendLog(writeLog(U1, SameSign ? *Vb : *Vb + 1));
  H1Swapped.appendLog(writeLog(U0, *Va + 1));
  EXPECT_EQ(H1.hashIgnoringOrder(), H1Swapped.hashIgnoringOrder());
}

// The previous std::hash<EventRef> was packed() * 1000003u + Pos: for
// session 0 with small transaction indices the result never exceeded
// ~2^30, leaving the entire upper half of the hash constant — every
// power-of-two hash table degenerated to its low buckets. The mixed hash
// must spread session-0 refs across the full 64-bit range and stay
// collision-free on a realistic grid.
TEST(EventRefHashTest, Spreads64Bits) {
  std::hash<EventRef> Hash;
  std::set<size_t> Values;
  std::set<uint8_t> TopBytes;
  for (uint32_t Index = 0; Index != 1000; ++Index)
    for (uint32_t Pos = 0; Pos != 10; ++Pos) {
      size_t H = Hash(EventRef{uid(0, Index), Pos});
      Values.insert(H);
      TopBytes.insert(static_cast<uint8_t>(H >> 56));
    }
  EXPECT_EQ(Values.size(), 10000u) << "collision on a 1000x10 grid";
  // The old hash pinned the top byte to 0 for this entire grid.
  EXPECT_GT(TopBytes.size(), 64u) << "upper bits not mixed";
}

//===----------------------------------------------------------------------===//
// Fingerprint properties.
//===----------------------------------------------------------------------===//

// Renaming the (structurally identical) sessions of an output history is
// invisible to the symmetry fingerprint and visible to the exact one.
TEST(DedupFingerprintTest, SessionRenamingInvariance) {
  Program P = identicalProgram(3, 2, /*Seed=*/5);
  LevelAssignment Levels =
      LevelAssignment::uniform(IsolationLevel::CausalConsistency);
  DedupTable Symmetry(P, Levels, DedupMode::Symmetry);
  DedupTable Exact(P, Levels, DedupMode::Exact);

  EnumerationResult Run = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_FALSE(Run.Histories.empty());

  // All 3-session permutations, identity first.
  const std::vector<std::vector<uint32_t>> Pis = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  unsigned ExactDiffers = 0;
  for (const History &H : Run.Histories) {
    CursorMap Cursors = replayAllCursors(P, H);
    Fingerprint SymBase = Symmetry.itemFingerprint(H, Cursors);
    Fingerprint ExactBase = Exact.itemFingerprint(H, Cursors);
    for (const auto &Pi : Pis) {
      History R = renameSessions(H, Pi);
      CursorMap RCursors = replayAllCursors(P, R);
      EXPECT_EQ(Symmetry.itemFingerprint(R, RCursors), SymBase)
          << "symmetry fingerprint not renaming-invariant";
      if (Exact.itemFingerprint(R, RCursors) != ExactBase)
        ++ExactDiffers;
    }
  }
  // Exact mode must see through none of this: renamings that change the
  // history change the fingerprint (identity permutations and
  // self-symmetric histories legitimately coincide, so assert in bulk).
  EXPECT_GT(ExactDiffers, Run.Histories.size())
      << "exact fingerprint ignores session identity";
}

// For complete histories the order-insensitive historyFingerprint must
// agree exactly with the canonicalKey partition: equal keys, equal
// fingerprints; distinct keys, distinct fingerprints (a collision among
// a few hundred histories would be a red flag for the 128-bit mix).
TEST(DedupFingerprintTest, HistoryFingerprintMatchesCanonicalKey) {
  std::vector<History> All;
  for (AppKind App : {AppKind::IdenticalSessions, AppKind::Courseware}) {
    for (uint64_t Seed = 1; Seed != 4; ++Seed) {
      ClientSpec Spec;
      Spec.Sessions = 3;
      Spec.TxnsPerSession = 2;
      Spec.Seed = Seed;
      EnumerationResult Run = enumerateHistories(
          makeClientProgram(App, Spec),
          ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
      All.insert(All.end(), Run.Histories.begin(), Run.Histories.end());
    }
  }
  ASSERT_GT(All.size(), 100u);

  std::map<std::string, Fingerprint> ByKey;
  std::map<std::pair<uint64_t, uint64_t>, std::string> ByFingerprint;
  for (const History &H : All) {
    Fingerprint F = historyFingerprint(H);
    std::string Key = H.canonicalKey();
    auto [KeyIt, KeyNew] = ByKey.emplace(Key, F);
    if (!KeyNew) {
      EXPECT_EQ(KeyIt->second, F) << "equal keys, distinct fingerprints";
    }
    auto [FpIt, FpNew] = ByFingerprint.emplace(std::make_pair(F.Lo, F.Hi),
                                               Key);
    if (!FpNew) {
      EXPECT_EQ(FpIt->second, Key) << "fingerprint collision across keys";
    }
  }
}

//===----------------------------------------------------------------------===//
// Dedup-on vs dedup-off exploration equivalence.
//===----------------------------------------------------------------------===//

namespace {

bool hasViolation(const std::vector<History> &Hs, IsolationLevel L) {
  for (const History &H : Hs)
    if (!isConsistent(H, L))
      return true;
  return false;
}

} // namespace

// The verdict grid of the oracle leg, run deterministically: exact mode
// reproduces the reference output multiset verbatim, symmetry emits a
// sub-multiset with identical per-level violation verdicts, and on the
// symmetric workload the reduction strictly bites.
TEST(DedupEquivalenceTest, VerdictGridMatchesReference) {
  const IsolationLevel Verdicts[] = {
      IsolationLevel::ReadCommitted, IsolationLevel::CausalConsistency,
      IsolationLevel::SnapshotIsolation, IsolationLevel::Serializability};
  for (AppKind App : {AppKind::IdenticalSessions, AppKind::Courseware}) {
    for (uint64_t Seed = 1; Seed != 3; ++Seed) {
      for (IsolationLevel Base : {IsolationLevel::ReadCommitted,
                                  IsolationLevel::CausalConsistency}) {
        ClientSpec Spec;
        Spec.Sessions = 3;
        Spec.TxnsPerSession = 2;
        Spec.Seed = Seed;
        Program P = makeClientProgram(App, Spec);

        ExplorerConfig Off = ExplorerConfig::exploreCE(Base);
        EnumerationResult Ref = enumerateHistories(P, Off);
        auto RefKeys = countByCanonicalKey(Ref.Histories);

        ExplorerConfig ExactCfg = Off;
        ExactCfg.Dedup = DedupMode::Exact;
        EnumerationResult Exact = enumerateHistories(P, ExactCfg);
        EXPECT_EQ(countByCanonicalKey(Exact.Histories), RefKeys)
            << appName(App) << " seed " << Seed
            << ": exact dedup perturbed an optimal exploration";

        ExplorerConfig SymCfg = Off;
        SymCfg.Dedup = DedupMode::Symmetry;
        EnumerationResult Sym = enumerateHistories(P, SymCfg);
        auto SymKeys = countByCanonicalKey(Sym.Histories);
        for (const auto &[Key, N] : SymKeys) {
          auto It = RefKeys.find(Key);
          ASSERT_TRUE(It != RefKeys.end() && It->second >= N)
              << appName(App) << " seed " << Seed
              << ": symmetry emitted a history outside the reference set";
        }
        for (IsolationLevel L : Verdicts)
          EXPECT_EQ(hasViolation(Sym.Histories, L),
                    hasViolation(Ref.Histories, L))
              << appName(App) << " seed " << Seed << ": verdict at "
              << isolationLevelName(L) << " diverged";

        if (App == AppKind::IdenticalSessions) {
          EXPECT_LT(Sym.Histories.size(), Ref.Histories.size())
              << "seed " << Seed
              << ": symmetry failed to bite on the symmetric workload";
          EXPECT_GT(Sym.Stats.DedupSkips, 0u);
        } else {
          // Structurally distinct sessions: every session is its own
          // class, so symmetry must change nothing.
          EXPECT_EQ(countByCanonicalKey(Sym.Histories), RefKeys)
              << appName(App) << " seed " << Seed
              << ": symmetry perturbed an asymmetric workload";
        }
      }
    }
  }
}

// The carried O(Δ) fingerprint must equal the from-scratch fingerprint at
// every probe the engine performs — across extension, read-branch,
// commit and swap children (swap children re-derive from the history),
// for both modes, uniform and mixed bases. DedupVerifyCarried recomputes
// every probe from scratch and counts disagreements, so a single drift
// anywhere in the maintenance fails the run.
TEST(DedupCarriedFingerprintTest, CarriedEqualsScratchAtEveryProbe) {
  for (AppKind App : {AppKind::IdenticalSessions, AppKind::Courseware}) {
    for (uint64_t Seed = 1; Seed != 3; ++Seed) {
      ClientSpec Spec;
      Spec.Sessions = 3;
      Spec.TxnsPerSession = 2;
      Spec.Seed = Seed;
      Program P = makeClientProgram(App, Spec);
      for (DedupMode Mode : {DedupMode::Exact, DedupMode::Symmetry}) {
        ExplorerConfig Cfg =
            ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
        Cfg.Dedup = Mode;
        Cfg.DedupVerifyCarried = true;
        EnumerationResult Run = enumerateHistories(P, Cfg);
        EXPECT_GT(Run.Stats.DedupChecks, 0u);
        EXPECT_EQ(Run.Stats.DedupFpMismatches, 0u)
            << appName(App) << " seed " << Seed << ": carried fingerprint "
            << "drifted from the from-scratch fingerprint";
      }
      // A mixed base partitions sessions into different structural
      // classes; the carried symmetry canonicalization must track that.
      LevelAssignment Mix(IsolationLevel::CausalConsistency);
      Mix.set(1, IsolationLevel::ReadCommitted);
      ExplorerConfig MixCfg = ExplorerConfig::exploreCEMixed(Mix);
      MixCfg.Dedup = DedupMode::Symmetry;
      MixCfg.DedupVerifyCarried = true;
      EnumerationResult Run = enumerateHistories(P, MixCfg);
      EXPECT_GT(Run.Stats.DedupChecks, 0u);
      EXPECT_EQ(Run.Stats.DedupFpMismatches, 0u)
          << appName(App) << " seed " << Seed
          << ": carried fingerprint drifted under a mixed base";
    }
  }
}

// Eviction soundness: a bounded table only ever *forgets* fingerprints,
// so an evicted subtree is re-explored — never wrongly skipped. Every
// output of a bounded run must come from the reference set with
// unchanged violation verdicts, and a tiny cap must actually evict.
TEST(DedupEvictionTest, BoundedTableOnlyReExplores) {
  Program P = identicalProgram(3, 2, /*Seed=*/1);
  ExplorerConfig Off =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  EnumerationResult Ref = enumerateHistories(P, Off);
  auto RefKeys = countByCanonicalKey(Ref.Histories);

  ExplorerConfig Sym = Off;
  Sym.Dedup = DedupMode::Symmetry;
  EnumerationResult Unbounded = enumerateHistories(P, Sym);

  for (uint64_t Cap : {8u, 64u, 4096u}) {
    ExplorerConfig Bounded = Sym;
    Bounded.DedupMaxEntries = Cap;
    Bounded.DedupVerifyCarried = true;
    EnumerationResult Run = enumerateHistories(P, Bounded);
    EXPECT_EQ(Run.Stats.DedupFpMismatches, 0u);
    // Forgetting can only grow the output back toward the reference.
    EXPECT_GE(Run.Histories.size(), Unbounded.Histories.size())
        << "cap " << Cap;
    EXPECT_LE(Run.Histories.size(), Ref.Histories.size()) << "cap " << Cap;
    for (const auto &[Key, N] : countByCanonicalKey(Run.Histories)) {
      auto It = RefKeys.find(Key);
      ASSERT_TRUE(It != RefKeys.end() && It->second >= N)
          << "cap " << Cap
          << ": bounded run emitted a history outside the reference set";
    }
    for (IsolationLevel L : {IsolationLevel::CausalConsistency,
                             IsolationLevel::Serializability})
      EXPECT_EQ(hasViolation(Run.Histories, L),
                hasViolation(Ref.Histories, L))
          << "cap " << Cap << ": verdict at " << isolationLevelName(L)
          << " diverged";
    if (Cap == 8) {
      EXPECT_GT(Run.Stats.DedupEvictions, 0u)
          << "a cap of 8 must evict on this workload";
    }
    // An ample cap behaves exactly like the unbounded table.
    if (Cap == 4096) {
      EXPECT_EQ(Run.Stats.DedupEvictions, 0u);
      EXPECT_EQ(countByCanonicalKey(Run.Histories),
                countByCanonicalKey(Unbounded.Histories));
    }
  }
}

// Concurrent eviction: workers race insertIfNew probes against CLOCK
// sweeps on the shared sharded table. Soundness must survive any
// interleaving (this fixture runs under TSan in CI), and exact mode —
// which never has anything to skip on an optimal run — must stay
// lossless even while evicting.
TEST(DedupEvictionTest, ConcurrentBoundedTableStaysSound) {
  Program P = identicalProgram(3, 2, /*Seed=*/1);
  ExplorerConfig Off =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  EnumerationResult Ref = enumerateHistories(P, Off);
  auto RefKeys = countByCanonicalKey(Ref.Histories);

  for (unsigned Threads : {2u, 4u}) {
    for (DedupMode Mode : {DedupMode::Exact, DedupMode::Symmetry}) {
      ExplorerConfig Par = Off;
      Par.Threads = Threads;
      Par.Dedup = Mode;
      Par.DedupMaxEntries = 32;
      std::vector<History> Out;
      ParallelExplorer E(P, Par);
      ExplorerStats Stats =
          E.run([&](const History &H) { Out.push_back(H); });
      auto Keys = countByCanonicalKey(Out);
      if (Mode == DedupMode::Exact) {
        EXPECT_EQ(Keys, RefKeys)
            << Threads << " threads: exact turned lossy under eviction";
      } else {
        for (const auto &[Key, N] : Keys) {
          auto It = RefKeys.find(Key);
          ASSERT_TRUE(It != RefKeys.end() && It->second >= N)
              << Threads
              << " threads: bounded symmetry output outside the reference";
        }
        EXPECT_EQ(hasViolation(Out, IsolationLevel::Serializability),
                  hasViolation(Ref.Histories,
                               IsolationLevel::Serializability))
            << Threads << " threads";
      }
      EXPECT_GT(Stats.DedupEvictions, 0u)
          << Threads << " threads: a cap of 32 must evict here";
    }
  }
}

// Thread-count invariance of the shared sharded table: every parallel
// output is in the reference set, the verdicts agree, and the exact mode
// stays lossless (parallel work order may change *which* isomorphic
// representative survives symmetry, but never soundness).
TEST(DedupEquivalenceTest, ParallelSharedTableStaysSound) {
  Program P = identicalProgram(3, 2, /*Seed=*/1);
  ExplorerConfig Off =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  EnumerationResult Ref = enumerateHistories(P, Off);
  auto RefKeys = countByCanonicalKey(Ref.Histories);

  for (unsigned Threads : {2u, 4u}) {
    for (DedupMode Mode : {DedupMode::Exact, DedupMode::Symmetry}) {
      ExplorerConfig Par = Off;
      Par.Threads = Threads;
      Par.Dedup = Mode;
      std::vector<History> Out;
      ParallelExplorer E(P, Par);
      E.run([&](const History &H) { Out.push_back(H); });
      auto Keys = countByCanonicalKey(Out);
      if (Mode == DedupMode::Exact) {
        EXPECT_EQ(Keys, RefKeys) << Threads << " threads: exact lossy";
      } else {
        EXPECT_LE(Out.size(), Ref.Histories.size());
        for (const auto &[Key, N] : Keys) {
          auto It = RefKeys.find(Key);
          ASSERT_TRUE(It != RefKeys.end() && It->second >= N)
              << Threads
              << " threads: symmetry output outside the reference set";
        }
        EXPECT_EQ(hasViolation(Out, IsolationLevel::Serializability),
                  hasViolation(Ref.Histories,
                               IsolationLevel::Serializability));
      }
    }
  }
}
