//===- tests/prefix_test.cpp - History prefixes (§3.1) --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Prefix.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;

/// The history of Fig. 4a: a session reading x then y, a second session
/// whose transaction writes x = 2 and whose successor reads x.
///  s0: t0.0 = [read(x)<-init, read(y)<-t1.0]
///  s1: t1.0 = [write(x,2) + write(y, ...)], t1.1 = [read(x)<-t1.0]
History makeFig4History() {
  return LitmusBuilder(2)
      .txn(1, 0).w(X, 2).w(Y, 1).commit()
      .txn(0, 0).rInit(X).r(Y, uid(1, 0)).commit()
      .txn(1, 1).r(X, uid(1, 0)).commit()
      .build();
}
} // namespace

TEST(PrefixTest, FullCutIsDownwardClosed) {
  History H = makeFig4History();
  PrefixCut Cut;
  for (unsigned I = 0; I != H.numTxns(); ++I)
    Cut.push_back(static_cast<uint32_t>(H.txn(I).size()));
  EXPECT_TRUE(isDownwardClosed(H, Cut));
}

TEST(PrefixTest, Fig4bIsAPrefix) {
  // Keep init, t1.0 whole, and t0.0 without its trailing events after the
  // reads; drop t1.1 entirely — the shape of Fig. 4b.
  History H = makeFig4History();
  PrefixCut Cut(H.numTxns(), 0);
  Cut[0] = static_cast<uint32_t>(H.txn(0).size()); // init.
  Cut[1] = static_cast<uint32_t>(H.txn(1).size()); // t1.0 whole.
  Cut[2] = 3;                                      // begin, read(x), read(y).
  EXPECT_TRUE(isDownwardClosed(H, Cut));
  History P = takePrefix(H, Cut);
  EXPECT_EQ(P.numTxns(), 3u);
  EXPECT_TRUE(isPrefixOf(P, H));
}

TEST(PrefixTest, Fig4cIsNotAPrefix) {
  // Dropping the wr predecessor t1.0 while keeping its readers is not
  // downward closed (Fig. 4c).
  History H = makeFig4History();
  PrefixCut Cut(H.numTxns(), 0);
  Cut[0] = static_cast<uint32_t>(H.txn(0).size());
  Cut[1] = 0;                                      // drop t1.0.
  Cut[2] = static_cast<uint32_t>(H.txn(2).size()); // t0.0 reads y from it.
  Cut[3] = static_cast<uint32_t>(H.txn(3).size()); // t1.1 reads x from it.
  EXPECT_FALSE(isDownwardClosed(H, Cut));
}

TEST(PrefixTest, SoClosureRequiresWholePredecessor) {
  History H = makeFig4History();
  PrefixCut Cut(H.numTxns(), 0);
  Cut[0] = static_cast<uint32_t>(H.txn(0).size());
  Cut[1] = 1; // t1.0 truncated to just begin ...
  Cut[3] = 1; // ... but its so-successor t1.1 is present.
  EXPECT_FALSE(isDownwardClosed(H, Cut));
}

TEST(PrefixTest, CloseDownwardConverges) {
  History H = makeFig4History();
  PrefixCut Cut(H.numTxns(), 0);
  Cut[0] = static_cast<uint32_t>(H.txn(0).size());
  Cut[1] = 0; // Drop t1.0; its dependents must be dropped too.
  Cut[2] = static_cast<uint32_t>(H.txn(2).size());
  Cut[3] = static_cast<uint32_t>(H.txn(3).size());
  closeDownward(H, Cut);
  EXPECT_TRUE(isDownwardClosed(H, Cut));
  EXPECT_EQ(Cut[2], 0u) << "t0.0 reads y from the dropped t1.0";
  EXPECT_EQ(Cut[3], 0u) << "t1.1 reads x from the dropped t1.0";
}

TEST(PrefixTest, TakePrefixDropsEmptiedLogs) {
  History H = makeFig4History();
  PrefixCut Cut(H.numTxns(), 0);
  Cut[0] = static_cast<uint32_t>(H.txn(0).size());
  Cut[1] = static_cast<uint32_t>(H.txn(1).size());
  History P = takePrefix(H, Cut);
  EXPECT_EQ(P.numTxns(), 2u);
  EXPECT_TRUE(P.contains(uid(1, 0)));
  EXPECT_FALSE(P.contains(uid(0, 0)));
  EXPECT_TRUE(isPrefixOf(P, H));
}

TEST(PrefixTest, PrefixOfItself) {
  History H = makeFig4History();
  EXPECT_TRUE(isPrefixOf(H, H));
}

TEST(PrefixTest, NotPrefixWithDifferentWr) {
  History H = makeFig4History();
  // Same shape but t1.1 reads x from init instead of t1.0.
  History Other = LitmusBuilder(2)
                      .txn(1, 0).w(X, 2).w(Y, 1).commit()
                      .txn(0, 0).rInit(X).r(Y, uid(1, 0)).commit()
                      .txn(1, 1).rInit(X).commit()
                      .build();
  EXPECT_FALSE(isPrefixOf(Other, H));
}

TEST(PrefixTest, TruncatedLogIsPoPrefix) {
  History H = makeFig4History();
  PrefixCut Cut(H.numTxns(), 0);
  Cut[0] = static_cast<uint32_t>(H.txn(0).size());
  Cut[1] = 2; // init + first write of t1.0: begin, write(x,2).
  EXPECT_TRUE(isDownwardClosed(H, Cut));
  History P = takePrefix(H, Cut);
  ASSERT_EQ(P.numTxns(), 2u);
  EXPECT_EQ(P.txn(1).size(), 2u);
  EXPECT_TRUE(P.txn(1).isPending());
  EXPECT_TRUE(isPrefixOf(P, H));
}
