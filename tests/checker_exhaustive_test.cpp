//===- tests/checker_exhaustive_test.cpp - Systematic checker validation --===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stronger-than-random validation of the production checkers: for small
/// program shapes, enumerate EVERY structurally valid history (the
/// trivial isolation level admits all wr choices over <-earlier committed
/// writers) and compare each production checker against the brute-force
/// Def. 2.2 oracle on all of them. This sweeps the complete space of
/// read-from assignments for the shape, including all inconsistent ones.
///
//===----------------------------------------------------------------------===//

#include "consistency/BruteForceChecker.h"
#include "core/Enumerate.h"

#include <gtest/gtest.h>

using namespace txdpor;

namespace {

/// Program shapes chosen to exercise each axiom's distinguishing pattern.
std::vector<std::pair<std::string, Program>> makeShapes() {
  std::vector<std::pair<std::string, Program>> Shapes;
  {
    // Read-modify-write triangle on one variable.
    ProgramBuilder B;
    VarId X = B.var("x");
    for (unsigned S = 0; S != 3; ++S) {
      auto T = B.beginTxn(S);
      T.read("a", X);
      T.write(X, static_cast<Value>(S) + 10);
    }
    Shapes.push_back({"rmw-triangle", B.build()});
  }
  {
    // Two-variable cross: the SI/SER separating shape.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.write(Y, 1);
    auto T1 = B.beginTxn(1);
    T1.read("b", Y);
    T1.write(X, 1);
    auto T2 = B.beginTxn(2);
    T2.read("c", X);
    T2.read("d", Y);
    Shapes.push_back({"cross-plus-observer", B.build()});
  }
  {
    // Session chains: session guarantees matter.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    B.beginTxn(0).write(X, 1);
    auto T01 = B.beginTxn(0);
    T01.read("a", Y);
    B.beginTxn(1).write(Y, 2);
    auto T11 = B.beginTxn(1);
    T11.read("b", X);
    Shapes.push_back({"session-chains", B.build()});
  }
  {
    // Shared write-write conflict variable (Conflict axiom food).
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Z = B.var("z");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.write(Z, 1);
    auto T1 = B.beginTxn(1);
    T1.read("b", X);
    T1.write(Z, 2);
    B.beginTxn(2).write(X, 5);
    Shapes.push_back({"conflict-z", B.build()});
  }
  return Shapes;
}

} // namespace

TEST(CheckerExhaustiveTest, AllHistoriesOfAllShapesAllLevels) {
  for (auto &[Name, P] : makeShapes()) {
    // All structurally valid histories of the shape.
    auto All = enumerateReference(P, IsolationLevel::Trivial);
    ASSERT_GT(All.Histories.size(), 3u) << Name;
    for (const History &H : All.Histories) {
      for (IsolationLevel Level : AllIsolationLevels) {
        BruteForceChecker Oracle(Level);
        EXPECT_EQ(isConsistent(H, Level), Oracle.isConsistent(H))
            << Name << " under " << isolationLevelName(Level) << "\n"
            << H.str();
      }
    }
  }
}

TEST(CheckerExhaustiveTest, ChainMonotoneOnAllHistories) {
  for (auto &[Name, P] : makeShapes()) {
    auto All = enumerateReference(P, IsolationLevel::Trivial);
    for (const History &H : All.Histories) {
      bool StrongerAccepted = false;
      for (auto It = AllIsolationLevels.rbegin();
           It != AllIsolationLevels.rend(); ++It) {
        bool Cur = isConsistent(H, *It);
        if (StrongerAccepted) {
          EXPECT_TRUE(Cur) << Name << " at " << isolationLevelName(*It)
                           << "\n"
                           << H.str();
        }
        StrongerAccepted = Cur;
      }
    }
  }
}

TEST(CheckerExhaustiveTest, LevelCountsAreOrdered) {
  // |hist_SER| ≤ |hist_SI| ≤ |hist_CC| ≤ |hist_RA| ≤ |hist_RC| ≤ |all|.
  for (auto &[Name, P] : makeShapes()) {
    auto All = enumerateReference(P, IsolationLevel::Trivial);
    size_t Prev = 0;
    for (auto It = AllIsolationLevels.rbegin();
         It != AllIsolationLevels.rend(); ++It) {
      size_t Count = 0;
      for (const History &H : All.Histories)
        Count += isConsistent(H, *It);
      EXPECT_GE(Count, Prev) << Name << " at " << isolationLevelName(*It);
      Prev = Count;
    }
    EXPECT_EQ(Prev, All.Histories.size())
        << Name << ": trivial level must admit everything";
  }
}
