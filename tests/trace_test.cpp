//===- tests/trace_test.cpp - Tracing layer unit tests --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace/ layer's contracts: the SPSC ring drops (never overwrites)
/// on overflow and accounts every drop; a disabled session records
/// nothing; non-consuming snapshots may run concurrently with emitting
/// worker threads (the TSan target of this file); the Chrome trace-event
/// dump is valid JSON (parsed back with support/Json's reader) with the
/// expected phases; and the process-wide counters bump and reset.
///
//===----------------------------------------------------------------------===//

#include "trace/ChromeTrace.h"
#include "trace/Counters.h"
#include "trace/Trace.h"

#include "support/Json.h"
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

using namespace txdpor;

namespace {

/// Every test runs its own session: start() resets all registered ring
/// buffers (including those of threads from earlier tests), so record
/// counts below only see what the test itself emitted. Buffers of other
/// tests' (dead) threads stay registered but empty — single-thread tests
/// therefore locate their records rather than index Threads[0].
class TraceTest : public ::testing::Test {
protected:
  void TearDown() override { trace::stop(); }

  /// The unique thread that recorded anything (asserts there is one).
  static const trace::ThreadRecords &emitter(const trace::Snapshot &Snap) {
    const trace::ThreadRecords *Found = nullptr;
    for (const trace::ThreadRecords &T : Snap.Threads)
      if (!T.Records.empty()) {
        EXPECT_EQ(Found, nullptr) << "records on more than one thread";
        Found = &T;
      }
    EXPECT_NE(Found, nullptr) << "no thread recorded anything";
    static const trace::ThreadRecords Empty;
    return Found ? *Found : Empty;
  }
};

TEST_F(TraceTest, DisabledPathRecordsNothing) {
  trace::stop();
  trace::start(trace::AllCategories, /*CapacityPerThread=*/64);
  trace::stop();
  EXPECT_FALSE(trace::active());
  {
    TXDPOR_TRACE_SPAN(Explore, ExpandItem, 1);
    TXDPOR_TRACE_INSTANT(Parallel, Steal, 2);
    TXDPOR_TRACE_COUNTER(Parallel, Pending, 3);
  }
  trace::Snapshot Snap = trace::snapshot();
  EXPECT_EQ(Snap.totalRecords(), 0u);
  EXPECT_EQ(Snap.totalDropped(), 0u);
}

TEST_F(TraceTest, RecordsSpansInstantsAndCounters) {
  trace::start(trace::AllCategories, /*CapacityPerThread=*/64);
  {
    TXDPOR_TRACE_SPAN(Explore, ExpandItem, 7, 9);
    TXDPOR_TRACE_INSTANT(Parallel, Steal, 3);
    TXDPOR_TRACE_COUNTER(Parallel, Pending, 42);
  }
  trace::stop();
  trace::Snapshot Snap = trace::snapshot();
  ASSERT_EQ(Snap.totalRecords(), 3u);
  const std::vector<trace::Record> &Rs = emitter(Snap).Records;
  // Instant and counter are emitted before the span (which completes at
  // scope exit).
  EXPECT_EQ(Rs[0].Kind, trace::RecordKind::Instant);
  EXPECT_EQ(Rs[0].Arg0, 3u);
  EXPECT_EQ(Rs[1].Kind, trace::RecordKind::Counter);
  EXPECT_EQ(Rs[1].Arg0, 42u);
  EXPECT_EQ(Rs[2].Kind, trace::RecordKind::Span);
  EXPECT_EQ(Rs[2].Id, trace::Name::ExpandItem);
  EXPECT_EQ(Rs[2].Cat, trace::Category::Explore);
  EXPECT_EQ(Rs[2].Arg0, 7u);
  EXPECT_EQ(Rs[2].Arg1, 9u);
  EXPECT_GE(Rs[2].EndNs, Rs[2].StartNs);
}

TEST_F(TraceTest, CategoryMaskFilters) {
  trace::start(1u << static_cast<unsigned>(trace::Category::Check),
               /*CapacityPerThread=*/64);
  EXPECT_TRUE(trace::enabled(trace::Category::Check));
  EXPECT_FALSE(trace::enabled(trace::Category::Explore));
  {
    TXDPOR_TRACE_SPAN(Explore, ExpandItem); // Filtered.
    TXDPOR_TRACE_SPAN(Check, ReadsLatest);  // Recorded.
  }
  trace::stop();
  trace::Snapshot Snap = trace::snapshot();
  ASSERT_EQ(Snap.totalRecords(), 1u);
  EXPECT_EQ(emitter(Snap).Records[0].Cat, trace::Category::Check);
}

TEST_F(TraceTest, FullRingDropsNewRecordsAndCountsThem) {
  trace::start(trace::AllCategories, /*CapacityPerThread=*/8);
  for (unsigned I = 0; I != 20; ++I)
    trace::emitInstant(trace::Category::Explore, trace::Name::ExpandItem, I);
  trace::stop();
  trace::Snapshot Snap = trace::snapshot();
  ASSERT_EQ(Snap.totalRecords(), 8u);
  EXPECT_EQ(Snap.totalDropped(), 12u);
  // Drop-on-full keeps the *oldest* records: the ring never overwrites
  // slots a concurrent snapshot might be reading.
  for (unsigned I = 0; I != 8; ++I)
    EXPECT_EQ(emitter(Snap).Records[I].Arg0, I);
}

TEST_F(TraceTest, ConsumingSnapshotFreesRingSlots) {
  trace::start(trace::AllCategories, /*CapacityPerThread=*/8);
  for (unsigned I = 0; I != 8; ++I)
    trace::emitInstant(trace::Category::Explore, trace::Name::ExpandItem, I);
  trace::Snapshot First = trace::snapshot(/*Consume=*/true);
  EXPECT_EQ(First.totalRecords(), 8u);
  // The consumed slots are reusable; a second batch fits without drops.
  for (unsigned I = 8; I != 16; ++I)
    trace::emitInstant(trace::Category::Explore, trace::Name::ExpandItem, I);
  trace::stop();
  trace::Snapshot Second = trace::snapshot(/*Consume=*/true);
  ASSERT_EQ(Second.totalRecords(), 8u);
  EXPECT_EQ(Second.totalDropped(), 0u);
  EXPECT_EQ(emitter(Second).Records[0].Arg0, 8u);
  EXPECT_EQ(trace::snapshot().totalRecords(), 0u);
}

TEST_F(TraceTest, SessionRestartResetsBuffers) {
  trace::start(trace::AllCategories, /*CapacityPerThread=*/8);
  trace::emitInstant(trace::Category::Explore, trace::Name::ExpandItem);
  trace::stop();
  trace::start(trace::AllCategories, /*CapacityPerThread=*/8);
  trace::stop();
  EXPECT_EQ(trace::snapshot().totalRecords(), 0u);
}

TEST_F(TraceTest, SpanGuardEndEmitsExactlyOnce) {
  trace::start(trace::AllCategories, /*CapacityPerThread=*/8);
  {
    TXDPOR_TRACE_SPAN_NAMED(Span, Parallel, SplitPhase);
    EXPECT_TRUE(Span.armed());
    Span.setArgs(5, 6);
    Span.end();
    Span.end(); // Idempotent; the destructor must not re-emit either.
  }
  trace::stop();
  trace::Snapshot Snap = trace::snapshot();
  ASSERT_EQ(Snap.totalRecords(), 1u);
  EXPECT_EQ(emitter(Snap).Records[0].Arg0, 5u);
  EXPECT_EQ(emitter(Snap).Records[0].Arg1, 6u);
}

TEST_F(TraceTest, DisarmedGuardCapturesNothing) {
  trace::stop();
  TXDPOR_TRACE_SPAN_NAMED(Span, Explore, ExpandItem);
  EXPECT_FALSE(Span.armed());
}

/// The TSan target: worker threads emit while the main thread takes
/// non-consuming snapshots mid-flight. Drop-on-full guarantees the
/// snapshots only touch published slots; total accounting must still be
/// exact once the workers are joined.
TEST_F(TraceTest, ConcurrentEmittersWithLiveSnapshots) {
  constexpr unsigned NumThreads = 4;
  constexpr unsigned PerThread = 2000;
  trace::start(trace::AllCategories, /*CapacityPerThread=*/512);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != NumThreads; ++T)
    Pool.emplace_back([T] {
      trace::setThreadName("emitter-" + std::to_string(T));
      for (unsigned I = 0; I != PerThread; ++I) {
        TXDPOR_TRACE_SPAN(Explore, ExpandItem, I);
        trace::emitInstant(trace::Category::Parallel, trace::Name::Steal, I);
      }
    });
  for (unsigned I = 0; I != 50; ++I) {
    trace::Snapshot Live = trace::snapshot();
    EXPECT_LE(Live.totalRecords(), NumThreads * 512 + 2);
    std::this_thread::yield();
  }
  for (std::thread &Th : Pool)
    Th.join();
  trace::stop();
  trace::Snapshot Snap = trace::snapshot();
  uint64_t Accounted = Snap.totalRecords() + Snap.totalDropped();
  // 2 records per iteration per worker; the main thread emitted nothing.
  EXPECT_EQ(Accounted, uint64_t(NumThreads) * PerThread * 2);
  unsigned Named = 0;
  for (const trace::ThreadRecords &TR : Snap.Threads)
    if (TR.ThreadName.rfind("emitter-", 0) == 0)
      ++Named;
  EXPECT_EQ(Named, NumThreads);
}

TEST_F(TraceTest, ParseCategoriesSpecs) {
  EXPECT_EQ(trace::parseCategories("all"), trace::AllCategories);
  std::optional<uint32_t> Two = trace::parseCategories("check,parallel");
  ASSERT_TRUE(Two.has_value());
  EXPECT_EQ(*Two, (1u << static_cast<unsigned>(trace::Category::Check)) |
                      (1u << static_cast<unsigned>(trace::Category::Parallel)));
  std::string Bad;
  EXPECT_FALSE(trace::parseCategories("check,bogus", &Bad).has_value());
  EXPECT_EQ(Bad, "bogus");
  EXPECT_FALSE(trace::parseCategories("", &Bad).has_value());
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  trace::start(trace::AllCategories, /*CapacityPerThread=*/64);
  trace::setThreadName("tester");
  {
    TXDPOR_TRACE_SPAN(Explore, ExpandItem, 1, 2);
    TXDPOR_TRACE_INSTANT(Parallel, Steal, 3);
    TXDPOR_TRACE_COUNTER(Parallel, Pending, 4);
  }
  trace::stop();
  std::ostringstream OS;
  trace::ChromeTraceOptions Opts;
  Opts.Counters = trace::counterSnapshot();
  Opts.Metadata.push_back({"command", "unit-test"});
  trace::writeChromeTrace(OS, trace::snapshot(), Opts);

  std::string Error;
  std::unique_ptr<JsonValue> Doc = parseJson(OS.str(), &Error);
  ASSERT_TRUE(Doc) << Error;
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->kind() == JsonValue::Kind::Array);
  unsigned Spans = 0, Instants = 0, Counters = 0, ThreadNames = 0;
  for (const JsonValue &Ev : Events->elements()) {
    const JsonValue *Ph = Ev.find("ph");
    ASSERT_TRUE(Ph);
    const std::string &Phase = Ph->asString();
    if (Phase == "X") {
      ++Spans;
      EXPECT_GE(Ev.find("dur")->asNumber(), 0.0);
      EXPECT_EQ(Ev.find("name")->asString(), "expand");
      EXPECT_EQ(Ev.find("cat")->asString(), "explore");
      EXPECT_EQ(Ev.find("args")->find("a0")->asNumber(), 1.0);
    } else if (Phase == "i") {
      ++Instants;
    } else if (Phase == "C") {
      ++Counters;
      EXPECT_EQ(Ev.find("args")->find("value")->asNumber(), 4.0);
    } else if (Phase == "M") {
      ++ThreadNames;
      EXPECT_EQ(Ev.find("name")->asString(), "thread_name");
    }
  }
  EXPECT_EQ(Spans, 1u);
  EXPECT_EQ(Instants, 1u);
  EXPECT_EQ(Counters, 1u);
  EXPECT_GE(ThreadNames, 1u);
  const JsonValue *Other = Doc->find("otherData");
  ASSERT_TRUE(Other);
  EXPECT_EQ(Other->find("command")->asString(), "unit-test");
  ASSERT_TRUE(Other->find("counters"));
  EXPECT_TRUE(Other->find("counters")->find("valid_writes_probes"));
}

TEST_F(TraceTest, ChromeTraceOfEmptySnapshotIsValidJson) {
  std::ostringstream OS;
  trace::writeChromeTrace(OS, trace::Snapshot());
  std::string Error;
  std::unique_ptr<JsonValue> Doc = parseJson(OS.str(), &Error);
  ASSERT_TRUE(Doc) << Error;
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events);
  EXPECT_TRUE(Events->elements().empty());
}

TEST_F(TraceTest, CountersBumpAndReset) {
  trace::resetCounters();
  EXPECT_EQ(trace::counterValue(trace::Counter::BulkRebuilds), 0u);
  trace::bump(trace::Counter::BulkRebuilds);
  trace::bump(trace::Counter::BulkRebuilds, 4);
  EXPECT_EQ(trace::counterValue(trace::Counter::BulkRebuilds), 5u);
  std::vector<std::pair<const char *, uint64_t>> Snap =
      trace::counterSnapshot();
  ASSERT_EQ(Snap.size(), trace::NumCounters);
  bool Seen = false;
  for (const auto &[CounterName, Value] : Snap)
    if (std::string(CounterName) == "bulk_rebuilds") {
      Seen = true;
      EXPECT_EQ(Value, 5u);
    }
  EXPECT_TRUE(Seen);
  trace::resetCounters();
  EXPECT_EQ(trace::counterValue(trace::Counter::BulkRebuilds), 0u);
}

} // namespace
