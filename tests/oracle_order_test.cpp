//===- tests/oracle_order_test.cpp - Scheduler-independence properties ----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.1 fixes an *arbitrary* oracle order consistent with session order;
/// correctness (soundness, completeness, optimality) cannot depend on the
/// choice. These tests run the explorer under several oracle orders —
/// session-priority permutations and round-robin interleavings — and
/// assert the output sets coincide and stay duplicate-free.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"
#include "core/Swap.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace txdpor;
using namespace txdpor::test;

namespace {

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

/// All so-consistent oracle orders obtained by permuting session
/// priority (sessions run in a fixed priority order; within a session,
/// ascending index).
std::vector<std::vector<TxnUid>> sessionPermutations(const Program &P) {
  std::vector<uint32_t> Sessions;
  for (uint32_t S = 0; S != P.numSessions(); ++S)
    Sessions.push_back(S);
  std::vector<std::vector<TxnUid>> Orders;
  std::sort(Sessions.begin(), Sessions.end());
  do {
    std::vector<TxnUid> Order;
    for (uint32_t S : Sessions)
      for (uint32_t T = 0; T != P.numTxns(S); ++T)
        Order.push_back({S, T});
    Orders.push_back(std::move(Order));
  } while (std::next_permutation(Sessions.begin(), Sessions.end()));
  return Orders;
}

/// Round-robin interleaving: one transaction per session in turn.
std::vector<TxnUid> roundRobin(const Program &P) {
  std::vector<TxnUid> Order;
  std::vector<uint32_t> Next(P.numSessions(), 0);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (uint32_t S = 0; S != P.numSessions(); ++S)
      if (Next[S] < P.numTxns(S)) {
        Order.push_back({S, Next[S]++});
        Progress = true;
      }
  }
  return Order;
}

} // namespace

TEST(OracleOrderClassTest, FromSequenceComparesByRank) {
  OracleOrder Order = OracleOrder::fromSequence(
      {{1, 0}, {0, 0}, {1, 1}, {0, 1}});
  EXPECT_TRUE(Order.less({1, 0}, {0, 0}));
  EXPECT_TRUE(Order.less({0, 0}, {1, 1}));
  EXPECT_FALSE(Order.less({0, 0}, {1, 0}));
  EXPECT_TRUE(Order.less(TxnUid::init(), {1, 0}));
  EXPECT_FALSE(Order.less({1, 0}, TxnUid::init()));
}

TEST(OracleOrderClassTest, DefaultIsLexicographic) {
  OracleOrder Order;
  EXPECT_TRUE(Order.less({0, 1}, {1, 0}));
  EXPECT_TRUE(Order.less({1, 0}, {1, 1}));
}

TEST(OracleOrderTest, OutputSetInvariantAcrossSessionPermutations) {
  RandomProgramSpec Spec;
  Spec.NumSessions = 3;
  Spec.TxnsPerSession = 1;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Rng R(13);
  for (unsigned Iter = 0; Iter != 4; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    std::optional<std::set<std::string>> Reference;
    for (const std::vector<TxnUid> &Order : sessionPermutations(P)) {
      ExplorerConfig Config =
          ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
      Config.OracleOrderOverride = Order;
      auto Result = enumerateHistories(P, Config);
      std::set<std::string> Keys = keySet(Result.Histories);
      EXPECT_EQ(Keys.size(), Result.Histories.size())
          << "duplicates under a permuted oracle order\n"
          << P.str();
      if (!Reference)
        Reference = Keys;
      else
        EXPECT_EQ(Keys, *Reference) << P.str();
    }
  }
}

TEST(OracleOrderTest, RoundRobinMatchesDefault) {
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Rng R(47);
  for (unsigned Iter = 0; Iter != 4; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    auto Default = enumerateHistories(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
    ExplorerConfig Config =
        ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
    Config.OracleOrderOverride = roundRobin(P);
    auto Interleaved = enumerateHistories(P, Config);
    EXPECT_EQ(keySet(Default.Histories), keySet(Interleaved.Histories))
        << P.str();
    EXPECT_EQ(Interleaved.Histories.size(),
              keySet(Interleaved.Histories).size());
  }
}

TEST(OracleOrderTest, FilteredAlgorithmsAlsoInvariant) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Y, 1);
  auto T1 = B.beginTxn(1);
  T1.read("b", Y);
  T1.write(X, 1);
  Program P = B.build();

  std::optional<std::set<std::string>> Reference;
  for (const std::vector<TxnUid> &Order : sessionPermutations(P)) {
    ExplorerConfig Config = ExplorerConfig::exploreCEStar(
        IsolationLevel::CausalConsistency, IsolationLevel::Serializability);
    Config.OracleOrderOverride = Order;
    auto Result = enumerateHistories(P, Config);
    std::set<std::string> Keys = keySet(Result.Histories);
    if (!Reference)
      Reference = Keys;
    else
      EXPECT_EQ(Keys, *Reference);
  }
  ASSERT_TRUE(Reference.has_value());
  EXPECT_EQ(Reference->size(), 2u) << "write skew filtered by SER";
}
