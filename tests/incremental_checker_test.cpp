//===- tests/incremental_checker_test.cpp - Incremental vs scratch --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equivalence tests pinning the incremental commit-test engine
/// (consistency/IncrementalChecker.h) to the scratch saturation checkers:
/// random engine-shaped extension sequences probed candidate by candidate
/// (uniform and mixed assignments), the maintained indexes against their
/// History counterparts, swap-replay rebuilds, and the mid-order-pending
/// truncation shape of readLatest. The fixture name is the tier-1
/// `incremental_equivalence` ctest (CMakeLists.txt).
///
//===----------------------------------------------------------------------===//

#include "consistency/IncrementalChecker.h"

#include "consistency/SaturationChecker.h"
#include "core/Swap.h"
#include "support/Rng.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

constexpr VarId X = 0;
constexpr VarId Y = 1;

/// Scratch reference verdict for a (possibly mixed) assignment.
bool scratchConsistent(const History &H, const LevelAssignment &L) {
  if (L.isMixed())
    return MixedSaturationChecker(L).isConsistent(H);
  return isConsistent(H, L.defaultLevel());
}

/// The assignments the equivalence suite sweeps: the four uniform
/// saturable levels plus genuinely mixed per-session assignments.
std::vector<LevelAssignment> sweepAssignments() {
  std::vector<LevelAssignment> Result;
  for (IsolationLevel L :
       {IsolationLevel::Trivial, IsolationLevel::ReadCommitted,
        IsolationLevel::ReadAtomic, IsolationLevel::CausalConsistency})
    Result.push_back(LevelAssignment::uniform(L));
  LevelAssignment MixA(IsolationLevel::CausalConsistency);
  MixA.set(1, IsolationLevel::ReadCommitted);
  Result.push_back(MixA);
  LevelAssignment MixB(IsolationLevel::ReadCommitted);
  MixB.set(0, IsolationLevel::CausalConsistency);
  MixB.set(2, IsolationLevel::ReadAtomic);
  Result.push_back(MixB);
  LevelAssignment MixC(IsolationLevel::ReadAtomic);
  MixC.set(1, IsolationLevel::Trivial);
  Result.push_back(MixC);
  return Result;
}

void expectStateMatchesHistory(const ConstraintState &St, const History &H) {
  ASSERT_EQ(St.numTxns(), H.numTxns());
  const Relation &Causal = H.causalRelation();
  for (unsigned A = 0; A != H.numTxns(); ++A)
    for (unsigned B = 0; B != H.numTxns(); ++B)
      EXPECT_EQ(St.causal().get(A, B), Causal.get(A, B))
          << "causal closure diverges at (" << A << ", " << B << ")";
  for (VarId V = 0; V != 2; ++V) {
    std::vector<unsigned> FromState;
    St.forEachCommittedWriter(V, [&](unsigned W) { FromState.push_back(W); });
    EXPECT_EQ(FromState, H.committedWriters(V))
        << "committed-writer index diverges for variable " << V;
  }
}

/// Drives one random engine-shaped construction (one pending transaction
/// at a time, reads assigned through probed candidates — exactly the
/// explorer's extension discipline) and checks every probe, verdict and
/// index against the scratch implementations.
void runRandomEquivalence(uint64_t Seed, const LevelAssignment &Levels) {
  SCOPED_TRACE("seed " + std::to_string(Seed) + " levels " + Levels.str());
  Rng R(Seed);
  const unsigned NumVars = 2, NumSessions = 3, NumTxns = 6;
  History H = History::makeInitial(NumVars);
  ConstraintState St(H, Levels, /*MaxTxns=*/NumTxns + 1);

  std::vector<uint32_t> NextIndex(NumSessions, 0);
  Value NextVal = 1;
  for (unsigned T = 0; T != NumTxns; ++T) {
    uint32_t S = static_cast<uint32_t>(R.nextBelow(NumSessions));
    TxnUid Uid{S, NextIndex[S]++};
    unsigned Idx = H.beginTxn(Uid);
    St.applyBegin(Uid);
    ASSERT_TRUE(St.hasOpenTxn());
    ASSERT_EQ(St.openTxn(), Idx);

    for (unsigned Op = 0, E = 1 + static_cast<unsigned>(R.nextBelow(3));
         Op != E; ++Op) {
      VarId V = static_cast<VarId>(R.nextBelow(NumVars));
      if (R.chance(1, 2)) {
        H.appendEvent(Idx, Event::makeWrite(V, NextVal++));
        continue; // Writes need no state update.
      }
      H.appendEvent(Idx, Event::makeRead(V));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (!H.txn(Idx).isExternalRead(Pos))
        continue; // Read-local: no wr edge, no commit test.

      // Probe every committed writer and compare against the scratch
      // verdict on the extended history — the ValidWrites loop.
      std::vector<unsigned> Admitted;
      for (unsigned W : H.committedWriters(V)) {
        bool Admits = St.readAdmits(W, V);
        History Probe = H;
        Probe.setWriter(Idx, Pos, H.txn(W).uid());
        EXPECT_EQ(Admits, scratchConsistent(Probe, Levels))
            << "probe of writer " << W << " for var " << V << " diverges";
        if (Admits)
          Admitted.push_back(W);
      }
      // Causal extensibility (Thm. 3.4): the commit test never blocks.
      ASSERT_FALSE(Admitted.empty());
      unsigned W = Admitted[R.nextBelow(Admitted.size())];
      H.setWriter(Idx, Pos, H.txn(W).uid());
      St.applyExternalRead(W, V);
      EXPECT_TRUE(St.consistent());
      EXPECT_TRUE(scratchConsistent(H, Levels));
    }

    if (R.chance(1, 8)) {
      H.appendEvent(Idx, Event::makeAbort());
      St.applyAbort();
    } else {
      H.appendEvent(Idx, Event::makeCommit());
      St.applyCommit(H.txn(Idx));
    }
    EXPECT_FALSE(St.hasOpenTxn());
    expectStateMatchesHistory(St, H);

    // Swap-replay leg: every reordering of the just-committed block must
    // bulk-rebuild to the scratch verdict of the swapped history.
    for (const Reordering &Rd : computeReorderings(H)) {
      unsigned FirstChanged = 0;
      History Swapped = applySwap(H, Rd, &FirstChanged);
      EXPECT_EQ(FirstChanged, Swapped.numTxns() - 1);
      ConstraintState SwapState(Swapped, Levels);
      EXPECT_EQ(SwapState.consistent(), scratchConsistent(Swapped, Levels))
          << "swap-rebuild verdict diverges for reader " << Rd.ReaderTxn
          << " pos " << Rd.ReadPos;
    }
  }
  H.checkWellFormed();
}

/// Builds one random, fully-committed engine-shaped history: every
/// external read's writer is chosen among the candidates the carried
/// state admits, so the result is consistent under \p Levels by
/// construction (the explorer's own extension discipline).
History randomCommittedHistory(uint64_t Seed, const LevelAssignment &Levels,
                               unsigned NumTxns) {
  Rng R(Seed);
  const unsigned NumVars = 2, NumSessions = 3;
  History H = History::makeInitial(NumVars);
  ConstraintState St(H, Levels, NumTxns + 1);
  std::vector<uint32_t> NextIndex(NumSessions, 0);
  Value NextVal = 1;
  for (unsigned T = 0; T != NumTxns; ++T) {
    uint32_t S = static_cast<uint32_t>(R.nextBelow(NumSessions));
    TxnUid Uid{S, NextIndex[S]++};
    unsigned Idx = H.beginTxn(Uid);
    St.applyBegin(Uid);
    for (unsigned Op = 0, E = 1 + static_cast<unsigned>(R.nextBelow(3));
         Op != E; ++Op) {
      VarId V = static_cast<VarId>(R.nextBelow(NumVars));
      if (R.chance(1, 2)) {
        H.appendEvent(Idx, Event::makeWrite(V, NextVal++));
        continue;
      }
      H.appendEvent(Idx, Event::makeRead(V));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (!H.txn(Idx).isExternalRead(Pos))
        continue;
      std::vector<unsigned> Admitted;
      for (unsigned W : H.committedWriters(V))
        if (St.readAdmits(W, V))
          Admitted.push_back(W);
      unsigned W = Admitted[R.nextBelow(Admitted.size())];
      H.setWriter(Idx, Pos, H.txn(W).uid());
      St.applyExternalRead(W, V);
    }
    H.appendEvent(Idx, Event::makeCommit());
    St.applyCommit(H.txn(Idx));
  }
  return H;
}

/// The engine's O(Δ) swap-child rebuild over one random history: every
/// reordering candidate's state, rebuilt by copying the cached prefix
/// state below the reader and replaying only the changed blocks, must be
/// equivalentTo the bulk-constructed state of the same swapped history.
/// Random reader positions across seeds sweep every FirstChangedBlock
/// position the fan-out can produce.
void runPrefixCacheSwapGrid(uint64_t Seed, const LevelAssignment &Levels) {
  SCOPED_TRACE("seed " + std::to_string(Seed) + " levels " + Levels.str());
  const unsigned NumTxns = 6;
  History H = randomCommittedHistory(Seed, Levels, NumTxns);

  // Checkpoints accessed in descending order exercise the non-monotone
  // lookup path (a fresh checkpoint below an existing one).
  PrefixStateCache Cache(H, Levels, NumTxns + 1);
  for (unsigned L = H.numTxns(); L >= 1; --L) {
    ConstraintState Prefix = Cache.stateFor(L);
    ConstraintState Ref(H, Levels, /*MaxTxns=*/0, /*PrefixLen=*/L);
    EXPECT_TRUE(Prefix.equivalentTo(Ref))
        << "cached prefix state diverges at length " << L;
  }

  PrefixStateCache SwapCache(H, Levels, NumTxns + 1);
  for (const Reordering &Rd : computeReorderings(H)) {
    History Swapped = applySwap(H, Rd);
    ConstraintState Bulk(Swapped, Levels);
    ConstraintState Incr = SwapCache.stateFor(Rd.ReaderTxn);
    Incr.replayBlocks(Swapped, Rd.ReaderTxn, Swapped.numTxns());
    EXPECT_TRUE(Incr.equivalentTo(Bulk) && Bulk.equivalentTo(Incr))
        << "incremental swap-child rebuild diverges for reader "
        << Rd.ReaderTxn << " pos " << Rd.ReadPos;
    EXPECT_EQ(Incr.consistent(), Bulk.consistent());
  }
}

} // namespace

TEST(IncrementalEquivalence, PrefixCacheSwapGridMatchesBulk) {
  for (const LevelAssignment &Levels : sweepAssignments())
    for (uint64_t Seed = 1; Seed <= 20; ++Seed)
      runPrefixCacheSwapGrid(Seed, Levels);
}

TEST(IncrementalEquivalence, RandomExtensionsMatchScratch) {
  for (const LevelAssignment &Levels : sweepAssignments())
    for (uint64_t Seed = 1; Seed <= 25; ++Seed)
      runRandomEquivalence(Seed, Levels);
}

TEST(IncrementalEquivalence, BulkVerdictMatchesScratchOnLitmus) {
  // The CC litmus violation: t2 reads x from t1 but y from init although
  // t1's write of y causally precedes (write skew on visibility).
  History Bad = LitmusBuilder(2)
                    .txn(0, 0).w(X, 1).commit()
                    .txn(0, 1).w(Y, 2).commit()
                    .txn(1, 0).r(Y, uid(0, 1)).rInit(X).commit()
                    .build();
  for (const LevelAssignment &Levels : sweepAssignments()) {
    ConstraintState St(Bad, Levels);
    EXPECT_EQ(St.consistent(), scratchConsistent(Bad, Levels))
        << Levels.str();
  }
  // RA-visible, RC-invisible atomicity violation: the reader sees init's
  // Y first, then t0's X — no wr ∘ po premise (RC fine), but the so ∪ wr
  // premise forces t0 before init (RA cycle).
  History Split = LitmusBuilder(2)
                      .txn(0, 0).w(X, 1).w(Y, 1).commit()
                      .txn(1, 0).rInit(Y).r(X, uid(0, 0)).commit()
                      .build();
  EXPECT_TRUE(ConstraintState(
                  Split, LevelAssignment::uniform(IsolationLevel::ReadCommitted))
                  .consistent());
  EXPECT_FALSE(ConstraintState(
                   Split, LevelAssignment::uniform(IsolationLevel::ReadAtomic))
                   .consistent());
  // Per-session mix: the violation exists iff the *reading* session runs
  // at RA or stronger.
  LevelAssignment ReaderWeak(IsolationLevel::ReadAtomic);
  ReaderWeak.set(1, IsolationLevel::ReadCommitted);
  EXPECT_TRUE(ConstraintState(Split, ReaderWeak).consistent());
  LevelAssignment ReaderStrong(IsolationLevel::ReadCommitted);
  ReaderStrong.set(1, IsolationLevel::ReadAtomic);
  EXPECT_FALSE(ConstraintState(Split, ReaderStrong).consistent());
}

TEST(IncrementalEquivalence, MidOrderPendingTruncationProbes) {
  // The readLatest truncation shape: the pending reader sits mid-order,
  // with a committed block after it. Probes must still match the scratch
  // verdict on the extended history — including a writer that sits
  // *after* the pending block (a backward wr edge into the open sink).
  LitmusBuilder B(2);
  B.txn(0, 0).w(X, 1).commit();
  B.txn(1, 0).r(X, uid(0, 0)); // Pending: no commit.
  B.txn(2, 0).w(X, 2).w(Y, 3).commit();
  History H = B.build();
  ASSERT_TRUE(H.txn(2).isPending());

  for (const LevelAssignment &Levels : sweepAssignments()) {
    ConstraintState St(H, Levels);
    ASSERT_TRUE(St.consistent()) << Levels.str();
    ASSERT_TRUE(St.hasOpenTxn());
    ASSERT_EQ(St.openTxn(), 2u);
    for (VarId V : {X, Y})
      for (unsigned W : H.committedWriters(V)) {
        bool Admits = St.readAdmits(W, V);
        History Probe = H;
        Probe.appendEvent(2, Event::makeRead(V));
        uint32_t Pos = static_cast<uint32_t>(Probe.txn(2).size()) - 1;
        Probe.setWriter(2, Pos, H.txn(W).uid());
        EXPECT_EQ(Admits, scratchConsistent(Probe, Levels))
            << Levels.str() << " var " << V << " writer " << W;
      }
  }
}

TEST(IncrementalEquivalence, StateCapacityGrowsWithinMaxTxns) {
  // A state sized for the whole program keeps extending in place across
  // the capacity the engine reserves (initialItem).
  History H = History::makeInitial(1);
  ConstraintState St(H, LevelAssignment::uniform(IsolationLevel::ReadAtomic),
                     /*MaxTxns=*/9);
  for (uint32_t T = 0; T != 8; ++T) {
    TxnUid Uid{0, T};
    unsigned Idx = H.beginTxn(Uid);
    St.applyBegin(Uid);
    H.appendEvent(Idx, Event::makeRead(X));
    // Reading the session's latest writer is always admitted; reading a
    // stale writer past it violates RA (its write is in the premise).
    unsigned Latest = Idx - 1;
    ASSERT_TRUE(St.readAdmits(Latest, X));
    if (Latest != 0)
      EXPECT_FALSE(St.readAdmits(0, X))
          << "stale init read must violate RA once the session wrote";
    H.setWriter(Idx, 1, H.txn(Latest).uid());
    St.applyExternalRead(Latest, X);
    H.appendEvent(Idx, Event::makeWrite(X, T + 1));
    H.appendEvent(Idx, Event::makeCommit());
    St.applyCommit(H.txn(Idx));
  }
  EXPECT_EQ(St.numTxns(), 9u);
  EXPECT_TRUE(St.consistent());
  EXPECT_TRUE(scratchConsistent(
      H, LevelAssignment::uniform(IsolationLevel::ReadAtomic)));
  // The session-order chain must have accumulated transitively.
  EXPECT_TRUE(St.causal().get(1, 8));
}
