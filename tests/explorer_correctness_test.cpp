//===- tests/explorer_correctness_test.cpp - Thm 5.1 / Cor 6.2 properties -===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness battery: for a family of small programs and
/// every algorithm instance, verify against the reference enumeration
/// (deduplicated naive DFS of the operational semantics):
///
///   * soundness      — every output history is in hist_I(P);
///   * completeness   — every history of hist_I(P) is output;
///   * optimality     — no history is output twice;
///   * strong optimality (base levels) — no blocked reads, and every
///     explore call either recurses or outputs: end states == outputs and
///     the exploration never dies on an inconsistent history;
///   * explore-ce*(I0, I) invariance — the pre-filter end-state count
///     depends only on I0, not on I (the paper's Fig. 14c overlap).
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include "consistency/ConsistencyChecker.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;

namespace {

/// Small program family exercising: pure write/read races, read-modify-
/// write conflicts, multi-variable transactions, guards, aborts and
/// session sequencing.
std::vector<std::pair<std::string, Program>> makeProgramFamily() {
  std::vector<std::pair<std::string, Program>> Family;

  {
    ProgramBuilder B;
    VarId X = B.var("x");
    B.beginTxn(0).write(X, 1);
    B.beginTxn(1).read("a", X);
    Family.push_back({"wr-race", B.build()});
  }
  {
    ProgramBuilder B;
    VarId X = B.var("x");
    B.beginTxn(0).write(X, 1);
    B.beginTxn(1).write(X, 2);
    B.beginTxn(2).read("a", X);
    Family.push_back({"two-writers", B.build()});
  }
  {
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.read("b", Y);
    auto T1 = B.beginTxn(1);
    T1.write(X, 2);
    T1.write(Y, 2);
    Family.push_back({"fig10", B.build()});
  }
  {
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.write(Y, 1);
    auto T1 = B.beginTxn(1);
    T1.read("b", Y);
    T1.write(X, 1);
    Family.push_back({"write-skew", B.build()});
  }
  {
    // Read-modify-write counter race.
    ProgramBuilder B;
    VarId X = B.var("x");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.write(X, T0.local("a") + 1);
    auto T1 = B.beginTxn(1);
    T1.read("b", X);
    T1.write(X, T1.local("b") + 1);
    Family.push_back({"counter-race", B.build()});
  }
  {
    // Sessions with two transactions each; cross reads.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    B.beginTxn(0).write(X, 1);
    auto T01 = B.beginTxn(0);
    T01.read("a", Y);
    B.beginTxn(1).write(Y, 2);
    auto T11 = B.beginTxn(1);
    T11.read("b", X);
    Family.push_back({"two-sessions-two-txns", B.build()});
  }
  {
    // Guarded write + abort driven by read values (Fig. 11 flavor).
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.abort(eq(T0.local("a"), 0));
    T0.write(Y, 1);
    B.beginTxn(0).read("b", X);
    B.beginTxn(1).write(Y, 3);
    B.beginTxn(1).write(X, 4);
    Family.push_back({"fig11", B.build()});
  }
  {
    // Three sessions hammering one variable.
    ProgramBuilder B;
    VarId X = B.var("x");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.write(X, 10);
    B.beginTxn(1).read("b", X);
    auto T2 = B.beginTxn(2);
    T2.write(X, 20);
    Family.push_back({"one-var-three-sessions", B.build()});
  }
  return Family;
}

const IsolationLevel BaseLevels[] = {
    IsolationLevel::Trivial, IsolationLevel::ReadCommitted,
    IsolationLevel::ReadAtomic, IsolationLevel::CausalConsistency};

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

class CorrectnessTest : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(CorrectnessTest, SoundCompleteOptimalVsReference) {
  IsolationLevel Base = GetParam();
  for (auto &[Name, P] : makeProgramFamily()) {
    auto Reference = enumerateReference(P, Base);
    auto Explored = enumerateHistories(P, ExplorerConfig::exploreCE(Base));

    // Optimality: each history exactly once.
    EXPECT_EQ(keySet(Explored.Histories).size(), Explored.Histories.size())
        << Name << " under " << isolationLevelName(Base)
        << ": duplicate outputs";

    // Soundness + completeness: output set == hist_I(P).
    EXPECT_EQ(keySet(Explored.Histories), keySet(Reference.Histories))
        << Name << " under " << isolationLevelName(Base);

    // Strong optimality symptoms: no blocked read branches, and since
    // there is no filter, every end state is an output.
    EXPECT_EQ(Explored.Stats.BlockedReads, 0u) << Name;
    EXPECT_EQ(Explored.Stats.EndStates, Explored.Stats.Outputs) << Name;
  }
}

INSTANTIATE_TEST_SUITE_P(BaseLevels, CorrectnessTest,
                         ::testing::ValuesIn(BaseLevels),
                         [](const auto &Info) {
                           return std::string(
                               isolationLevelName(Info.param));
                         });

class FilterCorrectnessTest
    : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(FilterCorrectnessTest, ExploreCeStarMatchesFilteredReference) {
  IsolationLevel Filter = GetParam();
  // Any base weaker than the filter works (Cor. 6.2); use CC as the paper
  // recommends, and RC to stress a weaker base.
  for (IsolationLevel Base : {IsolationLevel::CausalConsistency,
                              IsolationLevel::ReadCommitted}) {
    if (!isWeakerOrEqual(Base, Filter))
      continue;
    for (auto &[Name, P] : makeProgramFamily()) {
      auto Reference = enumerateReference(P, Filter);
      auto Explored = enumerateHistories(
          P, ExplorerConfig::exploreCEStar(Base, Filter));
      EXPECT_EQ(keySet(Explored.Histories).size(),
                Explored.Histories.size())
          << Name << ": duplicates under " << isolationLevelName(Base)
          << "+" << isolationLevelName(Filter);
      EXPECT_EQ(keySet(Explored.Histories), keySet(Reference.Histories))
          << Name << " under " << isolationLevelName(Base) << "+"
          << isolationLevelName(Filter);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Filters, FilterCorrectnessTest,
    ::testing::Values(IsolationLevel::ReadAtomic,
                      IsolationLevel::CausalConsistency,
                      IsolationLevel::SnapshotIsolation,
                      IsolationLevel::Serializability),
    [](const auto &Info) {
      return std::string(isolationLevelName(Info.param));
    });

TEST(InvarianceTest, EndStatesDependOnlyOnBaseLevel) {
  // Fig. 14c: CC, CC+SI and CC+SER produce identical end-state counts —
  // the filter only affects outputs.
  for (auto &[Name, P] : makeProgramFamily()) {
    ExplorerStats Plain = exploreProgram(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
    ExplorerStats Si = exploreProgram(
        P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                         IsolationLevel::SnapshotIsolation));
    ExplorerStats Ser = exploreProgram(
        P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                         IsolationLevel::Serializability));
    EXPECT_EQ(Plain.EndStates, Si.EndStates) << Name;
    EXPECT_EQ(Plain.EndStates, Ser.EndStates) << Name;
    EXPECT_GE(Si.Outputs, Ser.Outputs)
        << Name << ": SER admits a subset of SI histories";
  }
}

TEST(InvarianceTest, WeakerBaseExploresMoreEndStates) {
  // The paper's Fig. 14 ordering: end states grow as the base level gets
  // weaker (RC+CC explores at least as much as RA+CC, etc.).
  for (auto &[Name, P] : makeProgramFamily()) {
    uint64_t Prev = 0;
    for (IsolationLevel Base :
         {IsolationLevel::CausalConsistency, IsolationLevel::ReadAtomic,
          IsolationLevel::ReadCommitted, IsolationLevel::Trivial}) {
      ExplorerStats Stats = exploreProgram(
          P, ExplorerConfig::exploreCEStar(Base,
                                           IsolationLevel::CausalConsistency));
      EXPECT_GE(Stats.EndStates, Prev)
          << Name << " at base " << isolationLevelName(Base);
      Prev = Stats.EndStates;
    }
  }
}

TEST(PolynomialSpaceTest, DepthStaysLinear) {
  // The recursion depth is bounded by a small polynomial of the program
  // size (each explore call adds one event; swap chains are bounded by
  // the number of reads). A crude but effective guard against exponential
  // space regressions.
  for (auto &[Name, P] : makeProgramFamily()) {
    ExplorerStats Stats = exploreProgram(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
    size_t EventBound = 0;
    for (unsigned S = 0; S != P.numSessions(); ++S)
      for (unsigned T = 0; T != P.numTxns(S); ++T)
        EventBound += P.txn({S, T}).body().size() + 2;
    EXPECT_LE(Stats.MaxDepth, (EventBound + 2) * (EventBound + 2))
        << Name << ": suspiciously deep recursion";
  }
}
