//===- tests/iterative_explorer_test.cpp - §7.1 worklist implementation ---===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's tool uses an iterative implementation "where inputs to
/// recursive calls are maintained as a collection of histories instead of
/// relying on the call stack" (§7.1). These tests pin the equivalence of
/// our two implementations: identical output sequences (not just sets)
/// and identical aggregate statistics on figure programs, application
/// clients and random programs.
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "core/Enumerate.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

struct RunTrace {
  std::vector<std::string> Outputs;
  ExplorerStats Stats;
};

RunTrace runWith(const Program &P, ExplorerConfig Config, bool Iterative) {
  Config.Iterative = Iterative;
  RunTrace Trace;
  Trace.Stats = exploreProgram(P, Config, [&](const History &H) {
    Trace.Outputs.push_back(H.canonicalKey());
  });
  return Trace;
}

void expectEquivalent(const Program &P, ExplorerConfig Config) {
  RunTrace Recursive = runWith(P, Config, /*Iterative=*/false);
  RunTrace Iterative = runWith(P, Config, /*Iterative=*/true);
  EXPECT_EQ(Recursive.Outputs, Iterative.Outputs)
      << "output sequences diverge on\n"
      << P.str();
  EXPECT_EQ(Recursive.Stats.ExploreCalls, Iterative.Stats.ExploreCalls);
  EXPECT_EQ(Recursive.Stats.EndStates, Iterative.Stats.EndStates);
  EXPECT_EQ(Recursive.Stats.Outputs, Iterative.Stats.Outputs);
  EXPECT_EQ(Recursive.Stats.EventsAdded, Iterative.Stats.EventsAdded);
  EXPECT_EQ(Recursive.Stats.ReadBranches, Iterative.Stats.ReadBranches);
  EXPECT_EQ(Recursive.Stats.SwapsConsidered,
            Iterative.Stats.SwapsConsidered);
  EXPECT_EQ(Recursive.Stats.SwapsApplied, Iterative.Stats.SwapsApplied);
  EXPECT_EQ(Recursive.Stats.MaxDepth, Iterative.Stats.MaxDepth);
  EXPECT_EQ(Recursive.Stats.BlockedReads, Iterative.Stats.BlockedReads);
}

} // namespace

TEST(IterativeExplorerTest, Fig12Program) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).read("a", X);
  B.beginTxn(2).read("b", X);
  B.beginTxn(3).write(X, 4);
  Program P = B.build();
  expectEquivalent(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
}

TEST(IterativeExplorerTest, AbortingProgram) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.abort(eq(T0.local("a"), 0));
  T0.write(Y, 1);
  B.beginTxn(0).read("b", X);
  B.beginTxn(1).write(Y, 3);
  B.beginTxn(1).write(X, 4);
  Program P = B.build();
  expectEquivalent(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
}

TEST(IterativeExplorerTest, AppClientsAllBases) {
  for (AppKind App : {AppKind::Tpcc, AppKind::ShoppingCart}) {
    ClientSpec Spec;
    Spec.Sessions = 2;
    Spec.TxnsPerSession = 2;
    Spec.Seed = 5;
    Program P = makeClientProgram(App, Spec);
    for (IsolationLevel Base :
         {IsolationLevel::ReadCommitted, IsolationLevel::CausalConsistency})
      expectEquivalent(P, ExplorerConfig::exploreCE(Base));
  }
}

TEST(IterativeExplorerTest, FilteredAlgorithms) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Y, 1);
  auto T1 = B.beginTxn(1);
  T1.read("b", Y);
  T1.write(X, 1);
  Program P = B.build();
  expectEquivalent(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::Serializability));
  expectEquivalent(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::SnapshotIsolation));
}

TEST(IterativeExplorerTest, RandomPrograms) {
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Spec.WithGuards = true;
  Spec.WithAborts = true;
  Rng R(60221);
  for (unsigned Iter = 0; Iter != 6; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    expectEquivalent(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  }
}

TEST(IterativeExplorerTest, EndStateCapRespected) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).read("a", X);
  B.beginTxn(2).read("b", X);
  B.beginTxn(3).write(X, 4);
  Program P = B.build();
  ExplorerConfig Config =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  Config.Iterative = true;
  Config.MaxEndStates = 2;
  ExplorerStats Stats = exploreProgram(P, Config);
  EXPECT_EQ(Stats.EndStates, 2u);
  EXPECT_TRUE(Stats.HitEndStateCap);
}
