//===- tests/explorer_basic_test.cpp - Hand-verified explorations ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end explorer runs on programs small enough to count histories by
/// hand. Each test pins the exact number of read-from equivalence classes
/// under each isolation level.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include "consistency/ConsistencyChecker.h"
#include <gtest/gtest.h>

using namespace txdpor;

namespace {

/// s0: write(x, 1) || s1: a := read(x)
Program makeWriterReader() {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  B.beginTxn(1).read("a", X);
  return B.build();
}

/// Fig. 10a: s0: [a := read(x); b := read(y)] || s1: [write(x,2);
/// write(y,2)].
Program makeFig10() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.read("b", Y);
  auto T1 = B.beginTxn(1);
  T1.write(X, 2);
  T1.write(Y, 2);
  return B.build();
}

/// Write skew: s0: [a := read(x); write(y,1)] || s1: [b := read(y);
/// write(x,1)].
Program makeWriteSkew() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Y, 1);
  auto T1 = B.beginTxn(1);
  T1.read("b", Y);
  T1.write(X, 1);
  return B.build();
}

/// Appendix D (Fig. D.1a), first three instructions of each transaction:
/// s0: [a := read(x); write(z,1); write(y,1)] ||
/// s1: [b := read(y); write(z,2); write(x,2)].
Program makeAppendixD() {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  VarId Z = B.var("z");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Z, 1);
  T0.write(Y, 1);
  auto T1 = B.beginTxn(1);
  T1.read("b", Y);
  T1.write(Z, 2);
  T1.write(X, 2);
  return B.build();
}

void expectAllDistinct(const std::vector<History> &Hs) {
  auto Counts = countByCanonicalKey(Hs);
  for (const auto &[Key, N] : Counts)
    EXPECT_EQ(N, 1u) << "duplicate history:\n" << Key;
  EXPECT_EQ(Counts.size(), Hs.size());
}

void expectAllConsistent(const std::vector<History> &Hs,
                         IsolationLevel Level) {
  for (const History &H : Hs)
    EXPECT_TRUE(isConsistent(H, Level))
        << "unsound output under " << isolationLevelName(Level) << ":\n"
        << H.str();
}

} // namespace

TEST(ExplorerBasicTest, WriterReaderUnderCC) {
  Program P = makeWriterReader();
  auto [Hs, Stats] = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_EQ(Hs.size(), 2u) << "read from init or from the writer";
  expectAllDistinct(Hs);
  expectAllConsistent(Hs, IsolationLevel::CausalConsistency);
  EXPECT_EQ(Stats.Outputs, 2u);
  EXPECT_EQ(Stats.EndStates, 2u);
  EXPECT_EQ(Stats.BlockedReads, 0u);
  EXPECT_FALSE(Stats.TimedOut);
}

TEST(ExplorerBasicTest, Fig10CountsPerLevel) {
  Program P = makeFig10();
  // Under CC both reads must agree on observing s1 or not: 2 histories.
  auto CC = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_EQ(CC.Histories.size(), 2u);
  expectAllDistinct(CC.Histories);
  expectAllConsistent(CC.Histories, IsolationLevel::CausalConsistency);

  // Under RC the (x from init, y from s1) mix is additionally allowed —
  // but not the "non-monotonic" (x from s1, y from init): 3 histories.
  auto RC = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::ReadCommitted));
  EXPECT_EQ(RC.Histories.size(), 3u);
  expectAllDistinct(RC.Histories);
  expectAllConsistent(RC.Histories, IsolationLevel::ReadCommitted);

  // The trivial level allows all four combinations.
  auto True = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::Trivial));
  EXPECT_EQ(True.Histories.size(), 4u);
  expectAllDistinct(True.Histories);
}

TEST(ExplorerBasicTest, WriteSkewCountsPerLevel) {
  Program P = makeWriteSkew();
  // CC: (init,init), (init,t0), (t1,init) — the double-swap would create
  // a wr cycle and is not a history at all.
  auto CC = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_EQ(CC.Histories.size(), 3u);
  expectAllDistinct(CC.Histories);

  // SI keeps all three (write skew is SI-consistent).
  auto SI = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::SnapshotIsolation));
  EXPECT_EQ(SI.Histories.size(), 3u);
  EXPECT_EQ(SI.Stats.EndStates, 3u);
  expectAllConsistent(SI.Histories, IsolationLevel::SnapshotIsolation);

  // SER rejects the both-read-initial execution.
  auto SER = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::Serializability));
  EXPECT_EQ(SER.Histories.size(), 2u);
  EXPECT_EQ(SER.Stats.EndStates, 3u)
      << "explore-ce* explores the base level's end states";
  expectAllConsistent(SER.Histories, IsolationLevel::Serializability);
}

TEST(ExplorerBasicTest, AppendixDCountsPerLevel) {
  Program P = makeAppendixD();
  auto CC = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_EQ(CC.Histories.size(), 3u);

  // The z write-write conflict makes the both-stale execution violate SI
  // as well (Fig. 6 / Theorem 6.1 setup).
  auto SI = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::SnapshotIsolation));
  EXPECT_EQ(SI.Histories.size(), 2u);
  auto SER = enumerateHistories(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::Serializability));
  EXPECT_EQ(SER.Histories.size(), 2u);
}

TEST(ExplorerBasicTest, SingleSessionReadYourWrites) {
  // One session, two transactions: write x then read x. RA and CC force
  // the session's own write to be observed (one history); RC and the
  // trivial level have no session guarantees and also admit the stale
  // read from init (two histories).
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  auto T = B.beginTxn(0);
  T.read("a", X);
  Program P = B.build();
  for (IsolationLevel Level :
       {IsolationLevel::ReadAtomic, IsolationLevel::CausalConsistency}) {
    auto R = enumerateHistories(P, ExplorerConfig::exploreCE(Level));
    ASSERT_EQ(R.Histories.size(), 1u) << isolationLevelName(Level);
    unsigned Reader = *R.Histories[0].indexOf({0, 1});
    EXPECT_EQ(R.Histories[0].readValue(Reader, 1), 1);
  }
  for (IsolationLevel Level :
       {IsolationLevel::Trivial, IsolationLevel::ReadCommitted}) {
    auto R = enumerateHistories(P, ExplorerConfig::exploreCE(Level));
    EXPECT_EQ(R.Histories.size(), 2u) << isolationLevelName(Level);
  }
}

TEST(ExplorerBasicTest, EmptyProgram) {
  ProgramBuilder B;
  B.var("x");
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_EQ(R.Histories.size(), 1u) << "the empty execution";
  EXPECT_EQ(R.Histories[0].numTxns(), 1u) << "just the initial transaction";
}

TEST(ExplorerBasicTest, AbortingTransactionsExplored) {
  // s0: [a := read(x); if (a == 0) abort; write(y, a)] || s1: write(x, 5).
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.abort(eq(T0.local("a"), 0));
  T0.write(Y, T0.local("a"));
  B.beginTxn(1).write(X, 5);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  // Read from init → abort; read from s1 → write y=5. Two histories.
  ASSERT_EQ(R.Histories.size(), 2u);
  unsigned Aborts = 0, Writes = 0;
  for (const History &H : R.Histories) {
    unsigned T = *H.indexOf({0, 0});
    if (H.txn(T).isAborted())
      ++Aborts;
    else if (H.txn(T).writesVar(Y))
      ++Writes;
  }
  EXPECT_EQ(Aborts, 1u);
  EXPECT_EQ(Writes, 1u);
}

TEST(ExplorerBasicTest, DataFlowThroughReads) {
  // s0: [a := read(x); write(y, a + 10)] || s1: write(x, 7).
  // The y value written depends on the wr choice: 10 or 17.
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(Y, T0.local("a") + 10);
  B.beginTxn(1).write(X, 7);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 2u);
  std::vector<Value> YValues;
  for (const History &H : R.Histories) {
    unsigned T = *H.indexOf({0, 0});
    YValues.push_back(*H.txn(T).lastWriteValue(Y));
  }
  std::sort(YValues.begin(), YValues.end());
  EXPECT_EQ(YValues, (std::vector<Value>{10, 17}));
}

TEST(ExplorerBasicTest, IntermediateWritesNeverVisible) {
  // Writer transaction writes x = 1 then x = 2; only the last write is in
  // writes(t) (§2.2.1), so a concurrent reader sees 0 or 2 — never 1.
  ProgramBuilder B;
  VarId X = B.var("x");
  auto W = B.beginTxn(0);
  W.write(X, 1);
  W.write(X, 2);
  B.beginTxn(1).read("a", X);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 2u);
  for (const History &H : R.Histories) {
    unsigned Reader = *H.indexOf({1, 0});
    Value Seen = H.readValue(Reader, 1);
    EXPECT_TRUE(Seen == 0 || Seen == 2) << "intermediate write leaked";
  }
}

TEST(ExplorerBasicTest, ReadLocalShadowsConcurrentWriters) {
  // A transaction that wrote x reads its own value back even with a
  // concurrent writer: the internal read never branches.
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T = B.beginTxn(0);
  T.write(X, 7);
  T.read("a", X);
  B.beginTxn(1).write(X, 9);
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  for (const History &H : R.Histories) {
    unsigned Reader = *H.indexOf({0, 0});
    EXPECT_EQ(H.readValue(Reader, 2), 7);
  }
  // Only the block order of the two transactions can vary, and block
  // order is not part of history identity: exactly one history.
  EXPECT_EQ(R.Histories.size(), 1u);
}

TEST(ExplorerBasicTest, StatsAccounting) {
  Program P = makeFig10();
  ExplorerStats Stats = exploreProgram(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_GT(Stats.ExploreCalls, 0u);
  EXPECT_GT(Stats.EventsAdded, 0u);
  EXPECT_GT(Stats.ConsistencyChecks, 0u);
  EXPECT_EQ(Stats.EndStates, Stats.Outputs) << "explore-ce has no filter";
  EXPECT_GT(Stats.ElapsedMillis, 0.0);
  EXPECT_GT(Stats.PeakRssKb, 0u);
  EXPECT_GE(Stats.SwapsConsidered, Stats.SwapsApplied);
}

TEST(ExplorerBasicTest, DeadlineAborts) {
  Program P = makeAppendixD();
  ExplorerConfig C = ExplorerConfig::exploreCE(
      IsolationLevel::CausalConsistency);
  C.TimeBudget = Deadline::afterMillis(0);
  // The run must terminate promptly and flag the timeout (the budget is
  // polled, so a few states may still be visited).
  ExplorerStats Stats = exploreProgram(P, C);
  EXPECT_TRUE(Stats.TimedOut || Stats.EndStates == 3);
}

TEST(ExplorerBasicTest, EndStateCapStopsExploration) {
  Program P = makeAppendixD();
  ExplorerConfig C = ExplorerConfig::exploreCE(
      IsolationLevel::CausalConsistency);
  C.MaxEndStates = 1;
  ExplorerStats Stats = exploreProgram(P, C);
  EXPECT_EQ(Stats.EndStates, 1u);
  EXPECT_TRUE(Stats.HitEndStateCap);
}

TEST(ExplorerBasicTest, EmptyBodyTransactions) {
  // A transaction with no instructions is just begin;commit — legal and
  // behaviorally inert.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0); // Empty body.
  B.beginTxn(1).read("a", X);
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u);
  unsigned Empty = *R.Histories[0].indexOf({0, 0});
  EXPECT_TRUE(R.Histories[0].txn(Empty).isCommitted());
  EXPECT_EQ(R.Histories[0].txn(Empty).size(), 2u) << "begin + commit";
}

TEST(ExplorerBasicTest, GapSessions) {
  // Sessions may be sparse (session 1 empty); exploration skips it.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  B.beginTxn(2).read("a", X);
  Program P = B.build();
  EXPECT_EQ(P.numSessions(), 3u);
  EXPECT_EQ(P.numTxns(1), 0u);
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  EXPECT_EQ(R.Histories.size(), 2u);
}

TEST(ExplorerBasicTest, AlgorithmNames) {
  EXPECT_EQ(ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency)
                .algorithmName(),
            "CC");
  EXPECT_EQ(ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                          IsolationLevel::Serializability)
                .algorithmName(),
            "CC + SER");
  EXPECT_EQ(ExplorerConfig::exploreCEStar(IsolationLevel::Trivial,
                                          IsolationLevel::CausalConsistency)
                .algorithmName(),
            "true + CC");
}
