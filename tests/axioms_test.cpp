//===- tests/axioms_test.cpp - Direct axiom evaluation tests --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the first-order axiom predicates of Fig. 2 / Fig. A.1 against
/// explicit commit orders, independent of any search: for a fixed (h, co)
/// pair each axiom either holds or pinpoints the exact forbidden shape.
///
//===----------------------------------------------------------------------===//

#include "consistency/Axioms.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

constexpr VarId X = 0;
constexpr VarId Y = 1;

/// Total order over transaction indices in the given sequence.
Relation makeCo(unsigned N, std::initializer_list<unsigned> Sequence) {
  assert(Sequence.size() == N && "commit order must cover all transactions");
  Relation Co(N);
  std::vector<unsigned> Seq(Sequence);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned J = I + 1; J != N; ++J)
      Co.set(Seq[I], Seq[J]);
  return Co;
}

} // namespace

TEST(AxiomsTest, SerializabilityReadsLatestPrecedingWriter) {
  // init(0), w1(1) writes x=1, w2(2) writes x=2, r(3) reads x from w1.
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).w(X, 2).commit()
                  .txn(2, 0).r(X, uid(0, 0)).commit()
                  .build();
  // init < w1 < w2 < r: w2 is between the writer and the reader — bad.
  EXPECT_FALSE(serializabilityAxiom(H, makeCo(4, {0, 1, 2, 3})));
  // init < w2 < w1 < r: the read's writer is the latest — good.
  EXPECT_TRUE(serializabilityAxiom(H, makeCo(4, {0, 2, 1, 3})));
  // init < w1 < r < w2: later writers are irrelevant — good.
  EXPECT_TRUE(serializabilityAxiom(H, makeCo(4, {0, 1, 3, 2})));
}

TEST(AxiomsTest, CausalConsistencyIgnoresCoOnlyPredecessors) {
  // Same shape: CC's premise is (so ∪ wr)+, not co, so w2 being co-before
  // the reader does not matter as long as it is causally unrelated.
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).w(X, 2).commit()
                  .txn(2, 0).r(X, uid(0, 0)).commit()
                  .build();
  EXPECT_TRUE(causalConsistencyAxiom(H, makeCo(4, {0, 1, 2, 3})));
}

TEST(AxiomsTest, CausalConsistencyForcedByCausalPath) {
  // Fig. 3: t2 is causally before the reader t3 (via t4) and writes x, so
  // it must commit before the reader's writer t1 — impossible since t2
  // reads from t1.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()                 // t1 = 1
                  .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit() // t2 = 2
                  .txn(3, 0).r(X, uid(1, 0)).w(Y, 1).commit() // t4 = 3
                  .txn(2, 0).r(X, uid(0, 0)).r(Y, uid(3, 0)).commit() // t3
                  .build();
  // Any co extending wr has t1 < t2; the axiom then demands t2 < t1.
  EXPECT_FALSE(causalConsistencyAxiom(H, makeCo(5, {0, 1, 2, 3, 4})));
  // Read Atomic's weaker premise (direct so ∪ wr only) is satisfied by
  // the same order: t2 is not a *direct* predecessor of t3.
  EXPECT_TRUE(readAtomicAxiom(H, makeCo(5, {0, 1, 2, 3, 4})));
}

TEST(AxiomsTest, ReadAtomicDirectPredecessor) {
  // Fractured read: t0.0 writes x and y; reader reads x from t0.0 but y
  // from init. t0.0 is a direct wr predecessor, writes y, and must then
  // commit before init — cycle with so.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).w(Y, 1).commit()
                  .txn(1, 0).r(Y, TxnUid::init()).r(X, uid(0, 0)).commit()
                  .build();
  EXPECT_FALSE(readAtomicAxiom(H, makeCo(3, {0, 1, 2})));
  // Read Committed tolerates it in this read order: the stale y read
  // happens before the transaction observed t0.0.
  EXPECT_TRUE(readCommittedAxiom(H, makeCo(3, {0, 1, 2})));
}

TEST(AxiomsTest, ReadCommittedMonotonicObservation) {
  // Opposite read order: x from t0.0 first, then stale y from init —
  // wr ∘ po reaches the y read, forcing t0.0 before init.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).w(Y, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).r(Y, TxnUid::init()).commit()
                  .build();
  EXPECT_FALSE(readCommittedAxiom(H, makeCo(3, {0, 1, 2})));
}

TEST(AxiomsTest, PrefixAxiomLongFork) {
  // Long fork: readers disagree on the order of two independent writes.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit() // 1
                  .txn(1, 0).w(Y, 1).commit() // 2
                  .txn(2, 0).r(X, uid(0, 0)).r(Y, TxnUid::init()).commit()
                  .txn(3, 0).r(Y, uid(1, 0)).r(X, TxnUid::init()).commit()
                  .build();
  // Either order of the two writers violates Prefix for one reader.
  EXPECT_FALSE(prefixAxiom(H, makeCo(5, {0, 1, 2, 3, 4})));
  EXPECT_FALSE(prefixAxiom(H, makeCo(5, {0, 2, 1, 3, 4})));
  // Conflict is vacuous here (no write-write sharing).
  EXPECT_TRUE(conflictAxiom(H, makeCo(5, {0, 1, 2, 3, 4})));
}

TEST(AxiomsTest, ConflictAxiomLostUpdate) {
  // Lost update: both transactions read x from init and write x.
  History H = LitmusBuilder(1)
                  .txn(0, 0).r(X, TxnUid::init()).w(X, 1).commit()
                  .txn(1, 0).r(X, TxnUid::init()).w(X, 2).commit()
                  .build();
  // In order init < t0 < t1: t1 reads x from init, t0 writes x, t0 and t1
  // both write x with (t0, t1) ∈ co — Conflict forces t0 before init.
  EXPECT_FALSE(conflictAxiom(H, makeCo(3, {0, 1, 2})));
  EXPECT_FALSE(conflictAxiom(H, makeCo(3, {0, 2, 1})));
  // Prefix alone is fine with init < t0 < t1 (t0 is not a wr ∪ so
  // predecessor of t1).
  EXPECT_TRUE(prefixAxiom(H, makeCo(3, {0, 1, 2})));
}

TEST(AxiomsTest, WriteSkewSatisfiesSiAxioms) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).r(X, TxnUid::init()).w(Y, 1).commit()
                  .txn(1, 0).r(Y, TxnUid::init()).w(X, 1).commit()
                  .build();
  Relation Co = makeCo(3, {0, 1, 2});
  EXPECT_TRUE(prefixAxiom(H, Co));
  EXPECT_TRUE(conflictAxiom(H, Co));
  EXPECT_FALSE(serializabilityAxiom(H, Co));
  EXPECT_FALSE(serializabilityAxiom(H, makeCo(3, {0, 2, 1})));
}

TEST(AxiomsTest, AbortedTransactionsAreInvisibleToAxioms) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 9).abort()
                  .txn(1, 0).r(X, TxnUid::init()).commit()
                  .build();
  // The aborted writer cannot play t2 in any axiom.
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_TRUE(axiomsHold(H, makeCo(3, {0, 1, 2}), Level))
        << isolationLevelName(Level);
}

TEST(AxiomsTest, AxiomsHoldDispatch) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  Relation Co = makeCo(3, {0, 1, 2});
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_TRUE(axiomsHold(H, Co, Level)) << isolationLevelName(Level);
}
