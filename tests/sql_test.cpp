//===- tests/sql_test.cpp - SQL compilation layer tests -------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the §7.2 SQL-to-variables compilation: statement shapes, single-
/// session semantics (via exploration + final states), and the classic
/// predicate-level anomalies — a phantom read under weak isolation and
/// the ACIDRain-style duplicate insert.
///
//===----------------------------------------------------------------------===//

#include "sql/Table.h"

#include "core/Enumerate.h"
#include <gtest/gtest.h>

using namespace txdpor;

TEST(SqlTableTest, DeclaresVariables) {
  ProgramBuilder B;
  Table Accounts(B, "accounts", /*MaxRows=*/2, {"owner", "balance"});
  Program P = B.build();
  EXPECT_EQ(P.numVars(), 1u + 2 * 2);
  EXPECT_TRUE(P.findVar("accounts.set").has_value());
  EXPECT_TRUE(P.findVar("accounts.0.owner").has_value());
  EXPECT_TRUE(P.findVar("accounts.1.balance").has_value());
  EXPECT_EQ(Accounts.columnIndex("balance"), 1u);
}

TEST(SqlTableTest, InsertSelectRoundTrip) {
  ProgramBuilder B;
  Table Accounts(B, "accounts", 2, {"balance"});
  auto T0 = B.beginTxn(0, "insert");
  Accounts.insert(T0, /*RowId=*/1, {42});
  auto T1 = B.beginTxn(0, "select");
  Accounts.selectById(T1, 1, "row");
  Program P = B.build();

  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u) << "single session is deterministic";
  FinalStates S = computeFinalStates(P, R.Histories[0]);
  EXPECT_EQ(S.local(0, 1, "row_exists"), 1);
  EXPECT_EQ(S.local(0, 1, "row_balance"), 42);
}

TEST(SqlTableTest, SelectMissingRow) {
  ProgramBuilder B;
  Table Accounts(B, "accounts", 2, {"balance"});
  auto T = B.beginTxn(0, "select");
  Accounts.selectById(T, 0, "row");
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u);
  FinalStates S = computeFinalStates(P, R.Histories[0]);
  EXPECT_EQ(S.local(0, 0, "row_exists"), 0);
  EXPECT_EQ(S.local(0, 0, "row_balance"), 0)
      << "guarded read skipped; local stays 0";
}

TEST(SqlTableTest, DeleteRemovesRow) {
  ProgramBuilder B;
  Table Accounts(B, "accounts", 2, {"balance"});
  auto T0 = B.beginTxn(0);
  Accounts.insert(T0, 0, {7});
  auto T1 = B.beginTxn(0);
  Accounts.remove(T1, 0);
  auto T2 = B.beginTxn(0);
  Accounts.selectById(T2, 0, "row");
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u);
  FinalStates S = computeFinalStates(P, R.Histories[0]);
  EXPECT_EQ(S.local(0, 2, "row_exists"), 0);
}

TEST(SqlTableTest, UpdateByIdOnlyTouchesPresentRows) {
  ProgramBuilder B;
  Table Accounts(B, "accounts", 2, {"balance"});
  auto T0 = B.beginTxn(0);
  Accounts.updateById(T0, 0, "balance", 99); // Row absent: no-op.
  auto T1 = B.beginTxn(0);
  Accounts.insert(T1, 0, {1});
  auto T2 = B.beginTxn(0);
  Accounts.updateById(T2, 0, "balance", 99);
  auto T3 = B.beginTxn(0);
  Accounts.selectById(T3, 0, "row");
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u);
  FinalStates S = computeFinalStates(P, R.Histories[0]);
  EXPECT_EQ(S.local(0, 3, "row_balance"), 99);
  // The absent-row update wrote nothing.
  unsigned T0Idx = *R.Histories[0].indexOf({0, 0});
  EXPECT_FALSE(
      R.Histories[0].txn(T0Idx).writesVar(Accounts.cellVar(0, 0)));
}

TEST(SqlTableTest, ScanReadsAllPresentRows) {
  ProgramBuilder B;
  Table Items(B, "items", 3, {"qty"});
  auto T0 = B.beginTxn(0);
  Items.insert(T0, 0, {5});
  auto T1 = B.beginTxn(0);
  Items.insert(T1, 2, {9});
  auto T2 = B.beginTxn(0);
  Items.scan(T2, "it");
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u);
  FinalStates S = computeFinalStates(P, R.Histories[0]);
  EXPECT_EQ(S.local(0, 2, "it_set"), 0b101);
  EXPECT_EQ(S.local(0, 2, "it_0_qty"), 5);
  EXPECT_EQ(S.local(0, 2, "it_1_qty"), 0) << "absent row not read";
  EXPECT_EQ(S.local(0, 2, "it_2_qty"), 9);
}

TEST(SqlTableTest, UpdateWherePredicate) {
  ProgramBuilder B;
  Table Items(B, "items", 2, {"qty"});
  auto T0 = B.beginTxn(0);
  Items.insert(T0, 0, {1});
  auto T1 = B.beginTxn(0);
  Items.insert(T1, 1, {5});
  auto T2 = B.beginTxn(0, "restock");
  // UPDATE items SET qty = 10 WHERE qty < 3.
  Items.updateWhere(T2, "qty", 10, [](auto Cell) {
    return lt(Cell("qty"), 3);
  });
  auto T3 = B.beginTxn(0);
  Items.scan(T3, "it");
  Program P = B.build();
  auto R = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  ASSERT_EQ(R.Histories.size(), 1u);
  FinalStates S = computeFinalStates(P, R.Histories[0]);
  EXPECT_EQ(S.local(0, 3, "it_0_qty"), 10) << "qty 1 < 3 updated";
  EXPECT_EQ(S.local(0, 3, "it_1_qty"), 5) << "qty 5 untouched";
}

TEST(SqlAnomalyTest, DuplicateInsertUnderWeakIsolation) {
  // ACIDRain-style: two sessions INSERT the same key if absent. Under CC
  // both SELECTs can miss each other's INSERT and both insert; SER
  // serializes them.
  ProgramBuilder B;
  Table Users(B, "users", 2, {"name"});
  for (unsigned S = 0; S != 2; ++S) {
    auto T = B.beginTxn(S, "register");
    Users.selectById(T, 0, "u");
    // INSERT ... only when absent: a guarded RMW on the set variable.
    T.assign("fresh", eq(T.local("u_exists"), 0));
    T.read("s2", Users.setVar(), T.local("fresh"));
    T.write(Users.setVar(), bitOr(T.local("s2"), 1), T.local("fresh"));
    T.write(Users.cellVar(0, 0), Value(S) + 1, T.local("fresh"));
    T.assign("did", T.local("fresh"));
  }
  Program P = B.build();

  AssertionFn NoDuplicate = [](const FinalStates &S) {
    return !(S.local(0, 0, "did") == 1 && S.local(1, 0, "did") == 1);
  };
  AssertionResult UnderCc = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency),
      NoDuplicate);
  EXPECT_TRUE(UnderCc.ViolationFound) << "duplicate registration under CC";

  AssertionResult UnderSer = checkAssertion(
      P,
      ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                    IsolationLevel::Serializability),
      NoDuplicate);
  EXPECT_FALSE(UnderSer.ViolationFound);
}

TEST(SqlAnomalyTest, PhantomReadAcrossScans) {
  // One transaction scans the table twice while another inserts: under RC
  // the second scan can see a phantom row the first missed; RA's atomic
  // visibility forbids differing scans... of the *set variable* at least.
  ProgramBuilder B;
  Table Items(B, "items", 1, {"qty"});
  auto Reader = B.beginTxn(0, "doubleScan");
  Items.scan(Reader, "first");
  Items.scan(Reader, "second");
  auto Writer = B.beginTxn(1, "insert");
  Items.insert(Writer, 0, {3});
  Program P = B.build();

  AssertionFn NoPhantom = [](const FinalStates &S) {
    return S.local(0, 0, "first_set") == S.local(0, 0, "second_set");
  };
  AssertionResult UnderRc = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::ReadCommitted),
      NoPhantom);
  EXPECT_TRUE(UnderRc.ViolationFound) << "phantom row under RC";

  AssertionResult UnderRa = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::ReadAtomic), NoPhantom);
  EXPECT_FALSE(UnderRa.ViolationFound);
}
