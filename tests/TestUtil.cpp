//===- tests/TestUtil.cpp - Shared helpers for the test suite -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace txdpor;
using namespace txdpor::test;

History txdpor::test::makeRandomHistory(Rng &R,
                                        const RandomHistorySpec &Spec) {
  History H = History::makeInitial(Spec.NumVars);

  // Interleave transaction creation across sessions in a random order so
  // block order is not simply session-major.
  std::vector<uint32_t> NextIndex(Spec.NumSessions, 0);
  unsigned Remaining = Spec.NumSessions * Spec.TxnsPerSession;
  Value NextValue = 1;

  while (Remaining > 0) {
    uint32_t S;
    do {
      S = static_cast<uint32_t>(R.nextBelow(Spec.NumSessions));
    } while (NextIndex[S] >= Spec.TxnsPerSession);
    unsigned Idx = H.beginTxn(uid(S, NextIndex[S]++));
    --Remaining;

    unsigned NumOps = 1 + static_cast<unsigned>(R.nextBelow(Spec.MaxOpsPerTxn));
    for (unsigned Op = 0; Op != NumOps; ++Op) {
      VarId X = static_cast<VarId>(R.nextBelow(Spec.NumVars));
      if (R.chance(1, 2)) {
        H.appendEvent(Idx, Event::makeWrite(X, NextValue++));
        continue;
      }
      H.appendEvent(Idx, Event::makeRead(X));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (!H.txn(Idx).isExternalRead(Pos))
        continue; // Read-local; no wr dependency.
      // Pick any earlier committed writer of X (init always qualifies).
      std::vector<unsigned> Writers;
      for (unsigned W = 0; W != Idx; ++W)
        if (H.txn(W).isCommitted() && H.txn(W).writesVar(X))
          Writers.push_back(W);
      assert(!Writers.empty() && "init always writes every variable");
      unsigned W = Writers[R.nextBelow(Writers.size())];
      H.setWriter(Idx, Pos, H.txn(W).uid());
    }
    if (R.chance(Spec.AbortPercent, 100))
      H.appendEvent(Idx, Event::makeAbort());
    else
      H.appendEvent(Idx, Event::makeCommit());
  }
  H.checkWellFormed();
  return H;
}

Program txdpor::test::makeRandomProgram(Rng &R,
                                        const RandomProgramSpec &Spec) {
  ProgramBuilder B;
  std::vector<VarId> Vars;
  for (unsigned V = 0; V != Spec.NumVars; ++V)
    Vars.push_back(B.var("x" + std::to_string(V)));

  Value NextValue = 1;
  for (unsigned S = 0; S != Spec.NumSessions; ++S) {
    for (unsigned T = 0; T != Spec.TxnsPerSession; ++T) {
      auto Txn = B.beginTxn(S);
      unsigned NumOps =
          1 + static_cast<unsigned>(R.nextBelow(Spec.MaxOpsPerTxn));
      unsigned NumReads = 0;
      for (unsigned Op = 0; Op != NumOps; ++Op) {
        VarId X = Vars[R.nextBelow(Vars.size())];
        switch (R.nextBelow(4)) {
        case 0:
          Txn.write(X, NextValue++);
          break;
        case 1: {
          // Data-dependent write: propagate a read value.
          if (NumReads == 0) {
            Txn.write(X, NextValue++);
            break;
          }
          std::string Src = "r" + std::to_string(R.nextBelow(NumReads));
          Txn.write(X, Txn.local(Src) + 1);
          break;
        }
        case 2:
          if (Spec.WithGuards && NumReads > 0) {
            std::string Src = "r" + std::to_string(R.nextBelow(NumReads));
            Txn.write(X, NextValue++, eq(Txn.local(Src), 0));
            break;
          }
          [[fallthrough]];
        default:
          Txn.read("r" + std::to_string(NumReads++), X);
          break;
        }
      }
      if (Spec.WithAborts && NumReads > 0 && R.chance(1, 5)) {
        std::string Src = "r" + std::to_string(R.nextBelow(NumReads));
        Txn.abort(eq(Txn.local(Src), 0));
      }
    }
  }
  return B.build();
}
