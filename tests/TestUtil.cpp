//===- tests/TestUtil.cpp - Shared helpers for the test suite -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
//
// The random generators moved to the fuzz subsystem
// (src/fuzz/ProgramGenerator.h) so tests, benches and the differential
// fuzzer share one implementation; these wrappers only translate the
// legacy spec structs. The translation is draw-for-draw exact: every
// fuzz-shape knob the legacy specs lack draws randomness only when
// enabled, so seeded tests written against the old generators keep their
// shapes (asserted by tests/fuzz_test.cpp).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace txdpor;
using namespace txdpor::test;

History txdpor::test::makeRandomHistory(Rng &R,
                                        const RandomHistorySpec &Spec) {
  fuzz::HistoryShape Shape;
  Shape.NumVars = Spec.NumVars;
  Shape.NumSessions = Spec.NumSessions;
  Shape.TxnsPerSession = Spec.TxnsPerSession;
  Shape.MaxOpsPerTxn = Spec.MaxOpsPerTxn;
  Shape.AbortPercent = Spec.AbortPercent;
  return fuzz::generateHistory(R, Shape);
}

Program txdpor::test::makeRandomProgram(Rng &R,
                                        const RandomProgramSpec &Spec) {
  fuzz::ProgramShape Shape;
  Shape.NumVars = Spec.NumVars;
  Shape.NumSessions = Spec.NumSessions;
  Shape.TxnsPerSession = Spec.TxnsPerSession;
  Shape.MaxOpsPerTxn = Spec.MaxOpsPerTxn;
  Shape.WithGuards = Spec.WithGuards;
  Shape.WithAborts = Spec.WithAborts;
  return fuzz::generateProgram(R, Shape);
}
