//===- tests/assertion_test.cpp - Application assertion checking ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intended end use of the model checker (§8: "check for user-defined
/// assertions"): find isolation-level-dependent bugs. Classic pairs:
///   * courseware over-enrollment: violated under CC, safe under SER;
///   * bank write-skew overdraft: violated under SI, safe under SER;
///   * lost update on a counter: violated under CC, safe under SI & SER.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include "apps/Courseware.h"
#include <gtest/gtest.h>

using namespace txdpor;

namespace {

/// Two sessions enroll different students into the same capacity-1 course.
Program makeCoursewareRace(CoursewareApp *&AppOut) {
  static ProgramBuilder *LeakedBuilder = nullptr; // Simplify lifetimes.
  (void)LeakedBuilder;
  ProgramBuilder B;
  auto *App = new CoursewareApp(B, /*NumStudents=*/2, /*NumCourses=*/1,
                                /*Capacity=*/1);
  App->openCourse(0, 0);
  App->enroll(0, 0, 0); // Session 0 enrolls student 0.
  App->enroll(1, 1, 0); // Session 1 enrolls student 1 concurrently.
  AppOut = App;
  return B.build();
}

/// Write-skew bank: two accounts, invariant x + y >= 0, both withdrawals
/// check the *combined* balance before debiting their own account.
Program makeBankWriteSkew() {
  ProgramBuilder B;
  VarId X = B.var("acct_x");
  VarId Y = B.var("acct_y");
  // Initial deposits: x = 1 (session 0 txn 0 runs first in its session).
  B.beginTxn(0).write(X, 1);
  auto W1 = B.beginTxn(1, "withdrawX");
  W1.read("x", X);
  W1.read("y", Y);
  W1.write(X, W1.local("x") - 1, ge(W1.local("x") + W1.local("y"), 1));
  auto W2 = B.beginTxn(2, "withdrawY");
  W2.read("x", X);
  W2.read("y", Y);
  W2.write(Y, W2.local("y") - 1, ge(W2.local("x") + W2.local("y"), 1));
  return B.build();
}

/// Two increments of a counter.
Program makeCounter() {
  ProgramBuilder B;
  VarId X = B.var("counter");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.write(X, T0.local("a") + 1);
  auto T1 = B.beginTxn(1);
  T1.read("b", X);
  T1.write(X, T1.local("b") + 1);
  return B.build();
}

} // namespace

TEST(AssertionTest, CoursewareOverEnrollmentUnderCC) {
  CoursewareApp *App = nullptr;
  Program P = makeCoursewareRace(App);
  AssertionFn NoOverEnrollment = [](const FinalStates &S) {
    // Both enrollments succeeding overfills the capacity-1 course.
    return !(S.local(0, 1, "did") == 1 && S.local(1, 0, "did") == 1);
  };

  AssertionResult UnderCC = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency),
      NoOverEnrollment);
  EXPECT_TRUE(UnderCC.ViolationFound)
      << "capacity race must be reachable under CC";

  AssertionResult UnderSer = checkAssertion(
      P,
      ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                    IsolationLevel::Serializability),
      NoOverEnrollment);
  EXPECT_FALSE(UnderSer.ViolationFound) << "SER serializes the enrollments";
  delete App;
}

TEST(AssertionTest, BankWriteSkewUnderSiNotSer) {
  Program P = makeBankWriteSkew();
  // Invariant: both withdrawals happening means both saw x + y >= 1 with
  // x = 1, y = 0 — at most one may proceed in any serial order.
  AssertionFn NoDoubleWithdraw = [](const FinalStates &S) {
    bool W1 = S.local(1, 0, "x") + S.local(1, 0, "y") >= 1;
    bool W2 = S.local(2, 0, "x") + S.local(2, 0, "y") >= 1;
    return !(W1 && W2);
  };

  AssertionResult UnderSi = checkAssertion(
      P,
      ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                    IsolationLevel::SnapshotIsolation),
      NoDoubleWithdraw);
  EXPECT_TRUE(UnderSi.ViolationFound) << "write skew is SI-consistent";

  AssertionResult UnderSer = checkAssertion(
      P,
      ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                    IsolationLevel::Serializability),
      NoDoubleWithdraw);
  EXPECT_FALSE(UnderSer.ViolationFound);
}

TEST(AssertionTest, LostUpdateUnderCcNotSi) {
  Program P = makeCounter();
  // Lost update: both increments read the same value.
  AssertionFn NoLostUpdate = [](const FinalStates &S) {
    return S.local(0, 0, "a") != S.local(1, 0, "b");
  };

  AssertionResult UnderCc = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency),
      NoLostUpdate);
  EXPECT_TRUE(UnderCc.ViolationFound);

  AssertionResult UnderSi = checkAssertion(
      P,
      ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                    IsolationLevel::SnapshotIsolation),
      NoLostUpdate);
  EXPECT_FALSE(UnderSi.ViolationFound)
      << "first-committer-wins forbids the lost update";

  AssertionResult UnderSer = checkAssertion(
      P,
      ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                    IsolationLevel::Serializability),
      NoLostUpdate);
  EXPECT_FALSE(UnderSer.ViolationFound);
}

TEST(AssertionTest, WitnessIsConsistentAndComplete) {
  Program P = makeCounter();
  AssertionFn NoLostUpdate = [](const FinalStates &S) {
    return S.local(0, 0, "a") != S.local(1, 0, "b");
  };
  AssertionResult R = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency),
      NoLostUpdate);
  ASSERT_TRUE(R.ViolationFound);
  EXPECT_TRUE(isConsistent(R.Witness, IsolationLevel::CausalConsistency));
  EXPECT_FALSE(R.Witness.pendingTxn().has_value());
  EXPECT_GT(R.Checked, 0u);
}

TEST(AssertionTest, HoldsWhenPropertyAlwaysTrue) {
  Program P = makeCounter();
  AssertionResult R = checkAssertion(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency),
      [](const FinalStates &) { return true; });
  EXPECT_FALSE(R.ViolationFound);
  EXPECT_EQ(R.Checked, R.Stats.Outputs);
}
