//===- tests/invariants_test.cpp - Appendix E invariant checking ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic validation of the completeness-proof machinery of Appendix E:
/// every ordered history the explorer visits must be or-respectful
/// (Lemma E.6) and keep reads after their writers (footnote 7). We hook
/// the explorer and assert the invariants on all visited states, over the
/// paper's figure programs, application clients and random programs.
///
//===----------------------------------------------------------------------===//

#include "core/Invariants.h"

#include "apps/Applications.h"
#include "core/Enumerate.h"
#include "core/Swap.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

/// Runs explore-ce(Base) on P asserting the invariants at every visited
/// ordered history; returns the number of histories checked.
uint64_t exploreAsserting(const Program &P, IsolationLevel Base) {
  uint64_t Visited = 0;
  ExplorerConfig Config = ExplorerConfig::exploreCE(Base);
  Config.OnExplore = [&](const History &H) {
    ++Visited;
    EXPECT_TRUE(readsFollowWriters(H)) << H.str();
    EXPECT_TRUE(isOrRespectful(P, H)) << H.str();
    H.checkOrderConsistent();
  };
  exploreProgram(P, Config);
  return Visited;
}

} // namespace

TEST(InvariantsTest, ReadsFollowWritersPositive) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(0, 1).commit()
                  .txn(1, 0).r(0, uid(0, 0)).commit()
                  .build();
  EXPECT_TRUE(readsFollowWriters(H));
}

TEST(InvariantsTest, InOracleOrderHistoryIsRespectful) {
  // A history explored strictly along the oracle order with no swaps.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  B.beginTxn(1).read("a", X);
  Program P = B.build();

  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  EXPECT_TRUE(isOrRespectful(P, H));
}

TEST(InvariantsTest, UnjustifiedInversionIsNotRespectful) {
  // t1.0 runs before t0.0 in < although t0.0 is oracle-first, and nothing
  // is swapped: not reachable, not or-respectful.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  B.beginTxn(1).write(X, 2);
  Program P = B.build();

  History H = LitmusBuilder(1)
                  .txn(1, 0).w(X, 2).commit()
                  .txn(0, 0).w(X, 1).commit()
                  .build();
  EXPECT_FALSE(isOrRespectful(P, H));
}

TEST(InvariantsTest, SwapJustifiesInversion) {
  // The post-swap shape: the reader t0.0 moved after the oracle-later
  // writer t1.0 and reads from it — the swapped read is the witness.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).read("a", X);
  B.beginTxn(1).write(X, 2);
  Program P = B.build();

  History H = LitmusBuilder(1)
                  .txn(1, 0).w(X, 2).commit()
                  .txn(0, 0).r(X, uid(1, 0)).commit()
                  .build();
  EXPECT_TRUE(isOrRespectful(P, H));
}

TEST(InvariantsTest, MissingOracleEarlierTxnNeedsWitness) {
  // t1.0 present, t0.0 entirely absent with no swapped read anywhere:
  // Next would have started t0.0 first — unreachable.
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 1);
  B.beginTxn(1).write(X, 2);
  Program P = B.build();

  History H = LitmusBuilder(1).txn(1, 0).w(X, 2).commit().build();
  EXPECT_FALSE(isOrRespectful(P, H));
}

TEST(InvariantsTest, ExplorerVisitsOnlyRespectfulHistories) {
  // Paper figure programs.
  {
    ProgramBuilder B;
    VarId X = B.var("x");
    B.beginTxn(0).write(X, 2);
    B.beginTxn(1).read("a", X);
    B.beginTxn(2).read("b", X);
    B.beginTxn(3).write(X, 4);
    Program P = B.build();
    EXPECT_GT(exploreAsserting(P, IsolationLevel::CausalConsistency), 0u);
  }
  {
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.abort(eq(T0.local("a"), 0));
    T0.write(Y, 1);
    B.beginTxn(0).read("b", X);
    B.beginTxn(1).write(Y, 3);
    B.beginTxn(1).write(X, 4);
    Program P = B.build();
    EXPECT_GT(exploreAsserting(P, IsolationLevel::CausalConsistency), 0u);
  }
}

TEST(InvariantsTest, ExplorerInvariantsOnApplications) {
  for (AppKind App : {AppKind::Courseware, AppKind::Tpcc}) {
    ClientSpec Spec;
    Spec.Sessions = 2;
    Spec.TxnsPerSession = 2;
    Spec.Seed = 2;
    Program P = makeClientProgram(App, Spec);
    EXPECT_GT(exploreAsserting(P, IsolationLevel::CausalConsistency), 0u)
        << appName(App);
  }
}

TEST(InvariantsTest, ExplorerInvariantsOnRandomPrograms) {
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Rng R(777);
  for (unsigned Iter = 0; Iter != 4; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    for (IsolationLevel Base :
         {IsolationLevel::ReadCommitted, IsolationLevel::CausalConsistency})
      EXPECT_GT(exploreAsserting(P, Base), 0u) << P.str();
  }
}
