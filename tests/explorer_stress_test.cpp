//===- tests/explorer_stress_test.cpp - Larger-scale explorer checks ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stress checks on programs too large for the reference enumeration to
/// be double-checked cheaply: soundness of every output, optimality
/// (no duplicates), determinism across runs, and cross-base agreement of
/// the filtered output sets (explore-ce*(I0, I) must produce the same
/// history set for every valid base I0 — Cor. 6.2 says both equal
/// hist_I(P)).
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "consistency/ConsistencyChecker.h"
#include "core/Enumerate.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;
using namespace txdpor::test;

namespace {

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

TEST(ExplorerStressTest, AppClientsSoundAndOptimal) {
  for (AppKind App : AllApps) {
    ClientSpec Spec;
    Spec.Sessions = 3;
    Spec.TxnsPerSession = 2;
    Spec.Seed = 4;
    Program P = makeClientProgram(App, Spec);
    ExplorerConfig Config =
        ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
    Config.MaxEndStates = 100000;

    std::set<std::string> Seen;
    uint64_t Outputs = 0;
    ExplorerStats Stats = exploreProgram(P, Config, [&](const History &H) {
      ++Outputs;
      EXPECT_TRUE(Seen.insert(H.canonicalKey()).second)
          << appName(App) << ": duplicate history";
      EXPECT_TRUE(isConsistent(H, IsolationLevel::CausalConsistency));
    });
    EXPECT_FALSE(Stats.HitEndStateCap) << appName(App);
    EXPECT_EQ(Stats.BlockedReads, 0u) << appName(App);
    EXPECT_EQ(Outputs, Stats.Outputs);
  }
}

TEST(ExplorerStressTest, DeterministicAcrossRuns) {
  ClientSpec Spec;
  Spec.Sessions = 3;
  Spec.TxnsPerSession = 2;
  Spec.Seed = 9;
  Program P = makeClientProgram(AppKind::Twitter, Spec);

  auto RunOnce = [&]() {
    std::vector<std::string> Keys;
    exploreProgram(P,
                   ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency),
                   [&](const History &H) { Keys.push_back(H.canonicalKey()); });
    return Keys;
  };
  std::vector<std::string> First = RunOnce();
  std::vector<std::string> Second = RunOnce();
  EXPECT_EQ(First, Second) << "exploration must be fully deterministic";
  EXPECT_FALSE(First.empty());
}

TEST(ExplorerStressTest, FilteredSetsAgreeAcrossBases) {
  // Cor. 6.2: for any valid base I0, explore-ce*(I0, I) outputs exactly
  // hist_I(P) — so the sets agree across bases even on larger programs.
  RandomProgramSpec Spec;
  Spec.NumSessions = 3;
  Spec.TxnsPerSession = 1;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 3;
  Rng R(2718);
  for (unsigned Iter = 0; Iter != 3; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    for (IsolationLevel Filter : {IsolationLevel::CausalConsistency,
                                  IsolationLevel::SnapshotIsolation,
                                  IsolationLevel::Serializability}) {
      std::optional<std::set<std::string>> Reference;
      for (IsolationLevel Base :
           {IsolationLevel::Trivial, IsolationLevel::ReadCommitted,
            IsolationLevel::ReadAtomic, IsolationLevel::CausalConsistency}) {
        if (!isWeakerOrEqual(Base, Filter))
          continue;
        auto Result = enumerateHistories(
            P, ExplorerConfig::exploreCEStar(Base, Filter));
        std::set<std::string> Keys = keySet(Result.Histories);
        EXPECT_EQ(Keys.size(), Result.Histories.size())
            << "duplicates from base " << isolationLevelName(Base);
        if (!Reference)
          Reference = Keys;
        else
          EXPECT_EQ(Keys, *Reference)
              << "base " << isolationLevelName(Base) << " filter "
              << isolationLevelName(Filter) << "\n"
              << P.str();
      }
    }
  }
}

TEST(ExplorerStressTest, ManySessionsSingleVar) {
  // 5 sessions × 1 transaction, all touching one variable: stresses swap
  // combinatorics. Counts must match the reference enumeration.
  ProgramBuilder B;
  VarId X = B.var("x");
  for (unsigned S = 0; S != 5; ++S) {
    auto T = B.beginTxn(S);
    if (S % 2 == 0) {
      T.write(X, static_cast<Value>(S) + 1);
    } else {
      T.read("a", X);
    }
  }
  Program P = B.build();
  auto Explored = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  auto Reference = enumerateReference(P, IsolationLevel::CausalConsistency);
  EXPECT_EQ(keySet(Explored.Histories), keySet(Reference.Histories));
  EXPECT_EQ(Explored.Histories.size(), Reference.Histories.size());
  // 2 readers × 4 writer choices each (init + 3 writers): 16 classes.
  EXPECT_EQ(Explored.Histories.size(), 16u);
}

TEST(ExplorerStressTest, LongSessionChains) {
  // 2 sessions × 4 transactions: deep so-chains exercise session
  // closure in Swap.
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  for (unsigned T = 0; T != 4; ++T) {
    auto S0 = B.beginTxn(0);
    if (T % 2 == 0) {
      S0.write(X, static_cast<Value>(T));
    } else {
      S0.read("a", Y);
    }
    auto S1 = B.beginTxn(1);
    if (T % 2 == 0) {
      S1.write(Y, static_cast<Value>(T));
    } else {
      S1.read("b", X);
    }
  }
  Program P = B.build();
  auto Explored = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  auto Reference = enumerateReference(P, IsolationLevel::CausalConsistency);
  EXPECT_EQ(keySet(Explored.Histories), keySet(Reference.Histories));
}
