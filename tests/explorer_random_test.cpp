//===- tests/explorer_random_test.cpp - Random-program properties ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The same soundness / completeness / optimality battery as the curated
/// family, but over seeded random programs sweeping program shapes —
/// guards, aborts, read-dependent writes included.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include "consistency/ConsistencyChecker.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;
using namespace txdpor::test;

namespace {

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

struct Shape {
  unsigned Sessions, TxnsPerSession, Vars, MaxOps;
  bool Guards, Aborts;
};

class RandomProgramTest : public ::testing::TestWithParam<Shape> {};

} // namespace

TEST_P(RandomProgramTest, AgainstReferenceUnderAllBases) {
  const Shape &S = GetParam();
  RandomProgramSpec Spec;
  Spec.NumSessions = S.Sessions;
  Spec.TxnsPerSession = S.TxnsPerSession;
  Spec.NumVars = S.Vars;
  Spec.MaxOpsPerTxn = S.MaxOps;
  Spec.WithGuards = S.Guards;
  Spec.WithAborts = S.Aborts;

  Rng R(S.Sessions * 31 + S.TxnsPerSession * 7 + S.Vars * 3 + S.MaxOps);
  for (unsigned Iter = 0; Iter != 6; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    for (IsolationLevel Base :
         {IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
          IsolationLevel::CausalConsistency}) {
      auto Reference = enumerateReference(P, Base);
      auto Explored = enumerateHistories(P, ExplorerConfig::exploreCE(Base));
      EXPECT_EQ(keySet(Explored.Histories).size(), Explored.Histories.size())
          << "duplicates under " << isolationLevelName(Base) << "\n"
          << P.str();
      EXPECT_EQ(keySet(Explored.Histories), keySet(Reference.Histories))
          << "mismatch under " << isolationLevelName(Base) << "\n"
          << P.str();
      EXPECT_EQ(Explored.Stats.BlockedReads, 0u) << P.str();
    }
  }
}

TEST_P(RandomProgramTest, StarAlgorithmsMatchFilteredReference) {
  const Shape &S = GetParam();
  RandomProgramSpec Spec;
  Spec.NumSessions = S.Sessions;
  Spec.TxnsPerSession = S.TxnsPerSession;
  Spec.NumVars = S.Vars;
  Spec.MaxOpsPerTxn = S.MaxOps;
  Spec.WithGuards = S.Guards;
  Spec.WithAborts = S.Aborts;

  Rng R(1000 + S.Sessions * 31 + S.TxnsPerSession * 7 + S.Vars);
  for (unsigned Iter = 0; Iter != 4; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    for (IsolationLevel Filter : {IsolationLevel::SnapshotIsolation,
                                  IsolationLevel::Serializability}) {
      auto Reference = enumerateReference(P, Filter);
      auto Explored = enumerateHistories(
          P, ExplorerConfig::exploreCEStar(
                 IsolationLevel::CausalConsistency, Filter));
      EXPECT_EQ(keySet(Explored.Histories), keySet(Reference.Histories))
          << "mismatch under CC+" << isolationLevelName(Filter) << "\n"
          << P.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomProgramTest,
    ::testing::Values(Shape{2, 1, 1, 2, false, false},
                      Shape{2, 1, 2, 3, false, false},
                      Shape{2, 2, 2, 2, true, false},
                      Shape{3, 1, 2, 2, false, true},
                      Shape{2, 2, 1, 2, true, true},
                      Shape{3, 2, 2, 2, true, true}),
    [](const auto &Info) {
      const Shape &S = Info.param;
      std::string Name = std::to_string(S.Sessions) + "s" +
                         std::to_string(S.TxnsPerSession) + "t" +
                         std::to_string(S.Vars) + "v" +
                         std::to_string(S.MaxOps) + "o";
      if (S.Guards)
        Name += "G";
      if (S.Aborts)
        Name += "A";
      return Name;
    });

TEST(RandomProgramAblationTest, DisablingChecksKeepsSetCompleteness) {
  // Without the §5.3 restrictions the algorithm loses optimality but must
  // still be sound and complete: the *set* of outputs is unchanged,
  // duplicates may appear.
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Rng R(555);
  uint64_t TotalDuplicates = 0;
  for (unsigned Iter = 0; Iter != 5; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    auto Optimal = enumerateHistories(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));

    ExplorerConfig NoChecks =
        ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
    NoChecks.CheckSwapped = false;
    NoChecks.CheckReadLatest = false;
    NoChecks.MaxEndStates = 200000;
    NoChecks.TimeBudget = Deadline::afterMillis(30000);
    auto Ablated = enumerateHistories(P, NoChecks);

    ASSERT_FALSE(Ablated.Stats.HitEndStateCap)
        << "ablation blew past the cap; shrink the program";
    EXPECT_EQ(keySet(Ablated.Histories), keySet(Optimal.Histories))
        << P.str();
    EXPECT_GE(Ablated.Histories.size(), Optimal.Histories.size());
    TotalDuplicates += Ablated.Histories.size() - Optimal.Histories.size();
  }
  // At least one of the programs must actually show the redundancy the
  // §5.3 checks remove (otherwise the ablation test is vacuous).
  EXPECT_GT(TotalDuplicates, 0u);
}
