//===- tests/parallel_explorer_test.cpp - Parallel driver determinism -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel driver partitions the exploration forest across workers
/// without changing the algorithm, so for ANY thread count the multiset
/// of output histories and every aggregate counter (except wall clock and
/// memory) must coincide with the sequential Explorer. These tests pin
/// that guarantee on a grid of application clients × program sizes × base
/// levels × thread counts, on litmus and random programs, and check the
/// cooperative end-state cap.
///
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"
#include "core/Enumerate.h"
#include "parallel/ParallelExplorer.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

#include <map>

using namespace txdpor;
using namespace txdpor::test;

namespace {

struct RunTrace {
  /// Multiset of output histories keyed by canonical form (the parallel
  /// driver only guarantees the *set*, not the order).
  std::map<std::string, unsigned> Outputs;
  ExplorerStats Stats;
};

RunTrace runSequential(const Program &P, ExplorerConfig Config) {
  RunTrace Trace;
  Trace.Stats = exploreProgram(P, Config, [&](const History &H) {
    ++Trace.Outputs[H.canonicalKey()];
  });
  return Trace;
}

RunTrace runParallel(const Program &P, ExplorerConfig Config,
                     unsigned Threads) {
  Config.Threads = Threads;
  RunTrace Trace;
  // The driver serializes visitor invocations; no locking needed here.
  Trace.Stats = exploreProgramParallel(P, Config, [&](const History &H) {
    ++Trace.Outputs[H.canonicalKey()];
  });
  return Trace;
}

void expectDeterministic(const Program &P, ExplorerConfig Config,
                         std::initializer_list<unsigned> ThreadCounts = {1, 2,
                                                                         4}) {
  RunTrace Sequential = runSequential(P, Config);
  for (unsigned Threads : ThreadCounts) {
    RunTrace Parallel = runParallel(P, Config, Threads);
    EXPECT_EQ(Sequential.Outputs, Parallel.Outputs)
        << "output multiset diverges at " << Threads << " threads on\n"
        << P.str();
    const ExplorerStats &A = Sequential.Stats;
    const ExplorerStats &B = Parallel.Stats;
    EXPECT_EQ(A.ExploreCalls, B.ExploreCalls) << Threads << " threads";
    EXPECT_EQ(A.EndStates, B.EndStates) << Threads << " threads";
    EXPECT_EQ(A.Outputs, B.Outputs) << Threads << " threads";
    EXPECT_EQ(A.EventsAdded, B.EventsAdded) << Threads << " threads";
    EXPECT_EQ(A.ReadBranches, B.ReadBranches) << Threads << " threads";
    EXPECT_EQ(A.BlockedReads, B.BlockedReads) << Threads << " threads";
    EXPECT_EQ(A.SwapsConsidered, B.SwapsConsidered) << Threads << " threads";
    EXPECT_EQ(A.SwapsApplied, B.SwapsApplied) << Threads << " threads";
    EXPECT_EQ(A.ConsistencyChecks, B.ConsistencyChecks)
        << Threads << " threads";
    EXPECT_EQ(A.MaxDepth, B.MaxDepth) << Threads << " threads";
    EXPECT_FALSE(B.TimedOut);
    EXPECT_FALSE(B.HitEndStateCap);
  }
}

} // namespace

TEST(ParallelExplorerTest, Fig12Program) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).read("a", X);
  B.beginTxn(2).read("b", X);
  B.beginTxn(3).write(X, 4);
  Program P = B.build();
  expectDeterministic(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
}

TEST(ParallelExplorerTest, AbortingProgram) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T0 = B.beginTxn(0);
  T0.read("a", X);
  T0.abort(eq(T0.local("a"), 0));
  T0.write(Y, 1);
  B.beginTxn(0).read("b", X);
  B.beginTxn(1).write(Y, 3);
  B.beginTxn(1).write(X, 4);
  Program P = B.build();
  expectDeterministic(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
}

TEST(ParallelExplorerTest, AppGridMatchesSequential) {
  struct Size {
    unsigned Sessions, Txns;
  };
  for (AppKind App : {AppKind::Tpcc, AppKind::Courseware, AppKind::Twitter}) {
    for (Size Sz : {Size{2, 2}, Size{3, 2}}) {
      ClientSpec Spec;
      Spec.Sessions = Sz.Sessions;
      Spec.TxnsPerSession = Sz.Txns;
      Spec.Seed = 7;
      Program P = makeClientProgram(App, Spec);
      for (IsolationLevel Base : {IsolationLevel::ReadCommitted,
                                  IsolationLevel::CausalConsistency}) {
        SCOPED_TRACE(std::string(appName(App)) + " " +
                     std::to_string(Sz.Sessions) + "x" +
                     std::to_string(Sz.Txns) + " base " +
                     isolationLevelName(Base));
        expectDeterministic(P, ExplorerConfig::exploreCE(Base));
      }
    }
  }
}

TEST(ParallelExplorerTest, FilteredAlgorithms) {
  ClientSpec Spec;
  Spec.Sessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.Seed = 3;
  Program P = makeClientProgram(AppKind::Courseware, Spec);
  expectDeterministic(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::Serializability));
  expectDeterministic(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                       IsolationLevel::SnapshotIsolation));
  expectDeterministic(
      P, ExplorerConfig::exploreCEStar(IsolationLevel::ReadCommitted,
                                       IsolationLevel::CausalConsistency));
}

TEST(ParallelExplorerTest, RandomPrograms) {
  RandomProgramSpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  Spec.MaxOpsPerTxn = 2;
  Spec.WithGuards = true;
  Spec.WithAborts = true;
  Rng R(91125);
  for (unsigned Iter = 0; Iter != 6; ++Iter) {
    Program P = makeRandomProgram(R, Spec);
    expectDeterministic(
        P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  }
}

TEST(ParallelExplorerTest, SplitKnobsDoNotChangeOutputs) {
  ClientSpec Spec;
  Spec.Sessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.Seed = 9;
  Program P = makeClientProgram(AppKind::Tpcc, Spec);
  ExplorerConfig Base =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  RunTrace Sequential = runSequential(P, Base);

  for (unsigned SplitFactor : {1u, 2u, 16u}) {
    for (unsigned SplitDepth : {0u, 3u, 8u}) {
      ExplorerConfig Config = Base;
      Config.SplitFactor = SplitFactor;
      Config.SplitDepth = SplitDepth;
      RunTrace Parallel = runParallel(P, Config, /*Threads=*/4);
      EXPECT_EQ(Sequential.Outputs, Parallel.Outputs)
          << "SplitFactor=" << SplitFactor << " SplitDepth=" << SplitDepth;
      EXPECT_EQ(Sequential.Stats.EndStates, Parallel.Stats.EndStates);
      EXPECT_EQ(Sequential.Stats.SwapsApplied, Parallel.Stats.SwapsApplied);
    }
  }
}

TEST(ParallelExplorerTest, EndStateCapRespected) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 2);
  B.beginTxn(1).read("a", X);
  B.beginTxn(2).read("b", X);
  B.beginTxn(3).write(X, 4);
  Program P = B.build();
  ExplorerConfig Config =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  Config.MaxEndStates = 2;
  for (unsigned Threads : {1u, 2u, 4u}) {
    Config.Threads = Threads;
    ExplorerStats Stats = exploreProgramParallel(P, Config);
    EXPECT_EQ(Stats.EndStates, 2u) << Threads << " threads";
    EXPECT_TRUE(Stats.HitEndStateCap) << Threads << " threads";
  }
}

TEST(ParallelExplorerTest, StatsMergeAccumulates) {
  ExplorerStats A;
  A.ExploreCalls = 3;
  A.EndStates = 1;
  A.MaxDepth = 4;
  A.ElapsedMillis = 1.5;
  A.PeakRssKb = 100;
  A.StealSuccesses = 2;
  ExplorerStats B;
  B.ExploreCalls = 5;
  B.EndStates = 2;
  B.MaxDepth = 9;
  B.TimedOut = true;
  B.ElapsedMillis = 2.5;
  B.PeakRssKb = 50;
  B.StealSuccesses = 3;
  B.StealFailures = 7;
  B.IdleParks = 1;
  B.FrontierItems = 12;
  A.merge(B);
  EXPECT_EQ(A.ExploreCalls, 8u);
  EXPECT_EQ(A.EndStates, 3u);
  EXPECT_EQ(A.MaxDepth, 9u);
  EXPECT_TRUE(A.TimedOut);
  EXPECT_FALSE(A.HitEndStateCap);
  EXPECT_DOUBLE_EQ(A.ElapsedMillis, 4.0);
  EXPECT_EQ(A.PeakRssKb, 100u);
  EXPECT_EQ(A.StealSuccesses, 5u);
  EXPECT_EQ(A.StealFailures, 7u);
  EXPECT_EQ(A.IdleParks, 1u);
  EXPECT_EQ(A.FrontierItems, 12u);
}

TEST(ParallelExplorerTest, SchedulingCountersReported) {
  // A parallel run must report the frontier the split phase produced;
  // sequential runs must leave every scheduling counter at zero. The
  // steal/idle counts themselves are schedule-dependent (often zero on a
  // single-core box), so only their plumbing — not their magnitude — is
  // asserted here. The client must be big enough that the split phase
  // doesn't drain the whole tree before reaching its frontier target.
  Program P = makeClientProgram(AppKind::Tpcc, {/*Sessions=*/4,
                                                /*TxnsPerSession=*/3});
  ExplorerConfig Config =
      ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency);
  ExplorerStats Sequential = exploreProgramParallel(P, Config);
  EXPECT_EQ(Sequential.FrontierItems, 0u);
  EXPECT_EQ(Sequential.StealSuccesses, 0u);
  EXPECT_EQ(Sequential.StealFailures, 0u);
  EXPECT_EQ(Sequential.IdleParks, 0u);

  Config.Threads = 4;
  ExplorerStats Parallel = exploreProgramParallel(P, Config);
  EXPECT_GT(Parallel.FrontierItems, 0u);
  EXPECT_EQ(Parallel.EndStates, Sequential.EndStates);
}
