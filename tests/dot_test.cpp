//===- tests/dot_test.cpp - Graphviz export tests -------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Dot.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;

History makeSample() {
  return LitmusBuilder(2)
      .txn(0, 0).w(X, 1).w(Y, 2).commit()
      .txn(0, 1).r(X, uid(0, 0)).commit()
      .txn(1, 0).r(Y, uid(0, 0)).commit()
      .build();
}
} // namespace

TEST(DotTest, ContainsClustersPerTransaction) {
  std::string Dot = renderDot(makeSample());
  EXPECT_NE(Dot.find("digraph history"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_init"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_t0.0"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_t0.1"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_t1.0"), std::string::npos);
}

TEST(DotTest, ContainsEventLabels) {
  std::string Dot = renderDot(makeSample());
  EXPECT_NE(Dot.find("write(x0,1)"), std::string::npos);
  EXPECT_NE(Dot.find("write(x1,2)"), std::string::npos);
  EXPECT_NE(Dot.find("read(x0)"), std::string::npos);
  EXPECT_NE(Dot.find("commit"), std::string::npos);
}

TEST(DotTest, ContainsWrEdges) {
  std::string Dot = renderDot(makeSample());
  EXPECT_NE(Dot.find("wr(x0)"), std::string::npos);
  EXPECT_NE(Dot.find("wr(x1)"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
}

TEST(DotTest, ContainsImmediateSoEdgesOnly) {
  // Session 0 has two transactions: one so edge between them; the init
  // edges are omitted by default.
  std::string Dot = renderDot(makeSample());
  EXPECT_NE(Dot.find("label=\"so\""), std::string::npos);
  EXPECT_EQ(Dot.find("\"init/0\" -> \"t0.0/0\""), std::string::npos);
}

TEST(DotTest, InitEdgesWhenRequested) {
  DotOptions Options;
  Options.OmitInitEdges = false;
  std::string Dot = renderDot(makeSample(), Options);
  EXPECT_NE(Dot.find("\"init/0\" -> \"t0.0/0\""), std::string::npos);
}

TEST(DotTest, UsesVarNameResolver) {
  VarNameFn Names = [](VarId V) {
    return V == X ? std::string("balance") : std::string("audit");
  };
  DotOptions Options;
  Options.VarNames = &Names;
  std::string Dot = renderDot(makeSample(), Options);
  EXPECT_NE(Dot.find("write(balance,1)"), std::string::npos);
  EXPECT_NE(Dot.find("wr(audit)"), std::string::npos);
  EXPECT_EQ(Dot.find("x0"), std::string::npos);
}

TEST(DotTest, AbortedTransactionRendered) {
  History H = LitmusBuilder(1).txn(0, 0).w(X, 1).abort().build();
  std::string Dot = renderDot(H);
  EXPECT_NE(Dot.find("abort"), std::string::npos);
}
