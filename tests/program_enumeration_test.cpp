//===- tests/program_enumeration_test.cpp - Exhaustive tiny programs ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest correctness battery: enumerate EVERY program of a tiny
/// grammar — two single-transaction sessions, bodies of up to two
/// operations drawn from {read(x), read(y), write(x), write(y)} — and
/// check the explorer against the reference enumeration on all of them,
/// for each causally-extensible base level and for the SER filter. This
/// sweeps all read/write conflict patterns systematically rather than
/// sampling them.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include "consistency/ConsistencyChecker.h"
#include <gtest/gtest.h>

#include <set>

using namespace txdpor;

namespace {

enum class Op : uint8_t { ReadX, ReadY, WriteX, WriteY };

void appendOp(ProgramBuilder::TxnHandle &T, Op O, VarId X, VarId Y,
              Value &NextValue, unsigned &ReadCounter) {
  switch (O) {
  case Op::ReadX:
    T.read("r" + std::to_string(ReadCounter++), X);
    break;
  case Op::ReadY:
    T.read("r" + std::to_string(ReadCounter++), Y);
    break;
  case Op::WriteX:
    T.write(X, NextValue++);
    break;
  case Op::WriteY:
    T.write(Y, NextValue++);
    break;
  }
}

/// All op sequences of length 1 or 2.
std::vector<std::vector<Op>> allBodies() {
  const Op Ops[] = {Op::ReadX, Op::ReadY, Op::WriteX, Op::WriteY};
  std::vector<std::vector<Op>> Bodies;
  for (Op A : Ops)
    Bodies.push_back({A});
  for (Op A : Ops)
    for (Op B : Ops)
      Bodies.push_back({A, B});
  return Bodies;
}

Program makeProgram(const std::vector<Op> &Body0,
                    const std::vector<Op> &Body1) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  Value NextValue = 1;
  {
    auto T = B.beginTxn(0);
    unsigned Reads = 0;
    for (Op O : Body0)
      appendOp(T, O, X, Y, NextValue, Reads);
  }
  {
    auto T = B.beginTxn(1);
    unsigned Reads = 0;
    for (Op O : Body1)
      appendOp(T, O, X, Y, NextValue, Reads);
  }
  return B.build();
}

std::set<std::string> keySet(const std::vector<History> &Hs) {
  std::set<std::string> Keys;
  for (const History &H : Hs)
    Keys.insert(H.canonicalKey());
  return Keys;
}

} // namespace

class ProgramEnumerationTest
    : public ::testing::TestWithParam<IsolationLevel> {};

TEST_P(ProgramEnumerationTest, AllTinyProgramsMatchReference) {
  IsolationLevel Base = GetParam();
  std::vector<std::vector<Op>> Bodies = allBodies();
  unsigned Checked = 0;
  for (const auto &Body0 : Bodies) {
    for (const auto &Body1 : Bodies) {
      Program P = makeProgram(Body0, Body1);
      auto Explored = enumerateHistories(P, ExplorerConfig::exploreCE(Base));
      auto Reference = enumerateReference(P, Base);
      ASSERT_EQ(keySet(Explored.Histories).size(),
                Explored.Histories.size())
          << "duplicates:\n"
          << P.str();
      ASSERT_EQ(keySet(Explored.Histories), keySet(Reference.Histories))
          << "set mismatch under " << isolationLevelName(Base) << ":\n"
          << P.str();
      ASSERT_EQ(Explored.Stats.BlockedReads, 0u) << P.str();
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, Bodies.size() * Bodies.size());
}

INSTANTIATE_TEST_SUITE_P(Bases, ProgramEnumerationTest,
                         ::testing::Values(IsolationLevel::Trivial,
                                           IsolationLevel::ReadCommitted,
                                           IsolationLevel::ReadAtomic,
                                           IsolationLevel::CausalConsistency),
                         [](const auto &Info) {
                           return std::string(
                               isolationLevelName(Info.param));
                         });

TEST(ProgramEnumerationTest3Sessions, SingleOpBodiesAllCombinations) {
  // Three single-operation sessions: 4³ = 64 programs. Three sessions
  // exercise multi-swap chains the two-session battery cannot reach.
  const Op Ops[] = {Op::ReadX, Op::ReadY, Op::WriteX, Op::WriteY};
  for (Op A : Ops) {
    for (Op Bo : Ops) {
      for (Op C : Ops) {
        ProgramBuilder B;
        VarId X = B.var("x");
        VarId Y = B.var("y");
        Value NextValue = 1;
        Op Bodies[] = {A, Bo, C};
        for (unsigned S = 0; S != 3; ++S) {
          auto T = B.beginTxn(S);
          unsigned Reads = 0;
          appendOp(T, Bodies[S], X, Y, NextValue, Reads);
        }
        Program P = B.build();
        for (IsolationLevel Base : {IsolationLevel::ReadCommitted,
                                    IsolationLevel::CausalConsistency}) {
          auto Explored =
              enumerateHistories(P, ExplorerConfig::exploreCE(Base));
          auto Reference = enumerateReference(P, Base);
          ASSERT_EQ(keySet(Explored.Histories).size(),
                    Explored.Histories.size())
              << P.str();
          ASSERT_EQ(keySet(Explored.Histories),
                    keySet(Reference.Histories))
              << isolationLevelName(Base) << "\n"
              << P.str();
        }
      }
    }
  }
}

TEST(ProgramEnumerationFilterTest, SerFilterOnAllTinyPrograms) {
  std::vector<std::vector<Op>> Bodies = allBodies();
  for (const auto &Body0 : Bodies) {
    for (const auto &Body1 : Bodies) {
      Program P = makeProgram(Body0, Body1);
      auto Explored = enumerateHistories(
          P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                           IsolationLevel::Serializability));
      auto Reference =
          enumerateReference(P, IsolationLevel::Serializability);
      ASSERT_EQ(keySet(Explored.Histories), keySet(Reference.Histories))
          << P.str();
      // Every output must carry a checkable SER certificate.
      for (const History &H : Explored.Histories)
        ASSERT_TRUE(isConsistent(H, IsolationLevel::Serializability));
    }
  }
}
