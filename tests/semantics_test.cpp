//===- tests/semantics_test.cpp - Operational semantics tests -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "semantics/Executor.h"

#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {

/// begin; a := read(x); if (a == 3) write(y, 1); commit  — the left
/// transaction of the paper's Fig. 8 program.
Program makeFig8LeftProgram(VarId &X, VarId &Y) {
  ProgramBuilder B;
  X = B.var("x");
  Y = B.var("y");
  auto T = B.beginTxn(0);
  T.read("a", X);
  T.write(Y, 1, eq(T.local("a"), 3));
  return B.build();
}

} // namespace

TEST(ExecutorTest, AdvanceStopsAtRead) {
  VarId X, Y;
  Program P = makeFig8LeftProgram(X, Y);
  const Transaction &Code = P.txn({0, 0});
  TxnCursor Cur = TxnCursor::fresh(Code);
  DbOp Op = advanceToDbOp(Code, Cur);
  EXPECT_EQ(Op.Kind, DbOp::Kind::Read);
  EXPECT_EQ(Op.Var, X);
}

TEST(ExecutorTest, GuardTrueEmitsWrite) {
  VarId X, Y;
  Program P = makeFig8LeftProgram(X, Y);
  const Transaction &Code = P.txn({0, 0});
  TxnCursor Cur = TxnCursor::fresh(Code);
  advanceToDbOp(Code, Cur);
  applyRead(Code, Cur, 3); // a == 3 enables the guarded write.
  DbOp Op = advanceToDbOp(Code, Cur);
  EXPECT_EQ(Op.Kind, DbOp::Kind::Write);
  EXPECT_EQ(Op.Var, Y);
  EXPECT_EQ(Op.Val, 1);
}

TEST(ExecutorTest, GuardFalseSkipsToCommit) {
  VarId X, Y;
  Program P = makeFig8LeftProgram(X, Y);
  const Transaction &Code = P.txn({0, 0});
  TxnCursor Cur = TxnCursor::fresh(Code);
  advanceToDbOp(Code, Cur);
  applyRead(Code, Cur, 0); // Guard false: the write is skipped.
  DbOp Op = advanceToDbOp(Code, Cur);
  EXPECT_EQ(Op.Kind, DbOp::Kind::Commit);
}

TEST(ExecutorTest, AssignsRunAsLocalSteps) {
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T = B.beginTxn(0);
  T.assign("a", 2);
  T.assign("b", T.local("a") * 10);
  T.write(X, T.local("b") + 1);
  Program P = B.build();
  const Transaction &Code = P.txn({0, 0});
  TxnCursor Cur = TxnCursor::fresh(Code);
  DbOp Op = advanceToDbOp(Code, Cur);
  EXPECT_EQ(Op.Kind, DbOp::Kind::Write);
  EXPECT_EQ(Op.Val, 21);
  EXPECT_EQ(Cur.Locals[*Code.findLocal("a")], 2);
  EXPECT_EQ(Cur.Locals[*Code.findLocal("b")], 20);
}

TEST(ExecutorTest, AbortStopsBody) {
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T = B.beginTxn(0);
  T.read("a", X);
  T.abort(eq(T.local("a"), 0));
  T.write(X, 7);
  Program P = B.build();
  const Transaction &Code = P.txn({0, 0});

  // a == 0: the abort fires before the write.
  TxnCursor Cur = TxnCursor::fresh(Code);
  advanceToDbOp(Code, Cur);
  applyRead(Code, Cur, 0);
  EXPECT_EQ(advanceToDbOp(Code, Cur).Kind, DbOp::Kind::Abort);

  // a != 0: the abort is skipped and the write happens.
  TxnCursor Cur2 = TxnCursor::fresh(Code);
  advanceToDbOp(Code, Cur2);
  applyRead(Code, Cur2, 5);
  EXPECT_EQ(advanceToDbOp(Code, Cur2).Kind, DbOp::Kind::Write);
}

TEST(ExecutorTest, LocalsStartAtZero) {
  ProgramBuilder B;
  VarId X = B.var("x");
  auto T = B.beginTxn(0);
  T.write(X, T.local("never_assigned") + 5);
  Program P = B.build();
  const Transaction &Code = P.txn({0, 0});
  TxnCursor Cur = TxnCursor::fresh(Code);
  EXPECT_EQ(advanceToDbOp(Code, Cur).Val, 5);
}

TEST(ReplayTest, ReplaysLogDeterministically) {
  // Program: t0.0 writes x=4; t1.0 reads x into a, writes y=a+1.
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  B.beginTxn(0).write(X, 4);
  auto T = B.beginTxn(1);
  T.read("a", X);
  T.write(Y, T.local("a") + 1);
  Program P = B.build();

  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 4).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(Y, 5).commit()
                  .build();
  TxnCursor Cur = replayCursor(P, H, 2);
  EXPECT_TRUE(Cur.Finished);
  EXPECT_EQ(Cur.Locals[*P.txn({1, 0}).findLocal("a")], 4);
}

TEST(ReplayTest, PartialLogYieldsResumableCursor) {
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T = B.beginTxn(0);
  T.read("a", X);
  T.write(Y, T.local("a") * 2);
  Program P = B.build();

  // Only the read happened so far (pending log).
  History H = History::makeInitial(2);
  unsigned Idx = H.beginTxn(uid(0, 0));
  H.appendEvent(Idx, Event::makeRead(X));
  H.setWriter(Idx, 1, TxnUid::init());

  TxnCursor Cur = replayCursor(P, H, Idx);
  EXPECT_FALSE(Cur.Finished);
  DbOp Op = advanceToDbOp(P.txn({0, 0}), Cur);
  EXPECT_EQ(Op.Kind, DbOp::Kind::Write);
  EXPECT_EQ(Op.Val, 0) << "read from init must yield 0";
}

TEST(ReplayTest, ReplayFollowsGuardsFromReadValues) {
  // Fig. 11 flavor: abort iff a == 0.
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto T = B.beginTxn(0);
  T.read("a", X);
  T.abort(eq(T.local("a"), 0));
  T.write(Y, 1);
  B.beginTxn(1).write(X, 4);
  Program P = B.build();

  // Branch 1: read from init (a == 0) then abort.
  History HAbort = LitmusBuilder(2)
                       .txn(0, 0).rInit(X).abort()
                       .build();
  EXPECT_TRUE(replayCursor(P, HAbort, 1).Finished);

  // Branch 2: read from t1.0 (a == 4), abort skipped, write y.
  History HWrite = LitmusBuilder(2)
                       .txn(1, 0).w(X, 4).commit()
                       .txn(0, 0).r(X, uid(1, 0)).w(Y, 1).commit()
                       .build();
  TxnCursor Cur = replayCursor(P, HWrite, 2);
  EXPECT_TRUE(Cur.Finished);
}

TEST(FinalStatesTest, ExposesLocals) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 4);
  auto T = B.beginTxn(1);
  T.read("a", X);
  Program P = B.build();

  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 4).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  FinalStates States = computeFinalStates(P, H);
  EXPECT_TRUE(States.ran(0, 0));
  EXPECT_TRUE(States.ran(1, 0));
  EXPECT_EQ(States.local(1, 0, "a"), 4);
}

TEST(FinalStatesTest, ReplayAllCursors) {
  ProgramBuilder B;
  VarId X = B.var("x");
  B.beginTxn(0).write(X, 4);
  auto T = B.beginTxn(1);
  T.read("a", X);
  Program P = B.build();
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 4).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  CursorMap Cursors = replayAllCursors(P, H);
  EXPECT_EQ(Cursors.size(), 2u);
  EXPECT_TRUE(Cursors.at(uid(0, 0).packed()).Finished);
  EXPECT_TRUE(Cursors.at(uid(1, 0).packed()).Finished);
}
