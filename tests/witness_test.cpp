//===- tests/witness_test.cpp - Commit-order certificate tests ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/Witness.h"

#include "consistency/ConsistencyChecker.h"
#include "TestUtil.h"
#include <gtest/gtest.h>

using namespace txdpor;
using namespace txdpor::test;

namespace {
constexpr VarId X = 0;
constexpr VarId Y = 1;
} // namespace

TEST(WitnessTest, SerialChainCertificates) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit()
                  .txn(2, 0).r(X, uid(1, 0)).commit()
                  .build();
  for (IsolationLevel Level : AllIsolationLevels) {
    auto Order = findCommitOrder(H, Level);
    ASSERT_TRUE(Order.has_value()) << isolationLevelName(Level);
    EXPECT_TRUE(validateCommitOrder(H, Level, *Order));
  }
}

TEST(WitnessTest, NoneForViolations) {
  // Fig. 3 violates CC and everything stronger.
  History H = LitmusBuilder(2)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).w(X, 2).commit()
                  .txn(3, 0).r(X, uid(1, 0)).w(Y, 1).commit()
                  .txn(2, 0).r(X, uid(0, 0)).r(Y, uid(3, 0)).commit()
                  .build();
  for (IsolationLevel Level :
       {IsolationLevel::CausalConsistency, IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability})
    EXPECT_FALSE(findCommitOrder(H, Level).has_value())
        << isolationLevelName(Level);
  // But RA admits it — with a checkable certificate.
  auto Order = findCommitOrder(H, IsolationLevel::ReadAtomic);
  ASSERT_TRUE(Order.has_value());
  EXPECT_TRUE(validateCommitOrder(H, IsolationLevel::ReadAtomic, *Order));
}

TEST(WitnessTest, WriteSkewSiCertificate) {
  History H = LitmusBuilder(2)
                  .txn(0, 0).r(X, TxnUid::init()).w(Y, 1).commit()
                  .txn(1, 0).r(Y, TxnUid::init()).w(X, 1).commit()
                  .build();
  auto Si = findCommitOrder(H, IsolationLevel::SnapshotIsolation);
  ASSERT_TRUE(Si.has_value());
  EXPECT_TRUE(
      validateCommitOrder(H, IsolationLevel::SnapshotIsolation, *Si));
  EXPECT_FALSE(
      findCommitOrder(H, IsolationLevel::Serializability).has_value());
}

TEST(WitnessTest, ValidateRejectsBadCertificates) {
  History H = LitmusBuilder(1)
                  .txn(0, 0).w(X, 1).commit()
                  .txn(1, 0).r(X, uid(0, 0)).commit()
                  .build();
  // Not a permutation.
  EXPECT_FALSE(validateCommitOrder(H, IsolationLevel::Trivial, {0, 1}));
  EXPECT_FALSE(validateCommitOrder(H, IsolationLevel::Trivial, {0, 1, 1}));
  // Violates wr ⊆ co (reader before its writer).
  EXPECT_FALSE(validateCommitOrder(H, IsolationLevel::Trivial, {0, 2, 1}));
  // Violates so ⊆ co (init last).
  EXPECT_FALSE(validateCommitOrder(H, IsolationLevel::Trivial, {1, 2, 0}));
  // The good one.
  EXPECT_TRUE(validateCommitOrder(H, IsolationLevel::Trivial, {0, 1, 2}));
}

TEST(WitnessTest, AgreesWithCheckerOnRandomHistories) {
  Rng R(31415);
  RandomHistorySpec Spec;
  Spec.NumSessions = 2;
  Spec.TxnsPerSession = 2;
  Spec.NumVars = 2;
  for (unsigned Iter = 0; Iter != 60; ++Iter) {
    History H = makeRandomHistory(R, Spec);
    for (IsolationLevel Level : AllIsolationLevels) {
      auto Order = findCommitOrder(H, Level);
      EXPECT_EQ(Order.has_value(), isConsistent(H, Level))
          << isolationLevelName(Level) << "\n"
          << H.str();
      if (Order)
        EXPECT_TRUE(validateCommitOrder(H, Level, *Order))
            << isolationLevelName(Level) << "\n"
            << H.str();
    }
  }
}

TEST(WitnessTest, CommitOrderRelationShape) {
  Relation Co = commitOrderRelation(3, {2, 0, 1});
  EXPECT_TRUE(Co.get(2, 0));
  EXPECT_TRUE(Co.get(2, 1));
  EXPECT_TRUE(Co.get(0, 1));
  EXPECT_FALSE(Co.get(1, 0));
  EXPECT_TRUE(Co.isTotalOrderCandidate());
  EXPECT_TRUE(Co.isAcyclic());
}
