#!/usr/bin/env bash
#===- tests/cli_smoke.sh - CLI argument-handling smoke test --------------===#
#
# Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
# Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
#
# Asserts the CLI's checked numeric option parsing: malformed, negative
# and out-of-range values must exit non-zero with a diagnostic on stderr
# (the pre-fix std::atoi path silently turned "--sessions abc" into 0 and
# wrapped "--sessions -1" to ~4x10^9), and the documented good invocations
# must keep exiting zero. Registered with ctest as cli_args_smoke; run
# manually as: tests/cli_smoke.sh path/to/txdpor-cli
#
#===----------------------------------------------------------------------===#

set -u

CLI="${1:?usage: cli_smoke.sh path/to/txdpor-cli}"
failures=0

# expect_reject <stderr-pattern> <args...> — the command must exit
# non-zero and print a matching diagnostic on stderr.
expect_reject() {
  local pattern="$1"
  shift
  local stderr
  stderr="$("$CLI" "$@" 2>&1 >/dev/null)"
  local status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL: '$CLI $*' exited 0, expected a rejection" >&2
    failures=$((failures + 1))
  elif ! printf '%s' "$stderr" | grep -q "$pattern"; then
    echo "FAIL: '$CLI $*' stderr lacks /$pattern/: $stderr" >&2
    failures=$((failures + 1))
  fi
}

# expect_accept <args...> — the command must exit zero.
expect_accept() {
  if ! "$CLI" "$@" >/dev/null 2>&1; then
    echo "FAIL: '$CLI $*' exited non-zero, expected success" >&2
    failures=$((failures + 1))
  fi
}

# Malformed / negative numerics, both --opt=value and --opt value forms.
expect_reject "expects a non-negative integer" --sessions=abc
expect_reject "expects a non-negative integer" --sessions abc
expect_reject "expects a non-negative integer" --sessions=-1
expect_reject "expects a non-negative integer" --seed " -1"
expect_reject "expects a non-negative integer" --seed "+5"
expect_reject "does not take a value" --minimize=off
expect_reject "must be non-negative" --budget-ms=-5
expect_reject "must be non-negative" --budget-ms -5
expect_reject "expects an integer" --budget-ms=oops
expect_reject "expects a non-negative integer" --txns=1x
expect_reject "expects a non-negative integer" --seed=-7
expect_reject "expects a non-negative integer" --walks=many
expect_reject "expects a non-negative integer" --threads=-2
expect_reject "needs a value" --sessions
expect_reject "unknown option" --no-such-flag

# Fuzz-verb numerics go through the same checked path.
expect_reject "expects a non-negative integer" fuzz --iters=abc
expect_reject "must be one of true, RC, RA, CC" fuzz --levels S0=SI
expect_reject "expects a non-negative integer" fuzz --seed=-1
expect_reject "must be non-negative" fuzz --time-budget=-9
expect_reject "up to 100" fuzz --history-percent=101

# Dedup flag: bad modes are rejected, the baseline-explorer combinations
# are refused (dedup lives in the swapping engine), good forms accepted.
expect_reject "must be one of off, exact, symmetry" --dedup=bogus
expect_reject "needs the swapping explorer" --dedup --dfs --sessions 2
expect_reject "needs the swapping explorer" --dedup=exact --walks 8 \
  --sessions 2
expect_accept --app identical --sessions 2 --txns 1 --dedup
expect_accept --app identical --sessions 2 --txns 1 --dedup=exact
expect_accept --app identical --sessions 2 --txns 1 --dedup=symmetry
expect_accept --app identical --sessions 2 --txns 1 --dedup=off --dfs

# Level handling: --base restrictions, --levels spec validation.
expect_reject "unknown isolation level" --base=XX
expect_reject "must be one of true, RC, RA, CC" --base=SER
expect_reject "must be one of true, RC, RA, CC" --levels S0=SER
expect_reject "bad --levels entry" --levels S0-CC
expect_reject "names session S9" --sessions 2 --levels S9=RC
expect_reject "weaker than --filter" --levels S0=CC --filter RC --sessions 2

# Good invocations stay good (uniform, mixed, = and space forms).
expect_accept --app tpcc --sessions 2 --txns 1 --base CC
expect_accept --app=tpcc --sessions=2 --txns=1 --base=RC --budget-ms=5000
expect_accept --app tpcc --sessions 2 --txns 2 --levels S0=CC,S1=RC
expect_accept --app tpcc --sessions 2 --txns 2 --levels CC,RC --threads 2
expect_accept --app twitter --sessions 2 --txns 2 --mixed-workload

# Tracing flags: bad output paths and category specs are rejected up
# front (before the run burns its budget); --trace-categories is only
# meaningful with --trace.
expect_reject "cannot open" --sessions 2 --txns 1 --trace=/no/such/dir/t.json
expect_reject "unknown trace category" \
  --sessions 2 --txns 1 --trace=/tmp/cli_smoke_trace.$$.json \
  --trace-categories=explore,bogus
expect_reject "requires --trace" --sessions 2 --txns 1 --trace-categories=swap
expect_reject "unknown trace category" fuzz --iters 1 \
  --trace=/tmp/cli_smoke_trace.$$.json --trace-categories=fuzz,nope
expect_reject "cannot open" fuzz --iters 1 --trace=/no/such/dir/t.json

# A traced run must produce a non-empty JSON document (full validation
# lives in tools/check_trace.py and the TraceTest suite); a category
# filter that records nothing must still yield a valid file.
trace_out="/tmp/cli_smoke_trace.$$.json"
trap 'rm -f "$trace_out"' EXIT
for categories in "" "--trace-categories=fuzz"; do
  rm -f "$trace_out"
  # shellcheck disable=SC2086  # $categories is intentionally word-split
  expect_accept --app tpcc --sessions 2 --txns 2 --threads 2 \
    --trace="$trace_out" $categories
  if [ ! -s "$trace_out" ]; then
    echo "FAIL: --trace $categories left '$trace_out' missing/empty" >&2
    failures=$((failures + 1))
  elif ! grep -q '"traceEvents"' "$trace_out"; then
    echo "FAIL: '$trace_out' lacks a traceEvents array" >&2
    failures=$((failures + 1))
  fi
done

# expect_exit <code> <args...> — the command must exit with exactly
# <code> (the check-trace verdict contract: 0 consistent, 1 malformed,
# 2 violation, 3 undecided).
expect_exit() {
  local want="$1"
  shift
  "$CLI" "$@" >/dev/null 2>&1
  local status=$?
  if [ "$status" -ne "$want" ]; then
    echo "FAIL: '$CLI $*' exited $status, expected $want" >&2
    failures=$((failures + 1))
  fi
}

# Verb dispatch: unknown verbs and unreadable inputs are usage errors.
expect_reject "unknown verb" no-such-verb
expect_reject "cannot open" check-trace /no/such/file.jsonl
expect_reject "cannot open" gen-trace --out /no/such/dir/trace.jsonl
expect_reject "expects a non-negative integer" check-trace --window=abc

# The check-trace exit-code contract over the golden corpus.
traces="$(cd "$(dirname "$0")" && pwd)/traces"
expect_reject "prefix-closed causally-extensible" \
  check-trace "$traces/clean_tiny.litmus" --base SER
expect_exit 0 check-trace "$traces/clean_tiny.litmus" --base CC
expect_exit 2 check-trace "$traces/read_skew_rc.litmus" --base RC
expect_exit 2 check-trace "$traces/mixed_rc_cc.litmus"
expect_exit 0 check-trace "$traces/mixed_rc_cc.litmus" --base RC
expect_exit 3 check-trace "$traces/stale_read.litmus" --base CC --window 4
expect_exit 1 check-trace "$traces/malformed/truncated.jsonl"
expect_exit 1 check-trace "$traces/malformed/unknown_session.jsonl"
expect_exit 1 check-trace "$traces/malformed/unknown_writer.jsonl"
expect_exit 1 check-trace "$traces/malformed/duplicate_commit.jsonl"

# gen-trace pipes into check-trace: clean stays clean under a small
# window, an injected anomaly exits 2, and the --repro trace is itself
# a valid check-trace input that reproduces the violation.
pipe_out="/tmp/cli_smoke_pipe.$$"
repro_out="/tmp/cli_smoke_repro.$$.litmus"
trap 'rm -f "$trace_out" "$pipe_out" "$repro_out"' EXIT
"$CLI" gen-trace --events 2000 --seed 3 --out "$pipe_out" >/dev/null 2>&1
expect_exit 0 check-trace "$pipe_out" --base CC --window 16
"$CLI" gen-trace --events 2000 --seed 3 --anomaly-at 100 \
  --out "$pipe_out" >/dev/null 2>&1
expect_exit 2 check-trace "$pipe_out" --base RC --window 16
"$CLI" check-trace "$pipe_out" --base RC --window 16 \
  --repro "$repro_out" >/dev/null 2>&1
if [ ! -s "$repro_out" ]; then
  echo "FAIL: check-trace --repro left '$repro_out' missing/empty" >&2
  failures=$((failures + 1))
else
  expect_exit 2 check-trace "$repro_out" --base RC
fi

if [ "$failures" -ne 0 ]; then
  echo "cli_smoke: $failures assertion(s) failed" >&2
  exit 1
fi
echo "cli_smoke: all assertions passed"
