//===- tests/streaming_checker_test.cpp - Windowed online checking --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming trace checker against the golden corpus in
/// tests/traces/ — exact verdict pins per (file, assignment, window),
/// eviction and peak-window accounting, Explain stability across window
/// budgets — plus a randomized streaming-vs-full-history equivalence
/// property over generated traces.
///
//===----------------------------------------------------------------------===//

#include "consistency/StreamingChecker.h"

#include "consistency/ConsistencyChecker.h"
#include "consistency/Explain.h"
#include "trace_io/TraceGen.h"
#include "trace_io/TraceReader.h"
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace txdpor;

namespace {

std::string corpusPath(const std::string &Name) {
  return std::string(TXDPOR_SOURCE_DIR) + "/tests/traces/" + Name;
}

/// Outcome of streaming one whole trace file.
struct RunResult {
  StreamStatus Status = StreamStatus::Ok;
  StreamingStats Stats;
  std::string Diag;
  TxnUid AnomalyUid = TxnUid::init();
  /// Explain over the final window (meaningful after an Anomaly under a
  /// uniform assignment).
  std::string ExplainText;
};

/// Streams \p In to the end (or the first non-Ok status). A non-null
/// \p Base overrides the header assignment, as the CLI's --base does.
RunResult streamAll(std::istream &In, std::optional<IsolationLevel> Base,
                    unsigned Window) {
  trace_io::TraceReader Reader(In);
  EXPECT_TRUE(Reader.valid()) << Reader.error();

  StreamingOptions Opts;
  if (Base)
    Opts.Levels = LevelAssignment::uniform(*Base);
  else if (Reader.header().Levels)
    Opts.Levels = *Reader.header().Levels;
  else
    Opts.Levels = LevelAssignment::uniform(IsolationLevel::CausalConsistency);
  Opts.NumVars = Reader.header().NumVars;
  Opts.NumSessions = Reader.header().NumSessions;
  Opts.WindowBudget = Window;
  StreamingChecker Checker(Opts);

  RunResult R;
  TransactionLog Log{TxnUid::init()};
  for (;;) {
    trace_io::TraceReader::Next N = Reader.next(Log);
    if (N == trace_io::TraceReader::Next::End)
      break;
    EXPECT_NE(N, trace_io::TraceReader::Next::Error) << Reader.error();
    if (N == trace_io::TraceReader::Next::Error ||
        Checker.append(Log, &R.Diag) != StreamStatus::Ok)
      break;
  }
  R.Status = Checker.status();
  R.Stats = Checker.stats();
  R.AnomalyUid = Checker.anomalyTxn();
  if (R.Status == StreamStatus::Anomaly && !Opts.Levels.hasExplicit()) {
    ViolationExplanation E =
        explainViolation(Checker.window(), Opts.Levels.defaultLevel());
    if (!E.Consistent)
      R.ExplainText = E.Text;
  }
  return R;
}

RunResult streamFile(const std::string &Name,
                     std::optional<IsolationLevel> Base, unsigned Window) {
  std::ifstream In(corpusPath(Name));
  EXPECT_TRUE(In.is_open()) << "missing corpus file " << Name;
  return streamAll(In, Base, Window);
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden corpus verdicts
//===----------------------------------------------------------------------===//

TEST(StreamingCorpusTest, GoldenVerdicts) {
  using L = IsolationLevel;
  struct Pin {
    const char *File;
    std::optional<L> Base;
    unsigned Window;
    StreamStatus Expected;
  };
  const Pin Pins[] = {
      // Clean traces stay clean at every level and budget.
      {"clean_tiny.litmus", L::CausalConsistency, 0, StreamStatus::Ok},
      {"clean_tiny.litmus", L::ReadCommitted, 2, StreamStatus::Ok},
      {"aborted.jsonl", L::CausalConsistency, 8, StreamStatus::Ok},
      // Read skew closes a commit-order cycle already at RC.
      {"read_skew_rc.litmus", L::ReadCommitted, 0, StreamStatus::Anomaly},
      {"read_skew_rc.litmus", L::CausalConsistency, 0, StreamStatus::Anomaly},
      // Two-hop causality violation: CC-only.
      {"causality_cc.litmus", L::CausalConsistency, 0, StreamStatus::Anomaly},
      {"causality_cc.litmus", L::ReadAtomic, 0, StreamStatus::Ok},
      {"causality_cc.litmus", L::ReadCommitted, 0, StreamStatus::Ok},
      // Fractured read: RA-only (the init read precedes the fracture).
      {"fractured_ra.litmus", L::ReadAtomic, 0, StreamStatus::Anomaly},
      {"fractured_ra.litmus", L::CausalConsistency, 0, StreamStatus::Anomaly},
      {"fractured_ra.litmus", L::ReadCommitted, 0, StreamStatus::Ok},
      // SI/SER-class anomalies that the causally-extensible chain admits.
      {"lost_update.litmus", L::CausalConsistency, 0, StreamStatus::Ok},
      {"write_skew.litmus", L::CausalConsistency, 0, StreamStatus::Ok},
      // The generated long anomaly fires at RC even under a small budget.
      {"anomaly_long.jsonl", L::ReadCommitted, 16, StreamStatus::Anomaly},
  };
  for (const Pin &P : Pins) {
    RunResult R = streamFile(P.File, P.Base, P.Window);
    EXPECT_EQ(R.Status, P.Expected)
        << P.File << " base " << (P.Base ? isolationLevelName(*P.Base) : "-")
        << " window " << P.Window << ": " << R.Diag;
  }
}

TEST(StreamingCorpusTest, MixedHeaderAssignment) {
  // The header pins S1=CC over an RC default; only that makes the trace
  // anomalous. A uniform RC override admits it.
  RunResult Mixed = streamFile("mixed_rc_cc.litmus", std::nullopt, 0);
  EXPECT_EQ(Mixed.Status, StreamStatus::Anomaly) << Mixed.Diag;
  EXPECT_EQ(Mixed.AnomalyUid, (TxnUid{1, 0}));
  RunResult Uniform =
      streamFile("mixed_rc_cc.litmus", IsolationLevel::ReadCommitted, 0);
  EXPECT_EQ(Uniform.Status, StreamStatus::Ok) << Uniform.Diag;
}

TEST(StreamingCorpusTest, StaleReadRefusesOnlyUnderSmallWindow) {
  // Unbounded: consistent. Window 4: t0.0's superseded version leaves
  // the window before t2.0 reads it, and the checker refuses rather
  // than guessing — the third verdict of the streaming contract.
  RunResult Full = streamFile("stale_read.litmus",
                              IsolationLevel::CausalConsistency, 0);
  EXPECT_EQ(Full.Status, StreamStatus::Ok) << Full.Diag;
  EXPECT_EQ(Full.Stats.Evicted, 0u);
  RunResult Windowed = streamFile("stale_read.litmus",
                                  IsolationLevel::CausalConsistency, 4);
  EXPECT_EQ(Windowed.Status, StreamStatus::StaleRead) << Windowed.Diag;
  EXPECT_GT(Windowed.Stats.Evicted, 0u);
  EXPECT_NE(Windowed.Diag.find("t0.0"), std::string::npos)
      << "the refusal must name the evicted writer: " << Windowed.Diag;
}

TEST(StreamingCorpusTest, LongRunEvictionAccounting) {
  // 667 transactions through a 16-budget window: the fixpoint drains all
  // but the live frontier, and the peak stays within the hysteresis
  // allowance (2x budget for this friendly reads-latest trace).
  RunResult R =
      streamFile("long_run.jsonl", IsolationLevel::CausalConsistency, 16);
  EXPECT_EQ(R.Status, StreamStatus::Ok) << R.Diag;
  EXPECT_EQ(R.Stats.Txns, 667u);
  EXPECT_EQ(R.Stats.Events, 4002u);
  EXPECT_EQ(R.Stats.Evicted, 655u);
  EXPECT_LE(R.Stats.PeakWindow, 32u);
  EXPECT_GT(R.Stats.GcPasses, 0u);
}

TEST(StreamingCorpusTest, AnomalyExplainStableAcrossWindows) {
  // The same injected read skew must be reported at the same transaction
  // with a standalone Explain witness, whether or not the prefix was
  // garbage-collected on the way there.
  RunResult Full =
      streamFile("anomaly_long.jsonl", IsolationLevel::ReadCommitted, 0);
  RunResult Windowed =
      streamFile("anomaly_long.jsonl", IsolationLevel::ReadCommitted, 16);
  ASSERT_EQ(Full.Status, StreamStatus::Anomaly);
  ASSERT_EQ(Windowed.Status, StreamStatus::Anomaly);
  EXPECT_EQ(Full.AnomalyUid, Windowed.AnomalyUid);
  EXPECT_EQ(Full.Stats.Txns, Windowed.Stats.Txns);
  ASSERT_FALSE(Full.ExplainText.empty());
  ASSERT_FALSE(Windowed.ExplainText.empty());
  // Both witnesses derive a cycle through the anomalous transaction.
  std::string Uid = Windowed.AnomalyUid.str();
  EXPECT_NE(Full.ExplainText.find(Uid), std::string::npos);
  EXPECT_NE(Windowed.ExplainText.find(Uid), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bounded-window and equivalence properties
//===----------------------------------------------------------------------===//

namespace {

/// Replays generated transactions both into a trace-shaped vector and a
/// full History for the reference verdict.
struct GeneratedTrace {
  std::vector<TransactionLog> Txns;
  trace_io::TraceHeader Header;
  History Full = History::makeInitial(0);
};

GeneratedTrace generate(const trace_io::GenConfig &C) {
  GeneratedTrace G;
  G.Header = trace_io::generateTrace(
      C, [&](const TransactionLog &Log) { G.Txns.push_back(Log); });
  G.Full = History::makeInitial(G.Header.NumVars);
  for (const TransactionLog &Log : G.Txns) {
    unsigned Idx = G.Full.beginTxn(Log.uid());
    for (uint32_t P = 1, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      G.Full.appendEvent(Idx, Log.event(P));
      if (std::optional<TxnUid> W = Log.writerOf(P))
        G.Full.setWriter(Idx,
                         static_cast<uint32_t>(G.Full.txn(Idx).size()) - 1,
                         *W);
    }
  }
  return G;
}

StreamStatus streamTxns(const GeneratedTrace &G, IsolationLevel Level,
                        unsigned Window, StreamingStats *StatsOut = nullptr) {
  StreamingOptions Opts;
  Opts.Levels = LevelAssignment::uniform(Level);
  Opts.NumVars = G.Header.NumVars;
  Opts.NumSessions = G.Header.NumSessions;
  Opts.WindowBudget = Window;
  StreamingChecker Checker(Opts);
  std::string Diag;
  for (const TransactionLog &Log : G.Txns)
    if (Checker.append(Log, &Diag) != StreamStatus::Ok)
      break;
  if (StatsOut)
    *StatsOut = Checker.stats();
  return Checker.status();
}

} // namespace

TEST(StreamingEquivalenceTest, MatchesFullHistoryOnGeneratedTraces) {
  // The streaming contract, sampled: at every budget the verdict is the
  // full-history verdict or an explicit StaleRead refusal — and at
  // budget 0 (never evict) it is always the full-history verdict.
  const IsolationLevel Levels[] = {IsolationLevel::ReadCommitted,
                                   IsolationLevel::ReadAtomic,
                                   IsolationLevel::CausalConsistency};
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    trace_io::GenConfig C;
    C.Seed = Seed;
    C.Sessions = 3;
    C.Vars = 4;
    C.Events = 400;
    C.AbortPercent = 10;
    if (Seed % 3 == 0)
      C.AnomalyAtTxn = 20 + Seed;
    GeneratedTrace G = generate(C);
    for (IsolationLevel Level : Levels) {
      bool Expected = isConsistent(G.Full, Level);
      for (unsigned Window : {0u, 4u, 16u}) {
        StreamStatus S = streamTxns(G, Level, Window);
        if (Window == 0)
          ASSERT_NE(S, StreamStatus::StaleRead)
              << "seed " << Seed << ": refusal without eviction";
        if (S == StreamStatus::StaleRead)
          continue;
        ASSERT_NE(S, StreamStatus::Malformed) << "seed " << Seed;
        EXPECT_EQ(S == StreamStatus::Ok, Expected)
            << "seed " << Seed << " level " << isolationLevelName(Level)
            << " window " << Window;
      }
    }
  }
}

TEST(StreamingEquivalenceTest, InjectedAnomalyIsDefiniteAtEveryBudget) {
  // The generator's adjacency guarantee: the three-transaction read skew
  // stays inside the young-generation exemption, so even tiny budgets
  // report the definite anomaly, never a refusal.
  trace_io::GenConfig C;
  C.Seed = 9;
  C.Sessions = 4;
  C.Vars = 6;
  C.Events = 1500;
  C.AnomalyAtTxn = 120;
  GeneratedTrace G = generate(C);
  ASSERT_FALSE(isConsistent(G.Full, IsolationLevel::ReadCommitted));
  for (unsigned Window : {0u, 4u, 8u, 64u})
    EXPECT_EQ(streamTxns(G, IsolationLevel::ReadCommitted, Window),
              StreamStatus::Anomaly)
        << "window " << Window;
}

TEST(StreamingWindowTest, PeakWindowBoundedByBudget) {
  // The acceptance criterion of the subsystem: on a reads-latest trace
  // the live window never exceeds the configured budget by more than the
  // hysteresis allowance, however long the trace runs.
  trace_io::GenConfig C;
  C.Seed = 3;
  C.Sessions = 4;
  C.Vars = 8;
  C.Events = 30000;
  GeneratedTrace G = generate(C);
  StreamingStats Stats;
  ASSERT_EQ(streamTxns(G, IsolationLevel::CausalConsistency, 32, &Stats),
            StreamStatus::Ok);
  EXPECT_LE(Stats.PeakWindow, 64u);
  EXPECT_GT(Stats.Evicted, Stats.Txns / 2);
  EXPECT_GT(Stats.Txns, 4000u);
}
