//===- program/Program.h - Transactional programs (paper Fig. 1) ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded transactional language of Fig. 1: a program is a parallel
/// composition of sessions; a session is a sequence of transactions; a
/// transaction body is a sequence of instructions, each optionally guarded
/// by a boolean condition over local variables:
///
///   Instr ::= a := e | a := read(x) | write(x, e) | abort
///
/// Local variables are transaction-scoped (the operational semantics
/// resets the valuation at every transaction start, Appendix B /spawn) and
/// implicitly initialized to 0. Global variables are interned program-wide.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_PROGRAM_PROGRAM_H
#define TXDPOR_PROGRAM_PROGRAM_H

#include "consistency/IsolationLevel.h"
#include "program/Expr.h"

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace txdpor {

enum class InstrKind : uint8_t { Assign, Read, Write, Abort };

/// One (optionally guarded) instruction of a transaction body.
struct Instr {
  InstrKind Kind;
  /// Optional guard: the instruction executes only if the guard evaluates
  /// to non-zero (paper: if(φ(ā)){Instr}).
  ExprRef Guard;
  LocalId Target = 0; ///< Assign / Read destination.
  VarId Var = 0;      ///< Read / Write global variable.
  ExprRef Rhs;        ///< Assign / Write right-hand side.

  static Instr makeAssign(LocalId Target, ExprRef Rhs, ExprRef Guard = {}) {
    Instr I{InstrKind::Assign, std::move(Guard), Target, 0, std::move(Rhs)};
    return I;
  }
  static Instr makeRead(LocalId Target, VarId Var, ExprRef Guard = {}) {
    Instr I{InstrKind::Read, std::move(Guard), Target, Var, {}};
    return I;
  }
  static Instr makeWrite(VarId Var, ExprRef Rhs, ExprRef Guard = {}) {
    Instr I{InstrKind::Write, std::move(Guard), 0, Var, std::move(Rhs)};
    return I;
  }
  static Instr makeAbort(ExprRef Guard = {}) {
    Instr I{InstrKind::Abort, std::move(Guard), 0, 0, {}};
    return I;
  }
};

/// A transaction: named body with interned transaction-scoped locals.
class Transaction {
public:
  explicit Transaction(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  const std::vector<Instr> &body() const { return Body; }
  unsigned numLocals() const {
    return static_cast<unsigned>(LocalNames.size());
  }
  const std::string &localName(LocalId L) const {
    assert(L < LocalNames.size() && "local id out of range");
    return LocalNames[L];
  }
  /// Returns the id of local \p Name, if declared.
  std::optional<LocalId> findLocal(const std::string &Name) const;

  /// Interns a local name (idempotent) and returns its id.
  LocalId internLocal(const std::string &Name);

  void append(Instr I) { Body.push_back(std::move(I)); }

private:
  std::string Name;
  std::vector<Instr> Body;
  std::vector<std::string> LocalNames;
  std::unordered_map<std::string, LocalId> LocalIds;
};

/// A whole program: sessions of transactions plus the global-variable
/// table. Immutable once built (see ProgramBuilder).
class Program {
public:
  unsigned numSessions() const {
    return static_cast<unsigned>(Sessions.size());
  }
  unsigned numTxns(unsigned Session) const {
    assert(Session < Sessions.size() && "session out of range");
    return static_cast<unsigned>(Sessions[Session].size());
  }
  unsigned totalTxns() const;
  const Transaction &txn(TxnUid Uid) const {
    assert(!Uid.isInit() && "the initial transaction has no code");
    assert(Uid.Session < Sessions.size() &&
           Uid.Index < Sessions[Uid.Session].size() && "bad transaction uid");
    return Sessions[Uid.Session][Uid.Index];
  }

  unsigned numVars() const { return static_cast<unsigned>(VarNames.size()); }
  const std::string &varName(VarId V) const {
    assert(V < VarNames.size() && "variable id out of range");
    return VarNames[V];
  }
  std::optional<VarId> findVar(const std::string &Name) const;

  /// Name resolver suitable for History::str.
  VarNameFn varNameFn() const {
    return [this](VarId V) { return varName(V); };
  }

  /// All transaction uids in oracle order (§5.1): sessions ascending, and
  /// within a session by position. This fixed order is consistent with
  /// session order, as the oracle order must be.
  std::vector<TxnUid> oracleOrder() const;

  /// The workload's declared per-session isolation levels (mixed-level
  /// checking, arXiv 2505.18409). Defaults to a plain uniform-CC
  /// assignment with no explicit entries, which every explorer treats as
  /// "no declaration" — the run's base level comes from ExplorerConfig.
  /// An ExplorerConfig with its own explicit assignment overrides this.
  const LevelAssignment &levels() const { return Levels; }
  /// Re-tags the sessions' levels. Levels are workload *metadata*: they
  /// never affect the instruction sequence, so re-tagging a built program
  /// (the apps' mixed-workload variants do) keeps it semantically the
  /// same program checked against a different deployment.
  void setLevels(LevelAssignment L) { Levels = std::move(L); }

  /// Multi-line source-like rendering.
  std::string str() const;

private:
  friend class ProgramBuilder;
  std::vector<std::vector<Transaction>> Sessions;
  std::vector<std::string> VarNames;
  std::unordered_map<std::string, VarId> VarIds;
  LevelAssignment Levels;
};

/// Fluent builder for programs. Typical use:
/// \code
///   ProgramBuilder B;
///   VarId X = B.var("x");
///   auto &T = B.beginTxn(/*Session=*/0, "writer");
///   T.read("a", X);
///   T.write(X, T.local("a") + 1);
/// \endcode
class ProgramBuilder {
public:
  /// Interns a global variable.
  VarId var(const std::string &Name);

  /// Appends a new transaction to \p Session (sessions are created on
  /// demand) and returns a handle for adding instructions.
  class TxnHandle;
  TxnHandle beginTxn(unsigned Session, const std::string &Name = "");

  /// Declares \p Session to run at \p Level (see Program::levels()).
  ProgramBuilder &sessionLevel(unsigned Session, IsolationLevel Level) {
    Levels.set(Session, Level);
    return *this;
  }
  /// Sets the default level of the program's assignment.
  ProgramBuilder &defaultLevel(IsolationLevel Level) {
    Levels.setDefault(Level);
    return *this;
  }

  /// Finalizes and returns the program. The builder is left empty.
  Program build();

  /// Handle used to populate one transaction's body.
  class TxnHandle {
  public:
    /// Expression referring to local \p Name (interned on first use).
    ExprRef local(const std::string &Name) {
      return Expr::makeLocal(Txn->internLocal(Name));
    }

    TxnHandle &assign(const std::string &Local, ExprRef Rhs,
                      ExprRef Guard = {}) {
      Txn->append(Instr::makeAssign(Txn->internLocal(Local), std::move(Rhs),
                                    std::move(Guard)));
      return *this;
    }
    TxnHandle &read(const std::string &Local, VarId Var, ExprRef Guard = {}) {
      Txn->append(Instr::makeRead(Txn->internLocal(Local), Var,
                                  std::move(Guard)));
      return *this;
    }
    TxnHandle &write(VarId Var, ExprRef Rhs, ExprRef Guard = {}) {
      Txn->append(Instr::makeWrite(Var, std::move(Rhs), std::move(Guard)));
      return *this;
    }
    TxnHandle &abort(ExprRef Guard = {}) {
      Txn->append(Instr::makeAbort(std::move(Guard)));
      return *this;
    }

    /// Interns local \p Name and returns its id (the id of the n-th
    /// distinct name is n, in interning order).
    LocalId internLocal(const std::string &Name) {
      return Txn->internLocal(Name);
    }
    /// Appends a pre-built instruction verbatim. The instruction's
    /// LocalIds must refer to locals already interned on this handle —
    /// used by program rewriters (fuzz/Minimizer.h, fuzz/Repro.h) that
    /// re-intern a transaction's locals in their original order before
    /// copying its body.
    TxnHandle &append(Instr I) {
      Txn->append(std::move(I));
      return *this;
    }

  private:
    friend class ProgramBuilder;
    explicit TxnHandle(Transaction *Txn) : Txn(Txn) {}
    Transaction *Txn;
  };

private:
  // Transactions are kept in deques during building: TxnHandle holds a raw
  // pointer and deque::emplace_back never invalidates element addresses.
  std::vector<std::deque<Transaction>> Sessions;
  std::vector<std::string> VarNames;
  std::unordered_map<std::string, VarId> VarIds;
  LevelAssignment Levels;
};

} // namespace txdpor

#endif // TXDPOR_PROGRAM_PROGRAM_H
