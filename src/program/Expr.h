//===- program/Expr.h - Expressions over local variables ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expressions e over local variables (paper Fig. 1). The paper leaves
/// their syntax unspecified; we provide integer constants, local-variable
/// references, and the arithmetic / comparison / boolean / bitwise
/// operators the benchmark applications need (bitwise ops encode the "set"
/// variables used to model SQL tables, §7.2). Expressions are immutable
/// trees shared via reference-counted handles; the ExprRef wrapper carries
/// operator overloads so program bodies read naturally, e.g.
/// `T.local("a") + 1`.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_PROGRAM_EXPR_H
#define TXDPOR_PROGRAM_EXPR_H

#include "history/Event.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace txdpor {

/// Index of a local variable, interned per transaction.
using LocalId = uint32_t;

enum class ExprKind : uint8_t { Const, Local, Unary, Binary };
enum class UnaryOp : uint8_t { Not, Neg };
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  BitAnd,
  BitOr,
};

/// Resolves a LocalId to a printable name.
using LocalNameFn = std::function<std::string(LocalId)>;

/// An immutable expression tree node.
class Expr {
public:
  using NodeRef = std::shared_ptr<const Expr>;

  static NodeRef makeConst(Value V);
  static NodeRef makeLocal(LocalId L);
  static NodeRef makeUnary(UnaryOp Op, NodeRef Operand);
  static NodeRef makeBinary(BinaryOp Op, NodeRef Lhs, NodeRef Rhs);

  ExprKind kind() const { return Kind; }

  /// Structural accessors (each asserts the matching kind) — used by
  /// program rewriters and the fuzz litmus serializer to walk the tree.
  Value constVal() const {
    assert(Kind == ExprKind::Const && "not a constant");
    return ConstVal;
  }
  LocalId localId() const {
    assert(Kind == ExprKind::Local && "not a local reference");
    return Local;
  }
  UnaryOp unaryOp() const {
    assert(Kind == ExprKind::Unary && "not a unary expression");
    return UOp;
  }
  BinaryOp binaryOp() const {
    assert(Kind == ExprKind::Binary && "not a binary expression");
    return BOp;
  }
  /// Unary operand / binary left operand.
  const NodeRef &lhs() const {
    assert(Kind == ExprKind::Unary || Kind == ExprKind::Binary);
    return Lhs;
  }
  const NodeRef &rhs() const {
    assert(Kind == ExprKind::Binary && "not a binary expression");
    return Rhs;
  }

  /// Evaluates against a local-variable valuation. Booleans are 0/1.
  Value evaluate(const std::vector<Value> &Locals) const;

  /// The largest LocalId referenced, or -1 if none (used for validation).
  int64_t maxLocal() const;

  std::string str(const LocalNameFn *Names = nullptr) const;

private:
  Expr(ExprKind Kind) : Kind(Kind) {}

  ExprKind Kind;
  Value ConstVal = 0;
  LocalId Local = 0;
  UnaryOp UOp = UnaryOp::Not;
  BinaryOp BOp = BinaryOp::Add;
  NodeRef Lhs, Rhs;
};

/// Value-semantics handle for expressions with operator overloads.
/// Implicitly constructible from integer literals.
struct ExprRef {
  Expr::NodeRef Node;

  ExprRef() = default;
  ExprRef(Expr::NodeRef Node) : Node(std::move(Node)) {}
  ExprRef(Value V) : Node(Expr::makeConst(V)) {}
  ExprRef(int V) : Node(Expr::makeConst(V)) {}

  bool valid() const { return Node != nullptr; }
  Value evaluate(const std::vector<Value> &Locals) const {
    assert(Node && "evaluating an empty expression");
    return Node->evaluate(Locals);
  }
};

ExprRef operator+(ExprRef A, ExprRef B);
ExprRef operator-(ExprRef A, ExprRef B);
ExprRef operator*(ExprRef A, ExprRef B);
ExprRef operator-(ExprRef A);

/// Comparisons and boolean connectives are named functions: overloading
/// == / && on shared-pointer wrappers invites accidental pointer
/// comparisons and loses short-circuit expectations.
ExprRef eq(ExprRef A, ExprRef B);
ExprRef ne(ExprRef A, ExprRef B);
ExprRef lt(ExprRef A, ExprRef B);
ExprRef le(ExprRef A, ExprRef B);
ExprRef gt(ExprRef A, ExprRef B);
ExprRef ge(ExprRef A, ExprRef B);
ExprRef land(ExprRef A, ExprRef B);
ExprRef lor(ExprRef A, ExprRef B);
ExprRef lnot(ExprRef A);
ExprRef bitAnd(ExprRef A, ExprRef B);
ExprRef bitOr(ExprRef A, ExprRef B);

} // namespace txdpor

#endif // TXDPOR_PROGRAM_EXPR_H
