//===- program/Program.cpp - Transactional programs -----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"

#include <sstream>

using namespace txdpor;

std::optional<LocalId> Transaction::findLocal(const std::string &N) const {
  auto It = LocalIds.find(N);
  if (It == LocalIds.end())
    return std::nullopt;
  return It->second;
}

LocalId Transaction::internLocal(const std::string &N) {
  auto It = LocalIds.find(N);
  if (It != LocalIds.end())
    return It->second;
  LocalId Id = static_cast<LocalId>(LocalNames.size());
  LocalNames.push_back(N);
  LocalIds.emplace(N, Id);
  return Id;
}

unsigned Program::totalTxns() const {
  unsigned N = 0;
  for (const auto &Session : Sessions)
    N += static_cast<unsigned>(Session.size());
  return N;
}

std::optional<VarId> Program::findVar(const std::string &Name) const {
  auto It = VarIds.find(Name);
  if (It == VarIds.end())
    return std::nullopt;
  return It->second;
}

std::vector<TxnUid> Program::oracleOrder() const {
  std::vector<TxnUid> Order;
  for (uint32_t S = 0; S != Sessions.size(); ++S)
    for (uint32_t I = 0; I != Sessions[S].size(); ++I)
      Order.push_back({S, I});
  return Order;
}

std::string Program::str() const {
  std::ostringstream OS;
  for (uint32_t S = 0; S != Sessions.size(); ++S) {
    OS << "session " << S;
    if (Levels.hasExplicit())
      OS << " @" << isolationLevelName(Levels.levelFor(S));
    OS << ":\n";
    for (uint32_t T = 0; T != Sessions[S].size(); ++T) {
      const Transaction &Txn = Sessions[S][T];
      OS << "  begin";
      if (!Txn.name().empty())
        OS << "  // " << Txn.name();
      OS << '\n';
      LocalNameFn Locals = [&Txn](LocalId L) { return Txn.localName(L); };
      for (const Instr &I : Txn.body()) {
        OS << "    ";
        if (I.Guard.valid())
          OS << "if (" << I.Guard.Node->str(&Locals) << ") ";
        switch (I.Kind) {
        case InstrKind::Assign:
          OS << Txn.localName(I.Target) << " := "
             << I.Rhs.Node->str(&Locals);
          break;
        case InstrKind::Read:
          OS << Txn.localName(I.Target) << " := read(" << varName(I.Var)
             << ")";
          break;
        case InstrKind::Write:
          OS << "write(" << varName(I.Var) << ", " << I.Rhs.Node->str(&Locals)
             << ")";
          break;
        case InstrKind::Abort:
          OS << "abort";
          break;
        }
        OS << '\n';
      }
      OS << "  commit\n";
    }
  }
  return OS.str();
}

VarId ProgramBuilder::var(const std::string &Name) {
  auto It = VarIds.find(Name);
  if (It != VarIds.end())
    return It->second;
  VarId Id = static_cast<VarId>(VarNames.size());
  VarNames.push_back(Name);
  VarIds.emplace(Name, Id);
  return Id;
}

ProgramBuilder::TxnHandle ProgramBuilder::beginTxn(unsigned Session,
                                                   const std::string &Name) {
  if (Session >= Sessions.size())
    Sessions.resize(Session + 1);
  std::string TxnName = Name.empty()
                            ? ("t" + std::to_string(Session) + "." +
                               std::to_string(Sessions[Session].size()))
                            : Name;
  Sessions[Session].emplace_back(std::move(TxnName));
  return TxnHandle(&Sessions[Session].back());
}

Program ProgramBuilder::build() {
  Program Result;
  Result.VarNames = std::move(VarNames);
  Result.VarIds = std::move(VarIds);
  Result.Levels = std::move(Levels);
  Result.Sessions.reserve(Sessions.size());
  for (auto &Session : Sessions)
    Result.Sessions.emplace_back(
        std::make_move_iterator(Session.begin()),
        std::make_move_iterator(Session.end()));
  Sessions.clear();
  VarNames.clear();
  VarIds.clear();
  Levels = LevelAssignment();
  return Result;
}
