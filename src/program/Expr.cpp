//===- program/Expr.cpp - Expressions over local variables ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "program/Expr.h"

#include <algorithm>
#include <sstream>

using namespace txdpor;

Expr::NodeRef Expr::makeConst(Value V) {
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Const));
  Node->ConstVal = V;
  return Node;
}

Expr::NodeRef Expr::makeLocal(LocalId L) {
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Local));
  Node->Local = L;
  return Node;
}

Expr::NodeRef Expr::makeUnary(UnaryOp Op, NodeRef Operand) {
  assert(Operand && "unary operand must be non-null");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Unary));
  Node->UOp = Op;
  Node->Lhs = std::move(Operand);
  return Node;
}

Expr::NodeRef Expr::makeBinary(BinaryOp Op, NodeRef Lhs, NodeRef Rhs) {
  assert(Lhs && Rhs && "binary operands must be non-null");
  auto Node = std::shared_ptr<Expr>(new Expr(ExprKind::Binary));
  Node->BOp = Op;
  Node->Lhs = std::move(Lhs);
  Node->Rhs = std::move(Rhs);
  return Node;
}

Value Expr::evaluate(const std::vector<Value> &Locals) const {
  switch (Kind) {
  case ExprKind::Const:
    return ConstVal;
  case ExprKind::Local:
    assert(Local < Locals.size() && "local variable out of range");
    return Locals[Local];
  case ExprKind::Unary: {
    Value V = Lhs->evaluate(Locals);
    switch (UOp) {
    case UnaryOp::Not:
      return V == 0 ? 1 : 0;
    case UnaryOp::Neg:
      return -V;
    }
    return 0;
  }
  case ExprKind::Binary: {
    Value A = Lhs->evaluate(Locals);
    Value B = Rhs->evaluate(Locals);
    switch (BOp) {
    case BinaryOp::Add:
      return A + B;
    case BinaryOp::Sub:
      return A - B;
    case BinaryOp::Mul:
      return A * B;
    case BinaryOp::Eq:
      return A == B;
    case BinaryOp::Ne:
      return A != B;
    case BinaryOp::Lt:
      return A < B;
    case BinaryOp::Le:
      return A <= B;
    case BinaryOp::Gt:
      return A > B;
    case BinaryOp::Ge:
      return A >= B;
    case BinaryOp::And:
      return (A != 0 && B != 0) ? 1 : 0;
    case BinaryOp::Or:
      return (A != 0 || B != 0) ? 1 : 0;
    case BinaryOp::BitAnd:
      return A & B;
    case BinaryOp::BitOr:
      return A | B;
    }
    return 0;
  }
  }
  return 0;
}

int64_t Expr::maxLocal() const {
  switch (Kind) {
  case ExprKind::Const:
    return -1;
  case ExprKind::Local:
    return Local;
  case ExprKind::Unary:
    return Lhs->maxLocal();
  case ExprKind::Binary:
    return std::max(Lhs->maxLocal(), Rhs->maxLocal());
  }
  return -1;
}

static const char *binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  }
  return "?";
}

std::string Expr::str(const LocalNameFn *Names) const {
  std::ostringstream OS;
  switch (Kind) {
  case ExprKind::Const:
    OS << ConstVal;
    break;
  case ExprKind::Local:
    OS << (Names ? (*Names)(Local) : ("l" + std::to_string(Local)));
    break;
  case ExprKind::Unary:
    OS << (UOp == UnaryOp::Not ? "!" : "-") << "(" << Lhs->str(Names) << ")";
    break;
  case ExprKind::Binary:
    OS << "(" << Lhs->str(Names) << " " << binaryOpName(BOp) << " "
       << Rhs->str(Names) << ")";
    break;
  }
  return OS.str();
}

namespace txdpor {

ExprRef operator+(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Add, A.Node, B.Node);
}
ExprRef operator-(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Sub, A.Node, B.Node);
}
ExprRef operator*(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Mul, A.Node, B.Node);
}
ExprRef operator-(ExprRef A) { return Expr::makeUnary(UnaryOp::Neg, A.Node); }

ExprRef eq(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Eq, A.Node, B.Node);
}
ExprRef ne(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Ne, A.Node, B.Node);
}
ExprRef lt(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Lt, A.Node, B.Node);
}
ExprRef le(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Le, A.Node, B.Node);
}
ExprRef gt(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Gt, A.Node, B.Node);
}
ExprRef ge(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Ge, A.Node, B.Node);
}
ExprRef land(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::And, A.Node, B.Node);
}
ExprRef lor(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::Or, A.Node, B.Node);
}
ExprRef lnot(ExprRef A) { return Expr::makeUnary(UnaryOp::Not, A.Node); }
ExprRef bitAnd(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::BitAnd, A.Node, B.Node);
}
ExprRef bitOr(ExprRef A, ExprRef B) {
  return Expr::makeBinary(BinaryOp::BitOr, A.Node, B.Node);
}

} // namespace txdpor
