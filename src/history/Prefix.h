//===- history/Prefix.h - History prefixes (paper §3.1) -------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A prefix of a history keeps a po-prefix of each transaction log such
/// that the retained event set is (po ∪ so ∪ wr)*-downward closed
/// (paper §3.1, Fig. 4). Prefixes drive the definition of prefix-closed
/// isolation levels (Def. 3.1), which the tests verify for all five levels
/// (Theorem 3.2), and they are the shape of every history produced by Swap.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_PREFIX_H
#define TXDPOR_HISTORY_PREFIX_H

#include "history/History.h"

#include <functional>
#include <vector>

namespace txdpor {

/// A cut: how many leading events of each transaction log to keep,
/// indexed like the history's transactions.
using PrefixCut = std::vector<uint32_t>;

/// Returns true if keeping \p Cut events of each log yields a
/// (po ∪ so ∪ wr)*-downward-closed event set of \p H.
bool isDownwardClosed(const History &H, const PrefixCut &Cut);

/// Shrinks \p Cut in place to the largest downward-closed cut below it
/// (a monotone fixpoint; always terminates).
void closeDownward(const History &H, PrefixCut &Cut);

/// Builds the prefix history selected by \p Cut, which must be downward
/// closed. Logs cut to zero events are dropped entirely; block order is
/// preserved.
History takePrefix(const History &H, const PrefixCut &Cut);

/// Returns true if \p P is a prefix of \p H in the sense of §3.1.
bool isPrefixOf(const History &P, const History &H);

/// Greedy delta debugging over a history: repeatedly (1) drops one
/// non-initial transaction, or (2) truncates an event suffix carrying at
/// least one read/write — in both cases dragging readers and session
/// successors along via downward closure, so every candidate is a valid
/// prefix — as long as \p StillFails holds on the shrunk candidate.
/// \p StillFails must hold on \p H itself; the result is a locally-
/// minimal history on which it still holds. Shared by
/// consistency/Explain.h (minimizeViolation) and the fuzzer's
/// counterexample minimizer (fuzz/Minimizer.h).
History shrinkToCore(const History &H,
                     const std::function<bool(const History &)> &StillFails);

} // namespace txdpor

#endif // TXDPOR_HISTORY_PREFIX_H
