//===- history/Prefix.cpp - History prefixes (paper §3.1) -----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Prefix.h"

using namespace txdpor;

// The event-level relations so and wr extend to events through their
// transactions (§2.2.1): any retained event of B demands *all* events of
// every so-predecessor of B, and a retained external read demands all
// events up to and including the last write of its writer — since wr
// targets the writer's last write to the variable, we simply demand the
// writer be kept whole (its last write to the variable is its last event
// touching it, and po-closure inside the writer then keeps the rest; for
// simplicity and strictness we require the full log, which matches how the
// paper's figures treat wr-predecessors, e.g. Fig. 4c).
//
// Keeping the full writer log is sound: the writer's last write to the
// variable determines the read value, and any po-suffix of the writer
// beyond that write is forced anyway whenever the writer also serves reads
// of its other variables. It is also exactly what Swap produces (§5.2: the
// transaction t and all its (so ∪ wr)* predecessors are kept whole).

bool txdpor::isDownwardClosed(const History &H, const PrefixCut &Cut) {
  assert(Cut.size() == H.numTxns() && "cut arity must match history");
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    const TransactionLog &Log = H.txn(I);
    assert(Cut[I] <= Log.size() && "cut beyond log length");
    if (Cut[I] == 0)
      continue;
    // so-closure: all so-predecessors fully kept.
    for (unsigned J = 0; J != E; ++J)
      if (H.soLess(J, I) && Cut[J] != H.txn(J).size())
        return false;
    // wr-closure: writers of retained external reads fully kept.
    for (uint32_t P = 0; P != Cut[I]; ++P) {
      std::optional<TxnUid> W = Log.writerOf(P);
      if (!W)
        continue;
      std::optional<unsigned> WIdx = H.indexOf(*W);
      assert(WIdx && "wr writer missing from history");
      if (Cut[*WIdx] != H.txn(*WIdx).size())
        return false;
    }
  }
  return true;
}

void txdpor::closeDownward(const History &H, PrefixCut &Cut) {
  assert(Cut.size() == H.numTxns() && "cut arity must match history");
  // Shrink until fixpoint: a log that is required whole but is truncated
  // gets truncated to zero together with everything depending on it.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
      if (Cut[I] == 0)
        continue;
      const TransactionLog &Log = H.txn(I);
      bool Drop = false;
      for (unsigned J = 0, JE = H.numTxns(); J != JE && !Drop; ++J)
        if (H.soLess(J, I) && Cut[J] != H.txn(J).size())
          Drop = true;
      for (uint32_t P = 0; P != Cut[I] && !Drop; ++P) {
        std::optional<TxnUid> W = Log.writerOf(P);
        if (!W)
          continue;
        std::optional<unsigned> WIdx = H.indexOf(*W);
        if (Cut[*WIdx] != H.txn(*WIdx).size())
          Drop = true;
      }
      if (Drop) {
        Cut[I] = 0;
        Changed = true;
      }
    }
  }
  assert(isDownwardClosed(H, Cut) && "closeDownward failed to converge");
}

History txdpor::takePrefix(const History &H, const PrefixCut &Cut) {
  assert(isDownwardClosed(H, Cut) && "prefix cut must be downward closed");
  History Result;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    if (Cut[I] == 0)
      continue;
    Result.appendLog(H.txn(I).truncated(Cut[I]));
  }
  return Result;
}

bool txdpor::isPrefixOf(const History &P, const History &H) {
  PrefixCut Cut(H.numTxns(), 0);
  for (unsigned I = 0, E = P.numTxns(); I != E; ++I) {
    const TransactionLog &PLog = P.txn(I);
    std::optional<unsigned> HIdx = H.indexOf(PLog.uid());
    if (!HIdx)
      return false;
    const TransactionLog &HLog = H.txn(*HIdx);
    if (PLog.size() > HLog.size())
      return false;
    // The kept events (and their wr dependencies) must coincide.
    if (!(PLog == HLog.truncated(static_cast<uint32_t>(PLog.size()))))
      return false;
    Cut[*HIdx] = static_cast<uint32_t>(PLog.size());
  }
  return isDownwardClosed(H, Cut);
}

History txdpor::shrinkToCore(
    const History &H,
    const std::function<bool(const History &)> &StillFails) {
  assert(StillFails(H) && "nothing to shrink: the predicate must hold");
  History Current = H;

  auto FullCut = [](const History &Of) {
    PrefixCut Cut;
    for (unsigned J = 0, E = Of.numTxns(); J != E; ++J)
      Cut.push_back(static_cast<uint32_t>(Of.txn(J).size()));
    return Cut;
  };
  auto CountOps = [](const History &Of) {
    size_t Ops = 0;
    for (unsigned J = 0, E = Of.numTxns(); J != E; ++J) {
      const TransactionLog &Log = Of.txn(J);
      for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
           ++P)
        if (Log.event(P).isRead() || Log.event(P).isWrite())
          ++Ops;
    }
    return Ops;
  };
  /// Tries the downward closure of \p Cut; commits it into Current when
  /// it removes something (for \p RequireOpRemoval, at least one read or
  /// write — stripping only commit markers is not progress, it just
  /// leaves pending transactions in the repro) and the predicate still
  /// holds.
  auto TryCut = [&](PrefixCut Cut, bool RequireOpRemoval) {
    closeDownward(Current, Cut);
    History Candidate = takePrefix(Current, Cut);
    if (Candidate.numEvents() == Current.numEvents())
      return false; // Nothing was actually removed.
    if (RequireOpRemoval && CountOps(Candidate) == CountOps(Current))
      return false;
    if (!StillFails(Candidate))
      return false; // The removed events are part of the core.
    Current = std::move(Candidate);
    return true;
  };

  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    // Pass 1: drop whole non-init transactions (latest blocks first: they
    // have the fewest dependents). Dropping one transaction drags its
    // readers and session successors along via downward closure.
    for (unsigned I = Current.numTxns(); I-- > 1;) {
      PrefixCut Cut = FullCut(Current);
      Cut[I] = 0;
      if (TryCut(std::move(Cut), /*RequireOpRemoval=*/false)) {
        Shrunk = true;
        break;
      }
    }
    if (Shrunk)
      continue;
    // Pass 2: truncate event suffixes of surviving transactions (the cut
    // leaves the transaction pending, which the axioms treat like a
    // committed one, §2.2.1). Writers serving retained reads are
    // re-completed by the closure, so only genuinely unused suffixes go.
    for (unsigned I = Current.numTxns(); I-- > 1;) {
      for (uint32_t Len =
               static_cast<uint32_t>(Current.txn(I).size());
           Len-- > 1;) {
        PrefixCut Cut = FullCut(Current);
        Cut[I] = Len;
        if (TryCut(std::move(Cut), /*RequireOpRemoval=*/true)) {
          Shrunk = true;
          break;
        }
      }
      if (Shrunk)
        break;
    }
  }
  return Current;
}
