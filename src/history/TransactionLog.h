//===- history/TransactionLog.h - Per-transaction event sequences ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transaction log (paper §2.2.1) is an identifier plus a sequence of
/// events ordered by program order po. The first event is always begin; a
/// commit or abort, when present, is last. The log also stores, aligned
/// with the event vector, the writer transaction of every external read
/// (the restriction of the history's write-read relation to this log),
/// which makes copying and truncating histories trivial.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_TRANSACTIONLOG_H
#define TXDPOR_HISTORY_TRANSACTIONLOG_H

#include "history/Event.h"

#include <cassert>
#include <optional>
#include <vector>

namespace txdpor {

/// Completion status of a transaction log.
enum class TxnStatus : uint8_t { Pending, Committed, Aborted };

/// A transaction log: a po-ordered event sequence with a stable identifier.
class TransactionLog {
public:
  TransactionLog(TxnUid Uid) : Uid(Uid) {}

  TxnUid uid() const { return Uid; }
  bool isInit() const { return Uid.isInit(); }

  /// Events in program order. events()[0] is begin (for non-init logs).
  const std::vector<Event> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  const Event &event(uint32_t Pos) const {
    assert(Pos < Events.size() && "event position out of range");
    return Events[Pos];
  }

  TxnStatus status() const {
    if (Events.empty())
      return TxnStatus::Pending;
    switch (Events.back().Kind) {
    case EventKind::Commit:
      return TxnStatus::Committed;
    case EventKind::Abort:
      return TxnStatus::Aborted;
    default:
      return TxnStatus::Pending;
    }
  }
  bool isCommitted() const { return status() == TxnStatus::Committed; }
  bool isAborted() const { return status() == TxnStatus::Aborted; }
  bool isPending() const { return status() == TxnStatus::Pending; }

  /// Appends an event; commit/abort must stay maximal (paper §2.2.1).
  void append(const Event &E) {
    assert(status() == TxnStatus::Pending &&
           "cannot extend a complete transaction log");
    Events.push_back(E);
    Writers.push_back(std::nullopt);
  }

  /// Sets the write-read dependency of the read at \p Pos.
  void setWriter(uint32_t Pos, TxnUid Writer) {
    assert(Pos < Events.size() && Events[Pos].isRead() &&
           "writer can only be attached to a read event");
    Writers[Pos] = Writer;
  }

  /// Returns the writer transaction of the read at \p Pos, if assigned.
  std::optional<TxnUid> writerOf(uint32_t Pos) const {
    assert(Pos < Events.size() && "event position out of range");
    return Writers[Pos];
  }

  /// True if the event at \p Pos is an external read of its variable, i.e.
  /// a read not preceded in po by a write to the same variable (§2.2.1,
  /// reads(t)). Only external reads participate in the wr relation.
  bool isExternalRead(uint32_t Pos) const {
    const Event &E = event(Pos);
    if (!E.isRead())
      return false;
    for (uint32_t P = 0; P != Pos; ++P)
      if (Events[P].isWrite() && Events[P].Var == E.Var)
        return false;
    return true;
  }

  /// Positions of all external reads, ascending.
  std::vector<uint32_t> externalReads() const {
    std::vector<uint32_t> Result;
    for (uint32_t P = 0, E = static_cast<uint32_t>(Events.size()); P != E; ++P)
      if (isExternalRead(P))
        Result.push_back(P);
    return Result;
  }

  /// True if this log writes \p Var visibly (§2.2.1, writes(t)): it has a
  /// write to \p Var and does not contain an abort event.
  bool writesVar(VarId Var) const {
    if (isAborted())
      return false;
    for (const Event &E : Events)
      if (E.isWrite() && E.Var == Var)
        return true;
    return false;
  }

  /// All variables visibly written by this log, ascending and unique.
  std::vector<VarId> writtenVars() const;

  /// Value of the last po-write to \p Var, if any (ignores abort status;
  /// used both for visible writes and for same-transaction read-local).
  std::optional<Value> lastWriteValue(VarId Var) const {
    for (size_t P = Events.size(); P-- > 0;)
      if (Events[P].isWrite() && Events[P].Var == Var)
        return Events[P].Val;
    return std::nullopt;
  }

  /// Position of the last po-write to \p Var strictly before \p Before.
  std::optional<uint32_t> lastWriteBefore(VarId Var, uint32_t Before) const {
    for (uint32_t P = Before; P-- > 0;)
      if (Events[P].isWrite() && Events[P].Var == Var)
        return P;
    return std::nullopt;
  }

  /// Returns a copy truncated to the first \p Len events (a po-prefix).
  TransactionLog truncated(uint32_t Len) const {
    assert(Len <= Events.size() && "truncation beyond log length");
    TransactionLog Result(Uid);
    Result.Events.assign(Events.begin(), Events.begin() + Len);
    Result.Writers.assign(Writers.begin(), Writers.begin() + Len);
    return Result;
  }

  /// Structural equality: same uid, same events, same wr dependencies.
  bool operator==(const TransactionLog &O) const {
    return Uid == O.Uid && Events == O.Events && Writers == O.Writers;
  }
  bool operator!=(const TransactionLog &O) const { return !(*this == O); }

private:
  TxnUid Uid;
  std::vector<Event> Events;
  /// Writer transaction per event; engaged only for external reads with an
  /// assigned wr dependency.
  std::vector<std::optional<TxnUid>> Writers;
};

} // namespace txdpor

#endif // TXDPOR_HISTORY_TRANSACTIONLOG_H
