//===- history/Dot.cpp - Graphviz rendering of histories ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Dot.h"

#include <sstream>

using namespace txdpor;

namespace {

std::string varName(const DotOptions &Options, VarId V) {
  if (Options.VarNames)
    return (*Options.VarNames)(V);
  return "x" + std::to_string(V);
}

std::string nodeId(const TxnUid &Uid, uint32_t Pos) {
  return "\"" + Uid.str() + "/" + std::to_string(Pos) + "\"";
}

std::string eventLabel(const DotOptions &Options, const Event &E) {
  switch (E.Kind) {
  case EventKind::Begin:
    return "begin";
  case EventKind::Commit:
    return "commit";
  case EventKind::Abort:
    return "abort";
  case EventKind::Read:
    return "read(" + varName(Options, E.Var) + ")";
  case EventKind::Write:
    return "write(" + varName(Options, E.Var) + "," +
           std::to_string(E.Val) + ")";
  }
  return "?";
}

} // namespace

std::string txdpor::renderDot(const History &H, const DotOptions &Options) {
  std::ostringstream OS;
  OS << "digraph history {\n"
     << "  node [shape=plaintext, fontsize=11];\n"
     << "  rankdir=TB;\n";

  // One cluster per transaction, events chained by program order.
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    const TransactionLog &Log = H.txn(I);
    OS << "  subgraph \"cluster_" << Log.uid().str() << "\" {\n"
       << "    label=\"" << Log.uid().str() << "\";\n"
       << "    style=rounded;\n";
    for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
         ++P)
      OS << "    " << nodeId(Log.uid(), P) << " [label=\""
         << eventLabel(Options, Log.event(P)) << "\"];\n";
    for (uint32_t P = 1, PE = static_cast<uint32_t>(Log.size()); P != PE;
         ++P)
      OS << "    " << nodeId(Log.uid(), P - 1) << " -> "
         << nodeId(Log.uid(), P) << " [style=invis];\n";
    OS << "  }\n";
  }

  // Session-order edges between consecutive transactions of a session.
  for (unsigned A = 0, E = H.numTxns(); A != E; ++A) {
    if (Options.OmitInitEdges && H.txn(A).isInit())
      continue;
    for (unsigned B = 0; B != E; ++B) {
      if (!H.soLess(A, B))
        continue;
      // Only the immediate so-successor (transitive edges clutter).
      bool Immediate = true;
      for (unsigned C = 0; C != E && Immediate; ++C)
        if (C != A && C != B && H.soLess(A, C) && H.soLess(C, B))
          Immediate = false;
      if (!Immediate)
        continue;
      OS << "  " << nodeId(H.txn(A).uid(), 0) << " -> "
         << nodeId(H.txn(B).uid(), 0)
         << " [label=\"so\", lhead=\"cluster_" << H.txn(B).uid().str()
         << "\"];\n";
    }
  }

  // Write-read edges: from the writer's last write of the variable to the
  // read event.
  for (unsigned B = 0, E = H.numTxns(); B != E; ++B) {
    const TransactionLog &Log = H.txn(B);
    for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
         ++P) {
      std::optional<TxnUid> W = Log.writerOf(P);
      if (!W)
        continue;
      const TransactionLog &Writer = H.txn(*H.indexOf(*W));
      std::optional<uint32_t> WPos =
          Writer.lastWriteBefore(Log.event(P).Var,
                                 static_cast<uint32_t>(Writer.size()));
      assert(WPos && "wr writer must write the variable");
      OS << "  " << nodeId(*W, *WPos) << " -> " << nodeId(Log.uid(), P)
         << " [label=\"wr(" << varName(Options, Log.event(P).Var)
         << ")\", style=dashed, constraint=false];\n";
    }
  }

  OS << "}\n";
  return OS.str();
}
