//===- history/Event.h - Events, transaction identifiers ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events are the atoms of histories (paper §2.2.1): begin, commit, abort,
/// read(x) and write(x, v). A read event carries no value; its return value
/// is defined by the write-read relation of the enclosing history.
///
/// Transactions are identified by a TxnUid = (session, index-in-session).
/// Because the explorer derives new histories from old ones by deleting and
/// re-ordering events (Swap, §5.2), identifiers must be stable across
/// histories; (session, index) is stable because the program structure is
/// fixed. The distinguished transaction writing initial values (paper
/// Def. 2.1) has the reserved session id TxnUid::InitSession.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_EVENT_H
#define TXDPOR_HISTORY_EVENT_H

#include "support/Hash.h"

#include <cstdint>
#include <functional>
#include <string>

namespace txdpor {

/// Index of a global (database) variable, interned by the Program.
using VarId = uint32_t;

/// Resolves a VarId to a printable name (provided by the Program).
using VarNameFn = std::function<std::string(VarId)>;

/// Database values. The language's expressions evaluate to these.
using Value = int64_t;

/// The five event types of §2.2.1.
enum class EventKind : uint8_t { Begin, Read, Write, Commit, Abort };

/// Returns a short printable name ("begin", "read", ...).
const char *eventKindName(EventKind Kind);

/// One event of a transaction log. \c Var is meaningful for reads and
/// writes; \c Val only for writes (read values live in the write-read
/// relation).
struct Event {
  EventKind Kind;
  VarId Var = 0;
  Value Val = 0;

  static Event makeBegin() { return {EventKind::Begin, 0, 0}; }
  static Event makeRead(VarId Var) { return {EventKind::Read, Var, 0}; }
  static Event makeWrite(VarId Var, Value Val) {
    return {EventKind::Write, Var, Val};
  }
  static Event makeCommit() { return {EventKind::Commit, 0, 0}; }
  static Event makeAbort() { return {EventKind::Abort, 0, 0}; }

  bool isRead() const { return Kind == EventKind::Read; }
  bool isWrite() const { return Kind == EventKind::Write; }

  bool operator==(const Event &O) const {
    return Kind == O.Kind && Var == O.Var && Val == O.Val;
  }
  bool operator!=(const Event &O) const { return !(*this == O); }
};

/// Stable transaction identifier: position in the program text.
struct TxnUid {
  /// Session id reserved for the initial transaction.
  static constexpr uint32_t InitSession = 0xffffffffu;

  uint32_t Session = 0;
  uint32_t Index = 0;

  static TxnUid init() { return {InitSession, 0}; }
  bool isInit() const { return Session == InitSession; }

  uint64_t packed() const {
    return (static_cast<uint64_t>(Session) << 32) | Index;
  }

  bool operator==(const TxnUid &O) const {
    return Session == O.Session && Index == O.Index;
  }
  bool operator!=(const TxnUid &O) const { return !(*this == O); }
  bool operator<(const TxnUid &O) const { return packed() < O.packed(); }

  std::string str() const;
};

/// A reference to one event of one transaction, stable across histories.
struct EventRef {
  TxnUid Txn;
  uint32_t Pos = 0;

  bool operator==(const EventRef &O) const {
    return Txn == O.Txn && Pos == O.Pos;
  }
  bool operator!=(const EventRef &O) const { return !(*this == O); }
};

} // namespace txdpor

namespace std {
template <> struct hash<txdpor::TxnUid> {
  size_t operator()(const txdpor::TxnUid &U) const {
    return std::hash<uint64_t>()(U.packed());
  }
};
template <> struct hash<txdpor::EventRef> {
  size_t operator()(const txdpor::EventRef &R) const {
    // Full 64-bit avalanche mix. The previous 32-bit multiplier
    // (packed() * 1000003u + Pos) left the high bits undiffused: for the
    // common Session=0 case the result never exceeded ~2^30, so every
    // EventRef hashed into the low quarter of the space.
    return static_cast<size_t>(
        txdpor::hashCombine64(txdpor::splitmix64(R.Txn.packed()), R.Pos));
  }
};
} // namespace std

#endif // TXDPOR_HISTORY_EVENT_H
