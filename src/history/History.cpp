//===- history/History.cpp - Histories and ordered histories --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/History.h"

#include "support/Hash.h"

#include <algorithm>
#include <sstream>

using namespace txdpor;

const char *txdpor::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::Begin:
    return "begin";
  case EventKind::Read:
    return "read";
  case EventKind::Write:
    return "write";
  case EventKind::Commit:
    return "commit";
  case EventKind::Abort:
    return "abort";
  }
  return "?";
}

std::string TxnUid::str() const {
  if (isInit())
    return "init";
  return "t" + std::to_string(Session) + "." + std::to_string(Index);
}

std::vector<VarId> TransactionLog::writtenVars() const {
  std::vector<VarId> Result;
  if (isAborted())
    return Result;
  for (const Event &E : Events)
    if (E.isWrite())
      Result.push_back(E.Var);
  std::sort(Result.begin(), Result.end());
  Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
  return Result;
}

History History::makeInitial(unsigned NumVars) {
  History H;
  TransactionLog Init(TxnUid::init());
  Init.append(Event::makeBegin());
  for (VarId V = 0; V != NumVars; ++V)
    Init.append(Event::makeWrite(V, 0));
  Init.append(Event::makeCommit());
  H.appendLog(std::move(Init));
  return H;
}

std::optional<unsigned> History::indexOf(TxnUid Uid) const {
  auto It = IndexByUid.find(Uid.packed());
  if (It == IndexByUid.end())
    return std::nullopt;
  return It->second;
}

std::optional<unsigned> History::pendingTxn() const {
  std::optional<unsigned> Result;
  for (unsigned I = 0, E = numTxns(); I != E; ++I) {
    if (!Logs[I]->isPending())
      continue;
    assert(!Result && "more than one pending transaction");
    Result = I;
  }
  return Result;
}

size_t History::numEvents() const {
  size_t N = 0;
  for (const LogPtr &Log : Logs)
    N += Log->size();
  return N;
}

unsigned History::beginTxn(TxnUid Uid) {
  TransactionLog Log(Uid);
  Log.append(Event::makeBegin());
  return appendLog(std::move(Log));
}

void History::appendEvent(unsigned Idx, const Event &E) {
  assert(Idx < Logs.size() && "transaction index out of range");
  mutableLog(Idx).append(E);
}

void History::setWriter(unsigned Idx, uint32_t Pos, TxnUid Writer) {
  assert(Idx < Logs.size() && "transaction index out of range");
  assert(contains(Writer) && "wr writer must be part of the history");
  assert(Logs[Idx]->uid() != Writer && "a read cannot read-from its own log");
  assert(txn(*indexOf(Writer)).writesVar(Logs[Idx]->event(Pos).Var) &&
         "wr writer must visibly write the read variable");
  mutableLog(Idx).setWriter(Pos, Writer);
}

unsigned History::appendLog(TransactionLog Log) {
  assert(!contains(Log.uid()) && "duplicate transaction uid");
  invalidateRelationCaches();
  unsigned Idx = numTxns();
  IndexByUid.emplace(Log.uid().packed(), Idx);
  Logs.push_back(std::make_shared<TransactionLog>(std::move(Log)));
  return Idx;
}

unsigned History::appendLogShared(const History &Other, unsigned Idx) {
  assert(Idx < Other.Logs.size() && "transaction index out of range");
  assert(!contains(Other.txn(Idx).uid()) && "duplicate transaction uid");
  invalidateRelationCaches();
  unsigned NewIdx = numTxns();
  IndexByUid.emplace(Other.txn(Idx).uid().packed(), NewIdx);
  Logs.push_back(Other.Logs[Idx]); // Refcount bump only; no event copy.
  return NewIdx;
}

void History::retainBlocks(const std::vector<unsigned> &Keep) {
  assert(!Keep.empty() && Keep.front() == 0 &&
         "the initial transaction must be retained");
  invalidateRelationCaches();
  std::vector<LogPtr> NewLogs;
  NewLogs.reserve(Keep.size());
  for (size_t I = 0; I != Keep.size(); ++I) {
    assert(Keep[I] < Logs.size() && "retained index out of range");
    assert((I == 0 || Keep[I - 1] < Keep[I]) &&
           "retained indices must be strictly ascending");
    NewLogs.push_back(std::move(Logs[Keep[I]]));
  }
  Logs = std::move(NewLogs);
  IndexByUid.clear();
  for (unsigned I = 0, E = numTxns(); I != E; ++I)
    IndexByUid.emplace(Logs[I]->uid().packed(), I);
  checkWellFormed(); // Debug: every retained wr writer is still present.
}

void History::replaceLog(unsigned Idx, TransactionLog Log) {
  assert(Idx < Logs.size() && "transaction index out of range");
  assert(Log.uid() == Logs[Idx]->uid() &&
         "replaceLog must preserve the transaction identity");
  invalidateRelationCaches();
  Logs[Idx] = std::make_shared<TransactionLog>(std::move(Log));
  checkWellFormed();
}

TransactionLog &History::mutableLog(unsigned Idx) {
  assert(Idx < Logs.size() && "transaction index out of range");
  invalidateRelationCaches();
  LogPtr &P = Logs[Idx];
  // use_count() == 1 proves this history is the sole owner: any other
  // owner would hold its own reference. Under the single-owner mutation
  // discipline no other thread can be concurrently bumping the count
  // through *this* history, so the check cannot race.
  if (P.use_count() != 1)
    P = std::make_shared<TransactionLog>(*P); // Copy-on-write clone.
  return *P;
}

bool History::soLess(unsigned A, unsigned B) const {
  if (A == B)
    return false;
  const TxnUid UA = Logs[A]->uid(), UB = Logs[B]->uid();
  if (UA.isInit())
    return !UB.isInit();
  if (UB.isInit())
    return false;
  return UA.Session == UB.Session && UA.Index < UB.Index;
}

Relation History::soRelation() const {
  unsigned N = numTxns();
  Relation R(N);
  // Bucket by session instead of testing all N² pairs: within a bucket so
  // relates exactly the Index-ascending pairs, and the initial
  // transaction precedes everything else.
  std::unordered_map<uint32_t, std::vector<unsigned>> BySession;
  unsigned InitIdx = N; // N = no initial transaction present.
  for (unsigned I = 0; I != N; ++I) {
    const TxnUid U = Logs[I]->uid();
    if (U.isInit()) {
      InitIdx = I;
      continue;
    }
    BySession[U.Session].push_back(I);
  }
  if (InitIdx != N)
    for (unsigned B = 0; B != N; ++B)
      if (B != InitIdx)
        R.set(InitIdx, B);
  for (auto &[Session, Txns] : BySession) {
    (void)Session;
    std::sort(Txns.begin(), Txns.end(), [this](unsigned A, unsigned B) {
      return Logs[A]->uid().Index < Logs[B]->uid().Index;
    });
    for (size_t I = 0; I != Txns.size(); ++I)
      for (size_t J = I + 1; J != Txns.size(); ++J)
        R.set(Txns[I], Txns[J]);
  }
  return R;
}

Relation History::wrRelation() const {
  Relation R(numTxns());
  for (unsigned B = 0, E = numTxns(); B != E; ++B) {
    const TransactionLog &Log = *Logs[B];
    for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE; ++P) {
      std::optional<TxnUid> W = Log.writerOf(P);
      if (!W)
        continue;
      std::optional<unsigned> A = indexOf(*W);
      assert(A && "wr writer missing from history");
      R.set(*A, B);
    }
  }
  return R;
}

const Relation &History::soWrRelation() const {
  if (!CachedSoWr)
    CachedSoWr = std::make_shared<const Relation>(
        Relation::unionOf(soRelation(), wrRelation()));
  return *CachedSoWr;
}

const Relation &History::causalRelation() const {
  if (!CachedCausal) {
    Relation R = soWrRelation();
    R.closeTransitively();
    CachedCausal = std::make_shared<const Relation>(std::move(R));
  }
  return *CachedCausal;
}

Value History::readValue(unsigned Idx, uint32_t Pos) const {
  const TransactionLog &Log = txn(Idx);
  const Event &E = Log.event(Pos);
  assert(E.isRead() && "readValue on a non-read event");
  // Read-local rule (§2.2.1): a read po-preceded by a write to the same
  // variable returns the last such write's value.
  if (std::optional<uint32_t> P = Log.lastWriteBefore(E.Var, Pos))
    return Log.event(*P).Val;
  std::optional<TxnUid> W = Log.writerOf(Pos);
  assert(W && "external read without an assigned wr writer");
  std::optional<unsigned> WIdx = indexOf(*W);
  assert(WIdx && "wr writer missing from history");
  std::optional<Value> V = txn(*WIdx).lastWriteValue(E.Var);
  assert(V && "wr writer does not write the read variable");
  return *V;
}

std::vector<unsigned> History::committedWriters(VarId Var) const {
  std::vector<unsigned> Result;
  for (unsigned I = 0, E = numTxns(); I != E; ++I)
    if (Logs[I]->isCommitted() && Logs[I]->writesVar(Var))
      Result.push_back(I);
  return Result;
}

bool History::sameHistory(const History &Other) const {
  if (Logs.size() != Other.Logs.size())
    return false;
  for (unsigned I = 0, E = numTxns(); I != E; ++I) {
    const TransactionLog &Log = *Logs[I];
    std::optional<unsigned> OIdx = Other.indexOf(Log.uid());
    if (!OIdx)
      return false;
    // Physically shared storage is equal by construction (copy-on-write
    // aliasing); skip the structural comparison for that common case.
    if (Other.Logs[*OIdx].get() == &Log)
      continue;
    if (!(Other.txn(*OIdx) == Log))
      return false;
  }
  return true;
}

static uint64_t hashCombine(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  return H;
}

static uint64_t hashLog(const TransactionLog &Log) {
  uint64_t H = Log.uid().packed();
  for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
    const Event &Ev = Log.event(P);
    H = hashCombine(H, static_cast<uint64_t>(Ev.Kind));
    H = hashCombine(H, Ev.Var);
    H = hashCombine(H, static_cast<uint64_t>(Ev.Val));
    if (std::optional<TxnUid> W = Log.writerOf(P))
      H = hashCombine(H, W->packed() ^ 0xabcdef0123456789ULL);
  }
  return H;
}

uint64_t txdpor::hashTransactionLog(const TransactionLog &Log) {
  return hashLog(Log);
}

uint64_t History::hashIgnoringOrder() const {
  // Per-log hashes are combined commutatively so block order is ignored.
  // Each one goes through the splitmix64 finalizer first: with the old
  // `H += hashLog(L) * C` the constant factored out of the sum, so any
  // two histories whose per-log hashes had equal sums collided.
  uint64_t H = 0x12345678u;
  for (const LogPtr &Log : Logs)
    H += splitmix64(hashLog(*Log));
  return H;
}

std::string History::canonicalKey() const {
  std::vector<unsigned> Order(numTxns());
  for (unsigned I = 0; I != numTxns(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return Logs[A]->uid() < Logs[B]->uid();
  });
  std::ostringstream OS;
  for (unsigned I : Order) {
    const TransactionLog &Log = *Logs[I];
    OS << Log.uid().str() << '[';
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      const Event &Ev = Log.event(P);
      OS << eventKindName(Ev.Kind);
      if (Ev.isRead() || Ev.isWrite())
        OS << '_' << Ev.Var;
      if (Ev.isWrite())
        OS << '=' << Ev.Val;
      if (std::optional<TxnUid> W = Log.writerOf(P))
        OS << '<' << W->str() << '>';
      OS << ';';
    }
    OS << ']';
  }
  return OS.str();
}

std::string History::str(const VarNameFn *VarNames) const {
  auto VarName = [&](VarId V) {
    return VarNames ? (*VarNames)(V) : ("x" + std::to_string(V));
  };
  std::ostringstream OS;
  for (const LogPtr &LP : Logs) {
    const TransactionLog &Log = *LP;
    OS << Log.uid().str() << ": ";
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      const Event &Ev = Log.event(P);
      if (P)
        OS << ' ';
      switch (Ev.Kind) {
      case EventKind::Begin:
        OS << "begin";
        break;
      case EventKind::Commit:
        OS << "commit";
        break;
      case EventKind::Abort:
        OS << "abort";
        break;
      case EventKind::Write:
        OS << "write(" << VarName(Ev.Var) << "," << Ev.Val << ")";
        break;
      case EventKind::Read:
        OS << "read(" << VarName(Ev.Var) << ")";
        if (std::optional<TxnUid> W = Log.writerOf(P))
          OS << "<-" << W->str();
        break;
      }
    }
    OS << '\n';
  }
  return OS.str();
}

void History::checkWellFormed() const {
#ifndef NDEBUG
  assert(!Logs.empty() && Logs[0]->isInit() &&
         "history must start with the initial transaction");
  for (unsigned I = 0, E = numTxns(); I != E; ++I) {
    const TransactionLog &Log = *Logs[I];
    assert(!Log.events().empty() && "empty transaction log");
    assert(Log.event(0).Kind == EventKind::Begin &&
           "transaction log must start with begin");
    for (uint32_t P = 1, PE = static_cast<uint32_t>(Log.size()); P != PE; ++P) {
      assert(Log.event(P).Kind != EventKind::Begin && "duplicate begin");
      assert((P + 1 == PE || (Log.event(P).Kind != EventKind::Commit &&
                              Log.event(P).Kind != EventKind::Abort)) &&
             "commit/abort must be the last event");
      if (std::optional<TxnUid> W = Log.writerOf(P)) {
        assert(Log.event(P).isRead() && "writer attached to non-read");
        assert(Log.isExternalRead(P) && "writer attached to internal read");
        std::optional<unsigned> WIdx = indexOf(*W);
        assert(WIdx && "wr writer missing from history");
        assert(*WIdx != I && "read-from own transaction");
        assert(txn(*WIdx).writesVar(Log.event(P).Var) &&
               "wr writer does not visibly write the variable");
      }
    }
  }
  assert(soWrRelation().isAcyclic() && "so ∪ wr must be acyclic (Def. 2.1)");
#endif
}

void History::checkOrderConsistent() const {
#ifndef NDEBUG
  checkWellFormed();
  // Block order must extend so ∪ wr (paper: < is consistent with po, so,
  // wr; footnote 7 strengthens wr-consistency to all reachable histories).
  Relation SoWr = soWrRelation();
  for (unsigned A = 0, E = numTxns(); A != E; ++A)
    for (unsigned B = 0; B != E; ++B)
      if (SoWr.get(A, B))
        assert(A < B && "block order must extend so ∪ wr");
  for (unsigned I = 0, E = numTxns(); I != E; ++I)
    assert((Logs[I]->isPending() ? I + 1 == E : true) &&
           "only the last block may be pending");
#endif
}
