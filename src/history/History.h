//===- history/History.h - Histories and ordered histories ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A history (paper Def. 2.1) is a set of transaction logs with a session
/// order so and a write-read relation wr. This class also plays the role of
/// the paper's *ordered* history (h, <): the explorer maintains the
/// invariant that transactions execute one at a time, so the total order <
/// over events always keeps each transaction's events contiguous. We
/// therefore represent < by the order of the log vector itself (the "block
/// order") plus program order inside each log.
///
/// Identity for the read-from equivalence (§1, "Execution Equivalence")
/// deliberately ignores the block order: two histories are equal when they
/// have the same logs (same uids, events and po) and the same so and wr
/// relations. so is implied by the uids ((session, index) pairs), so
/// structural equality of the log sets is exactly history equality.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_HISTORY_H
#define TXDPOR_HISTORY_HISTORY_H

#include "history/TransactionLog.h"
#include "support/Relation.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace txdpor {

/// A history of database accesses, with its event order represented as a
/// sequence of transaction blocks.
class History {
public:
  History() = default;

  /// Creates a history containing only the distinguished initial
  /// transaction, which writes value 0 to the \p NumVars variables and
  /// commits (paper Def. 2.1: it precedes all other transactions in so).
  static History makeInitial(unsigned NumVars);

  //===--------------------------------------------------------------------===
  // Transaction access
  //===--------------------------------------------------------------------===

  unsigned numTxns() const { return static_cast<unsigned>(Logs.size()); }
  const TransactionLog &txn(unsigned Idx) const {
    assert(Idx < Logs.size() && "transaction index out of range");
    return Logs[Idx];
  }
  /// Index of the transaction with identifier \p Uid, if present.
  std::optional<unsigned> indexOf(TxnUid Uid) const;
  bool contains(TxnUid Uid) const { return indexOf(Uid).has_value(); }

  /// Index of the unique pending transaction, if any. Asserts that at most
  /// one transaction is pending (the explorer invariant, §5).
  std::optional<unsigned> pendingTxn() const;

  /// Total number of events across all logs.
  size_t numEvents() const;

  //===--------------------------------------------------------------------===
  // Mutation (used by the operational semantics and the explorer)
  //===--------------------------------------------------------------------===

  /// Starts a new transaction log containing a single begin event and
  /// appends it to the block order. Returns its index.
  unsigned beginTxn(TxnUid Uid);

  /// Appends \p E to the log at \p Idx. For the explorer this is only legal
  /// on the last block (keeps < consistent); the semantics enforces that.
  void appendEvent(unsigned Idx, const Event &E);

  /// Sets the wr dependency of the read at (\p Idx, \p Pos) to the
  /// transaction \p Writer, which must exist, be distinct from the reader,
  /// and visibly write the read's variable.
  void setWriter(unsigned Idx, uint32_t Pos, TxnUid Writer);

  /// Appends an already-built log as the last block. Used when
  /// reconstructing histories in Swap. Returns its index.
  unsigned appendLog(TransactionLog Log);

  //===--------------------------------------------------------------------===
  // Relations (over transaction indices in the current block order)
  //===--------------------------------------------------------------------===

  /// True if (A, B) is in the session order: A is the initial transaction,
  /// or both are in the same session with A's index smaller.
  bool soLess(unsigned A, unsigned B) const;

  /// The session order as a relation over transaction indices.
  Relation soRelation() const;

  /// The transaction-level write-read relation.
  Relation wrRelation() const;

  /// (so ∪ wr) as a relation.
  Relation soWrRelation() const;

  /// The causal relation (so ∪ wr)+ (irreflexive transitive closure).
  Relation causalRelation() const;

  //===--------------------------------------------------------------------===
  // Value resolution
  //===--------------------------------------------------------------------===

  /// The value returned by the read at (\p Idx, \p Pos): the last po-write
  /// to the same variable before it if one exists (read-local), otherwise
  /// the last write of its wr writer. The read must have a writer assigned
  /// in the external case.
  Value readValue(unsigned Idx, uint32_t Pos) const;

  /// Indices of committed transactions that visibly write \p Var, in block
  /// order (the initial transaction qualifies).
  std::vector<unsigned> committedWriters(VarId Var) const;

  //===--------------------------------------------------------------------===
  // Identity, debugging
  //===--------------------------------------------------------------------===

  /// Read-from equivalence: same set of logs (block order ignored).
  bool sameHistory(const History &Other) const;

  /// Order-insensitive hash, compatible with sameHistory.
  uint64_t hashIgnoringOrder() const;

  /// A canonical one-line key (logs sorted by uid), usable as a map key in
  /// tests that collect distinct histories.
  std::string canonicalKey() const;

  /// Multi-line human-readable rendering in block order.
  std::string str(const VarNameFn *VarNames = nullptr) const;

  /// Asserts structural invariants: init first; begin/commit/abort
  /// placement; every assigned wr writer exists, differs from the reader
  /// and writes the variable; so ∪ wr acyclic. No-op in release builds.
  void checkWellFormed() const;

  /// Asserts in addition the ordered-history invariants of the explorer:
  /// block order extends so ∪ wr (readers after writers, sessions in
  /// order; paper footnote 7) and at most the last block is pending.
  void checkOrderConsistent() const;

private:
  std::vector<TransactionLog> Logs; ///< In block (<) order; [0] is init.
  std::unordered_map<uint64_t, unsigned> IndexByUid;
};

} // namespace txdpor

#endif // TXDPOR_HISTORY_HISTORY_H
