//===- history/History.h - Histories and ordered histories ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A history (paper Def. 2.1) is a set of transaction logs with a session
/// order so and a write-read relation wr. This class also plays the role of
/// the paper's *ordered* history (h, <): the explorer maintains the
/// invariant that transactions execute one at a time, so the total order <
/// over events always keeps each transaction's events contiguous. We
/// therefore represent < by the order of the log vector itself (the "block
/// order") plus program order inside each log.
///
/// Identity for the read-from equivalence (§1, "Execution Equivalence")
/// deliberately ignores the block order: two histories are equal when they
/// have the same logs (same uids, events and po) and the same so and wr
/// relations. so is implied by the uids ((session, index) pairs), so
/// structural equality of the log sets is exactly history equality.
///
/// **Copy-on-write representation.** The block order is a vector of
/// *shared, logically immutable* transaction logs: copying a History copies
/// only the spine (one refcount bump per log), never the event storage.
/// Mutators clone a log lazily, at the moment it is first mutated through a
/// history that shares it ("mutation-after-share"), so the explorer's
/// read-branch and swap-child fan-out duplicates exactly the one log tail
/// it extends while every other log stays physically shared with the
/// parent, its siblings, and items queued in the parallel driver's deques
/// (see docs/ARCHITECTURE.md, "Copy-on-write histories").
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_HISTORY_H
#define TXDPOR_HISTORY_HISTORY_H

#include "history/TransactionLog.h"
#include "support/Relation.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace txdpor {

/// A history of database accesses, with its event order represented as a
/// sequence of transaction blocks.
///
/// Copying a History is O(numTxns()) pointer copies: all event storage is
/// shared between the copies until one of them mutates a log (copy-on-
/// write). Sharing is thread-safe under single-owner mutation: a History
/// value may be moved freely between threads (the parallel driver's
/// work-stealing deques do exactly that), and any number of threads may
/// concurrently read or mutate *distinct* History values that share logs —
/// each mutator clones shared logs before writing. Concurrent access to
/// one History value still requires external synchronization, as for any
/// standard container.
class History {
public:
  History() = default;

  /// Creates a history containing only the distinguished initial
  /// transaction, which writes value 0 to the \p NumVars variables and
  /// commits (paper Def. 2.1: it precedes all other transactions in so).
  static History makeInitial(unsigned NumVars);

  //===--------------------------------------------------------------------===
  // Transaction access
  //===--------------------------------------------------------------------===

  /// Number of transaction blocks, including the initial transaction.
  unsigned numTxns() const { return static_cast<unsigned>(Logs.size()); }
  /// The log at block-order position \p Idx. The reference is valid until
  /// this history is next mutated or destroyed (copy-on-write may replace
  /// the backing storage on mutation).
  const TransactionLog &txn(unsigned Idx) const {
    assert(Idx < Logs.size() && "transaction index out of range");
    return *Logs[Idx];
  }
  /// Identity of the backing storage of the log at \p Idx. Two histories
  /// physically share a log (copy-on-write aliasing) iff the pointers are
  /// equal. The pointer is stable until the log is next mutated through
  /// this history; use it only to *observe* sharing (tests, diagnostics),
  /// never to mutate.
  const TransactionLog *logIdentity(unsigned Idx) const {
    assert(Idx < Logs.size() && "transaction index out of range");
    return Logs[Idx].get();
  }
  /// Index of the transaction with identifier \p Uid, if present.
  std::optional<unsigned> indexOf(TxnUid Uid) const;
  /// True if a transaction with identifier \p Uid is part of the history.
  bool contains(TxnUid Uid) const { return indexOf(Uid).has_value(); }

  /// Index of the unique pending transaction, if any. Asserts that at most
  /// one transaction is pending (the explorer invariant, §5).
  std::optional<unsigned> pendingTxn() const;

  /// Total number of events across all logs.
  size_t numEvents() const;

  //===--------------------------------------------------------------------===
  // Mutation (used by the operational semantics and the explorer)
  //
  // Every mutator is copy-on-write: if the affected log is shared with
  // another History, it is cloned first and only this history sees the
  // change. Logs this history does not touch are never duplicated.
  //===--------------------------------------------------------------------===

  /// Starts a new transaction log containing a single begin event and
  /// appends it to the block order. Returns its index.
  unsigned beginTxn(TxnUid Uid);

  /// Appends \p E to the log at \p Idx. For the explorer this is only legal
  /// on the last block (keeps < consistent); the semantics enforces that.
  /// Copy-on-write: a log shared with other histories is cloned first.
  void appendEvent(unsigned Idx, const Event &E);

  /// Sets the wr dependency of the read at (\p Idx, \p Pos) to the
  /// transaction \p Writer, which must exist, be distinct from the reader,
  /// and visibly write the read's variable.
  /// Copy-on-write: a log shared with other histories is cloned first.
  void setWriter(unsigned Idx, uint32_t Pos, TxnUid Writer);

  /// Appends an already-built log as the last block. Used when
  /// reconstructing histories in Swap and when deserializing. Returns its
  /// index.
  unsigned appendLog(TransactionLog Log);

  /// Appends the log at \p Idx of \p Other as the last block, *sharing* its
  /// storage (O(1), no event copy). The shared log is cloned lazily if
  /// either history later mutates it. This is how Swap keeps an O(1) view
  /// of the unchanged causal past (§5.2).
  unsigned appendLogShared(const History &Other, unsigned Idx);

  /// Drops every block whose index is not in \p Keep (strictly ascending,
  /// must retain index 0 — the initial transaction) and renumbers the
  /// remainder, preserving relative block order. This is the windowed
  /// eviction hook of the streaming checker: the COW spine makes it a
  /// shared_ptr shuffle, no event is copied. Every wr writer of a
  /// retained read must itself be retained (asserted via
  /// checkWellFormed in debug builds) — the streaming GC first rewrites
  /// retained readers via replaceLog to forget reads of evicted writers.
  void retainBlocks(const std::vector<unsigned> &Keep);

  /// Replaces the log at \p Idx wholesale with \p Log, which must carry
  /// the same uid and keep the history well-formed. The streaming GC uses
  /// this to drop a retained reader's reads of evicted writers before
  /// retainBlocks (the constraints those reads induced are frozen in the
  /// checker's closure; the events themselves would otherwise dangle).
  /// Copy-on-write friendly: only this history's spine slot changes.
  void replaceLog(unsigned Idx, TransactionLog Log);

  //===--------------------------------------------------------------------===
  // Relations (over transaction indices in the current block order)
  //===--------------------------------------------------------------------===

  /// True if (A, B) is in the session order: A is the initial transaction,
  /// or both are in the same session with A's index smaller.
  bool soLess(unsigned A, unsigned B) const;

  /// The session order as a relation over transaction indices (bucketed
  /// by session, O(N + pairs) instead of the old all-pairs double loop).
  Relation soRelation() const;

  /// The transaction-level write-read relation.
  Relation wrRelation() const;

  /// (so ∪ wr) as a relation. Memoized on this value: the relation is
  /// computed on first use and shared by subsequent calls (and by copies
  /// of this history, which alias the same immutable cache) until the
  /// next mutation invalidates it. The reference is valid until this
  /// history is next mutated or destroyed; callers that outlive that
  /// point must copy. Filling the cache writes a mutable member, so —
  /// exactly like the standard-container contract above — concurrent
  /// access to one History value requires external synchronization even
  /// if all accesses are const.
  const Relation &soWrRelation() const;

  /// The causal relation (so ∪ wr)+ (irreflexive transitive closure).
  /// Memoized like soWrRelation(), with the same lifetime and threading
  /// caveats. The swap machinery queries it many times per node
  /// (computeReorderings, applySwap, swapped/readLatest); the memo makes
  /// all of them one closure computation per history value.
  const Relation &causalRelation() const;

  //===--------------------------------------------------------------------===
  // Value resolution
  //===--------------------------------------------------------------------===

  /// The value returned by the read at (\p Idx, \p Pos): the last po-write
  /// to the same variable before it if one exists (read-local), otherwise
  /// the last write of its wr writer. The read must have a writer assigned
  /// in the external case.
  Value readValue(unsigned Idx, uint32_t Pos) const;

  /// Indices of committed transactions that visibly write \p Var, in block
  /// order (the initial transaction qualifies).
  std::vector<unsigned> committedWriters(VarId Var) const;

  //===--------------------------------------------------------------------===
  // Identity, debugging
  //===--------------------------------------------------------------------===

  /// Read-from equivalence: same set of logs (block order ignored).
  bool sameHistory(const History &Other) const;

  /// Order-insensitive hash, compatible with sameHistory.
  uint64_t hashIgnoringOrder() const;

  /// A canonical one-line key (logs sorted by uid), usable as a map key in
  /// tests that collect distinct histories.
  std::string canonicalKey() const;

  /// Multi-line human-readable rendering in block order.
  std::string str(const VarNameFn *VarNames = nullptr) const;

  /// Asserts structural invariants: init first; begin/commit/abort
  /// placement; every assigned wr writer exists, differs from the reader
  /// and writes the variable; so ∪ wr acyclic. No-op in release builds.
  void checkWellFormed() const;

  /// Asserts in addition the ordered-history invariants of the explorer:
  /// block order extends so ∪ wr (readers after writers, sessions in
  /// order; paper footnote 7) and at most the last block is pending.
  void checkOrderConsistent() const;

private:
  /// Shared-storage handle to one block. Logically immutable while shared;
  /// mutableLog() restores unique ownership before any write.
  using LogPtr = std::shared_ptr<TransactionLog>;

  /// Returns the log at \p Idx with unique ownership, cloning it first if
  /// its storage is shared with another History (the copy-on-write step).
  /// Safe under the single-owner mutation discipline: use_count() == 1
  /// means no other History (hence no other thread) can reach the log.
  TransactionLog &mutableLog(unsigned Idx);

  /// Drops the memoized relations; every mutator calls this. (Copies keep
  /// sharing the parent's immutable cache until they mutate — the cache
  /// is keyed to the spine identity by construction, since any operation
  /// that changes the spine goes through a mutator.)
  void invalidateRelationCaches() const {
    CachedSoWr.reset();
    CachedCausal.reset();
  }

  std::vector<LogPtr> Logs; ///< In block (<) order; [0] is init.
  std::unordered_map<uint64_t, unsigned> IndexByUid;

  /// Lazily-computed so ∪ wr and (so ∪ wr)+ of the current spine. Shared,
  /// immutable once published; reset by every mutator.
  mutable std::shared_ptr<const Relation> CachedSoWr;
  mutable std::shared_ptr<const Relation> CachedCausal;
};

/// The per-log hash folded (after a splitmix64 avalanche) into
/// History::hashIgnoringOrder. Exposed so tests can construct histories
/// whose per-log hash *sums* collide — the regression shape for the old
/// commutative combine.
uint64_t hashTransactionLog(const TransactionLog &Log);

} // namespace txdpor

#endif // TXDPOR_HISTORY_HISTORY_H
