//===- history/Serialize.h - Textual history round-tripping ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented textual format for histories so explorations can be
/// archived, diffed and re-checked offline (e.g. piping txdpor-cli output
/// into a consistency audit). One transaction per line, in block order:
///
///   txn 0.1 begin read x <- init write y = 3 commit
///
/// Writers are named by transaction uid ("init" or "<session>.<index>");
/// variables by id ("x<N>"). The format round-trips exactly:
/// parseHistory(writeHistory(h)) is equal to h including block order.
///
/// The per-transaction line grammar is exposed on its own
/// (writeTxnLine / parseTxnLine) because the streaming trace reader
/// (trace_io/TraceFormat.h) reuses it verbatim as the litmus trace
/// format — one transaction per line is exactly a trace record.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_SERIALIZE_H
#define TXDPOR_HISTORY_SERIALIZE_H

#include "history/History.h"

#include <optional>
#include <string>

namespace txdpor {

/// Parses a transaction-uid token — "init", "<session>.<index>" or
/// "t<session>.<index>" — the spelling shared by the history format, the
/// litmus repro grammar and the jsonl trace records. Returns false with a
/// diagnostic in \p Error on malformed input.
bool parseUidToken(const std::string &Token, TxnUid &Out,
                   std::string *Error = nullptr);

/// Serializes one transaction to its "txn <uid> <events...>" line (no
/// trailing newline). Internal reads print "<- _"; external reads print
/// their writer uid when assigned.
std::string writeTxnLine(const TransactionLog &Log);

/// Parses one "txn ..." line into a standalone transaction log, with wr
/// writers attached to the log (not validated against any history —
/// callers resolve and validate them). Returns nullopt with a diagnostic
/// in \p Error on malformed input; events after a commit/abort are
/// rejected rather than asserted.
std::optional<TransactionLog> parseTxnLine(const std::string &Line,
                                           std::string *Error = nullptr);

/// Serializes \p H (all transactions, block order) to the textual format.
std::string writeHistory(const History &H);

/// Parses the format produced by writeHistory. Returns nullopt (with a
/// diagnostic in \p Error if provided) on malformed input. The result is
/// checked for well-formedness (Def. 2.1).
std::optional<History> parseHistory(const std::string &Text,
                                    std::string *Error = nullptr);

} // namespace txdpor

#endif // TXDPOR_HISTORY_SERIALIZE_H
