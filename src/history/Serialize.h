//===- history/Serialize.h - Textual history round-tripping ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented textual format for histories so explorations can be
/// archived, diffed and re-checked offline (e.g. piping txdpor-cli output
/// into a consistency audit). One transaction per line, in block order:
///
///   txn 0.1 begin read x <- init write y = 3 commit
///
/// Writers are named by transaction uid ("init" or "<session>.<index>");
/// variables by id ("x<N>"). The format round-trips exactly:
/// parseHistory(writeHistory(h)) is equal to h including block order.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_SERIALIZE_H
#define TXDPOR_HISTORY_SERIALIZE_H

#include "history/History.h"

#include <optional>
#include <string>

namespace txdpor {

/// Serializes \p H (all transactions, block order) to the textual format.
std::string writeHistory(const History &H);

/// Parses the format produced by writeHistory. Returns nullopt (with a
/// diagnostic in \p Error if provided) on malformed input. The result is
/// checked for well-formedness (Def. 2.1).
std::optional<History> parseHistory(const std::string &Text,
                                    std::string *Error = nullptr);

} // namespace txdpor

#endif // TXDPOR_HISTORY_SERIALIZE_H
