//===- history/Dot.h - Graphviz rendering of histories --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders histories in the visual vocabulary of the paper's figures:
/// boxes group the events of one transaction (program order top to
/// bottom), solid edges are session order between transactions, labeled
/// dashed edges are write-read dependencies. Useful for inspecting
/// counterexample histories produced by assertion checking.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_HISTORY_DOT_H
#define TXDPOR_HISTORY_DOT_H

#include "history/History.h"

#include <string>

namespace txdpor {

/// Options for renderDot.
struct DotOptions {
  /// Resolve variable names; defaults to x<N>.
  const VarNameFn *VarNames = nullptr;
  /// Suppress so-edges out of the initial transaction (the paper's
  /// figures omit them "for legibility").
  bool OmitInitEdges = true;
  /// Include the block (<) order as invisible ranking constraints.
  bool RankByBlockOrder = true;
};

/// Renders \p H as a Graphviz digraph.
std::string renderDot(const History &H, const DotOptions &Options = {});

} // namespace txdpor

#endif // TXDPOR_HISTORY_DOT_H
