//===- history/Serialize.cpp - Textual history round-tripping -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Serialize.h"

#include <sstream>

using namespace txdpor;

std::string txdpor::writeHistory(const History &H) {
  std::ostringstream OS;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    const TransactionLog &Log = H.txn(I);
    OS << "txn " << Log.uid().str();
    for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
         ++P) {
      const Event &Ev = Log.event(P);
      switch (Ev.Kind) {
      case EventKind::Begin:
        OS << " begin";
        break;
      case EventKind::Commit:
        OS << " commit";
        break;
      case EventKind::Abort:
        OS << " abort";
        break;
      case EventKind::Write:
        OS << " write x" << Ev.Var << " = " << Ev.Val;
        break;
      case EventKind::Read:
        OS << " read x" << Ev.Var << " <- ";
        if (std::optional<TxnUid> W = Log.writerOf(P))
          OS << W->str();
        else
          OS << "_";
        break;
      }
    }
    OS << '\n';
  }
  return OS.str();
}

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

/// Parses "init" or "t<session>.<index>" / "<session>.<index>".
bool parseUid(const std::string &Token, TxnUid &Out, std::string *Error) {
  if (Token == "init") {
    Out = TxnUid::init();
    return true;
  }
  std::string Body = Token;
  if (!Body.empty() && Body[0] == 't')
    Body = Body.substr(1);
  size_t Dot = Body.find('.');
  if (Dot == std::string::npos || Dot == 0 || Dot + 1 == Body.size())
    return fail(Error, "bad transaction uid '" + Token + "'");
  try {
    Out.Session = static_cast<uint32_t>(std::stoul(Body.substr(0, Dot)));
    Out.Index = static_cast<uint32_t>(std::stoul(Body.substr(Dot + 1)));
  } catch (...) {
    return fail(Error, "bad transaction uid '" + Token + "'");
  }
  return true;
}

bool parseVar(const std::string &Token, VarId &Out, std::string *Error) {
  if (Token.size() < 2 || Token[0] != 'x')
    return fail(Error, "bad variable '" + Token + "'");
  try {
    Out = static_cast<VarId>(std::stoul(Token.substr(1)));
  } catch (...) {
    return fail(Error, "bad variable '" + Token + "'");
  }
  return true;
}

} // namespace

std::optional<History> txdpor::parseHistory(const std::string &Text,
                                            std::string *Error) {
  History Result;
  std::istringstream Lines(Text);
  std::string Line;
  unsigned LineNo = 0;
  // Deferred wr assignments: the writer may serialize after... no — block
  // order puts writers first (footnote 7) for explorer output, but the
  // format does not require it; defer all wr hookups to the end.
  struct PendingWr {
    TxnUid Reader;
    uint32_t Pos;
    TxnUid Writer;
  };
  std::vector<PendingWr> PendingWrs;

  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::istringstream Tokens(Line);
    std::string Token;
    if (!(Tokens >> Token))
      continue; // Blank line.
    std::string Where = " at line " + std::to_string(LineNo);
    if (Token != "txn") {
      fail(Error, "expected 'txn'" + Where);
      return std::nullopt;
    }
    if (!(Tokens >> Token)) {
      fail(Error, "missing transaction uid" + Where);
      return std::nullopt;
    }
    TxnUid Uid;
    if (!parseUid(Token, Uid, Error))
      return std::nullopt;
    if (Result.contains(Uid)) {
      fail(Error, "duplicate transaction " + Uid.str() + Where);
      return std::nullopt;
    }
    TransactionLog Log(Uid);
    while (Tokens >> Token) {
      if (Token == "begin") {
        Log.append(Event::makeBegin());
      } else if (Token == "commit") {
        Log.append(Event::makeCommit());
      } else if (Token == "abort") {
        Log.append(Event::makeAbort());
      } else if (Token == "write") {
        std::string VarTok, Eq;
        Value Val;
        if (!(Tokens >> VarTok >> Eq >> Val) || Eq != "=") {
          fail(Error, "malformed write" + Where);
          return std::nullopt;
        }
        VarId Var;
        if (!parseVar(VarTok, Var, Error))
          return std::nullopt;
        Log.append(Event::makeWrite(Var, Val));
      } else if (Token == "read") {
        std::string VarTok, Arrow, WriterTok;
        if (!(Tokens >> VarTok >> Arrow >> WriterTok) || Arrow != "<-") {
          fail(Error, "malformed read" + Where);
          return std::nullopt;
        }
        VarId Var;
        if (!parseVar(VarTok, Var, Error))
          return std::nullopt;
        Log.append(Event::makeRead(Var));
        if (WriterTok != "_") {
          TxnUid Writer;
          if (!parseUid(WriterTok, Writer, Error))
            return std::nullopt;
          PendingWrs.push_back(
              {Uid, static_cast<uint32_t>(Log.size()) - 1, Writer});
        }
      } else {
        fail(Error, "unknown event '" + Token + "'" + Where);
        return std::nullopt;
      }
    }
    if (Log.events().empty()) {
      fail(Error, "transaction without events" + Where);
      return std::nullopt;
    }
    Result.appendLog(std::move(Log));
  }

  if (Result.numTxns() == 0 || !Result.txn(0).isInit()) {
    fail(Error, "history must start with the init transaction");
    return std::nullopt;
  }
  for (const PendingWr &Wr : PendingWrs) {
    std::optional<unsigned> Reader = Result.indexOf(Wr.Reader);
    assert(Reader && "reader was appended above");
    if (!Result.contains(Wr.Writer)) {
      fail(Error, "read from unknown transaction " + Wr.Writer.str());
      return std::nullopt;
    }
    if (Wr.Writer == Wr.Reader ||
        !Result.txn(*Result.indexOf(Wr.Writer))
             .writesVar(Result.txn(*Reader).event(Wr.Pos).Var)) {
      fail(Error, "invalid wr dependency on " + Wr.Writer.str());
      return std::nullopt;
    }
    Result.setWriter(*Reader, Wr.Pos, Wr.Writer);
  }
  Result.checkWellFormed();
  return Result;
}
