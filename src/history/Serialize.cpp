//===- history/Serialize.cpp - Textual history round-tripping -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "history/Serialize.h"

#include <sstream>

using namespace txdpor;

std::string txdpor::writeTxnLine(const TransactionLog &Log) {
  std::ostringstream OS;
  OS << "txn " << Log.uid().str();
  for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE; ++P) {
    const Event &Ev = Log.event(P);
    switch (Ev.Kind) {
    case EventKind::Begin:
      OS << " begin";
      break;
    case EventKind::Commit:
      OS << " commit";
      break;
    case EventKind::Abort:
      OS << " abort";
      break;
    case EventKind::Write:
      OS << " write x" << Ev.Var << " = " << Ev.Val;
      break;
    case EventKind::Read:
      OS << " read x" << Ev.Var << " <- ";
      if (std::optional<TxnUid> W = Log.writerOf(P))
        OS << W->str();
      else
        OS << "_";
      break;
    }
  }
  return OS.str();
}

std::string txdpor::writeHistory(const History &H) {
  std::ostringstream OS;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I)
    OS << writeTxnLine(H.txn(I)) << '\n';
  return OS.str();
}

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

bool txdpor::parseUidToken(const std::string &Token, TxnUid &Out,
                           std::string *Error) {
  if (Token == "init") {
    Out = TxnUid::init();
    return true;
  }
  std::string Body = Token;
  if (!Body.empty() && Body[0] == 't')
    Body = Body.substr(1);
  size_t Dot = Body.find('.');
  if (Dot == std::string::npos || Dot == 0 || Dot + 1 == Body.size())
    return fail(Error, "bad transaction uid '" + Token + "'");
  try {
    Out.Session = static_cast<uint32_t>(std::stoul(Body.substr(0, Dot)));
    Out.Index = static_cast<uint32_t>(std::stoul(Body.substr(Dot + 1)));
  } catch (...) {
    return fail(Error, "bad transaction uid '" + Token + "'");
  }
  return true;
}

namespace {

bool parseUid(const std::string &Token, TxnUid &Out, std::string *Error) {
  return parseUidToken(Token, Out, Error);
}

bool parseVar(const std::string &Token, VarId &Out, std::string *Error) {
  if (Token.size() < 2 || Token[0] != 'x')
    return fail(Error, "bad variable '" + Token + "'");
  try {
    Out = static_cast<VarId>(std::stoul(Token.substr(1)));
  } catch (...) {
    return fail(Error, "bad variable '" + Token + "'");
  }
  return true;
}

} // namespace

std::optional<TransactionLog> txdpor::parseTxnLine(const std::string &Line,
                                                   std::string *Error) {
  std::istringstream Tokens(Line);
  std::string Token;
  if (!(Tokens >> Token) || Token != "txn") {
    fail(Error, "expected 'txn'");
    return std::nullopt;
  }
  if (!(Tokens >> Token)) {
    fail(Error, "missing transaction uid");
    return std::nullopt;
  }
  TxnUid Uid;
  if (!parseUid(Token, Uid, Error))
    return std::nullopt;
  TransactionLog Log(Uid);
  while (Tokens >> Token) {
    // Guard before every append: TransactionLog::append asserts on
    // extending a complete log, but hand-written input must be rejected
    // with a diagnostic, not an abort.
    if (!Log.isPending()) {
      fail(Error, "event after commit/abort");
      return std::nullopt;
    }
    if (Token == "begin") {
      if (!Log.events().empty()) {
        fail(Error, "duplicate begin");
        return std::nullopt;
      }
      Log.append(Event::makeBegin());
    } else if (Token == "commit") {
      Log.append(Event::makeCommit());
    } else if (Token == "abort") {
      Log.append(Event::makeAbort());
    } else if (Token == "write") {
      std::string VarTok, Eq;
      Value Val;
      if (!(Tokens >> VarTok >> Eq >> Val) || Eq != "=") {
        fail(Error, "malformed write");
        return std::nullopt;
      }
      VarId Var;
      if (!parseVar(VarTok, Var, Error))
        return std::nullopt;
      Log.append(Event::makeWrite(Var, Val));
    } else if (Token == "read") {
      std::string VarTok, Arrow, WriterTok;
      if (!(Tokens >> VarTok >> Arrow >> WriterTok) || Arrow != "<-") {
        fail(Error, "malformed read");
        return std::nullopt;
      }
      VarId Var;
      if (!parseVar(VarTok, Var, Error))
        return std::nullopt;
      Log.append(Event::makeRead(Var));
      if (WriterTok != "_") {
        TxnUid Writer;
        if (!parseUid(WriterTok, Writer, Error))
          return std::nullopt;
        Log.setWriter(static_cast<uint32_t>(Log.size()) - 1, Writer);
      }
    } else {
      fail(Error, "unknown event '" + Token + "'");
      return std::nullopt;
    }
  }
  if (Log.events().empty()) {
    fail(Error, "transaction without events");
    return std::nullopt;
  }
  if (Log.event(0).Kind != EventKind::Begin) {
    fail(Error, "transaction must start with begin");
    return std::nullopt;
  }
  return Log;
}

std::optional<History> txdpor::parseHistory(const std::string &Text,
                                            std::string *Error) {
  History Result;
  std::istringstream Lines(Text);
  std::string Line;
  unsigned LineNo = 0;

  while (std::getline(Lines, Line)) {
    ++LineNo;
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue; // Blank line.
    std::string Where = " at line " + std::to_string(LineNo);
    std::optional<TransactionLog> Log = parseTxnLine(Line, Error);
    if (!Log) {
      if (Error)
        *Error += Where;
      return std::nullopt;
    }
    if (Result.contains(Log->uid())) {
      fail(Error, "duplicate transaction " + Log->uid().str() + Where);
      return std::nullopt;
    }
    Result.appendLog(std::move(*Log));
  }

  if (Result.numTxns() == 0 || !Result.txn(0).isInit()) {
    fail(Error, "history must start with the init transaction");
    return std::nullopt;
  }
  // Validate the deferred wr hookups: block order puts writers first
  // (footnote 7) for explorer output, but the format does not require it,
  // so every read's writer is only resolvable after all lines parsed.
  for (unsigned I = 0, E = Result.numTxns(); I != E; ++I) {
    const TransactionLog &Log = Result.txn(I);
    for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
         ++P) {
      std::optional<TxnUid> W = Log.writerOf(P);
      if (!W)
        continue;
      if (!Result.contains(*W)) {
        fail(Error, "read from unknown transaction " + W->str());
        return std::nullopt;
      }
      if (*W == Log.uid() ||
          !Result.txn(*Result.indexOf(*W)).writesVar(Log.event(P).Var)) {
        fail(Error, "invalid wr dependency on " + W->str());
        return std::nullopt;
      }
    }
  }
  Result.checkWellFormed();
  return Result;
}
