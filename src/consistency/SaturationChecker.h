//===- consistency/SaturationChecker.h - Poly checkers for RC/RA/CC -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polynomial-time consistency checking for Read Committed, Read Atomic
/// and Causal Consistency, following Biswas & Enea (OOPSLA 2019). The key
/// property of these three levels is that the premise φ(t2, t3) of the
/// axiom schema (§2.2.2, eq. 1) does not mention the commit order co:
///
///   RC: φ is wr ∘ po (event-granular),
///   RA: φ is so ∪ wr,
///   CC: φ is (so ∪ wr)+.
///
/// Every axiom instance therefore *forces* a fixed edge (t2, t1) that any
/// witness co must contain, and conversely any strict total order
/// containing so ∪ wr and all forced edges satisfies the axioms. Hence:
///
///   h |= I  ⟺  so ∪ wr ∪ forced(I) is acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_SATURATIONCHECKER_H
#define TXDPOR_CONSISTENCY_SATURATIONCHECKER_H

#include "consistency/ConsistencyChecker.h"
#include "support/Relation.h"

namespace txdpor {

/// Saturation-based checker, parameterized by one of RC / RA / CC.
class SaturationChecker : public ConsistencyChecker {
public:
  explicit SaturationChecker(IsolationLevel Level) : Level(Level) {
    assert((Level == IsolationLevel::ReadCommitted ||
            Level == IsolationLevel::ReadAtomic ||
            Level == IsolationLevel::CausalConsistency) &&
           "saturation applies to RC, RA and CC only");
  }

  IsolationLevel level() const override { return Level; }
  bool isConsistent(const History &H) const override;

  /// The constraint graph so ∪ wr ∪ forced(Level) — exposed for tests and
  /// for diagnosing inconsistencies (a cycle is a violation witness).
  Relation constraintGraph(const History &H) const;

private:
  IsolationLevel Level;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_SATURATIONCHECKER_H
