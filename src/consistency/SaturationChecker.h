//===- consistency/SaturationChecker.h - Poly checkers for RC/RA/CC -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polynomial-time consistency checking for Read Committed, Read Atomic
/// and Causal Consistency, following Biswas & Enea (OOPSLA 2019). The key
/// property of these three levels is that the premise φ(t2, t3) of the
/// axiom schema (§2.2.2, eq. 1) does not mention the commit order co:
///
///   RC: φ is wr ∘ po (event-granular),
///   RA: φ is so ∪ wr,
///   CC: φ is (so ∪ wr)+.
///
/// Every axiom instance therefore *forces* a fixed edge (t2, t1) that any
/// witness co must contain, and conversely any strict total order
/// containing so ∪ wr and all forced edges satisfies the axioms. Hence:
///
///   h |= I  ⟺  so ∪ wr ∪ forced(I) is acyclic.
///
/// The argument is per axiom *instance* — an instance is attached to one
/// read, and forces the edge (t2, t1) regardless of the other instances —
/// so it survives mixing levels per session (MixedSaturationChecker): with
/// each read's premise taken from its reading session's level, the forced
/// edge set is the union of the per-read forced edges, and the same
/// equivalence holds for the mixed commit test of arXiv 2505.18409.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_SATURATIONCHECKER_H
#define TXDPOR_CONSISTENCY_SATURATIONCHECKER_H

#include "consistency/ConsistencyChecker.h"
#include "support/Relation.h"

namespace txdpor {

/// Saturation-based checker, parameterized by one of RC / RA / CC.
class SaturationChecker : public ConsistencyChecker {
public:
  explicit SaturationChecker(IsolationLevel Level) : Level(Level) {
    assert((Level == IsolationLevel::ReadCommitted ||
            Level == IsolationLevel::ReadAtomic ||
            Level == IsolationLevel::CausalConsistency) &&
           "saturation applies to RC, RA and CC only");
  }

  IsolationLevel level() const override { return Level; }
  bool isConsistent(const History &H) const override;

  /// The constraint graph so ∪ wr ∪ forced(Level) — exposed for tests and
  /// for diagnosing inconsistencies (a cycle is a violation witness).
  Relation constraintGraph(const History &H) const;

private:
  IsolationLevel Level;
};

/// Polynomial checker for per-session mixes of the saturable levels: every
/// read contributes the forced edges of its reading session's level
/// (Trivial sessions contribute none), and the history satisfies the
/// assignment iff so ∪ wr ∪ forced(assignment) is acyclic. This is the
/// production decision procedure behind explore-ce with a mixed base
/// assignment; validated against BruteForceChecker(LevelAssignment) by the
/// differential oracle and the mixed-level test suite.
class MixedSaturationChecker : public ConsistencyChecker {
public:
  explicit MixedSaturationChecker(LevelAssignment Levels)
      : Levels(std::move(Levels)) {
    assert(this->Levels.allPrefixClosedCausallyExtensible() &&
           "saturation mixes true, RC, RA and CC only");
  }

  /// The strongest level of the assignment (the checker interface exposes
  /// one level; per-session detail is in levels()).
  IsolationLevel level() const override { return Levels.strongest(); }
  const LevelAssignment &levels() const { return Levels; }
  bool isConsistent(const History &H) const override;

  /// so ∪ wr plus the per-read forced edges of the assignment.
  Relation constraintGraph(const History &H) const;

private:
  LevelAssignment Levels;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_SATURATIONCHECKER_H
