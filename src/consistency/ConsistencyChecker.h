//===- consistency/ConsistencyChecker.h - Checker interface ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deciding whether a history satisfies an isolation level (Def. 2.2) is
/// the basic oracle of all the SMC algorithms: it implements ValidWrites,
/// the Optimality/readLatest conditions, and the final Valid filter. The
/// paper delegates this to the algorithms of Biswas & Enea (OOPSLA 2019):
/// polynomial time for RC, RA, CC; NP-complete for SI and SER. This module
/// mirrors that split:
///
///   * SaturationChecker   — RC / RA / CC, polynomial.
///   * SerializabilityChecker — commit-sequence search with memoization.
///   * SnapshotIsolationChecker — start/commit point search with
///     memoization.
///   * BruteForceChecker   — literal Def. 2.2 (enumerate commit orders,
///     evaluate axioms); test oracle only.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_CONSISTENCYCHECKER_H
#define TXDPOR_CONSISTENCY_CONSISTENCYCHECKER_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"

#include <memory>

namespace txdpor {

/// Decides history consistency for one isolation level. Checkers are
/// stateless and thread-compatible.
class ConsistencyChecker {
public:
  virtual ~ConsistencyChecker() = default;

  /// The level this checker decides.
  virtual IsolationLevel level() const = 0;

  /// Returns true iff \p H satisfies the level (Def. 2.2). Pending
  /// transactions are treated exactly like committed ones — the axioms see
  /// transactions only through writes(t) and reads(t), and only an abort
  /// event hides writes (§2.2.1).
  virtual bool isConsistent(const History &H) const = 0;
};

/// Returns the production checker for \p Level (a shared singleton).
const ConsistencyChecker &checkerFor(IsolationLevel Level);

/// Convenience wrapper around checkerFor().isConsistent().
inline bool isConsistent(const History &H, IsolationLevel Level) {
  return checkerFor(Level).isConsistent(H);
}

/// Creates a fresh checker instance (mainly for tests that want to mix
/// production and reference implementations explicitly).
std::unique_ptr<ConsistencyChecker> makeChecker(IsolationLevel Level);

/// Creates the checker for a per-session level assignment: the
/// single-level checker when \p Levels is not mixed, a
/// MixedSaturationChecker for mixes within the saturable chain
/// true/RC/RA/CC. A mixed assignment naming SI or SER has no polynomial
/// decision procedure; it gets the (exponential) BruteForceChecker so
/// the verdict stays correct rather than silently wrong.
std::unique_ptr<ConsistencyChecker> makeChecker(const LevelAssignment &Levels);

/// Convenience wrapper: checks \p H against the per-session assignment.
bool isConsistent(const History &H, const LevelAssignment &Levels);

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_CONSISTENCYCHECKER_H
