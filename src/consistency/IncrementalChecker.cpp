//===- consistency/IncrementalChecker.cpp - Incremental commit test -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/IncrementalChecker.h"

#include "trace/Counters.h"
#include "trace/Trace.h"

#include <algorithm>
#include <optional>

using namespace txdpor;

namespace {

inline bool testBit(const uint64_t *Bits, unsigned I) {
  return (Bits[I / 64] >> (I % 64)) & 1;
}

inline void setBit(uint64_t *Bits, unsigned I) {
  Bits[I / 64] |= uint64_t(1) << (I % 64);
}

} // namespace

bool ConstraintState::insertClosureEdge(Relation &R, unsigned A, unsigned B) {
  if (A == B || R.get(B, A))
    return false; // The edge closes a cycle through an existing path.
  if (R.get(A, B))
    return true; // Already implied; the closure cannot change.
  R.orRow(A, B);
  R.set(A, B);
  // Everything that reached A now also reaches B and B's successors.
  for (unsigned I = 0; I != NumTxns; ++I)
    if (I != A && R.get(I, A))
      R.orRow(I, A);
  return true;
}

void ConstraintState::beginBlock(unsigned Idx, TxnUid Uid) {
  assert(!Inconsistent && "extending an inconsistent state");
  assert(!HasOpen && "a transaction is already open");
  assert(!Uid.isInit() && "the initial transaction is tracked at build");
  assert(Idx == NumTxns && "blocks must be appended in order");
  assert(Idx < MaxN && "state capacity exceeded (wrong MaxTxns?)");

  NumTxns = Idx + 1;
  SessionOfTxn[Idx] = Uid.Session;
  HasOpen = true;
  OpenIdx = Idx;
  OpenLevel = Levels.levelFor(Uid.Session);
  std::fill(OpenPreds.begin(), OpenPreds.end(), 0);
  OpenReads.clear();

  // Session-order edges end in the fresh sink, so they can never close a
  // cycle; so is transitive (§2.2.1), hence *every* earlier transaction
  // of the session is a direct predecessor, not just the last one.
  uint64_t *Direct = OpenPreds.data();
  uint64_t *Causal = OpenPreds.data() + Words;
  auto AddSo = [&](unsigned P) {
    SoWr.set(P, Idx);
    bool OkC = insertClosureEdge(CausalClosure, P, Idx);
    bool OkG = TrivialOnly || insertClosureEdge(GClosure, P, Idx);
    assert(OkC && OkG && "an edge into a fresh sink cannot cycle");
    (void)OkC;
    (void)OkG;
    setBit(Direct, P);
  };
  AddSo(0); // The initial transaction precedes everyone (Def. 2.1).
  for (unsigned P = 1; P != Idx; ++P)
    if (SessionOfTxn[P] == Uid.Session)
      AddSo(P);
  // Causal predecessors: whatever now reaches the new block.
  for (unsigned I = 0; I != Idx; ++I)
    if (CausalClosure.get(I, Idx))
      setBit(Causal, I);
}

void ConstraintState::applyBegin(TxnUid Uid) { beginBlock(NumTxns, Uid); }

void ConstraintState::collectReadEdges(unsigned W, VarId Var,
                                       std::vector<Edge> &Out) const {
  Out.clear();
  const IsolationLevel L = OpenLevel;
  if (L == IsolationLevel::Trivial)
    return;

  const uint64_t *Direct = OpenPreds.data();
  const uint64_t *Causal = OpenPreds.data() + Words;

  if (L == IsolationLevel::ReadCommitted) {
    // Event-granular premise (wr ∘ po): writers of the open transaction's
    // earlier reads. Later wr edges never grow an RC premise, so there is
    // no retroactive part.
    for (const ReadRec &R : OpenReads)
      if (R.Writer != W && writesVar(R.Writer, Var))
        Out.push_back({R.Writer, W});
    return;
  }

  assert((L == IsolationLevel::ReadAtomic ||
          L == IsolationLevel::CausalConsistency) &&
         "saturable levels only");
  const uint64_t *Premise = L == IsolationLevel::ReadAtomic ? Direct : Causal;

  // (a) The new read's own axiom instances: premise ∩ writers(Var) → W.
  // The wr edge W → open also puts {W} (RA) resp. {W} ∪ causalPreds(W)
  // (CC) into the premise, but W itself is excluded (t2 ≠ t1) and a
  // causal predecessor T2 of W already reaches W in every closure, so its
  // forced edge (T2, W) can neither cycle nor change the closure — those
  // instances are skipped.
  const uint64_t *VarWriters = &WriterBits[static_cast<size_t>(Var) * Words];
  for (unsigned I = 0; I != Words; ++I) {
    uint64_t Bits = Premise[I] & VarWriters[I];
    while (Bits) {
      unsigned T2 = I * 64 + static_cast<unsigned>(__builtin_ctzll(Bits));
      Bits &= Bits - 1;
      if (T2 != W)
        Out.push_back({T2, W});
    }
  }

  // (b) Retroactive growth: the wr edge W → open enlarges φ(·, open) for
  // every earlier read of the open transaction (§2.2.2 quantifies over
  // the whole history's so ∪ wr, not a prefix of it).
  auto GrownBy = [&](unsigned T2) {
    for (const ReadRec &R : OpenReads)
      if (T2 != R.Writer && writesVar(T2, R.Var))
        Out.push_back({T2, R.Writer});
  };
  if (L == IsolationLevel::ReadAtomic) {
    if (!testBit(Direct, W))
      GrownBy(W);
    return;
  }
  if (!testBit(Causal, W)) {
    GrownBy(W);
    for (unsigned T2 = 0; T2 != NumTxns; ++T2)
      if (CausalClosure.get(T2, W) && !testBit(Causal, T2))
        GrownBy(T2);
  }
}

namespace {

/// Cycle search over the edge graph with ≤ 64 nodes: Gray marks the DFS
/// stack, Done the finished nodes.
template <typename ArcFnT>
bool dfsCycle64(size_t K, ArcFnT Arc, size_t Node, uint64_t &Gray,
                uint64_t &Done) {
  Gray |= uint64_t(1) << Node;
  for (size_t J = 0; J != K; ++J) {
    if (J == Node || !Arc(Node, J))
      continue;
    if (Gray & (uint64_t(1) << J))
      return true;
    if (!(Done & (uint64_t(1) << J)) && dfsCycle64(K, Arc, J, Gray, Done))
      return true;
  }
  Gray &= ~(uint64_t(1) << Node);
  Done |= uint64_t(1) << Node;
  return false;
}

} // namespace

bool ConstraintState::createsCycle(const std::vector<Edge> &Edges) const {
  // A new cycle must use at least one new edge; between consecutive new
  // edges it follows (possibly empty) paths of the old acyclic graph,
  // which the maintained closure answers in O(1).
  for (const Edge &E : Edges)
    if (GClosure.get(E.To, E.From))
      return true;
  const size_t K = Edges.size();
  if (K < 2)
    return false;
  auto Arc = [&](size_t I, size_t J) {
    return Edges[I].To == Edges[J].From ||
           GClosure.get(Edges[I].To, Edges[J].From);
  };
  if (K <= 64) {
    uint64_t Gray = 0, Done = 0;
    for (size_t S = 0; S != K; ++S)
      if (!(Done & (uint64_t(1) << S)) && dfsCycle64(K, Arc, S, Gray, Done))
        return true;
    return false;
  }
  // Degenerate fallback (more than 64 forced edges from one probe).
  std::vector<uint8_t> Color(K, 0);
  std::vector<std::pair<size_t, size_t>> Stack;
  for (size_t S = 0; S != K; ++S) {
    if (Color[S])
      continue;
    Stack.push_back({S, 0});
    Color[S] = 1;
    while (!Stack.empty()) {
      auto &[Node, Next] = Stack.back();
      if (Next == K) {
        Color[Node] = 2;
        Stack.pop_back();
        continue;
      }
      size_t J = Next++;
      if (J == Node || !Arc(Node, J))
        continue;
      if (Color[J] == 1)
        return true;
      if (Color[J] == 0) {
        Color[J] = 1;
        Stack.push_back({J, 0});
      }
    }
  }
  return false;
}

bool ConstraintState::readAdmits(unsigned W, VarId Var) const {
  assert(!Inconsistent && "probing an inconsistent state");
  assert(HasOpen && "no open transaction to probe");
  assert(W != OpenIdx && "a read cannot read-from its own transaction");
  assert(W < NumTxns && writesVar(W, Var) &&
         "candidate must be a committed writer of the variable");
  if (TrivialOnly)
    return true; // No forced edges anywhere; the wr edge ends in a sink.
  // The wr edge W → open ends in a so ∪ wr sink and cannot cycle; only
  // the forced edges — all between completed transactions — can.
  collectReadEdges(W, Var, Scratch.Edges);
  return !createsCycle(Scratch.Edges);
}

void ConstraintState::applyExternalRead(unsigned W, VarId Var) {
  assert(!Inconsistent && "extending an inconsistent state");
  assert(HasOpen && "no open transaction");
  assert(W != OpenIdx && W < NumTxns && writesVar(W, Var) &&
         "wr writer must be a committed writer of the variable");
  if (TrivialOnly) {
    // Premises and the forced closure are never consulted; only the
    // causal closure (readLatest truncations) needs the wr edge.
    SoWr.set(W, OpenIdx);
    bool Ok = insertClosureEdge(CausalClosure, W, OpenIdx);
    assert(Ok && "a wr edge into the open sink cannot cycle");
    (void)Ok;
    return;
  }
  collectReadEdges(W, Var, Scratch.Edges);

  SoWr.set(W, OpenIdx);
  bool OkC = insertClosureEdge(CausalClosure, W, OpenIdx);
  bool OkG = insertClosureEdge(GClosure, W, OpenIdx);
  assert(OkC && OkG && "a wr edge into the open sink cannot cycle");
  (void)OkC;
  (void)OkG;

  for (const Edge &E : Scratch.Edges) {
    if (!insertClosureEdge(GClosure, E.From, E.To)) {
      // Only reachable through the bulk constructor: the engine probes
      // readAdmits first and never applies an inadmissible writer.
      Inconsistent = true;
      return;
    }
  }

  uint64_t *Direct = OpenPreds.data();
  uint64_t *Causal = OpenPreds.data() + Words;
  setBit(Direct, W);
  if (!testBit(Causal, W)) {
    setBit(Causal, W);
    // The causal past of the committed writer is frozen; fold it in once.
    for (unsigned I = 0; I != NumTxns; ++I)
      if (CausalClosure.get(I, W))
        setBit(Causal, I);
  }
  OpenReads.push_back({Var, W});
}

void ConstraintState::applyCommit(const TransactionLog &Log) {
  assert(HasOpen && !Inconsistent);
  assert(Log.isCommitted() && "applyCommit on a non-committed log");
  for (VarId V : Log.writtenVars()) {
    assert(V < NumVars && "variable out of range");
    setBit(&WriterBits[static_cast<size_t>(V) * Words], OpenIdx);
  }
  HasOpen = false;
  OpenReads.clear();
}

void ConstraintState::applyAbort() {
  assert(HasOpen && !Inconsistent);
  // The aborted transaction's writes stay invisible and its so/wr/forced
  // edges are already in the graph — nothing to add.
  HasOpen = false;
  OpenReads.clear();
}

ConstraintState::ConstraintState(const ConstraintState &Old,
                                 const std::vector<unsigned> &Keep,
                                 unsigned MaxTxns)
    : Levels(Old.Levels) {
  assert(!Old.Inconsistent && "compacting an inconsistent state");
  assert(!Old.HasOpen && "compacting with an open transaction");
  assert(!Keep.empty() && Keep.front() == 0 &&
         "the initial transaction must be retained");
  const unsigned K = static_cast<unsigned>(Keep.size());
  assert(K <= Old.NumTxns && "more retained blocks than tracked");
  MaxN = std::max(MaxTxns, K);
  Words = (MaxN + 63) / 64;
  NumTxns = K;
  NumVars = Old.NumVars;
  TrivialOnly = Old.TrivialOnly;
  SoWr = Relation(MaxN);
  CausalClosure = Relation(MaxN);
  if (!TrivialOnly)
    GClosure = Relation(MaxN);
  WriterBits.assign(static_cast<size_t>(NumVars) * Words, 0);
  SessionOfTxn.assign(MaxN, 0);
  OpenPreds.assign(2 * static_cast<size_t>(Words), 0);
  for (unsigned I = 0; I != K; ++I) {
    assert(Keep[I] < Old.NumTxns && "retained index out of range");
    assert((I == 0 || Keep[I - 1] < Keep[I]) &&
           "retained indices must be strictly ascending");
    SessionOfTxn[I] = Old.SessionOfTxn[Keep[I]];
    for (unsigned J = 0; J != K; ++J) {
      if (J == I)
        continue;
      if (Old.SoWr.get(Keep[I], Keep[J]))
        SoWr.set(I, J);
      if (Old.CausalClosure.get(Keep[I], Keep[J]))
        CausalClosure.set(I, J);
      if (!TrivialOnly && Old.GClosure.get(Keep[I], Keep[J]))
        GClosure.set(I, J);
    }
    for (VarId V = 0; V != NumVars; ++V)
      if (Old.writesVar(Keep[I], V))
        setBit(&WriterBits[static_cast<size_t>(V) * Words], I);
  }
}

void ConstraintState::initFromHistory(const History &H, unsigned MaxTxns) {
  assert(Levels.allPrefixClosedCausallyExtensible() &&
         "the incremental commit test covers the saturable levels only");
  const unsigned N = H.numTxns();
  assert(N >= 1 && H.txn(0).isInit() &&
         "history must start with the initial transaction");
  MaxN = std::max(MaxTxns, N);
  Words = (MaxN + 63) / 64;
  TrivialOnly = Levels.strongest() == IsolationLevel::Trivial;
  SoWr = Relation(MaxN);
  CausalClosure = Relation(MaxN);
  if (!TrivialOnly)
    GClosure = Relation(MaxN);
  // The initial transaction writes value 0 to every variable, so its log
  // spans the variable universe.
  std::vector<VarId> InitVars = H.txn(0).writtenVars();
  NumVars = InitVars.empty() ? 0 : InitVars.back() + 1;
  WriterBits.assign(static_cast<size_t>(NumVars) * Words, 0);
  SessionOfTxn.assign(MaxN, 0);
  SessionOfTxn[0] = TxnUid::InitSession;
  OpenPreds.assign(2 * static_cast<size_t>(Words), 0);
  NumTxns = 1;
  for (VarId V : InitVars)
    setBit(&WriterBits[static_cast<size_t>(V) * Words], 0);
}

void ConstraintState::replayBlocks(const History &H, unsigned From,
                                   unsigned To) {
  assert(From == NumTxns && "state must track exactly the blocks below From");
  assert(From >= 1 && To <= H.numTxns() && "replay range out of bounds");
  assert(!Inconsistent && "extending an inconsistent state");
  // Only genuinely incremental continuations get their own span and
  // counter; a From == 1 replay is the body of a bulk rebuild, whose
  // constructor already emitted the BulkRebuild span around this call.
  std::optional<trace::SpanGuard> ReplaySpan;
  if (From > 1) {
    ReplaySpan.emplace(trace::Category::Check, trace::Name::PrefixReplay,
                       From, To - From);
    trace::bump(trace::Counter::PrefixReplays);
  }

  // Replay the blocks through the same appliers the explorer uses. A
  // pending block need not be last (the readLatest truncations keep the
  // truncated reader mid-order); its probe context is set aside while the
  // later blocks replay — sound because nothing ever leaves a pending
  // sink, so later blocks cannot mention it — and restored at the end.
  bool Stashed = false;
  unsigned StashIdx = 0;
  IsolationLevel StashLevel = IsolationLevel::Trivial;
  std::vector<uint64_t> StashPreds;
  std::vector<ReadRec> StashReads;

  for (unsigned Idx = From; Idx != To && !Inconsistent; ++Idx) {
    const TransactionLog &Log = H.txn(Idx);
    if (HasOpen) {
      assert(!Stashed && "more than one pending transaction");
      Stashed = true;
      StashIdx = OpenIdx;
      StashLevel = OpenLevel;
      StashPreds = OpenPreds;
      StashReads = std::move(OpenReads);
      OpenReads.clear();
      HasOpen = false;
    }
    beginBlock(Idx, Log.uid());
    const uint32_t Size = static_cast<uint32_t>(Log.size());
    for (uint32_t P = 1; P != Size && !Inconsistent; ++P) {
      const Event &Ev = Log.event(P);
      switch (Ev.Kind) {
      case EventKind::Read:
        if (std::optional<TxnUid> W = Log.writerOf(P)) {
          std::optional<unsigned> WIdx = H.indexOf(*W);
          assert(WIdx && "wr writer missing from history");
          applyExternalRead(*WIdx, Ev.Var);
        }
        break;
      case EventKind::Write:
        break; // Visible only at commit; a write can never cycle (§3.2).
      case EventKind::Commit:
        applyCommit(Log);
        break;
      case EventKind::Abort:
        applyAbort();
        break;
      case EventKind::Begin:
        assert(false && "begin must be the first event of a log");
        break;
      }
    }
  }

  if (Stashed && !Inconsistent) {
    assert(!HasOpen && "more than one pending transaction");
    HasOpen = true;
    OpenIdx = StashIdx;
    OpenLevel = StashLevel;
    OpenPreds = std::move(StashPreds);
    OpenReads = std::move(StashReads);
  }
}

ConstraintState::ConstraintState(const History &H,
                                 const LevelAssignment &Levels,
                                 unsigned MaxTxns)
    : Levels(Levels) {
  TXDPOR_TRACE_SPAN(Check, BulkRebuild, H.numTxns());
  trace::bump(trace::Counter::BulkRebuilds);
  initFromHistory(H, MaxTxns);
  replayBlocks(H, 1, H.numTxns());
}

ConstraintState::ConstraintState(const History &H,
                                 const LevelAssignment &Levels,
                                 unsigned MaxTxns, unsigned PrefixLen)
    : Levels(Levels) {
  assert(PrefixLen >= 1 && PrefixLen <= H.numTxns() &&
         "prefix length out of range");
  // A from-scratch build, just one that stops early — counted as a bulk
  // rebuild so the trace totals stay honest about non-incremental work.
  TXDPOR_TRACE_SPAN(Check, BulkRebuild, PrefixLen);
  trace::bump(trace::Counter::BulkRebuilds);
  initFromHistory(H, MaxTxns);
  replayBlocks(H, 1, PrefixLen);
}

bool ConstraintState::equivalentTo(const ConstraintState &O) const {
  if (Inconsistent != O.Inconsistent)
    return false;
  if (Inconsistent)
    return true; // Replays stop at the first cycle; only the verdict holds.
  if (NumTxns != O.NumTxns || NumVars != O.NumVars ||
      TrivialOnly != O.TrivialOnly || HasOpen != O.HasOpen)
    return false;
  for (unsigned I = 0; I != NumTxns; ++I) {
    if (SessionOfTxn[I] != O.SessionOfTxn[I])
      return false;
    for (unsigned J = 0; J != NumTxns; ++J) {
      if (SoWr.get(I, J) != O.SoWr.get(I, J) ||
          CausalClosure.get(I, J) != O.CausalClosure.get(I, J))
        return false;
      if (!TrivialOnly && GClosure.get(I, J) != O.GClosure.get(I, J))
        return false;
    }
    for (VarId V = 0; V != NumVars; ++V)
      if (writesVar(I, V) != O.writesVar(I, V))
        return false;
  }
  if (!HasOpen)
    return true;
  if (OpenIdx != O.OpenIdx || OpenLevel != O.OpenLevel)
    return false;
  if (OpenReads.size() != O.OpenReads.size())
    return false;
  for (size_t I = 0; I != OpenReads.size(); ++I)
    if (OpenReads[I].Var != O.OpenReads[I].Var ||
        OpenReads[I].Writer != O.OpenReads[I].Writer)
      return false;
  for (unsigned I = 0; I != NumTxns; ++I) {
    if (testBit(OpenPreds.data(), I) != testBit(O.OpenPreds.data(), I))
      return false;
    if (testBit(OpenPreds.data() + Words, I) !=
        testBit(O.OpenPreds.data() + O.Words, I))
      return false;
  }
  return true;
}

const ConstraintState &PrefixStateCache::stateFor(unsigned PrefixLen) {
  assert(PrefixLen >= 1 && PrefixLen <= H.numTxns() &&
         "prefix length out of range");
  auto It = ByLen.lower_bound(PrefixLen);
  if (It != ByLen.end() && It->first == PrefixLen)
    return It->second;
  ConstraintState State;
  if (It == ByLen.begin()) {
    // No shorter checkpoint yet: build this one from scratch.
    State = ConstraintState(H, Levels, MaxTxns, PrefixLen);
  } else {
    const auto &Prev = *std::prev(It);
    assert(Prev.second.consistent() && !Prev.second.hasOpenTxn() &&
           "prefixes of the expanded history are complete and consistent");
    State = Prev.second;
    State.replayBlocks(H, Prev.first, PrefixLen);
  }
  return ByLen.emplace_hint(It, PrefixLen, std::move(State))->second;
}
