//===- consistency/Explain.h - Violation witnesses and explanations -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When a history is inconsistent with an isolation level, users want to
/// know *why*. For RC / RA / CC the saturation checkers give a crisp
/// witness: a cycle in the constraint graph so ∪ wr ∪ forced(I), where
/// each forced edge is an instance of the level's axiom (like the cycle
/// the paper walks through for Fig. 3). This module extracts that cycle
/// with per-edge provenance and renders it as prose.
///
/// SI and SER violations have no succinct cycle witness in general
/// (checking is NP-complete); for those the explanation reports the
/// outcome of the search and, when a weaker saturation level already
/// fails, reuses its cycle.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_EXPLAIN_H
#define TXDPOR_CONSISTENCY_EXPLAIN_H

#include "consistency/ConsistencyChecker.h"

#include <string>
#include <vector>

namespace txdpor {

/// Provenance of one edge of the constraint graph.
struct ConstraintEdge {
  enum class Kind : uint8_t {
    SessionOrder, ///< (a, b) ∈ so.
    WriteRead,    ///< (a, b) ∈ wr.
    Axiom,        ///< Forced by the axiom: a must commit before b.
  };
  Kind EdgeKind;
  unsigned From, To;
  /// For Axiom edges: the read that triggered the instance.
  VarId Var = 0;
  unsigned ReaderTxn = 0;

  std::string describe(const History &H, const VarNameFn *Names) const;
};

/// A violation explanation for one (history, level) pair.
struct ViolationExplanation {
  bool Consistent = true;
  IsolationLevel Level;
  /// For saturation levels: edges forming a commit-order cycle (the i-th
  /// edge goes from Cycle[i] to Cycle[(i+1) % size]).
  std::vector<ConstraintEdge> Cycle;
  /// Human-readable multi-line account.
  std::string Text;
};

/// Analyzes \p H against \p Level and, if inconsistent, produces a
/// witness. For RC / RA / CC the witness is a constraint cycle; for
/// SI / SER it reuses a weaker level's cycle when one exists, otherwise
/// reports the exhausted search.
ViolationExplanation explainViolation(const History &H, IsolationLevel Level,
                                      const VarNameFn *Names = nullptr);

/// Builds the constraint graph of a saturation level together with edge
/// provenance. \p Level must be RC, RA or CC.
Relation constraintGraphWithReasons(const History &H, IsolationLevel Level,
                                    std::vector<ConstraintEdge> &Edges);

/// Finds any directed cycle of \p Graph; returns the node sequence (empty
/// if acyclic).
std::vector<unsigned> findCycle(const Relation &Graph);

/// Shrinks an inconsistent history to a locally-minimal core that still
/// violates \p Level: repeatedly drops whole transactions and truncates
/// unused event suffixes (closing the remainder downward under
/// po ∪ so ∪ wr so it stays a valid prefix) while the violation persists
/// — the transaction-granular loop of history/Prefix.h's shrinkToCore.
/// The result typically isolates the handful of accesses forming the
/// anomaly — ideal for bug reports. \p H must be inconsistent with
/// \p Level.
History minimizeViolation(const History &H, IsolationLevel Level);

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_EXPLAIN_H
