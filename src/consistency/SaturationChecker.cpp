//===- consistency/SaturationChecker.cpp - Poly checkers for RC/RA/CC -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/SaturationChecker.h"

#include <optional>

using namespace txdpor;

namespace {

/// The forced-edge loop shared by the uniform and the mixed checker
/// (one implementation so the two can never drift): for each external
/// read, add the edges its reading transaction's level forces.
/// \p LevelFor maps a session id to its level — a constant for the
/// uniform checker. The base so ∪ wr relation is seeded into the result
/// once and reused as the RA premise without recomputation.
template <typename LevelFnT>
Relation forcedConstraintGraph(const History &H, LevelFnT LevelFor) {
  unsigned N = H.numTxns();
  const Relation &SoWr = H.soWrRelation();
  Relation Constraints = SoWr;

  // The CC premise; the relation is memoized on the history value, so
  // touching it lazily here costs one closure at most.
  auto GetCausal = [&]() -> const Relation & { return H.causalRelation(); };

  for (unsigned T3 = 0; T3 != N; ++T3) {
    const TransactionLog &Log = H.txn(T3);
    IsolationLevel Level = LevelFor(Log.uid().Session);
    if (Level == IsolationLevel::Trivial)
      continue;
    for (uint32_t Pos = 0, PE = static_cast<uint32_t>(Log.size()); Pos != PE;
         ++Pos) {
      std::optional<TxnUid> W = Log.writerOf(Pos);
      if (!W)
        continue;
      unsigned T1 = *H.indexOf(*W);
      VarId X = Log.event(Pos).Var;

      if (Level == IsolationLevel::ReadCommitted) {
        // Event-granular premise: t2 is read by an earlier read of the
        // same transaction (wr ∘ po reaches this read event).
        for (uint32_t Prev = 0; Prev != Pos; ++Prev) {
          std::optional<TxnUid> PW = Log.writerOf(Prev);
          if (!PW)
            continue;
          unsigned T2 = *H.indexOf(*PW);
          if (T2 != T1 && H.txn(T2).writesVar(X))
            Constraints.set(T2, T1);
        }
        continue;
      }

      // Transaction-level premise: so ∪ wr for RA, its transitive
      // closure for CC.
      const Relation &Phi =
          Level == IsolationLevel::ReadAtomic ? SoWr : GetCausal();
      for (unsigned T2 = 0; T2 != N; ++T2)
        if (T2 != T1 && Phi.get(T2, T3) && H.txn(T2).writesVar(X))
          Constraints.set(T2, T1);
    }
  }
  return Constraints;
}

} // namespace

Relation SaturationChecker::constraintGraph(const History &H) const {
  return forcedConstraintGraph(H, [this](uint32_t) { return Level; });
}

bool SaturationChecker::isConsistent(const History &H) const {
  return constraintGraph(H).isAcyclic();
}

Relation MixedSaturationChecker::constraintGraph(const History &H) const {
  return forcedConstraintGraph(
      H, [this](uint32_t Session) { return Levels.levelFor(Session); });
}

bool MixedSaturationChecker::isConsistent(const History &H) const {
  return constraintGraph(H).isAcyclic();
}
