//===- consistency/SaturationChecker.cpp - Poly checkers for RC/RA/CC -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/SaturationChecker.h"

using namespace txdpor;

Relation SaturationChecker::constraintGraph(const History &H) const {
  unsigned N = H.numTxns();
  Relation Constraints = H.soWrRelation();

  // φ for RA / CC; unused for RC.
  Relation Phi(N);
  if (Level == IsolationLevel::ReadAtomic)
    Phi = H.soWrRelation();
  else if (Level == IsolationLevel::CausalConsistency)
    Phi = H.causalRelation();

  for (unsigned T3 = 0; T3 != N; ++T3) {
    const TransactionLog &Log = H.txn(T3);
    for (uint32_t Pos = 0, PE = static_cast<uint32_t>(Log.size()); Pos != PE;
         ++Pos) {
      std::optional<TxnUid> W = Log.writerOf(Pos);
      if (!W)
        continue;
      unsigned T1 = *H.indexOf(*W);
      VarId X = Log.event(Pos).Var;

      if (Level == IsolationLevel::ReadCommitted) {
        // Event-granular premise: t2 is read by an earlier read of the
        // same transaction (wr ∘ po reaches this read event).
        for (uint32_t Prev = 0; Prev != Pos; ++Prev) {
          std::optional<TxnUid> PW = Log.writerOf(Prev);
          if (!PW)
            continue;
          unsigned T2 = *H.indexOf(*PW);
          if (T2 != T1 && H.txn(T2).writesVar(X))
            Constraints.set(T2, T1);
        }
        continue;
      }

      for (unsigned T2 = 0; T2 != N; ++T2)
        if (T2 != T1 && Phi.get(T2, T3) && H.txn(T2).writesVar(X))
          Constraints.set(T2, T1);
    }
  }
  return Constraints;
}

bool SaturationChecker::isConsistent(const History &H) const {
  return constraintGraph(H).isAcyclic();
}
