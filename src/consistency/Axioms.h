//===- consistency/Axioms.h - First-order axioms over (h, co) -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Literal evaluation of the isolation-level axioms of Fig. 2 and Fig. A.1
/// against a concrete commit order co. This is the ground-truth semantics:
/// a history satisfies a level iff some strict total order co extending
/// so ∪ wr satisfies the level's axioms (Def. 2.2). The efficient checkers
/// are validated against enumeration over these predicates.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_AXIOMS_H
#define TXDPOR_CONSISTENCY_AXIOMS_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"
#include "support/Relation.h"

namespace txdpor {

/// Evaluates the axioms of \p Level on (\p H, \p Co). \p Co must be a
/// strict total order over H's transactions given as a Relation; the caller
/// is responsible for Co extending so ∪ wr (Def. 2.2 requires it; this
/// function only checks the axioms). For Trivial the result is always true.
bool axiomsHold(const History &H, const Relation &Co, IsolationLevel Level);

/// Mixed-level variant (arXiv 2505.18409): every axiom-schema instance is
/// attached to a read, and the premise φ used for that instance is the one
/// of the *reading* transaction's session level under \p Levels. For a
/// non-mixed assignment this is exactly axiomsHold(H, Co, default level);
/// SI sessions require both of their axioms (Prefix and Conflict) on their
/// reads. Like the uniform overload, \p Co must be a strict total order
/// extending so ∪ wr.
bool axiomsHold(const History &H, const Relation &Co,
                const LevelAssignment &Levels);

/// The Read Committed axiom (Fig. A.1a), which is event-granular:
/// for every external read event α of x in t3 reading from t1, and every
/// t2 ∉ {t1} with writes(t2) ∋ x and ⟨t2, α⟩ ∈ wr ∘ po:  (t2, t1) ∈ co.
bool readCommittedAxiom(const History &H, const Relation &Co);

/// The Read Atomic axiom (Fig. A.1b): φ(t2, t3) = (t2, t3) ∈ so ∪ wr.
bool readAtomicAxiom(const History &H, const Relation &Co);

/// The Causal Consistency axiom (Fig. 2a): φ(t2, t3) = (t2,t3) ∈ (so∪wr)+.
bool causalConsistencyAxiom(const History &H, const Relation &Co);

/// The Prefix axiom (Fig. 2b): φ(t2, t3) = (t2, t3) ∈ co* ∘ (wr ∪ so).
bool prefixAxiom(const History &H, const Relation &Co);

/// The Conflict axiom (Fig. 2c): t2 writes x; if t3 writes y, t4 writes y,
/// (t2,t4) ∈ co*, (t4,t3) ∈ co, then (t2,t1) ∈ co.
bool conflictAxiom(const History &H, const Relation &Co);

/// The Serializability axiom (Fig. 2d): φ(t2, t3) = (t2, t3) ∈ co.
bool serializabilityAxiom(const History &H, const Relation &Co);

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_AXIOMS_H
