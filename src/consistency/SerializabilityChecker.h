//===- consistency/SerializabilityChecker.h - SER via sequence search -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializability checking (NP-complete in general, Biswas & Enea 2019).
/// The SER axiom (Fig. 2d) is equivalent to: there is a total order co
/// extending so ∪ wr in which every external read of x returns the write
/// of the co-latest preceding transaction that visibly writes x. We search
/// for such an order by appending transactions one at a time:
///
///   * a transaction is appendable when all its so ∪ wr predecessors are
///     placed and, for each of its external reads of x, the last placed
///     writer of x is exactly its wr writer;
///   * failed search states are memoized on (placed-set, last-writer map),
///     which is the entire relevant state of a prefix.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_SERIALIZABILITYCHECKER_H
#define TXDPOR_CONSISTENCY_SERIALIZABILITYCHECKER_H

#include "consistency/ConsistencyChecker.h"

#include <optional>
#include <vector>

namespace txdpor {

class SerializabilityChecker : public ConsistencyChecker {
public:
  IsolationLevel level() const override {
    return IsolationLevel::Serializability;
  }
  bool isConsistent(const History &H) const override;

  /// Like isConsistent, but returns the witnessing commit order (a
  /// serialization: transaction indices in commit sequence), or nullopt
  /// if the history is not serializable.
  std::optional<std::vector<unsigned>>
  findCommitOrder(const History &H) const;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_SERIALIZABILITYCHECKER_H
