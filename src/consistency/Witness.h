//===- consistency/Witness.h - Commit-order certificates ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consistency with an isolation level is an existential statement
/// (Def. 2.2: *some* commit order satisfies the axioms), so a checker's
/// "yes" is only as trustworthy as its implementation. This module turns
/// every "yes" into a verifiable certificate: the witnessing commit order
/// itself, which any client can replay through the first-order axioms
/// (consistency/Axioms.h) in polynomial time.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_WITNESS_H
#define TXDPOR_CONSISTENCY_WITNESS_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"
#include "support/Relation.h"

#include <optional>
#include <vector>

namespace txdpor {

/// Returns a strict total commit order (transaction indices in commit
/// sequence) extending so ∪ wr under which \p H satisfies \p Level, or
/// nullopt iff \p H is inconsistent with \p Level. Agrees with
/// isConsistent() by construction.
std::optional<std::vector<unsigned>> findCommitOrder(const History &H,
                                                     IsolationLevel Level);

/// Converts a commit sequence into the corresponding strict total order
/// relation (for feeding axiomsHold).
Relation commitOrderRelation(unsigned NumTxns,
                             const std::vector<unsigned> &Sequence);

/// Validates a certificate: \p Sequence must be a permutation of H's
/// transactions whose order extends so ∪ wr and satisfies the axioms of
/// \p Level.
bool validateCommitOrder(const History &H, IsolationLevel Level,
                         const std::vector<unsigned> &Sequence);

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_WITNESS_H
