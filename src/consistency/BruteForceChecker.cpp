//===- consistency/BruteForceChecker.cpp - Literal Def. 2.2 oracle --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/BruteForceChecker.h"

#include "consistency/Axioms.h"

#include <vector>

using namespace txdpor;

namespace {

/// Enumerates all topological orders of SoWr; calls TryOrder on each and
/// stops early once one satisfies the axioms.
class OrderEnumerator {
public:
  OrderEnumerator(const History &H, const LevelAssignment &Levels)
      : H(H), Levels(Levels), N(H.numTxns()), SoWr(H.soWrRelation()) {}

  bool anyOrderSatisfies() {
    std::vector<bool> Placed(N, false);
    Sequence.clear();
    return enumerate(Placed);
  }

private:
  bool enumerate(std::vector<bool> &Placed) {
    if (Sequence.size() == N) {
      Relation Co(N);
      for (unsigned I = 0; I != N; ++I)
        for (unsigned J = I + 1; J != N; ++J)
          Co.set(Sequence[I], Sequence[J]);
      return axiomsHold(H, Co, Levels);
    }
    for (unsigned T = 0; T != N; ++T) {
      if (Placed[T])
        continue;
      bool Ready = true;
      for (unsigned P = 0; P != N && Ready; ++P)
        if (SoWr.get(P, T) && !Placed[P])
          Ready = false;
      if (!Ready)
        continue;
      Placed[T] = true;
      Sequence.push_back(T);
      if (enumerate(Placed))
        return true;
      Sequence.pop_back();
      Placed[T] = false;
    }
    return false;
  }

  const History &H;
  const LevelAssignment &Levels;
  unsigned N;
  Relation SoWr;
  std::vector<unsigned> Sequence;
};

} // namespace

bool BruteForceChecker::isConsistent(const History &H) const {
  H.checkWellFormed();
  if (!Levels.isMixed() &&
      Levels.defaultLevel() == IsolationLevel::Trivial)
    return true;
  // Def. 2.1 already requires so ∪ wr acyclic; an inconsistent input graph
  // has no commit order at all.
  if (!H.soWrRelation().isAcyclic())
    return false;
  OrderEnumerator Enumerator(H, Levels);
  return Enumerator.anyOrderSatisfies();
}
