//===- consistency/IncrementalChecker.h - Incremental commit test ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental commit-test engine behind ValidWrites (§5.1).
///
/// The saturation equivalence (consistency/SaturationChecker.h) reduces
/// "h satisfies I" for the saturable levels (true/RC/RA/CC, uniform or per
/// session) to "so ∪ wr ∪ forced(I) is acyclic". The scratch checkers
/// rebuild that graph and re-test acyclicity from nothing on every call —
/// the innermost loop of the DPOR pays a full O(N³/64) closure per
/// candidate writer of every external read.
///
/// ConstraintState instead *carries* the saturation state along the
/// exploration tree, exploiting the explorer's ordered-history discipline
/// (events are only ever appended to the unique pending transaction, and
/// the block order extends so ∪ wr):
///
///  * the pending transaction is a so ∪ wr *sink*, so no edge ever leaves
///    it and no new edge can touch the graph anywhere else — appending a
///    begin, write, commit or abort can never close a cycle and costs at
///    most a few O(N/64) row unions;
///  * the causal past of a committed transaction is frozen (every later
///    edge points at the then-pending sink), so the axiom premises of
///    completed reads never grow again, and the premise of the pending
///    transaction's reads grows only through its own new wr edges;
///  * probing a candidate writer W for a new external read therefore
///    reduces to: "would the read's forced edges (all targeting committed
///    transactions) close a cycle through the maintained closure?" — a
///    handful of O(1) reachability bit-tests instead of a graph rebuild.
///
/// One state instance decides *both* the uniform and the per-session mixed
/// commit test — it is parameterized by a LevelAssignment, and a uniform
/// assignment is simply the one-level special case — so the two semantics
/// share every line of the incremental core and cannot drift. The scratch
/// SaturationChecker / MixedSaturationChecker remain the independent
/// reference implementations: NaiveDfs, RandomWalk and the Valid filter
/// keep using them, the DifferentialOracle diffs the two continuously, and
/// tests/incremental_checker_test.cpp pins probe-by-probe equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_INCREMENTALCHECKER_H
#define TXDPOR_CONSISTENCY_INCREMENTALCHECKER_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"
#include "support/Relation.h"

#include <cstdint>
#include <map>
#include <vector>

namespace txdpor {

/// Saturation state of one ordered history, maintained under the
/// explorer's append-only extension steps and carried copy-on-write by
/// value alongside each WorkItem (exactly like the cursor snapshot):
/// copying the state is a few flat-buffer copies, extending it is
/// O(N/64)-per-row work, and probing a candidate writer is O(1)
/// reachability queries against the maintained closures.
///
/// Contract: the history this state tracks must satisfy the ordered-
/// history invariants the explorer maintains (§5) — every so ∪ wr edge
/// goes forward in block order and at most one transaction is pending.
/// (The pending block need not be last: the truncated reader of the
/// readLatest histories sits mid-order.) Like a History value, one state
/// is owned by a single thread at a time; distinct copies may be used
/// concurrently without synchronization since they share no storage.
class ConstraintState {
public:
  ConstraintState() = default;

  /// Bulk-builds the state of \p H by replaying its blocks through the
  /// same incremental appliers the explorer uses event by event — one
  /// code path, so bulk and carried states cannot diverge. Detects
  /// inconsistency on the way (the first forced edge that closes a cycle
  /// flips consistent() to false and stops the build).
  ///
  /// \p MaxTxns pre-sizes every matrix/bitset for the largest history
  /// this state will ever grow to (the program's transaction count plus
  /// the initial transaction); appending within that capacity never
  /// reallocates. 0 sizes for H itself (probe-only states).
  ConstraintState(const History &H, const LevelAssignment &Levels,
                  unsigned MaxTxns = 0);

  /// Like the bulk constructor, but stops after the first \p PrefixLen
  /// blocks of \p H: the result tracks exactly the prefix [0, PrefixLen).
  /// Capacity is still sized for all of H (or \p MaxTxns if larger), so
  /// the state can later be extended with replayBlocks without
  /// reallocating. Seeds the PrefixStateCache checkpoints.
  ConstraintState(const History &H, const LevelAssignment &Levels,
                  unsigned MaxTxns, unsigned PrefixLen);

  /// Compacts \p Old to the blocks listed in \p Keep (strictly ascending,
  /// must retain index 0), renumbering every matrix and bitset — the
  /// state-side half of History::retainBlocks. This is deliberately a
  /// *submatrix copy*, not a rebuild from the compacted history: forced
  /// edges between retained transactions that were derived from evicted
  /// readers' axiom instances are genuine constraints of the full trace
  /// and must survive the eviction (a rebuild would silently drop them).
  /// The restriction of a transitive closure to a subset stays
  /// transitively closed, so every maintained invariant carries over.
  /// \p Old must be consistent with no open transaction. \p MaxTxns
  /// pre-sizes the new capacity (at least Keep.size()).
  ConstraintState(const ConstraintState &Old, const std::vector<unsigned> &Keep,
                  unsigned MaxTxns);

  /// Replays blocks [\p From, \p To) of \p H through the extension
  /// appliers — the delta half of the bulk constructor, exposed so swap
  /// children and readLatest truncations can reuse a state of the shared
  /// prefix instead of rebuilding from block zero. Requires this state to
  /// track exactly the blocks [0, From) of \p H (asserted structurally in
  /// debug builds via the block-append discipline). A pending block may
  /// sit anywhere in [From, To): its probe context is stashed while later
  /// blocks replay, exactly as in the bulk constructor. Replay stops early
  /// if a forced edge closes a cycle (consistent() turns false).
  void replayBlocks(const History &H, unsigned From, unsigned To);

  /// Logical equivalence ignoring capacity: same tracked blocks, closures,
  /// writer index and open-transaction context below numTxns(). Two
  /// inconsistent states compare equal regardless of where the replay
  /// stopped — only the verdict is meaningful then. The cross-assert
  /// backing the incremental swap-child rebuild (debug builds and the
  /// DifferentialOracle compare every delta-rebuilt state against the
  /// bulk-constructed reference with this).
  bool equivalentTo(const ConstraintState &O) const;

  /// False once some read's forced edges closed a cycle: the tracked
  /// history violates the base assignment. Extension appliers must not be
  /// called on an inconsistent state.
  bool consistent() const { return !Inconsistent; }

  /// Transactions tracked so far (== the history's block count).
  unsigned numTxns() const { return NumTxns; }

  /// The per-session assignment every commit test is evaluated under.
  const LevelAssignment &levels() const { return Levels; }

  /// The maintained causal closure (so ∪ wr)+ over block indices — the
  /// relation History::causalRelation() computes from scratch. Rows are
  /// sized for capacity; only indices below numTxns() are meaningful.
  const Relation &causal() const { return CausalClosure; }

  /// True if committed transaction \p Txn visibly writes \p Var — the
  /// maintained index behind History::committedWriters' linear scan.
  bool writesVar(unsigned Txn, VarId Var) const {
    assert(Var < NumVars && "variable out of range");
    return (WriterBits[wordIndex(Var, Txn)] >> (Txn % 64)) & 1;
  }

  /// Calls \p Fn(W) for every committed writer of \p Var in ascending
  /// block order (the initial transaction first) — the candidate
  /// enumeration of ValidWrites, without materializing a vector.
  template <typename FnT> void forEachCommittedWriter(VarId Var, FnT Fn) const {
    assert(Var < NumVars && "variable out of range");
    const uint64_t *Row = &WriterBits[static_cast<size_t>(Var) * Words];
    for (unsigned W = 0; W != Words; ++W) {
      uint64_t Word = Row[W];
      while (Word) {
        Fn(W * 64 + static_cast<unsigned>(__builtin_ctzll(Word)));
        Word &= Word - 1;
      }
    }
  }

  /// True if \p A must commit before \p B under the maintained constraint
  /// graph — (so ∪ wr ∪ forced)+ for saturating assignments, (so ∪ wr)+
  /// when every session is at "true" (no forced edges exist). The
  /// streaming GC uses this to prove a window transaction unreachable
  /// from every retained one before evicting it.
  bool constrains(unsigned A, unsigned B) const {
    assert(A < NumTxns && B < NumTxns && "transaction index out of range");
    return TrivialOnly ? CausalClosure.get(A, B) : GClosure.get(A, B);
  }

  /// True while a transaction is open (pending): the target of probes and
  /// read/commit/abort appliers.
  bool hasOpenTxn() const { return HasOpen; }
  /// Block index of the open transaction.
  unsigned openTxn() const {
    assert(HasOpen && "no open transaction");
    return OpenIdx;
  }

  /// The incremental commit test (§5.1): would appending an external read
  /// of \p Var to the open transaction, with its wr dependency on the
  /// committed writer \p W, keep so ∪ wr ∪ forced acyclic? Equivalent to
  /// the scratch checker's verdict on the extended history (asserted by
  /// the engine in debug builds), at the cost of O(premise) bit-tests.
  bool readAdmits(unsigned W, VarId Var) const;

  //===--------------------------------------------------------------------===
  // Extension appliers, mirroring the engine's Next steps. Writes and
  // internal reads change nothing (a write only matters once its
  // transaction commits; an internal read has no wr edge), so they have
  // no applier.
  //===--------------------------------------------------------------------===

  /// Registers the begin of \p Uid as a new open transaction: adds its
  /// session-order edges (which end in the new sink and can never cycle).
  void applyBegin(TxnUid Uid);

  /// Registers the wr choice \p W for the just-appended external read of
  /// \p Var: adds the wr edge, the read's forced edges, and the premise
  /// growth of the open transaction. The caller must have probed
  /// readAdmits(W, Var) — a cycle here flips the state to inconsistent
  /// (which the bulk constructor uses to decide verdicts).
  void applyExternalRead(unsigned W, VarId Var);

  /// Registers the commit of the open transaction, making its writes
  /// visible to committedWriters / premise tests. \p Log is its log.
  void applyCommit(const TransactionLog &Log);

  /// Registers the abort of the open transaction: its writes stay
  /// invisible; its so/wr edges and forced edges remain (the axioms keep
  /// constraining aborted readers, §2.2.1).
  void applyAbort();

private:
  /// One forced (or wr) edge candidate of a probe.
  struct Edge {
    unsigned From, To;
  };
  /// One recorded external read of the open transaction.
  struct ReadRec {
    VarId Var;
    unsigned Writer;
  };

  size_t wordIndex(VarId Var, unsigned Txn) const {
    return static_cast<size_t>(Var) * Words + Txn / 64;
  }

  /// Adds edge (A, B) to closure \p R, keeping R transitively closed.
  /// Returns false (leaving R with the edge absorbed but the graph
  /// cyclic) if B already reaches A.
  bool insertClosureEdge(Relation &R, unsigned A, unsigned B);

  /// Collects the new forced edges of appending a read of \p Var with
  /// writer \p W to the open transaction: the read's own axiom instances
  /// plus the retroactive premise growth of the open transaction's
  /// earlier reads (§2.2.2 — a later wr edge enlarges φ(·, t) for every
  /// read of t).
  void collectReadEdges(unsigned W, VarId Var, std::vector<Edge> &Out) const;

  /// True if G ∪ \p Edges has a cycle, given GClosure = closure of the
  /// acyclic G: searches the tiny graph whose nodes are the new edges and
  /// whose arcs are old-closure reachability between their endpoints.
  bool createsCycle(const std::vector<Edge> &Edges) const;

  /// Begins tracking block \p Idx (bulk and incremental share this).
  void beginBlock(unsigned Idx, TxnUid Uid);

  /// Shared head of the bulk and prefix constructors: sizes every matrix
  /// for max(MaxTxns, H.numTxns()) and installs the initial transaction.
  void initFromHistory(const History &H, unsigned MaxTxns);

  LevelAssignment Levels;
  unsigned MaxN = 0;    ///< Capacity (every matrix row is sized for this).
  unsigned Words = 0;   ///< Bitset words per row of capacity MaxN.
  unsigned NumTxns = 0; ///< Logical size; indices match H's block order.
  unsigned NumVars = 0;
  bool Inconsistent = false;
  /// Every session at "true": no read ever forces an edge, so probes are
  /// constant-true and the forced closure and premise tracking are
  /// skipped entirely — explore-ce(true) keeps its old free commit test.
  bool TrivialOnly = false;

  Relation SoWr;          ///< so ∪ wr edges (direct).
  Relation CausalClosure; ///< (so ∪ wr)+ — the CC premise.
  Relation GClosure;      ///< (so ∪ wr ∪ forced)+ — the cycle test.
  /// Committed-writer bitset per variable (NumVars x Words), ascending
  /// transaction bits == ascending block order.
  std::vector<uint64_t> WriterBits;
  /// Session of each transaction (TxnUid::InitSession for the initial
  /// one); applyBegin derives session-order predecessors from it.
  std::vector<uint32_t> SessionOfTxn;

  // Open-transaction context.
  bool HasOpen = false;
  unsigned OpenIdx = 0;
  IsolationLevel OpenLevel = IsolationLevel::Trivial;
  /// Direct so ∪ wr predecessors (words [0, Words)) and causal
  /// predecessors (words [Words, 2*Words)) of the open transaction — the
  /// RA and CC premises of its reads.
  std::vector<uint64_t> OpenPreds;
  /// External reads of the open transaction, in po order — the RC premise
  /// and the retroactive-growth targets.
  std::vector<ReadRec> OpenReads;

  /// Probe scratch, reused across readAdmits calls (single-owner, like
  /// the rest of the state). Copying a state deliberately does NOT copy
  /// the scratch — every read branch clones the parent state, and the
  /// clone's first probe would overwrite it anyway.
  struct ScratchBuffer {
    std::vector<Edge> Edges;
    ScratchBuffer() = default;
    ScratchBuffer(const ScratchBuffer &) {}
    ScratchBuffer &operator=(const ScratchBuffer &) { return *this; }
    ScratchBuffer(ScratchBuffer &&) = default;
    ScratchBuffer &operator=(ScratchBuffer &&) = default;
  };
  mutable ScratchBuffer Scratch;
};

/// Memoized prefix states of one history: stateFor(L) returns the
/// ConstraintState tracking exactly blocks [0, L) of H, built by copying
/// the largest cached checkpoint below L and replaying only the gap.
///
/// The swap fan-out after a commit builds one cache per expanded node: the
/// reorderings share ever-longer prefixes of H (computeReorderings emits
/// ascending ReaderTxn), and every swapped history and readLatest
/// truncation is byte-identical to H below its reader block — so each
/// swap child costs a flat state copy plus a replay of the few blocks at
/// or after the reader instead of a bulk rebuild from block zero.
/// Requested lengths need not be monotone (a dropped transaction's
/// readLatest check can need a longer prefix than the next reordering's
/// reader), hence checkpoints per exact length rather than one rolling
/// state.
///
/// Single-owner, like the states it hands out; \p H and \p Levels must
/// outlive the cache and H must not change while it is in use.
class PrefixStateCache {
public:
  PrefixStateCache(const History &H, const LevelAssignment &Levels,
                   unsigned MaxTxns)
      : H(H), Levels(Levels), MaxTxns(MaxTxns) {}

  /// The state of prefix [0, \p PrefixLen), 1 <= PrefixLen <= H.numTxns().
  /// The returned reference stays valid until the cache is destroyed;
  /// callers copy it before extending.
  const ConstraintState &stateFor(unsigned PrefixLen);

private:
  const History &H;
  const LevelAssignment &Levels;
  unsigned MaxTxns;
  std::map<unsigned, ConstraintState> ByLen;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_INCREMENTALCHECKER_H
