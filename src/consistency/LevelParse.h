//===- consistency/LevelParse.h - Isolation-level text parsing ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing text grammar for isolation levels and per-session
/// assignments, shared by the CLI (`--base`, `--levels`) and the litmus
/// repro grammar (the `level` line, `session N @CC`). Kept out of
/// IsolationLevel.h so the core level/LevelAssignment header stays free
/// of parsing machinery.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_LEVELPARSE_H
#define TXDPOR_CONSISTENCY_LEVELPARSE_H

#include "consistency/IsolationLevel.h"
#include "support/Parse.h"

#include <optional>
#include <string>
#include <utility>

namespace txdpor {

/// Inverse of isolationLevelName — the one name→level lookup shared by
/// every text surface.
inline std::optional<IsolationLevel>
isolationLevelByName(const std::string &Name) {
  for (IsolationLevel Level : AllIsolationLevels)
    if (Name == isolationLevelName(Level))
      return Level;
  return std::nullopt;
}

/// Parses one "S<N>=<LEVEL>" session-level entry (the spelling shared by
/// the litmus `level` line and the CLI's --levels spec). Session numbers
/// are bounded (4096) so hand-edited input yields a diagnostic, not a
/// huge allocation.
inline std::optional<std::pair<unsigned, IsolationLevel>>
parseSessionLevel(const std::string &Tok) {
  size_t Eq = Tok.find('=');
  if (Tok.size() < 2 || Tok.front() != 'S' || Eq == std::string::npos)
    return std::nullopt;
  std::optional<unsigned> Session =
      parseBoundedUInt(Tok.substr(1, Eq - 1), /*Max=*/4096);
  std::optional<IsolationLevel> Level =
      isolationLevelByName(Tok.substr(Eq + 1));
  if (!Session || !Level)
    return std::nullopt;
  return std::make_pair(*Session, *Level);
}

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_LEVELPARSE_H
