//===- consistency/SnapshotIsolationChecker.h - SI via point search -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Snapshot Isolation checking (NP-complete, Biswas & Enea 2019). SI is
/// axiomatized as Prefix ∧ Conflict (Fig. 2b, 2c), which is equivalent to
/// the classical operational presentation (Berenson et al.; Cerone et al.
/// CONCUR'15): each transaction t has a start point S(t) and a commit
/// point C(t) on one timeline such that
///
///   * S(t) < C(t), and C(t1) < S(t2) for (t1, t2) ∈ so;
///   * every external read of x in t returns the write of the last
///     transaction committing a write to x before S(t) (snapshot reads —
///     this captures Prefix: the snapshot is a co-downward-closed set);
///   * two transactions that both visibly write some variable may not
///     overlap (Conflict / first-committer-wins).
///
/// We search over interleavings of the 2·n points with memoization on
/// (started-set, committed-set, last-committed-writer map). The production
/// checker is validated against brute-force axiom enumeration in the test
/// suite.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_SNAPSHOTISOLATIONCHECKER_H
#define TXDPOR_CONSISTENCY_SNAPSHOTISOLATIONCHECKER_H

#include "consistency/ConsistencyChecker.h"

#include <optional>
#include <vector>

namespace txdpor {

class SnapshotIsolationChecker : public ConsistencyChecker {
public:
  IsolationLevel level() const override {
    return IsolationLevel::SnapshotIsolation;
  }
  bool isConsistent(const History &H) const override;

  /// Like isConsistent, but returns a witnessing commit order — the
  /// commit-point sequence of the successful start/commit interleaving —
  /// or nullopt if the history violates SI. The returned order satisfies
  /// the Prefix and Conflict axioms (validated in the test suite).
  std::optional<std::vector<unsigned>>
  findCommitOrder(const History &H) const;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_SNAPSHOTISOLATIONCHECKER_H
