//===- consistency/Explain.cpp - Violation witnesses and explanations -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/Explain.h"

#include "history/Prefix.h"

#include <algorithm>
#include <sstream>

using namespace txdpor;

std::string ConstraintEdge::describe(const History &H,
                                     const VarNameFn *Names) const {
  auto Var_ = [&](VarId V) {
    return Names ? (*Names)(V) : ("x" + std::to_string(V));
  };
  std::string A = H.txn(From).uid().str();
  std::string B = H.txn(To).uid().str();
  switch (EdgeKind) {
  case Kind::SessionOrder:
    return A + " precedes " + B + " in session order";
  case Kind::WriteRead:
    return B + " reads from " + A;
  case Kind::Axiom:
    return A + " must commit before " + B + " because " +
           H.txn(ReaderTxn).uid().str() + " reads " + Var_(Var) + " from " +
           B + " while " + A + " also writes " + Var_(Var) +
           " and is visible to the reader";
  }
  return "";
}

Relation txdpor::constraintGraphWithReasons(
    const History &H, IsolationLevel Level,
    std::vector<ConstraintEdge> &Edges) {
  assert((Level == IsolationLevel::ReadCommitted ||
          Level == IsolationLevel::ReadAtomic ||
          Level == IsolationLevel::CausalConsistency) &&
         "constraint graphs exist for saturation levels only");
  unsigned N = H.numTxns();
  Relation Graph(N);

  auto AddEdge = [&](ConstraintEdge E) {
    if (Graph.get(E.From, E.To))
      return; // Keep the first (usually most primitive) reason.
    Graph.set(E.From, E.To);
    Edges.push_back(E);
  };

  Relation So = H.soRelation();
  Relation Wr = H.wrRelation();
  for (unsigned A = 0; A != N; ++A) {
    So.forEachSuccessor(A, [&](unsigned B) {
      AddEdge({ConstraintEdge::Kind::SessionOrder, A, B, 0, 0});
    });
    Wr.forEachSuccessor(A, [&](unsigned B) {
      AddEdge({ConstraintEdge::Kind::WriteRead, A, B, 0, 0});
    });
  }

  Relation Phi(N);
  if (Level == IsolationLevel::ReadAtomic)
    Phi = H.soWrRelation();
  else if (Level == IsolationLevel::CausalConsistency)
    Phi = H.causalRelation();

  for (unsigned T3 = 0; T3 != N; ++T3) {
    const TransactionLog &Log = H.txn(T3);
    for (uint32_t Pos = 0, PE = static_cast<uint32_t>(Log.size()); Pos != PE;
         ++Pos) {
      std::optional<TxnUid> W = Log.writerOf(Pos);
      if (!W)
        continue;
      unsigned T1 = *H.indexOf(*W);
      VarId X = Log.event(Pos).Var;
      if (Level == IsolationLevel::ReadCommitted) {
        for (uint32_t Prev = 0; Prev != Pos; ++Prev) {
          std::optional<TxnUid> PW = Log.writerOf(Prev);
          if (!PW)
            continue;
          unsigned T2 = *H.indexOf(*PW);
          if (T2 != T1 && H.txn(T2).writesVar(X))
            AddEdge({ConstraintEdge::Kind::Axiom, T2, T1, X, T3});
        }
        continue;
      }
      for (unsigned T2 = 0; T2 != N; ++T2)
        if (T2 != T1 && Phi.get(T2, T3) && H.txn(T2).writesVar(X))
          AddEdge({ConstraintEdge::Kind::Axiom, T2, T1, X, T3});
    }
  }
  return Graph;
}

std::vector<unsigned> txdpor::findCycle(const Relation &Graph) {
  unsigned N = Graph.size();
  enum Color : uint8_t { White, Gray, Black };
  std::vector<Color> Colors(N, White);
  std::vector<int> Parent(N, -1);

  // Iterative DFS; on hitting a gray node, reconstruct the cycle.
  for (unsigned Root = 0; Root != N; ++Root) {
    if (Colors[Root] != White)
      continue;
    std::vector<std::pair<unsigned, std::vector<unsigned>>> Stack;
    Stack.push_back({Root, Graph.successors(Root)});
    Colors[Root] = Gray;
    while (!Stack.empty()) {
      auto &[Node, Succs] = Stack.back();
      if (Succs.empty()) {
        Colors[Node] = Black;
        Stack.pop_back();
        continue;
      }
      unsigned Next = Succs.back();
      Succs.pop_back();
      if (Colors[Next] == Gray) {
        // Found a back edge Node -> Next: walk the stack from Next.
        std::vector<unsigned> Cycle;
        bool Collecting = false;
        for (const auto &[N2, _] : Stack) {
          if (N2 == Next)
            Collecting = true;
          if (Collecting)
            Cycle.push_back(N2);
        }
        return Cycle;
      }
      if (Colors[Next] == White) {
        Colors[Next] = Gray;
        Parent[Next] = static_cast<int>(Node);
        Stack.push_back({Next, Graph.successors(Next)});
      }
    }
  }
  return {};
}

namespace {

const ConstraintEdge *findEdge(const std::vector<ConstraintEdge> &Edges,
                               unsigned From, unsigned To) {
  for (const ConstraintEdge &E : Edges)
    if (E.From == From && E.To == To)
      return &E;
  return nullptr;
}

ViolationExplanation explainSaturation(const History &H,
                                       IsolationLevel Level,
                                       const VarNameFn *Names) {
  ViolationExplanation Result;
  Result.Level = Level;
  std::vector<ConstraintEdge> Edges;
  Relation Graph = constraintGraphWithReasons(H, Level, Edges);
  std::vector<unsigned> Cycle = findCycle(Graph);
  if (Cycle.empty()) {
    Result.Consistent = true;
    Result.Text = std::string("history satisfies ") +
                  isolationLevelName(Level);
    return Result;
  }
  Result.Consistent = false;
  std::ostringstream OS;
  OS << "history violates " << isolationLevelName(Level)
     << ": the commit order would need a cycle\n";
  for (size_t I = 0; I != Cycle.size(); ++I) {
    unsigned From = Cycle[I];
    unsigned To = Cycle[(I + 1) % Cycle.size()];
    const ConstraintEdge *E = findEdge(Edges, From, To);
    assert(E && "cycle edge missing provenance");
    Result.Cycle.push_back(*E);
    OS << "  - " << E->describe(H, Names) << '\n';
  }
  Result.Text = OS.str();
  return Result;
}

} // namespace

History txdpor::minimizeViolation(const History &H, IsolationLevel Level) {
  assert(!isConsistent(H, Level) && "nothing to minimize");
  return shrinkToCore(
      H, [Level](const History &C) { return !isConsistent(C, Level); });
}

ViolationExplanation txdpor::explainViolation(const History &H,
                                              IsolationLevel Level,
                                              const VarNameFn *Names) {
  switch (Level) {
  case IsolationLevel::Trivial: {
    ViolationExplanation Result;
    Result.Level = Level;
    Result.Text = "every history satisfies the trivial level";
    return Result;
  }
  case IsolationLevel::ReadCommitted:
  case IsolationLevel::ReadAtomic:
  case IsolationLevel::CausalConsistency:
    return explainSaturation(H, Level, Names);
  case IsolationLevel::SnapshotIsolation:
  case IsolationLevel::Serializability: {
    ViolationExplanation Result;
    Result.Level = Level;
    if (isConsistent(H, Level)) {
      Result.Text = std::string("history satisfies ") +
                    isolationLevelName(Level);
      return Result;
    }
    Result.Consistent = false;
    // Reuse a weaker level's crisp witness when available.
    for (IsolationLevel Weaker :
         {IsolationLevel::CausalConsistency, IsolationLevel::ReadAtomic,
          IsolationLevel::ReadCommitted}) {
      if (isConsistent(H, Weaker))
        continue;
      ViolationExplanation Inner = explainSaturation(H, Weaker, Names);
      Result.Cycle = std::move(Inner.Cycle);
      Result.Text = std::string("history violates ") +
                    isolationLevelName(Level) + " (already at " +
                    isolationLevelName(Weaker) + "):\n" + Inner.Text;
      return Result;
    }
    Result.Text = std::string("history violates ") +
                  isolationLevelName(Level) +
                  ": no commit order satisfies the " +
                  (Level == IsolationLevel::SnapshotIsolation
                       ? "Prefix and Conflict axioms (search exhausted); "
                         "typical causes: write-write conflicts between "
                         "concurrent snapshots or long-fork observations"
                       : "Serializability axiom (search exhausted); the "
                         "reads of some transactions cannot be placed "
                         "after their writers without missing a newer "
                         "write");
    return Result;
  }
  }
  return {};
}
