//===- consistency/ConsistencyChecker.cpp - Checker factory ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/ConsistencyChecker.h"

#include "consistency/BruteForceChecker.h"
#include "consistency/SaturationChecker.h"
#include "consistency/SerializabilityChecker.h"
#include "consistency/SnapshotIsolationChecker.h"

using namespace txdpor;

const char *txdpor::isolationLevelName(IsolationLevel Level) {
  switch (Level) {
  case IsolationLevel::Trivial:
    return "true";
  case IsolationLevel::ReadCommitted:
    return "RC";
  case IsolationLevel::ReadAtomic:
    return "RA";
  case IsolationLevel::CausalConsistency:
    return "CC";
  case IsolationLevel::SnapshotIsolation:
    return "SI";
  case IsolationLevel::Serializability:
    return "SER";
  }
  return "?";
}

namespace {

/// The trivial level "true" of §7.3: every history is consistent.
class TrivialChecker : public ConsistencyChecker {
public:
  IsolationLevel level() const override { return IsolationLevel::Trivial; }
  bool isConsistent(const History &) const override { return true; }
};

} // namespace

std::unique_ptr<ConsistencyChecker>
txdpor::makeChecker(IsolationLevel Level) {
  switch (Level) {
  case IsolationLevel::Trivial:
    return std::make_unique<TrivialChecker>();
  case IsolationLevel::ReadCommitted:
  case IsolationLevel::ReadAtomic:
  case IsolationLevel::CausalConsistency:
    return std::make_unique<SaturationChecker>(Level);
  case IsolationLevel::SnapshotIsolation:
    return std::make_unique<SnapshotIsolationChecker>();
  case IsolationLevel::Serializability:
    return std::make_unique<SerializabilityChecker>();
  }
  return nullptr;
}

std::unique_ptr<ConsistencyChecker>
txdpor::makeChecker(const LevelAssignment &Levels) {
  if (!Levels.isMixed())
    return makeChecker(Levels.defaultLevel());
  if (Levels.allPrefixClosedCausallyExtensible())
    return std::make_unique<MixedSaturationChecker>(Levels);
  // No polynomial procedure exists for mixes naming SI or SER; fall back
  // to the (exponential) per-transaction Def. 2.2 reference rather than
  // silently deciding those sessions with the wrong premise.
  return std::make_unique<BruteForceChecker>(Levels);
}

bool txdpor::isConsistent(const History &H, const LevelAssignment &Levels) {
  if (!Levels.isMixed())
    return isConsistent(H, Levels.defaultLevel());
  return makeChecker(Levels)->isConsistent(H);
}

const ConsistencyChecker &txdpor::checkerFor(IsolationLevel Level) {
  // Function-local statics sidestep global-constructor ordering issues.
  static const TrivialChecker Trivial;
  static const SaturationChecker Rc(IsolationLevel::ReadCommitted);
  static const SaturationChecker Ra(IsolationLevel::ReadAtomic);
  static const SaturationChecker Cc(IsolationLevel::CausalConsistency);
  static const SnapshotIsolationChecker Si;
  static const SerializabilityChecker Ser;
  switch (Level) {
  case IsolationLevel::Trivial:
    return Trivial;
  case IsolationLevel::ReadCommitted:
    return Rc;
  case IsolationLevel::ReadAtomic:
    return Ra;
  case IsolationLevel::CausalConsistency:
    return Cc;
  case IsolationLevel::SnapshotIsolation:
    return Si;
  case IsolationLevel::Serializability:
    return Ser;
  }
  return Trivial;
}
