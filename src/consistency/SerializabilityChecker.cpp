//===- consistency/SerializabilityChecker.cpp - SER via sequence search ---===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/SerializabilityChecker.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace txdpor;

namespace {

/// Precomputed per-history facts and the DFS state of the search.
class SerSearch {
public:
  explicit SerSearch(const History &H) : H(H), N(H.numTxns()) {
    assert(N <= 64 && "histories beyond 64 transactions are out of scope");

    // so ∪ wr predecessor masks.
    Relation SoWr = H.soWrRelation();
    PredMask.assign(N, 0);
    for (unsigned A = 0; A != N; ++A)
      SoWr.forEachSuccessor(A, [&](unsigned B) {
        PredMask[B] |= uint64_t(1) << A;
      });

    // Dense ids for the variables that occur in some wr dependency: only
    // their last-writer entries influence appendability.
    Reads.assign(N, {});
    Writes.assign(N, {});
    for (unsigned T = 0; T != N; ++T) {
      const TransactionLog &Log = H.txn(T);
      for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
           ++P) {
        std::optional<TxnUid> W = Log.writerOf(P);
        if (!W)
          continue;
        Reads[T].push_back(
            {denseVar(Log.event(P).Var), *H.indexOf(*W)});
      }
    }
    for (unsigned T = 0; T != N; ++T)
      for (VarId X : H.txn(T).writtenVars())
        if (auto It = VarDense.find(X); It != VarDense.end())
          Writes[T].push_back(It->second);

    LastWriter.assign(VarDense.size(), kNoWriter);
  }

  bool run() { return extend(/*Placed=*/0); }

  /// Commit sequence of the successful search (valid after run() returned
  /// true).
  const std::vector<unsigned> &sequence() const { return Sequence; }

private:
  static constexpr uint8_t kNoWriter = 0xff;

  unsigned denseVar(VarId X) {
    auto [It, Inserted] = VarDense.emplace(X, VarDense.size());
    (void)Inserted;
    return It->second;
  }

  bool canAppend(unsigned T, uint64_t Placed) const {
    if ((PredMask[T] & ~Placed) != 0)
      return false;
    for (auto [DenseX, Writer] : Reads[T])
      if (LastWriter[DenseX] != Writer)
        return false;
    return true;
  }

  std::string stateKey(uint64_t Placed) const {
    std::string Key(reinterpret_cast<const char *>(&Placed), sizeof(Placed));
    Key.append(reinterpret_cast<const char *>(LastWriter.data()),
               LastWriter.size());
    return Key;
  }

  bool extend(uint64_t Placed) {
    if (Placed == (N == 64 ? ~uint64_t(0) : (uint64_t(1) << N) - 1))
      return true;
    std::string Key = stateKey(Placed);
    if (Failed.count(Key))
      return false;

    for (unsigned T = 0; T != N; ++T) {
      if ((Placed >> T) & 1)
        continue;
      if (!canAppend(T, Placed))
        continue;
      // Place T: record overwritten last-writer entries for backtracking.
      std::vector<std::pair<unsigned, uint8_t>> Saved;
      for (unsigned DenseX : Writes[T]) {
        Saved.push_back({DenseX, LastWriter[DenseX]});
        LastWriter[DenseX] = static_cast<uint8_t>(T);
      }
      Sequence.push_back(T);
      if (extend(Placed | (uint64_t(1) << T)))
        return true;
      Sequence.pop_back();
      for (auto [DenseX, Old] : Saved)
        LastWriter[DenseX] = Old;
    }
    Failed.insert(std::move(Key));
    return false;
  }

  const History &H;
  unsigned N;
  std::vector<uint64_t> PredMask;
  /// Per transaction: (dense var, required writer txn index) pairs.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> Reads;
  /// Per transaction: dense vars it visibly writes (relevant vars only).
  std::vector<std::vector<unsigned>> Writes;
  std::unordered_map<VarId, unsigned> VarDense;
  std::vector<uint8_t> LastWriter;
  std::vector<unsigned> Sequence;
  std::unordered_set<std::string> Failed;
};

} // namespace

bool SerializabilityChecker::isConsistent(const History &H) const {
  H.checkWellFormed();
  SerSearch Search(H);
  return Search.run();
}

std::optional<std::vector<unsigned>>
SerializabilityChecker::findCommitOrder(const History &H) const {
  H.checkWellFormed();
  SerSearch Search(H);
  if (!Search.run())
    return std::nullopt;
  return Search.sequence();
}
