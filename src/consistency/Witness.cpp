//===- consistency/Witness.cpp - Commit-order certificates ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/Witness.h"

#include "consistency/Axioms.h"
#include "consistency/SaturationChecker.h"
#include "consistency/SerializabilityChecker.h"
#include "consistency/SnapshotIsolationChecker.h"

#include <algorithm>

using namespace txdpor;

Relation txdpor::commitOrderRelation(unsigned NumTxns,
                                     const std::vector<unsigned> &Sequence) {
  assert(Sequence.size() == NumTxns && "sequence must cover all txns");
  Relation Co(NumTxns);
  for (unsigned I = 0; I != NumTxns; ++I)
    for (unsigned J = I + 1; J != NumTxns; ++J)
      Co.set(Sequence[I], Sequence[J]);
  return Co;
}

bool txdpor::validateCommitOrder(const History &H, IsolationLevel Level,
                                 const std::vector<unsigned> &Sequence) {
  unsigned N = H.numTxns();
  if (Sequence.size() != N)
    return false;
  std::vector<bool> Seen(N, false);
  for (unsigned T : Sequence) {
    if (T >= N || Seen[T])
      return false;
    Seen[T] = true;
  }
  Relation Co = commitOrderRelation(N, Sequence);
  // Def. 2.2: co must extend so ∪ wr.
  Relation SoWr = H.soWrRelation();
  for (unsigned A = 0; A != N; ++A) {
    bool Ok = true;
    SoWr.forEachSuccessor(A, [&](unsigned B) { Ok &= Co.get(A, B); });
    if (!Ok)
      return false;
  }
  return axiomsHold(H, Co, Level);
}

std::optional<std::vector<unsigned>>
txdpor::findCommitOrder(const History &H, IsolationLevel Level) {
  std::optional<std::vector<unsigned>> Result;
  switch (Level) {
  case IsolationLevel::Trivial: {
    std::vector<unsigned> Order;
    if (H.soWrRelation().topologicalOrder(Order))
      Result = std::move(Order);
    break;
  }
  case IsolationLevel::ReadCommitted:
  case IsolationLevel::ReadAtomic:
  case IsolationLevel::CausalConsistency: {
    // Any topological order of the saturated constraint graph satisfies
    // the (commit-order-independent) axioms.
    SaturationChecker Checker(Level);
    std::vector<unsigned> Order;
    if (Checker.constraintGraph(H).topologicalOrder(Order))
      Result = std::move(Order);
    break;
  }
  case IsolationLevel::SnapshotIsolation: {
    SnapshotIsolationChecker Checker;
    Result = Checker.findCommitOrder(H);
    break;
  }
  case IsolationLevel::Serializability: {
    SerializabilityChecker Checker;
    Result = Checker.findCommitOrder(H);
    break;
  }
  }
  assert((!Result || validateCommitOrder(H, Level, *Result)) &&
         "produced certificate failed validation");
  return Result;
}
