//===- consistency/SnapshotIsolationChecker.cpp - SI via point search -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/SnapshotIsolationChecker.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace txdpor;

namespace {

class SiSearch {
public:
  explicit SiSearch(const History &H) : H(H), N(H.numTxns()) {
    assert(N <= 64 && "histories beyond 64 transactions are out of scope");

    // so predecessors: S(t) requires their commits.
    SoPredMask.assign(N, 0);
    Relation So = H.soRelation();
    for (unsigned A = 0; A != N; ++A)
      So.forEachSuccessor(A, [&](unsigned B) {
        SoPredMask[B] |= uint64_t(1) << A;
      });

    // Reads checked at S(t) against the last committed writer per var.
    Reads.assign(N, {});
    for (unsigned T = 0; T != N; ++T) {
      const TransactionLog &Log = H.txn(T);
      for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
           ++P) {
        std::optional<TxnUid> W = Log.writerOf(P);
        if (!W)
          continue;
        Reads[T].push_back(
            {denseVar(Log.event(P).Var), *H.indexOf(*W)});
      }
    }
    Writes.assign(N, {});
    for (unsigned T = 0; T != N; ++T)
      for (VarId X : H.txn(T).writtenVars())
        if (auto It = VarDense.find(X); It != VarDense.end())
          Writes[T].push_back(It->second);

    // Write-write conflict masks over *all* written variables (also the
    // ones never read).
    ConflictMask.assign(N, 0);
    for (unsigned A = 0; A != N; ++A) {
      for (unsigned B = A + 1; B != N; ++B) {
        bool Shares = false;
        for (VarId X : H.txn(A).writtenVars())
          if (H.txn(B).writesVar(X)) {
            Shares = true;
            break;
          }
        if (Shares) {
          ConflictMask[A] |= uint64_t(1) << B;
          ConflictMask[B] |= uint64_t(1) << A;
        }
      }
    }

    LastCommittedWriter.assign(VarDense.size(), kNoWriter);
  }

  bool run() { return extend(/*Started=*/0, /*Committed=*/0); }

  /// Commit-point sequence of the successful search (valid after run()
  /// returned true).
  const std::vector<unsigned> &commitSequence() const {
    return CommitSequence;
  }

private:
  static constexpr uint8_t kNoWriter = 0xff;

  unsigned denseVar(VarId X) {
    auto [It, Inserted] = VarDense.emplace(X, VarDense.size());
    (void)Inserted;
    return It->second;
  }

  std::string stateKey(uint64_t Started, uint64_t Committed) const {
    std::string Key(reinterpret_cast<const char *>(&Started),
                    sizeof(Started));
    Key.append(reinterpret_cast<const char *>(&Committed), sizeof(Committed));
    Key.append(reinterpret_cast<const char *>(LastCommittedWriter.data()),
               LastCommittedWriter.size());
    return Key;
  }

  bool extend(uint64_t Started, uint64_t Committed) {
    uint64_t Full = (N == 64 ? ~uint64_t(0) : (uint64_t(1) << N) - 1);
    if (Committed == Full)
      return true;
    std::string Key = stateKey(Started, Committed);
    if (Failed.count(Key))
      return false;

    for (unsigned T = 0; T != N; ++T) {
      uint64_t Bit = uint64_t(1) << T;
      if (!(Started & Bit)) {
        // Try placing S(T): session predecessors committed, snapshot reads
        // satisfied by the current committed state.
        if ((SoPredMask[T] & ~Committed) != 0)
          continue;
        bool ReadsOk = true;
        for (auto [DenseX, Writer] : Reads[T])
          if (LastCommittedWriter[DenseX] != Writer) {
            ReadsOk = false;
            break;
          }
        if (!ReadsOk)
          continue;
        if (extend(Started | Bit, Committed))
          return true;
      } else if (!(Committed & Bit)) {
        // Try placing C(T): no overlapping write-write conflict, i.e. no
        // conflicting transaction is currently live.
        if ((ConflictMask[T] & Started & ~Committed) != 0)
          continue;
        std::vector<std::pair<unsigned, uint8_t>> Saved;
        for (unsigned DenseX : Writes[T]) {
          Saved.push_back({DenseX, LastCommittedWriter[DenseX]});
          LastCommittedWriter[DenseX] = static_cast<uint8_t>(T);
        }
        CommitSequence.push_back(T);
        if (extend(Started, Committed | Bit))
          return true;
        CommitSequence.pop_back();
        for (auto [DenseX, Old] : Saved)
          LastCommittedWriter[DenseX] = Old;
      }
    }
    Failed.insert(std::move(Key));
    return false;
  }

  const History &H;
  unsigned N;
  std::vector<uint64_t> SoPredMask;
  std::vector<std::vector<std::pair<unsigned, unsigned>>> Reads;
  std::vector<std::vector<unsigned>> Writes;
  std::vector<uint64_t> ConflictMask;
  std::unordered_map<VarId, unsigned> VarDense;
  std::vector<uint8_t> LastCommittedWriter;
  std::vector<unsigned> CommitSequence;
  std::unordered_set<std::string> Failed;
};

} // namespace

bool SnapshotIsolationChecker::isConsistent(const History &H) const {
  H.checkWellFormed();
  SiSearch Search(H);
  return Search.run();
}

std::optional<std::vector<unsigned>>
SnapshotIsolationChecker::findCommitOrder(const History &H) const {
  H.checkWellFormed();
  SiSearch Search(H);
  if (!Search.run())
    return std::nullopt;
  return Search.commitSequence();
}
