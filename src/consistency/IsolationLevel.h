//===- consistency/IsolationLevel.h - The isolation-level lattice ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The isolation levels of §2.2 plus the trivial level "true" used by the
/// evaluation (§7.3, the algorithm explore-ce*(true, CC)). The paper's
/// strength ordering is a chain:
///
///   true  <  RC  <  RA  <  CC  <  SI  <  SER
///
/// where "I1 weaker than I2" means every I2-consistent history is also
/// I1-consistent. RC, RA and CC (and trivially "true") are prefix-closed
/// and causally extensible (Theorems 3.2, 3.4); SI and SER are prefix
/// closed but not causally extensible.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_ISOLATIONLEVEL_H
#define TXDPOR_CONSISTENCY_ISOLATIONLEVEL_H

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace txdpor {

enum class IsolationLevel : uint8_t {
  Trivial,             ///< "true": every history is consistent.
  ReadCommitted,       ///< RC (Fig. A.1a).
  ReadAtomic,          ///< RA (Fig. A.1b).
  CausalConsistency,   ///< CC (Fig. 2a).
  SnapshotIsolation,   ///< SI = Prefix ∧ Conflict (Fig. 2b, 2c).
  Serializability,     ///< SER (Fig. 2d).
};

/// All levels, weakest first.
inline constexpr std::array<IsolationLevel, 6> AllIsolationLevels = {
    IsolationLevel::Trivial,           IsolationLevel::ReadCommitted,
    IsolationLevel::ReadAtomic,        IsolationLevel::CausalConsistency,
    IsolationLevel::SnapshotIsolation, IsolationLevel::Serializability,
};

/// Short name used in output tables ("true", "RC", "RA", "CC", "SI",
/// "SER"). The inverse lookup and the "S<N>=<LEVEL>" entry grammar live
/// in consistency/LevelParse.h, next to their CLI/litmus consumers.
const char *isolationLevelName(IsolationLevel Level);

/// True if \p Weaker admits every \p Stronger-consistent history
/// (reflexive).
inline bool isWeakerOrEqual(IsolationLevel Weaker, IsolationLevel Stronger) {
  return static_cast<uint8_t>(Weaker) <= static_cast<uint8_t>(Stronger);
}

/// True for the levels where explore-ce is sound, complete and strongly
/// optimal (§5): prefix-closed and causally-extensible levels.
inline bool isPrefixClosedCausallyExtensible(IsolationLevel Level) {
  switch (Level) {
  case IsolationLevel::Trivial:
  case IsolationLevel::ReadCommitted:
  case IsolationLevel::ReadAtomic:
  case IsolationLevel::CausalConsistency:
    return true;
  case IsolationLevel::SnapshotIsolation:
  case IsolationLevel::Serializability:
    return false;
  }
  return false;
}

/// A per-session isolation-level assignment: the mixed-isolation-level
/// setting of Bouajjani et al.'s follow-up ("On the Complexity of Checking
/// Mixed Isolation Levels for SQL Transactions", arXiv 2505.18409, see
/// PAPERS.md). The paper's explore-ce(I0) fixes one base level I0 for the
/// whole program; real stores let every session pick its own level, so an
/// assignment maps each session to a level, with a uniform default for
/// sessions it does not name explicitly.
///
/// A transaction's commit test is evaluated at *its own session's* level:
/// every instance of the axiom schema (§2.2.2, eq. 1) is attached to a
/// read, and the premise φ used for that instance is the one of the
/// *reading* transaction's level. Mixes of prefix-closed causally-
/// extensible levels (true/RC/RA/CC) are themselves prefix-closed and
/// causally extensible — the Theorems 3.2/3.4 arguments are per axiom
/// instance — so explore-ce keeps Theorem 5.1 for such mixes (see
/// docs/ARCHITECTURE.md, "Per-session isolation levels").
class LevelAssignment {
public:
  LevelAssignment() = default;
  explicit LevelAssignment(IsolationLevel Default) : Default(Default) {}

  /// The classic single-level setting: every session at \p Level.
  static LevelAssignment uniform(IsolationLevel Level) {
    return LevelAssignment(Level);
  }

  /// The level of sessions without an explicit entry.
  IsolationLevel defaultLevel() const { return Default; }
  void setDefault(IsolationLevel Level) { Default = Level; }

  /// Pins \p Session to \p Level (sessions are dense; pinning session N
  /// materializes defaults for 0..N-1).
  void set(unsigned Session, IsolationLevel Level) {
    if (Session >= Explicit.size())
      Explicit.resize(Session + 1, NoLevel);
    Explicit[Session] = static_cast<uint8_t>(Level);
  }

  /// The level session \p Session runs at. Sessions beyond the explicit
  /// entries — including TxnUid::InitSession, whose initial transaction
  /// has no reads and therefore no commit test of its own — get the
  /// default.
  IsolationLevel levelFor(uint32_t Session) const {
    if (Session < Explicit.size() && Explicit[Session] != NoLevel)
      return static_cast<IsolationLevel>(Explicit[Session]);
    return Default;
  }

  /// True if any session is pinned explicitly (even to the default level).
  bool hasExplicit() const { return !Explicit.empty(); }

  /// True if some explicit entry differs from the default, i.e. the
  /// assignment is not expressible as a single uniform level.
  bool isMixed() const {
    for (uint8_t L : Explicit)
      if (L != NoLevel && static_cast<IsolationLevel>(L) != Default)
        return true;
    return false;
  }

  /// Normalizes against a concrete program width: entries at or beyond
  /// \p NumSessions are dropped, and an assignment whose first
  /// \p NumSessions levels coincide collapses to uniform(that level).
  /// The engine resolves its config through this, so "--levels S0=RC
  /// S1=RC" on a two-session program takes the exact single-level code
  /// path of "--base RC" (byte-identical outputs, no mixed-checker
  /// indirection).
  LevelAssignment resolved(unsigned NumSessions) const {
    LevelAssignment Result(Default);
    if (NumSessions == 0)
      return Result;
    bool Uniform = true;
    IsolationLevel First = levelFor(0);
    for (unsigned S = 0; S != NumSessions; ++S)
      if (levelFor(S) != First) {
        Uniform = false;
        break;
      }
    if (Uniform)
      return LevelAssignment(First);
    for (unsigned S = 0; S != NumSessions; ++S)
      Result.set(S, levelFor(S));
    return Result;
  }

  /// Strongest level the assignment mentions (default included).
  IsolationLevel strongest() const {
    IsolationLevel Max = Default;
    for (uint8_t L : Explicit)
      if (L != NoLevel && isWeakerOrEqual(Max, static_cast<IsolationLevel>(L)))
        Max = static_cast<IsolationLevel>(L);
    return Max;
  }

  /// True iff every mentioned level is prefix-closed and causally
  /// extensible — the requirement for a base assignment (§5).
  bool allPrefixClosedCausallyExtensible() const {
    if (!isPrefixClosedCausallyExtensible(Default))
      return false;
    for (uint8_t L : Explicit)
      if (L != NoLevel &&
          !isPrefixClosedCausallyExtensible(static_cast<IsolationLevel>(L)))
        return false;
    return true;
  }

  /// True iff every mentioned level is weaker than or equal to \p Level
  /// (the per-session generalization of the Cor. 6.2 side condition on a
  /// filter level).
  bool allWeakerOrEqual(IsolationLevel Level) const {
    if (!isWeakerOrEqual(Default, Level))
      return false;
    for (uint8_t L : Explicit)
      if (L != NoLevel &&
          !isWeakerOrEqual(static_cast<IsolationLevel>(L), Level))
        return false;
    return true;
  }

  /// "CC" for a plain assignment; "CC S0=CC S1=RC" when sessions are
  /// pinned (default first, then the explicit entries) — the same spelling
  /// the litmus `level` line and `--levels` use.
  std::string str() const {
    std::string Result = isolationLevelName(Default);
    for (unsigned S = 0; S != Explicit.size(); ++S)
      if (Explicit[S] != NoLevel) {
        Result += " S" + std::to_string(S) + "=";
        Result += isolationLevelName(static_cast<IsolationLevel>(Explicit[S]));
      }
    return Result;
  }

  bool operator==(const LevelAssignment &O) const {
    if (Default != O.Default)
      return false;
    size_t N = Explicit.size() > O.Explicit.size() ? Explicit.size()
                                                   : O.Explicit.size();
    for (size_t S = 0; S != N; ++S)
      if (levelFor(static_cast<uint32_t>(S)) !=
          O.levelFor(static_cast<uint32_t>(S)))
        return false;
    return true;
  }
  bool operator!=(const LevelAssignment &O) const { return !(*this == O); }

private:
  static constexpr uint8_t NoLevel = 0xff;

  IsolationLevel Default = IsolationLevel::CausalConsistency;
  /// Explicit per-session levels, NoLevel = inherit the default.
  std::vector<uint8_t> Explicit;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_ISOLATIONLEVEL_H
