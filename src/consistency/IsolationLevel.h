//===- consistency/IsolationLevel.h - The isolation-level lattice ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The isolation levels of §2.2 plus the trivial level "true" used by the
/// evaluation (§7.3, the algorithm explore-ce*(true, CC)). The paper's
/// strength ordering is a chain:
///
///   true  <  RC  <  RA  <  CC  <  SI  <  SER
///
/// where "I1 weaker than I2" means every I2-consistent history is also
/// I1-consistent. RC, RA and CC (and trivially "true") are prefix-closed
/// and causally extensible (Theorems 3.2, 3.4); SI and SER are prefix
/// closed but not causally extensible.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_ISOLATIONLEVEL_H
#define TXDPOR_CONSISTENCY_ISOLATIONLEVEL_H

#include <array>
#include <cstdint>

namespace txdpor {

enum class IsolationLevel : uint8_t {
  Trivial,             ///< "true": every history is consistent.
  ReadCommitted,       ///< RC (Fig. A.1a).
  ReadAtomic,          ///< RA (Fig. A.1b).
  CausalConsistency,   ///< CC (Fig. 2a).
  SnapshotIsolation,   ///< SI = Prefix ∧ Conflict (Fig. 2b, 2c).
  Serializability,     ///< SER (Fig. 2d).
};

/// All levels, weakest first.
inline constexpr std::array<IsolationLevel, 6> AllIsolationLevels = {
    IsolationLevel::Trivial,           IsolationLevel::ReadCommitted,
    IsolationLevel::ReadAtomic,        IsolationLevel::CausalConsistency,
    IsolationLevel::SnapshotIsolation, IsolationLevel::Serializability,
};

/// Short name used in output tables ("true", "RC", "RA", "CC", "SI",
/// "SER").
const char *isolationLevelName(IsolationLevel Level);

/// True if \p Weaker admits every \p Stronger-consistent history
/// (reflexive).
inline bool isWeakerOrEqual(IsolationLevel Weaker, IsolationLevel Stronger) {
  return static_cast<uint8_t>(Weaker) <= static_cast<uint8_t>(Stronger);
}

/// True for the levels where explore-ce is sound, complete and strongly
/// optimal (§5): prefix-closed and causally-extensible levels.
inline bool isPrefixClosedCausallyExtensible(IsolationLevel Level) {
  switch (Level) {
  case IsolationLevel::Trivial:
  case IsolationLevel::ReadCommitted:
  case IsolationLevel::ReadAtomic:
  case IsolationLevel::CausalConsistency:
    return true;
  case IsolationLevel::SnapshotIsolation:
  case IsolationLevel::Serializability:
    return false;
  }
  return false;
}

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_ISOLATIONLEVEL_H
