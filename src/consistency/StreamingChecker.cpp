//===- consistency/StreamingChecker.cpp - Windowed online checking --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/StreamingChecker.h"

#include "trace/Counters.h"

#include <algorithm>

using namespace txdpor;

namespace {

/// Sentinel of WriterIdxScratch slots without a resolved external writer.
constexpr unsigned NoWriter = ~0u;

/// Initial ConstraintState capacity; doubled on demand, so a tiny start
/// only costs a few O(N²) regrow copies before the window stabilizes.
constexpr unsigned InitialCapacity = 64;

} // namespace

StreamingChecker::StreamingChecker(const StreamingOptions &Opts) : Opts(Opts) {
  assert(Opts.Levels.allPrefixClosedCausallyExtensible() &&
         "streaming requires a prefix-closed causally-extensible assignment");
  Win = History::makeInitial(Opts.NumVars);
  Capacity = std::max(InitialCapacity, Win.numTxns() + 1);
  State = ConstraintState(Win, Opts.Levels, Capacity);
  EvictedWriterOfVar.assign(Opts.NumVars, 0);
  NextGcAt = Opts.WindowBudget;
}

StreamStatus StreamingChecker::malformed(std::string *Diag,
                                         const std::string &Message) {
  if (Diag)
    *Diag = Message;
  Status = StreamStatus::Malformed;
  return Status;
}

StreamStatus StreamingChecker::staleRead(std::string *Diag,
                                         const std::string &Message) {
  if (Diag)
    *Diag = Message;
  Status = StreamStatus::StaleRead;
  return Status;
}

StreamStatus StreamingChecker::append(const TransactionLog &Log,
                                      std::string *Diag) {
  assert(Status == StreamStatus::Ok && "append after a terminal status");

  // Phase 1: validate the whole record and resolve every wr writer to a
  // window index, touching nothing — a rejected record must leave the
  // window exactly as it was.
  TxnUid Uid = Log.uid();
  if (Uid.isInit())
    return malformed(Diag, "duplicate init transaction");
  if (Opts.NumSessions && Uid.Session >= *Opts.NumSessions)
    return malformed(Diag, "transaction " + Uid.str() +
                               " names an unknown session (header declares " +
                               std::to_string(*Opts.NumSessions) + ")");
  auto LastIt = LastIndexOfSession.find(Uid.Session);
  if (LastIt != LastIndexOfSession.end() && Uid.Index <= LastIt->second)
    return malformed(Diag, "duplicate or out-of-order transaction " +
                               Uid.str() + " (session already at index " +
                               std::to_string(LastIt->second) + ")");
  if (Log.size() < 2 || Log.event(0).Kind != EventKind::Begin)
    return malformed(Diag, "transaction record " + Uid.str() +
                               " must start with begin");
  if (Log.isPending())
    return malformed(Diag, "transaction record " + Uid.str() +
                               " without commit/abort");

  uint32_t Len = static_cast<uint32_t>(Log.size());
  WriterIdxScratch.assign(Len, NoWriter);
  for (uint32_t Pos = 1; Pos + 1 != Len; ++Pos) {
    const Event &E = Log.event(Pos);
    switch (E.Kind) {
    case EventKind::Begin:
    case EventKind::Commit:
    case EventKind::Abort:
      return malformed(Diag, "misplaced " +
                                 std::string(eventKindName(E.Kind)) +
                                 " event in transaction " + Uid.str());
    case EventKind::Write:
      if (E.Var >= Opts.NumVars)
        return malformed(Diag, "variable x" + std::to_string(E.Var) +
                                   " out of range in transaction " +
                                   Uid.str());
      break;
    case EventKind::Read: {
      if (E.Var >= Opts.NumVars)
        return malformed(Diag, "variable x" + std::to_string(E.Var) +
                                   " out of range in transaction " +
                                   Uid.str());
      std::optional<TxnUid> Writer = Log.writerOf(Pos);
      if (!Log.isExternalRead(Pos)) {
        if (Writer)
          return malformed(Diag, "wr dependency on an internal read in "
                                 "transaction " +
                                     Uid.str());
        break;
      }
      if (!Writer)
        return malformed(Diag, "external read of x" + std::to_string(E.Var) +
                                   " without a writer in transaction " +
                                   Uid.str());
      if (*Writer == Uid)
        return malformed(Diag, "transaction " + Uid.str() +
                                   " reads from itself");
      if (Writer->isInit()) {
        if (EvictedWriterOfVar[E.Var])
          return staleRead(
              Diag, "read of x" + std::to_string(E.Var) + " from init in " +
                        Uid.str() +
                        " is undecidable: a committed writer of x" +
                        std::to_string(E.Var) +
                        " left the window (raise the window budget)");
        WriterIdxScratch[Pos] = 0;
        break;
      }
      std::optional<unsigned> WIdx = Win.indexOf(*Writer);
      if (!WIdx) {
        auto WriterLast = LastIndexOfSession.find(Writer->Session);
        if (WriterLast != LastIndexOfSession.end() &&
            Writer->Index <= WriterLast->second)
          return staleRead(Diag,
                           "read of x" + std::to_string(E.Var) + " in " +
                               Uid.str() + " names writer " + Writer->str() +
                               ", which left the window (raise the window "
                               "budget)");
        return malformed(Diag, "read from unknown transaction " +
                                   Writer->str() + " in " + Uid.str());
      }
      if (!Win.txn(*WIdx).writesVar(E.Var))
        return malformed(Diag, "writer " + Writer->str() +
                                   " does not visibly write x" +
                                   std::to_string(E.Var) + " (read in " +
                                   Uid.str() + ")");
      WriterIdxScratch[Pos] = *WIdx;
      break;
    }
    }
  }

  // Phase 2: replay the record through the window history and the
  // constraint state. Only an anomaly can interrupt this, and an anomaly
  // is terminal — the partially-materialized transaction *is* the
  // witness.
  reserveCapacity();
  unsigned Idx = Win.beginTxn(Uid);
  State.applyBegin(Uid);
  for (uint32_t Pos = 1; Pos != Len; ++Pos) {
    const Event &E = Log.event(Pos);
    unsigned WIdx = WriterIdxScratch[Pos];
    if (E.isRead() && WIdx != NoWriter) {
      ++Stats.ExternalReads;
      if (!State.readAdmits(WIdx, E.Var)) {
        // Materialize the violating read and commit the truncated
        // transaction: the window becomes a standalone witness.
        Win.appendEvent(Idx, E);
        Win.setWriter(Idx, static_cast<uint32_t>(Win.txn(Idx).size()) - 1,
                      Win.txn(WIdx).uid());
        Win.appendEvent(Idx, Event::makeCommit());
        AnomalyUid = Uid;
        Status = StreamStatus::Anomaly;
        if (Diag)
          *Diag =
              "isolation violation: read of x" + std::to_string(E.Var) +
              " from " + Win.txn(WIdx).uid().str() + " in " + Uid.str() +
              " closes a commit-order cycle at " +
              isolationLevelName(Opts.Levels.levelFor(Uid.Session)) +
              " (assignment " + Opts.Levels.str() + ")";
        return Status;
      }
      Win.appendEvent(Idx, E);
      Win.setWriter(Idx, static_cast<uint32_t>(Win.txn(Idx).size()) - 1,
                    Win.txn(WIdx).uid());
      State.applyExternalRead(WIdx, E.Var);
      continue;
    }
    Win.appendEvent(Idx, E);
    if (E.Kind == EventKind::Commit)
      State.applyCommit(Win.txn(Idx));
    else if (E.Kind == EventKind::Abort)
      State.applyAbort();
  }

  LastIndexOfSession[Uid.Session] = Uid.Index;
  ++Stats.Txns;
  Stats.Events += Log.size();
  unsigned WindowSize = Win.numTxns() - 1;
  Stats.PeakWindow = std::max(Stats.PeakWindow, WindowSize);
  trace::bump(trace::Counter::StreamTxns);
  trace::bumpMax(trace::Counter::StreamPeakWindow, WindowSize);

  if (Opts.WindowBudget && WindowSize >= NextGcAt)
    runGc();
  return Status;
}

void StreamingChecker::reserveCapacity() {
  if (Win.numTxns() < Capacity)
    return;
  std::vector<unsigned> Keep(Win.numTxns());
  for (unsigned I = 0; I != Win.numTxns(); ++I)
    Keep[I] = I;
  Capacity *= 2;
  State = ConstraintState(State, Keep, Capacity);
}

void StreamingChecker::runGc() {
  ++Stats.GcPasses;
  unsigned N = Win.numTxns();

  // Latest committed in-window writer of each variable — the E1 test.
  std::vector<unsigned> LatestWriter(Opts.NumVars, 0);
  for (unsigned I = 1; I != N; ++I)
    if (Win.txn(I).isCommitted())
      for (VarId V : Win.txn(I).writtenVars())
        LatestWriter[V] = I;

  // Candidate set: E1 over the tenured generation (the YoungExempt most
  // recently ingested transactions never leave — a multi-transaction
  // access pattern must not lose its writers to a pass firing between
  // its transactions), then shrink to the E2 fixpoint: un-evicting a
  // candidate turns it into a retainer that can pin further candidates
  // it reaches in the closure.
  std::vector<uint8_t> Evict(N, 0);
  for (unsigned I = 1; I + YoungExempt < N; ++I) {
    const TransactionLog &L = Win.txn(I);
    if (L.isAborted()) {
      Evict[I] = 1;
      continue;
    }
    bool Superseded = true;
    for (VarId V : L.writtenVars())
      if (LatestWriter[V] == I) {
        Superseded = false;
        break;
      }
    Evict[I] = Superseded;
  }
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (unsigned I = 1; I + YoungExempt < N; ++I) {
      if (!Evict[I])
        continue;
      for (unsigned J = 1; J != N; ++J)
        if (!Evict[J] && State.constrains(J, I)) {
          Evict[I] = 0;
          Changed = true;
          break;
        }
    }
  }

  unsigned Evicted = 0;
  std::vector<unsigned> Keep;
  Keep.reserve(N);
  Keep.push_back(0);
  for (unsigned I = 1; I != N; ++I) {
    if (!Evict[I]) {
      Keep.push_back(I);
      continue;
    }
    ++Evicted;
    if (Win.txn(I).isCommitted())
      for (VarId V : Win.txn(I).writtenVars())
        EvictedWriterOfVar[V] = 1;
  }

  if (!Evicted) {
    // Nothing evictable at this size: back off before trying again, so a
    // window pinned by long-lived versions doesn't re-run the fixpoint on
    // every append.
    NextGcAt = (N - 1) + std::max(Opts.WindowBudget / 4, 8u);
    return;
  }

  // Retained readers may still read from evicted writers — co-evicting
  // them instead would pin the entire wr ancestry of the live frontier
  // and the window would never shrink. The constraints those reads
  // induced are frozen in the closure (the submatrix copy below keeps
  // them), so only the dangling read *events* must go: rewrite each such
  // reader without them before dropping the writers.
  for (unsigned I = 1; I != N; ++I) {
    if (Evict[I])
      continue;
    const TransactionLog &L = Win.txn(I);
    uint32_t Len = static_cast<uint32_t>(L.size());
    bool HasStale = false;
    for (uint32_t Pos = 0; Pos != Len && !HasStale; ++Pos)
      if (L.event(Pos).isRead())
        if (std::optional<TxnUid> W = L.writerOf(Pos))
          if (!W->isInit() && Evict[*Win.indexOf(*W)])
            HasStale = true;
    if (!HasStale)
      continue;
    TransactionLog NewLog(L.uid());
    for (uint32_t Pos = 0; Pos != Len; ++Pos) {
      const Event &E = L.event(Pos);
      std::optional<TxnUid> W = L.writerOf(Pos);
      if (E.isRead() && W && !W->isInit() && Evict[*Win.indexOf(*W)]) {
        ++Stats.ReadsForgotten;
        continue;
      }
      NewLog.append(E);
      if (W)
        NewLog.setWriter(static_cast<uint32_t>(NewLog.size()) - 1, *W);
    }
    Win.replaceLog(I, std::move(NewLog));
  }

  State = ConstraintState(State, Keep, Capacity);
  Win.retainBlocks(Keep);
  Stats.Evicted += Evicted;
  trace::bump(trace::Counter::StreamEvictions, Evicted);

  unsigned NewSize = Win.numTxns() - 1;
  NextGcAt = NewSize < Opts.WindowBudget
                 ? Opts.WindowBudget
                 : NewSize + std::max(Opts.WindowBudget / 4, 8u);
}
