//===- consistency/StreamingChecker.h - Windowed online checking ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online isolation checking of unbounded traces of committed
/// transactions: a ConstraintState (the PR-5 incremental commit test)
/// wrapped in a *window* that garbage-collects the decided prefix so
/// memory stays bounded on arbitrarily long inputs.
///
/// **Window invariant.** The retained window, together with the
/// compacted constraint closure, decides every future transaction
/// exactly as the full history would — or the checker refuses with an
/// explicit stale-read instead of guessing. Eviction never creates a
/// false anomaly (window edges are a subset of full-history edges) and
/// never loses a true one (see the eviction rule), so
///
///     streaming verdict ∈ { full-history verdict, StaleRead refusal }.
///
/// **Eviction rule.** A completed non-init transaction T may leave the
/// window only when all three hold, computed as a fixpoint over the
/// candidate set of one GC pass:
///
///   (E1) every variable T visibly writes has a later committed
///        in-window writer (or T aborted) — T can never again be the
///        "latest" version anyone must read;
///   (E2) no *retained* non-init transaction reaches T in the maintained
///        constraint closure — every future edge targets either a writer
///        of a new read (in-window, or the read is refused) or the new
///        transaction itself, so nothing can ever point at T again and
///        no future cycle can thread through it: any full-history cycle
///        touching the evicted set would need an edge into it;
///   (E3) T is not among the YoungExempt most recently ingested
///        transactions — a GC pass firing between the transactions of a
///        short access pattern must not take the pattern's writers.
///
/// Deliberately *not* required: that T's in-window readers leave with it.
/// Co-evicting readers would pin the whole wr ancestry of the live
/// frontier (every retained reader keeps its writer, which keeps *its*
/// writer, back to the first transaction) and the window would never
/// shrink. Instead, retained readers are rewritten without their
/// reads-from-evicted-writers (History::replaceLog): those reads'
/// axiom instances are already frozen in the constraint closure, and a
/// completed transaction's premises never grow again, so dropping the
/// events loses nothing the state needs — only Explain's re-derivation
/// over the window sees fewer edges (a subset: conservative).
///
/// The constraint closure is *compacted by submatrix copy*, not rebuilt
/// from the window history: forced edges between retained transactions
/// that were derived from evicted readers are genuine constraints of the
/// full trace and must survive (ConstraintState's compaction ctor). The
/// copy also composes paths *through* evicted transactions into direct
/// retained-to-retained edges, which is what keeps cycle detection
/// complete after their interior nodes are gone.
///
/// **What is no longer decidable after GC.** A read naming an evicted
/// writer cannot be checked (its premise left the window) → StaleRead.
/// A read-from-init of variable v is only exact while no committed
/// writer of v has ever been evicted: an evicted writer in the reader's
/// premise would force an (instantly cyclic) edge into init that the
/// window cannot see, so such reads also refuse with StaleRead rather
/// than under-approximate. Every other verdict is exact.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_STREAMINGCHECKER_H
#define TXDPOR_CONSISTENCY_STREAMINGCHECKER_H

#include "consistency/IncrementalChecker.h"
#include "history/History.h"

#include <string>
#include <unordered_map>

namespace txdpor {

/// Configuration of one streaming run.
struct StreamingOptions {
  /// Assignment to check under; must be prefix-closed and causally
  /// extensible (true/RC/RA/CC, uniform or per-session).
  LevelAssignment Levels;
  /// Size of the variable universe (from the trace header).
  unsigned NumVars = 0;
  /// Declared session count; when set, records naming a session at or
  /// beyond it are malformed.
  std::optional<unsigned> NumSessions;
  /// Window budget in non-init transactions: GC runs whenever the window
  /// reaches it. 0 = never evict (exact, unbounded memory). The budget
  /// is a target — when eviction cannot keep up (a trace that keeps old
  /// versions premise-reachable), the window grows past it and GC backs
  /// off with hysteresis instead of thrashing.
  unsigned WindowBudget = 0;
};

/// Outcome of one append — and, once not Ok, of the whole run.
enum class StreamStatus : uint8_t {
  Ok,        ///< Consistent so far.
  Anomaly,   ///< Isolation violation: the trace is inconsistent.
  StaleRead, ///< Refusal: a read's premise left the window (see file
             ///  comment); re-run with a larger budget for a verdict.
  Malformed  ///< The record is not a valid trace transaction.
};

/// Run statistics (also mirrored into the process-wide stream counters).
struct StreamingStats {
  uint64_t Txns = 0;          ///< Transactions ingested.
  uint64_t Events = 0;        ///< Events ingested (log sizes summed).
  uint64_t ExternalReads = 0; ///< External reads checked.
  uint64_t Evicted = 0;       ///< Transactions garbage-collected.
  uint64_t GcPasses = 0;      ///< GC passes that ran (evicting or not).
  uint64_t ReadsForgotten = 0; ///< Reads dropped from retained readers
                               ///  whose writer was evicted.
  unsigned PeakWindow = 0;    ///< High-water window size (non-init txns).
};

/// The windowed online checker. Feed completed transactions in commit
/// order via append(); the first non-Ok status ends the run.
class StreamingChecker {
public:
  /// Number of most-recently-ingested transactions exempt from eviction
  /// (rule E3): writers of an in-flight multi-transaction pattern stay
  /// put even when a GC pass fires in the middle of the pattern.
  static constexpr unsigned YoungExempt = 4;

  explicit StreamingChecker(const StreamingOptions &Opts);

  /// Ingests the next completed transaction. On Malformed/StaleRead the
  /// window is left untouched (the record is rejected whole); on Anomaly
  /// the offending read is materialized in the window for reporting.
  /// \p Diag receives a description for every non-Ok status.
  StreamStatus append(const TransactionLog &Log, std::string *Diag = nullptr);

  /// Status of the run so far (the first non-Ok append sticks).
  StreamStatus status() const { return Status; }

  const StreamingStats &stats() const { return Stats; }
  const LevelAssignment &levels() const { return Opts.Levels; }
  unsigned windowBudget() const { return Opts.WindowBudget; }

  /// The current window as a history (init + retained transactions, in
  /// ingestion order). After an Anomaly this *includes* the offending
  /// transaction truncated at its violating read and committed — a
  /// standalone witness for Explain/repro, inconsistent under levels()
  /// unless the cycle threads through constraints inherited from the
  /// evicted prefix or from forgotten reads (then explainViolation
  /// reports consistent and the caller falls back to the textual
  /// diagnosis).
  const History &window() const { return Win; }

  /// Uid of the transaction whose read violated the assignment (valid
  /// after an Anomaly).
  TxnUid anomalyTxn() const { return AnomalyUid; }

private:
  StreamStatus malformed(std::string *Diag, const std::string &Message);
  StreamStatus staleRead(std::string *Diag, const std::string &Message);
  /// Grows the state capacity when the next begin would overflow it.
  void reserveCapacity();
  /// Runs one GC pass (fixpoint of E1-E3), compacting window + state.
  void runGc();

  StreamingOptions Opts;
  History Win;
  ConstraintState State;
  StreamStatus Status = StreamStatus::Ok;
  StreamingStats Stats;
  TxnUid AnomalyUid = TxnUid::init();
  /// Highest transaction index seen per session — distinguishes stale
  /// (seen, evicted) from unknown (never seen) writers, and enforces
  /// per-session monotonicity.
  std::unordered_map<uint32_t, uint32_t> LastIndexOfSession;
  /// Per-variable flag: some committed writer of this variable has been
  /// evicted, so reads-from-init of it are no longer decidable.
  std::vector<uint8_t> EvictedWriterOfVar;
  /// Next window size (non-init txns) at which GC fires; grows with
  /// hysteresis when a pass cannot evict enough.
  unsigned NextGcAt = 0;
  /// Current ConstraintState capacity.
  unsigned Capacity = 0;
  /// Scratch for append(): resolved writer index per event position.
  std::vector<unsigned> WriterIdxScratch;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_STREAMINGCHECKER_H
