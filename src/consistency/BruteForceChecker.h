//===- consistency/BruteForceChecker.h - Literal Def. 2.2 oracle ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference checker that follows Def. 2.2 verbatim: enumerate every strict
/// total order co extending so ∪ wr (as topological orders of the so ∪ wr
/// graph) and evaluate the level's first-order axioms on (h, co). It is
/// exponential and exists only to validate the production checkers in the
/// test suite on small histories.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_BRUTEFORCECHECKER_H
#define TXDPOR_CONSISTENCY_BRUTEFORCECHECKER_H

#include "consistency/ConsistencyChecker.h"

namespace txdpor {

class BruteForceChecker : public ConsistencyChecker {
public:
  explicit BruteForceChecker(IsolationLevel Level)
      : Levels(LevelAssignment::uniform(Level)) {}

  /// Mixed-level reference (arXiv 2505.18409): each enumerated commit
  /// order is checked against every transaction's commit test at its own
  /// session's level — the Def. 2.2 analogue for per-session assignments,
  /// and the oracle the mixed production checkers are validated against.
  explicit BruteForceChecker(LevelAssignment Levels)
      : Levels(std::move(Levels)) {}

  /// The strongest level the assignment mentions (the level itself for a
  /// uniform assignment).
  IsolationLevel level() const override { return Levels.strongest(); }
  const LevelAssignment &levels() const { return Levels; }
  bool isConsistent(const History &H) const override;

private:
  LevelAssignment Levels;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_BRUTEFORCECHECKER_H
