//===- consistency/BruteForceChecker.h - Literal Def. 2.2 oracle ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference checker that follows Def. 2.2 verbatim: enumerate every strict
/// total order co extending so ∪ wr (as topological orders of the so ∪ wr
/// graph) and evaluate the level's first-order axioms on (h, co). It is
/// exponential and exists only to validate the production checkers in the
/// test suite on small histories.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CONSISTENCY_BRUTEFORCECHECKER_H
#define TXDPOR_CONSISTENCY_BRUTEFORCECHECKER_H

#include "consistency/ConsistencyChecker.h"

namespace txdpor {

class BruteForceChecker : public ConsistencyChecker {
public:
  explicit BruteForceChecker(IsolationLevel Level) : Level(Level) {}

  IsolationLevel level() const override { return Level; }
  bool isConsistent(const History &H) const override;

private:
  IsolationLevel Level;
};

} // namespace txdpor

#endif // TXDPOR_CONSISTENCY_BRUTEFORCECHECKER_H
