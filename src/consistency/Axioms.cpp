//===- consistency/Axioms.cpp - First-order axioms over (h, co) -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "consistency/Axioms.h"

#include <optional>

using namespace txdpor;

namespace {

/// Iterates the instances of the axiom schema (1) of §2.2.2: for each
/// external read event α (of variable X, at position Pos of transaction
/// T3, reading from T1) calls Fn(T1, T3, Pos, X). Reads without an
/// assigned writer (possible only in partial histories mid-construction)
/// are skipped.
template <typename FnT> void forEachReadFrom(const History &H, FnT Fn) {
  for (unsigned T3 = 0, E = H.numTxns(); T3 != E; ++T3) {
    const TransactionLog &Log = H.txn(T3);
    for (uint32_t Pos = 0, PE = static_cast<uint32_t>(Log.size()); Pos != PE;
         ++Pos) {
      std::optional<TxnUid> W = Log.writerOf(Pos);
      if (!W)
        continue;
      std::optional<unsigned> T1 = H.indexOf(*W);
      assert(T1 && "wr writer missing from history");
      Fn(*T1, T3, Pos, Log.event(Pos).Var);
    }
  }
}

/// One read's Read Committed axiom instances (Fig. A.1a), event-granular:
/// for the external read at \p Pos of transaction \p T3 (variable \p X,
/// writer \p T1), every t2 reached by wr ∘ po — i.e. read by an earlier
/// read of the same transaction — that writes X must satisfy
/// (t2, t1) ∈ co. Shared by the uniform readCommittedAxiom and the mixed
/// evaluator's RC branch so the two can never drift.
bool rcReadInstancesHold(const History &H, const Relation &Co, unsigned T1,
                         unsigned T3, uint32_t Pos, VarId X) {
  const TransactionLog &Log = H.txn(T3);
  for (uint32_t Prev = 0; Prev != Pos; ++Prev) {
    std::optional<TxnUid> W = Log.writerOf(Prev);
    if (!W)
      continue;
    std::optional<unsigned> T2 = H.indexOf(*W);
    assert(T2 && "wr writer missing from history");
    if (*T2 == T1 || !H.txn(*T2).writesVar(X))
      continue;
    if (!Co.get(*T2, T1))
      return false;
  }
  return true;
}

/// φ of the Conflict axiom (Fig. 2c), precomputed per pair (t2, t3):
/// exists t4 and variable y with t3 writes y, t4 writes y, (t2,t4) ∈ co*,
/// (t4,t3) ∈ co. Shared by the uniform conflictAxiom and the mixed
/// evaluator so the two can never drift apart.
Relation conflictPremise(const History &H, const Relation &Co) {
  Relation CoStar = Co;
  CoStar.addReflexive();
  unsigned N = H.numTxns();
  Relation Phi(N);
  for (unsigned T3 = 0; T3 != N; ++T3) {
    std::vector<VarId> T3Writes = H.txn(T3).writtenVars();
    if (T3Writes.empty())
      continue;
    for (unsigned T4 = 0; T4 != N; ++T4) {
      if (!Co.get(T4, T3))
        continue;
      bool SharesVar = false;
      for (VarId Y : T3Writes)
        if (H.txn(T4).writesVar(Y)) {
          SharesVar = true;
          break;
        }
      if (!SharesVar)
        continue;
      for (unsigned T2 = 0; T2 != N; ++T2)
        if (CoStar.get(T2, T4))
          Phi.set(T2, T3);
    }
  }
  return Phi;
}

/// Evaluates the schema with a transaction-level φ: for every read
/// t1 -wr_x-> t3 and every t2 ≠ t1 with writes(t2) ∋ x and Phi(t2, t3),
/// requires (t2, t1) ∈ co.
template <typename PhiT>
bool schemaHolds(const History &H, const Relation &Co, PhiT Phi) {
  bool Ok = true;
  forEachReadFrom(H, [&](unsigned T1, unsigned T3, uint32_t, VarId X) {
    if (!Ok)
      return;
    for (unsigned T2 = 0, E = H.numTxns(); T2 != E; ++T2) {
      if (T2 == T1 || !H.txn(T2).writesVar(X))
        continue;
      if (Phi(T2, T3) && !Co.get(T2, T1)) {
        Ok = false;
        return;
      }
    }
  });
  return Ok;
}

} // namespace

bool txdpor::readCommittedAxiom(const History &H, const Relation &Co) {
  // Event-granular: φ(t2, α) = ⟨t2, α⟩ ∈ wr ∘ po, i.e. some earlier read β
  // of the same transaction reads from t2.
  bool Ok = true;
  forEachReadFrom(H, [&](unsigned T1, unsigned T3, uint32_t Pos, VarId X) {
    if (Ok && !rcReadInstancesHold(H, Co, T1, T3, Pos, X))
      Ok = false;
  });
  return Ok;
}

bool txdpor::readAtomicAxiom(const History &H, const Relation &Co) {
  Relation SoWr = H.soWrRelation();
  return schemaHolds(H, Co,
                     [&](unsigned T2, unsigned T3) { return SoWr.get(T2, T3); });
}

bool txdpor::causalConsistencyAxiom(const History &H, const Relation &Co) {
  Relation Causal = H.causalRelation();
  return schemaHolds(
      H, Co, [&](unsigned T2, unsigned T3) { return Causal.get(T2, T3); });
}

bool txdpor::prefixAxiom(const History &H, const Relation &Co) {
  // φ(t2, t3) = (t2, t3) ∈ co* ∘ (wr ∪ so): some t' with (t2,t') ∈ co*
  // (reflexive!) and (t', t3) ∈ wr ∪ so.
  Relation CoStar = Co;
  CoStar.addReflexive(); // co is already transitive as a total order.
  Relation SoWr = H.soWrRelation();
  Relation Phi = CoStar.composeWith(SoWr);
  return schemaHolds(H, Co,
                     [&](unsigned T2, unsigned T3) { return Phi.get(T2, T3); });
}

bool txdpor::conflictAxiom(const History &H, const Relation &Co) {
  Relation Phi = conflictPremise(H, Co);
  return schemaHolds(H, Co,
                     [&](unsigned T2, unsigned T3) { return Phi.get(T2, T3); });
}

bool txdpor::serializabilityAxiom(const History &H, const Relation &Co) {
  return schemaHolds(H, Co,
                     [&](unsigned T2, unsigned T3) { return Co.get(T2, T3); });
}

namespace {

/// Lazily materialized premise relations shared by the per-read dispatch
/// of the mixed evaluator: each is built at most once per (H, Co) even
/// when several sessions run at the level that needs it.
class MixedPremises {
public:
  MixedPremises(const History &H, const Relation &Co) : H(H), Co(Co) {}

  const Relation &soWr() {
    if (!SoWr)
      SoWr = H.soWrRelation();
    return *SoWr;
  }
  const Relation &causal() {
    if (!Causal)
      Causal = H.causalRelation();
    return *Causal;
  }
  /// φ of the Prefix axiom (Fig. 2b): co* ∘ (wr ∪ so).
  const Relation &prefixPhi() {
    if (!PrefixPhi) {
      Relation CoStar = Co;
      CoStar.addReflexive();
      PrefixPhi = CoStar.composeWith(soWr());
    }
    return *PrefixPhi;
  }
  /// φ of the Conflict axiom (Fig. 2c) — the shared conflictPremise.
  const Relation &conflictPhi() {
    if (!ConflictPhi)
      ConflictPhi = conflictPremise(H, Co);
    return *ConflictPhi;
  }

private:
  const History &H;
  const Relation &Co;
  std::optional<Relation> SoWr;
  std::optional<Relation> Causal;
  std::optional<Relation> PrefixPhi;
  std::optional<Relation> ConflictPhi;
};

} // namespace

bool txdpor::axiomsHold(const History &H, const Relation &Co,
                        const LevelAssignment &Levels) {
  if (!Levels.isMixed())
    return axiomsHold(H, Co, Levels.defaultLevel());

  MixedPremises P(H, Co);
  bool Ok = true;
  forEachReadFrom(H, [&](unsigned T1, unsigned T3, uint32_t Pos, VarId X) {
    if (!Ok)
      return;
    IsolationLevel Level = Levels.levelFor(H.txn(T3).uid().Session);
    if (Level == IsolationLevel::Trivial)
      return;

    if (Level == IsolationLevel::ReadCommitted) {
      // RC's premise is event-granular (Fig. A.1a) — the shared
      // rcReadInstancesHold.
      if (!rcReadInstancesHold(H, Co, T1, T3, Pos, X))
        Ok = false;
      return;
    }

    auto Premise = [&](unsigned T2) {
      switch (Level) {
      case IsolationLevel::ReadAtomic:
        return P.soWr().get(T2, T3);
      case IsolationLevel::CausalConsistency:
        return P.causal().get(T2, T3);
      case IsolationLevel::SnapshotIsolation:
        // SI imposes both of its axioms on this read's instances.
        return P.prefixPhi().get(T2, T3) || P.conflictPhi().get(T2, T3);
      case IsolationLevel::Serializability:
        return Co.get(T2, T3);
      case IsolationLevel::Trivial:
      case IsolationLevel::ReadCommitted:
        break; // Handled above.
      }
      return false;
    };
    for (unsigned T2 = 0, E = H.numTxns(); T2 != E && Ok; ++T2) {
      if (T2 == T1 || !H.txn(T2).writesVar(X))
        continue;
      if (Premise(T2) && !Co.get(T2, T1))
        Ok = false;
    }
  });
  return Ok;
}

bool txdpor::axiomsHold(const History &H, const Relation &Co,
                        IsolationLevel Level) {
  switch (Level) {
  case IsolationLevel::Trivial:
    return true;
  case IsolationLevel::ReadCommitted:
    return readCommittedAxiom(H, Co);
  case IsolationLevel::ReadAtomic:
    return readAtomicAxiom(H, Co);
  case IsolationLevel::CausalConsistency:
    return causalConsistencyAxiom(H, Co);
  case IsolationLevel::SnapshotIsolation:
    return prefixAxiom(H, Co) && conflictAxiom(H, Co);
  case IsolationLevel::Serializability:
    return serializabilityAxiom(H, Co);
  }
  return false;
}
