//===- sql/Table.cpp - SQL-to-variables compilation -----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "sql/Table.h"

using namespace txdpor;

Table::Table(ProgramBuilder &B, std::string TableName, unsigned MaxRows,
             std::vector<std::string> TableColumns)
    : Name(std::move(TableName)), MaxRows(MaxRows),
      Columns(std::move(TableColumns)) {
  assert(MaxRows > 0 && MaxRows <= 62 && "row ids must fit a value bitmask");
  assert(!Columns.empty() && "a table needs at least one column");
  SetVar = B.var(Name + ".set");
  for (unsigned Row = 0; Row != MaxRows; ++Row)
    for (const std::string &Column : Columns)
      Cells.push_back(
          B.var(Name + "." + std::to_string(Row) + "." + Column));
}

VarId Table::cellVar(unsigned RowId, unsigned Column) const {
  assert(RowId < MaxRows && Column < Columns.size() && "cell out of range");
  return Cells[RowId * Columns.size() + Column];
}

unsigned Table::columnIndex(const std::string &Column) const {
  for (unsigned I = 0; I != Columns.size(); ++I)
    if (Columns[I] == Column)
      return I;
  assert(false && "unknown column");
  return 0;
}

std::string Table::freshLocal(const std::string &Stem) {
  return "__" + Name + "_" + Stem + std::to_string(LocalCounter++);
}

void Table::insert(ProgramBuilder::TxnHandle &T, unsigned RowId,
                   const std::vector<ExprRef> &Values) {
  assert(RowId < MaxRows && "row id out of range");
  assert(Values.size() == Columns.size() && "one value per column");
  std::string SetLocal = freshLocal("s");
  T.read(SetLocal, SetVar);
  T.write(SetVar, bitOr(T.local(SetLocal), Value(1) << RowId));
  for (unsigned Column = 0; Column != Columns.size(); ++Column)
    T.write(cellVar(RowId, Column), Values[Column]);
}

void Table::remove(ProgramBuilder::TxnHandle &T, unsigned RowId) {
  assert(RowId < MaxRows && "row id out of range");
  std::string SetLocal = freshLocal("s");
  T.read(SetLocal, SetVar);
  T.write(SetVar, bitAnd(T.local(SetLocal), ~(Value(1) << RowId)));
}

void Table::selectById(ProgramBuilder::TxnHandle &T, unsigned RowId,
                       const std::string &Prefix) {
  assert(RowId < MaxRows && "row id out of range");
  std::string SetLocal = freshLocal("s");
  T.read(SetLocal, SetVar);
  ExprRef Present = ne(bitAnd(T.local(SetLocal), Value(1) << RowId), 0);
  T.assign(Prefix + "_exists", Present);
  for (unsigned Column = 0; Column != Columns.size(); ++Column)
    T.read(Prefix + "_" + Columns[Column], cellVar(RowId, Column), Present);
}

void Table::updateById(ProgramBuilder::TxnHandle &T, unsigned RowId,
                       const std::string &Column, ExprRef NewValue) {
  assert(RowId < MaxRows && "row id out of range");
  std::string SetLocal = freshLocal("s");
  T.read(SetLocal, SetVar);
  ExprRef Present = ne(bitAnd(T.local(SetLocal), Value(1) << RowId), 0);
  T.write(cellVar(RowId, columnIndex(Column)), std::move(NewValue), Present);
}

void Table::scan(ProgramBuilder::TxnHandle &T, const std::string &Prefix) {
  std::string SetLocal = Prefix + "_set";
  T.read(SetLocal, SetVar);
  for (unsigned Row = 0; Row != MaxRows; ++Row) {
    ExprRef Present = ne(bitAnd(T.local(SetLocal), Value(1) << Row), 0);
    for (unsigned Column = 0; Column != Columns.size(); ++Column)
      T.read(Prefix + "_" + std::to_string(Row) + "_" + Columns[Column],
             cellVar(Row, Column), Present);
  }
}

void Table::updateWhere(ProgramBuilder::TxnHandle &T,
                        const std::string &Column, ExprRef NewValue,
                        const RowPredicate &Where) {
  std::string Prefix = freshLocal("u");
  scan(T, Prefix);
  unsigned Target = columnIndex(Column);
  for (unsigned Row = 0; Row != MaxRows; ++Row) {
    auto Cell = [&, Row](const std::string &Col) {
      return T.local(Prefix + "_" + std::to_string(Row) + "_" + Col);
    };
    ExprRef Present =
        ne(bitAnd(T.local(Prefix + "_set"), Value(1) << Row), 0);
    T.write(cellVar(Row, Target), NewValue, land(Present, Where(Cell)));
  }
}
