//===- sql/Table.h - SQL-to-variables compilation (§2.1, §7.2) ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's relational frontend: "SQL tables are modeled using a 'set'
/// global variable whose content is the set of ids (primary keys) of the
/// rows present in the table, and a set of global variables, one variable
/// for each row ... INSERT and DELETE are modeled as writes on that set
/// variable while SQL statements with a WHERE clause (SELECT, JOIN,
/// UPDATE) are compiled to a read of the table's set variable followed by
/// reads or writes of variables that represent rows" (§7.2, following
/// Biswas et al. 2021).
///
/// Table implements that compilation over a bounded id space, with one
/// global variable per (row, column) cell. Statement helpers emit the
/// paper's access pattern into a transaction under construction; WHERE
/// clauses become guards over the set-variable bitmask and previously
/// read cells.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SQL_TABLE_H
#define TXDPOR_SQL_TABLE_H

#include "program/Program.h"

#include <string>
#include <vector>

namespace txdpor {

/// A bounded relational table compiled to global variables.
class Table {
public:
  /// Declares the table's variables in \p B: a presence-set variable plus
  /// one variable per (row id, column).
  Table(ProgramBuilder &B, std::string Name, unsigned MaxRows,
        std::vector<std::string> Columns);

  const std::string &name() const { return Name; }
  unsigned maxRows() const { return MaxRows; }
  unsigned numColumns() const { return static_cast<unsigned>(Columns.size()); }

  VarId setVar() const { return SetVar; }
  VarId cellVar(unsigned RowId, unsigned Column) const;
  unsigned columnIndex(const std::string &Column) const;

  //===--------------------------------------------------------------------===
  // Statements. Each emits the §7.2 access pattern into the transaction
  // \p T. Statements read the set variable into a fresh transaction
  // local, so repeated statements in one transaction re-read it (matching
  // the per-statement compilation of the paper; under any level at least
  // RA the reads agree).
  //===--------------------------------------------------------------------===

  /// INSERT INTO t VALUES (RowId, Values...): set-variable RMW adding the
  /// id bit, then writes of the row's cells.
  void insert(ProgramBuilder::TxnHandle &T, unsigned RowId,
              const std::vector<ExprRef> &Values);

  /// DELETE FROM t WHERE id = RowId: set-variable RMW clearing the bit.
  void remove(ProgramBuilder::TxnHandle &T, unsigned RowId);

  /// SELECT * FROM t WHERE id = RowId: read the set variable, then
  /// guarded reads of the row's cells into locals
  /// "<Prefix>_<column>". Also defines "<Prefix>_exists".
  void selectById(ProgramBuilder::TxnHandle &T, unsigned RowId,
                  const std::string &Prefix);

  /// UPDATE t SET column = Value WHERE id = RowId (guarded by presence).
  void updateById(ProgramBuilder::TxnHandle &T, unsigned RowId,
                  const std::string &Column, ExprRef Value);

  /// SELECT * FROM t (full scan): read the set variable and every row's
  /// cells, guarded by presence, into locals "<Prefix>_<row>_<column>".
  /// Defines "<Prefix>_set" with the presence bitmask.
  void scan(ProgramBuilder::TxnHandle &T, const std::string &Prefix);

  /// UPDATE t SET Column = Value WHERE Where(row locals): full-scan
  /// update — reads the set and each row's cells, then conditionally
  /// writes the target column of every present row satisfying the
  /// predicate. \p Where receives, per row, a getter for that row's
  /// column expressions.
  using RowPredicate =
      std::function<ExprRef(std::function<ExprRef(const std::string &)>)>;
  void updateWhere(ProgramBuilder::TxnHandle &T, const std::string &Column,
                   ExprRef Value, const RowPredicate &Where);

private:
  /// Fresh local name for internal set reads.
  std::string freshLocal(const std::string &Stem);

  std::string Name;
  unsigned MaxRows;
  std::vector<std::string> Columns;
  VarId SetVar;
  std::vector<VarId> Cells; ///< RowId-major, then column.
  unsigned LocalCounter = 0;
};

} // namespace txdpor

#endif // TXDPOR_SQL_TABLE_H
