//===- trace_io/TraceGen.cpp - Deterministic trace generation -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "trace_io/TraceGen.h"

#include <cassert>

using namespace txdpor;
using namespace txdpor::trace_io;

namespace {

/// splitmix64 — small, fast, deterministic across platforms.
struct Rng {
  uint64_t State;
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
};

} // namespace

TraceHeader trace_io::generateTrace(
    const GenConfig &C,
    const std::function<void(const TransactionLog &)> &Sink) {
  assert(C.Sessions > 0 && C.Vars > 0 && "degenerate generator config");
  Rng R{C.Seed * 0x9e3779b97f4a7c15ULL + 1};
  std::vector<uint32_t> NextIndex(C.Sessions, 0);
  // Latest committed writer of each variable — what a clean transaction
  // reads from.
  std::vector<TxnUid> Latest(C.Vars, TxnUid::init());
  Value NextValue = 1;
  uint64_t Events = 0, Txns = 0;

  // Injection state machine: phase 1 emits the fresh writer, phase 2 the
  // RMW superseding it, phase 3 the read-skew reader observing both
  // versions. The three transactions are adjacent, so the stale writer is
  // at most two ingests old at the reader — inside the streaming
  // checker's young-generation eviction exemption, guaranteeing an
  // anomaly verdict rather than a stale-read refusal.
  unsigned AnomalyPhase = 0;
  TxnUid FreshWriter = TxnUid::init(), RmwUid = TxnUid::init();
  VarId AnomalyVar = 0;

  while (Events < C.Events) {
    ++Txns;
    unsigned Session = static_cast<unsigned>(R.below(C.Sessions));
    TransactionLog Log(TxnUid{Session, NextIndex[Session]++});
    Log.append(Event::makeBegin());

    if (C.AnomalyAtTxn && Txns == C.AnomalyAtTxn) {
      // Phase 1: a fresh single-write version of the anomaly variable.
      Log.append(Event::makeWrite(AnomalyVar, NextValue++));
      Log.append(Event::makeCommit());
      Latest[AnomalyVar] = Log.uid();
      FreshWriter = Log.uid();
      AnomalyPhase = 2;
    } else if (AnomalyPhase == 2) {
      // Phase 2: a read-modify-write superseding the fresh version.
      Log.append(Event::makeRead(AnomalyVar));
      Log.setWriter(static_cast<uint32_t>(Log.size()) - 1, FreshWriter);
      Log.append(Event::makeWrite(AnomalyVar, NextValue++));
      Log.append(Event::makeCommit());
      Latest[AnomalyVar] = Log.uid();
      RmwUid = Log.uid();
      AnomalyPhase = 3;
    } else if (AnomalyPhase == 3) {
      // Phase 3: observe the RMW's version, then the version it
      // superseded — a commit-order cycle at RC and every stronger
      // level.
      Log.append(Event::makeRead(AnomalyVar));
      Log.setWriter(static_cast<uint32_t>(Log.size()) - 1, RmwUid);
      Log.append(Event::makeRead(AnomalyVar));
      Log.setWriter(static_cast<uint32_t>(Log.size()) - 1, FreshWriter);
      Log.append(Event::makeCommit());
      AnomalyPhase = 0;
    } else {
      // Reads first (reads-latest), then writes — the RMW shape of real
      // OLTP transactions. A read of a variable this transaction later
      // writes stays external; a repeated var draws are fine.
      for (unsigned K = 0; K != C.ReadsPerTxn; ++K) {
        VarId V = static_cast<VarId>(R.below(C.Vars));
        Log.append(Event::makeRead(V));
        if (!Log.lastWriteBefore(V, static_cast<uint32_t>(Log.size()) - 1))
          Log.setWriter(static_cast<uint32_t>(Log.size()) - 1, Latest[V]);
      }
      std::vector<VarId> Written;
      for (unsigned K = 0; K != C.WritesPerTxn; ++K) {
        VarId V = static_cast<VarId>(R.below(C.Vars));
        Log.append(Event::makeWrite(V, NextValue++));
        Written.push_back(V);
      }
      bool Abort = R.below(100) < C.AbortPercent;
      Log.append(Abort ? Event::makeAbort() : Event::makeCommit());
      if (!Abort)
        for (VarId V : Written)
          Latest[V] = Log.uid();
    }

    Events += Log.size();
    Sink(Log);
  }

  TraceHeader Header;
  Header.NumVars = C.Vars;
  Header.NumSessions = C.Sessions;
  return Header;
}
