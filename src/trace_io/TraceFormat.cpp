//===- trace_io/TraceFormat.cpp - Trace record grammar --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "trace_io/TraceFormat.h"

#include "history/Serialize.h"
#include "support/Json.h"

#include <cmath>
#include <sstream>

using namespace txdpor;
using namespace txdpor::trace_io;

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

/// "init" or "<session>.<index>" — the compact uid spelling of jsonl
/// records (parseUidToken accepts both this and the "t"-prefixed form).
std::string uidToken(TxnUid Uid) {
  if (Uid.isInit())
    return "init";
  return std::to_string(Uid.Session) + "." + std::to_string(Uid.Index);
}

/// Extracts a non-negative integer below \p Limit from a JSON number.
bool asUnsigned(const JsonValue &V, uint64_t Limit, unsigned &Out,
                std::string *Error, const char *What) {
  if (V.kind() != JsonValue::Kind::Number)
    return fail(Error, std::string(What) + " must be a number");
  double N = V.asNumber();
  if (N < 0 || N >= static_cast<double>(Limit) || N != std::floor(N))
    return fail(Error, std::string(What) + " out of range");
  Out = static_cast<unsigned>(N);
  return true;
}

std::string levelSpecText(const LevelAssignment &Levels, unsigned Sessions) {
  std::string Text = isolationLevelName(Levels.defaultLevel());
  for (unsigned S = 0; S != Sessions; ++S)
    if (Levels.levelFor(S) != Levels.defaultLevel())
      Text += " S" + std::to_string(S) + "=" +
              isolationLevelName(Levels.levelFor(S));
  return Text;
}

} // namespace

std::string trace_io::writeTraceHeader(const TraceHeader &H, TraceFormat F) {
  std::ostringstream OS;
  unsigned Sessions = H.NumSessions.value_or(0);
  if (F == TraceFormat::Litmus) {
    OS << "# txdpor trace\n";
    if (H.NumSessions)
      OS << "sessions " << *H.NumSessions << '\n';
    if (H.Levels)
      OS << "level " << levelSpecText(*H.Levels, Sessions) << '\n';
    OS << writeTxnLine(History::makeInitial(H.NumVars).txn(0)) << '\n';
    return OS.str();
  }
  // The jsonl header is hand-formatted: JsonWriter pretty-prints, and a
  // jsonl record must stay on one line. Every string here is a fixed
  // token or a level name, so no escaping is needed.
  OS << "{\"trace\":\"txdpor-v1\",\"vars\":" << H.NumVars;
  if (H.NumSessions)
    OS << ",\"sessions\":" << *H.NumSessions;
  if (H.Levels) {
    OS << ",\"level\":\"" << isolationLevelName(H.Levels->defaultLevel())
       << '"';
    if (H.Levels->hasExplicit() && H.NumSessions) {
      OS << ",\"session_levels\":[";
      for (unsigned S = 0; S != Sessions; ++S)
        OS << (S ? "," : "") << '"'
           << isolationLevelName(H.Levels->levelFor(S)) << '"';
      OS << ']';
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string trace_io::writeTraceTxn(const TransactionLog &Log, TraceFormat F) {
  assert(!Log.isInit() && "the init transaction lives in the header");
  if (F == TraceFormat::Litmus)
    return writeTxnLine(Log) + "\n";
  std::ostringstream OS;
  OS << "{\"s\":" << Log.uid().Session << ",\"i\":" << Log.uid().Index
     << ",\"ops\":[";
  bool First = true;
  for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE; ++P) {
    const Event &Ev = Log.event(P);
    if (!Ev.isRead() && !Ev.isWrite())
      continue; // begin/commit/abort are implicit in jsonl.
    if (!First)
      OS << ',';
    First = false;
    if (Ev.isWrite()) {
      OS << "[\"w\"," << Ev.Var << ',' << Ev.Val << ']';
    } else {
      OS << "[\"r\"," << Ev.Var;
      if (std::optional<TxnUid> W = Log.writerOf(P))
        OS << ",\"" << uidToken(*W) << '"';
      OS << ']';
    }
  }
  OS << "],\"st\":\"" << (Log.isAborted() ? 'a' : 'c') << "\"}\n";
  return OS.str();
}

std::optional<TransactionLog> trace_io::parseJsonlTxn(const std::string &Line,
                                                      std::string *Error) {
  std::string JsonError;
  std::unique_ptr<JsonValue> Doc = parseJson(Line, &JsonError);
  if (!Doc) {
    fail(Error, "bad JSON: " + JsonError);
    return std::nullopt;
  }
  if (Doc->kind() != JsonValue::Kind::Object) {
    fail(Error, "trace record is not a JSON object");
    return std::nullopt;
  }
  const JsonValue *S = Doc->find("s"), *I = Doc->find("i"),
                  *Ops = Doc->find("ops");
  unsigned Session = 0, Index = 0;
  if (!S || !I) {
    fail(Error, std::string("missing \"") + (!S ? "s" : "i") + "\" field");
    return std::nullopt;
  }
  if (!asUnsigned(*S, TxnUid::InitSession, Session, Error, "session \"s\"") ||
      !asUnsigned(*I, uint64_t(1) << 32, Index, Error, "index \"i\""))
    return std::nullopt;
  if (!Ops || Ops->kind() != JsonValue::Kind::Array) {
    fail(Error, "missing \"ops\" array");
    return std::nullopt;
  }
  TransactionLog Log(TxnUid{Session, Index});
  Log.append(Event::makeBegin());
  for (const JsonValue &Op : Ops->elements()) {
    const auto &E = Op.elements();
    if (Op.kind() != JsonValue::Kind::Array || E.empty() ||
        E[0].kind() != JsonValue::Kind::String) {
      fail(Error, "malformed op (expected [\"r\"|\"w\", ...])");
      return std::nullopt;
    }
    const std::string &Code = E[0].asString();
    unsigned Var = 0;
    if (Code == "w") {
      if (E.size() != 3 ||
          !asUnsigned(E[1], uint64_t(1) << 32, Var, Error, "write var") ||
          E[2].kind() != JsonValue::Kind::Number) {
        fail(Error, "malformed write op");
        return std::nullopt;
      }
      Log.append(Event::makeWrite(Var, static_cast<Value>(E[2].asNumber())));
    } else if (Code == "r") {
      if ((E.size() != 2 && E.size() != 3) ||
          !asUnsigned(E[1], uint64_t(1) << 32, Var, Error, "read var")) {
        fail(Error, "malformed read op");
        return std::nullopt;
      }
      Log.append(Event::makeRead(Var));
      if (E.size() == 3) {
        if (E[2].kind() != JsonValue::Kind::String) {
          fail(Error, "read writer must be a uid string");
          return std::nullopt;
        }
        TxnUid Writer;
        if (!parseUidToken(E[2].asString(), Writer, Error))
          return std::nullopt;
        Log.setWriter(static_cast<uint32_t>(Log.size()) - 1, Writer);
      }
    } else {
      fail(Error, "unknown op code '" + Code + "'");
      return std::nullopt;
    }
  }
  const JsonValue *St = Doc->find("st");
  bool Abort = false;
  if (St) {
    if (St->kind() != JsonValue::Kind::String ||
        (St->asString() != "c" && St->asString() != "a")) {
      fail(Error, "\"st\" must be \"c\" or \"a\"");
      return std::nullopt;
    }
    Abort = St->asString() == "a";
  }
  Log.append(Abort ? Event::makeAbort() : Event::makeCommit());
  return Log;
}

void trace_io::writeTrace(std::ostream &OS, const TraceHeader &H,
                          const std::vector<TransactionLog> &Txns,
                          TraceFormat F) {
  OS << writeTraceHeader(H, F);
  for (const TransactionLog &Log : Txns)
    OS << writeTraceTxn(Log, F);
}

bool trace_io::traceFromHistory(const History &H,
                                const LevelAssignment &Levels,
                                TraceHeader &HeaderOut,
                                std::vector<TransactionLog> &TxnsOut,
                                std::string *Error) {
  if (H.numTxns() == 0 || !H.txn(0).isInit())
    return fail(Error, "history must start with the init transaction");
  std::vector<VarId> InitVars = H.txn(0).writtenVars();
  HeaderOut = TraceHeader();
  HeaderOut.NumVars = InitVars.empty() ? 0 : InitVars.back() + 1;
  unsigned MaxSession = 0;
  TxnsOut.clear();
  for (unsigned I = 1, E = H.numTxns(); I != E; ++I) {
    const TransactionLog &Log = H.txn(I);
    if (Log.isPending())
      return fail(Error,
                  "pending transaction " + Log.uid().str() + " in history");
    MaxSession = std::max(MaxSession, Log.uid().Session);
    TxnsOut.push_back(Log);
  }
  HeaderOut.NumSessions = TxnsOut.empty() ? 0 : MaxSession + 1;
  HeaderOut.Levels = Levels;
  return true;
}
