//===- trace_io/TraceFormat.h - Trace record grammar ----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk grammar of production traces: a header describing the
/// variable universe, session count and isolation assignment, followed by
/// one record per *completed* transaction in commit order. Two concrete
/// syntaxes share the same record model:
///
///  * **litmus** — the human-editable text format. Header lines
///    (`# comment`, `sessions N`, `level CC S1=RC`) followed by the init
///    transaction's line and one `txn <uid> ...` line per transaction,
///    reusing the history/Serialize.h line grammar verbatim:
///
///      # txdpor trace
///      sessions 2
///      level CC S1=RC
///      txn init begin write x0 = 0 write x1 = 0 commit
///      txn 0.0 begin read x0 <- init write x1 = 3 commit
///
///  * **jsonl** — the compact machine format: one JSON object per line on
///    support/Json.h's parser. The first line is the header, every later
///    line one transaction:
///
///      {"trace":"txdpor-v1","vars":2,"sessions":2,"level":"CC",
///       "session_levels":["CC","RC"]}
///      {"s":0,"i":0,"ops":[["r",0,"init"],["w",1,3]],"st":"c"}
///
///    `ops` entries are `["r",var]` (internal read), `["r",var,"uid"]`
///    (external read from the named writer) and `["w",var,val]`; `st` is
///    `"c"` (commit, the default) or `"a"` (abort).
///
/// The formats auto-detect by first significant character (`{` = jsonl),
/// and writeTraceTxn/readers round-trip exactly.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TRACE_IO_TRACEFORMAT_H
#define TXDPOR_TRACE_IO_TRACEFORMAT_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace txdpor {
namespace trace_io {

/// Concrete trace syntax.
enum class TraceFormat : uint8_t { Litmus, Jsonl };

/// Static stream metadata, parsed before the first transaction record.
struct TraceHeader {
  /// Size of the variable universe; the init transaction writes 0 to
  /// every variable below it.
  unsigned NumVars = 0;
  /// Declared session count, when the trace pins one (enables unknown-
  /// session detection; absent = sessions are open-ended).
  std::optional<unsigned> NumSessions;
  /// Isolation assignment declared by the trace, when present. The CLI's
  /// --base/--levels flags override it.
  std::optional<LevelAssignment> Levels;
};

/// Serializes the header of \p H in \p F (one or more lines, each
/// newline-terminated; for litmus this includes the init txn line).
std::string writeTraceHeader(const TraceHeader &H, TraceFormat F);

/// Serializes one completed transaction record in \p F (one line,
/// newline-terminated). \p Log must not be the init transaction.
std::string writeTraceTxn(const TransactionLog &Log, TraceFormat F);

/// Parses one jsonl transaction record line. Returns nullopt with a
/// diagnostic in \p Error on malformed input (truncated JSON, wrong
/// types, unknown op code, bad writer uid).
std::optional<TransactionLog> parseJsonlTxn(const std::string &Line,
                                            std::string *Error);

/// Writes a whole trace (header + records) to \p OS.
void writeTrace(std::ostream &OS, const TraceHeader &H,
                const std::vector<TransactionLog> &Txns, TraceFormat F);

/// Extracts a trace from an explored history: \p H's non-init blocks in
/// block order, with the header sized from its init transaction and
/// carrying \p Levels. Requires the ordered-history discipline (init
/// first, every transaction complete, so ∪ wr forward in block order —
/// the caller checks eligibility); returns false with a diagnostic
/// otherwise.
bool traceFromHistory(const History &H, const LevelAssignment &Levels,
                      TraceHeader &HeaderOut,
                      std::vector<TransactionLog> &TxnsOut,
                      std::string *Error = nullptr);

} // namespace trace_io
} // namespace txdpor

#endif // TXDPOR_TRACE_IO_TRACEFORMAT_H
