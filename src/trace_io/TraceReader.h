//===- trace_io/TraceReader.h - Streaming trace ingestion -----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pull-based reader over a trace stream (file, pipe or string): detects
/// the format (TraceFormat.h) from the first significant character,
/// parses the header eagerly, then yields one completed TransactionLog
/// per next() call — O(record) memory, never the whole trace. Syntactic
/// validation (grammar, types, uids) happens here with line-numbered
/// diagnostics; *semantic* validation (unknown sessions, duplicate
/// commits, reads of never-written values, stale writers) is the
/// streaming checker's job, which sees the window context.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TRACE_IO_TRACEREADER_H
#define TXDPOR_TRACE_IO_TRACEREADER_H

#include "trace_io/TraceFormat.h"

#include <istream>

namespace txdpor {
namespace trace_io {

/// Reads one trace stream front to back. Construction consumes the
/// header; check valid() before the first next().
class TraceReader {
public:
  explicit TraceReader(std::istream &In);

  /// False when the header was malformed; error() explains.
  bool valid() const { return Valid; }
  const std::string &error() const { return Error; }

  const TraceHeader &header() const { return Header; }
  TraceFormat format() const { return Format; }

  /// Line number of the most recently consumed line (1-based) — the
  /// position diagnostics refer to.
  unsigned lineNo() const { return LineNo; }

  enum class Next : uint8_t {
    Txn,  ///< \p Out holds the next transaction record.
    End,  ///< Clean end of stream.
    Error ///< Malformed record; error() explains, reading must stop.
  };

  /// Parses the next transaction record into \p Out.
  Next next(TransactionLog &Out);

private:
  /// Fetches the next significant line (skips blanks and '#' comments).
  bool nextLine(std::string &Line);
  void setError(const std::string &Message);

  std::istream &In;
  TraceHeader Header;
  TraceFormat Format = TraceFormat::Litmus;
  unsigned LineNo = 0;
  bool Valid = false;
  std::string Error;
};

} // namespace trace_io
} // namespace txdpor

#endif // TXDPOR_TRACE_IO_TRACEREADER_H
