//===- trace_io/TraceReader.cpp - Streaming trace ingestion ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "trace_io/TraceReader.h"

#include "consistency/LevelParse.h"
#include "history/Serialize.h"
#include "support/Json.h"
#include "support/Parse.h"

#include <sstream>

using namespace txdpor;
using namespace txdpor::trace_io;

TraceReader::TraceReader(std::istream &In) : In(In) {
  std::string Line;
  if (!nextLine(Line)) {
    setError("empty trace (no header)");
    return;
  }
  size_t First = Line.find_first_not_of(" \t");
  if (Line[First] == '{') {
    // jsonl: the first line is the header object.
    Format = TraceFormat::Jsonl;
    std::string JsonError;
    std::unique_ptr<JsonValue> Doc = parseJson(Line, &JsonError);
    if (!Doc) {
      setError("bad JSON header: " + JsonError);
      return;
    }
    const JsonValue *Magic = Doc->find("trace");
    if (!Magic || Magic->kind() != JsonValue::Kind::String ||
        Magic->asString() != "txdpor-v1") {
      setError("missing \"trace\":\"txdpor-v1\" header field");
      return;
    }
    const JsonValue *Vars = Doc->find("vars");
    if (!Vars || Vars->kind() != JsonValue::Kind::Number ||
        Vars->asNumber() < 0 || Vars->asNumber() > 1u << 20) {
      setError("header \"vars\" missing or out of range");
      return;
    }
    Header.NumVars = static_cast<unsigned>(Vars->asNumber());
    if (const JsonValue *Sessions = Doc->find("sessions")) {
      if (Sessions->kind() != JsonValue::Kind::Number ||
          Sessions->asNumber() < 0 || Sessions->asNumber() > 1u << 30) {
        setError("header \"sessions\" out of range");
        return;
      }
      Header.NumSessions = static_cast<unsigned>(Sessions->asNumber());
    }
    if (const JsonValue *Level = Doc->find("level")) {
      if (Level->kind() != JsonValue::Kind::String) {
        setError("header \"level\" must be a level name");
        return;
      }
      std::optional<IsolationLevel> Base =
          isolationLevelByName(Level->asString());
      if (!Base) {
        setError("unknown isolation level '" + Level->asString() + "'");
        return;
      }
      Header.Levels = LevelAssignment::uniform(*Base);
    }
    if (const JsonValue *PerSession = Doc->find("session_levels")) {
      if (PerSession->kind() != JsonValue::Kind::Array || !Header.Levels) {
        setError("\"session_levels\" needs a \"level\" and an array value");
        return;
      }
      unsigned S = 0;
      for (const JsonValue &Entry : PerSession->elements()) {
        std::optional<IsolationLevel> L =
            Entry.kind() == JsonValue::Kind::String
                ? isolationLevelByName(Entry.asString())
                : std::nullopt;
        if (!L) {
          setError("bad \"session_levels\" entry");
          return;
        }
        Header.Levels->set(S++, *L);
      }
    }
    Valid = true;
    return;
  }

  // litmus: optional "sessions" / "level" lines, then the init txn line.
  Format = TraceFormat::Litmus;
  for (;;) {
    std::istringstream Tokens(Line);
    std::string Keyword;
    Tokens >> Keyword;
    if (Keyword == "sessions") {
      std::string Count;
      if (!(Tokens >> Count)) {
        setError("missing session count");
        return;
      }
      std::optional<unsigned> N = parseBoundedUInt(Count, 1u << 30);
      if (!N) {
        setError("bad session count '" + Count + "'");
        return;
      }
      Header.NumSessions = *N;
    } else if (Keyword == "level") {
      std::string Tok;
      if (!(Tokens >> Tok)) {
        setError("missing isolation level");
        return;
      }
      std::optional<IsolationLevel> Base = isolationLevelByName(Tok);
      if (!Base) {
        setError("unknown isolation level '" + Tok + "'");
        return;
      }
      Header.Levels = LevelAssignment::uniform(*Base);
      while (Tokens >> Tok) {
        std::optional<std::pair<unsigned, IsolationLevel>> Entry =
            parseSessionLevel(Tok);
        if (!Entry) {
          setError("bad session-level entry '" + Tok + "'");
          return;
        }
        Header.Levels->set(Entry->first, Entry->second);
      }
    } else if (Keyword == "txn") {
      std::string ParseError;
      std::optional<TransactionLog> Init = parseTxnLine(Line, &ParseError);
      if (!Init) {
        setError(ParseError);
        return;
      }
      if (!Init->isInit() || !Init->isCommitted()) {
        setError("the first transaction line must be the committed init "
                 "transaction");
        return;
      }
      std::vector<VarId> InitVars = Init->writtenVars();
      Header.NumVars = InitVars.empty() ? 0 : InitVars.back() + 1;
      Valid = true;
      return;
    } else {
      setError("expected 'sessions', 'level' or 'txn', got '" + Keyword +
               "'");
      return;
    }
    if (!nextLine(Line)) {
      setError("trace header without an init transaction line");
      return;
    }
  }
}

bool TraceReader::nextLine(std::string &Line) {
  while (std::getline(In, Line)) {
    ++LineNo;
    // CRLF-saved traces: getline keeps the trailing '\r', which would
    // otherwise embed itself in the last token of every line.
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    return true;
  }
  return false;
}

void TraceReader::setError(const std::string &Message) {
  Valid = false;
  Error = Message + " at line " + std::to_string(LineNo);
}

TraceReader::Next TraceReader::next(TransactionLog &Out) {
  assert(Valid && "next() on an invalid reader");
  std::string Line;
  if (!nextLine(Line)) {
    if (In.bad()) {
      setError("read error");
      return Next::Error;
    }
    return Next::End;
  }
  std::string ParseError;
  std::optional<TransactionLog> Log =
      Format == TraceFormat::Jsonl ? parseJsonlTxn(Line, &ParseError)
                                   : parseTxnLine(Line, &ParseError);
  if (!Log) {
    setError(ParseError);
    return Next::Error;
  }
  if (Log->isInit()) {
    setError("duplicate init transaction");
    return Next::Error;
  }
  if (Log->isPending()) {
    // Litmus lines may omit commit/abort in history dumps; a *trace*
    // record must be a completed transaction.
    setError("transaction record without commit/abort");
    return Next::Error;
  }
  Out = std::move(*Log);
  return Next::Txn;
}
