//===- trace_io/TraceGen.h - Deterministic trace generation ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of production-shaped traces for the streaming
/// checker's benches, CI smoke and stress tests. Committed transactions
/// read the *latest* committed writer of each variable (the behaviour of
/// a serially-executing store), so the generated trace is consistent at
/// every saturable level and — crucially for the windowed checker — its
/// constraint edges all point forward in commit order, which keeps the
/// eviction fixpoint draining and the window bounded by the budget.
///
/// An optional seeded anomaly injects a three-transaction read-skew at a
/// chosen position: a fresh writer of one variable, an RMW superseding
/// it, then a reader that observes the new version and then the
/// superseded one, forcing a commit-order cycle at RC and every stronger
/// level. The three transactions are adjacent, so the superseded writer
/// is at most two ingests old at the reader — inside the streaming
/// checker's young-generation eviction exemption — and the checker
/// reports a definite anomaly, never a stale-read refusal.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TRACE_IO_TRACEGEN_H
#define TXDPOR_TRACE_IO_TRACEGEN_H

#include "trace_io/TraceFormat.h"

#include <functional>

namespace txdpor {
namespace trace_io {

/// Knobs of one generated trace. Defaults give a clean, friendly trace.
struct GenConfig {
  unsigned Sessions = 4;
  unsigned Vars = 8;
  uint64_t Seed = 1;
  /// Target event count (sum of log sizes, begin/commit included); the
  /// generator stops at the first transaction boundary past it.
  uint64_t Events = 10000;
  unsigned ReadsPerTxn = 2;
  unsigned WritesPerTxn = 2;
  /// Percentage of transactions that abort (their writes stay invisible).
  unsigned AbortPercent = 5;
  /// When non-zero, inject the read-skew anomaly as transactions number
  /// \p AnomalyAtTxn through AnomalyAtTxn+2 (1-based count of generated
  /// transactions; pick it past a few warm-up transactions).
  uint64_t AnomalyAtTxn = 0;
};

/// Generates the trace described by \p C, passing each completed
/// transaction to \p Sink in commit order, and returns the header
/// (vars/sessions; no level — the checker's assignment is the caller's
/// choice). Deterministic in C.Seed.
TraceHeader generateTrace(const GenConfig &C,
                          const std::function<void(const TransactionLog &)> &Sink);

} // namespace trace_io
} // namespace txdpor

#endif // TXDPOR_TRACE_IO_TRACEGEN_H
