//===- support/Json.cpp - Minimal JSON emission for bench dumps -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace txdpor;

std::string JsonWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::newline() {
  OS << '\n';
  for (size_t I = 0; I != IsObject.size(); ++I)
    OS << "  ";
}

void JsonWriter::beforeValue() {
  if (IsObject.empty())
    return; // Top-level value.
  if (IsObject.back()) {
    assert(PendingKey && "object member needs a key() first");
    PendingKey = false;
    return;
  }
  if (HasElement.back())
    OS << ',';
  HasElement.back() = true;
  newline();
}

JsonWriter &JsonWriter::key(const std::string &K) {
  assert(!IsObject.empty() && IsObject.back() && "key() outside an object");
  assert(!PendingKey && "two keys in a row");
  if (HasElement.back())
    OS << ',';
  HasElement.back() = true;
  newline();
  OS << '"' << escape(K) << "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << '{';
  IsObject.push_back(true);
  HasElement.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!IsObject.empty() && IsObject.back() && "unbalanced endObject()");
  bool Empty = !HasElement.back();
  IsObject.pop_back();
  HasElement.pop_back();
  if (!Empty)
    newline();
  OS << '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << '[';
  IsObject.push_back(false);
  HasElement.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!IsObject.empty() && !IsObject.back() && "unbalanced endArray()");
  bool Empty = !HasElement.back();
  IsObject.pop_back();
  HasElement.pop_back();
  if (!Empty)
    newline();
  OS << ']';
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  beforeValue();
  OS << '"' << escape(V) << '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *V) {
  return value(std::string(V));
}

JsonWriter &JsonWriter::value(double V) {
  beforeValue();
  if (std::isfinite(V)) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    OS << Buf;
  } else {
    OS << "null"; // JSON has no Inf/NaN.
  }
  return *this;
}

JsonWriter &JsonWriter::valueFixed(double V, int Decimals) {
  beforeValue();
  if (std::isfinite(V)) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
    OS << Buf;
  } else {
    OS << "null"; // JSON has no Inf/NaN.
  }
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  beforeValue();
  OS << (V ? "true" : "false");
  return *this;
}

//===----------------------------------------------------------------------===//
// JsonValue / parseJson — the minimal reader
//===----------------------------------------------------------------------===//

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::makeNumber(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::makeArray() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::makeObject() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

/// Recursive-descent parser over the RFC 8259 grammar. Depth-bounded so
/// adversarial nesting cannot overflow the C++ stack.
class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  std::unique_ptr<JsonValue> run(std::string *Error) {
    auto Root = std::make_unique<JsonValue>();
    if (!parseValue(*Root, 0)) {
      report(Error);
      return nullptr;
    }
    skipWhitespace();
    if (Pos != Text.size()) {
      Err = "trailing characters after the document";
      report(Error);
      return nullptr;
    }
    return Root;
  }

private:
  static constexpr unsigned MaxDepth = 256;

  void report(std::string *Error) {
    if (Error)
      *Error = Err + " (at offset " + std::to_string(Pos) + ")";
  }

  void skipWhitespace() {
    while (Pos != Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const char *Message) {
    Err = Message;
    return false;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // Opening quote.
    Out.clear();
    while (Pos != Text.size() && Text[Pos] != '"') {
      char C = Text[Pos];
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      if (++Pos == Text.size())
        return fail("unterminated escape");
      switch (Text[Pos]) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 >= Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos + 1 + I];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad hex digit in \\u escape");
        }
        Pos += 4;
        // UTF-8-encode the code point (surrogate pairs are passed through
        // individually — the writer never emits them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
      ++Pos;
    }
    if (Pos == Text.size())
      return fail("unterminated string");
    ++Pos; // Closing quote.
    return true;
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos != Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos != Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    char *End = nullptr;
    std::string Token = Text.substr(Start, Pos - Start);
    double V = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || Token.empty())
      return fail("malformed number");
    Out = JsonValue::makeNumber(V);
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWhitespace();
    if (Pos == Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{': {
      ++Pos;
      Out = JsonValue::makeObject();
      skipWhitespace();
      if (Pos != Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      for (;;) {
        skipWhitespace();
        if (Pos == Text.size() || Text[Pos] != '"')
          return fail("expected object key");
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWhitespace();
        if (Pos == Text.size() || Text[Pos] != ':')
          return fail("expected ':' after key");
        ++Pos;
        JsonValue Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.members().emplace_back(std::move(Key), std::move(Member));
        skipWhitespace();
        if (Pos == Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++Pos;
      Out = JsonValue::makeArray();
      skipWhitespace();
      if (Pos != Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      for (;;) {
        JsonValue Elem;
        if (!parseValue(Elem, Depth + 1))
          return false;
        Out.elements().push_back(std::move(Elem));
        skipWhitespace();
        if (Pos == Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue::makeBool(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue::makeBool(false);
      return true;
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

std::unique_ptr<JsonValue> txdpor::parseJson(const std::string &Text,
                                             std::string *Error) {
  return JsonParser(Text).run(Error);
}
