//===- support/Json.cpp - Minimal JSON emission for bench dumps -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace txdpor;

std::string JsonWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::newline() {
  OS << '\n';
  for (size_t I = 0; I != IsObject.size(); ++I)
    OS << "  ";
}

void JsonWriter::beforeValue() {
  if (IsObject.empty())
    return; // Top-level value.
  if (IsObject.back()) {
    assert(PendingKey && "object member needs a key() first");
    PendingKey = false;
    return;
  }
  if (HasElement.back())
    OS << ',';
  HasElement.back() = true;
  newline();
}

JsonWriter &JsonWriter::key(const std::string &K) {
  assert(!IsObject.empty() && IsObject.back() && "key() outside an object");
  assert(!PendingKey && "two keys in a row");
  if (HasElement.back())
    OS << ',';
  HasElement.back() = true;
  newline();
  OS << '"' << escape(K) << "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << '{';
  IsObject.push_back(true);
  HasElement.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!IsObject.empty() && IsObject.back() && "unbalanced endObject()");
  bool Empty = !HasElement.back();
  IsObject.pop_back();
  HasElement.pop_back();
  if (!Empty)
    newline();
  OS << '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << '[';
  IsObject.push_back(false);
  HasElement.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!IsObject.empty() && !IsObject.back() && "unbalanced endArray()");
  bool Empty = !HasElement.back();
  IsObject.pop_back();
  HasElement.pop_back();
  if (!Empty)
    newline();
  OS << ']';
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  beforeValue();
  OS << '"' << escape(V) << '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *V) {
  return value(std::string(V));
}

JsonWriter &JsonWriter::value(double V) {
  beforeValue();
  if (std::isfinite(V)) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    OS << Buf;
  } else {
    OS << "null"; // JSON has no Inf/NaN.
  }
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  beforeValue();
  OS << (V ? "true" : "false");
  return *this;
}
