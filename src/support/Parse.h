//===- support/Parse.h - Checked, exception-free number parsing -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict integer parsing shared by every user-facing text surface (the
/// CLI option parser, the litmus repro parser). All parsers return
/// nullopt — never throw, never saturate, never silently truncate — on
/// empty input, trailing garbage, out-of-range magnitudes, or (for the
/// unsigned variants) a leading minus sign. `std::atoi`'s "malformed
/// becomes 0" and `static_cast<unsigned>(-1)`'s wrap-around are exactly
/// the bugs this module exists to keep out of option handling.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_PARSE_H
#define TXDPOR_SUPPORT_PARSE_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace txdpor {

/// Parses a signed decimal integer; the whole token must be consumed.
/// The first character must be a digit or '-': no leading whitespace
/// (which strtoll would skip, letting " 5" through) and no '+' form.
inline std::optional<int64_t> parseInt(const std::string &Tok) {
  if (Tok.empty() ||
      !(Tok.front() == '-' || (Tok.front() >= '0' && Tok.front() <= '9')))
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(Tok.c_str(), &End, 10);
  if (*End != '\0' || errno == ERANGE)
    return std::nullopt;
  return static_cast<int64_t>(V);
}

/// Parses a non-negative decimal integer. The first character must be a
/// digit: a literal '-' is rejected outright, and so is leading
/// whitespace — strtoull skips it and then happily wraps " -1" to
/// 2^64 - 1, which is exactly the silent-wrap class this header bans.
inline std::optional<uint64_t> parseUInt(const std::string &Tok) {
  if (Tok.empty() || Tok.front() < '0' || Tok.front() > '9')
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Tok.c_str(), &End, 10);
  if (*End != '\0' || errno == ERANGE)
    return std::nullopt;
  return static_cast<uint64_t>(V);
}

/// parseUInt additionally bounded to fit an `unsigned` (the CLI's session
/// and thread counts); \p Max tightens the bound further when a domain
/// has one (e.g. percentages).
inline std::optional<unsigned>
parseBoundedUInt(const std::string &Tok, uint64_t Max = 0xffffffffu) {
  std::optional<uint64_t> V = parseUInt(Tok);
  if (!V || *V > Max || *V > 0xffffffffu)
    return std::nullopt;
  return static_cast<unsigned>(*V);
}

} // namespace txdpor

#endif // TXDPOR_SUPPORT_PARSE_H
