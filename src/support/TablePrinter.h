//===- support/TablePrinter.h - Aligned text tables for benches ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bench binaries regenerate the paper's tables (Appendix F) and the
/// series behind its cactus/scalability plots. TablePrinter renders rows
/// with aligned columns so the output can be eyeballed against the paper
/// and grepped by scripts.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_TABLEPRINTER_H
#define TXDPOR_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace txdpor {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the header, a separator, and all rows to \p OS.
  void print(std::ostream &OS) const;

  /// Formats a millisecond duration as "mm:ss.mmm" like the paper's
  /// time columns, or "TL" when \p TimedOut.
  static std::string formatMillis(double Millis, bool TimedOut);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace txdpor

#endif // TXDPOR_SUPPORT_TABLEPRINTER_H
