//===- support/MemoryProbe.cpp - Peak memory reporting --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/MemoryProbe.h"

#include <sys/resource.h>

uint64_t txdpor::peakRssKb() {
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) != 0)
    return 0;
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<uint64_t>(Usage.ru_maxrss);
}
