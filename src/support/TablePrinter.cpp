//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace txdpor;

TablePrinter::TablePrinter(std::vector<std::string> Hdr)
    : Header(std::move(Hdr)) {}

void TablePrinter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Row));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<size_t> Width(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Width[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Width[C])
        Width[C] = Row[C].size();

  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 != Row.size())
        OS << std::string(Width[C] - Row[C].size() + 2, ' ');
    }
    OS << '\n';
  };

  emitRow(Header);
  size_t Total = 0;
  for (size_t C = 0; C != Header.size(); ++C)
    Total += Width[C] + (C + 1 != Header.size() ? 2 : 0);
  OS << std::string(Total, '-') << '\n';
  for (const auto &Row : Rows)
    emitRow(Row);
}

std::string TablePrinter::formatMillis(double Millis, bool TimedOut) {
  if (TimedOut)
    return "TL";
  int64_t Total = static_cast<int64_t>(std::llround(Millis));
  int64_t Minutes = Total / 60000;
  int64_t Seconds = (Total / 1000) % 60;
  int64_t Ms = Total % 1000;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%02lld:%02lld.%03lld",
                static_cast<long long>(Minutes),
                static_cast<long long>(Seconds), static_cast<long long>(Ms));
  return Buf;
}
