//===- support/Relation.h - Dense binary relations over small universes --===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense boolean matrix representing a binary relation over a universe
/// {0, ..., N-1}. Histories in this project are small (tens of
/// transactions), so a bit-matrix with word-parallel row operations is both
/// the simplest and the fastest representation for the relational algebra
/// the consistency checkers need: union, composition, transitive closure,
/// acyclicity, and topological enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_RELATION_H
#define TXDPOR_SUPPORT_RELATION_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace txdpor {

/// A dense binary relation over {0, ..., size()-1} stored as a bit matrix.
///
/// Row i holds the successor set of element i. All mutating operations keep
/// unused tail bits of each row zeroed, so whole-word equality and popcount
/// are valid.
class Relation {
public:
  Relation() = default;

  /// Creates an empty relation over a universe of \p N elements.
  explicit Relation(unsigned N)
      : NumElems(N), WordsPerRow((N + 63) / 64),
        Bits(static_cast<size_t>(NumElems) * WordsPerRow, 0) {}

  unsigned size() const { return NumElems; }

  bool get(unsigned From, unsigned To) const {
    assert(From < NumElems && To < NumElems && "relation index out of range");
    return (row(From)[To / 64] >> (To % 64)) & 1;
  }

  void set(unsigned From, unsigned To) {
    assert(From < NumElems && To < NumElems && "relation index out of range");
    row(From)[To / 64] |= uint64_t(1) << (To % 64);
  }

  void clear(unsigned From, unsigned To) {
    assert(From < NumElems && To < NumElems && "relation index out of range");
    row(From)[To / 64] &= ~(uint64_t(1) << (To % 64));
  }

  /// Adds every successor of \p Src to the successors of \p Dst (one
  /// word-parallel row union — the kernel of incremental transitive
  /// closure maintenance).
  void orRow(unsigned Dst, unsigned Src) {
    assert(Dst < NumElems && Src < NumElems && "relation index out of range");
    uint64_t *D = row(Dst);
    const uint64_t *S = row(Src);
    for (unsigned W = 0; W != WordsPerRow; ++W)
      D[W] |= S[W];
  }

  /// Adds every pair of \p Other into this relation. Universes must match.
  void unionWith(const Relation &Other) {
    assert(Other.NumElems == NumElems && "universe mismatch in unionWith");
    for (size_t I = 0, E = Bits.size(); I != E; ++I)
      Bits[I] |= Other.Bits[I];
  }

  /// Returns the union of two relations over the same universe.
  static Relation unionOf(const Relation &A, const Relation &B) {
    Relation R = A;
    R.unionWith(B);
    return R;
  }

  /// Returns the composition {(a, c) | exists b. (a,b) in this and (b,c)
  /// in \p Other}.
  Relation composeWith(const Relation &Other) const;

  /// Computes the transitive closure in place (Floyd–Warshall on bit rows).
  void closeTransitively();

  /// Returns the transitive closure of this relation.
  Relation transitiveClosure() const {
    Relation R = *this;
    R.closeTransitively();
    return R;
  }

  /// Adds the identity pairs (i, i) for every element.
  void addReflexive() {
    for (unsigned I = 0; I != NumElems; ++I)
      set(I, I);
  }

  /// Returns true if the relation (viewed as a directed graph) has no
  /// cycle. Self-loops count as cycles.
  bool isAcyclic() const;

  /// Returns true if the relation relates every ordered pair of distinct
  /// elements one way or the other (i.e. it is total when antisymmetric).
  bool isTotalOrderCandidate() const;

  /// Appends one topological order of the graph to \p Out and returns true,
  /// or returns false if the graph has a cycle.
  bool topologicalOrder(std::vector<unsigned> &Out) const;

  /// Returns the successor set of \p From as an index list, ascending.
  std::vector<unsigned> successors(unsigned From) const;

  /// Calls \p Fn(to) for every successor of \p From, ascending.
  template <typename FnT> void forEachSuccessor(unsigned From, FnT Fn) const {
    const uint64_t *R = row(From);
    for (unsigned W = 0; W != WordsPerRow; ++W) {
      uint64_t Word = R[W];
      while (Word) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
        Fn(W * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

  /// Number of pairs in the relation.
  unsigned countPairs() const {
    unsigned N = 0;
    for (uint64_t W : Bits)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const Relation &Other) const {
    return NumElems == Other.NumElems && Bits == Other.Bits;
  }
  bool operator!=(const Relation &Other) const { return !(*this == Other); }

private:
  uint64_t *row(unsigned I) {
    return Bits.data() + static_cast<size_t>(I) * WordsPerRow;
  }
  const uint64_t *row(unsigned I) const {
    return Bits.data() + static_cast<size_t>(I) * WordsPerRow;
  }

  unsigned NumElems = 0;
  unsigned WordsPerRow = 0;
  std::vector<uint64_t> Bits;
};

} // namespace txdpor

#endif // TXDPOR_SUPPORT_RELATION_H
