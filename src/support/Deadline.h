//===- support/Deadline.h - Wall-clock budgets for explorations ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation runs every benchmark with a 30-minute timeout and
/// reports "TL" rows. We reproduce that with a Deadline the explorer polls;
/// when it expires the exploration unwinds cleanly and the statistics
/// gathered so far are reported with a timed-out flag.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_DEADLINE_H
#define TXDPOR_SUPPORT_DEADLINE_H

#include <chrono>
#include <cstdint>

namespace txdpor {

/// A wall-clock budget. Default-constructed deadlines never expire.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline afterMillis(int64_t Millis) {
    Deadline D;
    D.HasLimit = true;
    D.Limit = Clock::now() + std::chrono::milliseconds(Millis);
    return D;
  }

  static Deadline never() { return Deadline(); }

  bool expired() const {
    if (!HasLimit)
      return false;
    // Poll the clock only every few checks: the explorer calls this in its
    // hot loop and steady_clock reads are comparatively expensive.
    if (++PollCounter % 64 != 0)
      return Expired;
    Expired = Clock::now() >= Limit;
    return Expired;
  }

private:
  bool HasLimit = false;
  Clock::time_point Limit{};
  mutable uint32_t PollCounter = 0;
  mutable bool Expired = false;
};

/// Simple stopwatch for reporting elapsed milliseconds.
class Stopwatch {
public:
  Stopwatch() : Start(Deadline::Clock::now()) {}

  double elapsedMillis() const {
    auto D = Deadline::Clock::now() - Start;
    return std::chrono::duration<double, std::milli>(D).count();
  }

private:
  Deadline::Clock::time_point Start;
};

} // namespace txdpor

#endif // TXDPOR_SUPPORT_DEADLINE_H
