//===- support/Json.h - Minimal JSON emission for bench dumps -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer so the bench harnesses can dump their
/// tables in a machine-readable form next to the human-readable ones
/// (e.g. bench_parallel_scaling's BENCH_parallel.json) and future PRs can
/// track trajectories without scraping text tables — plus a matching
/// minimal reader (JsonValue / parseJson) used by the trace tests to
/// validate the Chrome trace-event dumps the tracing layer emits.
///
/// \code
///   JsonWriter J(OS);
///   J.beginObject();
///   J.key("runs").beginArray();
///   J.beginObject().key("app").value("tpcc").key("ms").value(12.5);
///   J.endObject();
///   J.endArray();
///   J.endObject();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_JSON_H
#define TXDPOR_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace txdpor {

/// Streaming JSON writer with automatic comma/indent management. Values
/// must be emitted in valid JSON positions (asserted in debug builds).
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &V);
  JsonWriter &value(const char *V);
  JsonWriter &value(double V);
  /// Emits \p V with exactly \p Decimals fraction digits ("%.*f") — for
  /// values where %.6g would lose precision, e.g. the Chrome trace
  /// exporter's microsecond timestamps late in a long run.
  JsonWriter &valueFixed(double V, int Decimals);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V);

  /// Escapes \p S per RFC 8259 (quotes, backslash, control characters).
  static std::string escape(const std::string &S);

private:
  void beforeValue();
  void newline();

  std::ostream &OS;
  /// One frame per open container: true = object, false = array.
  std::vector<bool> IsObject;
  /// Whether the current container already holds an element.
  std::vector<bool> HasElement;
  bool PendingKey = false;
};

/// A parsed JSON document node: a tagged union over the six RFC 8259
/// value kinds, with numbers held as double (ample for the trace dumps
/// and bench files this project reads back).
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double N);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray();
  static JsonValue makeObject();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }

  /// Array elements (empty unless kind() == Array).
  const std::vector<JsonValue> &elements() const { return Elems; }
  std::vector<JsonValue> &elements() { return Elems; }

  /// Object members in document order (empty unless kind() == Object).
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  std::vector<std::pair<std::string, JsonValue>> &members() {
    return Members;
  }

  /// First member named \p Key, or null when absent / not an object.
  const JsonValue *find(const std::string &Key) const;

private:
  Kind K;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Returns the root value, or nullptr with a
/// position-annotated message in \p Error (when non-null).
std::unique_ptr<JsonValue> parseJson(const std::string &Text,
                                     std::string *Error = nullptr);

} // namespace txdpor

#endif // TXDPOR_SUPPORT_JSON_H
