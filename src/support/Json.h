//===- support/Json.h - Minimal JSON emission for bench dumps -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer so the bench harnesses can dump their
/// tables in a machine-readable form next to the human-readable ones
/// (e.g. bench_parallel_scaling's BENCH_parallel.json) and future PRs can
/// track trajectories without scraping text tables. Emission only — this
/// project never parses JSON.
///
/// \code
///   JsonWriter J(OS);
///   J.beginObject();
///   J.key("runs").beginArray();
///   J.beginObject().key("app").value("tpcc").key("ms").value(12.5);
///   J.endObject();
///   J.endArray();
///   J.endObject();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_JSON_H
#define TXDPOR_SUPPORT_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace txdpor {

/// Streaming JSON writer with automatic comma/indent management. Values
/// must be emitted in valid JSON positions (asserted in debug builds).
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &V);
  JsonWriter &value(const char *V);
  JsonWriter &value(double V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(bool V);

  /// Escapes \p S per RFC 8259 (quotes, backslash, control characters).
  static std::string escape(const std::string &S);

private:
  void beforeValue();
  void newline();

  std::ostream &OS;
  /// One frame per open container: true = object, false = array.
  std::vector<bool> IsObject;
  /// Whether the current container already holds an element.
  std::vector<bool> HasElement;
  bool PendingKey = false;
};

} // namespace txdpor

#endif // TXDPOR_SUPPORT_JSON_H
