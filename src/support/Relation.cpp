//===- support/Relation.cpp - Dense binary relations ---------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "support/Relation.h"

using namespace txdpor;

Relation Relation::composeWith(const Relation &Other) const {
  assert(Other.NumElems == NumElems && "universe mismatch in composeWith");
  Relation Result(NumElems);
  for (unsigned A = 0; A != NumElems; ++A) {
    uint64_t *Out = Result.row(A);
    forEachSuccessor(A, [&](unsigned B) {
      const uint64_t *Mid = Other.row(B);
      for (unsigned W = 0; W != WordsPerRow; ++W)
        Out[W] |= Mid[W];
    });
  }
  return Result;
}

void Relation::closeTransitively() {
  // Floyd–Warshall specialized to bit rows: if (I, K) holds, row(I) absorbs
  // row(K).
  for (unsigned K = 0; K != NumElems; ++K) {
    const uint64_t *RowK = row(K);
    for (unsigned I = 0; I != NumElems; ++I) {
      if (!get(I, K))
        continue;
      uint64_t *RowI = row(I);
      for (unsigned W = 0; W != WordsPerRow; ++W)
        RowI[W] |= RowK[W];
    }
  }
}

bool Relation::isAcyclic() const {
  std::vector<unsigned> Order;
  return topologicalOrder(Order);
}

bool Relation::isTotalOrderCandidate() const {
  for (unsigned A = 0; A != NumElems; ++A)
    for (unsigned B = A + 1; B != NumElems; ++B)
      if (!get(A, B) && !get(B, A))
        return false;
  return true;
}

bool Relation::topologicalOrder(std::vector<unsigned> &Out) const {
  // Kahn's algorithm over the bit matrix.
  std::vector<unsigned> InDegree(NumElems, 0);
  for (unsigned A = 0; A != NumElems; ++A)
    forEachSuccessor(A, [&](unsigned B) { ++InDegree[B]; });

  std::vector<unsigned> Ready;
  Ready.reserve(NumElems);
  for (unsigned A = 0; A != NumElems; ++A)
    if (InDegree[A] == 0)
      Ready.push_back(A);

  size_t Emitted = Out.size();
  while (!Ready.empty()) {
    unsigned A = Ready.back();
    Ready.pop_back();
    Out.push_back(A);
    forEachSuccessor(A, [&](unsigned B) {
      if (--InDegree[B] == 0)
        Ready.push_back(B);
    });
  }
  if (Out.size() - Emitted != NumElems) {
    Out.resize(Emitted);
    return false;
  }
  return true;
}

std::vector<unsigned> Relation::successors(unsigned From) const {
  std::vector<unsigned> Result;
  forEachSuccessor(From, [&](unsigned To) { Result.push_back(To); });
  return Result;
}
