//===- support/Hash.h - 64-bit avalanche mixing primitives ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared hashing primitives: the splitmix64 finalizer (the same mixer the
/// deterministic Rng in support/Rng.h is built on) and an order-sensitive
/// 64-bit combiner derived from it. These are the building blocks for
/// History::hashIgnoringOrder, std::hash<EventRef> and the WorkItem
/// fingerprints in core/Dedup.h.
///
/// Why a full-avalanche mix matters here: a commutative combine like
/// `H += hashLog(L) * C` lets the constant factor out of the sum, so any
/// two histories whose per-element hashes merely have equal *sums* collide.
/// Mixing each element through splitmix64 before the commutative combine
/// makes the sum a sum of avalanched values, which no longer has that
/// linear structure.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_HASH_H
#define TXDPOR_SUPPORT_HASH_H

#include <cstdint>

namespace txdpor {

/// The splitmix64 finalizer: a fixed, implementation-defined-free bit mixer
/// with full avalanche (every input bit flips ~half the output bits).
inline uint64_t splitmix64(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Order-sensitive combiner: folds \p V into the running hash \p H with an
/// avalanche mix per step, so (a,b) and (b,a) land far apart.
inline uint64_t hashCombine64(uint64_t H, uint64_t V) {
  return splitmix64(H ^ (splitmix64(V) + 0x9e3779b97f4a7c15ULL + (H << 6) +
                         (H >> 2)));
}

} // namespace txdpor

#endif // TXDPOR_SUPPORT_HASH_H
