//===- support/MemoryProbe.h - Peak memory reporting ----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fig. 14b of the paper plots memory consumption per algorithm. We report
/// the process peak RSS (ru_maxrss), which is what "memory consumption" of
/// a JVM-hosted run approximates as well. Peak RSS is monotone across a
/// process lifetime, so per-run numbers within one bench binary are upper
/// bounds; the polynomial-space claim shows up as the curve staying flat.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_MEMORYPROBE_H
#define TXDPOR_SUPPORT_MEMORYPROBE_H

#include <cstdint>

namespace txdpor {

/// Returns the peak resident set size of this process in kilobytes, or 0 if
/// it cannot be determined.
uint64_t peakRssKb();

} // namespace txdpor

#endif // TXDPOR_SUPPORT_MEMORYPROBE_H
