//===- support/Rng.h - Deterministic pseudo-random generator --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64) used to generate benchmark client
/// programs and random histories/programs in property tests. We avoid
/// std::mt19937 so that generated workloads are reproducible across
/// standard-library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_RNG_H
#define TXDPOR_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace txdpor {

/// SplitMix64: tiny, fast, and good enough for workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow needs a positive bound");
    // Modulo bias is irrelevant for workload generation purposes.
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  uint64_t State;
};

} // namespace txdpor

#endif // TXDPOR_SUPPORT_RNG_H
