//===- support/Rng.h - Deterministic pseudo-random generator --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64) used to generate benchmark client
/// programs, random histories/programs in property tests, and the fuzz
/// corpus (src/fuzz/).
///
/// **Platform-determinism contract.** Fuzz seeds printed in failure logs
/// must reproduce the exact same workload on any machine, so this header
/// is pinned to (a) SplitMix64 — a fixed, implementation-defined-free bit
/// mixer — and (b) hand-rolled bounded sampling (plain modulo in
/// nextBelow). Neither std::mt19937 nor std::uniform_int_distribution may
/// be used anywhere in the project: the distribution's algorithm is
/// unspecified and differs between libstdc++ and libc++, which would make
/// seeds non-portable. The golden-sequence test in tests/support_test.cpp
/// locks the exact output values; if it ever fails, the change breaks
/// every recorded fuzz seed and must be rethought.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SUPPORT_RNG_H
#define TXDPOR_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace txdpor {

/// SplitMix64: tiny, fast, and good enough for workload generation.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow needs a positive bound");
    // Modulo bias is irrelevant for workload generation purposes.
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

  /// Derives an independent stream seed from (\p Base, \p Stream) — one
  /// SplitMix64 step over their combination. Used by the fuzzer to give
  /// every case its own deterministic substream, so case N reproduces
  /// without replaying cases 0..N-1.
  static uint64_t deriveSeed(uint64_t Base, uint64_t Stream) {
    Rng R(Base ^ (Stream * 0x9e3779b97f4a7c15ULL));
    return R.next();
  }

private:
  uint64_t State;
};

} // namespace txdpor

#endif // TXDPOR_SUPPORT_RNG_H
