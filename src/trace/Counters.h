//===- trace/Counters.h - Process-wide named metric counters --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on named counters: a fixed enum of process-wide relaxed atomics,
/// cacheline-padded so distinct counters never false-share. They complement
/// ExplorerStats — which is per-run state merged across workers — with
/// process-lifetime totals that the benches dump as delta columns in their
/// BENCH_*.json files and the CLI folds into the Chrome trace's otherData.
///
/// Overhead: a bump is one relaxed fetch_add; hot loops batch (one bump
/// per ValidWrites fan-out, not per probe). There is no disable switch —
/// these are the "always-on" half of the observability layer.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TRACE_COUNTERS_H
#define TXDPOR_TRACE_COUNTERS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace txdpor {

class JsonWriter;

namespace trace {

/// The counter roster. Keep counterName() in sync.
enum class Counter : uint8_t {
  ValidWritesProbes,  ///< §5.1 commit-test readAdmits probes.
  ReadsLatestChecks,  ///< readLatest_I evaluations (§5.3).
  BulkRebuilds,       ///< ConstraintState bulk constructions.
  PrefixReplays,      ///< Incremental prefix-state continuations.
  SwapChildrenBuilt,  ///< Swap children passing Optimality.
  StealSuccesses,     ///< Parallel worker steals that got an item.
  StealFailures,      ///< Full failed scans over all victim queues.
  IdleParks,          ///< Worker back-off sleeps while work was pending.
  FuzzCases,          ///< Differential-fuzz cases executed.
  StreamTxns,         ///< Trace transactions ingested by check-trace.
  StreamEvictions,    ///< Window transactions garbage-collected.
  StreamPeakWindow,   ///< High-water window size (maintained via bumpMax).
};
constexpr unsigned NumCounters = 12;

/// Snake_case display name of \p C (the JSON key in dumps).
const char *counterName(Counter C);

/// Adds \p Delta to \p C (relaxed).
void bump(Counter C, uint64_t Delta = 1);

/// Raises \p C to at least \p Value (relaxed CAS max) — for high-water
/// gauges like the streaming window size, where a plain add is wrong.
void bumpMax(Counter C, uint64_t Value);

/// Current value of \p C (relaxed).
uint64_t counterValue(Counter C);

/// Resets every counter to zero (bench harnesses call this between runs
/// to turn the process-lifetime totals into per-run deltas).
void resetCounters();

/// All counters as (name, value) pairs, in enum order.
std::vector<std::pair<const char *, uint64_t>> counterSnapshot();

/// Emits every counter as a key/value member of the JSON object currently
/// open on \p J.
void writeCounters(JsonWriter &J);

} // namespace trace
} // namespace txdpor

#endif // TXDPOR_TRACE_COUNTERS_H
