//===- trace/Counters.cpp - Process-wide named metric counters ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "trace/Counters.h"

#include "support/Json.h"

#include <atomic>

using namespace txdpor;
using namespace txdpor::trace;

namespace {

/// One counter per cacheline: workers bumping different counters must not
/// contend.
struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> V{0};
};

PaddedCounter GlobalCounters[NumCounters];

} // namespace

const char *txdpor::trace::counterName(Counter C) {
  switch (C) {
  case Counter::ValidWritesProbes:
    return "valid_writes_probes";
  case Counter::ReadsLatestChecks:
    return "reads_latest_checks";
  case Counter::BulkRebuilds:
    return "bulk_rebuilds";
  case Counter::PrefixReplays:
    return "prefix_replays";
  case Counter::SwapChildrenBuilt:
    return "swap_children_built";
  case Counter::StealSuccesses:
    return "steal_successes";
  case Counter::StealFailures:
    return "steal_failures";
  case Counter::IdleParks:
    return "idle_parks";
  case Counter::FuzzCases:
    return "fuzz_cases";
  case Counter::StreamTxns:
    return "stream_txns";
  case Counter::StreamEvictions:
    return "stream_evictions";
  case Counter::StreamPeakWindow:
    return "stream_peak_window";
  }
  return "?";
}

void txdpor::trace::bump(Counter C, uint64_t Delta) {
  GlobalCounters[static_cast<unsigned>(C)].V.fetch_add(
      Delta, std::memory_order_relaxed);
}

void txdpor::trace::bumpMax(Counter C, uint64_t Value) {
  std::atomic<uint64_t> &A = GlobalCounters[static_cast<unsigned>(C)].V;
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (Cur < Value &&
         !A.compare_exchange_weak(Cur, Value, std::memory_order_relaxed)) {
  }
}

uint64_t txdpor::trace::counterValue(Counter C) {
  return GlobalCounters[static_cast<unsigned>(C)].V.load(
      std::memory_order_relaxed);
}

void txdpor::trace::resetCounters() {
  for (PaddedCounter &C : GlobalCounters)
    C.V.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<const char *, uint64_t>>
txdpor::trace::counterSnapshot() {
  std::vector<std::pair<const char *, uint64_t>> Snap;
  Snap.reserve(NumCounters);
  for (unsigned I = 0; I != NumCounters; ++I)
    Snap.emplace_back(counterName(static_cast<Counter>(I)),
                      counterValue(static_cast<Counter>(I)));
  return Snap;
}

void txdpor::trace::writeCounters(JsonWriter &J) {
  for (const auto &[Name, Value] : counterSnapshot())
    J.key(Name).value(Value);
}
