//===- trace/Trace.h - Always-on tracing: spans, rings, registry ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime tracing layer behind `txdpor-cli --trace`: every thread that
/// emits an event owns a lock-free single-producer/single-consumer ring
/// buffer of fixed-size records, registered with a process-wide registry
/// that can snapshot all live buffers (for the Chrome trace-event dump,
/// trace/ChromeTrace.h).
///
/// **Overhead contract.** Tracing is always compiled in but gated by a
/// runtime category mask in one global atomic:
///
///   * *disabled* (the default): a span costs one relaxed atomic load and
///     one predictable branch — no clock read, no allocation, no lock;
///   * *enabled*: two steady_clock reads plus one ring-buffer store per
///     span; still no locks and no allocation on the hot path (buffers are
///     created once per thread, under the registry mutex).
///
/// The `TXDPOR_TRACE_*` macros are the instrumentation surface; defining
/// `TXDPOR_DISABLE_TRACING` compiles them away entirely.
///
/// **Ring-buffer protocol.** Each buffer is SPSC: the owning thread is the
/// only producer (plain slot store, then a release store of the write
/// index); the snapshotting thread is the only consumer (acquire load of
/// the write index, plain slot reads, optional release store of the read
/// index). A full buffer *drops* the new record and counts it — it never
/// overwrites unread slots, so concurrent non-consuming snapshots are safe
/// while workers keep emitting (exercised under TSan by trace_test).
///
/// **Session contract.** start(), stop() and consuming snapshots must not
/// race with each other; the intended use is start → run workload (any
/// number of emitting threads, optionally concurrent *non-consuming*
/// snapshots) → join/quiesce → stop → snapshot → write.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TRACE_TRACE_H
#define TXDPOR_TRACE_TRACE_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace txdpor {
namespace trace {

/// Event categories; each is one bit of the runtime enable mask, so
/// `--trace-categories=parallel,check` records exactly those layers.
enum class Category : uint8_t {
  Explore,  ///< Engine expansion: expandItem, ValidWrites fan-out.
  Swap,     ///< Commit fan-out: reorderings, swap-child construction.
  Check,    ///< Commit tests: bulk ConstraintState rebuilds, readsLatest.
  Replay,   ///< Executor: incremental cursor replay after swaps.
  Parallel, ///< Parallel driver: split phase, workers, steals, idling.
  Fuzz,     ///< Differential fuzzer: per-case spans.
};
constexpr unsigned NumCategories = 6;
constexpr uint32_t AllCategories = (1u << NumCategories) - 1;

/// Lower-case name used in the Chrome trace "cat" field and in
/// `--trace-categories` specs.
const char *categoryName(Category C);

/// Parses a `--trace-categories` spec: "all" or a comma-separated list of
/// category names. Returns the enable mask, or nullopt on any unknown
/// name (the CLI turns that into a diagnostic naming the bad token via
/// \p BadToken).
std::optional<uint32_t> parseCategories(const std::string &Spec,
                                        std::string *BadToken = nullptr);

/// Statically-interned event names: records store a 16-bit id instead of
/// a string, keeping them fixed-size and the hot path allocation-free.
enum class Name : uint16_t {
  ExpandItem,    ///< One engine expansion (arg0 = node depth).
  ValidWrites,   ///< §5.1 commit-test fan-out (arg0 = var, arg1 = probes).
  CommitFanout,  ///< Swap-candidate loop after a commit (arg0 = #cands).
  SwapChild,     ///< One swap child: applySwap + state + optimality.
  ReadsLatest,   ///< One readLatest_I evaluation (§5.3).
  BulkRebuild,   ///< ConstraintState bulk constructor (arg0 = #txns).
  PrefixReplay,  ///< Incremental continuation of a cached prefix state
                 ///< (arg0 = first replayed block, arg1 = #blocks).
  ReplayCursors, ///< replayCursorsFrom (arg0 = first dirty block).
  SplitPhase,    ///< Parallel BFS split (arg0 = frontier items).
  Worker,        ///< One worker thread's whole run (arg0 = worker id).
  Idle,          ///< A worker parked waiting for stealable work.
  Steal,         ///< Instant: successful steal (arg0 = victim worker).
  Pending,       ///< Counter: global pending-item count at sample time.
  FuzzCase,      ///< One differential-fuzz case (arg0 = case index).
};

/// Display string of \p N (the Chrome trace "name" field).
const char *name(Name N);

/// What a record represents; maps onto Chrome trace-event phases.
enum class RecordKind : uint8_t {
  Span,    ///< Duration event ("ph":"X"): [StartNs, EndNs].
  Instant, ///< Point event ("ph":"i") at StartNs.
  Counter, ///< Counter sample ("ph":"C") at StartNs, value in Arg0.
};

/// One fixed-size trace record (48 bytes). Timestamps are nanoseconds of
/// steady_clock since the session epoch set by start().
struct Record {
  uint64_t StartNs = 0;
  uint64_t EndNs = 0; ///< 0 for Instant/Counter records.
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
  Name Id = Name::ExpandItem;
  Category Cat = Category::Explore;
  RecordKind Kind = RecordKind::Span;
};

namespace detail {
/// The global category mask; 0 = tracing disabled. Read on every
/// potential emission (relaxed — emitters may observe an enable/disable
/// a little late, which only adds/loses a borderline record).
extern std::atomic<uint32_t> EnabledMask;
} // namespace detail

/// True if events of \p C are currently recorded. The only check on the
/// disabled hot path.
inline bool enabled(Category C) {
  return detail::EnabledMask.load(std::memory_order_relaxed) &
         (1u << static_cast<unsigned>(C));
}

/// True if any category is enabled.
inline bool active() {
  return detail::EnabledMask.load(std::memory_order_relaxed) != 0;
}

/// Default per-thread ring capacity (records). 1<<16 records × 48 bytes =
/// 3 MiB per emitting thread.
constexpr size_t DefaultCapacity = size_t(1) << 16;

/// Starts a tracing session: resets every registered buffer (resizing to
/// \p CapacityPerThread), sets the session epoch, then enables \p Mask.
/// Must not race with emitters (see the session contract above).
void start(uint32_t Mask = AllCategories,
           size_t CapacityPerThread = DefaultCapacity);

/// Disables all recording; buffered records stay available to snapshot().
void stop();

/// Nanoseconds of steady_clock since the session epoch.
uint64_t nowNs();

/// Emits a completed span [\p StartNs, now]; no-op when \p C is disabled
/// at emission time.
void emitSpan(Category C, Name N, uint64_t StartNs, uint64_t EndNs,
              uint64_t Arg0 = 0, uint64_t Arg1 = 0);

/// Emits an instant event at the current time.
void emitInstant(Category C, Name N, uint64_t Arg0 = 0, uint64_t Arg1 = 0);

/// Emits a counter sample (\p Value) at the current time.
void emitCounterSample(Category C, Name N, uint64_t Value);

/// Names the calling thread in trace dumps ("worker-3"); safe to call
/// whether or not tracing is enabled.
void setThreadName(const std::string &ThreadName);

/// All records of one thread's buffer at snapshot time.
struct ThreadRecords {
  uint32_t Tid = 0;          ///< Sequential registration id (1-based).
  std::string ThreadName;    ///< From setThreadName(); may be empty.
  std::vector<Record> Records;
  uint64_t Dropped = 0;      ///< Records lost to a full ring.
};

/// A snapshot of every registered buffer.
struct Snapshot {
  std::vector<ThreadRecords> Threads;
  size_t CapacityPerThread = 0;
  /// Sum of all per-thread record counts.
  size_t totalRecords() const;
  /// Sum of all per-thread drop counts.
  uint64_t totalDropped() const;
};

/// Reads every registered buffer. With \p Consume the read index advances
/// (slots become reusable — the bounded-memory drain mode); without it the
/// records stay buffered, and the snapshot may run concurrently with
/// active emitters (SPSC: it only reads slots published before its
/// acquire of the write index).
Snapshot snapshot(bool Consume = false);

/// RAII span: reads the clock at construction if the category is enabled
/// and emits the completed span at destruction. Arguments can be filled
/// in late (e.g. a count only known at the end of the spanned region).
class SpanGuard {
public:
  SpanGuard(Category C, Name N, uint64_t Arg0 = 0, uint64_t Arg1 = 0) {
    if (enabled(C)) {
      Cat = C;
      Id = N;
      A0 = Arg0;
      A1 = Arg1;
      StartNs = nowNs();
      Armed = true;
    }
  }
  ~SpanGuard() { end(); }
  SpanGuard(const SpanGuard &) = delete;
  SpanGuard &operator=(const SpanGuard &) = delete;

  /// Overwrites the span's arguments (recorded at destruction).
  void setArgs(uint64_t Arg0, uint64_t Arg1 = 0) {
    A0 = Arg0;
    A1 = Arg1;
  }
  /// Emits the span now instead of at scope exit (for a named guard whose
  /// region ends mid-scope); further calls and the destructor are no-ops.
  void end() {
    if (Armed) {
      Armed = false;
      emitSpan(Cat, Id, StartNs, nowNs(), A0, A1);
    }
  }
  /// True if this guard will emit (the category was enabled at entry).
  bool armed() const { return Armed; }

private:
  uint64_t StartNs = 0, A0 = 0, A1 = 0;
  Category Cat = Category::Explore;
  Name Id = Name::ExpandItem;
  bool Armed = false;
};

/// Drop-in stand-in for SpanGuard when TXDPOR_DISABLE_TRACING compiles
/// the macros away.
struct NullSpan {
  void setArgs(uint64_t, uint64_t = 0) {}
  void end() {}
  bool armed() const { return false; }
};

} // namespace trace
} // namespace txdpor

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//

#define TXDPOR_TRACE_CONCAT_IMPL(A, B) A##B
#define TXDPOR_TRACE_CONCAT(A, B) TXDPOR_TRACE_CONCAT_IMPL(A, B)

#ifndef TXDPOR_DISABLE_TRACING
/// Declares an RAII span for the rest of the enclosing scope:
///   TXDPOR_TRACE_SPAN(Explore, ExpandItem, Depth);
#define TXDPOR_TRACE_SPAN(CAT, NAME, ...)                                     \
  ::txdpor::trace::SpanGuard TXDPOR_TRACE_CONCAT(TxdporTraceSpan, __LINE__)(  \
      ::txdpor::trace::Category::CAT, ::txdpor::trace::Name::NAME,            \
      ##__VA_ARGS__)
/// Like TXDPOR_TRACE_SPAN but names the guard so args can be set late.
#define TXDPOR_TRACE_SPAN_NAMED(VAR, CAT, NAME, ...)                          \
  ::txdpor::trace::SpanGuard VAR(::txdpor::trace::Category::CAT,              \
                                 ::txdpor::trace::Name::NAME, ##__VA_ARGS__)
/// Emits an instant event.
#define TXDPOR_TRACE_INSTANT(CAT, NAME, ...)                                  \
  ::txdpor::trace::emitInstant(::txdpor::trace::Category::CAT,                \
                               ::txdpor::trace::Name::NAME, ##__VA_ARGS__)
/// Emits a counter sample.
#define TXDPOR_TRACE_COUNTER(CAT, NAME, VALUE)                                \
  ::txdpor::trace::emitCounterSample(::txdpor::trace::Category::CAT,          \
                                     ::txdpor::trace::Name::NAME, (VALUE))
#else
#define TXDPOR_TRACE_SPAN(CAT, NAME, ...) ((void)0)
#define TXDPOR_TRACE_SPAN_NAMED(VAR, CAT, NAME, ...)                          \
  ::txdpor::trace::NullSpan VAR
#define TXDPOR_TRACE_INSTANT(CAT, NAME, ...) ((void)0)
#define TXDPOR_TRACE_COUNTER(CAT, NAME, VALUE) ((void)0)
#endif

#endif // TXDPOR_TRACE_TRACE_H
