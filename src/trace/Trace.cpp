//===- trace/Trace.cpp - Always-on tracing: spans, rings, registry --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <cassert>
#include <chrono>
#include <memory>
#include <mutex>

using namespace txdpor;
using namespace txdpor::trace;

std::atomic<uint32_t> txdpor::trace::detail::EnabledMask{0};

namespace {

/// The per-thread SPSC ring. The owning thread produces (emit); the
/// snapshotting thread consumes (read). Write/Read are monotonically
/// increasing record counts — never reduced modulo capacity — so fullness
/// is simply Write - Read == capacity, with no wrap ambiguity.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t Tid, size_t Capacity)
      : Tid(Tid), Slots(Capacity) {}

  const uint32_t Tid;
  std::vector<Record> Slots;
  std::atomic<uint64_t> Write{0};   ///< Producer-owned, consumer-read.
  std::atomic<uint64_t> Read{0};    ///< Consumer-owned, producer-read.
  std::atomic<uint64_t> Dropped{0}; ///< Producer-written, consumer-read.
  std::string ThreadName;           ///< Guarded by the registry mutex.

  /// Producer side: store into the next slot or count a drop. Lock-free,
  /// allocation-free.
  void push(const Record &R) {
    uint64_t W = Write.load(std::memory_order_relaxed);
    uint64_t Rd = Read.load(std::memory_order_acquire);
    if (W - Rd >= Slots.size()) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slots[W % Slots.size()] = R;
    Write.store(W + 1, std::memory_order_release);
  }

  /// Consumer side: copy out [Read, Write). Only reads slots published by
  /// the producer's release store; with \p Consume it advances Read so the
  /// producer may reuse them.
  void read(std::vector<Record> &Out, bool Consume) {
    uint64_t W = Write.load(std::memory_order_acquire);
    uint64_t Rd = Read.load(std::memory_order_relaxed);
    Out.clear();
    Out.reserve(W - Rd);
    for (uint64_t I = Rd; I != W; ++I)
      Out.push_back(Slots[I % Slots.size()]);
    if (Consume)
      Read.store(W, std::memory_order_release);
  }
};

/// Process-wide buffer registry. Buffers are owned here (shared_ptr), so
/// records survive the owning thread's exit — the parallel explorer joins
/// its workers long before the CLI writes the dump.
struct Registry {
  std::mutex Mu;
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  size_t Capacity = DefaultCapacity;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();

  static Registry &get() {
    static Registry *R = new Registry; // Never destroyed: emitters may
    return *R;                         // outlive static destruction order.
  }
};

/// The calling thread's buffer, created and registered on first use.
ThreadBuffer &localBuffer() {
  thread_local ThreadBuffer *TL = nullptr;
  if (!TL) {
    Registry &R = Registry::get();
    std::lock_guard<std::mutex> Lock(R.Mu);
    auto Buf = std::make_shared<ThreadBuffer>(
        static_cast<uint32_t>(R.Buffers.size() + 1), R.Capacity);
    R.Buffers.push_back(Buf);
    TL = Buf.get();
  }
  return *TL;
}

} // namespace

const char *txdpor::trace::categoryName(Category C) {
  switch (C) {
  case Category::Explore:
    return "explore";
  case Category::Swap:
    return "swap";
  case Category::Check:
    return "check";
  case Category::Replay:
    return "replay";
  case Category::Parallel:
    return "parallel";
  case Category::Fuzz:
    return "fuzz";
  }
  return "?";
}

std::optional<uint32_t> txdpor::trace::parseCategories(const std::string &Spec,
                                                       std::string *BadToken) {
  uint32_t Mask = 0;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Tok = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    if (Tok == "all") {
      Mask |= AllCategories;
      continue;
    }
    bool Found = false;
    for (unsigned C = 0; C != NumCategories; ++C)
      if (Tok == categoryName(static_cast<Category>(C))) {
        Mask |= 1u << C;
        Found = true;
        break;
      }
    if (!Found) {
      if (BadToken)
        *BadToken = Tok;
      return std::nullopt;
    }
  }
  return Mask;
}

const char *txdpor::trace::name(Name N) {
  switch (N) {
  case Name::ExpandItem:
    return "expand";
  case Name::ValidWrites:
    return "valid_writes";
  case Name::CommitFanout:
    return "commit_fanout";
  case Name::SwapChild:
    return "swap_child";
  case Name::ReadsLatest:
    return "reads_latest";
  case Name::BulkRebuild:
    return "bulk_rebuild";
  case Name::PrefixReplay:
    return "prefix_replay";
  case Name::ReplayCursors:
    return "replay_cursors";
  case Name::SplitPhase:
    return "split_phase";
  case Name::Worker:
    return "worker";
  case Name::Idle:
    return "idle";
  case Name::Steal:
    return "steal";
  case Name::Pending:
    return "pending";
  case Name::FuzzCase:
    return "fuzz_case";
  }
  return "?";
}

void txdpor::trace::start(uint32_t Mask, size_t CapacityPerThread) {
  assert(CapacityPerThread > 0 && "trace ring needs at least one slot");
  Registry &R = Registry::get();
  // Disable first so in-flight emitters (there should be none — see the
  // session contract) stop before buffers are reset.
  detail::EnabledMask.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    R.Capacity = CapacityPerThread;
    for (auto &Buf : R.Buffers) {
      if (Buf->Slots.size() != CapacityPerThread)
        Buf->Slots.assign(CapacityPerThread, Record());
      Buf->Write.store(0, std::memory_order_relaxed);
      Buf->Read.store(0, std::memory_order_relaxed);
      Buf->Dropped.store(0, std::memory_order_relaxed);
    }
    R.Epoch = std::chrono::steady_clock::now();
  }
  detail::EnabledMask.store(Mask & AllCategories, std::memory_order_relaxed);
}

void txdpor::trace::stop() {
  detail::EnabledMask.store(0, std::memory_order_relaxed);
}

uint64_t txdpor::trace::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Registry::get().Epoch)
          .count());
}

void txdpor::trace::emitSpan(Category C, Name N, uint64_t StartNs,
                             uint64_t EndNs, uint64_t Arg0, uint64_t Arg1) {
  if (!enabled(C))
    return;
  Record R;
  R.StartNs = StartNs;
  R.EndNs = EndNs;
  R.Arg0 = Arg0;
  R.Arg1 = Arg1;
  R.Id = N;
  R.Cat = C;
  R.Kind = RecordKind::Span;
  localBuffer().push(R);
}

void txdpor::trace::emitInstant(Category C, Name N, uint64_t Arg0,
                                uint64_t Arg1) {
  if (!enabled(C))
    return;
  Record R;
  R.StartNs = nowNs();
  R.Arg0 = Arg0;
  R.Arg1 = Arg1;
  R.Id = N;
  R.Cat = C;
  R.Kind = RecordKind::Instant;
  localBuffer().push(R);
}

void txdpor::trace::emitCounterSample(Category C, Name N, uint64_t Value) {
  if (!enabled(C))
    return;
  Record R;
  R.StartNs = nowNs();
  R.Arg0 = Value;
  R.Id = N;
  R.Cat = C;
  R.Kind = RecordKind::Counter;
  localBuffer().push(R);
}

void txdpor::trace::setThreadName(const std::string &ThreadName) {
  ThreadBuffer &Buf = localBuffer();
  Registry &R = Registry::get();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Buf.ThreadName = ThreadName;
}

size_t Snapshot::totalRecords() const {
  size_t N = 0;
  for (const ThreadRecords &T : Threads)
    N += T.Records.size();
  return N;
}

uint64_t Snapshot::totalDropped() const {
  uint64_t N = 0;
  for (const ThreadRecords &T : Threads)
    N += T.Dropped;
  return N;
}

Snapshot txdpor::trace::snapshot(bool Consume) {
  Registry &R = Registry::get();
  Snapshot Snap;
  std::lock_guard<std::mutex> Lock(R.Mu);
  Snap.CapacityPerThread = R.Capacity;
  Snap.Threads.reserve(R.Buffers.size());
  for (auto &Buf : R.Buffers) {
    ThreadRecords T;
    T.Tid = Buf->Tid;
    T.ThreadName = Buf->ThreadName;
    T.Dropped = Buf->Dropped.load(std::memory_order_relaxed);
    Buf->read(T.Records, Consume);
    Snap.Threads.push_back(std::move(T));
  }
  return Snap;
}
