//===- trace/ChromeTrace.cpp - Chrome trace-event JSON export -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "trace/ChromeTrace.h"

#include "support/Json.h"

using namespace txdpor;
using namespace txdpor::trace;

namespace {

/// Nanoseconds → the format's microsecond unit, fraction preserved.
double toMicros(uint64_t Ns) { return static_cast<double>(Ns) / 1000.0; }

void writeCommonFields(JsonWriter &J, const Record &R, uint32_t Tid) {
  J.key("name").value(name(R.Id));
  J.key("cat").value(categoryName(R.Cat));
  J.key("pid").value(1u);
  J.key("tid").value(Tid);
  J.key("ts").valueFixed(toMicros(R.StartNs), 3);
}

} // namespace

void txdpor::trace::writeChromeTrace(std::ostream &OS, const Snapshot &Snap,
                                     const ChromeTraceOptions &Options) {
  JsonWriter J(OS);
  J.beginObject();
  J.key("traceEvents").beginArray();
  for (const ThreadRecords &T : Snap.Threads) {
    if (!T.ThreadName.empty()) {
      J.beginObject();
      J.key("name").value("thread_name");
      J.key("ph").value("M");
      J.key("pid").value(1u);
      J.key("tid").value(T.Tid);
      J.key("args").beginObject().key("name").value(T.ThreadName).endObject();
      J.endObject();
    }
    for (const Record &R : T.Records) {
      J.beginObject();
      switch (R.Kind) {
      case RecordKind::Span:
        writeCommonFields(J, R, T.Tid);
        J.key("ph").value("X");
        // Clamp to the span's own start: steady_clock is monotone, but a
        // zero-length span must not serialize a negative duration.
        J.key("dur").valueFixed(
            toMicros(R.EndNs > R.StartNs ? R.EndNs - R.StartNs : 0), 3);
        J.key("args")
            .beginObject()
            .key("a0")
            .value(R.Arg0)
            .key("a1")
            .value(R.Arg1)
            .endObject();
        break;
      case RecordKind::Instant:
        writeCommonFields(J, R, T.Tid);
        J.key("ph").value("i");
        J.key("s").value("t"); // Thread-scoped instant.
        J.key("args")
            .beginObject()
            .key("a0")
            .value(R.Arg0)
            .key("a1")
            .value(R.Arg1)
            .endObject();
        break;
      case RecordKind::Counter:
        writeCommonFields(J, R, T.Tid);
        J.key("ph").value("C");
        J.key("args").beginObject().key("value").value(R.Arg0).endObject();
        break;
      }
      J.endObject();
    }
  }
  J.endArray();
  J.key("displayTimeUnit").value("ms");
  J.key("otherData").beginObject();
  J.key("tool").value("txdpor");
  J.key("dropped_records").value(Snap.totalDropped());
  J.key("ring_capacity_per_thread")
      .value(static_cast<uint64_t>(Snap.CapacityPerThread));
  if (!Options.Counters.empty()) {
    J.key("counters").beginObject();
    for (const auto &[Name, Value] : Options.Counters)
      J.key(Name).value(Value);
    J.endObject();
  }
  for (const auto &[Key, Value] : Options.Metadata)
    J.key(Key).value(Value);
  J.endObject();
  J.endObject();
  OS << '\n';
}
