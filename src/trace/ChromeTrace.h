//===- trace/ChromeTrace.h - Chrome trace-event JSON export ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a trace::Snapshot as Chrome trace-event JSON (the JSON
/// Object Format: {"traceEvents": [...], ...}), directly loadable in
/// chrome://tracing and Perfetto. Spans become complete events ("ph":"X"),
/// instants "i", counter samples "C"; every named thread additionally gets
/// a thread_name metadata event so worker lanes are labeled in the UI.
///
/// Timestamps are microseconds (the format's unit) with nanosecond
/// fraction preserved; args are emitted as {"a0": ..., "a1": ...}.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_TRACE_CHROMETRACE_H
#define TXDPOR_TRACE_CHROMETRACE_H

#include "trace/Trace.h"

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace txdpor {
namespace trace {

/// Extra payload for the dump's "otherData" object.
struct ChromeTraceOptions {
  /// Named process-wide counters (trace/Counters.h counterSnapshot());
  /// emitted under otherData.counters.
  std::vector<std::pair<const char *, uint64_t>> Counters;
  /// Free-form (key, value) metadata, e.g. the CLI's invocation summary.
  std::vector<std::pair<std::string, std::string>> Metadata;
};

/// Writes \p Snap to \p OS as Chrome trace-event JSON. Always produces a
/// valid document — an empty snapshot yields an empty traceEvents array.
void writeChromeTrace(std::ostream &OS, const Snapshot &Snap,
                      const ChromeTraceOptions &Options = {});

} // namespace trace
} // namespace txdpor

#endif // TXDPOR_TRACE_CHROMETRACE_H
