//===- core/RandomWalk.h - Randomized testing baseline (MonkeyDB-style) ---===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper contrasts systematic SMC with MonkeyDB (Biswas et al. 2021),
/// a mock storage system that *samples* weak behaviors during testing and
/// therefore "has the inherent incompleteness of testing" (§8). This
/// module implements that baseline: repeated random executions of the
/// operational semantics — random transaction scheduling, random
/// consistent wr choices — with duplicate detection. The coverage bench
/// measures how the sampled fraction of hist_I(P) grows with the number
/// of walks, versus the explorer's exhaustive-and-optimal enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_RANDOMWALK_H
#define TXDPOR_CORE_RANDOMWALK_H

#include "consistency/ConsistencyChecker.h"
#include "core/ExplorerConfig.h"
#include "program/Program.h"

namespace txdpor {

/// Options for random-walk sampling.
struct RandomWalkConfig {
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  uint64_t Seed = 1;
  uint64_t NumWalks = 100;
  Deadline TimeBudget;
};

/// Result of a sampling campaign.
struct RandomWalkStats {
  uint64_t Walks = 0;            ///< Completed executions.
  uint64_t DistinctHistories = 0;
  uint64_t EventsExecuted = 0;
  bool TimedOut = false;
  double ElapsedMillis = 0;
};

/// Runs \p Config.NumWalks random executions of \p Prog under the
/// operational semantics of §2.3 (one pending transaction at a time, like
/// the evaluation's DFS baseline). \p Visit receives each *new* distinct
/// final history, in discovery order.
RandomWalkStats randomWalkProgram(const Program &Prog,
                                  const RandomWalkConfig &Config,
                                  const HistoryVisitor &Visit = {});

} // namespace txdpor

#endif // TXDPOR_CORE_RANDOMWALK_H
