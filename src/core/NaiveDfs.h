//===- core/NaiveDfs.h - Baseline model checking without POR (§7.3) -------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DFS(I) baseline of the evaluation: a standard depth-first traversal
/// of the operational semantics of §2.3 with no partial order reduction.
/// Like the paper ("for fairness, we restrict interleavings so at most one
/// transaction is pending at a time"), the default mode serializes
/// transactions but branches over *which* session starts the next
/// transaction — so the same history is typically reached many times.
///
/// Two extra modes serve the test suite:
///   * Deduplicate — collect each distinct history once: a reference
///     enumeration of hist_I(P) used by the completeness tests (sound for
///     every prefix-closed I, which covers all levels here, Thm. 3.2);
///   * Unrestricted — the fully interleaving semantics (multiple pending
///     transactions), used on tiny programs to validate that the
///     one-pending restriction does not lose histories.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_NAIVEDFS_H
#define TXDPOR_CORE_NAIVEDFS_H

#include "consistency/ConsistencyChecker.h"
#include "core/ExplorerConfig.h"
#include "program/Program.h"
#include "semantics/Executor.h"

#include <unordered_set>

namespace txdpor {

/// Options for the baseline DFS.
struct NaiveDfsConfig {
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  Deadline TimeBudget;
  /// Visit each distinct history once instead of once per execution.
  bool Deduplicate = false;
  /// Allow arbitrarily many concurrently pending transactions (one per
  /// session, per the /spawn rule). Exponential; tiny programs only.
  bool Unrestricted = false;
  uint64_t MaxEndStates = 0; ///< 0 = unlimited.
};

/// Baseline explorer. Construct and call run() once.
class NaiveDfs {
public:
  NaiveDfs(const Program &Prog, NaiveDfsConfig Config);

  /// Runs the DFS; \p Visit receives final histories — every execution's
  /// history, or each distinct one when deduplicating.
  ExplorerStats run(const HistoryVisitor &Visit = {});

private:
  void dfs(History H, CursorMap Cursors, unsigned Depth);
  void stepTransaction(History &H, CursorMap &Cursors, TxnUid Uid,
                       unsigned Depth);
  bool shouldStop();

  const Program &Prog;
  NaiveDfsConfig Config;
  const ConsistencyChecker &Checker;
  HistoryVisitor Visit;
  ExplorerStats Stats;
  std::unordered_set<std::string> Seen;
  bool Stop = false;
};

/// Convenience wrapper.
ExplorerStats naiveDfsProgram(const Program &Prog, NaiveDfsConfig Config,
                              const HistoryVisitor &Visit = {});

} // namespace txdpor

#endif // TXDPOR_CORE_NAIVEDFS_H
