//===- core/Invariants.h - Explorer invariants (Appendix E) ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The completeness and optimality proofs of the paper (Appendix E) rest
/// on an invariant satisfied by every ordered history the algorithm
/// reaches: *or-respectfulness* (Def. E.5). Informally, whenever the
/// exploration order < disagrees with the oracle order (a transaction
/// runs "too early"), a swapped read must justify the inversion:
///
///   a history is or-respectful iff it has at most one pending
///   transaction, and for every event e of the program and event e' in h
///   with e before e' in the oracle order, either e is in h before e', or
///   some swapped read e'' of a transaction oracle-before tr(e) precedes
///   e in h with tr(e') a causal predecessor of tr(e'').
///
/// This module implements the check so the test suite can assert Lemma
/// E.6 dynamically: every ordered history visited by the explorer is
/// or-respectful. Because transactions occupy contiguous blocks of <,
/// the event-level definition reduces to block-level checks.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_INVARIANTS_H
#define TXDPOR_CORE_INVARIANTS_H

#include "history/History.h"
#include "program/Program.h"

namespace txdpor {

/// Returns true if the ordered history \p H (block order = log order) is
/// or-respectful with respect to program \p Prog (Def. E.5). The program
/// supplies the universe of events outside \p H (unstarted or deleted
/// transactions).
bool isOrRespectful(const Program &Prog, const History &H);

/// Returns true if every read of \p H follows its wr writer in the block
/// order (the paper's footnote 7 invariant).
bool readsFollowWriters(const History &H);

} // namespace txdpor

#endif // TXDPOR_CORE_INVARIANTS_H
