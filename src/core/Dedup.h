//===- core/Dedup.h - Subtree dedup & session-symmetry reduction ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unfolding-style subtree deduplication: a canonical fingerprint of a
/// WorkItem (history structure + cursor snapshot + base levels), memoized
/// in a sharded table so isomorphic subtrees are expanded once. Modeled on
/// POR-SE's event-structure unfolding (canonical configuration
/// fingerprints in a shared table); adapted here to the transactional
/// exploration tree, where the symmetry worth exploiting is *session
/// renaming* in programs with structurally identical sessions.
///
/// Two fingerprinting modes (DedupMode, core/ExplorerConfig.h):
///
///   * Exact: the fingerprint is an order-sensitive 128-bit hash of the
///     item as-is. expandItem is a deterministic function of (item,
///     engine), so two items with equal structure root identical subtrees
///     and skipping the second preserves the output *set* exactly. This
///     de-dupes e.g. the duplicate items the §5.3 ablations generate.
///
///   * Symmetry: session ids are first renamed to a canonical permutation.
///     Sessions are partitioned once per table into *structural classes*
///     (same transaction bodies, same count, same base level); within each
///     class a canonical order is chosen per item by a two-round color
///     refinement over per-session event-sequence digests. Renaming is
///     sound because a structural-class permutation π maps the program to
///     itself: π applied to a reachable item yields a reachable item whose
///     subtree is the π-image of the original's, and per-session level
///     verdicts are invariant under within-class renaming. A wrong (but
///     deterministic) canonical choice can only cost effectiveness, never
///     soundness of the fingerprint itself — the fingerprint hashes the
///     *renamed* item exactly.
///
/// The table is internally synchronized (sharded mutexes) and its probe
/// entry points are const, so the one engine instance shared by the
/// recursive, iterative and parallel drivers covers all of them.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_DEDUP_H
#define TXDPOR_CORE_DEDUP_H

#include "consistency/IsolationLevel.h"
#include "core/ExplorerConfig.h"
#include "history/History.h"
#include "program/Program.h"
#include "semantics/Executor.h"

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace txdpor {

/// A 128-bit fingerprint: two independently-seeded 64-bit avalanche chains
/// over the same element stream, so accidental collisions need both chains
/// to collide at once.
struct Fingerprint {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Fingerprint &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint &F) const {
    return static_cast<size_t>(F.Lo ^ (F.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Order-insensitive exact fingerprint of a history alone (logs sorted by
/// uid, no session renaming). Hashes exactly the information canonicalKey
/// serializes, so canonicalKey equality ⇔ fingerprint equality up to hash
/// collisions (asserted over fuzz corpora in tests/dedup_test.cpp).
Fingerprint historyFingerprint(const History &H);

/// The memoized explored-fingerprint table of one exploration run.
/// Constructed by the ExplorationEngine when ExplorerConfig::Dedup is not
/// Off; shared by every driver that run uses.
class DedupTable {
public:
  /// \p Levels must be the engine's *resolved* per-session assignment —
  /// it both salts the fingerprint (so tables are never reused across
  /// semantics) and separates structural session classes in Symmetry mode.
  DedupTable(const Program &Prog, const LevelAssignment &Levels,
             DedupMode Mode);

  DedupMode mode() const { return Mode; }

  /// The canonical fingerprint of one WorkItem (history + cursor
  /// snapshot; Depth is exploration bookkeeping and CState is derived
  /// from the history, so neither participates).
  Fingerprint itemFingerprint(const History &H, const CursorMap &Cursors) const;

  /// Inserts \p F; returns true iff it was not already present (i.e. the
  /// subtree rooted at the fingerprinted item is new). Thread-safe.
  bool insertIfNew(const Fingerprint &F) const;

  /// Fingerprints memoized so far (sums the shards; approximate under
  /// concurrent insertion).
  uint64_t size() const;

private:
  uint32_t classOf(uint32_t Session) const {
    return Session == TxnUid::InitSession ? InitClass : ClassOf[Session];
  }

  static constexpr uint32_t InitClass = 0xffffffffu;
  static constexpr unsigned NumShards = 16;

  struct Shard {
    mutable std::mutex M;
    mutable std::unordered_set<Fingerprint, FingerprintHash> Set;
  };

  DedupMode Mode;
  unsigned NumSessions;
  /// Session → structural class id (Symmetry mode; identity classes are
  /// still computed in Exact mode but unused there).
  std::vector<uint32_t> ClassOf;
  /// Fold of the program text + resolved levels: items from different
  /// semantics can never alias.
  uint64_t Salt0 = 0;
  uint64_t Salt1 = 0;
  std::array<Shard, NumShards> Shards;
};

} // namespace txdpor

#endif // TXDPOR_CORE_DEDUP_H
