//===- core/Dedup.h - Subtree dedup & session-symmetry reduction ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unfolding-style subtree deduplication: a canonical fingerprint of a
/// WorkItem (history structure + cursor snapshot + base levels), memoized
/// in a sharded table so isomorphic subtrees are expanded once. Modeled on
/// POR-SE's event-structure unfolding (canonical configuration
/// fingerprints in a shared table); adapted here to the transactional
/// exploration tree, where the symmetry worth exploiting is *session
/// renaming* in programs with structurally identical sessions.
///
/// Two fingerprinting modes (DedupMode, core/ExplorerConfig.h):
///
///   * Exact: the fingerprint is an order-sensitive 128-bit hash of the
///     item as-is. expandItem is a deterministic function of (item,
///     engine), so two items with equal structure root identical subtrees
///     and skipping the second preserves the output *set* exactly. This
///     de-dupes e.g. the duplicate items the §5.3 ablations generate.
///
///   * Symmetry: session ids are first renamed to a canonical permutation.
///     Sessions are partitioned once per table into *structural classes*
///     (same transaction bodies, same count, same base level); within each
///     class a canonical order is chosen per item by a two-round color
///     refinement over per-session event-sequence digests. Renaming is
///     sound because a structural-class permutation π maps the program to
///     itself: π applied to a reachable item yields a reachable item whose
///     subtree is the π-image of the original's, and per-session level
///     verdicts are invariant under within-class renaming. A wrong (but
///     deterministic) canonical choice can only cost effectiveness, never
///     soundness of the fingerprint itself — the fingerprint hashes the
///     *renamed* item exactly.
///
/// The table is internally synchronized (sharded mutexes) and its probe
/// entry points are const, so the one engine instance shared by the
/// recursive, iterative and parallel drivers covers all of them.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_DEDUP_H
#define TXDPOR_CORE_DEDUP_H

#include "consistency/IsolationLevel.h"
#include "core/ExplorerConfig.h"
#include "history/History.h"
#include "program/Program.h"
#include "semantics/Executor.h"

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace txdpor {

/// A 128-bit fingerprint: two independently-seeded 64-bit avalanche chains
/// over the same element stream, so accidental collisions need both chains
/// to collide at once.
struct Fingerprint {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Fingerprint &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint &F) const {
    return static_cast<size_t>(F.Lo ^ (F.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Order-insensitive exact fingerprint of a history alone (logs sorted by
/// uid, no session renaming). Hashes exactly the information canonicalKey
/// serializes, so canonicalKey equality ⇔ fingerprint equality up to hash
/// collisions (asserted over fuzz corpora in tests/dedup_test.cpp).
Fingerprint historyFingerprint(const History &H);

/// Incrementally carried fingerprint state of one WorkItem, updated O(Δ)
/// as the engine extends the item and consumed by
/// DedupTable::itemFingerprint. The final fingerprint is a commutative
/// sum of *finalized per-block digests* (each binding its block index),
/// so appending an event dirties exactly one block instead of
/// invalidating an order-sensitive chain over the whole item.
///
/// The engine maintains per item: a new block on begin (noteNewBlock),
/// a dirty bit per mutated block (markDirty), and the (reader, writer)
/// session pair of every non-init external read (noteReadPair — the
/// color-refinement edges of Symmetry mode). Swap children start from a
/// default-constructed (invalid) value: the next probe falls back to the
/// full from-scratch walk, which is also the always-correct reference the
/// engine cross-asserts against in debug builds.
struct DedupFp {
  /// One renamed-session occurrence inside a block's digest: the block
  /// content chain folds everything π-invariant (event payloads, uid
  /// *indices*, init uids) and leaves a position-bound hole per session
  /// name; a mention records which session fills which hole. A π move
  /// then refolds O(mentions) instead of re-walking the transaction log.
  struct Mention {
    uint32_t Slot;    ///< Event position; OwnerSlot = the block's own uid.
    uint32_t Session; ///< Non-init session renamed into the hole.
  };
  static constexpr uint32_t OwnerSlot = 0xfffffu;
  static constexpr unsigned MaxMentions = 8;

  struct BlockEntry {
    uint64_t InvDig = 0; ///< π-invariant digest (feeds the D0 colors).
    uint64_t CntA = 0;   ///< Finalized π-invariant content chain, chain A.
    uint64_t CntB = 0;   ///< Finalized π-invariant content chain, chain B.
    uint64_t PiA = 0;    ///< CntA + mention sum under the current π.
    uint64_t PiB = 0;    ///< CntB + mention sum under the current π.
    /// Sessions whose renaming this block's PiA/PiB depend on (owner +
    /// non-init writer sessions); a probe recomputes the π digests only
    /// for blocks whose mask intersects the sessions π moved.
    uint64_t Mask = 0;
    uint32_t Session = 0; ///< Owning session (TxnUid::InitSession for init).
    bool Dirty = true;    ///< Content changed since the last probe.
    /// 0xff = more than MaxMentions renamed occurrences: the (rare)
    /// refold of such a block re-walks the log instead.
    uint8_t NumMentions = 0;
    Mention Mentions[MaxMentions];
  };

  /// Carried π-invariant digest of one cursor, keyed and sorted exactly
  /// like the CursorMap (uid-packed ascending); the probe composes it
  /// with the renamed uid, so neither content hashing nor renaming needs
  /// the TxnCursor itself.
  struct CursorEntry {
    uint64_t Packed = 0; ///< TxnUid::packed() of the cursor's transaction.
    uint64_t InvA = 0;   ///< Content digest (index, pc, locals), chain A.
    uint64_t InvB = 0;   ///< Content digest, chain B.
  };

  /// False until the first probe (and always for swap children): the next
  /// probe rebuilds every entry from the history.
  bool Valid = false;
  std::vector<BlockEntry> Blocks;
  /// Cursor digests mirroring the item's CursorMap (same sort order; the
  /// map only ever grows). Entries are refreshed when the engine noted
  /// the cursor dirty or when the map grew.
  std::vector<CursorEntry> CursorEnts;
  /// Packed uids whose cursor mutated since the last probe (the engine
  /// notes exactly one per extension child).
  std::vector<uint64_t> DirtyCursors;
  /// Session permutation chosen by the last probe (empty = identity);
  /// diffed against the new permutation to find moved sessions.
  std::vector<uint32_t> Pi;
  /// (reader session, writer session) of every non-init external read, in
  /// append order (consumed commutatively). Maintained only in Symmetry
  /// mode.
  std::vector<std::pair<uint32_t, uint32_t>> ReadPairs;

  /// Marks block \p Idx as changed (event appended, writer assigned).
  /// No-op while invalid — the next probe rebuilds everything anyway.
  void markDirty(unsigned Idx) {
    if (Valid && Idx < Blocks.size())
      Blocks[Idx].Dirty = true;
  }

  /// Registers the begin of a transaction of \p Session as a new (dirty)
  /// trailing block.
  void noteNewBlock(uint32_t Session) {
    if (!Valid)
      return;
    Blocks.emplace_back();
    Blocks.back().Session = Session;
  }

  /// Records the refinement edge of a non-init external read.
  void noteReadPair(uint32_t ReaderSession, uint32_t WriterSession) {
    if (Valid)
      ReadPairs.emplace_back(ReaderSession, WriterSession);
  }

  /// Marks the cursor of \p Packed as changed (stepped, finished, or
  /// freshly created). No-op while invalid.
  void noteCursorDirty(uint64_t Packed) {
    if (Valid)
      DirtyCursors.push_back(Packed);
  }
};

/// The memoized explored-fingerprint table of one exploration run.
/// Constructed by the ExplorationEngine when ExplorerConfig::Dedup is not
/// Off; shared by every driver that run uses.
class DedupTable {
public:
  /// \p Levels must be the engine's *resolved* per-session assignment —
  /// it both salts the fingerprint (so tables are never reused across
  /// semantics) and separates structural session classes in Symmetry mode.
  /// \p MaxEntries bounds the memo table: 0 (the default) keeps every
  /// fingerprint forever; a positive value caps the table at roughly that
  /// many entries with per-shard CLOCK eviction (an evicted subtree is
  /// merely re-explored — never wrongly skipped).
  DedupTable(const Program &Prog, const LevelAssignment &Levels,
             DedupMode Mode, uint64_t MaxEntries = 0);

  DedupMode mode() const { return Mode; }

  /// The canonical fingerprint of one WorkItem (history + cursor
  /// snapshot; Depth is exploration bookkeeping and CState is derived
  /// from the history, so neither participates). When \p Carried is
  /// non-null its maintained per-block and per-cursor digests make the
  /// probe O(dirty blocks + dirty cursors + sessions + moved-session
  /// mentions) instead of O(item); it is refreshed and left clean for the
  /// item's children. A null (or invalid) carried
  /// state takes the full from-scratch walk — both paths produce the
  /// identical fingerprint (cross-asserted by the engine in debug builds
  /// and by the DifferentialOracle's DiffDedup legs in release).
  Fingerprint itemFingerprint(const History &H, const CursorMap &Cursors,
                              DedupFp *Carried = nullptr) const;

  /// Inserts \p F; returns true iff it was not already present (i.e. the
  /// subtree rooted at the fingerprinted item is new). In bounded mode a
  /// full shard evicts its CLOCK victim to make room. Thread-safe.
  bool insertIfNew(const Fingerprint &F) const;

  /// Fingerprints memoized so far (sums the shards; approximate under
  /// concurrent insertion).
  uint64_t size() const;

  /// CLOCK victims evicted so far (0 in unbounded mode).
  uint64_t evictions() const;

private:
  uint32_t classOf(uint32_t Session) const {
    return Session == TxnUid::InitSession ? InitClass : ClassOf[Session];
  }

  /// Recomputes \p Fp.Blocks[I]'s π-invariant layer from \p H: the D0
  /// digest, the content chains, the mention list and the involvement
  /// mask.
  void refreshBlock(DedupFp &Fp, const History &H, unsigned I) const;

  /// Recomputes \p Fp.Blocks[I]'s PiA/PiB under \p Fp.Pi: an O(mentions)
  /// refold of the cached content chains, falling back to a full log walk
  /// for blocks whose mention list overflowed.
  void refoldPiDigest(DedupFp &Fp, const History &H, unsigned I) const;

  /// Brings \p Fp.CursorEnts back in sync with \p Cursors: inserts
  /// entries for cursors the map gained and refreshes the ones the engine
  /// noted dirty.
  void syncCursors(DedupFp &Fp, const CursorMap &Cursors) const;

  static constexpr uint32_t InitClass = 0xffffffffu;
  static constexpr unsigned NumShards = 16;

  /// One lock-striped sixteenth of the memo table. Unbounded mode uses
  /// Set alone; bounded mode uses the Map + Slots/Ref CLOCK ring (a probe
  /// hit re-arms the entry's reference bit; a full shard sweeps the hand,
  /// clearing bits, until it finds an unreferenced victim).
  struct Shard {
    mutable std::mutex M;
    mutable std::unordered_set<Fingerprint, FingerprintHash> Set;
    mutable std::unordered_map<Fingerprint, uint32_t, FingerprintHash> Map;
    mutable std::vector<Fingerprint> Slots;
    mutable std::vector<uint8_t> Ref;
    mutable uint32_t Hand = 0;
    mutable uint64_t Evictions = 0;
  };

  DedupMode Mode;
  unsigned NumSessions;
  uint64_t MaxPerShard = 0; ///< 0 = unbounded.
  /// Session → structural class id (Symmetry mode; identity classes are
  /// still computed in Exact mode but unused there).
  std::vector<uint32_t> ClassOf;
  /// Fold of the program text + resolved levels: items from different
  /// semantics can never alias.
  uint64_t Salt0 = 0;
  uint64_t Salt1 = 0;
  std::array<Shard, NumShards> Shards;
};

} // namespace txdpor

#endif // TXDPOR_CORE_DEDUP_H
