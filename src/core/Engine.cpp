//===- core/Engine.cpp - Reusable single-step exploration engine ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "consistency/SaturationChecker.h"
#include "trace/Counters.h"
#include "trace/Trace.h"

#include <optional>

using namespace txdpor;

namespace {

/// ExplorerConfig::BaseLevels resolution order: an explicit config
/// assignment wins, then a program-declared one, then the classic uniform
/// BaseLevel. Normalized against the program's session count so an
/// assignment whose sessions all agree takes the single-level path.
LevelAssignment resolveBaseLevels(const ExplorerConfig &Config,
                                  const Program &Prog) {
  if (Config.BaseLevels.hasExplicit())
    return Config.BaseLevels.resolved(Prog.numSessions());
  if (Prog.levels().hasExplicit())
    return Prog.levels().resolved(Prog.numSessions());
  return LevelAssignment::uniform(Config.BaseLevel);
}

} // namespace

ExplorationEngine::ExplorationEngine(const Program &Prog,
                                     ExplorerConfig Config)
    : Prog(Prog), Config(std::move(Config)),
      BaseLevels(resolveBaseLevels(this->Config, Prog)),
      OwnedBase(BaseLevels.isMixed()
                    ? std::make_unique<MixedSaturationChecker>(BaseLevels)
                    : nullptr),
      Base(OwnedBase ? *OwnedBase : checkerFor(BaseLevels.defaultLevel())) {
  assert(BaseLevels.allPrefixClosedCausallyExtensible() &&
         "every session's base level must be prefix-closed and causally "
         "extensible (§5; mixes of such levels keep both properties)");
  if (this->Config.FilterLevel) {
    assert(BaseLevels.allWeakerOrEqual(*this->Config.FilterLevel) &&
           "every base level must be weaker than the filter level "
           "(Cor. 6.2, per session)");
    Filter = &checkerFor(*this->Config.FilterLevel);
  }
  if (this->Config.OracleOrderOverride.empty()) {
    OracleSequence = Prog.oracleOrder();
  } else {
    OracleSequence = this->Config.OracleOrderOverride;
    assert(OracleSequence.size() == Prog.totalTxns() &&
           "oracle order must cover the whole program");
    Order = OracleOrder::fromSequence(OracleSequence);
  }
  if (this->Config.Dedup != DedupMode::Off)
    Dedup = std::make_unique<DedupTable>(Prog, BaseLevels, this->Config.Dedup,
                                         this->Config.DedupMaxEntries);
}

WorkItem ExplorationEngine::initialItem() const {
  History H = History::makeInitial(Prog.numVars());
  // Reserve capacity for the whole program up front: every extension of
  // the carried state then works in place, without reallocation.
  ConstraintState State(H, BaseLevels, Prog.totalTxns() + 1);
  return {std::move(H), CursorMap(), /*Depth=*/1, std::move(State),
          DedupFp()};
}

bool ExplorationEngine::shouldStop(ExplorationSink &S) const {
  if (S.Stop)
    return true;
  if (S.SharedStop && S.SharedStop->load(std::memory_order_relaxed)) {
    S.Stop = true;
    return true;
  }
  if (S.TimeBudget.expired()) {
    S.Stats.TimedOut = true;
    S.Stop = true;
    if (S.SharedStop)
      S.SharedStop->store(true, std::memory_order_relaxed);
  }
  return S.Stop;
}

ExplorationEngine::NextOp
ExplorationEngine::computeNext(const History &H,
                               const CursorMap &Cursors) const {
  NextOp Result;
  // Complete the unique pending transaction first (§5.1): this maintains
  // the at-most-one-pending invariant on which causal extensibility (and
  // hence never blocking) relies.
  if (std::optional<unsigned> Pending = H.pendingTxn()) {
    TxnUid Uid = H.txn(*Pending).uid();
    Result.Uid = Uid;
    Result.Advanced = Cursors.at(Uid.packed());
    Result.Op = advanceToDbOp(Prog.txn(Uid), Result.Advanced);
    return Result;
  }
  // Otherwise start the oracle-least not-yet-started transaction.
  for (TxnUid Uid : OracleSequence) {
    if (H.contains(Uid))
      continue;
    Result.Uid = Uid;
    Result.IsBegin = true;
    return Result;
  }
  Result.Done = true;
  return Result;
}

void ExplorationEngine::reachedEndState(const History &H,
                                        ExplorationSink &S) const {
  // Under a global budget the slot must be claimed before counting, so the
  // total across workers never exceeds the cap; over-budget end states are
  // dropped entirely (the run is being cut short anyway).
  if (Config.MaxEndStates && S.SharedEndStates) {
    uint64_t Claimed =
        S.SharedEndStates->fetch_add(1, std::memory_order_relaxed) + 1;
    if (Claimed > Config.MaxEndStates) {
      S.Stop = true;
      return;
    }
    if (Claimed == Config.MaxEndStates) {
      S.Stats.HitEndStateCap = true;
      S.Stop = true;
      if (S.SharedStop)
        S.SharedStop->store(true, std::memory_order_relaxed);
    }
  }
  ++S.Stats.EndStates;
  H.checkOrderConsistent();
  assert(!H.pendingTxn() && "end state with a pending transaction");
  bool Valid = true;
  if (Filter) {
    ++S.Stats.ConsistencyChecks;
    Valid = Filter->isConsistent(H);
  }
  if (Valid) {
    ++S.Stats.Outputs;
    if (S.Visit)
      S.Visit(H);
  }
  if (Config.MaxEndStates && !S.SharedEndStates &&
      S.Stats.EndStates >= Config.MaxEndStates) {
    S.Stats.HitEndStateCap = true;
    S.Stop = true;
  }
}

void ExplorationEngine::expandItem(WorkItem Item, std::vector<WorkItem> &Out,
                                   ExplorationSink &S) const {
  ++S.Stats.ExploreCalls;
  if (Item.Depth > S.Stats.MaxDepth)
    S.Stats.MaxDepth = Item.Depth;
  if (shouldStop(S))
    return;
  if (Dedup) {
    ++S.Stats.DedupChecks;
    // The carried fingerprint state makes the probe O(dirty blocks);
    // items that arrived with an invalid one (swap children, the root)
    // fall back to the full walk inside and leave it valid for their
    // children. Debug builds (and the DedupVerifyCarried oracle legs)
    // re-derive the fingerprint from scratch and compare.
    Fingerprint F = Dedup->itemFingerprint(Item.H, Item.Cursors, &Item.Fp);
    if (Config.DedupVerifyCarried &&
        F != Dedup->itemFingerprint(Item.H, Item.Cursors))
      ++S.Stats.DedupFpMismatches;
    assert(F == Dedup->itemFingerprint(Item.H, Item.Cursors) &&
           "carried fingerprint drifted from the from-scratch fingerprint");
    if (!Dedup->insertIfNew(F)) {
      // An item with this canonical fingerprint was already expanded;
      // its subtree's outputs are (a renaming of) ones already emitted.
      ++S.Stats.DedupSkips;
      return;
    }
  }
  TXDPOR_TRACE_SPAN(Explore, ExpandItem, Item.Depth);
  if (S.OnExplore)
    S.OnExplore(Item.H);

  History &H = Item.H;
  CursorMap &Cursors = Item.Cursors;
  ConstraintState &CState = Item.CState;
  NextOp Next = computeNext(H, Cursors);
  if (Next.Done) {
    reachedEndState(H, S);
    return;
  }

  if (Next.IsBegin) {
    // Begin events extend deterministically; a begin is never a commit, so
    // the swap phase would be a no-op (§5.2).
    H.beginTxn(Next.Uid);
    CState.applyBegin(Next.Uid);
    Item.Fp.noteNewBlock(Next.Uid.Session);
    Item.Fp.noteCursorDirty(Next.Uid.packed());
    Cursors[Next.Uid.packed()] = TxnCursor::fresh(Prog.txn(Next.Uid));
    ++S.Stats.EventsAdded;
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1,
                   std::move(CState), std::move(Item.Fp)});
    return;
  }

  unsigned Idx = *H.indexOf(Next.Uid);
  const Transaction &Code = Prog.txn(Next.Uid);

  switch (Next.Op.Kind) {
  case DbOp::Kind::Read: {
    // Branch over ValidWrites (§5.1): committed writers of the variable
    // whose wr choice keeps the history base-consistent. Under a mixed
    // assignment the new read's axiom instances use the *reading
    // session's* level, so weaker sessions admit more writers.
    H.appendEvent(Idx, Event::makeRead(Next.Op.Var));
    Item.Fp.markDirty(Idx);
    ++S.Stats.EventsAdded;
    uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;

    if (!H.txn(Idx).isExternalRead(Pos)) {
      // Read-local rule: value is fixed by the transaction itself; no wr
      // dependency and no branching.
      TxnCursor &Cur = Cursors[Next.Uid.packed()];
      Cur = Next.Advanced;
      applyRead(Code, Cur, H.readValue(Idx, Pos));
      Item.Fp.noteCursorDirty(Next.Uid.packed());
      Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1,
                     std::move(CState), std::move(Item.Fp)});
      return;
    }

    // The §5.1 commit test, incremental: each candidate is a reachability
    // probe against the carried closure instead of a constraint-graph
    // rebuild. The candidate enumeration itself comes from the state's
    // per-variable committed-writer index (same ascending block order as
    // History::committedWriters). Debug builds re-derive every verdict
    // with the scratch checker, so any drift aborts the exploration.
    TXDPOR_TRACE_SPAN_NAMED(ValidWritesSpan, Explore, ValidWrites,
                            Next.Op.Var);
    uint64_t Probes = 0;
    std::vector<unsigned> Candidates;
    CState.forEachCommittedWriter(Next.Op.Var, [&](unsigned W) {
      ++S.Stats.ConsistencyChecks;
      ++Probes;
      bool Admits = CState.readAdmits(W, Next.Op.Var);
#ifndef NDEBUG
      History Probe = H;
      Probe.setWriter(Idx, Pos, H.txn(W).uid());
      assert(Admits == Base.isConsistent(Probe) &&
             "incremental commit test drifted from the scratch checker");
#endif
      if (Admits)
        Candidates.push_back(W);
    });
    trace::bump(trace::Counter::ValidWritesProbes, Probes);
    ValidWritesSpan.setArgs(Next.Op.Var, Probes);
    if (Candidates.empty()) {
      // Cannot happen for causally-extensible base levels (§3.2); counted
      // to let tests assert strong optimality.
      ++S.Stats.BlockedReads;
      return;
    }
    // Explore latest writers first (order does not affect the result set).
    // The branch copy is a copy-on-write alias: every log is shared with H
    // until setWriter clones the one reader log it re-points. The carried
    // state is re-used by value: one flat copy plus the O(rows) read
    // application per branch.
    for (size_t CI = Candidates.size(); CI-- > 0;) {
      unsigned W = Candidates[CI];
      History Branch = H;
      Branch.setWriter(Idx, Pos, H.txn(W).uid());
      ConstraintState BranchState = CState;
      BranchState.applyExternalRead(W, Next.Op.Var);
      DedupFp BranchFp = Item.Fp; // Idx is already marked dirty above.
      if (Dedup && Dedup->mode() == DedupMode::Symmetry &&
          !H.txn(W).uid().isInit())
        BranchFp.noteReadPair(Next.Uid.Session, H.txn(W).uid().Session);
      BranchFp.noteCursorDirty(Next.Uid.packed());
      CursorMap BranchCursors = Cursors;
      TxnCursor &Cur = BranchCursors[Next.Uid.packed()];
      Cur = Next.Advanced;
      applyRead(Code, Cur, Branch.readValue(Idx, Pos));
      ++S.Stats.ReadBranches;
      Out.push_back({std::move(Branch), std::move(BranchCursors),
                     Item.Depth + 1, std::move(BranchState),
                     std::move(BranchFp)});
      // A read is never a commit: the swap phase would be a no-op.
    }
    return;
  }

  case DbOp::Kind::Write: {
    H.appendEvent(Idx, Event::makeWrite(Next.Op.Var, Next.Op.Val));
    Item.Fp.markDirty(Idx);
    ++S.Stats.EventsAdded;
    // Causal extensibility (Thm. 3.4) guarantees writes never violate the
    // base level when the pending transaction is (so ∪ wr)+-maximal — the
    // carried state needs no update either: a write adds no edge, and its
    // visibility starts at the commit (§2.2.1).
    assert(Base.isConsistent(H) && "write extension broke consistency");
    Item.Fp.noteCursorDirty(Next.Uid.packed());
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyWrite(Cursors[Next.Uid.packed()]);
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1,
                   std::move(CState), std::move(Item.Fp)});
    return;
  }

  case DbOp::Kind::Abort: {
    H.appendEvent(Idx, Event::makeAbort());
    CState.applyAbort();
    Item.Fp.markDirty(Idx);
    Item.Fp.noteCursorDirty(Next.Uid.packed());
    ++S.Stats.EventsAdded;
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyFinish(Cursors[Next.Uid.packed()]);
    // Aborted transactions are never swap targets (§5.2, footnote 5).
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1,
                   std::move(CState), std::move(Item.Fp)});
    return;
  }

  case DbOp::Kind::Commit: {
    H.appendEvent(Idx, Event::makeCommit());
    CState.applyCommit(H.txn(Idx));
    Item.Fp.markDirty(Idx);
    Item.Fp.noteCursorDirty(Next.Uid.packed());
    ++S.Stats.EventsAdded;
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyFinish(Cursors[Next.Uid.packed()]);

    // Swap children are computed first — they need H and its cursor map —
    // but emitted *after* the extension child, preserving the canonical
    // child order (extension first, then swaps in computeReorderings
    // order, §5.2, each gated by the Optimality condition, §5.3). Each
    // swap child shares every kept log with H (copy-on-write) and rebuilds
    // only the truncated reader's cursor: all other cursors are reused
    // from this item's snapshot via replayCursorsFrom. Its constraint
    // state rebuilds the same way the cursors do, from the applySwap
    // resume point: every block below FirstChanged is byte-identical to a
    // kept block of H, so the bulk replay re-derives their rows without
    // any commit-test work, and only the truncated reader at FirstChanged
    // re-runs its reads through the incremental appliers; the state then
    // doubles as the Optimality consistency check and is handed to the
    // child, which probes its next read against it directly.
    std::vector<WorkItem> SwapChildren;
    std::vector<Reordering> Reorderings = computeReorderings(H);
    TXDPOR_TRACE_SPAN(Swap, CommitFanout, Reorderings.size());
    // One prefix-state cache serves the whole fan-out: every swapped
    // history and readLatest truncation is byte-identical to H below its
    // reader block, so each rebuild is a flat copy of the cached prefix
    // state plus a replay of the few blocks at or after the reader —
    // instead of the bulk O(history) rebuild per candidate this loop used
    // to pay. The bulk constructor stays as the debug cross-check.
    std::optional<PrefixStateCache> PrefixCache;
    if (!Reorderings.empty())
      PrefixCache.emplace(H, BaseLevels, Prog.totalTxns() + 1);
    for (const Reordering &R : Reorderings) {
      TXDPOR_TRACE_SPAN(Swap, SwapChild, R.ReaderTxn, R.ReadPos);
      ++S.Stats.SwapsConsidered;
      unsigned FirstChanged = 0;
      History Swapped = applySwap(H, R, &FirstChanged);
      ++S.Stats.ConsistencyChecks;
      ConstraintState SwapState = PrefixCache->stateFor(R.ReaderTxn);
      SwapState.replayBlocks(Swapped, R.ReaderTxn, Swapped.numTxns());
#ifndef NDEBUG
      {
        ConstraintState BulkRef(Swapped, BaseLevels, Prog.totalTxns() + 1);
        assert(SwapState.equivalentTo(BulkRef) &&
               "incremental swap-child rebuild diverged from the bulk state");
      }
#endif
      assert(SwapState.consistent() == Base.isConsistent(Swapped) &&
             "incremental swap verdict drifted from the scratch checker");
      if (!SwapState.consistent())
        continue;
      if (!optimalityRestrictionsHold(H, R, BaseLevels, Config.CheckSwapped,
                                      Config.CheckReadLatest,
                                      &S.Stats.ConsistencyChecks, Order,
                                      &*PrefixCache))
        continue;
      ++S.Stats.SwapsApplied;
      trace::bump(trace::Counter::SwapChildrenBuilt);
      CursorMap SwapCursors =
          replayCursorsFrom(Prog, Swapped, Cursors, FirstChanged);
      // The carried dedup fingerprint is deliberately left at its default
      // (invalid): a swap truncates and drops blocks, so the child's
      // first probe rebuilds from its history.
      SwapChildren.push_back({std::move(Swapped), std::move(SwapCursors),
                              Item.Depth + 1, std::move(SwapState),
                              DedupFp()});
    }
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1,
                   std::move(CState), std::move(Item.Fp)});
    for (WorkItem &Child : SwapChildren)
      Out.push_back(std::move(Child));
    return;
  }
  }
}

void txdpor::drainDepthFirst(const ExplorationEngine &Engine, WorkItem Root,
                             ExplorationSink &S) {
  std::vector<WorkItem> Stack;
  Stack.push_back(std::move(Root));
  std::vector<WorkItem> Children;
  while (!Stack.empty()) {
    if (Engine.shouldStop(S))
      return;
    WorkItem Item = std::move(Stack.back());
    Stack.pop_back();
    Children.clear();
    Engine.expandItem(std::move(Item), Children, S);
    // Reverse push so children pop in the recursive visit order.
    for (size_t I = Children.size(); I-- > 0;)
      Stack.push_back(std::move(Children[I]));
  }
}
