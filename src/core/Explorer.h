//===- core/Explorer.h - The swapping-based SMC algorithms (§4–§6) --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explore-ce / explore-ce* algorithms (Algorithm 1 instantiated per
/// §5 and §6):
///
///   * Next (§5.1) schedules deterministically along a fixed oracle order,
///     always completing the (unique) pending transaction first;
///   * read events branch over ValidWrites — the committed writers whose
///     wr choice keeps the history BaseLevel-consistent;
///   * after each commit, exploreSwaps re-orders the just-committed
///     transaction before earlier reads (ComputeReorderings + Swap, §5.2),
///     gated by the Optimality condition (§5.3);
///   * complete histories pass through the Valid filter (§6): none for
///     explore-ce, a FilterLevel consistency check for explore-ce*.
///
/// For BaseLevel ∈ {true, RC, RA, CC} the exploration is sound, complete,
/// strongly optimal and polynomial space (Theorem 5.1); with a FilterLevel
/// ∈ {SI, SER} it is sound, complete and (plain) optimal (Corollary 6.2).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_EXPLORER_H
#define TXDPOR_CORE_EXPLORER_H

#include "consistency/ConsistencyChecker.h"
#include "core/ExplorerConfig.h"
#include "core/Swap.h"
#include "program/Program.h"
#include "semantics/Executor.h"

namespace txdpor {

/// One exploration run over a program. Construct, then call run() once.
class Explorer {
public:
  Explorer(const Program &Prog, ExplorerConfig Config);

  /// Explores the program; \p Visit receives every output history (after
  /// the Valid filter). Returns the collected statistics.
  ExplorerStats run(const HistoryVisitor &Visit = {});

private:
  /// What Next(P, h, locals) returned.
  struct NextOp {
    bool Done = false;  ///< Program finished (⊥).
    TxnUid Uid{};       ///< Transaction the event belongs to.
    bool IsBegin = false;
    DbOp Op{};          ///< Valid unless Done/IsBegin.
    TxnCursor Advanced; ///< Cursor after local steps (unless Done/IsBegin).
  };

  NextOp computeNext(const History &H, const CursorMap &Cursors) const;

  void explore(History H, CursorMap Cursors, unsigned Depth);
  void exploreSwaps(const History &H, unsigned Depth);
  void reachedEndState(const History &H);
  bool shouldStop();

  /// One worklist entry of the iterative implementation (§7.1): a history
  /// with its execution cursors, at a recursion depth.
  struct WorkItem {
    History H;
    CursorMap Cursors;
    unsigned Depth;
  };

  /// Iterative (explicit-stack) variant of explore(); pops depth-first so
  /// the visit order matches the recursive implementation exactly.
  void exploreIterative(History Initial);

  /// Expands one item: visits it and appends its children (extension
  /// branches, then swap branches) to \p Out in recursive visit order.
  void expandItem(WorkItem Item, std::vector<WorkItem> &Out);

  const Program &Prog;
  ExplorerConfig Config;
  const ConsistencyChecker &Base;
  const ConsistencyChecker *Filter = nullptr;
  std::vector<TxnUid> OracleSequence; ///< Start order used by Next.
  OracleOrder Order;                  ///< Comparator shared with swapped().
  HistoryVisitor Visit;
  ExplorerStats Stats;
  bool Stop = false;
};

/// Convenience entry point: runs an exploration and returns its stats.
ExplorerStats exploreProgram(const Program &Prog, ExplorerConfig Config,
                             const HistoryVisitor &Visit = {});

} // namespace txdpor

#endif // TXDPOR_CORE_EXPLORER_H
