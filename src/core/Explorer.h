//===- core/Explorer.h - The swapping-based SMC algorithms (§4–§6) --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential driver of the explore-ce / explore-ce* algorithms
/// (Algorithm 1 instantiated per §5 and §6):
///
///   * Next (§5.1) schedules deterministically along a fixed oracle order,
///     always completing the (unique) pending transaction first;
///   * read events branch over ValidWrites — the committed writers whose
///     wr choice keeps the history BaseLevel-consistent;
///   * after each commit, the engine emits swap children re-ordering the
///     just-committed transaction before earlier reads (ComputeReorderings
///     + Swap, §5.2), gated by the Optimality condition (§5.3);
///   * complete histories pass through the Valid filter (§6): none for
///     explore-ce, a FilterLevel consistency check for explore-ce*.
///
/// The per-node expansion lives in ExplorationEngine (core/Engine.h) and
/// is shared with the parallel driver (parallel/ParallelExplorer.h); this
/// class only chooses *how the tree is walked*: plain recursion, or the
/// explicit-stack worklist of §7.1 (Config.Iterative). Both walks visit
/// nodes in exactly the same order and produce identical outputs and
/// statistics (asserted by the test suite). Like the paper's worklist
/// tool, a node's children are materialized together before descending,
/// so peak live memory is O(depth × branching) histories — still
/// polynomial (Thm. 5.1's bound is per-history anyway).
///
/// For BaseLevel ∈ {true, RC, RA, CC} the exploration is sound, complete,
/// strongly optimal and polynomial space (Theorem 5.1); with a FilterLevel
/// ∈ {SI, SER} it is sound, complete and (plain) optimal (Corollary 6.2).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_EXPLORER_H
#define TXDPOR_CORE_EXPLORER_H

#include "core/Engine.h"
#include "core/ExplorerConfig.h"
#include "program/Program.h"

namespace txdpor {

/// One sequential exploration run over a program. Construct, then call
/// run() once.
class Explorer {
public:
  Explorer(const Program &Prog, ExplorerConfig Config);

  /// Explores the program; \p Visit receives every output history (after
  /// the Valid filter). Returns the collected statistics.
  ExplorerStats run(const HistoryVisitor &Visit = {});

private:
  /// Recursive walk: expand the node, then recurse into each child in
  /// order (depth-first on the C++ call stack).
  void exploreRecursive(WorkItem Item, ExplorationSink &S);

  /// Iterative (explicit-stack) variant (§7.1); pops depth-first so the
  /// visit order matches the recursive walk exactly.
  void exploreIterative(WorkItem Root, ExplorationSink &S);

  ExplorationEngine Engine;
};

/// Convenience entry point: runs a sequential exploration and returns its
/// stats.
ExplorerStats exploreProgram(const Program &Prog, ExplorerConfig Config,
                             const HistoryVisitor &Visit = {});

} // namespace txdpor

#endif // TXDPOR_CORE_EXPLORER_H
