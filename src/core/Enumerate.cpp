//===- core/Enumerate.cpp - Enumeration and assertion-checking helpers ----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

using namespace txdpor;

EnumerationResult txdpor::enumerateHistories(const Program &Prog,
                                             ExplorerConfig Config) {
  EnumerationResult Result;
  Result.Stats = exploreProgram(Prog, Config, [&](const History &H) {
    Result.Histories.push_back(H);
  });
  return Result;
}

EnumerationResult txdpor::enumerateReference(const Program &Prog,
                                             IsolationLevel Level,
                                             bool Unrestricted) {
  NaiveDfsConfig Config;
  Config.Level = Level;
  Config.Deduplicate = true;
  Config.Unrestricted = Unrestricted;
  EnumerationResult Result;
  NaiveDfs Dfs(Prog, Config);
  Result.Stats = Dfs.run([&](const History &H) {
    Result.Histories.push_back(H);
  });
  return Result;
}

std::map<std::string, unsigned>
txdpor::countByCanonicalKey(const std::vector<History> &Histories) {
  std::map<std::string, unsigned> Counts;
  for (const History &H : Histories)
    ++Counts[H.canonicalKey()];
  return Counts;
}

AssertionResult txdpor::checkAssertion(const Program &Prog,
                                       ExplorerConfig Config,
                                       const AssertionFn &Property) {
  AssertionResult Result;
  // Stop the exploration at the first violating history by capping end
  // states once found; the Explorer has no other early-exit channel, so we
  // simply record the witness and let MaxEndStates cut the search.
  Explorer E(Prog, Config);
  bool Found = false;
  History Witness;
  uint64_t Checked = 0;
  Result.Stats = E.run([&](const History &H) {
    if (Found)
      return;
    ++Checked;
    FinalStates States = computeFinalStates(Prog, H);
    if (!Property(States)) {
      Found = true;
      Witness = H;
    }
  });
  Result.ViolationFound = Found;
  if (Found)
    Result.Witness = std::move(Witness);
  Result.Checked = Checked;
  return Result;
}
