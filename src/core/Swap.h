//===- core/Swap.h - ComputeReorderings, Swap, Optimality (§5.2, §5.3) ----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event re-ordering machinery of the swapping-based algorithms:
///
///  * computeReorderings(h)  — pairs (r, t) of a read event r and the last
///    (just committed) transaction t that are candidates for re-ordering
///    (§5.2): t writes var(r), tr(r) precedes t in <, and tr(r) and t are
///    causally unrelated.
///  * applySwap(h, r)        — the Swap function: keep all events before
///    r, keep t and its (so ∪ wr)* predecessors whole, drop everything
///    else, re-point r's wr dependency to t, and move tr(r) (truncated at
///    r) to the end of the order.
///  * isSwappedRead(h, r)    — the swapped(h<, r) predicate of §5.3.
///  * readsLatest(h, r', t)  — the readLatest_I(h<, r', t) predicate.
///  * optimalityHolds(...)   — the full Optimality condition gating Swap.
///
/// All functions exploit the explorer invariants: each transaction's
/// events are contiguous in <, so the order is the log order of History.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_SWAP_H
#define TXDPOR_CORE_SWAP_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"

#include <unordered_map>
#include <vector>

namespace txdpor {

class PrefixStateCache;

/// A re-ordering candidate: the external read at position \c ReadPos of
/// transaction \c ReaderTxn, to be re-ordered with the history's last
/// transaction (which computeReorderings guarantees is complete).
struct Reordering {
  unsigned ReaderTxn;
  uint32_t ReadPos;
};

/// The default oracle order over transaction identifiers (§5.1): the
/// initial transaction first, then lexicographic (session, index). Fixed
/// and consistent with session order.
bool oracleLess(TxnUid A, TxnUid B);

/// An oracle order (§5.1): an arbitrary-but-fixed total order on the
/// program's transactions, consistent with session order. The scheduler
/// Next and the swapped() predicate must agree on it, so the explorer
/// threads one instance through both.
class OracleOrder {
public:
  /// The default lexicographic order.
  OracleOrder() = default;

  /// Builds an order from an explicit sequence covering each transaction
  /// exactly once; asserts consistency with session order (a session's
  /// transactions must appear by ascending index).
  static OracleOrder fromSequence(const std::vector<TxnUid> &Sequence);

  /// Strict comparison; the initial transaction is least.
  bool less(TxnUid A, TxnUid B) const {
    if (Rank.empty())
      return oracleLess(A, B);
    if (A == B)
      return false;
    if (A.isInit())
      return true;
    if (B.isInit())
      return false;
    return Rank.at(A.packed()) < Rank.at(B.packed());
  }

private:
  std::unordered_map<uint64_t, unsigned> Rank; ///< Empty = default order.
};

/// Candidates (r, t) of §5.2; non-empty only when the last event of \p H
/// is a commit. t is implicitly H's last transaction.
std::vector<Reordering> computeReorderings(const History &H);

/// The Swap function of §5.2. Returns the re-ordered history; the caller
/// rebuilds execution cursors by replay. \p R must come from
/// computeReorderings(H).
///
/// The result shares the storage of every kept-whole block with \p H
/// (copy-on-write); only the truncated reader log is new. When
/// \p FirstChangedBlock is non-null it receives the index (in the result)
/// of that reader — the first block whose log or read values differ from
/// \p H — which is exactly the FirstDirtyTxn argument replayCursorsFrom()
/// needs to rebuild cursors incrementally instead of replaying the whole
/// program.
History applySwap(const History &H, const Reordering &R,
                  unsigned *FirstChangedBlock = nullptr);

/// The swapped(h<, r) predicate of §5.3: r reads from an oracle-order
/// successor that < orders before it (condition 1), no transaction before
/// r in both orders is a causal successor of the writer (condition 2), and
/// r is the po-first read of its transaction reading from that writer
/// (condition 3).
bool isSwappedRead(const History &H, unsigned ReaderTxn, uint32_t ReadPos,
                   const OracleOrder &Order = OracleOrder());

/// The readLatest_I(h<, r', t) predicate of §5.3: in the history truncated
/// just before r' (keeping t and its causal predecessors whole), r''s
/// current writer must be the <-latest transaction in the causal past of
/// tr(r') from which r' could consistently read under the base assignment
/// \p Base (a uniform assignment for the classic algorithm). One
/// incremental ConstraintState is built for the truncation and every
/// candidate writer is a readAdmits probe against it — the previous
/// implementation copied and scratch-checked a whole history per
/// candidate. \p TargetTxn is the index of t in \p H.
///
/// When \p Cache (a PrefixStateCache over \p H with the same \p Base) is
/// provided, the truncation's state is rebuilt in O(Δ): the truncated
/// history is byte-identical to \p H below block \p ReaderTxn, so the
/// cached prefix state is copied and only blocks from \p ReaderTxn on are
/// replayed. Debug builds cross-assert against the bulk construction.
bool readsLatest(const History &H, unsigned ReaderTxn, uint32_t ReadPos,
                 unsigned TargetTxn, const LevelAssignment &Base,
                 PrefixStateCache *Cache = nullptr);

/// The §5.3 redundancy restrictions of Optimality — swapped(r'') and
/// readLatest for every read in D ∪ {r} — *without* the consistency check
/// of the swapped history itself. The engine calls this after it has
/// already built (and kept, for the swap child) the swapped history's
/// ConstraintState; optimalityHolds() below is the self-contained
/// combination.
/// \p Cache, when provided, is forwarded to every readsLatest() call so
/// the whole fan-out shares one set of O(Δ)-rebuilt prefix states.
bool optimalityRestrictionsHold(const History &H, const Reordering &R,
                                const LevelAssignment &Base,
                                bool CheckSwapped = true,
                                bool CheckReadLatest = true,
                                uint64_t *NumChecks = nullptr,
                                const OracleOrder &Order = OracleOrder(),
                                PrefixStateCache *Cache = nullptr);

/// The full Optimality(h<, r, t, locals) condition of §5.3: the swapped
/// history satisfies the base assignment, and the restrictions above
/// hold. The ablation flags disable the two redundancy restrictions
/// individually (soundness and completeness do not depend on them;
/// optimality does). \p NumChecks, when provided, accumulates
/// consistency-check counts.
bool optimalityHolds(const History &H, const Reordering &R,
                     const LevelAssignment &Base, bool CheckSwapped = true,
                     bool CheckReadLatest = true,
                     uint64_t *NumChecks = nullptr,
                     const OracleOrder &Order = OracleOrder());

} // namespace txdpor

#endif // TXDPOR_CORE_SWAP_H
