//===- core/Engine.h - Reusable single-step exploration engine ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exploration *engine*: the single-step expansion of the explore-ce /
/// explore-ce* algorithms, factored out of the drivers that walk the tree.
///
/// A WorkItem is one node of the exploration tree — a history with its
/// execution cursors (§7.1's worklist entry). expandItem() visits the node
/// (statistics, end-state handling, Valid filter, visitor) and produces
/// its children in the canonical recursive visit order: the extension
/// branches (read wr choices, or the single deterministic successor)
/// first, then the swap branches in computeReorderings order.
///
/// The engine itself is immutable after construction — except the
/// internally-synchronized dedup table (core/Dedup.h), owned here so one
/// table covers every driver — and therefore safe to share across
/// threads; all other mutable per-walk state (statistics, stop flag,
/// deadline poll state, callbacks) lives in an ExplorationSink that each
/// driver — or each worker thread of the parallel driver — owns
/// privately. Cross-worker coordination (cooperative stop, the global
/// MaxEndStates budget) goes through the optional atomics in the sink.
///
/// Drivers:
///   * Explorer (core/Explorer.h)          — sequential, recursive or
///     explicit-stack depth-first walk;
///   * ParallelExplorer (parallel/...)     — breadth-first frontier split
///     plus work-stealing depth-first workers.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_ENGINE_H
#define TXDPOR_CORE_ENGINE_H

#include "consistency/ConsistencyChecker.h"
#include "consistency/IncrementalChecker.h"
#include "core/Dedup.h"
#include "core/ExplorerConfig.h"
#include "core/Swap.h"
#include "program/Program.h"
#include "semantics/Executor.h"

#include <atomic>
#include <memory>
#include <vector>

namespace txdpor {

/// One node of the exploration tree: a history with its execution cursors
/// and its incremental saturation state, at a recursion depth (the
/// worklist entry of §7.1).
///
/// Ownership/threading contract: a WorkItem is owned by exactly one thread
/// at a time; the parallel driver transfers ownership by *moving* items
/// through its mutex-guarded deques. The history inside is a copy-on-write
/// value — siblings and ancestors share transaction-log storage across
/// threads — which is safe precisely because mutation happens only through
/// the single owning thread, and History clones any shared log before
/// writing (see history/History.h). The constraint state is a plain value
/// (its flat buffers share nothing), so stealing an item moves it with no
/// cross-thread aliasing at all.
struct WorkItem {
  History H;
  CursorMap Cursors;
  unsigned Depth = 1;
  /// The maintained so ∪ wr ∪ forced closure of H under the engine's base
  /// assignment — carried along the tree exactly like the cursor snapshot,
  /// so ValidWrites probes candidate writers against it instead of
  /// rebuilding the constraint graph per candidate (§5.1).
  ConstraintState CState;
  /// The carried dedup fingerprint state (core/Dedup.h), updated O(Δ) as
  /// the engine extends the item; default (invalid) when dedup is off and
  /// for swap children, whose next probe rebuilds it from the history.
  DedupFp Fp;
};

/// Mutable per-walk (per-worker) state threaded through expandItem. The
/// engine never touches anything outside the sink, so giving each worker
/// its own sink makes the expansion data-race-free by construction.
struct ExplorationSink {
  ExplorerStats Stats;

  /// Receives every output history (post Valid filter). In parallel runs
  /// the driver installs a mutex-guarded wrapper around the user visitor.
  HistoryVisitor Visit;

  /// Debug hook mirroring ExplorerConfig::OnExplore.
  std::function<void(const History &)> OnExplore;

  /// Private copy of the run's deadline: Deadline::expired() caches its
  /// poll state, so sharing one instance across threads would race.
  Deadline TimeBudget;

  /// Local stop flag: set on timeout, end-state cap, or via SharedStop.
  bool Stop = false;

  /// Cooperative cross-worker stop; null for sequential runs. Once any
  /// worker sets it, every sink's shouldStop() turns true.
  std::atomic<bool> *SharedStop = nullptr;

  /// Global end-state budget counter for parallel runs (null otherwise):
  /// MaxEndStates must cap the *total* across workers, not each worker.
  std::atomic<uint64_t> *SharedEndStates = nullptr;
};

/// The single-step expansion shared by every exploration driver.
/// Immutable after construction (the dedup table is internally
/// synchronized); const member functions are safe to call from many
/// threads concurrently with distinct sinks.
class ExplorationEngine {
public:
  ExplorationEngine(const Program &Prog, ExplorerConfig Config);

  /// The root of the exploration tree: the initial-transaction-only
  /// history with no cursors.
  WorkItem initialItem() const;

  /// Expands one node: visits it (statistics, end states, outputs) and
  /// appends its children to \p Out in the canonical recursive visit
  /// order. Children of a stopped sink are not generated.
  void expandItem(WorkItem Item, std::vector<WorkItem> &Out,
                  ExplorationSink &S) const;

  /// Polls the sink's stop conditions (local flag, shared flag, deadline)
  /// and propagates a deadline expiry to SharedStop.
  bool shouldStop(ExplorationSink &S) const;

  /// The configuration this engine was constructed with.
  const ExplorerConfig &config() const { return Config; }
  /// The program under exploration (not owned; must outlive the engine).
  const Program &program() const { return Prog; }
  /// The per-session base assignment this run resolved to (see
  /// ExplorerConfig::BaseLevels for the resolution order). Not mixed for
  /// classic single-level runs.
  const LevelAssignment &baseLevels() const { return BaseLevels; }
  /// Memo-table CLOCK evictions so far (0 when dedup is off or the table
  /// is unbounded); drivers fold this into ExplorerStats at run end.
  uint64_t dedupEvictions() const { return Dedup ? Dedup->evictions() : 0; }

private:
  /// What Next(P, h, locals) returned (§5.1).
  struct NextOp {
    bool Done = false;  ///< Program finished (⊥).
    TxnUid Uid{};       ///< Transaction the event belongs to.
    bool IsBegin = false;
    DbOp Op{};          ///< Valid unless Done/IsBegin.
    TxnCursor Advanced; ///< Cursor after local steps (unless Done/IsBegin).
  };

  NextOp computeNext(const History &H, const CursorMap &Cursors) const;
  void reachedEndState(const History &H, ExplorationSink &S) const;

  const Program &Prog;
  ExplorerConfig Config;
  /// Resolved per-session base levels (config > program > uniform
  /// BaseLevel; collapsed to uniform when every session agrees).
  LevelAssignment BaseLevels;
  /// Owns the mixed base checker when BaseLevels is mixed; the classic
  /// path keeps borrowing the per-level singleton through Base, so
  /// uniform runs pay nothing for the indirection.
  std::unique_ptr<ConsistencyChecker> OwnedBase;
  const ConsistencyChecker &Base;
  const ConsistencyChecker *Filter = nullptr;
  std::vector<TxnUid> OracleSequence; ///< Start order used by Next.
  OracleOrder Order;                  ///< Comparator shared with swapped().
  /// Explored-fingerprint memo, present iff Config.Dedup != Off. Sharded
  /// and internally synchronized, so the one engine the parallel driver
  /// shares across workers needs no extra coordination.
  std::unique_ptr<DedupTable> Dedup;
};

/// Depth-first drain of the subtree rooted at \p Root: an explicit LIFO
/// stack popping nodes in exactly the recursive visit order (§7.1). The
/// walk shared by the sequential iterative driver and the parallel
/// driver's single-thread fallback.
void drainDepthFirst(const ExplorationEngine &Engine, WorkItem Root,
                     ExplorationSink &S);

} // namespace txdpor

#endif // TXDPOR_CORE_ENGINE_H
