//===- core/Invariants.cpp - Explorer invariants (Appendix E) -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Invariants.h"

#include "core/Swap.h"

using namespace txdpor;

bool txdpor::readsFollowWriters(const History &H) {
  for (unsigned B = 0, E = H.numTxns(); B != E; ++B) {
    const TransactionLog &Log = H.txn(B);
    for (uint32_t P = 0, PE = static_cast<uint32_t>(Log.size()); P != PE;
         ++P) {
      std::optional<TxnUid> W = Log.writerOf(P);
      if (!W)
        continue;
      std::optional<unsigned> WIdx = H.indexOf(*W);
      if (!WIdx || *WIdx >= B)
        return false;
    }
  }
  return true;
}

namespace {

/// Whether transaction index \p C of \p H contains a swapped read.
bool hasSwappedRead(const History &H, unsigned C) {
  for (uint32_t P : H.txn(C).externalReads())
    if (H.txn(C).writerOf(P) && isSwappedRead(H, C, P))
      return true;
  return false;
}

} // namespace

bool txdpor::isOrRespectful(const Program &Prog, const History &H) {
  // At most one pending transaction.
  unsigned Pending = 0;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I)
    if (H.txn(I).isPending())
      ++Pending;
  if (Pending > 1)
    return false;

  Relation Causal = H.causalRelation();

  // Witness search (Def. E.5): a transaction C with a swapped read such
  // that C is oracle-at-most A, tr(e') = B is a causal predecessor of C
  // (reflexively), and — when \p MaxBlock is set (the e'' ≤ e constraint)
  // — C sits no later than that block. The position constraint is block-
  // granular: a transaction moved by Swap carries its own swapped read as
  // the witness (cf. the Swap case of Lemma E.6's proof).
  auto WitnessExists = [&](TxnUid A, unsigned B,
                           std::optional<unsigned> MaxBlock) {
    for (unsigned C = 0, E = H.numTxns(); C != E; ++C) {
      TxnUid CUid = H.txn(C).uid();
      if (!(CUid == A) && !oracleLess(CUid, A))
        continue;
      if (MaxBlock && C > *MaxBlock)
        continue;
      if (C != B && !Causal.get(B, C))
        continue;
      if (hasSwappedRead(H, C))
        return true;
    }
    return false;
  };

  // Universe of transactions: the program's plus init (init is always
  // first and complete, so only program transactions can be offenders).
  for (TxnUid A : Prog.oracleOrder()) {
    std::optional<unsigned> AIdx = H.indexOf(A);
    bool AIncomplete = !AIdx || H.txn(*AIdx).isPending();
    for (unsigned B = 0, E = H.numTxns(); B != E; ++B) {
      TxnUid BUid = H.txn(B).uid();
      if (BUid == A || !oracleLess(A, BUid))
        continue;
      // Events of A present in h but ordered after B's block.
      if (AIdx && *AIdx > B && !WitnessExists(A, B, *AIdx))
        return false;
      // Events of A missing from h entirely (unstarted / truncated):
      // the e'' ≤ e constraint is vacuous.
      if (AIncomplete && !WitnessExists(A, B, std::nullopt))
        return false;
    }
  }
  return true;
}
