//===- core/Explorer.cpp - The swapping-based SMC algorithms --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Explorer.h"

#include "support/MemoryProbe.h"

#include <algorithm>

using namespace txdpor;

std::string ExplorerConfig::algorithmName() const {
  // An assignment whose explicit entries all equal its default is the
  // classic uniform algorithm (the engine collapses it) — report it as
  // such; only genuinely mixed assignments get the mix(...) spelling.
  // For a non-mixed explicit assignment every entry equals its default.
  std::string Name =
      BaseLevels.isMixed()
          ? "mix(" + BaseLevels.str() + ")"
          : std::string(isolationLevelName(
                BaseLevels.hasExplicit() ? BaseLevels.defaultLevel()
                                         : BaseLevel));
  if (FilterLevel)
    Name += std::string(" + ") + isolationLevelName(*FilterLevel);
  return Name;
}

void ExplorerStats::merge(const ExplorerStats &Other) {
  ExploreCalls += Other.ExploreCalls;
  EndStates += Other.EndStates;
  Outputs += Other.Outputs;
  EventsAdded += Other.EventsAdded;
  ReadBranches += Other.ReadBranches;
  BlockedReads += Other.BlockedReads;
  SwapsConsidered += Other.SwapsConsidered;
  SwapsApplied += Other.SwapsApplied;
  ConsistencyChecks += Other.ConsistencyChecks;
  MaxDepth = std::max(MaxDepth, Other.MaxDepth);
  StealSuccesses += Other.StealSuccesses;
  StealFailures += Other.StealFailures;
  IdleParks += Other.IdleParks;
  FrontierItems += Other.FrontierItems;
  DedupChecks += Other.DedupChecks;
  DedupSkips += Other.DedupSkips;
  // Table-level totals, sampled once at run end by the owning driver and
  // never per worker — take the max so merging worker stats (all zero)
  // into the sampled aggregate cannot double-count.
  DedupEvictions = std::max(DedupEvictions, Other.DedupEvictions);
  DedupFpMismatches += Other.DedupFpMismatches;
  TimedOut = TimedOut || Other.TimedOut;
  HitEndStateCap = HitEndStateCap || Other.HitEndStateCap;
  ElapsedMillis += Other.ElapsedMillis;
  PeakRssKb = std::max(PeakRssKb, Other.PeakRssKb);
}

Explorer::Explorer(const Program &Prog, ExplorerConfig Config)
    : Engine(Prog, std::move(Config)) {}

ExplorerStats Explorer::run(const HistoryVisitor &VisitFn) {
  const ExplorerConfig &Config = Engine.config();
  ExplorationSink S;
  S.Visit = VisitFn;
  S.OnExplore = Config.OnExplore;
  S.TimeBudget = Config.TimeBudget;
  Stopwatch Timer;

  if (Config.Iterative)
    exploreIterative(Engine.initialItem(), S);
  else
    exploreRecursive(Engine.initialItem(), S);

  S.Stats.ElapsedMillis = Timer.elapsedMillis();
  S.Stats.PeakRssKb = peakRssKb();
  S.Stats.DedupEvictions = Engine.dedupEvictions();
  return S.Stats;
}

ExplorerStats txdpor::exploreProgram(const Program &Prog,
                                     ExplorerConfig Config,
                                     const HistoryVisitor &Visit) {
  Explorer E(Prog, std::move(Config));
  return E.run(Visit);
}

void Explorer::exploreRecursive(WorkItem Item, ExplorationSink &S) {
  std::vector<WorkItem> Children;
  Engine.expandItem(std::move(Item), Children, S);
  for (WorkItem &Child : Children) {
    // Mirror drainDepthFirst: once stopped, expand nothing further, so
    // both walks report identical statistics even for truncated runs.
    if (Engine.shouldStop(S))
      return;
    exploreRecursive(std::move(Child), S);
  }
}

// The iterative implementation (§7.1) is the shared drainDepthFirst walk:
// a depth-first worklist whose items pop in exactly the order the
// recursive implementation visits them — outputs and aggregate statistics
// coincide (asserted by the test suite).
void Explorer::exploreIterative(WorkItem Root, ExplorationSink &S) {
  drainDepthFirst(Engine, std::move(Root), S);
}
