//===- core/Explorer.cpp - The swapping-based SMC algorithms --------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Explorer.h"

#include "core/Swap.h"
#include "support/MemoryProbe.h"

using namespace txdpor;

std::string ExplorerConfig::algorithmName() const {
  std::string Name = isolationLevelName(BaseLevel);
  if (FilterLevel)
    Name += std::string(" + ") + isolationLevelName(*FilterLevel);
  return Name;
}

Explorer::Explorer(const Program &Prog, ExplorerConfig Config)
    : Prog(Prog), Config(Config), Base(checkerFor(Config.BaseLevel)) {
  assert(isPrefixClosedCausallyExtensible(Config.BaseLevel) &&
         "BaseLevel must be prefix-closed and causally extensible (§5)");
  if (Config.FilterLevel) {
    assert(isWeakerOrEqual(Config.BaseLevel, *Config.FilterLevel) &&
           "BaseLevel must be weaker than the filter level (Cor. 6.2)");
    Filter = &checkerFor(*Config.FilterLevel);
  }
  if (this->Config.OracleOrderOverride.empty()) {
    OracleSequence = Prog.oracleOrder();
  } else {
    OracleSequence = this->Config.OracleOrderOverride;
    assert(OracleSequence.size() == Prog.totalTxns() &&
           "oracle order must cover the whole program");
    Order = OracleOrder::fromSequence(OracleSequence);
  }
}

ExplorerStats Explorer::run(const HistoryVisitor &VisitFn) {
  Visit = VisitFn;
  Stats = ExplorerStats();
  Stop = false;
  Stopwatch Timer;

  History Initial = History::makeInitial(Prog.numVars());
  if (Config.Iterative)
    exploreIterative(std::move(Initial));
  else
    explore(std::move(Initial), CursorMap(), /*Depth=*/1);

  Stats.ElapsedMillis = Timer.elapsedMillis();
  Stats.PeakRssKb = peakRssKb();
  return Stats;
}

ExplorerStats txdpor::exploreProgram(const Program &Prog,
                                     ExplorerConfig Config,
                                     const HistoryVisitor &Visit) {
  Explorer E(Prog, Config);
  return E.run(Visit);
}

bool Explorer::shouldStop() {
  if (Stop)
    return true;
  if (Config.TimeBudget.expired()) {
    Stats.TimedOut = true;
    Stop = true;
  }
  return Stop;
}

Explorer::NextOp Explorer::computeNext(const History &H,
                                       const CursorMap &Cursors) const {
  NextOp Result;
  // Complete the unique pending transaction first (§5.1): this maintains
  // the at-most-one-pending invariant on which causal extensibility (and
  // hence never blocking) relies.
  if (std::optional<unsigned> Pending = H.pendingTxn()) {
    TxnUid Uid = H.txn(*Pending).uid();
    Result.Uid = Uid;
    Result.Advanced = Cursors.at(Uid.packed());
    Result.Op = advanceToDbOp(Prog.txn(Uid), Result.Advanced);
    return Result;
  }
  // Otherwise start the oracle-least not-yet-started transaction.
  for (TxnUid Uid : OracleSequence) {
    if (H.contains(Uid))
      continue;
    Result.Uid = Uid;
    Result.IsBegin = true;
    return Result;
  }
  Result.Done = true;
  return Result;
}

void Explorer::reachedEndState(const History &H) {
  ++Stats.EndStates;
  H.checkOrderConsistent();
  assert(!H.pendingTxn() && "end state with a pending transaction");
  bool Valid = true;
  if (Filter) {
    ++Stats.ConsistencyChecks;
    Valid = Filter->isConsistent(H);
  }
  if (Valid) {
    ++Stats.Outputs;
    if (Visit)
      Visit(H);
  }
  if (Config.MaxEndStates && Stats.EndStates >= Config.MaxEndStates) {
    Stats.HitEndStateCap = true;
    Stop = true;
  }
}

void Explorer::explore(History H, CursorMap Cursors, unsigned Depth) {
  ++Stats.ExploreCalls;
  if (Depth > Stats.MaxDepth)
    Stats.MaxDepth = Depth;
  if (shouldStop())
    return;
  if (Config.OnExplore)
    Config.OnExplore(H);

  NextOp Next = computeNext(H, Cursors);
  if (Next.Done) {
    reachedEndState(H);
    return;
  }

  if (Next.IsBegin) {
    // Begin events extend deterministically; a begin is never a commit, so
    // exploreSwaps would be a no-op (§5.2).
    H.beginTxn(Next.Uid);
    Cursors[Next.Uid.packed()] = TxnCursor::fresh(Prog.txn(Next.Uid));
    ++Stats.EventsAdded;
    explore(std::move(H), std::move(Cursors), Depth + 1);
    return;
  }

  unsigned Idx = *H.indexOf(Next.Uid);
  const Transaction &Code = Prog.txn(Next.Uid);

  switch (Next.Op.Kind) {
  case DbOp::Kind::Read: {
    // Branch over ValidWrites (§5.1): committed writers of the variable
    // whose wr choice keeps the history BaseLevel-consistent.
    H.appendEvent(Idx, Event::makeRead(Next.Op.Var));
    ++Stats.EventsAdded;
    uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;

    std::vector<unsigned> Candidates;
    bool Internal = !H.txn(Idx).isExternalRead(Pos);
    if (Internal) {
      // Read-local rule: value is fixed by the transaction itself; no wr
      // dependency and no branching.
      Candidates.clear();
    } else {
      for (unsigned W : H.committedWriters(Next.Op.Var)) {
        H.setWriter(Idx, Pos, H.txn(W).uid());
        ++Stats.ConsistencyChecks;
        if (Base.isConsistent(H))
          Candidates.push_back(W);
      }
    }

    if (Internal) {
      CursorMap NewCursors = std::move(Cursors);
      TxnCursor &Cur = NewCursors[Next.Uid.packed()];
      Cur = Next.Advanced;
      applyRead(Code, Cur, H.readValue(Idx, Pos));
      explore(std::move(H), std::move(NewCursors), Depth + 1);
      return;
    }

    if (Candidates.empty()) {
      // Cannot happen for causally-extensible base levels (§3.2); counted
      // to let tests assert strong optimality.
      ++Stats.BlockedReads;
      return;
    }
    // Explore latest writers first (order does not affect the result set).
    for (size_t CI = Candidates.size(); CI-- > 0;) {
      if (shouldStop())
        return;
      unsigned W = Candidates[CI];
      History Branch = H;
      Branch.setWriter(Idx, Pos, H.txn(W).uid());
      CursorMap BranchCursors = Cursors;
      TxnCursor &Cur = BranchCursors[Next.Uid.packed()];
      Cur = Next.Advanced;
      applyRead(Code, Cur, Branch.readValue(Idx, Pos));
      ++Stats.ReadBranches;
      explore(std::move(Branch), std::move(BranchCursors), Depth + 1);
      // A read is never a commit: exploreSwaps would be a no-op.
    }
    return;
  }

  case DbOp::Kind::Write: {
    H.appendEvent(Idx, Event::makeWrite(Next.Op.Var, Next.Op.Val));
    ++Stats.EventsAdded;
    // Causal extensibility (Thm. 3.4) guarantees writes never violate the
    // base level when the pending transaction is (so ∪ wr)+-maximal.
    assert(Base.isConsistent(H) && "write extension broke consistency");
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyWrite(Cursors[Next.Uid.packed()]);
    explore(std::move(H), std::move(Cursors), Depth + 1);
    return;
  }

  case DbOp::Kind::Abort: {
    H.appendEvent(Idx, Event::makeAbort());
    ++Stats.EventsAdded;
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyFinish(Cursors[Next.Uid.packed()]);
    // Aborted transactions are never swap targets (§5.2, footnote 5).
    explore(std::move(H), std::move(Cursors), Depth + 1);
    return;
  }

  case DbOp::Kind::Commit: {
    H.appendEvent(Idx, Event::makeCommit());
    ++Stats.EventsAdded;
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyFinish(Cursors[Next.Uid.packed()]);
    History Committed = H; // exploreSwaps needs it after explore moves on.
    explore(std::move(H), std::move(Cursors), Depth + 1);
    exploreSwaps(Committed, Depth);
    return;
  }
  }
}

void Explorer::exploreSwaps(const History &H, unsigned Depth) {
  if (shouldStop())
    return;
  for (const Reordering &R : computeReorderings(H)) {
    if (shouldStop())
      return;
    ++Stats.SwapsConsidered;
    if (!optimalityHolds(H, R, Base, Config.CheckSwapped,
                         Config.CheckReadLatest, &Stats.ConsistencyChecks,
                         Order))
      continue;
    ++Stats.SwapsApplied;
    History Swapped = applySwap(H, R);
    CursorMap Cursors = replayAllCursors(Prog, Swapped);
    explore(std::move(Swapped), std::move(Cursors), Depth + 1);
  }
}

//===----------------------------------------------------------------------===
// Iterative implementation (§7.1): a depth-first worklist of (history,
// cursors) items. Children of an item are collected in the recursive
// visit order and pushed onto the LIFO stack in reverse, so items pop in
// exactly the order the recursive implementation visits them — outputs
// and aggregate statistics coincide (asserted by the test suite).
//===----------------------------------------------------------------------===

void Explorer::exploreIterative(History Initial) {
  std::vector<WorkItem> Stack;
  Stack.push_back({std::move(Initial), CursorMap(), /*Depth=*/1});
  std::vector<WorkItem> Children;
  while (!Stack.empty()) {
    if (shouldStop())
      return;
    WorkItem Item = std::move(Stack.back());
    Stack.pop_back();
    Children.clear();
    expandItem(std::move(Item), Children);
    for (size_t I = Children.size(); I-- > 0;)
      Stack.push_back(std::move(Children[I]));
  }
}

void Explorer::expandItem(WorkItem Item, std::vector<WorkItem> &Out) {
  ++Stats.ExploreCalls;
  if (Item.Depth > Stats.MaxDepth)
    Stats.MaxDepth = Item.Depth;
  if (shouldStop())
    return;
  if (Config.OnExplore)
    Config.OnExplore(Item.H);

  History &H = Item.H;
  CursorMap &Cursors = Item.Cursors;
  NextOp Next = computeNext(H, Cursors);
  if (Next.Done) {
    reachedEndState(H);
    return;
  }

  if (Next.IsBegin) {
    H.beginTxn(Next.Uid);
    Cursors[Next.Uid.packed()] = TxnCursor::fresh(Prog.txn(Next.Uid));
    ++Stats.EventsAdded;
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1});
    return;
  }

  unsigned Idx = *H.indexOf(Next.Uid);
  const Transaction &Code = Prog.txn(Next.Uid);

  switch (Next.Op.Kind) {
  case DbOp::Kind::Read: {
    H.appendEvent(Idx, Event::makeRead(Next.Op.Var));
    ++Stats.EventsAdded;
    uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;

    if (!H.txn(Idx).isExternalRead(Pos)) {
      TxnCursor &Cur = Cursors[Next.Uid.packed()];
      Cur = Next.Advanced;
      applyRead(Code, Cur, H.readValue(Idx, Pos));
      Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1});
      return;
    }

    std::vector<unsigned> Candidates;
    for (unsigned W : H.committedWriters(Next.Op.Var)) {
      H.setWriter(Idx, Pos, H.txn(W).uid());
      ++Stats.ConsistencyChecks;
      if (Base.isConsistent(H))
        Candidates.push_back(W);
    }
    if (Candidates.empty()) {
      ++Stats.BlockedReads;
      return;
    }
    // Same order as the recursive loop: latest writers first.
    for (size_t CI = Candidates.size(); CI-- > 0;) {
      unsigned W = Candidates[CI];
      History Branch = H;
      Branch.setWriter(Idx, Pos, H.txn(W).uid());
      CursorMap BranchCursors = Cursors;
      TxnCursor &Cur = BranchCursors[Next.Uid.packed()];
      Cur = Next.Advanced;
      applyRead(Code, Cur, Branch.readValue(Idx, Pos));
      ++Stats.ReadBranches;
      Out.push_back(
          {std::move(Branch), std::move(BranchCursors), Item.Depth + 1});
    }
    return;
  }

  case DbOp::Kind::Write: {
    H.appendEvent(Idx, Event::makeWrite(Next.Op.Var, Next.Op.Val));
    ++Stats.EventsAdded;
    assert(Base.isConsistent(H) && "write extension broke consistency");
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyWrite(Cursors[Next.Uid.packed()]);
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1});
    return;
  }

  case DbOp::Kind::Abort: {
    H.appendEvent(Idx, Event::makeAbort());
    ++Stats.EventsAdded;
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyFinish(Cursors[Next.Uid.packed()]);
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1});
    return;
  }

  case DbOp::Kind::Commit: {
    H.appendEvent(Idx, Event::makeCommit());
    ++Stats.EventsAdded;
    Cursors[Next.Uid.packed()] = Next.Advanced;
    applyFinish(Cursors[Next.Uid.packed()]);

    // Extension child first (the recursive code fully explores it before
    // any swap), then swap children in computeReorderings order.
    History Committed = H;
    Out.push_back({std::move(H), std::move(Cursors), Item.Depth + 1});
    for (const Reordering &R : computeReorderings(Committed)) {
      ++Stats.SwapsConsidered;
      if (!optimalityHolds(Committed, R, Base, Config.CheckSwapped,
                           Config.CheckReadLatest, &Stats.ConsistencyChecks,
                           Order))
        continue;
      ++Stats.SwapsApplied;
      History Swapped = applySwap(Committed, R);
      CursorMap SwapCursors = replayAllCursors(Prog, Swapped);
      Out.push_back(
          {std::move(Swapped), std::move(SwapCursors), Item.Depth + 1});
    }
    return;
  }
  }
}
