//===- core/NaiveDfs.cpp - Baseline model checking without POR ------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/NaiveDfs.h"

#include "support/MemoryProbe.h"

using namespace txdpor;

NaiveDfs::NaiveDfs(const Program &Prog, NaiveDfsConfig Config)
    : Prog(Prog), Config(Config), Checker(checkerFor(Config.Level)) {}

ExplorerStats txdpor::naiveDfsProgram(const Program &Prog,
                                      NaiveDfsConfig Config,
                                      const HistoryVisitor &Visit) {
  NaiveDfs Dfs(Prog, Config);
  return Dfs.run(Visit);
}

ExplorerStats NaiveDfs::run(const HistoryVisitor &VisitFn) {
  Visit = VisitFn;
  Stats = ExplorerStats();
  Seen.clear();
  Stop = false;
  Stopwatch Timer;

  dfs(History::makeInitial(Prog.numVars()), CursorMap(), /*Depth=*/1);

  Stats.ElapsedMillis = Timer.elapsedMillis();
  Stats.PeakRssKb = peakRssKb();
  return Stats;
}

bool NaiveDfs::shouldStop() {
  if (Stop)
    return true;
  if (Config.TimeBudget.expired()) {
    Stats.TimedOut = true;
    Stop = true;
  }
  return Stop;
}

void NaiveDfs::dfs(History H, CursorMap Cursors, unsigned Depth) {
  ++Stats.ExploreCalls;
  if (Depth > Stats.MaxDepth)
    Stats.MaxDepth = Depth;
  if (shouldStop())
    return;

  // Collect live (pending) transactions and startable sessions.
  std::vector<TxnUid> Live;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I)
    if (H.txn(I).isPending())
      Live.push_back(H.txn(I).uid());

  std::vector<TxnUid> Startable;
  if (Live.empty() || Config.Unrestricted) {
    for (uint32_t S = 0, SE = Prog.numSessions(); S != SE; ++S) {
      bool SessionLive = false;
      for (TxnUid U : Live)
        if (U.Session == S)
          SessionLive = true;
      if (SessionLive) // /spawn requires no live transaction in session.
        continue;
      // The next unstarted transaction of the session, if any.
      for (uint32_t T = 0, TE = Prog.numTxns(S); T != TE; ++T) {
        if (!H.contains({S, T})) {
          Startable.push_back({S, T});
          break;
        }
      }
    }
  }

  if (Live.empty() && Startable.empty()) {
    ++Stats.EndStates;
    bool Fresh = true;
    if (Config.Deduplicate)
      Fresh = Seen.insert(H.canonicalKey()).second;
    if (Fresh) {
      ++Stats.Outputs;
      if (Visit)
        Visit(H);
    }
    if (Config.MaxEndStates && Stats.EndStates >= Config.MaxEndStates) {
      Stats.HitEndStateCap = true;
      Stop = true;
    }
    return;
  }

  // Branch: continue each live transaction (in unrestricted mode all of
  // them; restricted mode has at most one) ...
  for (TxnUid Uid : Live) {
    if (shouldStop())
      return;
    History Branch = H;
    CursorMap BranchCursors = Cursors;
    stepTransaction(Branch, BranchCursors, Uid, Depth);
  }
  // ... and start a transaction in each startable session.
  for (TxnUid Uid : Startable) {
    if (shouldStop())
      return;
    History Branch = H;
    CursorMap BranchCursors = Cursors;
    Branch.beginTxn(Uid);
    BranchCursors[Uid.packed()] = TxnCursor::fresh(Prog.txn(Uid));
    ++Stats.EventsAdded;
    dfs(std::move(Branch), std::move(BranchCursors), Depth + 1);
  }
}

void NaiveDfs::stepTransaction(History &H, CursorMap &Cursors, TxnUid Uid,
                               unsigned Depth) {
  unsigned Idx = *H.indexOf(Uid);
  const Transaction &Code = Prog.txn(Uid);
  TxnCursor Advanced = Cursors.at(Uid.packed());
  DbOp Op = advanceToDbOp(Code, Advanced);

  switch (Op.Kind) {
  case DbOp::Kind::Read: {
    H.appendEvent(Idx, Event::makeRead(Op.Var));
    ++Stats.EventsAdded;
    uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;

    if (!H.txn(Idx).isExternalRead(Pos)) {
      // /read-local: deterministic.
      Cursors[Uid.packed()] = Advanced;
      applyRead(Code, Cursors[Uid.packed()], H.readValue(Idx, Pos));
      dfs(std::move(H), std::move(Cursors), Depth + 1);
      return;
    }

    // /read-extern: non-deterministic choice among committed writers that
    // keep the history consistent.
    std::vector<unsigned> Candidates;
    for (unsigned W : H.committedWriters(Op.Var)) {
      if (*H.indexOf(Uid) == W)
        continue;
      H.setWriter(Idx, Pos, H.txn(W).uid());
      ++Stats.ConsistencyChecks;
      if (Checker.isConsistent(H))
        Candidates.push_back(W);
    }
    if (Candidates.empty())
      ++Stats.BlockedReads;
    for (unsigned W : Candidates) {
      if (shouldStop())
        return;
      History Branch = H;
      Branch.setWriter(Idx, Pos, H.txn(W).uid());
      CursorMap BranchCursors = Cursors;
      BranchCursors[Uid.packed()] = Advanced;
      applyRead(Code, BranchCursors[Uid.packed()],
                Branch.readValue(Idx, Pos));
      ++Stats.ReadBranches;
      dfs(std::move(Branch), std::move(BranchCursors), Depth + 1);
    }
    return;
  }

  case DbOp::Kind::Write: {
    H.appendEvent(Idx, Event::makeWrite(Op.Var, Op.Val));
    ++Stats.EventsAdded;
    // /write is enabled only if the extension stays consistent.
    ++Stats.ConsistencyChecks;
    if (!Checker.isConsistent(H))
      return;
    Cursors[Uid.packed()] = Advanced;
    applyWrite(Cursors[Uid.packed()]);
    dfs(std::move(H), std::move(Cursors), Depth + 1);
    return;
  }

  case DbOp::Kind::Abort: {
    H.appendEvent(Idx, Event::makeAbort());
    ++Stats.EventsAdded;
    Cursors[Uid.packed()] = Advanced;
    applyFinish(Cursors[Uid.packed()]);
    dfs(std::move(H), std::move(Cursors), Depth + 1);
    return;
  }

  case DbOp::Kind::Commit: {
    H.appendEvent(Idx, Event::makeCommit());
    ++Stats.EventsAdded;
    Cursors[Uid.packed()] = Advanced;
    applyFinish(Cursors[Uid.packed()]);
    dfs(std::move(H), std::move(Cursors), Depth + 1);
    return;
  }
  }
}
