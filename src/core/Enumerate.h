//===- core/Enumerate.h - Enumeration and assertion-checking helpers ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// High-level entry points on top of the explorer: collecting the full set
/// of histories of a program under an isolation level, and checking
/// user-defined assertions over final local states (the paper's intended
/// use of SMC: "check for user-defined assertions", §8). An assertion sees
/// the final local-variable valuation of every transaction of an output
/// history; the explorer stops at the first violating history and returns
/// it as a witness.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_ENUMERATE_H
#define TXDPOR_CORE_ENUMERATE_H

#include "core/Explorer.h"
#include "core/NaiveDfs.h"
#include "semantics/Executor.h"

#include <map>
#include <vector>

namespace txdpor {

/// All output histories of a run plus its statistics.
struct EnumerationResult {
  std::vector<History> Histories;
  ExplorerStats Stats;
};

/// Runs the swapping-based explorer and collects every output history.
EnumerationResult enumerateHistories(const Program &Prog,
                                     ExplorerConfig Config);

/// Reference enumeration of hist_I(P): naive DFS with deduplication.
/// Ground truth for the completeness/optimality tests.
EnumerationResult enumerateReference(const Program &Prog,
                                     IsolationLevel Level,
                                     bool Unrestricted = false);

/// Returns the multiset of output histories keyed by canonical form; the
/// mapped value counts how often each history was produced (all 1 for an
/// optimal algorithm).
std::map<std::string, unsigned>
countByCanonicalKey(const std::vector<History> &Histories);

/// An application-level correctness property over one complete execution.
/// Returns true when the execution is acceptable.
using AssertionFn = std::function<bool(const FinalStates &)>;

/// Outcome of assertion checking.
struct AssertionResult {
  bool ViolationFound = false;
  History Witness;        ///< Valid only when ViolationFound.
  uint64_t Checked = 0;   ///< Histories evaluated.
  ExplorerStats Stats;
};

/// Explores \p Prog under \p Config and evaluates \p Property on every
/// output history. Stops at the first violation.
AssertionResult checkAssertion(const Program &Prog, ExplorerConfig Config,
                               const AssertionFn &Property);

} // namespace txdpor

#endif // TXDPOR_CORE_ENUMERATE_H
