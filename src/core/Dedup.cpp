//===- core/Dedup.cpp - Subtree dedup & session-symmetry reduction --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Dedup.h"

#include "support/Hash.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace txdpor;

namespace {

/// Two independently-seeded order-sensitive chains over one element
/// stream; finalized into a 128-bit fingerprint.
struct Mix128 {
  uint64_t A;
  uint64_t B;

  Mix128(uint64_t SeedA, uint64_t SeedB) : A(SeedA), B(SeedB) {}

  void add(uint64_t V) {
    A = hashCombine64(A, V);
    B = hashCombine64(B, V ^ 0x5bf0f5e383bd9a1bULL);
  }

  Fingerprint done() const { return {splitmix64(A), splitmix64(B)}; }
};

//===----------------------------------------------------------------------===//
// Structural session classes
//===----------------------------------------------------------------------===//

bool exprEq(const Expr::NodeRef &A, const Expr::NodeRef &B) {
  if (!A || !B)
    return !A && !B;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::Const:
    return A->constVal() == B->constVal();
  case ExprKind::Local:
    return A->localId() == B->localId();
  case ExprKind::Unary:
    return A->unaryOp() == B->unaryOp() && exprEq(A->lhs(), B->lhs());
  case ExprKind::Binary:
    return A->binaryOp() == B->binaryOp() && exprEq(A->lhs(), B->lhs()) &&
           exprEq(A->rhs(), B->rhs());
  }
  return false;
}

bool instrEq(const Instr &A, const Instr &B) {
  return A.Kind == B.Kind && A.Target == B.Target && A.Var == B.Var &&
         exprEq(A.Guard.Node, B.Guard.Node) && exprEq(A.Rhs.Node, B.Rhs.Node);
}

/// Structural equality of two sessions' code (names are metadata and do
/// not participate: renaming a session must not change its class).
bool sessionStructEq(const Program &P, uint32_t S1, uint32_t S2) {
  if (P.numTxns(S1) != P.numTxns(S2))
    return false;
  for (unsigned T = 0, E = P.numTxns(S1); T != E; ++T) {
    const std::vector<Instr> &A = P.txn({S1, T}).body();
    const std::vector<Instr> &B = P.txn({S2, T}).body();
    if (A.size() != B.size())
      return false;
    for (size_t I = 0, N = A.size(); I != N; ++I)
      if (!instrEq(A[I], B[I]))
        return false;
  }
  return true;
}

void mixExpr(Mix128 &M, const Expr::NodeRef &E) {
  if (!E) {
    M.add(0);
    return;
  }
  M.add(static_cast<uint64_t>(E->kind()) + 1);
  switch (E->kind()) {
  case ExprKind::Const:
    M.add(static_cast<uint64_t>(E->constVal()));
    break;
  case ExprKind::Local:
    M.add(E->localId());
    break;
  case ExprKind::Unary:
    M.add(static_cast<uint64_t>(E->unaryOp()));
    mixExpr(M, E->lhs());
    break;
  case ExprKind::Binary:
    M.add(static_cast<uint64_t>(E->binaryOp()));
    mixExpr(M, E->lhs());
    mixExpr(M, E->rhs());
    break;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// historyFingerprint
//===----------------------------------------------------------------------===//

Fingerprint txdpor::historyFingerprint(const History &H) {
  // Logs sorted by uid, exactly the rendering order of canonicalKey, so
  // key equality and fingerprint equality coincide (modulo collisions).
  std::vector<unsigned> Order(H.numTxns());
  std::iota(Order.begin(), Order.end(), 0u);
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return H.txn(A).uid() < H.txn(B).uid();
  });
  Mix128 M(0x8f1bbcdc5a827999ULL, 0xca62c1d6d76aa478ULL);
  M.add(H.numTxns());
  for (unsigned I : Order) {
    const TransactionLog &Log = H.txn(I);
    M.add(Log.uid().packed());
    M.add(Log.size());
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      const Event &Ev = Log.event(P);
      M.add(static_cast<uint64_t>(Ev.Kind));
      M.add(Ev.Var);
      M.add(static_cast<uint64_t>(Ev.Val));
      if (std::optional<TxnUid> W = Log.writerOf(P)) {
        M.add(1);
        M.add(W->packed());
      } else {
        M.add(0);
      }
    }
  }
  return M.done();
}

//===----------------------------------------------------------------------===//
// DedupTable
//===----------------------------------------------------------------------===//

DedupTable::DedupTable(const Program &Prog, const LevelAssignment &Levels,
                       DedupMode Mode, uint64_t MaxEntries)
    : Mode(Mode), NumSessions(Prog.numSessions()),
      MaxPerShard(MaxEntries == 0
                      ? 0
                      : std::max<uint64_t>(
                            1, (MaxEntries + NumShards - 1) / NumShards)) {
  assert(Mode != DedupMode::Off && "a table for a disabled mode");

  // Partition sessions into structural classes: same base level, same
  // transaction count, structurally equal bodies. Class ids ascend with
  // first occurrence, so the layout is a pure function of the program —
  // identical across every item of one run.
  ClassOf.assign(NumSessions, 0);
  std::vector<uint32_t> Reps;
  for (uint32_t S = 0; S != NumSessions; ++S) {
    uint32_t Class = static_cast<uint32_t>(Reps.size());
    for (uint32_t C = 0; C != Reps.size(); ++C)
      if (Levels.levelFor(Reps[C]) == Levels.levelFor(S) &&
          sessionStructEq(Prog, Reps[C], S)) {
        Class = C;
        break;
      }
    if (Class == Reps.size())
      Reps.push_back(S);
    ClassOf[S] = Class;
  }

  // Salt: the program text plus the resolved assignment, so fingerprints
  // from different semantics can never alias (tables are per-run anyway;
  // this is defense in depth for serialized fingerprints in dumps).
  Mix128 M(0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL);
  M.add(static_cast<uint64_t>(Mode));
  M.add(NumSessions);
  for (uint32_t S = 0; S != NumSessions; ++S) {
    M.add(static_cast<uint64_t>(Levels.levelFor(S)));
    M.add(Prog.numTxns(S));
    for (unsigned T = 0, E = Prog.numTxns(S); T != E; ++T) {
      const std::vector<Instr> &Body = Prog.txn({S, T}).body();
      M.add(Body.size());
      for (const Instr &I : Body) {
        M.add(static_cast<uint64_t>(I.Kind));
        M.add(I.Target);
        M.add(I.Var);
        mixExpr(M, I.Guard.Node);
        mixExpr(M, I.Rhs.Node);
      }
    }
  }
  Fingerprint Salt = M.done();
  Salt0 = Salt.Lo;
  Salt1 = Salt.Hi;
}

namespace {

/// The canonical name of \p U under permutation \p Pi (empty = identity).
/// The initial transaction renames to itself, so a renamed uid can never
/// alias it (InitSession is above every real session id).
uint64_t renamedUid(const std::vector<uint32_t> &Pi, TxnUid U) {
  if (U.isInit() || Pi.empty())
    return U.packed();
  assert(U.Session < Pi.size() && "item names an unknown session");
  return (static_cast<uint64_t>(Pi[U.Session]) << 32) | U.Index;
}

} // namespace

/// Position-bound contribution of one renamed occurrence: block position,
/// hole slot and the canonical rank fill a structured key, avalanched per
/// chain. Summed commutatively into the block's content chains.
uint64_t mentionKey(unsigned BlockPos, uint32_t Slot, uint32_t Rank) {
  return (static_cast<uint64_t>(BlockPos) << 40) |
         (static_cast<uint64_t>(Slot & DedupFp::OwnerSlot) << 20) | Rank;
}

void DedupTable::refreshBlock(DedupFp &Fp, const History &H,
                              unsigned I) const {
  const TransactionLog &Log = H.txn(I);
  TxnUid U = Log.uid();
  DedupFp::BlockEntry &E = Fp.Blocks[I];
  E.Session = U.isInit() ? TxnUid::InitSession : U.Session;
  E.NumMentions = 0;
  assert((U.isInit() || U.Session < NumSessions) &&
         "history names an unknown session");
  auto Mention = [&](uint32_t Slot, uint32_t Session) {
    if (E.NumMentions < DedupFp::MaxMentions)
      E.Mentions[E.NumMentions++] = {Slot, Session};
    else
      E.NumMentions = 0xff; // Overflow: refolds re-walk the log.
  };
  // π-invariant digest: block position, index within the session, events,
  // and writers by (class, index) — renaming any session leaves it fixed,
  // so the D0 colors built from these sums are renaming-invariant. The
  // same walk folds the content chains (everything except renamed session
  // names, whose position-bound holes become mentions), so a π move later
  // refolds from the cache without touching the log.
  uint64_t D = hashCombine64(0x9e3779b97f4a7c15ULL, I);
  D = hashCombine64(D, U.isInit() ? ~0ull : static_cast<uint64_t>(U.Index));
  D = hashCombine64(D, Log.size());
  Mix128 M(Salt0, Salt1);
  M.add(I);
  if (U.isInit()) {
    M.add(U.packed());
  } else {
    M.add(U.Index);
    Mention(DedupFp::OwnerSlot, U.Session);
  }
  M.add(Log.size());
  uint64_t Mask = !U.isInit() && U.Session < 64 ? 1ull << U.Session : 0;
  for (uint32_t P = 0, Sz = static_cast<uint32_t>(Log.size()); P != Sz; ++P) {
    const Event &Ev = Log.event(P);
    D = hashCombine64(D, static_cast<uint64_t>(Ev.Kind));
    D = hashCombine64(D, Ev.Var);
    D = hashCombine64(D, static_cast<uint64_t>(Ev.Val));
    M.add(static_cast<uint64_t>(Ev.Kind));
    M.add(Ev.Var);
    M.add(static_cast<uint64_t>(Ev.Val));
    if (std::optional<TxnUid> W = Log.writerOf(P)) {
      D = hashCombine64(D, classOf(W->Session));
      D = hashCombine64(D, W->Index);
      if (W->isInit()) {
        M.add(1);
        M.add(W->packed());
      } else {
        M.add(2);
        M.add(W->Index);
        Mention(P, W->Session);
        if (W->Session < 64)
          Mask |= 1ull << W->Session;
      }
    } else {
      M.add(0);
    }
  }
  E.InvDig = D;
  E.Mask = Mask;
  Fingerprint F = M.done();
  E.CntA = F.Lo;
  E.CntB = F.Hi;
}

void DedupTable::refoldPiDigest(DedupFp &Fp, const History &H,
                                unsigned I) const {
  DedupFp::BlockEntry &E = Fp.Blocks[I];
  if (E.NumMentions != 0xff) {
    // Fast path: the content chains already bind everything π-invariant;
    // fold each mention's (position, slot, rank) key per chain.
    uint64_t A = E.CntA, B = E.CntB;
    for (unsigned K = 0; K != E.NumMentions; ++K) {
      const DedupFp::Mention &Mn = E.Mentions[K];
      uint32_t Rank = Fp.Pi.empty() ? Mn.Session : Fp.Pi[Mn.Session];
      uint64_t Key = mentionKey(I, Mn.Slot, Rank);
      A += splitmix64(Key ^ Salt0 ^ 0x2545f4914f6cdd1dULL);
      B += splitmix64(Key ^ Salt1 ^ 0x9e6c63d0873084c5ULL);
    }
    E.PiA = A;
    E.PiB = B;
    return;
  }
  // Overflowed mention list (> MaxMentions renamed occurrences): re-walk
  // the log, folding the renamed occurrences exactly as the fast path
  // would, so both paths agree bit-for-bit.
  const TransactionLog &Log = H.txn(I);
  TxnUid U = Log.uid();
  uint64_t A = E.CntA, B = E.CntB;
  auto Fold = [&](uint32_t Slot, uint32_t Session) {
    uint32_t Rank = Fp.Pi.empty() ? Session : Fp.Pi[Session];
    uint64_t Key = mentionKey(I, Slot, Rank);
    A += splitmix64(Key ^ Salt0 ^ 0x2545f4914f6cdd1dULL);
    B += splitmix64(Key ^ Salt1 ^ 0x9e6c63d0873084c5ULL);
  };
  if (!U.isInit())
    Fold(DedupFp::OwnerSlot, U.Session);
  for (uint32_t P = 0, Sz = static_cast<uint32_t>(Log.size()); P != Sz; ++P)
    if (std::optional<TxnUid> W = Log.writerOf(P))
      if (!W->isInit())
        Fold(P, W->Session);
  E.PiA = A;
  E.PiB = B;
}

/// π-invariant digest of one cursor's content: the uid *index* plus the
/// execution state. The session name composes in at fold time.
void refreshCursorEntry(DedupFp::CursorEntry &E, const TxnCursor &Cur) {
  Mix128 C(0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL);
  C.add(static_cast<uint32_t>(E.Packed)); // uid index
  C.add(Cur.NextInstr);
  C.add(Cur.Finished ? 1 : 0);
  C.add(Cur.Locals.size());
  for (Value V : Cur.Locals)
    C.add(static_cast<uint64_t>(V));
  Fingerprint F = C.done();
  E.InvA = F.Lo;
  E.InvB = F.Hi;
}

void DedupTable::syncCursors(DedupFp &Fp, const CursorMap &Cursors) const {
  auto IsDirty = [&](uint64_t K) {
    for (uint64_t D : Fp.DirtyCursors)
      if (D == K)
        return true;
    return false;
  };
  // Both sides iterate uid-packed ascending (the CursorMap is a key-sorted
  // flat map) and cursors are never removed, so one merge walk suffices;
  // new keys splice in at their sort position.
  std::vector<DedupFp::CursorEntry> &Ents = Fp.CursorEnts;
  size_t J = 0;
  for (const auto &Entry : Cursors) {
    uint64_t K = Entry.first;
    assert((J == Ents.size() || Ents[J].Packed >= K) &&
           "carried cursor entry for a vanished cursor");
    if (J == Ents.size() || Ents[J].Packed != K) {
      Ents.insert(Ents.begin() + J, DedupFp::CursorEntry{K, 0, 0});
      refreshCursorEntry(Ents[J], Entry.second);
    } else if (IsDirty(K)) {
      refreshCursorEntry(Ents[J], Entry.second);
    }
    ++J;
  }
  assert(Ents.size() == Cursors.size() && "carried entry per cursor");
  Fp.DirtyCursors.clear();
}

Fingerprint DedupTable::itemFingerprint(const History &H,
                                        const CursorMap &Cursors,
                                        DedupFp *Carried) const {
  DedupFp Local;
  DedupFp &Fp = Carried ? *Carried : Local;
  unsigned N = H.numTxns();

  // Refresh the π-invariant layer: everything when the carried state is
  // invalid (swap children, first probe, >64-session fallback), only the
  // dirty blocks otherwise. ReadPairs are engine-maintained on the
  // carried path and re-derived from H on the rebuild path.
  bool Rebuild = !Fp.Valid || NumSessions > 64 || Fp.Blocks.size() != N;
  if (Rebuild) {
    Fp.Blocks.assign(N, DedupFp::BlockEntry());
    Fp.Pi.clear();
    Fp.ReadPairs.clear();
    for (unsigned I = 0; I != N; ++I) {
      refreshBlock(Fp, H, I);
      if (Mode == DedupMode::Symmetry) {
        const TransactionLog &Log = H.txn(I);
        if (!Log.uid().isInit())
          for (uint32_t P = 0, Sz = static_cast<uint32_t>(Log.size());
               P != Sz; ++P)
            if (std::optional<TxnUid> W = Log.writerOf(P))
              if (!W->isInit())
                Fp.ReadPairs.emplace_back(Log.uid().Session, W->Session);
      }
    }
    Fp.CursorEnts.clear();
    Fp.CursorEnts.reserve(Cursors.size());
    for (const auto &Entry : Cursors) {
      Fp.CursorEnts.push_back({Entry.first, 0, 0});
      refreshCursorEntry(Fp.CursorEnts.back(), Entry.second);
    }
    Fp.DirtyCursors.clear();
  } else {
    assert(Fp.Blocks.size() == N && "carried entry per block");
    for (unsigned I = 0; I != N; ++I)
      if (Fp.Blocks[I].Dirty)
        refreshBlock(Fp, H, I);
    if (!Fp.DirtyCursors.empty() || Fp.CursorEnts.size() != Cursors.size())
      syncCursors(Fp, Cursors);
  }

  // Canonical session permutation. Exact mode keeps the identity; in
  // Symmetry mode sessions are renamed to their rank under a sort by
  // (structural class, refined color, original id). The class blocks of
  // the sort are a pure function of the program, so the composed
  // difference between any two items' permutations stays *within*
  // classes — fingerprint equality therefore certifies equality modulo a
  // structural-class renaming, never across classes. ChangedMask collects
  // the sessions whose rank moved since the carried state's last probe:
  // only blocks touching those sessions need their π digests redone.
  uint64_t ChangedMask = ~0ull;
  if (Mode == DedupMode::Symmetry && NumSessions > 1) {
    // Round 0 colors: the class plus the renaming-invariant digests of
    // the session's blocks and cursors, summed commutatively so the
    // per-block and per-cursor layers above are reusable as-is. The
    // refinement scratch lives on the stack for the (mask-supported)
    // ≤ 64-session fast path — this runs on every probe, so four heap
    // allocations here were measurable.
    uint64_t D0Stack[64], D1Stack[64];
    uint32_t SortStack[64], PiStack[64];
    std::vector<uint64_t> D0Heap, D1Heap;
    std::vector<uint32_t> SortHeap, PiHeap;
    uint64_t *D0 = D0Stack, *D1 = D1Stack;
    uint32_t *Sorted = SortStack, *NewPi = PiStack;
    if (NumSessions > 64) {
      D0Heap.resize(NumSessions);
      D1Heap.resize(NumSessions);
      SortHeap.resize(NumSessions);
      PiHeap.resize(NumSessions);
      D0 = D0Heap.data();
      D1 = D1Heap.data();
      Sorted = SortHeap.data();
      NewPi = PiHeap.data();
    }
    for (uint32_t S = 0; S != NumSessions; ++S)
      D0[S] = hashCombine64(0x9159015a3070dd17ULL, ClassOf[S]);
    for (const DedupFp::BlockEntry &E : Fp.Blocks)
      if (E.Session != TxnUid::InitSession)
        D0[E.Session] += splitmix64(E.InvDig);
    for (const DedupFp::CursorEntry &E : Fp.CursorEnts) {
      uint32_t S = static_cast<uint32_t>(E.Packed >> 32);
      if (S == TxnUid::InitSession)
        continue;
      assert(S < NumSessions && "cursor names an unknown session");
      D0[S] += splitmix64(E.InvA ^ 0x452821e638d01377ULL);
    }
    // Round 1: refine with the round-0 colors of each read's writer
    // session, so same-class sessions distinguished only through whom
    // they read from still sort apart.
    for (uint32_t S = 0; S != NumSessions; ++S)
      D1[S] = D0[S];
    for (const auto &[Reader, Writer] : Fp.ReadPairs)
      D1[Reader] += splitmix64(D0[Writer]);
    std::iota(Sorted, Sorted + NumSessions, 0u);
    std::sort(Sorted, Sorted + NumSessions, [&](uint32_t A, uint32_t B) {
      if (ClassOf[A] != ClassOf[B])
        return ClassOf[A] < ClassOf[B];
      if (D1[A] != D1[B])
        return D1[A] < D1[B];
      return A < B;
    });
    for (uint32_t Rank = 0; Rank != NumSessions; ++Rank)
      NewPi[Sorted[Rank]] = Rank;
    if (NumSessions <= 64 && Fp.Pi.size() == NumSessions) {
      ChangedMask = 0;
      for (uint32_t S = 0; S != NumSessions; ++S)
        if (NewPi[S] != Fp.Pi[S])
          ChangedMask |= 1ull << S;
    }
    Fp.Pi.assign(NewPi, NewPi + NumSessions);
  } else {
    // Identity renaming (Exact mode or a single session): π never moves,
    // so only dirty blocks need their digests redone.
    ChangedMask = 0;
    Fp.Pi.clear();
  }

  // Refresh the π-renamed layer and fold the commutative sums. Depth and
  // ConstraintState are excluded: Depth is driver bookkeeping and the
  // constraint state is a pure function of the history and the levels.
  uint64_t SumA = 0, SumB = 0;
  for (unsigned I = 0; I != N; ++I) {
    DedupFp::BlockEntry &E = Fp.Blocks[I];
    if (E.Dirty || (E.Mask & ChangedMask))
      refoldPiDigest(Fp, H, I);
    E.Dirty = false;
    SumA += E.PiA;
    SumB += E.PiB;
  }
  // Cursors fold as carried content digests composed with the renamed
  // uid; the commutative sum makes their order irrelevant, so no renamed
  // re-sort is needed. The content seeds differ from the block digests',
  // so a cursor contribution can never alias a block contribution.
  for (const DedupFp::CursorEntry &E : Fp.CursorEnts) {
    TxnUid U{static_cast<uint32_t>(E.Packed >> 32),
             static_cast<uint32_t>(E.Packed)};
    uint64_t R = renamedUid(Fp.Pi, U);
    SumA += splitmix64(E.InvA ^ hashCombine64(0xb5c0fbcfec4d3b2fULL, R));
    SumB += splitmix64(E.InvB ^ hashCombine64(0x3c6ef372fe94f82bULL, R));
  }
  Fp.Valid = true;

  Mix128 Head(Salt0, Salt1);
  Head.add(N);
  Head.add(Cursors.size());
  return {splitmix64(Head.A + SumA), splitmix64(Head.B + SumB)};
}

bool DedupTable::insertIfNew(const Fingerprint &F) const {
  const Shard &Sh = Shards[F.Hi & (NumShards - 1)];
  std::lock_guard<std::mutex> Guard(Sh.M);
  if (!MaxPerShard)
    return Sh.Set.insert(F).second;
  auto It = Sh.Map.find(F);
  if (It != Sh.Map.end()) {
    // Probe hit: re-arm the CLOCK reference bit so hot subtrees survive
    // the next sweep.
    Sh.Ref[It->second] = 1;
    return false;
  }
  if (Sh.Slots.size() < MaxPerShard) {
    uint32_t Slot = static_cast<uint32_t>(Sh.Slots.size());
    Sh.Slots.push_back(F);
    Sh.Ref.push_back(1);
    Sh.Map.emplace(F, Slot);
    return true;
  }
  // Full shard: sweep the hand, clearing reference bits, until a cold
  // victim turns up (at worst one full revolution). Evicting only ever
  // costs re-exploration of the victim's subtree — an absent fingerprint
  // can never cause a wrong skip.
  while (Sh.Ref[Sh.Hand]) {
    Sh.Ref[Sh.Hand] = 0;
    Sh.Hand = (Sh.Hand + 1) % static_cast<uint32_t>(Sh.Slots.size());
  }
  uint32_t Victim = Sh.Hand;
  Sh.Hand = (Sh.Hand + 1) % static_cast<uint32_t>(Sh.Slots.size());
  Sh.Map.erase(Sh.Slots[Victim]);
  Sh.Slots[Victim] = F;
  Sh.Ref[Victim] = 1;
  Sh.Map.emplace(F, Victim);
  ++Sh.Evictions;
  return true;
}

uint64_t DedupTable::size() const {
  uint64_t Total = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.M);
    Total += MaxPerShard ? Sh.Map.size() : Sh.Set.size();
  }
  return Total;
}

uint64_t DedupTable::evictions() const {
  uint64_t Total = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.M);
    Total += Sh.Evictions;
  }
  return Total;
}
